// What-if explorer for the Spark SQL cluster simulator: sweep a single
// configuration parameter and watch how the application responds. Useful
// for building intuition about the cost model (and for eyeballing why
// IICP ranks parameters the way it does).
//
//   ./build/examples/whatif_explorer [app] [datasize_gb]
//   e.g. ./build/examples/whatif_explorer TPC-DS 300
#include <cstdio>
#include <cstdlib>
#include <string>

#include "harness/experiments.h"
#include "sparksim/simulator.h"

int main(int argc, char** argv) {
  using namespace locat;
  const std::string app_name = argc > 1 ? argv[1] : "TPC-DS";
  const double ds = argc > 2 ? std::atof(argv[2]) : 300.0;

  const sparksim::SparkSqlApp app = harness::MakeApp(app_name);
  sparksim::SimParams params;
  params.noise_sigma = 0.0;  // deterministic what-if analysis
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 1, params);
  sparksim::ConfigSpace space(sim.cluster());

  // A reasonable starting configuration.
  sparksim::SparkConf base = space.DefaultConf();
  base.Set(sparksim::kExecutorInstances, 30);
  base.Set(sparksim::kExecutorCores, 4);
  base.Set(sparksim::kExecutorMemory, 16);
  base.Set(sparksim::kExecutorMemoryOverhead, 3072);
  base.Set(sparksim::kSqlShufflePartitions, 500);
  base = space.Repair(base);

  const auto base_run = sim.RunApp(app, base, ds);
  std::printf("%s at %.0f GB, base configuration: %.0f s "
              "(GC %.0f s, shuffle %.0f GB)\n\n",
              app_name.c_str(), ds, base_run.total_seconds,
              base_run.gc_seconds, base_run.shuffle_gb);

  const struct {
    sparksim::ParamId id;
    const char* label;
  } sweeps[] = {
      {sparksim::kSqlShufflePartitions, "spark.sql.shuffle.partitions"},
      {sparksim::kExecutorMemory, "spark.executor.memory (GB)"},
      {sparksim::kExecutorCores, "spark.executor.cores"},
      {sparksim::kExecutorInstances, "spark.executor.instances"},
      {sparksim::kMemoryFraction, "spark.memory.fraction"},
      {sparksim::kShuffleCompress, "spark.shuffle.compress"},
  };

  for (const auto& sweep : sweeps) {
    std::printf("--- %s ---\n", sweep.label);
    const double lo = space.lo(sweep.id);
    const double hi = space.hi(sweep.id);
    const int steps =
        space.spec(sweep.id).kind == sparksim::ParamKind::kBool ? 2 : 6;
    for (int s = 0; s < steps; ++s) {
      const double v =
          steps == 2 ? s : lo + (hi - lo) * s / (steps - 1);
      sparksim::SparkConf conf = base;
      conf.Set(sweep.id, v);
      conf = space.Repair(conf);
      const auto run = sim.RunApp(app, conf, ds);
      std::printf("  %10.2f -> %8.0f s (GC %6.0f s%s)\n",
                  conf.Get(sweep.id), run.total_seconds, run.gc_seconds,
                  run.any_oom ? ", OOM retries!" : "");
    }
  }
  std::printf("\nNote how sql.shuffle.partitions and the memory knobs have "
              "interior optima that depend on the data size — the structure "
              "DAGP exploits.\n");
  return 0;
}
