// The OnlineTuningService packages the paper's deployment story: a
// nightly TPC-H job whose input grows over weeks. The service hands out a
// configuration per run, re-tunes (warm) only when the data size drifts
// beyond 25% of anything tuned before, and ingests the production runs as
// free observations.
//
//   ./build/examples/tuning_service
#include <cstdio>

#include "core/online_service.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;
  sparksim::ClusterSimulator simulator(sparksim::X86Cluster(), 77);
  core::TuningSession session(&simulator, workloads::TpcH());
  core::OnlineTuningService service(&session);

  // Three weeks of nightly runs with slowly growing input.
  const double schedule[] = {100, 105, 112, 118, 126, 133, 142,
                             155, 170, 184, 205, 228, 252, 280,
                             310, 340, 375, 415, 455, 500, 540};

  std::printf("%-6s %-10s %-14s %-12s %-10s\n", "day", "ds (GB)",
              "tuning passes", "overhead(h)", "run (s)");
  int day = 0;
  for (double ds : schedule) {
    ++day;
    const sparksim::SparkConf conf = service.RecommendedConf(ds).value();
    // "Production" executes the job with the recommended configuration...
    const auto run = session.MeasureFinal(conf, ds);
    // ...and reports the outcome back, sharpening the DAGP for free.
    service.ReportRun(ds, conf, run.total_seconds);
    std::printf("%-6d %-10.0f %-14d %-12.1f %-10.0f\n", day, ds,
                service.tuning_passes(),
                service.optimization_seconds() / 3600.0, run.total_seconds);
  }

  std::printf("\n%d tuning passes covered %zu distinct sizes over %d runs; "
              "total tuning overhead %.1f simulated hours.\n",
              service.tuning_passes(), service.tuned_sizes().size(), day,
              service.optimization_seconds() / 3600.0);
  std::printf("A datasize-oblivious tuner would have re-tuned every time "
              "the input changed (every day here).\n");
  return 0;
}
