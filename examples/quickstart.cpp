// Quickstart: tune TPC-H on the simulated x86 cluster with LOCAT.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The program walks through the whole public API surface:
//   1. pick a cluster and build the simulator (the stand-in for a real
//      Spark deployment — see DESIGN.md),
//   2. wrap it in a TuningSession (the accounting layer),
//   3. run LocatTuner, and
//   4. inspect what QCSA/IICP discovered and what the tuned configuration
//      looks like.
#include <cstdio>

#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;

  // 1. The system under tuning: TPC-H on the paper's 8-node x86 cluster.
  const sparksim::ClusterSpec cluster = sparksim::X86Cluster();
  sparksim::ClusterSimulator simulator(cluster, /*seed=*/42);
  const sparksim::SparkSqlApp app = workloads::TpcH();
  std::printf("Tuning %s (%d queries) on cluster '%s' (%d cores, %.0f GB)\n",
              app.name.c_str(), app.num_queries(), cluster.name.c_str(),
              cluster.total_cores(), cluster.total_memory_gb());

  // 2. The session charges every configuration evaluation to a simulated
  //    wall-clock meter — the paper's "optimization time".
  core::TuningSession session(&simulator, app);

  // 3. Run LOCAT at a 200 GB input size.
  core::LocatTuner::Options options;
  options.seed = 7;
  core::LocatTuner tuner(options);
  const core::TuningResult result = tuner.Tune(&session, /*datasize_gb=*/200);

  std::printf("\nLOCAT finished: %d evaluations, %.1f simulated hours of "
              "optimization.\n",
              result.evaluations, result.optimization_seconds / 3600.0);

  // 4a. What QCSA learned: which queries are worth re-running while
  //     collecting samples.
  if (const core::QcsaResult* qcsa = tuner.qcsa_result()) {
    std::printf("QCSA kept %zu of %d queries (CV threshold %.2f):",
                qcsa->csq_indices.size(), app.num_queries(),
                qcsa->threshold);
    for (int idx : qcsa->csq_indices) {
      std::printf(" %s", app.queries[static_cast<size_t>(idx)].name.c_str());
    }
    std::printf("\n");
  }

  // 4b. What IICP learned: which parameters matter.
  if (const core::IicpResult* iicp = tuner.iicp_result()) {
    std::printf("IICP: CPS kept %zu of %d parameters; CPE extracted %d "
                "latent parameters.\n",
                iicp->selected_params().size(), sparksim::kNumParams,
                iicp->latent_dim());
  }

  // 4c. Judge the tuned configuration against the Spark defaults.
  const double tuned =
      session.MeasureFinal(result.best_conf, 200).total_seconds;
  const double defaults =
      session
          .MeasureFinal(session.space().Repair(session.space().DefaultConf()),
                        200)
          .total_seconds;
  std::printf("\nTuned run: %.0f s  |  Spark defaults: %.0f s  |  "
              "improvement: %.1fx\n",
              tuned, defaults, defaults / tuned);

  std::printf("\nTuned configuration:\n%s\n",
              result.best_conf.ToString().c_str());
  return 0;
}
