// The paper's motivating scenario: the same Spark SQL application runs
// daily while its input grows. A datasize-oblivious tuner re-tunes from
// scratch at every size; LOCAT's DAGP models t = f(conf, ds), so after
// the first (cold) tuning pass each data-size change costs only a few
// reduced-application runs.
//
//   ./build/examples/online_datasize_shift
#include <cstdio>

#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "sparksim/simulator.h"
#include "tuners/baselines.h"
#include "workloads/workloads.h"

int main() {
  using namespace locat;
  const sparksim::ClusterSpec cluster = sparksim::X86Cluster();
  const sparksim::SparkSqlApp app = workloads::TpcDs();
  const double sizes[] = {100, 200, 300, 400, 500};

  std::printf("Scenario: TPC-DS re-tuned as its input grows from 100 GB to "
              "500 GB.\n\n");
  std::printf("%-10s | %-28s | %-28s\n", "datasize",
              "LOCAT online (warm DAGP)", "Tuneful (re-tunes each size)");
  std::printf("%-10s | %-13s %-14s | %-13s %-14s\n", "", "overhead (h)",
              "tuned run (s)", "overhead (h)", "tuned run (s)");

  // One LOCAT instance survives across sizes (online mode).
  sparksim::ClusterSimulator locat_sim(cluster, 11);
  core::TuningSession locat_session(&locat_sim, app);
  core::LocatTuner::Options lopts;
  lopts.seed = 3;
  core::LocatTuner locat(lopts);

  // Tuneful is datasize-oblivious: a fresh instance per size.
  sparksim::ClusterSimulator tuneful_sim(cluster, 11);
  core::TuningSession tuneful_session(&tuneful_sim, app);

  double locat_total = 0.0;
  double tuneful_total = 0.0;
  for (double ds : sizes) {
    const core::TuningResult lr = locat.Tune(&locat_session, ds);
    const double locat_run =
        locat_session.MeasureFinal(lr.best_conf, ds).total_seconds;
    locat_total += lr.optimization_seconds;

    tuners::TunefulTuner tuneful;  // fresh: no knowledge transfer
    const core::TuningResult tr = tuneful.Tune(&tuneful_session, ds);
    const double tuneful_run =
        tuneful_session.MeasureFinal(tr.best_conf, ds).total_seconds;
    tuneful_total += tr.optimization_seconds;

    std::printf("%6.0f GB  | %13.1f %14.0f | %13.1f %14.0f\n", ds,
                lr.optimization_seconds / 3600.0, locat_run,
                tr.optimization_seconds / 3600.0, tuneful_run);
  }
  std::printf("\nCumulative optimization overhead over the five sizes: "
              "LOCAT %.0f h vs Tuneful %.0f h (%.1fx reduction).\n",
              locat_total / 3600.0, tuneful_total / 3600.0,
              tuneful_total / locat_total);
  std::printf("After the cold start, LOCAT's warm passes cost only "
              "~10 RQA runs each because the DAGP transfers what it "
              "learned at earlier sizes (Section 3.4).\n");
  return 0;
}
