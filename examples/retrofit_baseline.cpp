// Section 5.10 as an API example: QCSA and IICP are not tied to LOCAT's
// own BO loop — QcsaIicpFrontend retrofits them onto any Tuner. This
// example wraps the DAC baseline and compares plain vs retrofitted runs.
//
//   ./build/examples/retrofit_baseline
#include <cstdio>
#include <memory>

#include "core/tuning.h"
#include "sparksim/simulator.h"
#include "tuners/baselines.h"
#include "tuners/frontend.h"
#include "workloads/workloads.h"

namespace {

locat::core::TuningResult RunOnFreshSession(locat::core::Tuner* tuner,
                                            double ds, double* tuned_seconds) {
  using namespace locat;
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 99);
  core::TuningSession session(&sim, workloads::TpcH());
  const core::TuningResult result = tuner->Tune(&session, ds);
  *tuned_seconds = session.MeasureFinal(result.best_conf, ds).total_seconds;
  return result;
}

}  // namespace

int main() {
  using namespace locat;
  const double ds = 300.0;
  std::printf("Retrofitting QCSA + IICP onto the DAC baseline "
              "(TPC-H, %.0f GB, x86).\n\n", ds);

  // Plain DAC: tunes all 38 parameters and runs the full application for
  // every training sample.
  tuners::DacTuner::Options dac_opts;
  dac_opts.training_samples = 80;  // scaled-down budget for the example
  tuners::DacTuner plain(dac_opts);
  double plain_seconds = 0.0;
  const auto plain_result = RunOnFreshSession(&plain, ds, &plain_seconds);

  // DAC + QIT: QCSA restricts the session to the configuration-sensitive
  // queries; IICP restricts DAC's model/search to the CPS-selected
  // parameters.
  tuners::QcsaIicpFrontend::Options fopts;
  tuners::QcsaIicpFrontend qit(
      std::make_unique<tuners::DacTuner>(dac_opts), fopts);
  double qit_seconds = 0.0;
  const auto qit_result = RunOnFreshSession(&qit, ds, &qit_seconds);

  std::printf("%-12s | %-14s | %-12s | %-10s\n", "variant", "overhead (h)",
              "tuned run (s)", "evals");
  std::printf("%-12s | %14.1f | %12.0f | %10d\n", "DAC (APT)",
              plain_result.optimization_seconds / 3600.0, plain_seconds,
              plain_result.evaluations);
  std::printf("%-12s | %14.1f | %12.0f | %10d\n", qit_result.tuner_name.c_str(),
              qit_result.optimization_seconds / 3600.0, qit_seconds,
              qit_result.evaluations);

  if (const auto* qcsa = qit.qcsa_result()) {
    std::printf("\nQCSA kept %zu of 22 TPC-H queries for sample "
                "collection.\n", qcsa->csq_indices.size());
  }
  if (const auto* iicp = qit.iicp_result()) {
    std::printf("IICP restricted DAC to %zu of 38 parameters.\n",
                iicp->selected_params().size());
  }
  std::printf("\nPaper (Figure 21): QIT improves the SOTA-tuned performance "
              "by 2.6x and cuts their optimization overhead by 6.8x on "
              "average.\n");
  return 0;
}
