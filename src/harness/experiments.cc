#include "harness/experiments.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

#include "common/thread_pool.h"
#include "core/locat_tuner.h"
#include "core/qcsa.h"
#include "obs/log.h"
#include "tuners/baselines.h"
#include "tuners/frontend.h"
#include "workloads/workloads.h"

namespace locat::harness {
namespace {

constexpr const char* kCacheVersion = "v3";

uint64_t StableHash(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string CellSpec::Key() const {
  std::ostringstream os;
  os << kCacheVersion << "|" << tuner << "|" << app << "|" << cluster << "|"
     << datasize_gb << "|" << seed;
  return os.str();
}

std::string CellResult::Serialize() const {
  std::ostringstream os;
  os.precision(17);
  os << optimization_seconds << "," << best_app_seconds << ","
     << default_app_seconds << "," << gc_seconds << "," << csq_seconds << ","
     << ciq_seconds << "," << evaluations;
  return os.str();
}

bool CellResult::Deserialize(const std::string& line, CellResult* out) {
  std::istringstream is(line);
  char comma;
  is >> out->optimization_seconds >> comma >> out->best_app_seconds >>
      comma >> out->default_app_seconds >> comma >> out->gc_seconds >>
      comma >> out->csq_seconds >> comma >> out->ciq_seconds >> comma >>
      out->evaluations;
  return !is.fail();
}

sparksim::ClusterSpec MakeCluster(const std::string& name) {
  if (name == "arm") return sparksim::ArmCluster();
  return sparksim::X86Cluster();
}

sparksim::SparkSqlApp MakeApp(const std::string& name) {
  if (name == "TPC-DS") return workloads::TpcDs();
  if (name == "TPC-H") return workloads::TpcH();
  if (name == "Join") return workloads::HiBenchJoin();
  if (name == "Scan") return workloads::HiBenchScan();
  return workloads::HiBenchAggregation();
}

const std::vector<std::string>& SotaTunerNames() {
  static const std::vector<std::string>& names =
      *new std::vector<std::string>{"Tuneful", "DAC", "GBO-RL", "QTune"};
  return names;
}

std::unique_ptr<core::Tuner> MakeTuner(const std::string& name,
                                       uint64_t seed_salt) {
  if (name == "LOCAT" || name == "LOCAT-AP") {
    core::LocatTuner::Options opts;
    opts.seed = 101 + seed_salt;
    opts.enable_iicp = (name == "LOCAT");
    return std::make_unique<core::LocatTuner>(opts);
  }
  // Section 5.10 composites: "<Baseline>+QCSA" / "+IICP" / "+QIT".
  const auto plus = name.find('+');
  if (plus != std::string::npos) {
    const std::string base = name.substr(0, plus);
    const std::string mode = name.substr(plus + 1);
    tuners::QcsaIicpFrontend::Options fopts;
    fopts.apply_qcsa = (mode == "QCSA" || mode == "QIT");
    fopts.apply_iicp = (mode == "IICP" || mode == "QIT");
    fopts.seed = 61 + seed_salt;
    return std::make_unique<tuners::QcsaIicpFrontend>(
        tuners::MakeBaseline(base, seed_salt), fopts);
  }
  return tuners::MakeBaseline(name, seed_salt);
}

ExperimentRunner::ExperimentRunner(std::string cache_path)
    : cache_path_(std::move(cache_path)) {
  if (cache_path_.empty()) {
    const char* dir = std::getenv("LOCAT_CACHE_DIR");
    cache_path_ = std::string(dir != nullptr ? dir : ".locat_cache") +
                  "/results.csv";
  }
  const char* sim_cache = std::getenv("LOCAT_SIM_CACHE");
  sim_cache_enabled_ =
      (sim_cache == nullptr || std::string(sim_cache) != "off");
  Load();
}

ExperimentRunner::~ExperimentRunner() { Save(); }

void ExperimentRunner::Load() {
  std::ifstream in(cache_path_);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    const auto sep = line.find('\t');
    if (sep == std::string::npos) continue;
    CellResult result;
    if (CellResult::Deserialize(line.substr(sep + 1), &result)) {
      cache_[line.substr(0, sep)] = result;
    }
  }
}

void ExperimentRunner::Save() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!dirty_) return;
  std::filesystem::path path(cache_path_);
  if (path.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(path.parent_path(), ec);
  }

  // Concurrent runners (separate processes sharing $LOCAT_CACHE_DIR) must
  // not lose each other's rows or expose torn files: serialize savers on
  // an advisory lock, merge rows written since our Load, write to a
  // process/thread-unique temp file and publish it with an atomic rename.
  const std::string lock_path = cache_path_ + ".lock";
  const int lock_fd = ::open(lock_path.c_str(), O_CREAT | O_RDWR, 0644);
  if (lock_fd >= 0) ::flock(lock_fd, LOCK_EX);

  {
    std::ifstream in(cache_path_);
    std::string line;
    while (in && std::getline(in, line)) {
      const auto sep = line.find('\t');
      if (sep == std::string::npos) continue;
      const std::string key = line.substr(0, sep);
      CellResult result;
      if (cache_.find(key) == cache_.end() &&
          CellResult::Deserialize(line.substr(sep + 1), &result)) {
        cache_[key] = result;
      }
    }
  }

  std::ostringstream tmp_name;
  tmp_name << cache_path_ << ".tmp." << ::getpid() << "."
           << std::hash<std::thread::id>{}(std::this_thread::get_id());
  const std::string tmp_path = tmp_name.str();
  bool wrote = false;
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (out) {
      for (const auto& [key, result] : cache_) {
        out << key << "\t" << result.Serialize() << "\n";
      }
      out.flush();
      wrote = out.good();
    }
  }
  std::error_code ec;
  if (wrote) {
    std::filesystem::rename(tmp_path, cache_path_, ec);
    if (!ec) dirty_ = false;
  }
  if (!wrote || ec) {
    std::filesystem::remove(tmp_path, ec);
    obs::Log::Global()->Warn("harness", "results cache save failed",
                             {{"path", cache_path_}});
  } else {
    obs::Log::Global()->Debug(
        "harness", "results cache saved",
        {{"path", cache_path_},
         {"rows", static_cast<double>(cache_.size())}});
  }

  if (lock_fd >= 0) {
    ::flock(lock_fd, LOCK_UN);
    ::close(lock_fd);
  }
}

std::vector<int> ExperimentRunner::CanonicalCsq(const std::string& app_name,
                                                const std::string& cluster) {
  const std::string key = app_name + "|" + cluster;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = csq_cache_.find(key);
    if (it != csq_cache_.end()) return it->second;
  }

  // 30 random configurations at 100 GB with a fixed seed, per Section 5.1.
  const sparksim::SparkSqlApp app = MakeApp(app_name);
  sparksim::ClusterSimulator sim(MakeCluster(cluster),
                                 StableHash("csq|" + key));
  if (sim_cache_enabled_) sim.set_eval_cache(&sim_cache_);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(StableHash("csq-rng|" + key));
  std::vector<std::vector<double>> times(
      static_cast<size_t>(app.num_queries()));
  // One RunAppBatch instead of 30 sequential RunApp calls: the probe grid
  // fans through the batch engine (bit-identical results, same RNG
  // stream — the confs are drawn up front in the same rng order).
  std::vector<sparksim::SparkConf> probe_confs;
  probe_confs.reserve(30);
  for (int i = 0; i < 30; ++i) probe_confs.push_back(space.RandomValid(&rng));
  std::vector<int> all_queries(static_cast<size_t>(app.num_queries()));
  for (size_t q = 0; q < all_queries.size(); ++q) {
    all_queries[q] = static_cast<int>(q);
  }
  const auto runs = sim.RunAppBatch(app, all_queries, probe_confs, 100.0);
  if (runs.ok()) {
    for (const auto& run : runs.value()) {
      for (size_t q = 0; q < run.per_query.size(); ++q) {
        times[q].push_back(run.per_query[q].exec_seconds);
      }
    }
  }
  std::vector<int> csq;
  auto qcsa = core::AnalyzeQuerySensitivity(times);
  if (qcsa.ok()) {
    csq = qcsa->csq_indices;
  } else {
    csq.resize(static_cast<size_t>(app.num_queries()));
    for (int q = 0; q < app.num_queries(); ++q) csq[static_cast<size_t>(q)] = q;
  }
  std::lock_guard<std::mutex> lock(mu_);
  csq_cache_[key] = csq;
  return csq;
}

CellResult ExperimentRunner::Compute(const CellSpec& spec) {
  const sparksim::SparkSqlApp app = MakeApp(spec.app);
  sparksim::ClusterSimulator sim(MakeCluster(spec.cluster),
                                 StableHash(spec.Key()));
  // Share one eval cache across the whole grid: the noise-free memoized
  // layer means cells with different seeds still hit on repeated
  // (conf, query, datasize) points. Results stay bit-identical.
  if (sim_cache_enabled_) sim.set_eval_cache(&sim_cache_);
  core::TuningSession session(&sim, app);
  std::unique_ptr<core::Tuner> tuner = MakeTuner(spec.tuner, spec.seed);

  const core::TuningResult tr = tuner->Tune(&session, spec.datasize_gb);

  CellResult cell;
  cell.optimization_seconds = tr.optimization_seconds;
  cell.evaluations = tr.evaluations;

  // Judge the tuned configuration on the full application (not charged);
  // three *successful* repetitions average out run-to-run noise — under
  // fault injection a rep may die, so up to 9 attempts are made (with
  // faults off every rep succeeds and this is the original 3-rep loop).
  // The last successful run supplies the per-query/GC breakdowns.
  sparksim::AppRunResult final_run;
  int good_reps = 0;
  for (int attempt = 0; attempt < 9 && good_reps < 3; ++attempt) {
    sparksim::AppRunResult run =
        session.MeasureFinal(tr.best_conf, spec.datasize_gb);
    if (run.failed) continue;
    final_run = std::move(run);
    cell.best_app_seconds += final_run.total_seconds / 3.0;
    cell.gc_seconds += final_run.gc_seconds / 3.0;
    ++good_reps;
  }

  good_reps = 0;
  for (int attempt = 0; attempt < 9 && good_reps < 3; ++attempt) {
    const sparksim::AppRunResult run = session.MeasureFinal(
        session.space().Repair(session.space().DefaultConf()),
        spec.datasize_gb);
    if (run.failed) continue;
    cell.default_app_seconds += run.total_seconds / 3.0;
    ++good_reps;
  }

  const std::vector<int> csq = CanonicalCsq(spec.app, spec.cluster);
  std::vector<bool> is_csq(final_run.per_query.size(), false);
  for (int idx : csq) {
    if (idx >= 0 && static_cast<size_t>(idx) < is_csq.size()) {
      is_csq[static_cast<size_t>(idx)] = true;
    }
  }
  for (size_t q = 0; q < final_run.per_query.size(); ++q) {
    (is_csq[q] ? cell.csq_seconds : cell.ciq_seconds) +=
        final_run.per_query[q].exec_seconds;
  }
  return cell;
}

bool ExperimentRunner::Find(const CellSpec& spec, CellResult* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(spec.Key());
  if (it == cache_.end()) return false;
  if (out != nullptr) *out = it->second;
  return true;
}

void ExperimentRunner::InsertResult(const CellSpec& spec,
                                    const CellResult& result) {
  std::lock_guard<std::mutex> lock(mu_);
  cache_[spec.Key()] = result;
  dirty_ = true;
}

CellResult ExperimentRunner::Run(const CellSpec& spec) {
  CellResult result;
  if (Find(spec, &result)) {
    obs::Log::Global()->Debug("harness", "cell cache hit",
                              {{"key", spec.Key()}});
    return result;
  }
  result = Compute(spec);
  obs::Log::Global()->Debug(
      "harness", "cell computed",
      {{"key", spec.Key()},
       {"best_app_seconds", result.best_app_seconds},
       {"optimization_seconds", result.optimization_seconds},
       {"evaluations", result.evaluations}});
  InsertResult(spec, result);
  return result;
}

std::vector<CellResult> ExperimentRunner::RunAll(
    const std::vector<CellSpec>& specs, int threads) {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  threads = std::min<int>(threads, static_cast<int>(specs.size()));
  if (threads <= 1) {
    std::vector<CellResult> results;
    results.reserve(specs.size());
    for (const auto& spec : specs) results.push_back(Run(spec));
    return results;
  }

  obs::Log::Global()->Info("harness", "experiment grid",
                           {{"cells", static_cast<double>(specs.size())},
                            {"threads", threads}});
  // Dedicated pool sized to the request; Run() serializes cache access
  // internally and each cell writes only its own slot, so results are in
  // input order regardless of scheduling.
  common::ThreadPool pool(threads);
  std::vector<CellResult> results(specs.size());
  pool.ParallelForEach(specs.size(),
                       [&](size_t i) { results[i] = Run(specs[i]); });
  Save();
  return results;
}

WarmSequenceResult RunLocatWarmSequence(const std::string& app_name,
                                        const std::string& cluster,
                                        const std::vector<double>& ds_list,
                                        uint64_t seed) {
  const sparksim::SparkSqlApp app = MakeApp(app_name);
  sparksim::ClusterSimulator sim(MakeCluster(cluster),
                                 StableHash("warm|" + app_name + cluster) +
                                     seed);
  core::TuningSession session(&sim, app);
  core::LocatTuner::Options opts;
  opts.seed = 211 + seed;
  core::LocatTuner tuner(opts);

  WarmSequenceResult out;
  for (double ds : ds_list) {
    const core::TuningResult tr = tuner.Tune(&session, ds);
    out.datasizes_gb.push_back(ds);
    out.incremental_optimization_seconds.push_back(tr.optimization_seconds);
    out.best_app_seconds.push_back(
        session.MeasureFinal(tr.best_conf, ds).total_seconds);
  }
  return out;
}

}  // namespace locat::harness
