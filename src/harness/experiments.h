#ifndef LOCAT_HARNESS_EXPERIMENTS_H_
#define LOCAT_HARNESS_EXPERIMENTS_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/tuning.h"
#include "sparksim/cluster.h"
#include "sparksim/eval_cache.h"
#include "sparksim/simulator.h"

namespace locat::harness {

/// Identifies one (tuner, application, cluster, data size) experiment.
struct CellSpec {
  std::string tuner;    // "LOCAT", "Tuneful", ..., "Tuneful+QIT", ...
  std::string app;      // "TPC-DS", "TPC-H", "Join", "Scan", "Aggregation"
  std::string cluster;  // "arm" or "x86"
  double datasize_gb = 100.0;
  uint64_t seed = 0;    // repetition salt

  std::string Key() const;
};

/// Everything the figures need from one tuning run.
struct CellResult {
  double optimization_seconds = 0.0;  // simulated search cost
  double best_app_seconds = 0.0;      // full app under the tuned config
  double default_app_seconds = 0.0;   // full app under Spark defaults
  double gc_seconds = 0.0;            // GC time under the tuned config
  double csq_seconds = 0.0;           // tuned time spent in CSQ queries
  double ciq_seconds = 0.0;           // tuned time spent in CIQ queries
  int evaluations = 0;

  std::string Serialize() const;
  static bool Deserialize(const std::string& line, CellResult* out);
};

/// Builds the named cluster spec ("arm" / "x86").
sparksim::ClusterSpec MakeCluster(const std::string& name);

/// Builds the named application (Table 1 names).
sparksim::SparkSqlApp MakeApp(const std::string& name);

/// Builds a tuner by name. Supported: "LOCAT", "LOCAT-AP" (IICP off),
/// "Random", "Tuneful", "DAC", "GBO-RL", "QTune", and the Section 5.10
/// composites "<Baseline>+QCSA", "<Baseline>+IICP", "<Baseline>+QIT".
std::unique_ptr<core::Tuner> MakeTuner(const std::string& name,
                                       uint64_t seed_salt);

/// The four SOTA baselines in the paper's order.
const std::vector<std::string>& SotaTunerNames();

/// Runs experiment cells with an on-disk cache so every bench binary can
/// share one computation of the expensive comparison grid.
///
/// The cache lives at $LOCAT_CACHE_DIR/results.csv (default
/// ".locat_cache/results.csv" under the current directory) and is keyed by
/// the cell spec plus a cache-format version.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(std::string cache_path = "");
  ~ExperimentRunner();

  /// Returns the cell result, computing and caching it if missing.
  CellResult Run(const CellSpec& spec);

  /// Computes many cells, using up to `threads` worker threads (0 = one
  /// per hardware core, capped at the number of cells). Results are
  /// returned in input order.
  std::vector<CellResult> RunAll(const std::vector<CellSpec>& specs,
                                 int threads = 0);

  /// Looks up a cached cell without computing it. Returns true and fills
  /// `out` (may be null) when present.
  bool Find(const CellSpec& spec, CellResult* out) const;

  /// Inserts (or overwrites) a cell result, marking the cache dirty.
  void InsertResult(const CellSpec& spec, const CellResult& result);

  /// Counters of the process-wide simulator eval cache shared by every
  /// cell this runner computes (set LOCAT_SIM_CACHE=off to disable it).
  sparksim::EvalCacheStats sim_cache_stats() const {
    return sim_cache_.stats();
  }
  bool sim_cache_enabled() const { return sim_cache_enabled_; }

  /// The canonical CSQ index set for an (app, cluster) pair, computed by
  /// a fixed-seed 30-sample QCSA (cached in memory for the process).
  std::vector<int> CanonicalCsq(const std::string& app,
                                const std::string& cluster);

  /// Flushes the cache to disk (also done by the destructor).
  void Save();

 private:
  CellResult Compute(const CellSpec& spec);
  void Load();

  std::string cache_path_;
  mutable std::mutex mu_;
  std::map<std::string, CellResult> cache_;
  std::map<std::string, std::vector<int>> csq_cache_;
  bool dirty_ = false;
  /// One eval cache shared by all cells: identical (conf, query, env)
  /// evaluations recur across tuner columns, seeds and the CSQ probe, so
  /// the grid re-simulates each distinct point once. Thread-safe; results
  /// are bit-identical with the cache on or off.
  sparksim::EvalCache sim_cache_;
  bool sim_cache_enabled_ = true;
};

/// Result of tuning one application across a sequence of data sizes with
/// a single (warm) LOCAT instance — the online adaptation path.
struct WarmSequenceResult {
  std::vector<double> datasizes_gb;
  std::vector<double> incremental_optimization_seconds;
  std::vector<double> best_app_seconds;
};

/// Tunes `app` at each data size in order, reusing the LOCAT state (DAGP
/// transfers across sizes). Not cached (cheap relative to the grid).
WarmSequenceResult RunLocatWarmSequence(const std::string& app,
                                        const std::string& cluster,
                                        const std::vector<double>& ds_list,
                                        uint64_t seed = 0);

}  // namespace locat::harness

#endif  // LOCAT_HARNESS_EXPERIMENTS_H_
