#include "tuners/bo_search.h"

#include <algorithm>
#include <cmath>

namespace locat::tuners {

math::Vector BoSearch::FreeDims(const math::Vector& unit,
                                const std::vector<int>& free_dims) const {
  math::Vector out(free_dims.size());
  for (size_t i = 0; i < free_dims.size(); ++i) {
    out[i] = unit[static_cast<size_t>(free_dims[i])];
  }
  return out;
}

void BoSearch::Run(core::TuningSession* session, double datasize_gb,
                   const std::vector<int>& free_dims,
                   const sparksim::SparkConf& base_conf,
                   const std::vector<math::Vector>& initial_units) {
  const sparksim::ConfigSpace& space = session->space();
  const math::Vector base_unit = space.ToUnit(base_conf);
  obs::ScopedSpan run_span(obs_.tracer, "bo_search/run", "tuner");

  std::vector<math::Vector> xs;   // GP inputs (free dims only), log targets
  std::vector<double> ys;
  best_seconds_ = 0.0;
  worst_seconds_ = 0.0;
  failed_evals_ = 0;
  trajectory_.clear();

  auto evaluate = [&](const math::Vector& unit_full) {
    // Pin non-free dims to the base configuration.
    math::Vector unit = base_unit;
    for (int d : free_dims) {
      unit[static_cast<size_t>(d)] = unit_full[static_cast<size_t>(d)];
    }
    const sparksim::SparkConf conf = space.Repair(space.FromUnit(unit));
    const double meter_before = session->optimization_seconds();
    const StatusOr<core::EvalRecord> rec_or =
        session->Evaluate(conf, datasize_gb);
    if (!rec_or.ok()) return;  // nothing was charged; skip the point
    const core::EvalRecord& rec = *rec_or;
    // A killed run trains the GP with the censored penalty cost and never
    // becomes the incumbent.
    double objective = rec.app_seconds;
    if (rec.failed) {
      objective = core::CensoredObjective(worst_seconds_, rec.app_seconds, 2.0);
      ++failed_evals_;
    } else {
      worst_seconds_ = std::max(worst_seconds_, rec.app_seconds);
    }
    xs.push_back(FreeDims(space.ToUnit(conf), free_dims));
    ys.push_back(std::log(std::max(1e-6, objective)));
    if (!rec.failed &&
        (best_seconds_ <= 0.0 || rec.app_seconds < best_seconds_)) {
      best_seconds_ = rec.app_seconds;
      best_conf_ = conf;
    }
    trajectory_.push_back(best_seconds_);
    if (obs_.observer != nullptr) {
      core::EmitSimpleIteration(
          obs_.observer, tuner_name_, "bo",
          static_cast<int>(trajectory_.size()) - 1, datasize_gb,
          session->optimization_seconds() - meter_before, objective,
          best_seconds_, rec.full_app, failed_evals_);
    }
  };

  for (const auto& u : initial_units) evaluate(u);
  // Ensure at least two points before the first GP fit. Session errors
  // are deterministic (bad datasize / indices), so cap the attempts
  // instead of spinning.
  for (int guard = 0; xs.size() < 2 && guard < 64; ++guard) {
    evaluate(space.RandomValidUnit(rng_));
  }
  if (xs.size() < 2) return;

  ml::EiMcmc model(options_.ei);
  int since_refit = options_.refit_period;  // force initial fit
  const int remaining =
      options_.iterations - static_cast<int>(trajectory_.size());
  for (int it = 0; it < remaining; ++it) {
    if (since_refit >= options_.refit_period) {
      const size_t n =
          std::min<size_t>(xs.size(), static_cast<size_t>(
                                          options_.training_window));
      const size_t start = xs.size() - n;
      math::Matrix x(n, free_dims.size());
      math::Vector y(n);
      for (size_t i = 0; i < n; ++i) {
        x.SetRow(i, xs[start + i]);
        y[i] = ys[start + i];
      }
      if (!model.Fit(x, y, rng_).ok()) break;
      since_refit = 0;
    }
    // Candidate pool: random + perturbations of the incumbent.
    const math::Vector best_unit = space.ToUnit(best_conf_);
    math::Vector winner;
    double winner_ei = -1.0;
    for (int c = 0; c < options_.candidates; ++c) {
      math::Vector unit = base_unit;
      if (c % 3 == 0) {
        for (int d : free_dims) {
          unit[static_cast<size_t>(d)] = std::clamp(
              best_unit[static_cast<size_t>(d)] + rng_->Gaussian(0.0, 0.12),
              0.0, 1.0);
        }
      } else {
        for (int d : free_dims) {
          unit[static_cast<size_t>(d)] = rng_->NextDouble();
        }
      }
      const sparksim::SparkConf conf = space.Repair(space.FromUnit(unit));
      const math::Vector valid_unit = space.ToUnit(conf);
      const double ei =
          model.AcquisitionValue(FreeDims(valid_unit, free_dims));
      if (ei > winner_ei) {
        winner_ei = ei;
        winner = valid_unit;
      }
    }
    evaluate(winner);
    ++since_refit;
  }
}

}  // namespace locat::tuners
