#include "tuners/frontend.h"

#include <algorithm>

namespace locat::tuners {

QcsaIicpFrontend::QcsaIicpFrontend(std::unique_ptr<core::Tuner> inner,
                                   Options options)
    : inner_(std::move(inner)), options_(options), rng_(options.seed) {}

void QcsaIicpFrontend::SetObservability(const obs::ObsContext& obs) {
  core::Tuner::SetObservability(obs);
  inner_->SetObservability(obs);
}

std::string QcsaIicpFrontend::name() const {
  std::string suffix;
  if (options_.apply_qcsa && options_.apply_iicp) {
    suffix = "+QIT";
  } else if (options_.apply_qcsa) {
    suffix = "+QCSA";
  } else if (options_.apply_iicp) {
    suffix = "+IICP";
  }
  return inner_->name() + suffix;
}

core::TuningResult QcsaIicpFrontend::Tune(core::TuningSession* session,
                                          double datasize_gb) {
  const double meter_start = session->optimization_seconds();
  const int evals_start = session->evaluations();
  sparksim::ConfigSpace space = session->space();

  // --- Sample collection: max(N_QCSA, N_IICP) random full-app runs.
  const int n_samples =
      std::max(options_.apply_qcsa ? options_.n_qcsa : 0,
               options_.apply_iicp ? options_.n_iicp : 0);
  std::vector<math::Vector> units;
  std::vector<double> seconds;
  std::vector<std::vector<double>> per_query(
      static_cast<size_t>(session->app().num_queries()));
  int sample_failures = 0;
  session->ClearQueryRestriction();
  {
    obs::ScopedSpan span(tracer(), "frontend/sampling", "tuner");
    // Evaluation never touches rng_, so all sample configurations can be
    // drawn upfront and evaluated as one batch; confs, noise order and
    // the resulting records match the sequential loop bit-for-bit.
    std::vector<sparksim::SparkConf> sample_confs;
    sample_confs.reserve(static_cast<size_t>(n_samples));
    for (int i = 0; i < n_samples; ++i) {
      sample_confs.push_back(space.RandomValid(&rng_));
    }
    double meter = session->optimization_seconds();
    const StatusOr<std::vector<core::EvalRecord>> recs_or =
        session->EvaluateBatch(sample_confs, datasize_gb);
    if (recs_or.ok()) {
      const std::vector<core::EvalRecord>& recs = *recs_or;
      double sample_best = 0.0;
      for (int i = 0; i < n_samples; ++i) {
        const core::EvalRecord& rec = recs[static_cast<size_t>(i)];
        // Replays the sequential meter additions so the emitted
        // eval_seconds deltas stay bit-identical.
        const double meter_after = meter + rec.app_seconds;
        if (rec.failed) {
          // Killed sample: its per-query vector is truncated, so it can't
          // feed QCSA's aligned columns — drop it from the analyses.
          ++sample_failures;
          if (observer() != nullptr) {
            core::EmitSimpleIteration(observer(), name(), "sampling", i,
                                      datasize_gb, meter_after - meter,
                                      rec.app_seconds, sample_best,
                                      rec.full_app, sample_failures);
          }
          meter = meter_after;
          continue;
        }
        units.push_back(rec.unit);
        seconds.push_back(rec.app_seconds);
        for (size_t q = 0; q < rec.per_query_seconds.size(); ++q) {
          per_query[q].push_back(rec.per_query_seconds[q]);
        }
        if (sample_best <= 0.0 || rec.app_seconds < sample_best) {
          sample_best = rec.app_seconds;
        }
        if (observer() != nullptr) {
          core::EmitSimpleIteration(observer(), name(), "sampling", i,
                                    datasize_gb, meter_after - meter,
                                    rec.app_seconds, sample_best,
                                    rec.full_app, sample_failures);
        }
        meter = meter_after;
      }
    }
  }

  // --- QCSA: restrict the session to the CSQs (successful samples only).
  if (options_.apply_qcsa && static_cast<int>(units.size()) >= 2) {
    auto qcsa = core::AnalyzeQuerySensitivity(per_query, tracer());
    if (qcsa.ok()) {
      qcsa_ = std::move(qcsa).value();
      session->RestrictToQueries(qcsa_->csq_indices);
      if (observer() != nullptr) {
        obs::PhaseEvent ev;
        ev.tuner = name();
        ev.phase = "qcsa";
        ev.fields = {
            {"csq", static_cast<double>(qcsa_->csq_indices.size())},
            {"ciq", static_cast<double>(qcsa_->ciq_indices.size())},
            {"threshold", qcsa_->threshold},
        };
        observer()->OnPhase(ev);
      }
    }
  }

  // --- IICP: restrict the inner tuner's parameters.
  if (options_.apply_iicp && static_cast<int>(units.size()) >= 4) {
    const int n = std::min<int>(options_.n_iicp,
                                static_cast<int>(units.size()));
    math::Matrix confs(static_cast<size_t>(n), sparksim::kNumParams);
    std::vector<double> ts(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      confs.SetRow(static_cast<size_t>(i), units[static_cast<size_t>(i)]);
      ts[static_cast<size_t>(i)] = seconds[static_cast<size_t>(i)];
    }
    auto iicp = core::Iicp::Run(confs, ts, options_.iicp, tracer());
    if (iicp.ok()) {
      iicp_ = std::move(iicp).value();
      inner_->SetFreeParams(iicp_->selected_params());
      if (observer() != nullptr) {
        obs::PhaseEvent ev;
        ev.tuner = name();
        ev.phase = "iicp";
        ev.fields = {
            {"selected_params",
             static_cast<double>(iicp_->selected_params().size())},
            {"latent_dim", static_cast<double>(iicp_->latent_dim())},
        };
        observer()->OnPhase(ev);
      }
    }
  }

  core::TuningResult result = inner_->Tune(session, datasize_gb);
  session->ClearQueryRestriction();

  result.tuner_name = name();
  result.failed_evaluations += sample_failures;
  result.optimization_seconds = session->optimization_seconds() - meter_start;
  result.evaluations = session->evaluations() - evals_start;
  return result;
}

}  // namespace locat::tuners
