#ifndef LOCAT_TUNERS_BASELINES_H_
#define LOCAT_TUNERS_BASELINES_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/tuning.h"
#include "tuners/bo_search.h"

namespace locat::tuners {

/// Uniform random search; the weakest sensible baseline and a useful
/// control in tests and ablations.
class RandomSearchTuner : public core::Tuner {
 public:
  struct Options {
    int evaluations = 60;
    uint64_t seed = 11;

    Options() {}
  };
  explicit RandomSearchTuner(Options options = Options());

  std::string name() const override { return "Random"; }
  core::TuningResult Tune(core::TuningSession* session,
                          double datasize_gb) override;
  void SetFreeParams(const std::vector<int>& param_indices) override;

 private:
  Options options_;
  Rng rng_;
  std::vector<int> free_dims_;
};

/// Tuneful (Fekry et al. 2020): one-at-a-time significance analysis to
/// find the influential parameters, then GP-BO over that subspace.
/// Re-tunes from scratch for every data size (no datasize awareness).
class TunefulTuner : public core::Tuner {
 public:
  struct Options {
    /// OAT probes per parameter (low/high ends).
    int oat_probes_per_param = 1;
    /// Parameters kept after the significance phase.
    int significant_params = 6;
    int bo_iterations = 70;
    uint64_t seed = 21;
    BoSearch::Options bo;

    Options() {}
  };
  explicit TunefulTuner(Options options = Options());

  std::string name() const override { return "Tuneful"; }
  core::TuningResult Tune(core::TuningSession* session,
                          double datasize_gb) override;
  void SetFreeParams(const std::vector<int>& param_indices) override;

 private:
  Options options_;
  Rng rng_;
  std::vector<int> free_dims_;  // externally imposed restriction
};

/// DAC (Yu et al. 2018): builds a datasize-aware performance model from a
/// large random sample set (hierarchical regression trees in the paper —
/// GBRT here), then searches the model with a genetic algorithm and
/// validates the top candidates on the cluster.
class DacTuner : public core::Tuner {
 public:
  struct Options {
    int training_samples = 190;
    int ga_population = 60;
    int ga_generations = 40;
    double ga_mutation = 0.15;
    int validation_runs = 6;
    uint64_t seed = 31;

    Options() {}
  };
  explicit DacTuner(Options options = Options());

  std::string name() const override { return "DAC"; }
  core::TuningResult Tune(core::TuningSession* session,
                          double datasize_gb) override;
  void SetFreeParams(const std::vector<int>& param_indices) override;

 private:
  Options options_;
  Rng rng_;
  std::vector<int> free_dims_;
};

/// GBO-RL (Kunjir & Babu 2020): Guided Bayesian Optimization — BO seeded
/// by an analytical model of Spark's memory management that proposes
/// memory-balanced starting configurations; the RL (their white-box
/// tuning agent) is approximated by the guided seeding plus standard
/// GP-BO, matching its published sample budgets.
class GboRlTuner : public core::Tuner {
 public:
  struct Options {
    int guided_seeds = 8;
    int bo_iterations = 260;
    uint64_t seed = 41;
    BoSearch::Options bo;

    Options() {}
  };
  explicit GboRlTuner(Options options = Options());

  std::string name() const override { return "GBO-RL"; }
  core::TuningResult Tune(core::TuningSession* session,
                          double datasize_gb) override;
  void SetFreeParams(const std::vector<int>& param_indices) override;

 private:
  Options options_;
  Rng rng_;
  std::vector<int> free_dims_;
};

/// QTune (Li et al. 2019): query-aware deep-RL database tuner,
/// approximated by a tabular actor-critic over a discretized action space
/// (increase/decrease one parameter by one level), with the workload
/// featurized by its query-category mix. Inherits DRL's appetite for
/// samples — the highest evaluation budget of the four baselines.
class QtuneTuner : public core::Tuner {
 public:
  struct Options {
    int episodes = 20;
    int steps_per_episode = 19;  // ~456 evaluations
    int levels_per_param = 5;
    double epsilon = 0.40;       // exploration rate
    double alpha = 0.25;          // Q-learning step size
    double gamma = 0.6;          // discount
    uint64_t seed = 51;

    Options() {}
  };
  explicit QtuneTuner(Options options = Options());

  std::string name() const override { return "QTune"; }
  core::TuningResult Tune(core::TuningSession* session,
                          double datasize_gb) override;
  void SetFreeParams(const std::vector<int>& param_indices) override;

 private:
  Options options_;
  Rng rng_;
  std::vector<int> free_dims_;
};

/// CherryPick (Alipourfard et al. 2017): plain GP-BO over the cloud/Spark
/// configuration with a handful of start points — the datasize-oblivious
/// BO baseline Section 3.4 contrasts DAGP against. Used in the
/// DAGP-vs-CherryPick ablation bench.
class CherryPickTuner : public core::Tuner {
 public:
  struct Options {
    int start_points = 3;
    int bo_iterations = 45;
    uint64_t seed = 71;
    BoSearch::Options bo;

    Options() {}
  };
  explicit CherryPickTuner(Options options = Options());

  std::string name() const override { return "CherryPick"; }
  core::TuningResult Tune(core::TuningSession* session,
                          double datasize_gb) override;
  void SetFreeParams(const std::vector<int>& param_indices) override;

 private:
  Options options_;
  Rng rng_;
  std::vector<int> free_dims_;
};

/// All parameter indices [0, kNumParams).
std::vector<int> AllParamIndices();

/// Factory by figure-label name: "Tuneful", "DAC", "GBO-RL", "QTune",
/// "Random". Seeds are offset by `seed_salt` for repetition studies.
std::unique_ptr<core::Tuner> MakeBaseline(const std::string& name,
                                          uint64_t seed_salt = 0);

}  // namespace locat::tuners

#endif  // LOCAT_TUNERS_BASELINES_H_
