#include <algorithm>
#include <cmath>
#include <map>

#include "tuners/baselines.h"

namespace locat::tuners {
namespace {

// Coarse workload feature: dominant query category of the application
// (QTune featurizes queries; this is the tabular analogue).
int WorkloadFeature(const sparksim::SparkSqlApp& app) {
  int counts[3] = {0, 0, 0};
  for (const auto& q : app.queries) {
    counts[static_cast<int>(q.category)]++;
  }
  return static_cast<int>(std::max_element(counts, counts + 3) - counts);
}

}  // namespace

QtuneTuner::QtuneTuner(Options options)
    : options_(options), rng_(options.seed), free_dims_(AllParamIndices()) {}

void QtuneTuner::SetFreeParams(const std::vector<int>& param_indices) {
  free_dims_ = param_indices;
}

core::TuningResult QtuneTuner::Tune(core::TuningSession* session,
                                    double datasize_gb) {
  const double meter_start = session->optimization_seconds();
  const int evals_start = session->evaluations();
  const sparksim::ConfigSpace& space = session->space();
  const int levels = std::max(2, options_.levels_per_param);

  // State: (workload feature, performance bucket); actions: (param, +/-).
  // The Q table maps state -> per-action value.
  const int num_actions = static_cast<int>(free_dims_.size()) * 2;
  std::map<int, std::vector<double>> q_table;
  const int wf = WorkloadFeature(session->app());

  core::TuningResult result;
  result.tuner_name = name();

  // Level assignment per free parameter, starting mid-range.
  std::vector<int> level(free_dims_.size(), levels / 2);
  auto conf_from_levels = [&]() {
    math::Vector unit = space.ToUnit(space.Repair(space.DefaultConf()));
    for (size_t j = 0; j < free_dims_.size(); ++j) {
      unit[static_cast<size_t>(free_dims_[j])] =
          (static_cast<double>(level[j]) + 0.5) / levels;
    }
    return space.Repair(space.FromUnit(unit));
  };

  obs::ScopedSpan tune_span(tracer(), "qtune/episodes", "tuner");
  int qtune_iter = 0;
  bool last_failed = false;        // last charged_evaluate run died
  double worst_seconds = 0.0;      // censored-cost anchor (successes only)
  // Returns the objective the agent learns from: the measured runtime, or
  // the censored penalty when the run died (negative reward steers the
  // policy away). Returns -1 when the session itself errored.
  auto charged_evaluate = [&](const sparksim::SparkConf& conf) {
    const double meter_before = session->optimization_seconds();
    const StatusOr<core::EvalRecord> rec_or =
        session->Evaluate(conf, datasize_gb);
    if (!rec_or.ok()) {
      last_failed = true;
      return -1.0;
    }
    const core::EvalRecord& rec = *rec_or;
    last_failed = rec.failed;
    double objective = rec.app_seconds;
    if (rec.failed) {
      objective = core::CensoredObjective(worst_seconds, rec.app_seconds, 2.0);
      ++result.failed_evaluations;
    } else {
      worst_seconds = std::max(worst_seconds, rec.app_seconds);
    }
    const double incumbent =
        (!rec.failed && (result.best_observed_seconds <= 0.0 ||
                         objective < result.best_observed_seconds))
            ? objective
            : result.best_observed_seconds;
    core::EmitSimpleIteration(
        observer(), result.tuner_name, "episode", qtune_iter++, datasize_gb,
        session->optimization_seconds() - meter_before, objective,
        incumbent, rec.full_app, result.failed_evaluations);
    return objective;
  };

  double reference_seconds = 0.0;  // first observation sets the scale
  for (int ep = 0; ep < options_.episodes; ++ep) {
    // Episodes restart from a random level assignment (exploration across
    // the space, as DRL restarts from workload states).
    for (size_t j = 0; j < level.size(); ++j) {
      level[j] = static_cast<int>(rng_.UniformInt(0, levels - 1));
    }
    double prev_seconds = charged_evaluate(conf_from_levels());
    if (prev_seconds < 0.0) break;  // session error — deterministic
    if (reference_seconds <= 0.0) reference_seconds = prev_seconds;
    if (!last_failed && (result.best_observed_seconds <= 0.0 ||
                         prev_seconds < result.best_observed_seconds)) {
      result.best_observed_seconds = prev_seconds;
      result.best_conf = conf_from_levels();
    }
    result.trajectory.push_back(result.best_observed_seconds);

    for (int step = 0; step + 1 < options_.steps_per_episode; ++step) {
      // State bucket: log-ratio of current runtime to the reference.
      const int bucket = std::clamp(
          static_cast<int>(std::log2(prev_seconds / reference_seconds) * 2) +
              4,
          0, 8);
      const int state = wf * 16 + bucket;
      auto& qvals = q_table[state];
      if (qvals.empty()) qvals.assign(static_cast<size_t>(num_actions), 0.0);

      int action;
      if (rng_.Bernoulli(options_.epsilon)) {
        action = static_cast<int>(rng_.UniformInt(0, num_actions - 1));
      } else {
        action = static_cast<int>(
            std::max_element(qvals.begin(), qvals.end()) - qvals.begin());
      }
      const size_t pidx = static_cast<size_t>(action / 2);
      const int direction = (action % 2 == 0) ? 1 : -1;
      level[pidx] = std::clamp(level[pidx] + direction, 0, levels - 1);

      const double now_seconds = charged_evaluate(conf_from_levels());
      if (now_seconds < 0.0) break;  // session error — deterministic
      const double reward = std::log(prev_seconds / now_seconds);

      // Q-learning update against the next state's best value.
      const int nbucket = std::clamp(
          static_cast<int>(std::log2(now_seconds / reference_seconds) * 2) +
              4,
          0, 8);
      auto& next_q = q_table[wf * 16 + nbucket];
      if (next_q.empty()) next_q.assign(static_cast<size_t>(num_actions), 0.0);
      const double next_best =
          *std::max_element(next_q.begin(), next_q.end());
      qvals[static_cast<size_t>(action)] +=
          options_.alpha * (reward + options_.gamma * next_best -
                            qvals[static_cast<size_t>(action)]);

      prev_seconds = now_seconds;
      if (!last_failed && (result.best_observed_seconds <= 0.0 ||
                           now_seconds < result.best_observed_seconds)) {
        result.best_observed_seconds = now_seconds;
        result.best_conf = conf_from_levels();
      }
      result.trajectory.push_back(result.best_observed_seconds);
    }
  }

  result.optimization_seconds = session->optimization_seconds() - meter_start;
  result.evaluations = session->evaluations() - evals_start;
  return result;
}

std::unique_ptr<core::Tuner> MakeBaseline(const std::string& name,
                                          uint64_t seed_salt) {
  if (name == "Tuneful") {
    TunefulTuner::Options o;
    o.seed += seed_salt;
    return std::make_unique<TunefulTuner>(o);
  }
  if (name == "DAC") {
    DacTuner::Options o;
    o.seed += seed_salt;
    return std::make_unique<DacTuner>(o);
  }
  if (name == "GBO-RL") {
    GboRlTuner::Options o;
    o.seed += seed_salt;
    return std::make_unique<GboRlTuner>(o);
  }
  if (name == "QTune") {
    QtuneTuner::Options o;
    o.seed += seed_salt;
    return std::make_unique<QtuneTuner>(o);
  }
  RandomSearchTuner::Options o;
  o.seed += seed_salt;
  return std::make_unique<RandomSearchTuner>(o);
}

}  // namespace locat::tuners
