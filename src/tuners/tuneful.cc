#include <algorithm>
#include <cmath>
#include <numeric>

#include "tuners/baselines.h"

namespace locat::tuners {

TunefulTuner::TunefulTuner(Options options)
    : options_(options), rng_(options.seed), free_dims_(AllParamIndices()) {}

void TunefulTuner::SetFreeParams(const std::vector<int>& param_indices) {
  free_dims_ = param_indices;
}

core::TuningResult TunefulTuner::Tune(core::TuningSession* session,
                                      double datasize_gb) {
  const double meter_start = session->optimization_seconds();
  const int evals_start = session->evaluations();
  const sparksim::ConfigSpace& space = session->space();

  // Tuneful's incremental sensitivity analysis starts from the stock
  // configuration; OAT influence estimates are conditioned on that base —
  // the method's known weakness in high-dimensional spaces (Section 6 of
  // the LOCAT paper).
  const sparksim::SparkConf base_conf = space.Repair(space.DefaultConf());
  const math::Vector base_unit = space.ToUnit(base_conf);

  // --- Significance phase: one-at-a-time probes per parameter against
  // the base configuration's runtime.
  std::vector<double> influence(sparksim::kNumParams, 0.0);
  int failed_evals = 0;
  {
    obs::ScopedSpan oat_span(tracer(), "tuneful/oat", "tuner");
    int oat_iter = 0;
    double oat_best = 0.0;
    double oat_worst = 0.0;
    // A probe that dies reads as maximally costly (censored penalty), so
    // its parameter still registers as influential; session errors read
    // as the base runtime (no influence signal, no crash).
    auto oat_evaluate = [&](const sparksim::SparkConf& conf) {
      const double meter_before = session->optimization_seconds();
      const StatusOr<core::EvalRecord> rec_or =
          session->Evaluate(conf, datasize_gb);
      if (!rec_or.ok()) return oat_best > 0.0 ? oat_best : 1.0;
      const core::EvalRecord& rec = *rec_or;
      double objective = rec.app_seconds;
      if (rec.failed) {
        objective = core::CensoredObjective(oat_worst, rec.app_seconds, 2.0);
        ++failed_evals;
      } else {
        oat_worst = std::max(oat_worst, rec.app_seconds);
        if (oat_best <= 0.0 || rec.app_seconds < oat_best) {
          oat_best = rec.app_seconds;
        }
      }
      core::EmitSimpleIteration(
          observer(), "Tuneful", "oat", oat_iter++, datasize_gb,
          session->optimization_seconds() - meter_before, objective,
          oat_best, rec.full_app, failed_evals);
      return objective;
    };
    const double base_seconds = oat_evaluate(base_conf);
    for (int d : free_dims_) {
      std::vector<double> observed = {base_seconds};
      for (int probe = 0; probe < options_.oat_probes_per_param; ++probe) {
        math::Vector unit = base_unit;
        unit[static_cast<size_t>(d)] =
            options_.oat_probes_per_param == 1
                ? 1.0
                : static_cast<double>(probe) /
                      (options_.oat_probes_per_param - 1);
        const sparksim::SparkConf conf = space.Repair(space.FromUnit(unit));
        observed.push_back(oat_evaluate(conf));
      }
      const auto [mn, mx] = std::minmax_element(observed.begin(),
                                                observed.end());
      influence[static_cast<size_t>(d)] = *mx - *mn;
    }
    oat_span.Arg("probes", static_cast<double>(oat_iter));
  }

  // Keep the most influential parameters.
  std::vector<int> order = free_dims_;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return influence[static_cast<size_t>(a)] > influence[static_cast<size_t>(b)];
  });
  const size_t keep = std::min<size_t>(
      order.size(), static_cast<size_t>(options_.significant_params));
  std::vector<int> significant(order.begin(),
                               order.begin() + static_cast<long>(keep));
  std::sort(significant.begin(), significant.end());

  // --- GP-BO over the significant subspace.
  BoSearch::Options bopts = options_.bo;
  bopts.iterations = options_.bo_iterations;
  BoSearch bo(bopts, &rng_);
  bo.SetObservability(obs_, name());
  bo.Run(session, datasize_gb, significant, base_conf, {});

  core::TuningResult result;
  result.tuner_name = name();
  result.best_conf = bo.best_conf();
  result.best_observed_seconds = bo.best_seconds();
  result.trajectory = bo.trajectory();
  result.failed_evaluations = failed_evals + bo.failed_evals();
  result.optimization_seconds = session->optimization_seconds() - meter_start;
  result.evaluations = session->evaluations() - evals_start;
  return result;
}

}  // namespace locat::tuners
