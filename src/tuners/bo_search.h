#ifndef LOCAT_TUNERS_BO_SEARCH_H_
#define LOCAT_TUNERS_BO_SEARCH_H_

#include <vector>

#include "common/rng.h"
#include "core/tuning.h"
#include "ml/ei_mcmc.h"

namespace locat::tuners {

/// Shared plain (non-datasize-aware) GP-BO loop used by the Tuneful and
/// GBO-RL baselines. Searches the unit cube restricted to `free_dims`
/// (others pinned to a base configuration), maximizing EI over a random
/// candidate pool.
///
/// Deliberately mirrors the baselines' published methodology rather than
/// LOCAT's: no data-size input, full-application evaluations, fixed
/// iteration budget.
class BoSearch {
 public:
  struct Options {
    int iterations = 120;
    int candidates = 200;
    /// Refit the GP every `refit_period` evaluations (keeps the O(n^3)
    /// cost manageable at baseline-scale budgets).
    int refit_period = 6;
    /// Only the most recent `training_window` samples enter the GP.
    int training_window = 48;
    ml::EiMcmc::Options ei;

    Options() {
      ei.num_hyper_samples = 2;
      ei.burn_in = 4;
      ei.thin = 1;
    }
  };

  BoSearch(Options options, Rng* rng) : options_(options), rng_(rng) {}

  /// Wires observability and the owning tuner's name into the loop so
  /// every charged evaluation emits one BoIterationEvent (phase "bo").
  void SetObservability(const obs::ObsContext& obs, std::string tuner_name) {
    obs_ = obs;
    tuner_name_ = std::move(tuner_name);
  }

  /// Runs the BO loop: evaluates `options.iterations` configurations on
  /// the session (charged), starting from `initial_units` (already
  /// evaluated ones may be passed via AddPrior). Returns nothing; read
  /// best via accessors.
  void Run(core::TuningSession* session, double datasize_gb,
           const std::vector<int>& free_dims,
           const sparksim::SparkConf& base_conf,
           const std::vector<math::Vector>& initial_units);

  const sparksim::SparkConf& best_conf() const { return best_conf_; }
  double best_seconds() const { return best_seconds_; }
  const std::vector<double>& trajectory() const { return trajectory_; }
  /// Evaluations of the last Run that ended in an injected failure; those
  /// runs train the GP with a censored cost and never become incumbent.
  int failed_evals() const { return failed_evals_; }

 private:
  /// Projects free dims of `unit` onto the GP input vector.
  math::Vector FreeDims(const math::Vector& unit,
                        const std::vector<int>& free_dims) const;

  Options options_;
  Rng* rng_;
  sparksim::SparkConf best_conf_;
  double best_seconds_ = 0.0;
  double worst_seconds_ = 0.0;  // censored-cost anchor (successes only)
  int failed_evals_ = 0;
  std::vector<double> trajectory_;
  obs::ObsContext obs_;
  std::string tuner_name_;
};

}  // namespace locat::tuners

#endif  // LOCAT_TUNERS_BO_SEARCH_H_
