#include <algorithm>
#include <cmath>

#include "tuners/baselines.h"

namespace locat::tuners {

GboRlTuner::GboRlTuner(Options options)
    : options_(options), rng_(options.seed), free_dims_(AllParamIndices()) {}

void GboRlTuner::SetFreeParams(const std::vector<int>& param_indices) {
  free_dims_ = param_indices;
}

namespace {

// GBO-RL's white-box model covers Spark's memory management, so its
// search space is the memory/resource knobs (the LOCAT paper's Section 6:
// "GBO-RL only considers memory"). Everything else stays at defaults.
std::vector<int> MemoryCentricDims(const std::vector<int>& allowed) {
  static const int kMemoryDims[] = {
      sparksim::kDriverMemory,        sparksim::kExecutorCores,
      sparksim::kExecutorInstances,   sparksim::kExecutorMemory,
      sparksim::kExecutorMemoryOverhead, sparksim::kMemoryFraction,
      sparksim::kMemoryStorageFraction,  sparksim::kMemoryOffHeapSize,
      sparksim::kMemoryOffHeapEnabled,
  };
  std::vector<int> dims;
  for (int d : kMemoryDims) {
    for (int a : allowed) {
      if (a == d) {
        dims.push_back(d);
        break;
      }
    }
  }
  return dims.empty() ? allowed : dims;
}

}  // namespace

core::TuningResult GboRlTuner::Tune(core::TuningSession* session,
                                    double datasize_gb) {
  const double meter_start = session->optimization_seconds();
  const int evals_start = session->evaluations();
  const sparksim::ConfigSpace& space = session->space();
  const sparksim::ClusterSpec& cluster = space.cluster();

  // --- Analytical memory-model seeding: GBO-RL's distinguishing feature
  // is a white-box model of Spark's memory pools. We emit seeds that
  // balance executor memory against expected per-task working sets, which
  // is what its model optimizes.
  std::vector<math::Vector> seeds;
  for (int i = 0; i < options_.guided_seeds; ++i) {
    sparksim::SparkConf conf = space.DefaultConf();
    // Sweep executors from "few fat" to "many lean" while keeping
    // instances * memory within the cluster.
    const double t = options_.guided_seeds <= 1
                         ? 0.5
                         : static_cast<double>(i) /
                               (options_.guided_seeds - 1);
    const double heap =
        space.lo(sparksim::kExecutorMemory) +
        t * (space.hi(sparksim::kExecutorMemory) -
             space.lo(sparksim::kExecutorMemory));
    const double per_exec = heap + 2.0;
    const double instances = std::max(
        1.0, std::floor(cluster.total_memory_gb() * 0.85 / per_exec));
    conf.Set(sparksim::kExecutorMemory, std::round(heap));
    conf.Set(sparksim::kExecutorInstances, instances);
    conf.Set(sparksim::kExecutorCores,
             std::max(1.0, std::floor(cluster.total_cores() / instances)));
    conf.Set(sparksim::kMemoryFraction, 0.6 + 0.3 * t);
    conf.Set(sparksim::kSqlShufflePartitions,
             200.0 + 600.0 * rng_.NextDouble());
    seeds.push_back(space.ToUnit(space.Repair(conf)));
  }

  // --- Standard GP-BO from the guided seeds over the full space.
  BoSearch::Options bopts = options_.bo;
  bopts.iterations = options_.bo_iterations;
  BoSearch bo(bopts, &rng_);
  bo.SetObservability(obs_, name());
  bo.Run(session, datasize_gb, MemoryCentricDims(free_dims_),
         space.Repair(space.DefaultConf()), seeds);

  core::TuningResult result;
  result.tuner_name = name();
  result.best_conf = bo.best_conf();
  result.best_observed_seconds = bo.best_seconds();
  result.trajectory = bo.trajectory();
  result.failed_evaluations = bo.failed_evals();
  result.optimization_seconds = session->optimization_seconds() - meter_start;
  result.evaluations = session->evaluations() - evals_start;
  return result;
}

}  // namespace locat::tuners
