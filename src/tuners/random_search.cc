#include <algorithm>

#include "tuners/baselines.h"

namespace locat::tuners {

std::vector<int> AllParamIndices() {
  std::vector<int> dims(sparksim::kNumParams);
  for (int i = 0; i < sparksim::kNumParams; ++i) dims[static_cast<size_t>(i)] = i;
  return dims;
}

RandomSearchTuner::RandomSearchTuner(Options options)
    : options_(options), rng_(options.seed), free_dims_(AllParamIndices()) {}

void RandomSearchTuner::SetFreeParams(const std::vector<int>& param_indices) {
  free_dims_ = param_indices;
}

core::TuningResult RandomSearchTuner::Tune(core::TuningSession* session,
                                           double datasize_gb) {
  const double meter_start = session->optimization_seconds();
  const int evals_start = session->evaluations();
  const sparksim::ConfigSpace& space = session->space();
  const math::Vector base_unit = space.ToUnit(space.Repair(space.DefaultConf()));

  core::TuningResult result;
  result.tuner_name = name();
  obs::ScopedSpan tune_span(tracer(), "tune", "tuner");
  tune_span.Arg("tuner", result.tuner_name);
  double worst_seconds = 0.0;  // censored-cost anchor (successes only)
  for (int i = 0; i < options_.evaluations; ++i) {
    math::Vector unit = base_unit;
    for (int d : free_dims_) {
      unit[static_cast<size_t>(d)] = rng_.NextDouble();
    }
    const sparksim::SparkConf conf = space.Repair(space.FromUnit(unit));
    const double meter_before = session->optimization_seconds();
    const StatusOr<core::EvalRecord> rec_or =
        session->Evaluate(conf, datasize_gb);
    if (!rec_or.ok()) continue;
    const core::EvalRecord& rec = *rec_or;
    double objective = rec.app_seconds;
    if (rec.failed) {
      // Killed run: never the incumbent; report the censored cost.
      objective = core::CensoredObjective(worst_seconds, rec.app_seconds, 2.0);
      ++result.failed_evaluations;
    } else {
      worst_seconds = std::max(worst_seconds, rec.app_seconds);
      if (result.best_observed_seconds <= 0.0 ||
          rec.app_seconds < result.best_observed_seconds) {
        result.best_observed_seconds = rec.app_seconds;
        result.best_conf = conf;
      }
    }
    result.trajectory.push_back(result.best_observed_seconds);
    core::EmitSimpleIteration(observer(), result.tuner_name, "random", i,
                              datasize_gb,
                              session->optimization_seconds() - meter_before,
                              objective, result.best_observed_seconds,
                              rec.full_app, result.failed_evaluations);
  }
  result.optimization_seconds = session->optimization_seconds() - meter_start;
  result.evaluations = session->evaluations() - evals_start;
  return result;
}

}  // namespace locat::tuners
