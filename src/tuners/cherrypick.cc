#include <algorithm>

#include "tuners/baselines.h"

namespace locat::tuners {

CherryPickTuner::CherryPickTuner(Options options)
    : options_(options), rng_(options.seed), free_dims_(AllParamIndices()) {}

void CherryPickTuner::SetFreeParams(const std::vector<int>& param_indices) {
  free_dims_ = param_indices;
}

core::TuningResult CherryPickTuner::Tune(core::TuningSession* session,
                                         double datasize_gb) {
  const double meter_start = session->optimization_seconds();
  const int evals_start = session->evaluations();
  const sparksim::ConfigSpace& space = session->space();

  // CherryPick (Alipourfard et al., NSDI'17): plain GP-BO with EI over the
  // configuration space, a few random start points, and a fixed iteration
  // budget. Crucially — no data-size input: every new input size means a
  // full re-tune (the limitation DAGP removes, Section 3.4).
  std::vector<math::Vector> starts;
  for (int i = 0; i < options_.start_points; ++i) {
    starts.push_back(space.RandomValidUnit(&rng_));
  }
  BoSearch::Options bopts = options_.bo;
  bopts.iterations = options_.bo_iterations;
  BoSearch bo(bopts, &rng_);
  bo.SetObservability(obs_, name());
  bo.Run(session, datasize_gb, free_dims_,
         space.Repair(space.DefaultConf()), starts);

  core::TuningResult result;
  result.tuner_name = name();
  result.best_conf = bo.best_conf();
  result.best_observed_seconds = bo.best_seconds();
  result.trajectory = bo.trajectory();
  result.failed_evaluations = bo.failed_evals();
  result.optimization_seconds = session->optimization_seconds() - meter_start;
  result.evaluations = session->evaluations() - evals_start;
  return result;
}

}  // namespace locat::tuners
