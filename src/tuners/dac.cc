#include <algorithm>
#include <cmath>

#include "ml/gbrt.h"
#include "tuners/baselines.h"

namespace locat::tuners {
namespace {

// Tournament selection for the genetic search.
size_t Tournament(const std::vector<double>& fitness, Rng* rng) {
  const size_t a = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(fitness.size()) - 1));
  const size_t b = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(fitness.size()) - 1));
  return fitness[a] < fitness[b] ? a : b;  // minimizing predicted time
}

}  // namespace

DacTuner::DacTuner(Options options)
    : options_(options), rng_(options.seed), free_dims_(AllParamIndices()) {}

void DacTuner::SetFreeParams(const std::vector<int>& param_indices) {
  free_dims_ = param_indices;
}

core::TuningResult DacTuner::Tune(core::TuningSession* session,
                                  double datasize_gb) {
  const double meter_start = session->optimization_seconds();
  const int evals_start = session->evaluations();
  const sparksim::ConfigSpace& space = session->space();
  const math::Vector base_unit =
      space.ToUnit(space.Repair(space.DefaultConf()));

  core::TuningResult result;
  result.tuner_name = name();

  // --- Phase 1: collect the training set with random configurations.
  // (DAC's defining cost: it needs enough samples for an accurate
  // datasize-aware model.)
  std::vector<math::Vector> units;
  std::vector<double> seconds;
  double worst_seconds = 0.0;  // censored-cost anchor (successes only)
  {
    obs::ScopedSpan span(tracer(), "dac/sample", "tuner");
    for (int i = 0; i < options_.training_samples; ++i) {
      math::Vector unit = base_unit;
      for (int d : free_dims_) {
        unit[static_cast<size_t>(d)] = rng_.NextDouble();
      }
      const sparksim::SparkConf conf = space.Repair(space.FromUnit(unit));
      const double meter_before = session->optimization_seconds();
      const StatusOr<core::EvalRecord> rec_or =
          session->Evaluate(conf, datasize_gb);
      if (!rec_or.ok()) continue;
      const core::EvalRecord& rec = *rec_or;
      double objective = rec.app_seconds;
      if (rec.failed) {
        // Killed run: trains the model with the censored penalty, never
        // the incumbent.
        objective =
            core::CensoredObjective(worst_seconds, rec.app_seconds, 2.0);
        ++result.failed_evaluations;
      } else {
        worst_seconds = std::max(worst_seconds, rec.app_seconds);
        if (result.best_observed_seconds <= 0.0 ||
            rec.app_seconds < result.best_observed_seconds) {
          result.best_observed_seconds = rec.app_seconds;
          result.best_conf = conf;
        }
      }
      units.push_back(space.ToUnit(conf));
      seconds.push_back(objective);
      result.trajectory.push_back(result.best_observed_seconds);
      core::EmitSimpleIteration(
          observer(), result.tuner_name, "sample", i, datasize_gb,
          session->optimization_seconds() - meter_before, objective,
          result.best_observed_seconds, rec.full_app,
          result.failed_evaluations);
    }
  }
  if (units.size() < 2) {
    result.optimization_seconds =
        session->optimization_seconds() - meter_start;
    result.evaluations = session->evaluations() - evals_start;
    return result;
  }

  std::vector<math::Vector> population;
  std::vector<double> fitness;
  {
    // --- Phase 2: fit the GBRT performance model on (free dims -> log t).
    obs::ScopedSpan model_span(tracer(), "dac/model+ga", "tuner");
    math::Matrix x(units.size(), free_dims_.size());
    math::Vector y(units.size());
    for (size_t i = 0; i < units.size(); ++i) {
      for (size_t j = 0; j < free_dims_.size(); ++j) {
        x(i, j) = units[i][static_cast<size_t>(free_dims_[j])];
      }
      y[i] = std::log(std::max(1e-6, seconds[i]));
    }
    // DAC's published model reports >15% relative error (Figure 16); a
    // deliberately shallow ensemble reproduces that accuracy envelope.
    ml::Gbrt::Options gopts;
    gopts.num_trees = 60;
    gopts.tree.max_depth = 3;
    ml::Gbrt model(gopts);
    if (!model.Fit(x, y).ok()) {
      result.optimization_seconds =
          session->optimization_seconds() - meter_start;
      result.evaluations = session->evaluations() - evals_start;
      return result;
    }

    // --- Phase 3: genetic search over the model.
    for (int i = 0; i < options_.ga_population; ++i) {
      math::Vector ind(free_dims_.size());
      for (size_t j = 0; j < ind.size(); ++j) ind[j] = rng_.NextDouble();
      population.push_back(std::move(ind));
    }
    auto fitness_of = [&](const math::Vector& ind) {
      return model.Predict(ind);
    };
    fitness.resize(population.size());
    for (size_t i = 0; i < population.size(); ++i) {
      fitness[i] = fitness_of(population[i]);
    }
    for (int gen = 0; gen < options_.ga_generations; ++gen) {
      std::vector<math::Vector> next;
      next.reserve(population.size());
      // Elitism: carry the best individual over unchanged.
      const size_t best_idx = static_cast<size_t>(
          std::min_element(fitness.begin(), fitness.end()) -
          fitness.begin());
      next.push_back(population[best_idx]);
      while (next.size() < population.size()) {
        const math::Vector& pa = population[Tournament(fitness, &rng_)];
        const math::Vector& pb = population[Tournament(fitness, &rng_)];
        math::Vector child(pa.size());
        for (size_t j = 0; j < child.size(); ++j) {
          child[j] = rng_.Bernoulli(0.5) ? pa[j] : pb[j];
          if (rng_.Bernoulli(options_.ga_mutation)) {
            child[j] =
                std::clamp(child[j] + rng_.Gaussian(0.0, 0.15), 0.0, 1.0);
          }
        }
        next.push_back(std::move(child));
      }
      population = std::move(next);
      for (size_t i = 0; i < population.size(); ++i) {
        fitness[i] = fitness_of(population[i]);
      }
    }
    model_span.Arg("training_samples", static_cast<double>(units.size()));
    model_span.Arg("generations", static_cast<double>(options_.ga_generations));
  }

  // --- Phase 4: validate the model's top candidates on the cluster.
  std::vector<size_t> order(population.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return fitness[a] < fitness[b]; });
  // DAC's output is the model's recommendation (the GA optimum), validated
  // on the cluster — not the minimum of the random training sample. The
  // model's accuracy is therefore the method's quality ceiling.
  const int validations =
      std::min<int>(options_.validation_runs,
                    static_cast<int>(population.size()));
  obs::ScopedSpan validate_span(tracer(), "dac/validate", "tuner");
  double best_validated = 0.0;
  for (int v = 0; v < validations; ++v) {
    math::Vector unit = base_unit;
    const math::Vector& ind = population[order[static_cast<size_t>(v)]];
    for (size_t j = 0; j < free_dims_.size(); ++j) {
      unit[static_cast<size_t>(free_dims_[j])] = ind[j];
    }
    const sparksim::SparkConf conf = space.Repair(space.FromUnit(unit));
    const double meter_before = session->optimization_seconds();
    const StatusOr<core::EvalRecord> rec_or =
        session->Evaluate(conf, datasize_gb);
    if (!rec_or.ok()) continue;
    const core::EvalRecord& rec = *rec_or;
    double objective = rec.app_seconds;
    if (rec.failed) {
      objective = core::CensoredObjective(worst_seconds, rec.app_seconds, 2.0);
      ++result.failed_evaluations;
    } else if (best_validated <= 0.0 || rec.app_seconds < best_validated) {
      best_validated = rec.app_seconds;
      result.best_conf = conf;
      result.best_observed_seconds = rec.app_seconds;
    }
    result.trajectory.push_back(result.best_observed_seconds);
    core::EmitSimpleIteration(
        observer(), result.tuner_name, "validate", v, datasize_gb,
        session->optimization_seconds() - meter_before, objective,
        result.best_observed_seconds, rec.full_app,
        result.failed_evaluations);
  }

  result.optimization_seconds = session->optimization_seconds() - meter_start;
  result.evaluations = session->evaluations() - evals_start;
  return result;
}

}  // namespace locat::tuners
