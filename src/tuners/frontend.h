#ifndef LOCAT_TUNERS_FRONTEND_H_
#define LOCAT_TUNERS_FRONTEND_H_

#include <memory>
#include <string>

#include "core/iicp.h"
#include "core/qcsa.h"
#include "core/tuning.h"

namespace locat::tuners {

/// Retrofits LOCAT's QCSA and/or IICP stages onto any baseline tuner
/// (Section 5.10: the "QCSA", "IICP", and "QIT" variants of Tuneful, DAC,
/// GBO-RL, and QTune).
///
/// The frontend collects a small random sample set (charged to the
/// optimization meter like everything else), then:
///   - QCSA: restricts the session to the configuration-sensitive queries
///     so the inner tuner transparently runs the RQA;
///   - IICP: restricts the inner tuner's search to the CPS-selected
///     parameters via Tuner::SetFreeParams.
class QcsaIicpFrontend : public core::Tuner {
 public:
  struct Options {
    bool apply_qcsa = true;
    bool apply_iicp = true;
    int n_qcsa = 30;
    int n_iicp = 20;
    uint64_t seed = 61;
    core::IicpOptions iicp;

    Options() {}
  };

  QcsaIicpFrontend(std::unique_ptr<core::Tuner> inner, Options options);

  std::string name() const override;
  core::TuningResult Tune(core::TuningSession* session,
                          double datasize_gb) override;
  void SetObservability(const obs::ObsContext& obs) override;

  const core::QcsaResult* qcsa_result() const {
    return qcsa_ ? &*qcsa_ : nullptr;
  }
  const core::IicpResult* iicp_result() const {
    return iicp_ ? &*iicp_ : nullptr;
  }

 private:
  std::unique_ptr<core::Tuner> inner_;
  Options options_;
  Rng rng_;
  std::optional<core::QcsaResult> qcsa_;
  std::optional<core::IicpResult> iicp_;
};

}  // namespace locat::tuners

#endif  // LOCAT_TUNERS_FRONTEND_H_
