#ifndef LOCAT_MATH_EIGEN_H_
#define LOCAT_MATH_EIGEN_H_

#include "common/status.h"
#include "math/matrix.h"

namespace locat::math {

/// Result of a symmetric eigendecomposition: `A = V diag(lambda) V^T`.
/// Eigenvalues are sorted in descending order; `eigenvectors.Col(i)` is the
/// unit eigenvector for `eigenvalues[i]`.
struct EigenDecomposition {
  Vector eigenvalues;
  Matrix eigenvectors;
};

/// Computes all eigenvalues/eigenvectors of a symmetric matrix with the
/// cyclic Jacobi rotation method. O(n^3) per sweep; intended for the
/// kernel matrices KPCA builds (n up to a few hundred), not for large-scale
/// numerics.
///
/// Returns InvalidArgument for non-square input and Internal if the sweep
/// limit is exhausted before off-diagonal mass drops below `tolerance`.
StatusOr<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                  double tolerance = 1e-12,
                                                  int max_sweeps = 100);

}  // namespace locat::math

#endif  // LOCAT_MATH_EIGEN_H_
