#ifndef LOCAT_MATH_CHOLESKY_H_
#define LOCAT_MATH_CHOLESKY_H_

#include "common/status.h"
#include "math/matrix.h"

namespace locat::math {

/// Cholesky factorization `A = L L^T` of a symmetric positive-definite
/// matrix, plus the triangular solves needed by Gaussian-process
/// regression.
///
/// The GP hot loop is: factor the kernel matrix once, then call
/// `Solve`/`SolveLower` for the mean and variance of each prediction.
class Cholesky {
 public:
  /// Factors `a` (must be square, symmetric, positive definite). Returns
  /// FailedPrecondition when a non-positive pivot is encountered; callers
  /// typically retry after adding diagonal jitter.
  static StatusOr<Cholesky> Factor(const Matrix& a);

  /// Like `Factor` but retries with growing diagonal jitter
  /// (`initial_jitter * 10^k`, k = 0..max_attempts-1). Returns the factor of
  /// `a + jitter*I` for the first jitter that succeeds.
  static StatusOr<Cholesky> FactorWithJitter(const Matrix& a,
                                             double initial_jitter = 1e-10,
                                             int max_attempts = 10);

  /// Solves `A x = b` via forward+backward substitution.
  Vector Solve(const Vector& b) const;

  /// Solves `L y = b` (forward substitution only). `alpha = L^-T L^-1 b`
  /// style GP computations use this for the predictive variance.
  Vector SolveLower(const Vector& b) const;

  /// Solves `L Y = B` for every column of the n x m right-hand side at
  /// once. Blocked forward substitution: the elimination loop streams
  /// whole rows of Y (contiguous in the row-major layout), so solving m
  /// candidates together touches L once instead of m times. This is the
  /// kernel behind `GaussianProcess::PredictBatch`.
  Matrix SolveLowerMatrix(const Matrix& b) const;

  /// Solves `A X = B` column-by-column.
  Matrix Solve(const Matrix& b) const;

  /// log(det(A)) = 2 * sum(log(L_ii)); needed for the GP log marginal
  /// likelihood.
  double LogDeterminant() const;

  /// Grows the factor by one row/column in O(n^2): after the call this is
  /// the factor of [[A + jI, cross], [cross^T, diag + j]] where A + jI is
  /// the matrix currently factored and j is `jitter()`. The stored jitter
  /// is applied to the new diagonal entry internally — that is the jitter
  /// contract: appended rows always see the same regularization the
  /// original factorization actually used, so callers never re-derive it.
  /// Returns FailedPrecondition (factor unchanged) when the Schur
  /// completion is not a positive finite pivot; callers then fall back to
  /// a full refactorization.
  Status AppendRow(const Vector& cross, double diag);

  /// Rank-1 update: this becomes the factor of A + v v^T (+ the same
  /// jitter as before). O(n^2), cannot fail for a valid factor.
  Status RankOneUpdate(const Vector& v);

  /// Rank-1 downdate: this becomes the factor of A - v v^T. Returns
  /// FailedPrecondition (factor unchanged) when the downdated matrix is
  /// not positive definite.
  Status RankOneDowndate(const Vector& v);

  /// The lower-triangular factor.
  const Matrix& L() const { return l_; }

  /// The jitter that was added to the diagonal (0 unless
  /// `FactorWithJitter` had to regularize).
  double jitter() const { return jitter_; }

 private:
  explicit Cholesky(Matrix l, double jitter) : l_(std::move(l)), jitter_(jitter) {}

  Matrix l_;
  double jitter_ = 0.0;
};

}  // namespace locat::math

#endif  // LOCAT_MATH_CHOLESKY_H_
