#include "math/cholesky.h"

#include <cmath>

#include "math/kern/kern.h"

namespace locat::math {

StatusOr<Cholesky> Cholesky::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  // Copy the lower triangle into a zeroed matrix and factor in place; the
  // kern Cholesky never touches the (zero) upper triangle.
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    const double* src = a.RowData(i);
    double* dst = l.RowData(i);
    for (size_t j = 0; j <= i; ++j) dst[j] = src[j];
  }
  const ptrdiff_t pivot =
      n == 0 ? -1 : kern::CholeskyFactorInPlace(l.RowData(0), n);
  if (pivot >= 0) {
    return Status::FailedPrecondition(
        "matrix is not positive definite (pivot " + std::to_string(pivot) +
        ")");
  }
  return Cholesky(std::move(l), /*jitter=*/0.0);
}

StatusOr<Cholesky> Cholesky::FactorWithJitter(const Matrix& a,
                                              double initial_jitter,
                                              int max_attempts) {
  auto first = Factor(a);
  if (first.ok()) return first;
  // Attempt 0 already failed on `a` itself, so the jittered copy is built
  // exactly once; later attempts only bump the diagonal in place by the
  // difference to the next jitter level.
  Matrix regularized = a;
  double jitter = initial_jitter;
  double applied = 0.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    regularized.AddToDiagonal(jitter - applied);
    applied = jitter;
    auto result = Factor(regularized);
    if (result.ok()) {
      Cholesky chol = std::move(result).value();
      chol.jitter_ = jitter;
      return chol;
    }
    jitter *= 10.0;
  }
  return Status::FailedPrecondition(
      "matrix not positive definite even with jitter");
}

Vector Cholesky::Solve(const Vector& b) const {
  Vector y = SolveLower(b);
  const size_t n = l_.rows();
  // Backward substitution: L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= l_(j, ii) * x[j];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::SolveLower(const Vector& b) const {
  const size_t n = l_.rows();
  assert(b.size() == n);
  Vector y(n);
  const double* yd = y.data().data();
  for (size_t i = 0; i < n; ++i) {
    const double s = b[i] - kern::Dot(l_.RowData(i), yd, i);
    y[i] = s / l_(i, i);
  }
  return y;
}

Matrix Cholesky::SolveLowerMatrix(const Matrix& b) const {
  const size_t n = l_.rows();
  assert(b.rows() == n);
  const size_t m = b.cols();
  Matrix y = b;
  if (n > 0 && m > 0) {
    kern::SolveLowerMatrixInPlace(l_.RowData(0), n, y.RowData(0), m);
  }
  return y;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  Matrix x(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    Vector col = Solve(b.Col(c));
    for (size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

double Cholesky::LogDeterminant() const {
  double s = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Status Cholesky::AppendRow(const Vector& cross, double diag) {
  const size_t n = l_.rows();
  if (cross.size() != n) {
    return Status::InvalidArgument("AppendRow cross size mismatch");
  }
  // Build the extended storage first so the existing factor stays intact
  // when the completion rejects the append.
  Matrix grown(n + 1, n + 1);
  for (size_t i = 0; i < n; ++i) {
    const double* src = l_.RowData(i);
    double* dst = grown.RowData(i);
    for (size_t j = 0; j <= i; ++j) dst[j] = src[j];
  }
  double* row = grown.RowData(n);
  for (size_t j = 0; j < n; ++j) row[j] = cross[j];
  const double d =
      n == 0 ? diag + jitter_
             : kern::CholUpdateAppendRow(grown.RowData(0), n, n + 1, row,
                                         diag + jitter_);
  if (!(d > 0.0) || !std::isfinite(d)) {
    return Status::FailedPrecondition(
        "appended row makes the matrix indefinite (completion " +
        std::to_string(d) + ")");
  }
  row[n] = std::sqrt(d);
  l_ = std::move(grown);
  return Status::OK();
}

Status Cholesky::RankOneUpdate(const Vector& v) {
  const size_t n = l_.rows();
  if (v.size() != n) {
    return Status::InvalidArgument("RankOneUpdate size mismatch");
  }
  if (n == 0) return Status::OK();
  Vector work = v;
  kern::CholRank1Update(l_.RowData(0), n, n, work.data().data());
  return Status::OK();
}

Status Cholesky::RankOneDowndate(const Vector& v) {
  const size_t n = l_.rows();
  if (v.size() != n) {
    return Status::InvalidArgument("RankOneDowndate size mismatch");
  }
  if (n == 0) return Status::OK();
  // The hyperbolic sweep modifies columns as it goes, so run it on a copy
  // and only commit on success.
  Matrix candidate = l_;
  Vector work = v;
  const ptrdiff_t bad =
      kern::CholRank1Downdate(candidate.RowData(0), n, n, work.data().data());
  if (bad >= 0) {
    return Status::FailedPrecondition(
        "downdated matrix is not positive definite (column " +
        std::to_string(bad) + ")");
  }
  l_ = std::move(candidate);
  return Status::OK();
}

}  // namespace locat::math
