#include "math/cholesky.h"

#include <cmath>

namespace locat::math {

StatusOr<Cholesky> Cholesky::Factor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("Cholesky requires a square matrix");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::FailedPrecondition(
          "matrix is not positive definite (pivot " + std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    l(j, j) = ljj;
    for (size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      l(i, j) = s / ljj;
    }
  }
  return Cholesky(std::move(l), /*jitter=*/0.0);
}

StatusOr<Cholesky> Cholesky::FactorWithJitter(const Matrix& a,
                                              double initial_jitter,
                                              int max_attempts) {
  auto first = Factor(a);
  if (first.ok()) return first;
  // Attempt 0 already failed on `a` itself, so the jittered copy is built
  // exactly once; later attempts only bump the diagonal in place by the
  // difference to the next jitter level.
  Matrix regularized = a;
  double jitter = initial_jitter;
  double applied = 0.0;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    regularized.AddToDiagonal(jitter - applied);
    applied = jitter;
    auto result = Factor(regularized);
    if (result.ok()) {
      Cholesky chol = std::move(result).value();
      chol.jitter_ = jitter;
      return chol;
    }
    jitter *= 10.0;
  }
  return Status::FailedPrecondition(
      "matrix not positive definite even with jitter");
}

Vector Cholesky::Solve(const Vector& b) const {
  Vector y = SolveLower(b);
  const size_t n = l_.rows();
  // Backward substitution: L^T x = y.
  Vector x(n);
  for (size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= l_(j, ii) * x[j];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Vector Cholesky::SolveLower(const Vector& b) const {
  const size_t n = l_.rows();
  assert(b.size() == n);
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t j = 0; j < i; ++j) s -= l_(i, j) * y[j];
    y[i] = s / l_(i, i);
  }
  return y;
}

Matrix Cholesky::SolveLowerMatrix(const Matrix& b) const {
  const size_t n = l_.rows();
  assert(b.rows() == n);
  const size_t m = b.cols();
  Matrix y = b;
  for (size_t i = 0; i < n; ++i) {
    double* yi = y.RowData(i);
    const double* li = l_.RowData(i);
    for (size_t j = 0; j < i; ++j) {
      const double l_ij = li[j];
      if (l_ij == 0.0) continue;
      const double* yj = y.RowData(j);
      for (size_t c = 0; c < m; ++c) yi[c] -= l_ij * yj[c];
    }
    const double inv = 1.0 / li[i];
    for (size_t c = 0; c < m; ++c) yi[c] *= inv;
  }
  return y;
}

Matrix Cholesky::Solve(const Matrix& b) const {
  Matrix x(b.rows(), b.cols());
  for (size_t c = 0; c < b.cols(); ++c) {
    Vector col = Solve(b.Col(c));
    for (size_t r = 0; r < b.rows(); ++r) x(r, c) = col[r];
  }
  return x;
}

double Cholesky::LogDeterminant() const {
  double s = 0.0;
  for (size_t i = 0; i < l_.rows(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

}  // namespace locat::math
