#ifndef LOCAT_MATH_MATRIX_H_
#define LOCAT_MATH_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace locat::math {

/// A dense column vector of doubles. Small, value-semantic, and sufficient
/// for the GP/KPCA workloads in this library (dimensions in the tens to low
/// thousands).
class Vector {
 public:
  Vector() = default;
  explicit Vector(size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> values) : data_(values) {}
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  double operator[](size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Euclidean norm.
  double Norm() const;
  /// Sum of elements.
  double Sum() const;
  /// Dot product; sizes must match.
  double Dot(const Vector& other) const;

  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double s);

  friend Vector operator+(Vector a, const Vector& b) { return a += b; }
  friend Vector operator-(Vector a, const Vector& b) { return a -= b; }
  friend Vector operator*(Vector a, double s) { return a *= s; }
  friend Vector operator*(double s, Vector a) { return a *= s; }

  std::string ToString(int precision = 4) const;

 private:
  std::vector<double> data_;
};

/// A dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds a matrix from nested initializer lists; all rows must have the
  /// same length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Returns row `r` as a Vector.
  Vector Row(size_t r) const;
  /// Borrowed pointer to the `cols()` contiguous entries of row `r` —
  /// the allocation-free accessor hot loops use instead of Row().
  const double* RowData(size_t r) const {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  double* RowData(size_t r) {
    assert(r < rows_);
    return data_.data() + r * cols_;
  }
  /// Returns column `c` as a Vector.
  Vector Col(size_t c) const;
  /// Overwrites row `r`; sizes must match.
  void SetRow(size_t r, const Vector& v);

  Matrix Transpose() const;

  /// Matrix-matrix product; inner dimensions must agree.
  Matrix operator*(const Matrix& other) const;
  /// `this * other^T` without materializing the transpose. Both operands
  /// are walked row-major, so the inner dot product is contiguous in both
  /// — the cache-friendly kernel behind batched GP cross-kernels.
  /// Requires `cols() == other.cols()`.
  Matrix MultiplyTransposed(const Matrix& other) const;
  /// Matrix-vector product; `v.size()` must equal `cols()`.
  Vector operator*(const Vector& v) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }

  /// Adds `value` to every diagonal entry (jitter / ridge term).
  void AddToDiagonal(double value);

  /// Max |a_ij - b_ij|; matrices must have equal shapes.
  double MaxAbsDiff(const Matrix& other) const;

  std::string ToString(int precision = 4) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace locat::math

#endif  // LOCAT_MATH_MATRIX_H_
