#ifndef LOCAT_MATH_DISTRIBUTIONS_H_
#define LOCAT_MATH_DISTRIBUTIONS_H_

namespace locat::math {

/// Standard normal probability density function.
double NormalPdf(double x);

/// Standard normal cumulative distribution function (via erfc; accurate to
/// double precision over the whole real line).
double NormalCdf(double x);

/// Expected Improvement for a *minimization* problem:
///   EI(mu, sigma, best) = E[max(best - Y, 0)],  Y ~ N(mu, sigma^2).
/// Returns max(best - mu, 0) when sigma ~ 0.
double ExpectedImprovement(double mean, double stddev, double best);

/// Probability of Improvement for a minimization problem:
///   PI = P(Y < best),  Y ~ N(mu, sigma^2). Degenerates to {0, 1} when
/// sigma ~ 0 (Section 2.2 lists PI among the popular acquisitions).
double ProbabilityOfImprovement(double mean, double stddev, double best);

/// Negated lower confidence bound for a minimization problem:
///   -(mu - beta * sigma). Maximizing this is the GP-UCB/LCB rule
/// (Srinivas et al.); larger values are more promising.
double NegativeLowerConfidenceBound(double mean, double stddev, double beta);

}  // namespace locat::math

#endif  // LOCAT_MATH_DISTRIBUTIONS_H_
