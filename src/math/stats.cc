#include "math/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace locat::math {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const double m = Mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double CoefficientOfVariation(const std::vector<double>& xs) {
  const double m = Mean(xs);
  if (m == 0.0) return 0.0;
  return StdDev(xs) / m;
}

double MeanSquaredError(const std::vector<double>& predicted,
                        const std::vector<double>& actual) {
  assert(predicted.size() == actual.size());
  if (predicted.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    const double d = predicted[i] - actual[i];
    s += d * d;
  }
  return s / static_cast<double>(predicted.size());
}

double MeanSquaredRelativeError(const std::vector<double>& predicted,
                                const std::vector<double>& actual) {
  assert(predicted.size() == actual.size());
  double s = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < predicted.size(); ++i) {
    if (actual[i] == 0.0) continue;
    const double d = (predicted[i] - actual[i]) / actual[i];
    s += d * d;
    ++n;
  }
  return n == 0 ? 0.0 : s / static_cast<double>(n);
}

double Min(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  assert(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double Quantile(std::vector<double> xs, double q) {
  assert(!xs.empty());
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

std::vector<double> RankWithTies(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return xs[a] < xs[b]; });

  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Items order[i..j] are tied; assign the mean of ranks i+1..j+1.
    const double mean_rank = (static_cast<double>(i + 1) +
                              static_cast<double>(j + 1)) /
                             2.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace locat::math
