#ifndef LOCAT_MATH_STATS_H_
#define LOCAT_MATH_STATS_H_

#include <cstddef>
#include <vector>

namespace locat::math {

/// Descriptive statistics used across QCSA (CV), IICP, and the evaluation
/// harness. All functions return 0.0 on empty input unless noted.

/// Arithmetic mean.
double Mean(const std::vector<double>& xs);

/// Population variance (divides by N, matching equation (3) of the paper).
double Variance(const std::vector<double>& xs);

/// Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// Coefficient of variation: StdDev / Mean (equation (3)). Returns 0 when
/// the mean is 0.
double CoefficientOfVariation(const std::vector<double>& xs);

/// Mean squared error between predictions and targets; sizes must match.
double MeanSquaredError(const std::vector<double>& predicted,
                        const std::vector<double>& actual);

/// Relative error version of MSE used for Figure 16: mean of
/// ((pred - actual)/actual)^2 over entries with actual != 0.
double MeanSquaredRelativeError(const std::vector<double>& predicted,
                                const std::vector<double>& actual);

/// Minimum / maximum; require non-empty input (asserts).
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);

/// Linearly-interpolated quantile, q in [0, 1]; requires non-empty input.
double Quantile(std::vector<double> xs, double q);

/// Average ranks (1-based) with ties sharing the mean rank; the building
/// block of Spearman correlation.
std::vector<double> RankWithTies(const std::vector<double>& xs);

}  // namespace locat::math

#endif  // LOCAT_MATH_STATS_H_
