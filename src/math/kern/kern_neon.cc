// NEON backend: two float64x2_t halves per 4-lane vector (AdvSIMD is
// 128-bit). NEON is baseline on aarch64, so no extra ISA flags are
// needed; the TU is simply excluded from non-ARM builds.

#if defined(__aarch64__)

#include <arm_neon.h>

#include "math/kern/kern_impl.h"
#include "math/kern/kern_ops.h"

namespace locat::math::kern {
namespace {

struct V4Neon {
  float64x2_t lo, hi;

  static V4Neon Zero() { return {vdupq_n_f64(0.0), vdupq_n_f64(0.0)}; }
  static V4Neon Broadcast(double s) { return {vdupq_n_f64(s), vdupq_n_f64(s)}; }
  static V4Neon Load(const double* p) { return {vld1q_f64(p), vld1q_f64(p + 2)}; }
  void Store(double* p) const {
    vst1q_f64(p, lo);
    vst1q_f64(p + 2, hi);
  }
  static V4Neon Add(V4Neon a, V4Neon b) {
    return {vaddq_f64(a.lo, b.lo), vaddq_f64(a.hi, b.hi)};
  }
  static V4Neon Sub(V4Neon a, V4Neon b) {
    return {vsubq_f64(a.lo, b.lo), vsubq_f64(a.hi, b.hi)};
  }
  static V4Neon Mul(V4Neon a, V4Neon b) {
    return {vmulq_f64(a.lo, b.lo), vmulq_f64(a.hi, b.hi)};
  }
  static V4Neon Fma(V4Neon a, V4Neon b, V4Neon c) {
    // vfmaq_f64(c, a, b) = c + a * b, fused single rounding.
    return {vfmaq_f64(c.lo, a.lo, b.lo), vfmaq_f64(c.hi, a.hi, b.hi)};
  }
  static V4Neon Round(V4Neon x) {
    return {vrndnq_f64(x.lo), vrndnq_f64(x.hi)};  // nearest-even
  }
  static V4Neon IfLess(V4Neon x, V4Neon y, V4Neon a, V4Neon b) {
    // vcltq is an ordered compare: NaN lanes produce all-zero masks and
    // select b, matching _CMP_LT_OQ and the scalar `<`.
    const uint64x2_t mlo = vcltq_f64(x.lo, y.lo);
    const uint64x2_t mhi = vcltq_f64(x.hi, y.hi);
    return {vbslq_f64(mlo, a.lo, b.lo), vbslq_f64(mhi, a.hi, b.hi)};
  }
  static V4Neon Pow2i(V4Neon n) {
    // n is integral and clamped by ExpV's bounds.
    const int64x2_t klo = vcvtq_s64_f64(n.lo);
    const int64x2_t khi = vcvtq_s64_f64(n.hi);
    const int64x2_t bias = vdupq_n_s64(1023);
    return {vreinterpretq_f64_s64(vshlq_n_s64(vaddq_s64(klo, bias), 52)),
            vreinterpretq_f64_s64(vshlq_n_s64(vaddq_s64(khi, bias), 52))};
  }
};

constexpr KernOps kNeonOps = MakeOps<V4Neon>();

}  // namespace

const KernOps* NeonOps() { return &kNeonOps; }

}  // namespace locat::math::kern

#endif  // __aarch64__
