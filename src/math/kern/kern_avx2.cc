// AVX2 + FMA backend: one __m256d per 4-lane vector. This TU alone is
// compiled with -mavx2 -mfma (src/math/CMakeLists.txt); the dispatcher
// only hands out this table after __builtin_cpu_supports confirms the
// CPU has both, so the rest of the binary stays runnable on older x86.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "math/kern/kern_impl.h"
#include "math/kern/kern_ops.h"

namespace locat::math::kern {
namespace {

struct V4Avx2 {
  __m256d v;

  static V4Avx2 Zero() { return {_mm256_setzero_pd()}; }
  static V4Avx2 Broadcast(double s) { return {_mm256_set1_pd(s)}; }
  static V4Avx2 Load(const double* p) { return {_mm256_loadu_pd(p)}; }
  void Store(double* p) const { _mm256_storeu_pd(p, v); }
  static V4Avx2 Add(V4Avx2 a, V4Avx2 b) { return {_mm256_add_pd(a.v, b.v)}; }
  static V4Avx2 Sub(V4Avx2 a, V4Avx2 b) { return {_mm256_sub_pd(a.v, b.v)}; }
  static V4Avx2 Mul(V4Avx2 a, V4Avx2 b) { return {_mm256_mul_pd(a.v, b.v)}; }
  static V4Avx2 Fma(V4Avx2 a, V4Avx2 b, V4Avx2 c) {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }
  static V4Avx2 Round(V4Avx2 x) {
    return {_mm256_round_pd(x.v, _MM_FROUND_TO_NEAREST_INT |
                                     _MM_FROUND_NO_EXC)};
  }
  static V4Avx2 IfLess(V4Avx2 x, V4Avx2 y, V4Avx2 a, V4Avx2 b) {
    const __m256d mask = _mm256_cmp_pd(x.v, y.v, _CMP_LT_OQ);
    return {_mm256_blendv_pd(b.v, a.v, mask)};
  }
  static V4Avx2 Pow2i(V4Avx2 n) {
    // n is integral and clamped to cvtpd_epi32 range by ExpV's bounds.
    const __m128i k32 = _mm256_cvtpd_epi32(n.v);
    const __m256i k64 = _mm256_cvtepi32_epi64(k32);
    const __m256i bits = _mm256_slli_epi64(
        _mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52);
    return {_mm256_castsi256_pd(bits)};
  }
};

constexpr KernOps kAvx2Ops = MakeOps<V4Avx2>();

}  // namespace

const KernOps* Avx2Ops() { return &kAvx2Ops; }

}  // namespace locat::math::kern

#endif  // x86_64
