#include "math/kern/kern.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "math/kern/kern_impl.h"
#include "math/kern/kern_ops.h"

namespace locat::math::kern {
namespace {

const KernOps* OpsFor(Backend b) {
  switch (b) {
#if defined(__x86_64__) || defined(_M_X64)
    case Backend::kAvx2:
      return Avx2Ops();
#endif
#if defined(__aarch64__)
    case Backend::kNeon:
      return NeonOps();
#endif
    default:
      return ScalarOps();
  }
}

/// Initial dispatch level from LOCAT_SIMD. Runs once, thread-safe via the
/// function-local static in BackendSlot().
Backend InitialBackend() {
  const char* env = std::getenv("LOCAT_SIMD");
  if (env == nullptr || *env == '\0') return BestBackend();
  const std::string v(env);
  if (v == "off" || v == "scalar") return Backend::kScalar;
  if (v != "native") {
    std::fprintf(stderr,
                 "locat: ignoring invalid LOCAT_SIMD=%s "
                 "(expected off|scalar|native); using native\n",
                 env);
  }
  return BestBackend();
}

// Two slots instead of one 16-byte atomic (which would drag in libatomic
// on some toolchains). They are only ever set together under SetBackend;
// a racing reader can at worst pair the old name with the new table, and
// both tables compute identical bits anyway.
std::atomic<Backend>& BackendSlot() {
  static std::atomic<Backend> slot(InitialBackend());
  return slot;
}

std::atomic<const KernOps*>& OpsSlot() {
  static std::atomic<const KernOps*> slot(
      OpsFor(BackendSlot().load(std::memory_order_relaxed)));
  return slot;
}

const KernOps& Ops() { return *OpsSlot().load(std::memory_order_acquire); }

}  // namespace

Backend BestBackend() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Backend::kAvx2;
  }
  return Backend::kScalar;
#elif defined(__aarch64__)
  return Backend::kNeon;
#else
  return Backend::kScalar;
#endif
}

bool BackendAvailable(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Backend ActiveBackend() {
  return BackendSlot().load(std::memory_order_acquire);
}

void SetBackend(Backend b) {
  assert(BackendAvailable(b));
  OpsSlot().store(OpsFor(b), std::memory_order_release);
  BackendSlot().store(b, std::memory_order_release);
}

Status SetBackendByName(std::string_view name) {
  if (name == "off" || name == "scalar") {
    SetBackend(Backend::kScalar);
    return Status::OK();
  }
  if (name == "native") {
    SetBackend(BestBackend());
    return Status::OK();
  }
  return Status::InvalidArgument("unknown SIMD mode '" + std::string(name) +
                                 "' (expected off|scalar|native)");
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "unknown";
}

const char* ActiveBackendName() { return BackendName(ActiveBackend()); }

double Dot(const double* a, const double* b, size_t n) {
  return Ops().dot(a, b, n);
}

double Sum(const double* x, size_t n) { return Ops().sum(x, n); }

double SquaredDistance(const double* a, const double* b, size_t n) {
  return Ops().sqdist(a, b, n);
}

double WeightedSquaredDistance(const double* a, const double* b,
                               const double* w, size_t n) {
  return Ops().wsqdist(a, b, w, n);
}

void MatVecRowMajor(const double* m, size_t rows, size_t cols,
                    const double* v, double* out) {
  Ops().matvec(m, rows, cols, v, out);
}

void SquaredDistanceRows(const double* rows, size_t nrows, size_t dim,
                         size_t stride, const double* q, double* out) {
  Ops().sqdist_rows(rows, nrows, dim, stride, q, out);
}

void WeightedSquaredDistanceRows(const double* rows, size_t nrows, size_t dim,
                                 size_t stride, const double* q,
                                 const double* w, double* out) {
  Ops().wsqdist_rows(rows, nrows, dim, stride, q, w, out);
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  Ops().axpy(alpha, x, y, n);
}

void Scale(double alpha, double* x, size_t n) { Ops().scale(alpha, x, n); }

void AddSquares(const double* x, double* acc, size_t n) {
  Ops().add_squares(x, acc, n);
}

void SubSquare(const double* a, const double* b, double* out, size_t n) {
  Ops().sub_square(a, b, out, n);
}

void Mul(const double* a, const double* b, double* out, size_t n) {
  Ops().mul(a, b, out, n);
}

void Add(const double* a, const double* b, double* out, size_t n) {
  Ops().add(a, b, out, n);
}

void Min(const double* a, const double* b, double* out, size_t n) {
  Ops().vmin(a, b, out, n);
}

void Max(const double* a, const double* b, double* out, size_t n) {
  Ops().vmax(a, b, out, n);
}

void MulScalar(double s, const double* x, double* out, size_t n) {
  Ops().mul_scalar(s, x, out, n);
}

void MinScalar(double s, const double* x, double* out, size_t n) {
  Ops().min_scalar(s, x, out, n);
}

void MaxScalar(double s, const double* x, double* out, size_t n) {
  Ops().max_scalar(s, x, out, n);
}

void SubtractShift(const double* a, const double* b, double shift,
                   double* out, size_t n) {
  Ops().sub_shift(a, b, shift, out, n);
}

void ExpScaled(double* x, size_t n, double pre, double post) {
  Ops().exp_scaled(x, n, pre, post);
}

double Exp(double x) { return ExpScalar(x); }

void Gemm(const double* a, size_t m, size_t k, const double* b, size_t n,
          double* c) {
  Ops().gemm(a, m, k, b, n, c);
}

void GemmTransposedB(const double* a, size_t m, const double* b, size_t n,
                     size_t k, double* c) {
  Ops().gemm_bt(a, m, b, n, k, c);
}

ptrdiff_t CholeskyFactorInPlace(double* a, size_t n) {
  return Ops().chol(a, n);
}

void SolveLowerMatrixInPlace(const double* l, size_t n, double* y, size_t m) {
  Ops().solve_lower_multi(l, n, y, m);
}

double CholUpdateAppendRow(const double* l, size_t n, size_t stride,
                           double* row, double diag) {
  return Ops().chol_append_row(l, n, stride, row, diag);
}

void CholRank1Update(double* l, size_t n, size_t stride, double* v) {
  Ops().chol_rank1_update(l, n, stride, v);
}

ptrdiff_t CholRank1Downdate(double* l, size_t n, size_t stride, double* v) {
  return Ops().chol_rank1_downdate(l, n, stride, v);
}

}  // namespace locat::math::kern
