#ifndef LOCAT_MATH_KERN_KERN_IMPL_H_
#define LOCAT_MATH_KERN_KERN_IMPL_H_

// Shared templated kernel bodies. Every backend TU instantiates MakeOps<V>
// over its 4-lane vector type V, so all backends execute the exact same
// sequence of IEEE-754 operations per element/lane and produce identical
// bits. The vector concept V provides:
//
//   static V Zero();
//   static V Broadcast(double s);
//   static V Load(const double* p);            // unaligned
//   void     Store(double* p) const;           // unaligned
//   static V Add(V a, V b);  static V Sub(V a, V b);  static V Mul(V a, V b);
//   static V Fma(V a, V b, V c);               // a * b + c, single rounding
//   static V Round(V x);                       // nearest-even, per lane
//   static V IfLess(V x, V y, V a, V b);       // lane: x < y ? a : b
//                                              // (ordered: NaN picks b)
//   static V Pow2i(V n);                       // 2^n, n integral in
//                                              // [-1075, 1023)
//
// Determinism rules for code in this header:
//   * mul-feeding-add dataflow is forbidden — the compiler may contract it
//     into an fma on one backend but not another. Use explicit Fma (or a
//     standalone Mul/Add/Sub whose result feeds nothing contractible).
//   * scalar tails must replay the exact per-lane op sequence (std::fma /
//     plain * - +) into the lane the element would have occupied.
//   * reductions end with the fixed tree (l0 + l2) + (l1 + l3).

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "math/kern/kern_ops.h"

namespace locat::math::kern {

inline constexpr double kExpSatHi = 708.0;    // saturate above (exp ~ 3e307)
inline constexpr double kExpFlushLo = -708.0;  // flush to +0 below
inline constexpr double kExpClampLo = -745.0;  // keeps Pow2i's int in range
inline constexpr double kLog2e = 1.4426950408889634074;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
// Taylor coefficients 1/k!; |r| <= ln2/2 after Cody-Waite reduction, so the
// degree-13 truncation error r^14/14! is ~4e-18 — below double rounding.
inline constexpr double kExpCoef[14] = {
    1.0,
    1.0,
    1.0 / 2,
    1.0 / 6,
    1.0 / 24,
    1.0 / 120,
    1.0 / 720,
    1.0 / 5040,
    1.0 / 40320,
    1.0 / 362880,
    1.0 / 3628800,
    1.0 / 39916800,
    1.0 / 479001600,
    1.0 / 6227020800.0,
};

/// exp(2^k) by bit assembly for integral k in [-1075, 1023). Out-of-range
/// exponents produce garbage bits the callers blend away; never UB.
inline double Pow2iScalar(double n) {
  const auto k = static_cast<int64_t>(n);
  return std::bit_cast<double>(static_cast<uint64_t>(k + 1023) << 52);
}

/// The one true exp. Scalar replay of ExpV's per-lane sequence; kern::Exp
/// routes here regardless of the active backend.
inline double ExpScalar(double x) {
  double xc = x < kExpSatHi ? x : kExpSatHi;  // NaN picks the bound, like
  xc = xc < kExpClampLo ? kExpClampLo : xc;   // the vector IfLess
  const double n = std::nearbyint(xc * kLog2e);
  double r = std::fma(n, -kLn2Hi, xc);
  r = std::fma(n, -kLn2Lo, r);
  double p = kExpCoef[13];
  for (int c = 12; c >= 0; --c) p = std::fma(p, r, kExpCoef[c]);
  const double res = p * Pow2iScalar(n);
  return x < kExpFlushLo ? 0.0 : res;
}

template <class V>
inline V ExpV(V x) {
  V xc = V::IfLess(x, V::Broadcast(kExpSatHi), x, V::Broadcast(kExpSatHi));
  xc = V::IfLess(xc, V::Broadcast(kExpClampLo), V::Broadcast(kExpClampLo), xc);
  const V n = V::Round(V::Mul(xc, V::Broadcast(kLog2e)));
  V r = V::Fma(n, V::Broadcast(-kLn2Hi), xc);
  r = V::Fma(n, V::Broadcast(-kLn2Lo), r);
  V p = V::Broadcast(kExpCoef[13]);
  for (int c = 12; c >= 0; --c) p = V::Fma(p, r, V::Broadcast(kExpCoef[c]));
  const V res = V::Mul(p, V::Pow2i(n));
  return V::IfLess(x, V::Broadcast(kExpFlushLo), V::Zero(), res);
}

// ---------------------------------------------------------------------------
// Reductions.

template <class V>
double DotImpl(const double* a, const double* b, size_t n) {
  V acc = V::Zero();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = V::Fma(V::Load(a + i), V::Load(b + i), acc);
  alignas(32) double l[4];
  acc.Store(l);
  for (size_t t = 0; i + t < n; ++t) l[t] = std::fma(a[i + t], b[i + t], l[t]);
  return (l[0] + l[2]) + (l[1] + l[3]);
}

/// Four dots sharing the a-side loads: out[r] = dot(a, b + r*stride, n).
/// Each accumulator chain is op-for-op the DotImpl chain, so out[r] is
/// bit-identical to the corresponding standalone DotImpl call.
template <class V>
void Dot4Impl(const double* a, const double* b, size_t stride, size_t n,
              double* out) {
  V a0 = V::Zero(), a1 = V::Zero(), a2 = V::Zero(), a3 = V::Zero();
  const double* b0 = b;
  const double* b1 = b + stride;
  const double* b2 = b + 2 * stride;
  const double* b3 = b + 3 * stride;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const V av = V::Load(a + i);
    a0 = V::Fma(av, V::Load(b0 + i), a0);
    a1 = V::Fma(av, V::Load(b1 + i), a1);
    a2 = V::Fma(av, V::Load(b2 + i), a2);
    a3 = V::Fma(av, V::Load(b3 + i), a3);
  }
  alignas(32) double l0[4], l1[4], l2[4], l3[4];
  a0.Store(l0);
  a1.Store(l1);
  a2.Store(l2);
  a3.Store(l3);
  for (size_t t = 0; i + t < n; ++t) {
    const double av = a[i + t];
    l0[t] = std::fma(av, b0[i + t], l0[t]);
    l1[t] = std::fma(av, b1[i + t], l1[t]);
    l2[t] = std::fma(av, b2[i + t], l2[t]);
    l3[t] = std::fma(av, b3[i + t], l3[t]);
  }
  out[0] = (l0[0] + l0[2]) + (l0[1] + l0[3]);
  out[1] = (l1[0] + l1[2]) + (l1[1] + l1[3]);
  out[2] = (l2[0] + l2[2]) + (l2[1] + l2[3]);
  out[3] = (l3[0] + l3[2]) + (l3[1] + l3[3]);
}

template <class V>
double SumImpl(const double* x, size_t n) {
  V acc = V::Zero();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = V::Add(acc, V::Load(x + i));
  alignas(32) double l[4];
  acc.Store(l);
  for (size_t t = 0; i + t < n; ++t) l[t] = l[t] + x[i + t];
  return (l[0] + l[2]) + (l[1] + l[3]);
}

template <class V>
double SqDistImpl(const double* a, const double* b, size_t n) {
  V acc = V::Zero();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const V d = V::Sub(V::Load(a + i), V::Load(b + i));
    acc = V::Fma(d, d, acc);
  }
  alignas(32) double l[4];
  acc.Store(l);
  for (size_t t = 0; i + t < n; ++t) {
    const double d = a[i + t] - b[i + t];
    l[t] = std::fma(d, d, l[t]);
  }
  return (l[0] + l[2]) + (l[1] + l[3]);
}

template <class V>
double WSqDistImpl(const double* a, const double* b, const double* w,
                   size_t n) {
  V acc = V::Zero();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const V d = V::Sub(V::Load(a + i), V::Load(b + i));
    acc = V::Fma(V::Mul(V::Load(w + i), d), d, acc);
  }
  alignas(32) double l[4];
  acc.Store(l);
  for (size_t t = 0; i + t < n; ++t) {
    const double d = a[i + t] - b[i + t];
    l[t] = std::fma(w[i + t] * d, d, l[t]);
  }
  return (l[0] + l[2]) + (l[1] + l[3]);
}

template <class V>
void MatVecImpl(const double* m, size_t rows, size_t cols, const double* v,
                double* out) {
  size_t r = 0;
  for (; r + 4 <= rows; r += 4) Dot4Impl<V>(v, m + r * cols, cols, cols, out + r);
  for (; r < rows; ++r) out[r] = DotImpl<V>(m + r * cols, v, cols);
}

template <class V>
void SqDistRowsImpl(const double* rows, size_t nrows, size_t dim,
                    size_t stride, const double* q, double* out) {
  for (size_t r = 0; r < nrows; ++r)
    out[r] = SqDistImpl<V>(rows + r * stride, q, dim);
}

template <class V>
void WSqDistRowsImpl(const double* rows, size_t nrows, size_t dim,
                     size_t stride, const double* q, const double* w,
                     double* out) {
  for (size_t r = 0; r < nrows; ++r)
    out[r] = WSqDistImpl<V>(rows + r * stride, q, w, dim);
}

// ---------------------------------------------------------------------------
// Elementwise kernels. Lane-independent: the scalar tail op is the exact
// per-lane op, so these are backend-invariant without a lane tree.

template <class V>
void AxpyImpl(double alpha, const double* x, double* y, size_t n) {
  const V av = V::Broadcast(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    V::Fma(av, V::Load(x + i), V::Load(y + i)).Store(y + i);
  for (; i < n; ++i) y[i] = std::fma(alpha, x[i], y[i]);
}

template <class V>
void ScaleImpl(double alpha, double* x, size_t n) {
  const V av = V::Broadcast(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) V::Mul(av, V::Load(x + i)).Store(x + i);
  for (; i < n; ++i) x[i] = alpha * x[i];
}

template <class V>
void AddSquaresImpl(const double* x, double* acc, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const V xv = V::Load(x + i);
    V::Fma(xv, xv, V::Load(acc + i)).Store(acc + i);
  }
  for (; i < n; ++i) acc[i] = std::fma(x[i], x[i], acc[i]);
}

template <class V>
void SubSquareImpl(const double* a, const double* b, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const V d = V::Sub(V::Load(a + i), V::Load(b + i));
    V::Mul(d, d).Store(out + i);
  }
  for (; i < n; ++i) {
    const double d = a[i] - b[i];
    out[i] = d * d;
  }
}

template <class V>
void MulImpl(const double* a, const double* b, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    V::Mul(V::Load(a + i), V::Load(b + i)).Store(out + i);
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

template <class V>
void AddImpl(const double* a, const double* b, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    V::Add(V::Load(a + i), V::Load(b + i)).Store(out + i);
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

// Min/Max follow the std::min/std::max selection rule exactly —
// min(a, b) = b < a ? b : a, max(a, b) = a < b ? b : a — built on IfLess
// rather than native min/max instructions, whose +-0/NaN conventions
// differ between ISAs. This keeps them bit-compatible with scalar code
// written against <algorithm>.

template <class V>
void MinImpl(const double* a, const double* b, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const V av = V::Load(a + i);
    const V bv = V::Load(b + i);
    V::IfLess(bv, av, bv, av).Store(out + i);
  }
  for (; i < n; ++i) out[i] = std::min(a[i], b[i]);
}

template <class V>
void MaxImpl(const double* a, const double* b, double* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const V av = V::Load(a + i);
    const V bv = V::Load(b + i);
    V::IfLess(av, bv, bv, av).Store(out + i);
  }
  for (; i < n; ++i) out[i] = std::max(a[i], b[i]);
}

template <class V>
void MulScalarImpl(double s, const double* x, double* out, size_t n) {
  const V sv = V::Broadcast(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) V::Mul(sv, V::Load(x + i)).Store(out + i);
  for (; i < n; ++i) out[i] = s * x[i];
}

template <class V>
void MinScalarImpl(double s, const double* x, double* out, size_t n) {
  const V sv = V::Broadcast(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const V xv = V::Load(x + i);
    V::IfLess(xv, sv, xv, sv).Store(out + i);
  }
  for (; i < n; ++i) out[i] = std::min(s, x[i]);
}

template <class V>
void MaxScalarImpl(double s, const double* x, double* out, size_t n) {
  const V sv = V::Broadcast(s);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const V xv = V::Load(x + i);
    V::IfLess(sv, xv, xv, sv).Store(out + i);
  }
  for (; i < n; ++i) out[i] = std::max(s, x[i]);
}

template <class V>
void SubShiftImpl(const double* a, const double* b, double shift, double* out,
                  size_t n) {
  const V sv = V::Broadcast(shift);
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    V::Sub(V::Sub(V::Load(a + i), V::Load(b + i)), sv).Store(out + i);
  for (; i < n; ++i) out[i] = (a[i] - b[i]) - shift;
}

template <class V>
void ExpScaledImpl(double* x, size_t n, double pre, double post) {
  const V prev = V::Broadcast(pre);
  const V postv = V::Broadcast(post);
  size_t i = 0;
  for (; i + 4 <= n; i += 4)
    V::Mul(postv, ExpV<V>(V::Mul(prev, V::Load(x + i)))).Store(x + i);
  if (i < n) {
    // Tail rides the same vector path on a zero-padded block so every
    // element sees the vector lane sequence (padding computes exp(0)).
    alignas(32) double tmp[4] = {0.0, 0.0, 0.0, 0.0};
    for (size_t t = 0; i + t < n; ++t) tmp[t] = x[i + t];
    V r = V::Mul(postv, ExpV<V>(V::Mul(prev, V::Load(tmp))));
    r.Store(tmp);
    for (size_t t = 0; i + t < n; ++t) x[i + t] = tmp[t];
  }
}

// ---------------------------------------------------------------------------
// Blocked linear algebra.

/// c = a * b in axpy form: each c[i][j] accumulates k in ascending order
/// via elementwise fma, so bits are independent of backend and of the
/// column blocking. Column blocks keep the streamed b panel cache-sized.
template <class V>
void GemmImpl(const double* a, size_t m, size_t k, const double* b, size_t n,
              double* c) {
  constexpr size_t kColBlock = 512;
  for (size_t j0 = 0; j0 < n; j0 += kColBlock) {
    const size_t jn = std::min(kColBlock, n - j0);
    for (size_t i = 0; i < m; ++i) {
      double* ci = c + i * n + j0;
      for (size_t j = 0; j < jn; ++j) ci[j] = 0.0;
      const double* ai = a + i * k;
      for (size_t kk = 0; kk < k; ++kk) {
        if (ai[kk] == 0.0) continue;  // fma(0, inf, y) would poison y
        AxpyImpl<V>(ai[kk], b + kk * n + j0, ci, jn);
      }
    }
  }
}

/// c[i][j] = dot(a_i, b_j) with b row-major n x k. Row blocks of b sized
/// to stay cache-resident; 4-wide register blocking over j via Dot4Impl.
template <class V>
void GemmBtImpl(const double* a, size_t m, const double* b, size_t n, size_t k,
                double* c) {
  constexpr size_t kRowBlock = 64;
  for (size_t j0 = 0; j0 < n; j0 += kRowBlock) {
    const size_t jn = std::min(kRowBlock, n - j0);
    for (size_t i = 0; i < m; ++i) {
      const double* ai = a + i * k;
      double* ci = c + i * n + j0;
      size_t j = 0;
      for (; j + 4 <= jn; j += 4)
        Dot4Impl<V>(ai, b + (j0 + j) * k, k, k, ci + j);
      for (; j < jn; ++j) ci[j] = DotImpl<V>(ai, b + (j0 + j) * k, k);
    }
  }
}

/// Blocked right-looking Cholesky on the lower triangle, panel width 32.
/// Panel columns factor left-looking within the block; the trailing SYRK
/// update then folds the panel into the remaining rows with Dot4-blocked
/// inner products. Returns the first bad pivot index, or -1.
template <class V>
ptrdiff_t CholImpl(double* a, size_t n) {
  constexpr size_t kPanel = 32;
  for (size_t j0 = 0; j0 < n; j0 += kPanel) {
    const size_t jb = std::min(kPanel, n - j0);
    for (size_t j = j0; j < j0 + jb; ++j) {
      double* rj = a + j * n;
      const double d = rj[j] - DotImpl<V>(rj + j0, rj + j0, j - j0);
      if (!(d > 0.0) || !std::isfinite(d)) return static_cast<ptrdiff_t>(j);
      const double ljj = std::sqrt(d);
      rj[j] = ljj;
      const double inv = 1.0 / ljj;
      for (size_t i = j + 1; i < n; ++i) {
        double* ri = a + i * n;
        ri[j] = (ri[j] - DotImpl<V>(ri + j0, rj + j0, j - j0)) * inv;
      }
    }
    const size_t e = j0 + jb;
    for (size_t i = e; i < n; ++i) {
      double* ri = a + i * n;
      const double* li = ri + j0;
      size_t j = e;
      for (; j + 4 <= i + 1; j += 4) {
        double d4[4];
        Dot4Impl<V>(li, a + j * n + j0, n, jb, d4);
        ri[j] -= d4[0];
        ri[j + 1] -= d4[1];
        ri[j + 2] -= d4[2];
        ri[j + 3] -= d4[3];
      }
      for (; j <= i; ++j) ri[j] -= DotImpl<V>(li, a + j * n + j0, jb);
    }
  }
  return -1;
}

/// Forward substitution streaming whole rows of y (n x m): each row i
/// folds rows j < i in ascending order via Axpy, then scales by 1/l_ii.
template <class V>
void SolveLowerMultiImpl(const double* l, size_t n, double* y, size_t m) {
  for (size_t i = 0; i < n; ++i) {
    const double* li = l + i * n;
    double* yi = y + i * m;
    for (size_t j = 0; j < i; ++j) {
      if (li[j] == 0.0) continue;
      AxpyImpl<V>(-li[j], y + j * m, yi, m);
    }
    ScaleImpl<V>(1.0 / li[i], yi, m);
  }
}

// ---------------------------------------------------------------------------
// Rank-1 Cholesky maintenance.

/// Bordered append: given the factor L (n x n, leading block of a matrix
/// with row stride `stride`) of A, and row[0..n) = k (the cross column of
/// the bordered matrix), computes in place the new factor row w = L^-1 k
/// (forward substitution, one canonical Dot per entry) and returns the
/// Schur completion d = diag - w.w. The caller takes sqrt(d) as the new
/// diagonal pivot iff d is a valid pivot (> 0 and finite).
template <class V>
double CholAppendRowImpl(const double* l, size_t n, size_t stride,
                         double* row, double diag) {
  for (size_t j = 0; j < n; ++j) {
    const double s = row[j] - DotImpl<V>(l + j * stride, row, j);
    row[j] = s / l[j * stride + j];
  }
  return diag - DotImpl<V>(row, row, n);
}

// The rank-1 update/downdate sweeps are inherently column-sequential
// (rotation j is derived from the evolving v and applied to column j
// before rotation j+1 exists), so they run the identical scalar op
// sequence on every backend: explicit std::fma everywhere a product
// feeds an addition, so no backend's compiler can contract differently.

/// In-place rank-1 update L -> chol(L L^T + v v^T) via Givens rotations
/// (LINPACK dchud). `v` is clobbered. Cannot fail: the updated matrix is
/// SPD whenever L L^T is.
template <class V>
void CholRank1UpdateImpl(double* l, size_t n, size_t stride, double* v) {
  for (size_t j = 0; j < n; ++j) {
    double* lj = l + j * stride;
    const double ljj = lj[j];
    const double vj = v[j];
    const double r = std::sqrt(std::fma(vj, vj, ljj * ljj));
    const double c = r / ljj;
    const double s = vj / ljj;
    lj[j] = r;
    for (size_t i = j + 1; i < n; ++i) {
      double* lij = l + i * stride + j;
      const double updated = std::fma(s, v[i], *lij) / c;
      *lij = updated;
      v[i] = std::fma(-s, updated, c * v[i]);
    }
  }
}

/// In-place rank-1 downdate L -> chol(L L^T - v v^T) via hyperbolic
/// rotations (LINPACK dchdd). `v` is clobbered. Returns the first column
/// index where the downdated matrix stops being positive definite (the
/// factor is left partially modified — callers treat failure as fatal
/// for this factor), or -1 on success.
template <class V>
ptrdiff_t CholRank1DowndateImpl(double* l, size_t n, size_t stride,
                                double* v) {
  for (size_t j = 0; j < n; ++j) {
    double* lj = l + j * stride;
    const double ljj = lj[j];
    const double vj = v[j];
    const double d = std::fma(-vj, vj, ljj * ljj);
    if (!(d > 0.0) || !std::isfinite(d)) return static_cast<ptrdiff_t>(j);
    const double r = std::sqrt(d);
    const double c = r / ljj;
    const double s = vj / ljj;
    lj[j] = r;
    for (size_t i = j + 1; i < n; ++i) {
      double* lij = l + i * stride + j;
      const double updated = std::fma(-s, v[i], *lij) / c;
      *lij = updated;
      v[i] = std::fma(-s, updated, c * v[i]);
    }
  }
  return -1;
}

template <class V>
constexpr KernOps MakeOps() {
  return KernOps{
      &DotImpl<V>,        &SumImpl<V>,       &SqDistImpl<V>,
      &WSqDistImpl<V>,    &MatVecImpl<V>,    &SqDistRowsImpl<V>,
      &WSqDistRowsImpl<V>, &AxpyImpl<V>,     &ScaleImpl<V>,
      &AddSquaresImpl<V>, &SubSquareImpl<V>, &MulImpl<V>,
      &AddImpl<V>,        &MinImpl<V>,       &MaxImpl<V>,
      &MulScalarImpl<V>,  &MinScalarImpl<V>, &MaxScalarImpl<V>,
      &SubShiftImpl<V>,   &ExpScaledImpl<V>, &GemmImpl<V>,
      &GemmBtImpl<V>,     &CholImpl<V>,      &SolveLowerMultiImpl<V>,
      &CholAppendRowImpl<V>, &CholRank1UpdateImpl<V>,
      &CholRank1DowndateImpl<V>,
  };
}

}  // namespace locat::math::kern

#endif  // LOCAT_MATH_KERN_KERN_IMPL_H_
