#ifndef LOCAT_MATH_KERN_KERN_H_
#define LOCAT_MATH_KERN_KERN_H_

#include <cstddef>
#include <string_view>

#include "common/status.h"

namespace locat::math::kern {

/// Runtime-dispatched SIMD microkernels under the GP/KPCA hot path:
/// reductions, fused squared distances, a shared polynomial vector exp,
/// cache-blocked GEMM/SYRK tiles, a blocked right-looking Cholesky, and
/// blocked triangular solves.
///
/// Determinism contract: every backend is one instantiation of the same
/// templated kernel body over a 4-lane vector abstraction (AVX2 = one
/// __m256d, NEON = two float64x2_t, scalar = four doubles + std::fma), so
/// every backend executes the same sequence of IEEE-754 operations per
/// element and per reduction lane. Reductions use a fixed 4-lane
/// accumulator tree — lane l accumulates elements i with i % 4 == l via
/// fused multiply-adds, tails fold into their lane scalarly, and the final
/// reduction is always (l0 + l2) + (l1 + l3). Exp() is a shared
/// Cody-Waite + degree-13 Horner polynomial (never libm). Consequently
/// results are bit-identical across LOCAT_SIMD=off/scalar/native on a
/// machine, and the scalar backend stays the portable fallback (no ISA
/// flags; std::fma is correctly rounded everywhere).
enum class Backend {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
};

/// The backend all kern:: entry points currently dispatch to. Lazily
/// initialized from the LOCAT_SIMD environment variable on first use:
/// "off" or "scalar" selects kScalar, "native" (or unset) selects
/// BestBackend(). Invalid values warn once on stderr and fall back to
/// native.
Backend ActiveBackend();

/// The highest backend this build + CPU supports (AVX2+FMA on x86-64
/// when the CPU has them, NEON on aarch64, else scalar).
Backend BestBackend();

/// True when `b` can be selected in this build on this CPU. kScalar is
/// always available.
bool BackendAvailable(Backend b);

/// Forces the dispatch level. `b` must be available (assert).
/// Thread-safe, but switching while kernels run on other threads gives
/// an unspecified mix; callers switch between, not during, computations.
void SetBackend(Backend b);

/// Parses "off" | "scalar" | "native" (the LOCAT_SIMD / --simd values)
/// and switches the dispatch. "off" and "scalar" are synonyms: both pin
/// the portable scalar backend, which computes bit-identical results to
/// the SIMD backends anyway — the knob exists for benchmarking and for
/// ruling the SIMD units out when debugging.
Status SetBackendByName(std::string_view name);

const char* BackendName(Backend b);
const char* ActiveBackendName();

// ---------------------------------------------------------------------------
// Reductions (4-lane accumulator tree, FMA).

/// sum_i a[i] * b[i].
double Dot(const double* a, const double* b, size_t n);

/// sum_i x[i].
double Sum(const double* x, size_t n);

/// sum_i (a[i] - b[i])^2, fused (no temporary difference vector).
double SquaredDistance(const double* a, const double* b, size_t n);

/// sum_i w[i] * (a[i] - b[i])^2 — the ARD squared-exponential exponent.
double WeightedSquaredDistance(const double* a, const double* b,
                               const double* w, size_t n);

/// out[r] = Dot(m + r*cols, v, cols) for each of the `rows` rows.
void MatVecRowMajor(const double* m, size_t rows, size_t cols,
                    const double* v, double* out);

/// out[r] = SquaredDistance(rows + r*stride, q, dim).
void SquaredDistanceRows(const double* rows, size_t nrows, size_t dim,
                         size_t stride, const double* q, double* out);

/// out[r] = WeightedSquaredDistance(rows + r*stride, q, w, dim).
void WeightedSquaredDistanceRows(const double* rows, size_t nrows, size_t dim,
                                 size_t stride, const double* q,
                                 const double* w, double* out);

// ---------------------------------------------------------------------------
// Elementwise kernels (lane-independent, hence trivially backend-invariant).

/// y[i] = fma(alpha, x[i], y[i]).
void Axpy(double alpha, const double* x, double* y, size_t n);

/// x[i] *= alpha.
void Scale(double alpha, double* x, size_t n);

/// acc[i] = fma(x[i], x[i], acc[i]) — column sum-of-squares accumulator.
void AddSquares(const double* x, double* acc, size_t n);

/// out[i] = (a[i] - b[i])^2 — the pair-sqdiff precompute.
void SubSquare(const double* a, const double* b, double* out, size_t n);

/// out[i] = a[i] * b[i]. `out` may alias either input.
void Mul(const double* a, const double* b, double* out, size_t n);

/// out[i] = a[i] + b[i]. `out` may alias either input.
void Add(const double* a, const double* b, double* out, size_t n);

/// out[i] = std::min(a[i], b[i]) — the exact std::min selection rule
/// (b < a ? b : a), not an ISA min instruction, so bits match scalar
/// <algorithm> code on every backend.
void Min(const double* a, const double* b, double* out, size_t n);

/// out[i] = std::max(a[i], b[i]) (a < b ? b : a); see Min.
void Max(const double* a, const double* b, double* out, size_t n);

/// out[i] = s * x[i] (Scale with a separate destination).
void MulScalar(double s, const double* x, double* out, size_t n);

/// out[i] = std::min(s, x[i]) — broadcast clamp from above.
void MinScalar(double s, const double* x, double* out, size_t n);

/// out[i] = std::max(s, x[i]) — broadcast clamp from below.
void MaxScalar(double s, const double* x, double* out, size_t n);

/// out[i] = a[i] - b[i] - shift — KPCA feature-space centering rows.
void SubtractShift(const double* a, const double* b, double shift,
                   double* out, size_t n);

/// x[i] = post * exp(pre * x[i]) via the shared polynomial exp.
void ExpScaled(double* x, size_t n, double pre, double post);

/// Scalar entry point of the shared polynomial exp. Always computed with
/// the scalar lane sequence, so it is bit-identical to any lane of any
/// backend's ExpScaled and independent of the dispatch setting. Domain:
/// exact 0 below -708, saturates at exp(708) above +708 (documented
/// flush/saturation; GP exponents are always <= 0).
double Exp(double x);

// ---------------------------------------------------------------------------
// Blocked linear algebra (row-major).

/// c (m x n) = a (m x k) * b (k x n). Overwrites c. Accumulates k in
/// ascending order per output via elementwise FMA rows (axpy form), so
/// any backend and any cache blocking gives identical bits.
void Gemm(const double* a, size_t m, size_t k, const double* b, size_t n,
          double* c);

/// c (m x n) = a (m x k) * b^T with b (n x k): c[i][j] = Dot(a_i, b_j).
/// Register-blocked 4-wide over j; every output is one canonical Dot.
void GemmTransposedB(const double* a, size_t m, const double* b, size_t n,
                     size_t k, double* c);

/// In-place blocked right-looking Cholesky of the lower triangle of the
/// row-major n x n matrix `a` (upper triangle is neither read nor
/// written). Returns -1 on success or the index of the first
/// non-positive/non-finite pivot.
ptrdiff_t CholeskyFactorInPlace(double* a, size_t n);

/// Solves L Y = B in place on y (n x m) for lower-triangular L
/// (row-major n x n): blocked forward substitution streaming whole rows.
void SolveLowerMatrixInPlace(const double* l, size_t n, double* y, size_t m);

// ---------------------------------------------------------------------------
// Rank-1 Cholesky maintenance (O(n^2) factor updates).

/// Bordered append. `l` is the factor of the leading n x n block of a
/// row-major matrix with row stride `stride` (>= n + 1 so the new row
/// fits the same storage). On entry row[0..n) holds the cross column k of
/// the bordered matrix [[A, k], [k^T, diag]]; on exit it holds the new
/// factor row w = L^-1 k (one canonical Dot per entry — same reduction
/// tree as the blocked factorization). Returns the Schur completion
/// d = diag - w.w; the append is valid iff d is a positive finite pivot,
/// in which case the new diagonal entry is sqrt(d). Bit-identical across
/// backends.
double CholUpdateAppendRow(const double* l, size_t n, size_t stride,
                           double* row, double diag);

/// In-place rank-1 update L -> chol(L L^T + v v^T) (LINPACK dchud Givens
/// sweep; column-sequential, explicit std::fma — bit-identical across
/// backends). `v` (length n) is clobbered. Cannot fail for an SPD input.
void CholRank1Update(double* l, size_t n, size_t stride, double* v);

/// In-place rank-1 downdate L -> chol(L L^T - v v^T) (LINPACK dchdd
/// hyperbolic sweep). `v` is clobbered. Returns -1 on success, else the
/// first column where positive definiteness is lost — the factor is left
/// partially modified and must be discarded by the caller.
ptrdiff_t CholRank1Downdate(double* l, size_t n, size_t stride, double* v);

}  // namespace locat::math::kern

#endif  // LOCAT_MATH_KERN_KERN_H_
