// Portable scalar backend: four explicit double lanes with std::fma per
// lane. Compiled with -ffp-contract=off (src/math/CMakeLists.txt) so the
// compiler cannot contract the plain Mul/Add/Sub lanes into fmas and break
// bit-identity with the SIMD backends. std::fma itself is correctly
// rounded on every platform (hardware fma or the exact libm fallback), so
// the lanes match vfmadd/fmla bit for bit.

#include <cmath>

#include "math/kern/kern_impl.h"
#include "math/kern/kern_ops.h"

namespace locat::math::kern {
namespace {

struct V4Scalar {
  double l[4];

  static V4Scalar Zero() { return V4Scalar{{0.0, 0.0, 0.0, 0.0}}; }
  static V4Scalar Broadcast(double s) { return V4Scalar{{s, s, s, s}}; }
  static V4Scalar Load(const double* p) {
    return V4Scalar{{p[0], p[1], p[2], p[3]}};
  }
  void Store(double* p) const {
    p[0] = l[0];
    p[1] = l[1];
    p[2] = l[2];
    p[3] = l[3];
  }
  static V4Scalar Add(V4Scalar a, V4Scalar b) {
    return V4Scalar{{a.l[0] + b.l[0], a.l[1] + b.l[1], a.l[2] + b.l[2],
                     a.l[3] + b.l[3]}};
  }
  static V4Scalar Sub(V4Scalar a, V4Scalar b) {
    return V4Scalar{{a.l[0] - b.l[0], a.l[1] - b.l[1], a.l[2] - b.l[2],
                     a.l[3] - b.l[3]}};
  }
  static V4Scalar Mul(V4Scalar a, V4Scalar b) {
    return V4Scalar{{a.l[0] * b.l[0], a.l[1] * b.l[1], a.l[2] * b.l[2],
                     a.l[3] * b.l[3]}};
  }
  static V4Scalar Fma(V4Scalar a, V4Scalar b, V4Scalar c) {
    return V4Scalar{{std::fma(a.l[0], b.l[0], c.l[0]),
                     std::fma(a.l[1], b.l[1], c.l[1]),
                     std::fma(a.l[2], b.l[2], c.l[2]),
                     std::fma(a.l[3], b.l[3], c.l[3])}};
  }
  static V4Scalar Round(V4Scalar x) {
    return V4Scalar{{std::nearbyint(x.l[0]), std::nearbyint(x.l[1]),
                     std::nearbyint(x.l[2]), std::nearbyint(x.l[3])}};
  }
  static V4Scalar IfLess(V4Scalar x, V4Scalar y, V4Scalar a, V4Scalar b) {
    return V4Scalar{{x.l[0] < y.l[0] ? a.l[0] : b.l[0],
                     x.l[1] < y.l[1] ? a.l[1] : b.l[1],
                     x.l[2] < y.l[2] ? a.l[2] : b.l[2],
                     x.l[3] < y.l[3] ? a.l[3] : b.l[3]}};
  }
  static V4Scalar Pow2i(V4Scalar n) {
    return V4Scalar{{Pow2iScalar(n.l[0]), Pow2iScalar(n.l[1]),
                     Pow2iScalar(n.l[2]), Pow2iScalar(n.l[3])}};
  }
};

constexpr KernOps kScalarOps = MakeOps<V4Scalar>();

}  // namespace

const KernOps* ScalarOps() { return &kScalarOps; }

}  // namespace locat::math::kern
