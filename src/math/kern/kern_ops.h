#ifndef LOCAT_MATH_KERN_KERN_OPS_H_
#define LOCAT_MATH_KERN_KERN_OPS_H_

#include <cstddef>

namespace locat::math::kern {

/// Function-pointer table one backend TU fills in by instantiating the
/// shared templated kernel body (kern_impl.h) over its vector type. The
/// dispatcher (kern.cc) holds a pointer to the active table; swapping the
/// pointer swaps every kernel at once.
struct KernOps {
  double (*dot)(const double* a, const double* b, size_t n);
  double (*sum)(const double* x, size_t n);
  double (*sqdist)(const double* a, const double* b, size_t n);
  double (*wsqdist)(const double* a, const double* b, const double* w,
                    size_t n);
  void (*matvec)(const double* m, size_t rows, size_t cols, const double* v,
                 double* out);
  void (*sqdist_rows)(const double* rows, size_t nrows, size_t dim,
                      size_t stride, const double* q, double* out);
  void (*wsqdist_rows)(const double* rows, size_t nrows, size_t dim,
                       size_t stride, const double* q, const double* w,
                       double* out);
  void (*axpy)(double alpha, const double* x, double* y, size_t n);
  void (*scale)(double alpha, double* x, size_t n);
  void (*add_squares)(const double* x, double* acc, size_t n);
  void (*sub_square)(const double* a, const double* b, double* out, size_t n);
  void (*mul)(const double* a, const double* b, double* out, size_t n);
  void (*add)(const double* a, const double* b, double* out, size_t n);
  void (*vmin)(const double* a, const double* b, double* out, size_t n);
  void (*vmax)(const double* a, const double* b, double* out, size_t n);
  void (*mul_scalar)(double s, const double* x, double* out, size_t n);
  void (*min_scalar)(double s, const double* x, double* out, size_t n);
  void (*max_scalar)(double s, const double* x, double* out, size_t n);
  void (*sub_shift)(const double* a, const double* b, double shift,
                    double* out, size_t n);
  void (*exp_scaled)(double* x, size_t n, double pre, double post);
  void (*gemm)(const double* a, size_t m, size_t k, const double* b, size_t n,
               double* c);
  void (*gemm_bt)(const double* a, size_t m, const double* b, size_t n,
                  size_t k, double* c);
  ptrdiff_t (*chol)(double* a, size_t n);
  void (*solve_lower_multi)(const double* l, size_t n, double* y, size_t m);
  double (*chol_append_row)(const double* l, size_t n, size_t stride,
                            double* row, double diag);
  void (*chol_rank1_update)(double* l, size_t n, size_t stride, double* v);
  ptrdiff_t (*chol_rank1_downdate)(double* l, size_t n, size_t stride,
                                   double* v);
};

/// Per-backend tables. Each lives in a TU compiled with exactly the ISA
/// flags its vector type needs; the unsupported ones are absent from the
/// build (guarded in src/math/CMakeLists.txt).
const KernOps* ScalarOps();
#if defined(__x86_64__) || defined(_M_X64)
const KernOps* Avx2Ops();
#endif
#if defined(__aarch64__)
const KernOps* NeonOps();
#endif

}  // namespace locat::math::kern

#endif  // LOCAT_MATH_KERN_KERN_OPS_H_
