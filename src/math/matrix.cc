#include "math/matrix.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "math/kern/kern.h"

namespace locat::math {

double Vector::Norm() const {
  return std::sqrt(kern::Dot(data_.data(), data_.data(), size()));
}

double Vector::Sum() const { return kern::Sum(data_.data(), size()); }

double Vector::Dot(const Vector& other) const {
  assert(size() == other.size());
  return kern::Dot(data_.data(), other.data_.data(), size());
}

Vector& Vector::operator+=(const Vector& other) {
  assert(size() == other.size());
  for (size_t i = 0; i < size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  assert(size() == other.size());
  for (size_t i = 0; i < size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Vector& Vector::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

std::string Vector::ToString(int precision) const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, data_[i]);
    os << (i ? ", " : "") << buf;
  }
  os << "]";
  return os.str();
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector Matrix::Row(size_t r) const {
  assert(r < rows_);
  Vector v(cols_);
  for (size_t c = 0; c < cols_; ++c) v[c] = (*this)(r, c);
  return v;
}

Vector Matrix::Col(size_t c) const {
  assert(c < cols_);
  Vector v(rows_);
  for (size_t r = 0; r < rows_; ++r) v[r] = (*this)(r, c);
  return v;
}

void Matrix::SetRow(size_t r, const Vector& v) {
  assert(r < rows_ && v.size() == cols_);
  for (size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  kern::Gemm(data_.data(), rows_, cols_, other.data_.data(), other.cols_,
             out.data_.data());
  return out;
}

Matrix Matrix::MultiplyTransposed(const Matrix& other) const {
  assert(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  kern::GemmTransposedB(data_.data(), rows_, other.data_.data(), other.rows_,
                        cols_, out.data_.data());
  return out;
}

Vector Matrix::operator*(const Vector& v) const {
  assert(cols_ == v.size());
  Vector out(rows_);
  kern::MatVecRowMajor(data_.data(), rows_, cols_, v.data().data(),
                       out.data().data());
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

void Matrix::AddToDiagonal(double value) {
  size_t n = rows_ < cols_ ? rows_ : cols_;
  for (size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double m = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    double d = std::fabs(data_[i] - other.data_[i]);
    if (d > m) m = d;
  }
  return m;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  for (size_t r = 0; r < rows_; ++r) {
    os << Row(r).ToString(precision) << "\n";
  }
  return os.str();
}

}  // namespace locat::math
