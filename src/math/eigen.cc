#include "math/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace locat::math {
namespace {

// Sum of squares of strictly-off-diagonal entries.
double OffDiagonalNorm(const Matrix& a) {
  double s = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (i != j) s += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(s);
}

}  // namespace

StatusOr<EigenDecomposition> JacobiEigenSymmetric(const Matrix& input,
                                                  double tolerance,
                                                  int max_sweeps) {
  if (input.rows() != input.cols()) {
    return Status::InvalidArgument("eigendecomposition requires square matrix");
  }
  const size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::Identity(n);

  // Scale tolerance with the matrix magnitude so tiny kernels terminate too.
  double frob = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) frob += a(i, j) * a(i, j);
  }
  frob = std::sqrt(frob);
  const double stop = tolerance * std::max(frob, 1e-300);

  bool converged = n <= 1 || OffDiagonalNorm(a) <= stop;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable rotation computation (Golub & Van Loan).
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
    converged = OffDiagonalNorm(a) <= stop;
  }
  if (!converged) {
    return Status::Internal("Jacobi eigensolver did not converge");
  }

  // Sort eigenpairs by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return a(i, i) > a(j, j); });

  EigenDecomposition out;
  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t rank = 0; rank < n; ++rank) {
    const size_t src = order[rank];
    out.eigenvalues[rank] = a(src, src);
    for (size_t r = 0; r < n; ++r) out.eigenvectors(r, rank) = v(r, src);
  }
  return out;
}

}  // namespace locat::math
