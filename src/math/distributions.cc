#include "math/distributions.h"

#include <cmath>

namespace locat::math {

double NormalPdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

double NormalCdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

double ProbabilityOfImprovement(double mean, double stddev, double best) {
  if (stddev <= 1e-12) return mean < best ? 1.0 : 0.0;
  return NormalCdf((best - mean) / stddev);
}

double NegativeLowerConfidenceBound(double mean, double stddev, double beta) {
  return -(mean - beta * stddev);
}

double ExpectedImprovement(double mean, double stddev, double best) {
  if (stddev <= 1e-12) {
    const double imp = best - mean;
    return imp > 0.0 ? imp : 0.0;
  }
  const double z = (best - mean) / stddev;
  return (best - mean) * NormalCdf(z) + stddev * NormalPdf(z);
}

}  // namespace locat::math
