#include "ml/random_forest.h"

#include <cmath>

#include "math/stats.h"

namespace locat::ml {

Status RandomForest::Fit(const math::Matrix& x, const math::Vector& y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument(
        "random forest fit requires matching non-empty x, y");
  }
  Rng rng(options_.seed);
  trees_.clear();
  trees_.reserve(static_cast<size_t>(options_.num_trees));
  const size_t n = x.rows();
  const size_t bag =
      std::max<size_t>(2, static_cast<size_t>(options_.sample_fraction *
                                              static_cast<double>(n)));
  for (int t = 0; t < options_.num_trees; ++t) {
    std::vector<size_t> rows(bag);
    for (size_t i = 0; i < bag; ++i) {
      rows[i] = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(n) - 1));
    }
    RegressionTree tree;
    LOCAT_RETURN_IF_ERROR(tree.Fit(x, y, options_.tree, rows));
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double RandomForest::Predict(const math::Vector& x) const {
  assert(!trees_.empty());
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.Predict(x);
  return sum / static_cast<double>(trees_.size());
}

double RandomForest::PredictStdDev(const math::Vector& x) const {
  assert(!trees_.empty());
  std::vector<double> preds;
  preds.reserve(trees_.size());
  for (const auto& tree : trees_) preds.push_back(tree.Predict(x));
  return math::StdDev(preds);
}

}  // namespace locat::ml
