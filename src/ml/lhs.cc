#include "ml/lhs.h"

#include <cassert>

namespace locat::ml {

math::Matrix LatinHypercube(int n, int dim, Rng* rng) {
  assert(n > 0 && dim > 0 && rng != nullptr);
  math::Matrix samples(static_cast<size_t>(n), static_cast<size_t>(dim));
  for (int d = 0; d < dim; ++d) {
    std::vector<int> strata = rng->Permutation(n);
    for (int i = 0; i < n; ++i) {
      // Uniform position within the assigned stratum.
      const double u = rng->NextDouble();
      samples(static_cast<size_t>(i), static_cast<size_t>(d)) =
          (static_cast<double>(strata[i]) + u) / static_cast<double>(n);
    }
  }
  return samples;
}

}  // namespace locat::ml
