#include "ml/gp_mode.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace locat::ml {
namespace {

constexpr size_t kDefaultSwitchThreshold = 240;

/// Initial mode from LOCAT_GP_MODE. Runs once, thread-safe via the
/// function-local static in ModeSlot() (same pattern as kern.cc's
/// LOCAT_SIMD backend slot and batch_engine.cc's engine slot).
GpMode InitialMode() {
  const char* env = std::getenv("LOCAT_GP_MODE");
  if (env == nullptr || *env == '\0') return GpMode::kExact;
  const std::string v(env);
  if (v == "incremental") return GpMode::kIncremental;
  if (v == "sparse") return GpMode::kSparse;
  if (v != "exact") {
    std::fprintf(stderr,
                 "locat: ignoring invalid LOCAT_GP_MODE=%s "
                 "(expected exact|incremental|sparse); using exact\n",
                 env);
  }
  return GpMode::kExact;
}

size_t InitialThreshold() {
  const char* env = std::getenv("LOCAT_GP_THRESHOLD");
  if (env == nullptr || *env == '\0') return kDefaultSwitchThreshold;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || parsed == 0) {
    std::fprintf(stderr,
                 "locat: ignoring invalid LOCAT_GP_THRESHOLD=%s "
                 "(expected a positive integer); using %zu\n",
                 env, kDefaultSwitchThreshold);
    return kDefaultSwitchThreshold;
  }
  return static_cast<size_t>(parsed);
}

std::atomic<GpMode>& ModeSlot() {
  static std::atomic<GpMode> slot(InitialMode());
  return slot;
}

std::atomic<size_t>& ThresholdSlot() {
  static std::atomic<size_t> slot(InitialThreshold());
  return slot;
}

}  // namespace

GpMode ActiveGpMode() { return ModeSlot().load(std::memory_order_acquire); }

void SetGpMode(GpMode m) { ModeSlot().store(m, std::memory_order_release); }

Status SetGpModeByName(std::string_view name) {
  if (name == "exact") {
    SetGpMode(GpMode::kExact);
    return Status::OK();
  }
  if (name == "incremental") {
    SetGpMode(GpMode::kIncremental);
    return Status::OK();
  }
  if (name == "sparse") {
    SetGpMode(GpMode::kSparse);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown gp mode '" + std::string(name) +
                                 "' (expected exact|incremental|sparse)");
}

const char* GpModeName(GpMode m) {
  switch (m) {
    case GpMode::kExact:
      return "exact";
    case GpMode::kIncremental:
      return "incremental";
    case GpMode::kSparse:
      return "sparse";
  }
  return "exact";
}

const char* ActiveGpModeName() { return GpModeName(ActiveGpMode()); }

size_t GpSwitchThreshold() {
  return ThresholdSlot().load(std::memory_order_acquire);
}

void SetGpSwitchThreshold(size_t n) {
  ThresholdSlot().store(n == 0 ? InitialThreshold() : n,
                        std::memory_order_release);
}

}  // namespace locat::ml
