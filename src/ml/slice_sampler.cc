#include "ml/slice_sampler.h"

#include <cmath>
#include <limits>

namespace locat::ml {

double SliceSampler::SampleCoordinate(math::Vector* state, size_t coord,
                                      double log_f0, Rng* rng,
                                      Stats* stats) const {
  const double x0 = (*state)[coord];
  // Slice level: log(u) + log f(x0), u ~ U(0,1).
  const double log_y = log_f0 + std::log(1.0 - rng->NextDouble());

  // Step out to find the bracket [lo, hi].
  double lo = x0 - options_.width * rng->NextDouble();
  double hi = lo + options_.width;
  auto eval_at = [&](double v) {
    (*state)[coord] = v;
    if (stats != nullptr) ++stats->density_evals;
    return log_density_(*state);
  };
  for (int i = 0; i < options_.max_step_out && eval_at(lo) > log_y; ++i) {
    lo -= options_.width;
    if (stats != nullptr) ++stats->step_outs;
  }
  for (int i = 0; i < options_.max_step_out && eval_at(hi) > log_y; ++i) {
    hi += options_.width;
    if (stats != nullptr) ++stats->step_outs;
  }

  // Shrink until a point inside the slice is found.
  for (int i = 0; i < options_.max_shrink; ++i) {
    const double x1 = lo + (hi - lo) * rng->NextDouble();
    const double log_f1 = eval_at(x1);
    if (log_f1 > log_y) {
      if (stats != nullptr) ++stats->accepted;
      return x1;  // state already holds x1.
    }
    if (stats != nullptr) ++stats->shrinks;
    if (x1 < x0) {
      lo = x1;
    } else {
      hi = x1;
    }
  }
  // Pathological density; keep the original value.
  if (stats != nullptr) ++stats->stuck;
  (*state)[coord] = x0;
  return x0;
}

math::Vector SliceSampler::Sweep(const math::Vector& state, Rng* rng,
                                 Stats* stats) const {
  math::Vector current = state;
  double log_f = log_density_(current);
  if (stats != nullptr) ++stats->density_evals;
  if (!std::isfinite(log_f)) {
    // Caller gave an infeasible start; return unchanged.
    return current;
  }
  for (size_t coord = 0; coord < current.size(); ++coord) {
    SampleCoordinate(&current, coord, log_f, rng, stats);
    log_f = log_density_(current);
    if (stats != nullptr) ++stats->density_evals;
  }
  return current;
}

std::vector<math::Vector> SliceSampler::Sample(
    const math::Vector& initial, int n_samples, int burn_in, int thin,
    Rng* rng, Stats* stats, const SampleCallback& on_sample) const {
  std::vector<math::Vector> samples;
  samples.reserve(static_cast<size_t>(n_samples));
  math::Vector state = initial;
  for (int i = 0; i < burn_in; ++i) state = Sweep(state, rng, stats);
  for (int s = 0; s < n_samples; ++s) {
    for (int t = 0; t < std::max(1, thin); ++t) state = Sweep(state, rng, stats);
    samples.push_back(state);
    if (on_sample) on_sample(s, state);
  }
  return samples;
}

}  // namespace locat::ml
