#include "ml/gp.h"

#include <cmath>
#include <limits>

#include "math/stats.h"

namespace locat::ml {
namespace {

constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5 * log(2*pi)

double ArdSqExp(const math::Vector& a, const math::Vector& b,
                const GpHyperparams& hp) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double l = std::exp(hp.log_lengthscales[i]);
    const double d = (a[i] - b[i]) / l;
    s += d * d;
  }
  return std::exp(hp.log_signal_variance) * std::exp(-0.5 * s);
}

math::Matrix BuildKernelMatrix(const math::Matrix& x, const GpHyperparams& hp) {
  const size_t n = x.rows();
  math::Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    const math::Vector xi = x.Row(i);
    for (size_t j = i; j < n; ++j) {
      const double v = ArdSqExp(xi, x.Row(j), hp);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  k.AddToDiagonal(std::exp(hp.log_noise_variance) + 1e-10);
  return k;
}

}  // namespace

GpHyperparams GpHyperparams::Default(size_t input_dim) {
  GpHyperparams hp;
  hp.log_lengthscales = math::Vector(input_dim, std::log(0.3));
  hp.log_signal_variance = 0.0;
  hp.log_noise_variance = -4.0;
  return hp;
}

math::Vector GpHyperparams::Flatten() const {
  math::Vector flat(log_lengthscales.size() + 2);
  for (size_t i = 0; i < log_lengthscales.size(); ++i) {
    flat[i] = log_lengthscales[i];
  }
  flat[log_lengthscales.size()] = log_signal_variance;
  flat[log_lengthscales.size() + 1] = log_noise_variance;
  return flat;
}

GpHyperparams GpHyperparams::Unflatten(const math::Vector& flat) {
  GpHyperparams hp;
  const size_t d = flat.size() - 2;
  hp.log_lengthscales = math::Vector(d);
  for (size_t i = 0; i < d; ++i) hp.log_lengthscales[i] = flat[i];
  hp.log_signal_variance = flat[d];
  hp.log_noise_variance = flat[d + 1];
  return hp;
}

Status GaussianProcess::Fit(const math::Matrix& x, const math::Vector& y,
                            const GpHyperparams& hp) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument("GP fit requires matching non-empty x, y");
  }
  if (hp.log_lengthscales.size() != x.cols()) {
    return Status::InvalidArgument("lengthscale dimension mismatch");
  }
  x_ = x;
  hp_ = hp;

  y_mean_ = math::Mean(y.data());
  y_std_ = math::StdDev(y.data());
  if (y_std_ < 1e-12) y_std_ = 1.0;  // Constant targets: predict the mean.
  math::Vector ys(y.size());
  for (size_t i = 0; i < y.size(); ++i) ys[i] = (y[i] - y_mean_) / y_std_;

  math::Matrix k = BuildKernelMatrix(x_, hp_);
  auto chol = math::Cholesky::FactorWithJitter(k);
  if (!chol.ok()) return chol.status();
  chol_ = std::move(chol).value();
  alpha_ = chol_->Solve(ys);

  const double n = static_cast<double>(x_.rows());
  log_marginal_likelihood_ = -0.5 * ys.Dot(alpha_) -
                             0.5 * chol_->LogDeterminant() - n * kHalfLog2Pi;
  fitted_ = true;
  return Status::OK();
}

double GaussianProcess::KernelValue(const math::Vector& a,
                                    const math::Vector& b) const {
  return ArdSqExp(a, b, hp_);
}

GaussianProcess::Prediction GaussianProcess::Predict(
    const math::Vector& x) const {
  assert(fitted_);
  const size_t n = x_.rows();
  math::Vector kstar(n);
  for (size_t i = 0; i < n; ++i) kstar[i] = KernelValue(x, x_.Row(i));

  Prediction pred;
  pred.mean = y_mean_ + y_std_ * kstar.Dot(alpha_);

  // var = k(x,x) - k*^T (K + noise I)^-1 k*, computed via the triangular
  // solve v = L^-1 k*.
  const math::Vector v = chol_->SolveLower(kstar);
  double var = KernelValue(x, x) - v.Dot(v);
  if (var < 0.0) var = 0.0;
  pred.variance = var * y_std_ * y_std_;
  return pred;
}

double GaussianProcess::ComputeLogMarginalLikelihood(const math::Matrix& x,
                                                     const math::Vector& y,
                                                     const GpHyperparams& hp) {
  if (x.rows() == 0 || x.rows() != y.size() ||
      hp.log_lengthscales.size() != x.cols()) {
    return -std::numeric_limits<double>::infinity();
  }
  const double y_mean = math::Mean(y.data());
  double y_std = math::StdDev(y.data());
  if (y_std < 1e-12) y_std = 1.0;
  math::Vector ys(y.size());
  for (size_t i = 0; i < y.size(); ++i) ys[i] = (y[i] - y_mean) / y_std;

  math::Matrix k = BuildKernelMatrix(x, hp);
  auto chol = math::Cholesky::Factor(k);
  if (!chol.ok()) return -std::numeric_limits<double>::infinity();
  const math::Vector alpha = chol->Solve(ys);
  const double n = static_cast<double>(x.rows());
  return -0.5 * ys.Dot(alpha) - 0.5 * chol->LogDeterminant() -
         n * kHalfLog2Pi;
}

}  // namespace locat::ml
