#include "ml/gp.h"

#include <cmath>
#include <limits>
#include <vector>

#include "math/kern/kern.h"
#include "math/stats.h"

namespace locat::ml {
namespace {

constexpr double kHalfLog2Pi = 0.9189385332046727;  // 0.5 * log(2*pi)

/// exp(-2 * log_l_d) per dimension — the multiplicative form of the ARD
/// lengthscales. Computing these once per kernel build (instead of one
/// exp + divide per dimension per pair) is the main cost reduction in the
/// MCMC hot path.
math::Vector KernelWeights(const GpHyperparams& hp) {
  math::Vector w(hp.log_lengthscales.size());
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = std::exp(-2.0 * hp.log_lengthscales[i]);
  }
  return w;
}

/// The original per-pair kernel evaluation: one exp + divide per
/// dimension. Retained as the reference/baseline implementation.
double ReferenceArdSqExp(const math::Vector& a, const math::Vector& b,
                         const GpHyperparams& hp) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double l = std::exp(hp.log_lengthscales[i]);
    const double d = (a[i] - b[i]) / l;
    s += d * d;
  }
  return std::exp(hp.log_signal_variance) * std::exp(-0.5 * s);
}

math::Matrix BuildKernelMatrix(const math::Matrix& x, const GpHyperparams& hp) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  const math::Vector w = KernelWeights(hp);
  const double sv = std::exp(hp.log_signal_variance);
  const double diag = sv + std::exp(hp.log_noise_variance) + 1e-10;
  math::Matrix k(n, n);
  // Strict lower triangle row-batched: weighted squared distances straight
  // into row i, one vectorized exp pass over the row, then mirror.
  for (size_t i = 0; i < n; ++i) {
    double* row = k.RowData(i);
    math::kern::WeightedSquaredDistanceRows(x.RowData(0), i, d, d,
                                            x.RowData(i), w.data().data(),
                                            row);
    math::kern::ExpScaled(row, i, -0.5, sv);
    for (size_t j = 0; j < i; ++j) k(j, i) = row[j];
    row[i] = diag;
  }
  return k;
}

void Standardize(const math::Vector& y, math::Vector* ys, double* mean,
                 double* std) {
  *mean = math::Mean(y.data());
  *std = math::StdDev(y.data());
  if (*std < 1e-12) *std = 1.0;  // Constant targets: predict the mean.
  *ys = math::Vector(y.size());
  for (size_t i = 0; i < y.size(); ++i) (*ys)[i] = (y[i] - *mean) / *std;
}

}  // namespace

GpHyperparams GpHyperparams::Default(size_t input_dim) {
  GpHyperparams hp;
  hp.log_lengthscales = math::Vector(input_dim, std::log(0.3));
  hp.log_signal_variance = 0.0;
  hp.log_noise_variance = -4.0;
  return hp;
}

math::Vector GpHyperparams::Flatten() const {
  math::Vector flat(log_lengthscales.size() + 2);
  for (size_t i = 0; i < log_lengthscales.size(); ++i) {
    flat[i] = log_lengthscales[i];
  }
  flat[log_lengthscales.size()] = log_signal_variance;
  flat[log_lengthscales.size() + 1] = log_noise_variance;
  return flat;
}

GpHyperparams GpHyperparams::Unflatten(const math::Vector& flat) {
  GpHyperparams hp;
  const size_t d = flat.size() - 2;
  hp.log_lengthscales = math::Vector(d);
  for (size_t i = 0; i < d; ++i) hp.log_lengthscales[i] = flat[i];
  hp.log_signal_variance = flat[d];
  hp.log_noise_variance = flat[d + 1];
  return hp;
}

GpKernelCache::GpKernelCache(const math::Matrix& x, const math::Vector& y)
    : x_(x), y_raw_(y) {
  Standardize(y, &ys_, &y_mean_, &y_std_);
  const size_t n = x_.rows();
  const size_t d = x_.cols();
  pair_sqdiff_.resize(n * (n - 1) / 2 * d);
  double* out = pair_sqdiff_.data();
  for (size_t i = 0; i < n; ++i) {
    const double* xi = x_.RowData(i);
    for (size_t j = 0; j < i; ++j) {
      math::kern::SubSquare(xi, x_.RowData(j), out, d);
      out += d;
    }
  }
}

math::Matrix GpKernelCache::BuildKernel(const GpHyperparams& hp) const {
  const size_t n = x_.rows();
  const size_t d = x_.cols();
  const math::Vector w = KernelWeights(hp);
  const double sv = std::exp(hp.log_signal_variance);
  const double diag = sv + std::exp(hp.log_noise_variance) + 1e-10;
  math::Matrix k(n, n);
  // The precomputed pair squared-diffs form an (npairs x d) row-major
  // matrix, so the whole strict lower triangle is one mat-vec against the
  // lengthscale weights followed by one vectorized exp pass.
  const size_t npairs = n * (n - 1) / 2;
  std::vector<double> vals(npairs);
  math::kern::MatVecRowMajor(pair_sqdiff_.data(), npairs, d, w.data().data(),
                             vals.data());
  math::kern::ExpScaled(vals.data(), npairs, -0.5, sv);
  const double* v = vals.data();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < i; ++j) {
      k(i, j) = *v;
      k(j, i) = *v;
      ++v;
    }
    k(i, i) = diag;
  }
  return k;
}

double GpKernelCache::LogMarginalLikelihood(const GpHyperparams& hp) {
  if (hp.log_lengthscales.size() != x_.cols() || x_.rows() == 0) {
    return -std::numeric_limits<double>::infinity();
  }
  // The slice sampler re-evaluates the density at the state it just
  // accepted (once per coordinate, at the end of each sweep); answer those
  // repeats from the memo instead of refactoring.
  if (memo_.has_value()) {
    const math::Vector flat = hp.Flatten();
    if (flat.size() == memo_key_.size()) {
      bool match = true;
      for (size_t i = 0; i < flat.size(); ++i) {
        if (memo_key_[i] != flat[i]) {
          match = false;
          break;
        }
      }
      if (match) return memo_->log_marginal_likelihood;
    }
  }
  math::Matrix k = BuildKernel(hp);
  auto chol = math::Cholesky::FactorWithJitter(k);
  if (!chol.ok()) return -std::numeric_limits<double>::infinity();
  math::Vector alpha = chol->Solve(ys_);
  const double n = static_cast<double>(x_.rows());
  const double lml = -0.5 * ys_.Dot(alpha) - 0.5 * chol->LogDeterminant() -
                     n * kHalfLog2Pi;
  memo_.emplace(
      Factorization{std::move(chol).value(), std::move(alpha), lml});
  memo_key_ = hp.Flatten();
  return lml;
}

void GpKernelCache::AppendObservation(const math::Vector& x_new,
                                      double y_new) {
  const size_t n = x_.rows();
  const size_t d = x_.cols();
  assert(x_new.size() == d);

  // Extend the memoized factorization before touching x_: the cross row
  // must be built against the n points the memo was factored over.
  if (memo_.has_value()) {
    const GpHyperparams hp = GpHyperparams::Unflatten(memo_key_);
    const math::Vector w = KernelWeights(hp);
    const double sv = std::exp(hp.log_signal_variance);
    math::Vector cross(n);
    math::kern::WeightedSquaredDistanceRows(x_.RowData(0), n, d, d,
                                            x_new.data().data(),
                                            w.data().data(),
                                            cross.data().data());
    math::kern::ExpScaled(cross.data().data(), n, -0.5, sv);
    const double diag = sv + std::exp(hp.log_noise_variance) + 1e-10;
    if (!memo_->chol.AppendRow(cross, diag).ok()) memo_.reset();
  }

  // New pair squared-diffs: pairs (n, j) for j < n sit contiguously at the
  // end of the (i, j<i) enumeration, so growing the array preserves every
  // existing pair index.
  pair_sqdiff_.resize((n + 1) * n / 2 * d);
  double* out = pair_sqdiff_.data() + n * (n - 1) / 2 * d;
  for (size_t j = 0; j < n; ++j) {
    math::kern::SubSquare(x_new.data().data(), x_.RowData(j), out, d);
    out += d;
  }

  math::Matrix grown(n + 1, d);
  for (size_t i = 0; i < n; ++i) grown.SetRow(i, x_.Row(i));
  grown.SetRow(n, x_new);
  x_ = std::move(grown);

  math::Vector y_grown(n + 1);
  for (size_t i = 0; i < n; ++i) y_grown[i] = y_raw_[i];
  y_grown[n] = y_new;
  y_raw_ = std::move(y_grown);
  Standardize(y_raw_, &ys_, &y_mean_, &y_std_);

  // Finish the extended memo with the restandardized targets.
  if (memo_.has_value()) {
    memo_->alpha = memo_->chol.Solve(ys_);
    memo_->log_marginal_likelihood =
        -0.5 * ys_.Dot(memo_->alpha) - 0.5 * memo_->chol.LogDeterminant() -
        static_cast<double>(n + 1) * kHalfLog2Pi;
  }
}

std::optional<GpKernelCache::Factorization> GpKernelCache::TakeMemoized(
    const math::Vector& flat) {
  if (!memo_.has_value() || memo_key_.size() != flat.size()) {
    return std::nullopt;
  }
  for (size_t i = 0; i < flat.size(); ++i) {
    if (memo_key_[i] != flat[i]) return std::nullopt;
  }
  std::optional<Factorization> out = std::move(memo_);
  memo_.reset();
  return out;
}

Status GaussianProcess::Fit(const math::Matrix& x, const math::Vector& y,
                            const GpHyperparams& hp) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument("GP fit requires matching non-empty x, y");
  }
  if (hp.log_lengthscales.size() != x.cols()) {
    return Status::InvalidArgument("lengthscale dimension mismatch");
  }
  x_ = x;
  y_raw_ = y;
  hp_ = hp;

  math::Vector ys;
  Standardize(y, &ys, &y_mean_, &y_std_);

  math::Matrix k = BuildKernelMatrix(x_, hp_);
  auto chol = math::Cholesky::FactorWithJitter(k);
  if (!chol.ok()) return chol.status();
  chol_ = std::move(chol).value();
  alpha_ = chol_->Solve(ys);

  const double n = static_cast<double>(x_.rows());
  log_marginal_likelihood_ = -0.5 * ys.Dot(alpha_) -
                             0.5 * chol_->LogDeterminant() - n * kHalfLog2Pi;
  FinishFit();
  return Status::OK();
}

Status GaussianProcess::Fit(const GpKernelCache& cache,
                            const GpHyperparams& hp) {
  if (hp.log_lengthscales.size() != cache.input_dim()) {
    return Status::InvalidArgument("lengthscale dimension mismatch");
  }
  x_ = cache.x();
  y_raw_ = cache.raw_y();
  hp_ = hp;
  y_mean_ = cache.y_mean();
  y_std_ = cache.y_std();

  math::Matrix k = cache.BuildKernel(hp);
  auto chol = math::Cholesky::FactorWithJitter(k);
  if (!chol.ok()) return chol.status();
  chol_ = std::move(chol).value();
  alpha_ = chol_->Solve(cache.standardized_y());

  const double n = static_cast<double>(x_.rows());
  log_marginal_likelihood_ = -0.5 * cache.standardized_y().Dot(alpha_) -
                             0.5 * chol_->LogDeterminant() - n * kHalfLog2Pi;
  FinishFit();
  return Status::OK();
}

Status GaussianProcess::AdoptFit(const GpKernelCache& cache,
                                 const GpHyperparams& hp,
                                 GpKernelCache::Factorization factorization) {
  if (hp.log_lengthscales.size() != cache.input_dim()) {
    return Status::InvalidArgument("lengthscale dimension mismatch");
  }
  x_ = cache.x();
  y_raw_ = cache.raw_y();
  hp_ = hp;
  y_mean_ = cache.y_mean();
  y_std_ = cache.y_std();
  chol_ = std::move(factorization.chol);
  alpha_ = std::move(factorization.alpha);
  log_marginal_likelihood_ = factorization.log_marginal_likelihood;
  FinishFit();
  return Status::OK();
}

Status GaussianProcess::AppendFit(const math::Vector& x_new, double y_new) {
  if (!fitted_) {
    return Status::FailedPrecondition("AppendFit requires a fitted GP");
  }
  if (x_new.size() != x_.cols()) {
    return Status::InvalidArgument("AppendFit dimension mismatch");
  }
  const size_t n = x_.rows();
  const size_t d = x_.cols();

  // Cross kernel row against the existing inputs, built with the exact
  // batched kernels BuildKernelMatrix uses for off-diagonal entries, so an
  // appended factor and a refit factor see bit-identical kernel values.
  math::Vector cross(n);
  math::kern::WeightedSquaredDistanceRows(x_.RowData(0), n, d, d,
                                          x_new.data().data(),
                                          inv_sq_lengthscales_.data().data(),
                                          cross.data().data());
  math::kern::ExpScaled(cross.data().data(), n, -0.5, signal_variance_);
  const double diag =
      signal_variance_ + std::exp(hp_.log_noise_variance) + 1e-10;

  // Stage the extended inputs; nothing is committed until the factor
  // extension succeeded.
  math::Matrix x_ext(n + 1, d);
  for (size_t i = 0; i < n; ++i) x_ext.SetRow(i, x_.Row(i));
  x_ext.SetRow(n, x_new);

  // AppendRow stages into fresh storage and leaves the factor untouched on
  // failure, so attempting in place is rollback-safe.
  if (!chol_->AppendRow(cross, diag).ok()) {
    // Schur completion went non-positive: the extension needs more
    // regularization than the stored jitter. Full O(n^3) fallback with the
    // escalating-jitter path on the extended kernel.
    auto refactored =
        math::Cholesky::FactorWithJitter(BuildKernelMatrix(x_ext, hp_));
    if (!refactored.ok()) return refactored.status();
    chol_ = std::move(refactored).value();
  }

  math::Vector y_ext(n + 1);
  for (size_t i = 0; i < n; ++i) y_ext[i] = y_raw_[i];
  y_ext[n] = y_new;

  x_ = std::move(x_ext);
  y_raw_ = std::move(y_ext);

  math::Vector ys;
  Standardize(y_raw_, &ys, &y_mean_, &y_std_);
  alpha_ = chol_->Solve(ys);
  log_marginal_likelihood_ = -0.5 * ys.Dot(alpha_) -
                             0.5 * chol_->LogDeterminant() -
                             static_cast<double>(n + 1) * kHalfLog2Pi;
  return Status::OK();
}

void GaussianProcess::FinishFit() {
  inv_sq_lengthscales_ = KernelWeights(hp_);
  signal_variance_ = std::exp(hp_.log_signal_variance);
  fitted_ = true;
}

GaussianProcess::Prediction GaussianProcess::Predict(
    const math::Vector& x) const {
  assert(fitted_);
  assert(x.size() == x_.cols());
  const size_t n = x_.rows();
  const double* xp = x.data().data();
  math::Vector kstar(n);
  math::kern::WeightedSquaredDistanceRows(x_.RowData(0), n, x_.cols(),
                                          x_.cols(), xp,
                                          inv_sq_lengthscales_.data().data(),
                                          kstar.data().data());
  math::kern::ExpScaled(kstar.data().data(), n, -0.5, signal_variance_);

  Prediction pred;
  pred.mean = y_mean_ + y_std_ * kstar.Dot(alpha_);

  // var = k(x,x) - k*^T (K + noise I)^-1 k*, computed via the triangular
  // solve v = L^-1 k*. k(x,x) is exactly the signal variance.
  const math::Vector v = chol_->SolveLower(kstar);
  double var = signal_variance_ - v.Dot(v);
  if (var < 0.0) var = 0.0;
  pred.variance = var * y_std_ * y_std_;
  return pred;
}

GaussianProcess::Prediction GaussianProcess::PredictReference(
    const math::Vector& x) const {
  assert(fitted_);
  const size_t n = x_.rows();
  math::Vector kstar(n);
  for (size_t i = 0; i < n; ++i) {
    kstar[i] = ReferenceArdSqExp(x, x_.Row(i), hp_);
  }

  Prediction pred;
  pred.mean = y_mean_ + y_std_ * kstar.Dot(alpha_);
  const math::Vector v = chol_->SolveLower(kstar);
  double var = ReferenceArdSqExp(x, x, hp_) - v.Dot(v);
  if (var < 0.0) var = 0.0;
  pred.variance = var * y_std_ * y_std_;
  return pred;
}

GaussianProcess::BatchPrediction GaussianProcess::PredictBatch(
    const math::Matrix& xs) const {
  assert(fitted_);
  assert(xs.cols() == x_.cols());
  const size_t m = xs.rows();
  const size_t n = x_.rows();
  BatchPrediction out;
  out.mean = math::Vector(m);
  out.variance = math::Vector(m);
  if (m == 0) return out;

  // Candidate-major cross-kernel: km(c, i) = k(xs_c, x_i). Row c is the
  // k* vector of candidate c — built with exactly the batched ops Predict
  // uses, so the two paths agree bit-for-bit on the kernel values.
  math::Matrix km(m, n);
  const double* w = inv_sq_lengthscales_.data().data();
  for (size_t c = 0; c < m; ++c) {
    double* row = km.RowData(c);
    math::kern::WeightedSquaredDistanceRows(x_.RowData(0), n, x_.cols(),
                                            x_.cols(), xs.RowData(c), w, row);
    math::kern::ExpScaled(row, n, -0.5, signal_variance_);
    out.mean[c] =
        y_mean_ + y_std_ * math::kern::Dot(row, alpha_.data().data(), n);
  }

  // One blocked forward substitution for every candidate at once:
  // V = L^-1 K*^T, then var_c = k(x,x) - sum_i V(i,c)^2. The column sums
  // accumulate i in increasing order, matching the per-point Predict.
  const math::Matrix v = chol_->SolveLowerMatrix(km.Transpose());
  math::Vector sumsq(m);
  for (size_t i = 0; i < n; ++i) {
    math::kern::AddSquares(v.RowData(i), sumsq.data().data(), m);
  }
  const double ys2 = y_std_ * y_std_;
  for (size_t c = 0; c < m; ++c) {
    double var = signal_variance_ - sumsq[c];
    if (var < 0.0) var = 0.0;
    out.variance[c] = var * ys2;
  }
  return out;
}

double GaussianProcess::ComputeLogMarginalLikelihood(const math::Matrix& x,
                                                     const math::Vector& y,
                                                     const GpHyperparams& hp) {
  if (x.rows() == 0 || x.rows() != y.size() ||
      hp.log_lengthscales.size() != x.cols()) {
    return -std::numeric_limits<double>::infinity();
  }
  math::Vector ys;
  double y_mean = 0.0;
  double y_std = 1.0;
  Standardize(y, &ys, &y_mean, &y_std);

  // Reference kernel build (per-pair exps) on purpose: this static entry
  // point doubles as the benchmark baseline for the cached path.
  const size_t n_pts = x.rows();
  math::Matrix k(n_pts, n_pts);
  for (size_t i = 0; i < n_pts; ++i) {
    const math::Vector xi = x.Row(i);
    for (size_t j = i; j < n_pts; ++j) {
      const double v = ReferenceArdSqExp(xi, x.Row(j), hp);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  k.AddToDiagonal(std::exp(hp.log_noise_variance) + 1e-10);

  // Same jittered factorization as Fit, so the sampler's density and the
  // retained fit cannot disagree near the positive-definiteness boundary.
  auto chol = math::Cholesky::FactorWithJitter(k);
  if (!chol.ok()) return -std::numeric_limits<double>::infinity();
  const math::Vector alpha = chol->Solve(ys);
  const double n = static_cast<double>(x.rows());
  return -0.5 * ys.Dot(alpha) - 0.5 * chol->LogDeterminant() -
         n * kHalfLog2Pi;
}

}  // namespace locat::ml
