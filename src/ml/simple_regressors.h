#ifndef LOCAT_ML_SIMPLE_REGRESSORS_H_
#define LOCAT_ML_SIMPLE_REGRESSORS_H_

#include <memory>
#include <vector>

#include "ml/kernels.h"
#include "ml/regressor.h"

namespace locat::ml {

/// Ordinary least squares with a small ridge term for numerical safety.
/// "LinearR" in Figure 16.
class LinearRegression : public Regressor {
 public:
  explicit LinearRegression(double ridge = 1e-8) : ridge_(ridge) {}

  Status Fit(const math::Matrix& x, const math::Vector& y) override;
  double Predict(const math::Vector& x) const override;
  std::string name() const override { return "LinearR"; }

  const math::Vector& weights() const { return weights_; }
  double intercept() const { return intercept_; }

 private:
  double ridge_;
  math::Vector weights_;
  double intercept_ = 0.0;
};

/// Logistic-curve regression: targets are min-max scaled to (0,1) and a
/// sigmoid(w.x + b) is fit by gradient descent on squared error. This is
/// the "LR" model of Figure 16 — a poor fit for runtimes, as the paper's
/// results show.
class LogisticRegression : public Regressor {
 public:
  struct Options {
    int iterations = 2000;
    double learning_rate = 0.5;

    Options() {}
  };

  explicit LogisticRegression(Options options = Options())
      : options_(options) {}

  Status Fit(const math::Matrix& x, const math::Vector& y) override;
  double Predict(const math::Vector& x) const override;
  std::string name() const override { return "LR"; }

 private:
  Options options_;
  math::Vector weights_;
  double intercept_ = 0.0;
  double y_min_ = 0.0;
  double y_max_ = 1.0;
};

/// K-nearest-neighbor regression with inverse-distance weighting.
/// "KNNAR" in Figure 16.
class KnnRegressor : public Regressor {
 public:
  explicit KnnRegressor(int k = 5) : k_(k) {}

  Status Fit(const math::Matrix& x, const math::Vector& y) override;
  double Predict(const math::Vector& x) const override;
  std::string name() const override { return "KNNAR"; }

 private:
  int k_;
  math::Matrix x_;
  math::Vector y_;
};

/// Kernel support-vector regression trained by subgradient descent on the
/// regularized epsilon-insensitive loss in the representer form
/// f(x) = sum_i beta_i k(x_i, x) + b. "SVR" in Figure 16.
class SvrRegressor : public Regressor {
 public:
  struct Options {
    double epsilon = 0.05;       // insensitivity tube (on standardized y)
    double regularization = 1e-3;
    double learning_rate = 0.01;
    int iterations = 600;
    double kernel_bandwidth = 1.0;

    Options() {}
  };

  explicit SvrRegressor(Options options = Options()) : options_(options) {}

  Status Fit(const math::Matrix& x, const math::Vector& y) override;
  double Predict(const math::Vector& x) const override;
  std::string name() const override { return "SVR"; }

 private:
  Options options_;
  math::Matrix x_;
  math::Vector beta_;
  double bias_ = 0.0;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  std::unique_ptr<GaussianKernel> kernel_;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_SIMPLE_REGRESSORS_H_
