#ifndef LOCAT_ML_GBRT_H_
#define LOCAT_ML_GBRT_H_

#include <memory>
#include <vector>

#include "ml/regressor.h"

namespace locat::ml {

/// A depth-limited CART regression tree fit by variance reduction. The
/// building block of GBRT; also usable standalone.
class RegressionTree {
 public:
  struct Options {
    int max_depth = 4;
    int min_samples_leaf = 2;
  };

  /// Fits on the rows of `x` listed in `row_indices` (all rows if empty).
  Status Fit(const math::Matrix& x, const math::Vector& y,
             const Options& options,
             const std::vector<size_t>& row_indices = {});

  double Predict(const math::Vector& x) const;

  /// Total variance-reduction gain contributed by splits on each feature.
  const std::vector<double>& feature_gains() const { return feature_gains_; }

 private:
  struct Node {
    int feature = -1;          // -1 marks a leaf
    double threshold = 0.0;
    double value = 0.0;        // leaf prediction
    int left = -1;
    int right = -1;
  };

  int BuildNode(const math::Matrix& x, const math::Vector& y,
                std::vector<size_t>& rows, size_t begin, size_t end, int depth,
                const Options& options);

  std::vector<Node> nodes_;
  std::vector<double> feature_gains_;
};

/// Gradient Boosted Regression Trees with squared loss: each stage fits a
/// shallow tree to the current residuals. The paper uses GBRT both as the
/// strongest ML performance model (Figure 16) and as the importance
/// baseline IICP is compared against (Figure 17); the DAC tuner also builds
/// its datasize-aware model with it.
class Gbrt : public Regressor {
 public:
  struct Options {
    int num_trees = 120;
    double learning_rate = 0.1;
    RegressionTree::Options tree;

    Options() {}
  };

  explicit Gbrt(Options options = Options()) : options_(options) {}

  Status Fit(const math::Matrix& x, const math::Vector& y) override;
  double Predict(const math::Vector& x) const override;
  std::string name() const override { return "GBRT"; }

  /// Normalized per-feature importance (split gains summed over all trees,
  /// scaled to sum to 1). Empty before Fit.
  std::vector<double> FeatureImportances() const;

 private:
  Options options_;
  double base_prediction_ = 0.0;
  std::vector<RegressionTree> trees_;
  size_t num_features_ = 0;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_GBRT_H_
