#ifndef LOCAT_ML_LHS_H_
#define LOCAT_ML_LHS_H_

#include <vector>

#include "common/rng.h"
#include "math/matrix.h"

namespace locat::ml {

/// Latin Hypercube Sampling over the unit hypercube [0, 1)^dim.
///
/// Each of the `n` samples occupies a distinct stratum in every dimension,
/// guaranteeing one-dimensional coverage even for tiny n. LOCAT uses 3 LHS
/// samples to seed the Gaussian process (Section 3.4, "Start points").
///
/// Returns an n x dim matrix; row i is sample i.
math::Matrix LatinHypercube(int n, int dim, Rng* rng);

}  // namespace locat::ml

#endif  // LOCAT_ML_LHS_H_
