#ifndef LOCAT_ML_REGRESSOR_H_
#define LOCAT_ML_REGRESSOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "math/matrix.h"

namespace locat::ml {

/// Common interface for the performance-model regressors compared in
/// Figure 16 (GBRT, SVR, LinearR, LR, KNNAR) and used internally by the
/// DAC baseline tuner.
class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Fits the model on an n x d feature matrix and n targets.
  virtual Status Fit(const math::Matrix& x, const math::Vector& y) = 0;

  /// Predicts the target for one feature vector. Must be fitted first.
  virtual double Predict(const math::Vector& x) const = 0;

  /// Model name as it appears in the paper's figures.
  virtual std::string name() const = 0;

  /// Predicts every row of `x`.
  std::vector<double> PredictAll(const math::Matrix& x) const;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_REGRESSOR_H_
