#ifndef LOCAT_ML_KPCA_H_
#define LOCAT_ML_KPCA_H_

#include <memory>

#include "common/status.h"
#include "math/matrix.h"
#include "ml/kernels.h"

namespace locat::ml {

/// Kernel Principal Component Analysis — the Configuration Parameter
/// Extraction (CPE) step of IICP (Section 3.3.2).
///
/// Fit() centers the kernel (Gram) matrix in feature space, eigendecomposes
/// it, and keeps the leading components. Project() maps a configuration
/// vector onto those components; the projected coordinates are the "new
/// parameters which are functions of the original ones" that feed the DAGP.
///
/// GaussianPreimage() approximately inverts the map for Gaussian kernels
/// (Mika et al., fixed-point iteration), used to derive original parameter
/// values from a latent optimum.
class Kpca {
 public:
  struct Options {
    /// Keep the smallest number of components whose eigenvalues cover this
    /// fraction of the total spectrum mass.
    double variance_to_retain = 0.85;
    /// Hard cap on retained components (0 = no cap).
    int max_components = 0;
    /// Eigenvalues below this (relative to the largest) are treated as 0.
    double eigenvalue_floor = 1e-8;

    Options() {}
  };

  Kpca() = default;

  /// Fits on the n x d sample matrix `x` using `kernel` (not owned; must
  /// outlive the Kpca). Requires n >= 2.
  Status Fit(const math::Matrix& x, const Kernel* kernel,
             const Options& options = Options());

  /// Number of retained components (latent dimension).
  int num_components() const { return num_components_; }

  /// Projects a d-dimensional point to the latent space.
  math::Vector Project(const math::Vector& x) const;

  /// Projects every row of `x`.
  math::Matrix ProjectAll(const math::Matrix& x) const;

  /// Fraction of spectrum mass captured by the retained components.
  double explained_variance_ratio() const { return explained_variance_; }

  /// Eigenvalues of the centered Gram matrix (descending, all of them).
  const math::Vector& eigenvalues() const { return eigenvalues_; }

  /// Approximate pre-image of latent point `z` for a Gaussian kernel:
  /// the d-dimensional x whose feature-space image is closest to the
  /// reconstruction of z. Fails with FailedPrecondition when fitted with a
  /// non-Gaussian kernel; returns the best iterate even if the fixed-point
  /// iteration does not fully converge.
  StatusOr<math::Vector> GaussianPreimage(const math::Vector& z,
                                          int max_iterations = 100,
                                          double tolerance = 1e-7) const;

  bool fitted() const { return fitted_; }

 private:
  /// Centered kernel evaluations of `x` against all training rows.
  math::Vector CenteredKernelColumn(const math::Vector& x) const;

  bool fitted_ = false;
  const Kernel* kernel_ = nullptr;
  math::Matrix x_;           // training samples
  math::Matrix alphas_;      // n x m, column m = normalized eigenvector m
  math::Vector eigenvalues_; // all eigenvalues, descending
  math::Vector row_means_;   // (1/n) sum_j K(i, j)
  double grand_mean_ = 0.0;  // (1/n^2) sum_ij K(i, j)
  int num_components_ = 0;
  double explained_variance_ = 0.0;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_KPCA_H_
