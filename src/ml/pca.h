#ifndef LOCAT_ML_PCA_H_
#define LOCAT_ML_PCA_H_

#include "common/status.h"
#include "math/matrix.h"

namespace locat::ml {

/// Plain linear Principal Component Analysis.
///
/// The paper's CPE step deliberately uses *kernel* PCA because "PCA can
/// not extract the non-linear information from the original configuration
/// space" (Section 3.3.2). This linear implementation exists for the
/// ablation that backs that claim (bench/ablation_cpe_pca_vs_kpca) and as
/// a general utility.
class Pca {
 public:
  struct Options {
    /// Keep the smallest number of components covering this fraction of
    /// the total variance.
    double variance_to_retain = 0.85;
    /// Hard cap on components (0 = none).
    int max_components = 0;

    Options() {}
  };

  Pca() = default;

  /// Fits on the n x d sample matrix (n >= 2): centers the data,
  /// eigendecomposes the covariance, keeps the leading components.
  Status Fit(const math::Matrix& x, const Options& options = Options());

  int num_components() const { return num_components_; }
  double explained_variance_ratio() const { return explained_variance_; }

  /// Projects a d-dimensional point onto the retained components.
  math::Vector Project(const math::Vector& x) const;

  /// Reconstructs a point from its projection (inverse transform onto the
  /// principal subspace) — exact for points in the subspace, the
  /// least-squares approximation otherwise.
  math::Vector Reconstruct(const math::Vector& z) const;

  bool fitted() const { return fitted_; }

 private:
  bool fitted_ = false;
  math::Vector mean_;
  math::Matrix components_;  // d x m, column per component
  double explained_variance_ = 0.0;
  int num_components_ = 0;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_PCA_H_
