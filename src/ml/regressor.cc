#include "ml/regressor.h"

namespace locat::ml {

std::vector<double> Regressor::PredictAll(const math::Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (size_t r = 0; r < x.rows(); ++r) out.push_back(Predict(x.Row(r)));
  return out;
}

}  // namespace locat::ml
