#ifndef LOCAT_ML_RANDOM_FOREST_H_
#define LOCAT_ML_RANDOM_FOREST_H_

#include <vector>

#include "common/rng.h"
#include "ml/gbrt.h"
#include "ml/regressor.h"

namespace locat::ml {

/// Bagged random-forest regression built on the same CART trees as GBRT.
///
/// Section 2.2 of the paper lists Random Forest as a candidate BO
/// surrogate "with a good ability to model non-linear interactions" but
/// rejects it for lacking calibrated confidence bounds; this
/// implementation exists so that comparison can be run (see the surrogate
/// ablation bench) and as a general-purpose model.
class RandomForest : public Regressor {
 public:
  struct Options {
    int num_trees = 60;
    /// Bootstrap sample fraction per tree.
    double sample_fraction = 0.8;
    RegressionTree::Options tree;
    uint64_t seed = 1234;

    Options() { tree.max_depth = 8; }
  };

  explicit RandomForest(Options options = Options()) : options_(options) {}

  Status Fit(const math::Matrix& x, const math::Vector& y) override;
  double Predict(const math::Vector& x) const override;
  std::string name() const override { return "RandomForest"; }

  /// Empirical spread of the per-tree predictions — the (uncalibrated)
  /// uncertainty proxy a forest-based BO would use.
  double PredictStdDev(const math::Vector& x) const;

 private:
  Options options_;
  std::vector<RegressionTree> trees_;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_RANDOM_FOREST_H_
