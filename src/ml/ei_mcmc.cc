#include "ml/ei_mcmc.h"

#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "math/distributions.h"
#include "math/stats.h"

namespace locat::ml {

double EiMcmc::LogPrior(const GpHyperparams& hp) const {
  const double inv_var = 1.0 / (options_.prior_log_std * options_.prior_log_std);
  double lp = 0.0;
  for (size_t i = 0; i < hp.log_lengthscales.size(); ++i) {
    const double d = hp.log_lengthscales[i] - options_.lengthscale_log_mean;
    lp -= 0.5 * d * d * inv_var;
  }
  const double ds = hp.log_signal_variance - options_.signal_log_mean;
  lp -= 0.5 * ds * ds * inv_var;
  const double dn = hp.log_noise_variance - options_.noise_log_mean;
  lp -= 0.5 * dn * dn * inv_var;
  return lp;
}

Status EiMcmc::Fit(const math::Matrix& x, const math::Vector& y, Rng* rng) {
  if (x.rows() < 2 || x.rows() != y.size()) {
    return Status::InvalidArgument("EiMcmc::Fit needs >= 2 matching samples");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  last_fit_stats_ = FitStats();
  best_observed_ = math::Min(y.data());

  const size_t dim = x.cols();
  SliceSampler::Options sopts;
  sopts.width = 0.8;
  const math::Vector initial = GpHyperparams::Default(dim).Flatten();

  ensemble_.clear();
  if (options_.fast_path) {
    // Kernel-cached density: pair squared-distances precomputed once, one
    // exp per pair per proposal, and the factorization of every density
    // evaluation memoized. The sampler's last evaluation of each sweep is
    // at exactly the retained state, so the callback harvests that
    // factorization and the ensemble member adopts it instead of
    // refactoring.
    GpKernelCache cache(x, y);
    auto log_posterior = [&](const math::Vector& flat) {
      const GpHyperparams hp = GpHyperparams::Unflatten(flat);
      const double lml = cache.LogMarginalLikelihood(hp);
      if (!std::isfinite(lml)) {
        return -std::numeric_limits<double>::infinity();
      }
      return lml + LogPrior(hp);
    };
    SliceSampler sampler(log_posterior, sopts);

    std::vector<std::optional<GpKernelCache::Factorization>> harvested;
    auto on_sample = [&](int /*index*/, const math::Vector& state) {
      harvested.push_back(cache.TakeMemoized(state));
    };
    const std::vector<math::Vector> samples = sampler.Sample(
        initial, options_.num_hyper_samples, options_.burn_in, options_.thin,
        rng, &last_fit_stats_.sampler, on_sample);

    // Fit the members concurrently, one slot per sample, then assemble in
    // sample order — results are independent of the thread count. Workers
    // only read `cache` and write their own slot; no RNG is touched.
    std::vector<std::optional<GaussianProcess>> slots(samples.size());
    common::ThreadPool::Global()->ParallelForEach(
        samples.size(), [&](size_t i) {
          const GpHyperparams hp = GpHyperparams::Unflatten(samples[i]);
          GaussianProcess gp;
          const Status s =
              harvested[i].has_value()
                  ? gp.AdoptFit(cache, hp, std::move(*harvested[i]))
                  : gp.Fit(cache, hp);
          if (s.ok()) slots[i].emplace(std::move(gp));
        });
    ensemble_.reserve(samples.size());
    for (auto& slot : slots) {
      if (slot.has_value()) ensemble_.push_back(std::move(*slot));
    }
  } else {
    // Sequential baseline: every density evaluation rebuilds the kernel
    // from raw hyperparameters and every ensemble member refits from
    // scratch.
    auto log_posterior = [&](const math::Vector& flat) {
      const GpHyperparams hp = GpHyperparams::Unflatten(flat);
      const double lml =
          GaussianProcess::ComputeLogMarginalLikelihood(x, y, hp);
      if (!std::isfinite(lml)) {
        return -std::numeric_limits<double>::infinity();
      }
      return lml + LogPrior(hp);
    };
    SliceSampler sampler(log_posterior, sopts);
    const std::vector<math::Vector> samples = sampler.Sample(
        initial, options_.num_hyper_samples, options_.burn_in, options_.thin,
        rng, &last_fit_stats_.sampler);
    ensemble_.reserve(samples.size());
    for (const auto& flat : samples) {
      GaussianProcess gp;
      Status s = gp.Fit(x, y, GpHyperparams::Unflatten(flat));
      if (s.ok()) ensemble_.push_back(std::move(gp));
    }
  }
  if (ensemble_.empty()) {
    // Fall back to the default hyperparameters so callers always get a
    // usable surrogate.
    GaussianProcess gp;
    LOCAT_RETURN_IF_ERROR(gp.Fit(x, y, GpHyperparams::Default(dim)));
    ensemble_.push_back(std::move(gp));
    last_fit_stats_.used_fallback = true;
  }
  last_fit_stats_.ensemble_size = static_cast<int>(ensemble_.size());
  last_fit_stats_.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  return Status::OK();
}

Status EiMcmc::AppendObservation(const math::Vector& x, double y) {
  if (ensemble_.empty()) {
    return Status::FailedPrecondition(
        "AppendObservation requires a fitted model");
  }
  if (x.size() != ensemble_.front().input_dim()) {
    return Status::InvalidArgument("AppendObservation dimension mismatch");
  }
  // Members extend independently (each owns its factor), one slot per
  // member — the surviving set and its order are thread-count invariant.
  const size_t members = ensemble_.size();
  std::vector<char> ok(members, 0);
  common::ThreadPool::Global()->ParallelForEach(members, [&](size_t k) {
    ok[k] = ensemble_[k].AppendFit(x, y).ok() ? 1 : 0;
  });
  size_t failed = 0;
  for (size_t k = 0; k < members; ++k) {
    if (!ok[k]) ++failed;
  }
  if (failed == members) {
    // AppendFit rolls back on failure, so every member still holds the
    // pre-append fit — leave the model usable and let the caller refit.
    return Status::FailedPrecondition(
        "every ensemble member failed to extend its factorization");
  }
  size_t kept = 0;
  for (size_t k = 0; k < members; ++k) {
    if (!ok[k]) continue;
    if (kept != k) ensemble_[kept] = std::move(ensemble_[k]);
    ++kept;
  }
  ensemble_.resize(kept);
  best_observed_ = std::min(best_observed_, y);
  last_fit_stats_.ensemble_size = static_cast<int>(kept);
  return Status::OK();
}

double EiMcmc::AcquisitionValue(const math::Vector& x) const {
  assert(fitted());
  double total = 0.0;
  for (const auto& gp : ensemble_) {
    const auto pred = gp.Predict(x);
    const double sd = std::sqrt(pred.variance);
    switch (options_.acquisition) {
      case AcquisitionKind::kProbabilityOfImprovement:
        total += math::ProbabilityOfImprovement(pred.mean, sd, best_observed_);
        break;
      case AcquisitionKind::kUcb:
        total += math::NegativeLowerConfidenceBound(pred.mean, sd,
                                                    options_.ucb_beta);
        break;
      case AcquisitionKind::kExpectedImprovement:
        total += math::ExpectedImprovement(pred.mean, sd, best_observed_);
        break;
    }
  }
  return total / static_cast<double>(ensemble_.size());
}

math::Vector EiMcmc::AcquisitionValueBatch(const math::Matrix& xs) const {
  assert(fitted());
  const size_t m = xs.rows();
  const size_t members = ensemble_.size();
  // One batched prediction per ensemble member, computed concurrently.
  // Each member's result depends only on that member, so the per-candidate
  // accumulation below (fixed member order) is thread-count invariant.
  std::vector<GaussianProcess::BatchPrediction> preds(members);
  common::ThreadPool::Global()->ParallelForEach(members, [&](size_t k) {
    preds[k] = ensemble_[k].PredictBatch(xs);
  });

  math::Vector out(m);
  for (size_t c = 0; c < m; ++c) {
    double total = 0.0;
    for (size_t k = 0; k < members; ++k) {
      const double mean = preds[k].mean[c];
      const double sd = std::sqrt(preds[k].variance[c]);
      switch (options_.acquisition) {
        case AcquisitionKind::kProbabilityOfImprovement:
          total += math::ProbabilityOfImprovement(mean, sd, best_observed_);
          break;
        case AcquisitionKind::kUcb:
          total += math::NegativeLowerConfidenceBound(mean, sd,
                                                      options_.ucb_beta);
          break;
        case AcquisitionKind::kExpectedImprovement:
          total += math::ExpectedImprovement(mean, sd, best_observed_);
          break;
      }
    }
    out[c] = total / static_cast<double>(members);
  }
  return out;
}

GaussianProcess::Prediction EiMcmc::PredictAveraged(
    const math::Vector& x) const {
  assert(fitted());
  double mean = 0.0;
  double second_moment = 0.0;
  for (const auto& gp : ensemble_) {
    const auto pred = gp.Predict(x);
    mean += pred.mean;
    second_moment += pred.variance + pred.mean * pred.mean;
  }
  const double n = static_cast<double>(ensemble_.size());
  mean /= n;
  GaussianProcess::Prediction out;
  out.mean = mean;
  out.variance = std::max(0.0, second_moment / n - mean * mean);
  return out;
}

GaussianProcess::BatchPrediction EiMcmc::PredictAveragedBatch(
    const math::Matrix& xs) const {
  assert(fitted());
  const size_t m = xs.rows();
  const size_t members = ensemble_.size();
  std::vector<GaussianProcess::BatchPrediction> preds(members);
  common::ThreadPool::Global()->ParallelForEach(members, [&](size_t k) {
    preds[k] = ensemble_[k].PredictBatch(xs);
  });

  GaussianProcess::BatchPrediction out;
  out.mean = math::Vector(m);
  out.variance = math::Vector(m);
  const double n = static_cast<double>(members);
  for (size_t c = 0; c < m; ++c) {
    double mean = 0.0;
    double second_moment = 0.0;
    for (size_t k = 0; k < members; ++k) {
      const double mu = preds[k].mean[c];
      mean += mu;
      second_moment += preds[k].variance[c] + mu * mu;
    }
    mean /= n;
    out.mean[c] = mean;
    out.variance[c] = std::max(0.0, second_moment / n - mean * mean);
  }
  return out;
}

double EiMcmc::RelativeEi(const math::Vector& x) const {
  const double denom = std::max(std::fabs(best_observed_), 1e-12);
  return AcquisitionValue(x) / denom;
}

}  // namespace locat::ml
