#include "ml/pca.h"

#include <algorithm>

#include "math/eigen.h"

namespace locat::ml {

Status Pca::Fit(const math::Matrix& x, const Options& options) {
  const size_t n = x.rows();
  const size_t d = x.cols();
  if (n < 2) return Status::InvalidArgument("PCA requires >= 2 samples");

  mean_ = math::Vector(d);
  for (size_t j = 0; j < d; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) s += x(i, j);
    mean_[j] = s / static_cast<double>(n);
  }

  // Covariance matrix (biased; the scaling cancels in the ratios).
  math::Matrix cov(d, d);
  for (size_t a = 0; a < d; ++a) {
    for (size_t b = a; b < d; ++b) {
      double s = 0.0;
      for (size_t i = 0; i < n; ++i) {
        s += (x(i, a) - mean_[a]) * (x(i, b) - mean_[b]);
      }
      cov(a, b) = s / static_cast<double>(n);
      cov(b, a) = cov(a, b);
    }
  }

  auto eig = math::JacobiEigenSymmetric(cov);
  if (!eig.ok()) return eig.status();

  double total = 0.0;
  for (size_t i = 0; i < d; ++i) total += std::max(0.0, eig->eigenvalues[i]);
  if (total <= 0.0) {
    return Status::FailedPrecondition("degenerate covariance (zero variance)");
  }

  int m = 0;
  double covered = 0.0;
  for (size_t i = 0; i < d; ++i) {
    if (eig->eigenvalues[i] <= 1e-12 * eig->eigenvalues[0]) break;
    covered += eig->eigenvalues[i];
    ++m;
    if (covered / total >= options.variance_to_retain) break;
    if (options.max_components > 0 && m >= options.max_components) break;
  }
  if (m == 0) m = 1;
  num_components_ = m;
  explained_variance_ = covered / total;

  components_ = math::Matrix(d, static_cast<size_t>(m));
  for (int c = 0; c < m; ++c) {
    for (size_t r = 0; r < d; ++r) {
      components_(r, static_cast<size_t>(c)) =
          eig->eigenvectors(r, static_cast<size_t>(c));
    }
  }
  fitted_ = true;
  return Status::OK();
}

math::Vector Pca::Project(const math::Vector& x) const {
  assert(fitted_);
  math::Vector centered = x;
  centered -= mean_;
  return components_.Transpose() * centered;
}

math::Vector Pca::Reconstruct(const math::Vector& z) const {
  assert(fitted_);
  math::Vector x = components_ * z;
  x += mean_;
  return x;
}

}  // namespace locat::ml
