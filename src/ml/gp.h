#ifndef LOCAT_ML_GP_H_
#define LOCAT_ML_GP_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "math/cholesky.h"
#include "math/matrix.h"

namespace locat::ml {

/// Log-parameterized hyperparameters of an ARD squared-exponential GP:
/// per-dimension lengthscales, signal variance, and observation-noise
/// variance. Log parameterization keeps all values positive and makes
/// slice sampling unconstrained.
struct GpHyperparams {
  math::Vector log_lengthscales;
  double log_signal_variance = 0.0;
  double log_noise_variance = -4.0;

  /// Sensible defaults for inputs normalized to [0,1]: lengthscale 0.3,
  /// signal variance 1, noise variance exp(-4) ~ 0.018.
  static GpHyperparams Default(size_t input_dim);

  /// Flattens to a vector (lengthscales..., signal, noise) for samplers.
  math::Vector Flatten() const;
  /// Inverse of Flatten(); `flat.size()` must be `input_dim + 2`.
  static GpHyperparams Unflatten(const math::Vector& flat);
};

/// Precomputed kernel structure for repeated hyperparameter evaluations on
/// one fixed (x, y) dataset — the MCMC hot path.
///
/// The slice sampler evaluates the log marginal likelihood at hundreds of
/// hyperparameter proposals per Fit, and every evaluation needs the full
/// n x n kernel matrix. The entries only depend on the hyperparameters
/// through `sum_d w_d * (x_i[d] - x_j[d])^2` with `w_d = exp(-2 log_l_d)`,
/// so this cache stores the per-pair per-dimension squared differences
/// once; each proposal then costs one exp per pair instead of d exps, d
/// divisions, and two Vector copies per pair.
///
/// The cache also standardizes the targets once and memoizes the
/// factorization of the most recent successful likelihood evaluation.
/// The slice sampler's final density evaluation of each sweep lands
/// exactly on the retained sample, so `TakeMemoized` lets the caller
/// build that sample's GP ensemble member without refactoring (O(n^3)
/// saved per retained sample).
class GpKernelCache {
 public:
  /// Precomputes pair structure for `x` (n x d) and standardizes `y`.
  GpKernelCache(const math::Matrix& x, const math::Vector& y);

  size_t num_points() const { return x_.rows(); }
  size_t input_dim() const { return x_.cols(); }
  const math::Matrix& x() const { return x_; }
  /// Targets standardized to zero mean / unit variance.
  const math::Vector& standardized_y() const { return ys_; }
  /// Targets in their original units (what the constructor received).
  const math::Vector& raw_y() const { return y_raw_; }
  double y_mean() const { return y_mean_; }
  double y_std() const { return y_std_; }

  /// Kernel matrix K(hp) with the noise + 1e-10 diagonal already added.
  /// Const and thread-safe.
  math::Matrix BuildKernel(const GpHyperparams& hp) const;

  /// The reusable result of one likelihood evaluation.
  struct Factorization {
    math::Cholesky chol;
    math::Vector alpha;  // (K + noise I)^-1 y_standardized
    double log_marginal_likelihood = 0.0;
  };

  /// Log marginal likelihood of the cached data under `hp` (same value as
  /// `GaussianProcess::ComputeLogMarginalLikelihood`, jittered path).
  /// Returns -inf when the kernel cannot be factored even with jitter.
  /// Memoizes the factorization of the last successful call; NOT
  /// thread-safe because of that memo write.
  double LogMarginalLikelihood(const GpHyperparams& hp);

  /// Moves out the memoized factorization iff it was produced for exactly
  /// the hyperparameters `flat` (element-wise equality on the flattened
  /// vector). Returns nullopt on a miss; the memo is consumed either way
  /// only on a hit.
  std::optional<Factorization> TakeMemoized(const math::Vector& flat);

  /// Grows the cached dataset by one observation in O(n d + n^2): appends
  /// the new point's pair squared-diffs (they land contiguously at the end
  /// of the pair array — pair enumeration order is preserved), restandardizes
  /// the targets over the full history, and *extends* the memoized
  /// factorization via a rank-1 bordered append instead of discarding it.
  /// If the append completion fails (near-singular extension), only the
  /// memo is dropped; the cache itself stays consistent.
  void AppendObservation(const math::Vector& x_new, double y_new);

 private:
  math::Matrix x_;
  math::Vector ys_;
  math::Vector y_raw_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  // Row p holds the d squared differences of pair p, pairs enumerated as
  // (i, j) with j < i, p = i*(i-1)/2 + j. Contiguous so a kernel build is
  // one linear scan.
  std::vector<double> pair_sqdiff_;

  std::optional<Factorization> memo_;
  math::Vector memo_key_;
};

/// Gaussian-process regression with an ARD squared-exponential kernel.
///
/// This is the surrogate model underlying DAGP (the datasize-aware GP): the
/// input vector is the normalized configuration concatenated with the
/// normalized input data size, so the GP models t = f(conf, ds) exactly as
/// in equation (7) of the paper.
///
/// Targets are standardized internally (zero mean, unit variance); all
/// public predictions are in the original units.
class GaussianProcess {
 public:
  GaussianProcess() = default;

  /// Fits the GP to (x, y) with fixed hyperparameters. `x` is n x d, `y`
  /// has n entries, n >= 1. Factors the kernel matrix once (O(n^3)).
  Status Fit(const math::Matrix& x, const math::Vector& y,
             const GpHyperparams& hp);

  /// Fits against a prebuilt kernel cache (same result as the (x, y)
  /// overload on the cache's data, but reuses the cached pair structure
  /// and standardization). The cache is only read, so concurrent Fit
  /// calls against one cache are safe.
  Status Fit(const GpKernelCache& cache, const GpHyperparams& hp);

  /// Adopts an already-computed factorization (from
  /// `GpKernelCache::TakeMemoized`) instead of refactoring — O(n^2) copy
  /// instead of O(n^2 d) kernel build + O(n^3) factorization.
  Status AdoptFit(const GpKernelCache& cache, const GpHyperparams& hp,
                  GpKernelCache::Factorization factorization);

  /// Adds one observation to an already-fitted GP in O(n^2) via a rank-1
  /// bordered Cholesky append (hyperparameters stay fixed): one cross
  /// kernel row (built with the same batched kernels Fit uses, so the
  /// entries are bit-identical to a full kernel rebuild), one triangular
  /// solve, a scalar Schur completion, then a restandardization of the
  /// full target history and one O(n^2) re-solve for the weights. When
  /// the completion rejects the append (near-singular extension) the
  /// implementation falls back to a full jittered refactorization of the
  /// extended kernel. On any error the GP is left unchanged.
  Status AppendFit(const math::Vector& x_new, double y_new);

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };

  /// Posterior predictive mean/variance at a point (equation (10)).
  /// Must be called after a successful Fit.
  Prediction Predict(const math::Vector& x) const;

  /// Straightforward per-point prediction that rebuilds everything from
  /// the raw hyperparameters (per-dimension exp + divide, Vector row
  /// copies). Kept as the ground-truth implementation for equivalence
  /// tests and as the benchmark baseline; produces the same posterior as
  /// `Predict` up to floating-point reassociation.
  Prediction PredictReference(const math::Vector& x) const;

  struct BatchPrediction {
    math::Vector mean;
    math::Vector variance;
  };

  /// Posterior mean/variance for all rows of `xs` (m x d) at once: forms
  /// the m x n cross-kernel in one pass and runs one blocked forward
  /// substitution instead of m per-point triangular solves. Each row's
  /// result depends only on that row, so any chunking of `xs` yields
  /// bit-identical values.
  BatchPrediction PredictBatch(const math::Matrix& xs) const;

  /// Log marginal likelihood of the fitted data under the fitted
  /// hyperparameters (up to the usual constant).
  double LogMarginalLikelihood() const { return log_marginal_likelihood_; }

  /// Computes the log marginal likelihood for candidate hyperparameters
  /// without retaining the fit. Uses the same jittered factorization path
  /// as Fit, so the sampler and the fit agree on the density. Returns
  /// -inf (lowest double) when the kernel matrix cannot be factored even
  /// with jitter.
  static double ComputeLogMarginalLikelihood(const math::Matrix& x,
                                             const math::Vector& y,
                                             const GpHyperparams& hp);

  bool fitted() const { return fitted_; }
  size_t num_points() const { return x_.rows(); }
  size_t input_dim() const { return x_.cols(); }
  const GpHyperparams& hyperparams() const { return hp_; }

  /// The diagonal jitter the fitted factorization actually applied (0
  /// unless the factorization had to regularize). `AppendFit` reuses
  /// exactly this value for appended diagonal entries — see the jitter
  /// contract on `math::Cholesky::AppendRow`.
  double applied_jitter() const { return chol_ ? chol_->jitter() : 0.0; }

  /// The lower-triangular factor of the fitted (jittered) kernel matrix.
  /// Exposed for the numerical-contract tests.
  const math::Matrix& factor() const { return chol_->L(); }

 private:
  /// Derives the cached kernel weights from hp_ and flips fitted_.
  void FinishFit();

  bool fitted_ = false;
  math::Matrix x_;
  math::Vector y_raw_;  // original-unit targets; AppendFit restandardizes
  GpHyperparams hp_;
  // exp(-2 * log_lengthscale_d) per dimension and exp(log_signal_variance),
  // derived once at Fit so predictions never re-exponentiate.
  math::Vector inv_sq_lengthscales_;
  double signal_variance_ = 1.0;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  std::optional<math::Cholesky> chol_;
  math::Vector alpha_;  // (K + noise I)^-1 y_standardized
  double log_marginal_likelihood_ = 0.0;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_GP_H_
