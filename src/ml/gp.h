#ifndef LOCAT_ML_GP_H_
#define LOCAT_ML_GP_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/status.h"
#include "math/cholesky.h"
#include "math/matrix.h"

namespace locat::ml {

/// Log-parameterized hyperparameters of an ARD squared-exponential GP:
/// per-dimension lengthscales, signal variance, and observation-noise
/// variance. Log parameterization keeps all values positive and makes
/// slice sampling unconstrained.
struct GpHyperparams {
  math::Vector log_lengthscales;
  double log_signal_variance = 0.0;
  double log_noise_variance = -4.0;

  /// Sensible defaults for inputs normalized to [0,1]: lengthscale 0.3,
  /// signal variance 1, noise variance exp(-4) ~ 0.018.
  static GpHyperparams Default(size_t input_dim);

  /// Flattens to a vector (lengthscales..., signal, noise) for samplers.
  math::Vector Flatten() const;
  /// Inverse of Flatten(); `flat.size()` must be `input_dim + 2`.
  static GpHyperparams Unflatten(const math::Vector& flat);
};

/// Gaussian-process regression with an ARD squared-exponential kernel.
///
/// This is the surrogate model underlying DAGP (the datasize-aware GP): the
/// input vector is the normalized configuration concatenated with the
/// normalized input data size, so the GP models t = f(conf, ds) exactly as
/// in equation (7) of the paper.
///
/// Targets are standardized internally (zero mean, unit variance); all
/// public predictions are in the original units.
class GaussianProcess {
 public:
  GaussianProcess() = default;

  /// Fits the GP to (x, y) with fixed hyperparameters. `x` is n x d, `y`
  /// has n entries, n >= 1. Factors the kernel matrix once (O(n^3)).
  Status Fit(const math::Matrix& x, const math::Vector& y,
             const GpHyperparams& hp);

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;
  };

  /// Posterior predictive mean/variance at a point (equation (10)).
  /// Must be called after a successful Fit.
  Prediction Predict(const math::Vector& x) const;

  /// Log marginal likelihood of the fitted data under the fitted
  /// hyperparameters (up to the usual constant).
  double LogMarginalLikelihood() const { return log_marginal_likelihood_; }

  /// Computes the log marginal likelihood for candidate hyperparameters
  /// without retaining the fit; used by the MCMC sampler. Returns -inf
  /// (lowest double) when the kernel matrix cannot be factored.
  static double ComputeLogMarginalLikelihood(const math::Matrix& x,
                                             const math::Vector& y,
                                             const GpHyperparams& hp);

  bool fitted() const { return fitted_; }
  size_t num_points() const { return x_.rows(); }
  size_t input_dim() const { return x_.cols(); }
  const GpHyperparams& hyperparams() const { return hp_; }

 private:
  double KernelValue(const math::Vector& a, const math::Vector& b) const;

  bool fitted_ = false;
  math::Matrix x_;
  GpHyperparams hp_;
  double y_mean_ = 0.0;
  double y_std_ = 1.0;
  std::optional<math::Cholesky> chol_;
  math::Vector alpha_;  // (K + noise I)^-1 y_standardized
  double log_marginal_likelihood_ = 0.0;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_GP_H_
