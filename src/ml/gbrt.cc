#include "ml/gbrt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "math/stats.h"

namespace locat::ml {
namespace {

// Sum and sum-of-squares accumulator for O(n log n) split search.
struct Moments {
  double sum = 0.0;
  double sum_sq = 0.0;
  size_t count = 0;

  void Add(double v) {
    sum += v;
    sum_sq += v * v;
    ++count;
  }
  void Remove(double v) {
    sum -= v;
    sum_sq -= v * v;
    --count;
  }
  // Sum of squared deviations from the mean (= count * variance).
  double Sse() const {
    if (count == 0) return 0.0;
    return sum_sq - sum * sum / static_cast<double>(count);
  }
};

}  // namespace

Status RegressionTree::Fit(const math::Matrix& x, const math::Vector& y,
                           const Options& options,
                           const std::vector<size_t>& row_indices) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument("tree fit requires matching non-empty x, y");
  }
  nodes_.clear();
  feature_gains_.assign(x.cols(), 0.0);

  std::vector<size_t> rows = row_indices;
  if (rows.empty()) {
    rows.resize(x.rows());
    std::iota(rows.begin(), rows.end(), size_t{0});
  }
  BuildNode(x, y, rows, 0, rows.size(), 0, options);
  return Status::OK();
}

int RegressionTree::BuildNode(const math::Matrix& x, const math::Vector& y,
                              std::vector<size_t>& rows, size_t begin,
                              size_t end, int depth, const Options& options) {
  const int node_index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();

  Moments all;
  for (size_t i = begin; i < end; ++i) all.Add(y[rows[i]]);
  const double leaf_value = all.sum / static_cast<double>(all.count);
  nodes_[node_index].value = leaf_value;

  const size_t n = end - begin;
  if (depth >= options.max_depth ||
      n < static_cast<size_t>(2 * options.min_samples_leaf) ||
      all.Sse() <= 1e-12) {
    return node_index;  // Leaf.
  }

  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gain = 1e-12;
  size_t best_left_count = 0;

  std::vector<size_t> sorted(rows.begin() + static_cast<long>(begin),
                             rows.begin() + static_cast<long>(end));
  for (size_t f = 0; f < x.cols(); ++f) {
    std::sort(sorted.begin(), sorted.end(), [&](size_t a, size_t b) {
      return x(a, f) < x(b, f);
    });
    Moments left;
    Moments right = all;
    for (size_t i = 0; i + 1 < n; ++i) {
      const double v = y[sorted[i]];
      left.Add(v);
      right.Remove(v);
      // Only split between distinct feature values.
      if (x(sorted[i], f) == x(sorted[i + 1], f)) continue;
      if (left.count < static_cast<size_t>(options.min_samples_leaf) ||
          right.count < static_cast<size_t>(options.min_samples_leaf)) {
        continue;
      }
      const double gain = all.Sse() - left.Sse() - right.Sse();
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<int>(f);
        best_threshold = 0.5 * (x(sorted[i], f) + x(sorted[i + 1], f));
        best_left_count = left.count;
      }
    }
  }

  if (best_feature < 0) return node_index;  // No useful split found.
  feature_gains_[static_cast<size_t>(best_feature)] += best_gain;

  // Partition rows[begin..end) by the chosen split.
  auto mid_it = std::partition(
      rows.begin() + static_cast<long>(begin),
      rows.begin() + static_cast<long>(end), [&](size_t r) {
        return x(r, static_cast<size_t>(best_feature)) <= best_threshold;
      });
  size_t mid = static_cast<size_t>(mid_it - rows.begin());
  // Guard against degenerate partitions from duplicate values.
  if (mid == begin || mid == end) mid = begin + best_left_count;

  nodes_[node_index].feature = best_feature;
  nodes_[node_index].threshold = best_threshold;
  const int left_child =
      BuildNode(x, y, rows, begin, mid, depth + 1, options);
  const int right_child = BuildNode(x, y, rows, mid, end, depth + 1, options);
  nodes_[node_index].left = left_child;
  nodes_[node_index].right = right_child;
  return node_index;
}

double RegressionTree::Predict(const math::Vector& x) const {
  assert(!nodes_.empty());
  int i = 0;
  while (nodes_[static_cast<size_t>(i)].feature >= 0) {
    const Node& node = nodes_[static_cast<size_t>(i)];
    i = x[static_cast<size_t>(node.feature)] <= node.threshold ? node.left
                                                               : node.right;
  }
  return nodes_[static_cast<size_t>(i)].value;
}

Status Gbrt::Fit(const math::Matrix& x, const math::Vector& y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument("GBRT fit requires matching non-empty x, y");
  }
  num_features_ = x.cols();
  base_prediction_ = math::Mean(y.data());
  trees_.clear();

  math::Vector residual(y.size());
  for (size_t i = 0; i < y.size(); ++i) residual[i] = y[i] - base_prediction_;

  for (int t = 0; t < options_.num_trees; ++t) {
    RegressionTree tree;
    LOCAT_RETURN_IF_ERROR(tree.Fit(x, residual, options_.tree));
    for (size_t i = 0; i < y.size(); ++i) {
      residual[i] -= options_.learning_rate * tree.Predict(x.Row(i));
    }
    trees_.push_back(std::move(tree));
  }
  return Status::OK();
}

double Gbrt::Predict(const math::Vector& x) const {
  double pred = base_prediction_;
  for (const auto& tree : trees_) {
    pred += options_.learning_rate * tree.Predict(x);
  }
  return pred;
}

std::vector<double> Gbrt::FeatureImportances() const {
  std::vector<double> gains(num_features_, 0.0);
  for (const auto& tree : trees_) {
    for (size_t f = 0; f < num_features_; ++f) {
      gains[f] += tree.feature_gains()[f];
    }
  }
  const double total = std::accumulate(gains.begin(), gains.end(), 0.0);
  if (total > 0.0) {
    for (double& g : gains) g /= total;
  }
  return gains;
}

}  // namespace locat::ml
