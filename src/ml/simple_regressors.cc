#include "ml/simple_regressors.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "math/cholesky.h"
#include "math/kern/kern.h"
#include "math/stats.h"

namespace locat::ml {

Status LinearRegression::Fit(const math::Matrix& x, const math::Vector& y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument("linear fit requires matching x, y");
  }
  const size_t n = x.rows();
  const size_t d = x.cols();
  // Augment with an intercept column and solve the normal equations.
  math::Matrix xa(n, d + 1);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) xa(r, c) = x(r, c);
    xa(r, d) = 1.0;
  }
  math::Matrix xtx = xa.Transpose() * xa;
  xtx.AddToDiagonal(ridge_);
  math::Vector xty = xa.Transpose() * y;
  auto chol = math::Cholesky::FactorWithJitter(xtx);
  if (!chol.ok()) return chol.status();
  math::Vector w = chol->Solve(xty);
  weights_ = math::Vector(d);
  for (size_t c = 0; c < d; ++c) weights_[c] = w[c];
  intercept_ = w[d];
  return Status::OK();
}

double LinearRegression::Predict(const math::Vector& x) const {
  return weights_.Dot(x) + intercept_;
}

Status LogisticRegression::Fit(const math::Matrix& x, const math::Vector& y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument("logistic fit requires matching x, y");
  }
  const size_t n = x.rows();
  const size_t d = x.cols();
  y_min_ = math::Min(y.data());
  y_max_ = math::Max(y.data());
  if (y_max_ - y_min_ < 1e-12) y_max_ = y_min_ + 1.0;

  // Scaled targets strictly inside (0,1) so the sigmoid can reach them.
  std::vector<double> t(n);
  for (size_t i = 0; i < n; ++i) {
    t[i] = 0.05 + 0.9 * (y[i] - y_min_) / (y_max_ - y_min_);
  }

  weights_ = math::Vector(d, 0.0);
  intercept_ = 0.0;
  const double lr = options_.learning_rate;
  for (int it = 0; it < options_.iterations; ++it) {
    math::Vector grad_w(d, 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const math::Vector xi = x.Row(i);
      const double z = weights_.Dot(xi) + intercept_;
      const double p = 1.0 / (1.0 + std::exp(-z));
      const double err = (p - t[i]) * p * (1.0 - p);  // d(MSE)/dz
      for (size_t c = 0; c < d; ++c) grad_w[c] += err * xi[c];
      grad_b += err;
    }
    const double scale = lr / static_cast<double>(n);
    for (size_t c = 0; c < d; ++c) weights_[c] -= scale * grad_w[c];
    intercept_ -= scale * grad_b;
  }
  return Status::OK();
}

double LogisticRegression::Predict(const math::Vector& x) const {
  const double z = weights_.Dot(x) + intercept_;
  const double p = 1.0 / (1.0 + std::exp(-z));
  return y_min_ + (p - 0.05) / 0.9 * (y_max_ - y_min_);
}

Status KnnRegressor::Fit(const math::Matrix& x, const math::Vector& y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument("knn fit requires matching x, y");
  }
  x_ = x;
  y_ = y;
  return Status::OK();
}

double KnnRegressor::Predict(const math::Vector& x) const {
  assert(x_.rows() > 0);
  const size_t n = x_.rows();
  const size_t k = std::min<size_t>(static_cast<size_t>(k_), n);

  std::vector<std::pair<double, size_t>> dist(n);
  for (size_t i = 0; i < n; ++i) {
    dist[i] = {(x_.Row(i) - x).Norm(), i};
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<long>(k),
                    dist.end());

  double wsum = 0.0;
  double vsum = 0.0;
  for (size_t i = 0; i < k; ++i) {
    const double w = 1.0 / (dist[i].first + 1e-9);
    wsum += w;
    vsum += w * y_[dist[i].second];
  }
  return vsum / wsum;
}

Status SvrRegressor::Fit(const math::Matrix& x, const math::Vector& y) {
  if (x.rows() == 0 || x.rows() != y.size()) {
    return Status::InvalidArgument("svr fit requires matching x, y");
  }
  x_ = x;
  const size_t n = x.rows();
  y_mean_ = math::Mean(y.data());
  y_std_ = math::StdDev(y.data());
  if (y_std_ < 1e-12) y_std_ = 1.0;
  math::Vector t(n);
  for (size_t i = 0; i < n; ++i) t[i] = (y[i] - y_mean_) / y_std_;

  kernel_ = std::make_unique<GaussianKernel>(options_.kernel_bandwidth);
  const math::Matrix k = kernel_->GramMatrix(x);

  beta_ = math::Vector(n, 0.0);
  bias_ = 0.0;
  for (int it = 0; it < options_.iterations; ++it) {
    // f = K beta + b.
    math::Vector f = k * beta_;
    math::Vector grad(n, 0.0);
    double grad_b = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double r = f[i] + bias_ - t[i];
      double sg = 0.0;  // subgradient of epsilon-insensitive loss
      if (r > options_.epsilon) {
        sg = 1.0;
      } else if (r < -options_.epsilon) {
        sg = -1.0;
      }
      if (sg != 0.0) {
        // d loss/d beta = sg * K(:, i); accumulate column i.
        for (size_t j = 0; j < n; ++j) grad[j] += sg * k(j, i);
        grad_b += sg;
      }
    }
    // Regularization gradient: 2 lambda K beta (use f as K beta).
    for (size_t j = 0; j < n; ++j) {
      grad[j] = grad[j] / static_cast<double>(n) +
                2.0 * options_.regularization * f[j];
    }
    for (size_t j = 0; j < n; ++j) beta_[j] -= options_.learning_rate * grad[j];
    bias_ -= options_.learning_rate * grad_b / static_cast<double>(n);
  }
  return Status::OK();
}

double SvrRegressor::Predict(const math::Vector& x) const {
  assert(kernel_ != nullptr);
  const size_t n = x_.rows();
  std::vector<double> kx(n);
  kernel_->EvaluateAgainstRows(x.data().data(), x_.cols(), x_.RowData(0), n,
                               x_.cols(), kx.data());
  return y_mean_ +
         y_std_ * (bias_ + math::kern::Dot(beta_.data().data(), kx.data(), n));
}

}  // namespace locat::ml
