#include "ml/spearman.h"

#include <cassert>
#include <cmath>

#include "math/stats.h"

namespace locat::ml {

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mx = math::Mean(xs);
  const double my = math::Mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  return PearsonCorrelation(math::RankWithTies(xs), math::RankWithTies(ys));
}

}  // namespace locat::ml
