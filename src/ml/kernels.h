#ifndef LOCAT_ML_KERNELS_H_
#define LOCAT_ML_KERNELS_H_

#include <memory>
#include <string>

#include "math/matrix.h"

namespace locat::ml {

/// Abstract covariance/kernel function k(x, x') over real vectors.
/// Used both by the Gaussian process surrogate (DAGP) and by KPCA (CPE).
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Evaluates k(a, b); vectors must have equal dimension.
  virtual double Evaluate(const math::Vector& a,
                          const math::Vector& b) const = 0;

  /// Human-readable name ("gaussian", "polynomial", ...).
  virtual std::string name() const = 0;

  /// Builds the Gram matrix K with K(i,j) = k(X.Row(i), X.Row(j)).
  math::Matrix GramMatrix(const math::Matrix& x) const;

  /// Builds the cross Gram matrix K with K(i,j) = k(A.Row(i), B.Row(j)).
  math::Matrix CrossGramMatrix(const math::Matrix& a,
                               const math::Matrix& b) const;
};

/// Gaussian (RBF) kernel: k(a,b) = exp(-||a-b||^2 / (2 gamma^2)).
/// The kernel the paper selects for KPCA (Figure 6).
class GaussianKernel : public Kernel {
 public:
  explicit GaussianKernel(double bandwidth) : bandwidth_(bandwidth) {}
  double Evaluate(const math::Vector& a, const math::Vector& b) const override;
  std::string name() const override { return "gaussian"; }
  double bandwidth() const { return bandwidth_; }

 private:
  double bandwidth_;
};

/// Polynomial kernel: k(a,b) = (a.b + coef0)^degree.
class PolynomialKernel : public Kernel {
 public:
  PolynomialKernel(int degree, double coef0)
      : degree_(degree), coef0_(coef0) {}
  double Evaluate(const math::Vector& a, const math::Vector& b) const override;
  std::string name() const override { return "polynomial"; }

 private:
  int degree_;
  double coef0_;
};

/// Perceptron (arc-cosine degree-0) kernel:
/// k(a,b) = 1 - theta/pi with theta the angle between a and b. The
/// "perceptron kernel" evaluated in the paper's Figure 6 kernel study.
class PerceptronKernel : public Kernel {
 public:
  double Evaluate(const math::Vector& a, const math::Vector& b) const override;
  std::string name() const override { return "perceptron"; }
};

/// Squared-exponential kernel with Automatic Relevance Determination:
/// k(a,b) = s2 * exp(-0.5 * sum_d ((a_d-b_d)/l_d)^2).
/// The DAGP surrogate covariance; per-dimension lengthscales let the GP
/// learn that the data-size input matters differently from each parameter.
class ArdSquaredExponentialKernel : public Kernel {
 public:
  ArdSquaredExponentialKernel(math::Vector lengthscales, double signal_variance)
      : lengthscales_(std::move(lengthscales)),
        signal_variance_(signal_variance) {}
  double Evaluate(const math::Vector& a, const math::Vector& b) const override;
  std::string name() const override { return "ard_sqexp"; }

  const math::Vector& lengthscales() const { return lengthscales_; }
  double signal_variance() const { return signal_variance_; }

 private:
  math::Vector lengthscales_;
  double signal_variance_;
};

/// Matérn 5/2 kernel with ARD lengthscales; a standard BO surrogate choice
/// offered as an alternative to the squared exponential.
class ArdMatern52Kernel : public Kernel {
 public:
  ArdMatern52Kernel(math::Vector lengthscales, double signal_variance)
      : lengthscales_(std::move(lengthscales)),
        signal_variance_(signal_variance) {}
  double Evaluate(const math::Vector& a, const math::Vector& b) const override;
  std::string name() const override { return "ard_matern52"; }

 private:
  math::Vector lengthscales_;
  double signal_variance_;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_KERNELS_H_
