#ifndef LOCAT_ML_KERNELS_H_
#define LOCAT_ML_KERNELS_H_

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "math/matrix.h"

namespace locat::ml {

/// Abstract covariance/kernel function k(x, x') over real vectors.
/// Used both by the Gaussian process surrogate (DAGP) and by KPCA (CPE).
///
/// Implementations work on contiguous double spans (EvaluateData), not
/// math::Vector, so Gram construction streams Matrix::RowData views with
/// zero per-pair allocations. The batched EvaluateAgainstRows hook lets
/// distance-based kernels amortize over whole row blocks via the SIMD
/// kernels in math/kern.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Evaluates k(a, b) on contiguous spans of equal dimension `n`.
  virtual double EvaluateData(const double* a, const double* b,
                              size_t n) const = 0;

  /// Evaluates k(q, rows_r) for r = 0..nrows-1, where row r starts at
  /// `rows + r * stride` and has `dim` entries. Default: a loop over
  /// EvaluateData; distance-based kernels override with batched
  /// squared-distance + vectorized exp.
  virtual void EvaluateAgainstRows(const double* q, size_t dim,
                                   const double* rows, size_t nrows,
                                   size_t stride, double* out) const;

  /// Convenience wrapper; vectors must have equal dimension.
  double Evaluate(const math::Vector& a, const math::Vector& b) const {
    assert(a.size() == b.size());
    return EvaluateData(a.data().data(), b.data().data(), a.size());
  }

  /// Human-readable name ("gaussian", "polynomial", ...).
  virtual std::string name() const = 0;

  /// Builds the Gram matrix K with K(i,j) = k(X.Row(i), X.Row(j)).
  /// Computes the lower triangle row-batched and mirrors it.
  math::Matrix GramMatrix(const math::Matrix& x) const;

  /// Builds the cross Gram matrix K with K(i,j) = k(A.Row(i), B.Row(j)).
  math::Matrix CrossGramMatrix(const math::Matrix& a,
                               const math::Matrix& b) const;
};

/// Gaussian (RBF) kernel: k(a,b) = exp(-||a-b||^2 / (2 gamma^2)).
/// The kernel the paper selects for KPCA (Figure 6).
class GaussianKernel : public Kernel {
 public:
  explicit GaussianKernel(double bandwidth)
      : bandwidth_(bandwidth), pre_(-1.0 / (2.0 * bandwidth * bandwidth)) {}
  double EvaluateData(const double* a, const double* b,
                      size_t n) const override;
  void EvaluateAgainstRows(const double* q, size_t dim, const double* rows,
                           size_t nrows, size_t stride,
                           double* out) const override;
  std::string name() const override { return "gaussian"; }
  double bandwidth() const { return bandwidth_; }

 private:
  double bandwidth_;
  double pre_;  // exponent scale, precomputed once
};

/// Polynomial kernel: k(a,b) = (a.b + coef0)^degree.
class PolynomialKernel : public Kernel {
 public:
  PolynomialKernel(int degree, double coef0)
      : degree_(degree), coef0_(coef0) {}
  double EvaluateData(const double* a, const double* b,
                      size_t n) const override;
  std::string name() const override { return "polynomial"; }

 private:
  int degree_;
  double coef0_;
};

/// Perceptron (arc-cosine degree-0) kernel:
/// k(a,b) = 1 - theta/pi with theta the angle between a and b. The
/// "perceptron kernel" evaluated in the paper's Figure 6 kernel study.
class PerceptronKernel : public Kernel {
 public:
  double EvaluateData(const double* a, const double* b,
                      size_t n) const override;
  std::string name() const override { return "perceptron"; }
};

/// Squared-exponential kernel with Automatic Relevance Determination:
/// k(a,b) = s2 * exp(-0.5 * sum_d w_d (a_d-b_d)^2) with w_d = 1/l_d^2
/// precomputed once. The DAGP surrogate covariance; per-dimension
/// lengthscales let the GP learn that the data-size input matters
/// differently from each parameter.
class ArdSquaredExponentialKernel : public Kernel {
 public:
  ArdSquaredExponentialKernel(math::Vector lengthscales, double signal_variance);
  double EvaluateData(const double* a, const double* b,
                      size_t n) const override;
  void EvaluateAgainstRows(const double* q, size_t dim, const double* rows,
                           size_t nrows, size_t stride,
                           double* out) const override;
  std::string name() const override { return "ard_sqexp"; }

  const math::Vector& lengthscales() const { return lengthscales_; }
  double signal_variance() const { return signal_variance_; }

 private:
  math::Vector lengthscales_;
  std::vector<double> inv_sq_lengthscales_;
  double signal_variance_;
};

/// Matérn 5/2 kernel with ARD lengthscales; a standard BO surrogate choice
/// offered as an alternative to the squared exponential.
class ArdMatern52Kernel : public Kernel {
 public:
  ArdMatern52Kernel(math::Vector lengthscales, double signal_variance);
  double EvaluateData(const double* a, const double* b,
                      size_t n) const override;
  std::string name() const override { return "ard_matern52"; }

 private:
  math::Vector lengthscales_;
  std::vector<double> inv_sq_lengthscales_;
  double signal_variance_;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_KERNELS_H_
