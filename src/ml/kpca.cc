#include "ml/kpca.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "math/eigen.h"
#include "math/kern/kern.h"

namespace locat::ml {

Status Kpca::Fit(const math::Matrix& x, const Kernel* kernel,
                 const Options& options) {
  if (kernel == nullptr) {
    return Status::InvalidArgument("KPCA requires a kernel");
  }
  if (x.rows() < 2) {
    return Status::InvalidArgument("KPCA requires at least 2 samples");
  }
  x_ = x;
  kernel_ = kernel;
  const size_t n = x.rows();

  math::Matrix k = kernel->GramMatrix(x);

  // Center in feature space: Kc = K - 1n K - K 1n + 1n K 1n.
  row_means_ = math::Vector(n);
  grand_mean_ = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double s = math::kern::Sum(k.RowData(i), n);
    row_means_[i] = s / static_cast<double>(n);
    grand_mean_ += s;
  }
  grand_mean_ /= static_cast<double>(n * n);

  // Row i of the centered matrix is (k_i - row_means) - (row_means_i - gm),
  // one fused subtract-shift pass per row.
  math::Matrix kc(n, n);
  const double* rm = row_means_.data().data();
  for (size_t i = 0; i < n; ++i) {
    math::kern::SubtractShift(k.RowData(i), rm, row_means_[i] - grand_mean_,
                              kc.RowData(i), n);
  }

  auto eig = math::JacobiEigenSymmetric(kc);
  if (!eig.ok()) return eig.status();
  eigenvalues_ = eig->eigenvalues;

  // Total positive spectrum mass.
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) total += std::max(0.0, eigenvalues_[i]);
  if (total <= 0.0) {
    return Status::FailedPrecondition("degenerate kernel matrix (zero spectrum)");
  }
  const double floor = options.eigenvalue_floor * std::max(eigenvalues_[0], 0.0);

  int m = 0;
  double covered = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (eigenvalues_[i] <= floor) break;
    covered += eigenvalues_[i];
    ++m;
    if (covered / total >= options.variance_to_retain) break;
    if (options.max_components > 0 && m >= options.max_components) break;
  }
  if (m == 0) m = 1;
  num_components_ = m;
  explained_variance_ = covered / total;

  // Normalize eigenvectors so projections are alpha^T k with
  // ||alpha_m||^2 = 1/lambda_m.
  alphas_ = math::Matrix(n, static_cast<size_t>(m));
  for (int c = 0; c < m; ++c) {
    const double lambda = eigenvalues_[static_cast<size_t>(c)];
    const double scale = 1.0 / std::sqrt(lambda);
    for (size_t r = 0; r < n; ++r) {
      alphas_(r, static_cast<size_t>(c)) =
          eig->eigenvectors(r, static_cast<size_t>(c)) * scale;
    }
  }
  fitted_ = true;
  return Status::OK();
}

math::Vector Kpca::CenteredKernelColumn(const math::Vector& x) const {
  const size_t n = x_.rows();
  assert(x.size() == x_.cols());
  math::Vector kx(n);
  double* kd = kx.data().data();
  kernel_->EvaluateAgainstRows(x.data().data(), x_.cols(), x_.RowData(0), n,
                               x_.cols(), kd);
  const double kx_mean = math::kern::Sum(kd, n) / static_cast<double>(n);
  // kx_i - kx_mean - row_means_i + gm, fused (in place: a == out is safe).
  math::kern::SubtractShift(kd, row_means_.data().data(),
                            kx_mean - grand_mean_, kd, n);
  return kx;
}

math::Vector Kpca::Project(const math::Vector& x) const {
  assert(fitted_);
  const math::Vector kx = CenteredKernelColumn(x);
  // z = alphas^T kx, accumulated row-wise so each pass is contiguous in
  // the row-major alphas (the strided column walk thrashed the cache).
  math::Vector z(static_cast<size_t>(num_components_));
  double* zd = z.data().data();
  const size_t m = static_cast<size_t>(num_components_);
  for (size_t i = 0; i < x_.rows(); ++i) {
    math::kern::Axpy(kx[i], alphas_.RowData(i), zd, m);
  }
  return z;
}

math::Matrix Kpca::ProjectAll(const math::Matrix& x) const {
  math::Matrix out(x.rows(), static_cast<size_t>(num_components_));
  for (size_t r = 0; r < x.rows(); ++r) {
    out.SetRow(r, Project(x.Row(r)));
  }
  return out;
}

StatusOr<math::Vector> Kpca::GaussianPreimage(const math::Vector& z,
                                              int max_iterations,
                                              double tolerance) const {
  assert(fitted_);
  const auto* gaussian = dynamic_cast<const GaussianKernel*>(kernel_);
  if (gaussian == nullptr) {
    return Status::FailedPrecondition(
        "pre-image iteration requires a Gaussian kernel");
  }
  const size_t n = x_.rows();
  const size_t d = x_.cols();

  // Feature-space reconstruction: psi = sum_m z_m v_m + phi_bar
  //                                  = sum_i gamma_i phi(x_i)
  // with gamma_i = sum_m z_m alpha_im + (1/n)(1 - sum_j sum_m z_m alpha_jm).
  math::Vector gamma(n);
  double proj_sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double g = 0.0;
    for (int m = 0; m < num_components_; ++m) {
      g += z[static_cast<size_t>(m)] * alphas_(i, static_cast<size_t>(m));
    }
    gamma[i] = g;
    proj_sum += g;
  }
  const double centering = (1.0 - proj_sum) / static_cast<double>(n);
  for (size_t i = 0; i < n; ++i) gamma[i] += centering;

  // Initialize at the gamma-weighted mean of the training points.
  math::Vector current(d);
  double gsum = 0.0;
  for (size_t i = 0; i < n; ++i) gsum += gamma[i];
  if (std::fabs(gsum) < 1e-300) gsum = 1.0;
  for (size_t i = 0; i < n; ++i) {
    math::kern::Axpy(gamma[i] / gsum, x_.RowData(i), current.data().data(), d);
  }

  // Mika fixed-point iteration. Each step batches the kernel row
  // evaluations and accumulates the weighted mean with axpy passes over
  // contiguous training rows.
  std::vector<double> kvals(n);
  for (int it = 0; it < max_iterations; ++it) {
    gaussian->EvaluateAgainstRows(current.data().data(), d, x_.RowData(0), n,
                                  d, kvals.data());
    math::Vector next(d);
    double denom = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double w = gamma[i] * kvals[i];
      denom += w;
      math::kern::Axpy(w, x_.RowData(i), next.data().data(), d);
    }
    if (std::fabs(denom) < 1e-12) {
      // Reconstruction collapsed; return the current best iterate.
      return current;
    }
    math::kern::Scale(1.0 / denom, next.data().data(), d);
    const double delta = (next - current).Norm();
    current = next;
    if (delta < tolerance) break;
  }
  return current;
}

}  // namespace locat::ml
