#ifndef LOCAT_ML_SPARSE_GP_H_
#define LOCAT_ML_SPARSE_GP_H_

#include <cstddef>
#include <vector>

#include "math/matrix.h"

namespace locat::ml {

/// Greedy max-min (farthest-point) inducing-set selection: starting from
/// `seed_index`, repeatedly adds the point with the largest squared
/// Euclidean distance to its nearest already-selected point, until `m`
/// points are chosen. This is the standard k-center greedy — a 2-approx
/// of the optimal covering radius — so the subset spreads over the whole
/// design space instead of clustering where the tuner happened to sample.
///
/// Deterministic: ties pick the lowest index (strict > comparison over a
/// fixed ascending scan), distances come from the kern:: reduction
/// kernels (bit-identical across SIMD backends), and the result is sorted
/// ascending so downstream kernel builds are order-independent of the
/// selection history. m >= n returns all indices. O(n m d) total.
std::vector<size_t> GreedyMaxMinSubset(const math::Matrix& x, size_t m,
                                       size_t seed_index);

}  // namespace locat::ml

#endif  // LOCAT_ML_SPARSE_GP_H_
