#ifndef LOCAT_ML_SPEARMAN_H_
#define LOCAT_ML_SPEARMAN_H_

#include <vector>

namespace locat::ml {

/// Spearman rank correlation coefficient between two equal-length series.
///
/// Implemented as the Pearson correlation of tie-adjusted ranks, which is
/// the correct general form when ties are present (configuration parameters
/// here are discrete, so ties are common). Returns 0 when either series is
/// constant or shorter than 2.
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

/// Pearson correlation coefficient; returns 0 for degenerate input.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

}  // namespace locat::ml

#endif  // LOCAT_ML_SPEARMAN_H_
