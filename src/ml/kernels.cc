#include "ml/kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace locat::ml {

math::Matrix Kernel::GramMatrix(const math::Matrix& x) const {
  const size_t n = x.rows();
  math::Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    const math::Vector xi = x.Row(i);
    for (size_t j = i; j < n; ++j) {
      const double v = Evaluate(xi, x.Row(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

math::Matrix Kernel::CrossGramMatrix(const math::Matrix& a,
                                     const math::Matrix& b) const {
  math::Matrix k(a.rows(), b.rows());
  for (size_t i = 0; i < a.rows(); ++i) {
    const math::Vector ai = a.Row(i);
    for (size_t j = 0; j < b.rows(); ++j) {
      k(i, j) = Evaluate(ai, b.Row(j));
    }
  }
  return k;
}

double GaussianKernel::Evaluate(const math::Vector& a,
                                const math::Vector& b) const {
  assert(a.size() == b.size());
  double d2 = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return std::exp(-d2 / (2.0 * bandwidth_ * bandwidth_));
}

double PolynomialKernel::Evaluate(const math::Vector& a,
                                  const math::Vector& b) const {
  return std::pow(a.Dot(b) + coef0_, degree_);
}

double PerceptronKernel::Evaluate(const math::Vector& a,
                                  const math::Vector& b) const {
  const double na = a.Norm();
  const double nb = b.Norm();
  if (na == 0.0 || nb == 0.0) return na == nb ? 1.0 : 0.0;
  const double cosang = std::clamp(a.Dot(b) / (na * nb), -1.0, 1.0);
  return 1.0 - std::acos(cosang) / M_PI;
}

double ArdSquaredExponentialKernel::Evaluate(const math::Vector& a,
                                             const math::Vector& b) const {
  assert(a.size() == b.size() && a.size() == lengthscales_.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = (a[i] - b[i]) / lengthscales_[i];
    s += d * d;
  }
  return signal_variance_ * std::exp(-0.5 * s);
}

double ArdMatern52Kernel::Evaluate(const math::Vector& a,
                                   const math::Vector& b) const {
  assert(a.size() == b.size() && a.size() == lengthscales_.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = (a[i] - b[i]) / lengthscales_[i];
    s += d * d;
  }
  const double r = std::sqrt(5.0 * s);
  return signal_variance_ * (1.0 + r + 5.0 * s / 3.0) * std::exp(-r);
}

}  // namespace locat::ml
