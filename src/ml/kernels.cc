#include "ml/kernels.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "math/kern/kern.h"

namespace locat::ml {

void Kernel::EvaluateAgainstRows(const double* q, size_t dim,
                                 const double* rows, size_t nrows,
                                 size_t stride, double* out) const {
  for (size_t r = 0; r < nrows; ++r) {
    out[r] = EvaluateData(q, rows + r * stride, dim);
  }
}

math::Matrix Kernel::GramMatrix(const math::Matrix& x) const {
  const size_t n = x.rows();
  math::Matrix k(n, n);
  if (n == 0) return k;
  // Lower triangle row-batched (row i against rows 0..i), then mirrored:
  // half the kernel evaluations, no per-pair Vector allocations.
  for (size_t i = 0; i < n; ++i) {
    EvaluateAgainstRows(x.RowData(i), x.cols(), x.RowData(0), i + 1, x.cols(),
                        k.RowData(i));
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) k(i, j) = k(j, i);
  }
  return k;
}

math::Matrix Kernel::CrossGramMatrix(const math::Matrix& a,
                                     const math::Matrix& b) const {
  math::Matrix k(a.rows(), b.rows());
  if (a.rows() == 0 || b.rows() == 0) return k;
  for (size_t i = 0; i < a.rows(); ++i) {
    EvaluateAgainstRows(a.RowData(i), a.cols(), b.RowData(0), b.rows(),
                        b.cols(), k.RowData(i));
  }
  return k;
}

double GaussianKernel::EvaluateData(const double* a, const double* b,
                                    size_t n) const {
  return math::kern::Exp(pre_ * math::kern::SquaredDistance(a, b, n));
}

void GaussianKernel::EvaluateAgainstRows(const double* q, size_t dim,
                                         const double* rows, size_t nrows,
                                         size_t stride, double* out) const {
  math::kern::SquaredDistanceRows(rows, nrows, dim, stride, q, out);
  math::kern::ExpScaled(out, nrows, pre_, 1.0);
}

double PolynomialKernel::EvaluateData(const double* a, const double* b,
                                      size_t n) const {
  return std::pow(math::kern::Dot(a, b, n) + coef0_, degree_);
}

double PerceptronKernel::EvaluateData(const double* a, const double* b,
                                      size_t n) const {
  const double na = std::sqrt(math::kern::Dot(a, a, n));
  const double nb = std::sqrt(math::kern::Dot(b, b, n));
  if (na == 0.0 || nb == 0.0) return na == nb ? 1.0 : 0.0;
  const double cosang =
      std::clamp(math::kern::Dot(a, b, n) / (na * nb), -1.0, 1.0);
  return 1.0 - std::acos(cosang) / M_PI;
}

namespace {

std::vector<double> InverseSquares(const math::Vector& lengthscales) {
  std::vector<double> w(lengthscales.size());
  for (size_t i = 0; i < w.size(); ++i) {
    w[i] = 1.0 / (lengthscales[i] * lengthscales[i]);
  }
  return w;
}

}  // namespace

ArdSquaredExponentialKernel::ArdSquaredExponentialKernel(
    math::Vector lengthscales, double signal_variance)
    : lengthscales_(std::move(lengthscales)),
      inv_sq_lengthscales_(InverseSquares(lengthscales_)),
      signal_variance_(signal_variance) {}

double ArdSquaredExponentialKernel::EvaluateData(const double* a,
                                                 const double* b,
                                                 size_t n) const {
  assert(n == lengthscales_.size());
  const double s = math::kern::WeightedSquaredDistance(
      a, b, inv_sq_lengthscales_.data(), n);
  return signal_variance_ * math::kern::Exp(-0.5 * s);
}

void ArdSquaredExponentialKernel::EvaluateAgainstRows(
    const double* q, size_t dim, const double* rows, size_t nrows,
    size_t stride, double* out) const {
  assert(dim == lengthscales_.size());
  math::kern::WeightedSquaredDistanceRows(rows, nrows, dim, stride, q,
                                          inv_sq_lengthscales_.data(), out);
  math::kern::ExpScaled(out, nrows, -0.5, signal_variance_);
}

ArdMatern52Kernel::ArdMatern52Kernel(math::Vector lengthscales,
                                     double signal_variance)
    : lengthscales_(std::move(lengthscales)),
      inv_sq_lengthscales_(InverseSquares(lengthscales_)),
      signal_variance_(signal_variance) {}

double ArdMatern52Kernel::EvaluateData(const double* a, const double* b,
                                       size_t n) const {
  assert(n == lengthscales_.size());
  const double s = math::kern::WeightedSquaredDistance(
      a, b, inv_sq_lengthscales_.data(), n);
  const double r = std::sqrt(5.0 * s);
  return signal_variance_ * (1.0 + r + 5.0 * s / 3.0) * math::kern::Exp(-r);
}

}  // namespace locat::ml
