#ifndef LOCAT_ML_EI_MCMC_H_
#define LOCAT_ML_EI_MCMC_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/gp.h"
#include "ml/slice_sampler.h"

namespace locat::ml {

/// Acquisition rules supported by the marginalized surrogate. LOCAT uses
/// EI (with MCMC marginalization); PI and GP-UCB are provided for the
/// Section 2.2 comparison (bench/ablation_acquisition).
enum class AcquisitionKind { kExpectedImprovement, kProbabilityOfImprovement, kUcb };

/// Expected Improvement with MCMC hyperparameter marginalization
/// (Snoek et al. 2012), the acquisition function LOCAT uses (Section 3.4).
///
/// Instead of point-optimizing the GP hyperparameters, `Fit` slice-samples
/// them from their posterior (log marginal likelihood + weak log-normal
/// priors) and keeps one fitted GP per sample. The acquisition value of a
/// candidate is the EI for minimization averaged over those GPs, which
/// integrates out hyperparameter uncertainty and removes the need for any
/// external hyperparameter tuning.
class EiMcmc {
 public:
  struct Options {
    /// Number of posterior hyperparameter samples (fitted GPs).
    int num_hyper_samples = 8;
    /// Slice-sampler burn-in sweeps before the first sample.
    int burn_in = 16;
    /// Sweeps between retained samples.
    int thin = 2;
    /// Prior means for log lengthscale / log signal var / log noise var.
    double lengthscale_log_mean = -1.2;  // ~0.30 for [0,1]-normalized inputs
    double signal_log_mean = 0.0;
    double noise_log_mean = -4.6;  // ~0.01
    /// Shared prior standard deviation in log space.
    double prior_log_std = 1.0;
    /// Which acquisition AcquisitionValue computes.
    AcquisitionKind acquisition = AcquisitionKind::kExpectedImprovement;
    /// Exploration weight for the UCB rule.
    double ucb_beta = 2.0;
    /// When true (the default), Fit evaluates the MCMC density through a
    /// GpKernelCache (pair distances precomputed once, factorization of
    /// each retained sample reused for its ensemble member) and fits
    /// ensemble members on the shared thread pool. When false, Fit runs
    /// the straightforward sequential path (full kernel rebuild per
    /// density evaluation, full refit per ensemble member) — kept as the
    /// benchmark baseline. Both paths draw the same random numbers and
    /// sample the same posterior.
    bool fast_path = true;

    Options() {}
  };

  /// Telemetry of the most recent Fit(): how much MCMC work the refit
  /// cost and how the slice sampler behaved. Collected unconditionally
  /// (a handful of integer increments and two clock reads against seconds
  /// of linear algebra) so observability wiring cannot perturb the fit.
  struct FitStats {
    int ensemble_size = 0;
    /// Host wall-clock seconds the whole Fit() call took.
    double wall_seconds = 0.0;
    /// True when every posterior sample failed to produce a usable GP and
    /// the default-hyperparameter fallback was used.
    bool used_fallback = false;
    SliceSampler::Stats sampler;
  };

  explicit EiMcmc(Options options = Options()) : options_(options) {}

  /// Fits the hyperparameter-marginalized model to (x, y). `x` is n x d
  /// with n >= 2. Deterministic given `rng`'s state.
  Status Fit(const math::Matrix& x, const math::Vector& y, Rng* rng);

  /// Extends a fitted model by one observation in O(n^2) per ensemble
  /// member (rank-1 bordered Cholesky append; hyperparameters stay frozen
  /// at the last Fit's posterior samples, no RNG consumed). Members whose
  /// factor cannot be extended even through the jitter fallback are
  /// dropped in order — deterministic for any thread count. When every
  /// member fails, the pre-append model is kept intact and an error is
  /// returned so the caller can fall back to a full refit.
  Status AppendObservation(const math::Vector& x, double y);

  /// Average Expected Improvement (for minimization) of a candidate over
  /// the posterior GP ensemble.
  double AcquisitionValue(const math::Vector& x) const;

  /// Acquisition values for all rows of `xs` at once. Each ensemble
  /// member runs one batched prediction (concurrently on the shared
  /// thread pool); the per-candidate average then accumulates members in
  /// fixed index order, so the result is bit-identical for any thread
  /// count.
  math::Vector AcquisitionValueBatch(const math::Matrix& xs) const;

  /// Ensemble-averaged predictive mean and (law-of-total-variance)
  /// variance.
  GaussianProcess::Prediction PredictAveraged(const math::Vector& x) const;

  /// Batched PredictAveraged for all rows of `xs`; same determinism
  /// contract as AcquisitionValueBatch.
  GaussianProcess::BatchPrediction PredictAveragedBatch(
      const math::Matrix& xs) const;

  /// Lowest observed target so far — the incumbent EI is computed against.
  double best_observed() const { return best_observed_; }

  /// Relative EI used by LOCAT's stop condition: EI / |best observed|
  /// (stop once this drops below 0.10 after >= 10 iterations).
  double RelativeEi(const math::Vector& x) const;

  bool fitted() const { return !ensemble_.empty(); }
  const std::vector<GaussianProcess>& ensemble() const { return ensemble_; }

  /// Stats of the most recent Fit() (zeroed before any fit).
  const FitStats& last_fit_stats() const { return last_fit_stats_; }

 private:
  double LogPrior(const GpHyperparams& hp) const;

  Options options_;
  std::vector<GaussianProcess> ensemble_;
  double best_observed_ = 0.0;
  FitStats last_fit_stats_;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_EI_MCMC_H_
