#ifndef LOCAT_ML_SLICE_SAMPLER_H_
#define LOCAT_ML_SLICE_SAMPLER_H_

#include <functional>

#include "common/rng.h"
#include "math/matrix.h"

namespace locat::ml {

/// Coordinate-wise slice sampler (Neal 2003) for drawing from an
/// unnormalized log density. Used to marginalize GP hyperparameters in the
/// EI-MCMC acquisition (Snoek, Larochelle & Adams 2012).
///
/// Slice sampling needs no step-size tuning beyond an initial bracket
/// width, which is exactly why EI-MCMC "avoids external tuning of GP's
/// hyperparameters" (Section 3.4 of the paper).
class SliceSampler {
 public:
  using LogDensity = std::function<double(const math::Vector&)>;

  struct Options {
    /// Initial bracket width per coordinate.
    double width = 1.0;
    /// Maximum number of stepping-out expansions per side.
    int max_step_out = 8;
    /// Maximum shrink iterations before giving up and keeping the current
    /// coordinate value (guards against pathological densities).
    int max_shrink = 64;
  };

  /// Work counters accumulated across a Sample() call — the telemetry the
  /// BO loop reports as "MCMC hyperparameter acceptance stats". Purely
  /// observational: collecting them draws no random numbers and changes
  /// no sampling decision.
  struct Stats {
    int64_t density_evals = 0;  // log-density evaluations
    int64_t step_outs = 0;      // bracket expansions
    int64_t accepted = 0;       // coordinate proposals accepted
    int64_t shrinks = 0;        // coordinate proposals rejected (shrunk)
    int64_t stuck = 0;          // coordinates kept after max_shrink

    /// Fraction of shrink-loop proposals that landed inside the slice.
    double acceptance_rate() const {
      const int64_t proposals = accepted + shrinks + stuck;
      return proposals > 0
                 ? static_cast<double>(accepted) /
                       static_cast<double>(proposals)
                 : 0.0;
    }
  };

  SliceSampler(LogDensity log_density, Options options)
      : log_density_(std::move(log_density)), options_(options) {}

  /// Performs one full sweep (each coordinate updated once, in order) from
  /// `state` and returns the new state. `state` must have finite density.
  /// `stats` (optional) accumulates work counters.
  math::Vector Sweep(const math::Vector& state, Rng* rng,
                     Stats* stats = nullptr) const;

  /// Invoked right after each retained sample with (sample_index, state).
  /// The density has just been evaluated at exactly `state` (the final
  /// evaluation of the sweep that produced it), which lets density
  /// implementations hand their cached factorization of that state to the
  /// caller. Must not mutate sampler state or draw random numbers.
  using SampleCallback = std::function<void(int, const math::Vector&)>;

  /// Runs `burn_in` sweeps then collects `n_samples` states, taking one
  /// sample every `thin` sweeps. `stats` (optional) accumulates work
  /// counters over the whole call; `on_sample` (optional) observes each
  /// retained sample as it is produced.
  std::vector<math::Vector> Sample(const math::Vector& initial, int n_samples,
                                   int burn_in, int thin, Rng* rng,
                                   Stats* stats = nullptr,
                                   const SampleCallback& on_sample = {}) const;

 private:
  /// Slice-samples a single coordinate, returning its new value.
  double SampleCoordinate(math::Vector* state, size_t coord, double log_f0,
                          Rng* rng, Stats* stats) const;

  LogDensity log_density_;
  Options options_;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_SLICE_SAMPLER_H_
