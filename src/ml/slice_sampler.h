#ifndef LOCAT_ML_SLICE_SAMPLER_H_
#define LOCAT_ML_SLICE_SAMPLER_H_

#include <functional>

#include "common/rng.h"
#include "math/matrix.h"

namespace locat::ml {

/// Coordinate-wise slice sampler (Neal 2003) for drawing from an
/// unnormalized log density. Used to marginalize GP hyperparameters in the
/// EI-MCMC acquisition (Snoek, Larochelle & Adams 2012).
///
/// Slice sampling needs no step-size tuning beyond an initial bracket
/// width, which is exactly why EI-MCMC "avoids external tuning of GP's
/// hyperparameters" (Section 3.4 of the paper).
class SliceSampler {
 public:
  using LogDensity = std::function<double(const math::Vector&)>;

  struct Options {
    /// Initial bracket width per coordinate.
    double width = 1.0;
    /// Maximum number of stepping-out expansions per side.
    int max_step_out = 8;
    /// Maximum shrink iterations before giving up and keeping the current
    /// coordinate value (guards against pathological densities).
    int max_shrink = 64;
  };

  SliceSampler(LogDensity log_density, Options options)
      : log_density_(std::move(log_density)), options_(options) {}

  /// Performs one full sweep (each coordinate updated once, in order) from
  /// `state` and returns the new state. `state` must have finite density.
  math::Vector Sweep(const math::Vector& state, Rng* rng) const;

  /// Runs `burn_in` sweeps then collects `n_samples` states, taking one
  /// sample every `thin` sweeps.
  std::vector<math::Vector> Sample(const math::Vector& initial, int n_samples,
                                   int burn_in, int thin, Rng* rng) const;

 private:
  /// Slice-samples a single coordinate, returning its new value.
  double SampleCoordinate(math::Vector* state, size_t coord, double log_f0,
                          Rng* rng) const;

  LogDensity log_density_;
  Options options_;
};

}  // namespace locat::ml

#endif  // LOCAT_ML_SLICE_SAMPLER_H_
