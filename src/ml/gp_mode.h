#ifndef LOCAT_ML_GP_MODE_H_
#define LOCAT_ML_GP_MODE_H_

#include <cstddef>
#include <string_view>

#include "common/status.h"

namespace locat::ml {

/// Process-wide surrogate scaling mode for the DAGP refit loop
/// (`--gp-mode` / `LOCAT_GP_MODE`). All modes are exact full refits while
/// the observation count stays at or below the switch threshold — below
/// it, tuner output is bit-identical across modes. Above it:
///
///   kExact       keeps refitting the full-history EI-MCMC surrogate every
///                iteration (O(n^3) per hyperparameter evaluation).
///   kIncremental freezes the hyperparameter ensemble at the threshold fit
///                and extends every member by rank-1 bordered Cholesky
///                appends — O(n^2) per new observation, no MCMC, no RNG
///                consumption.
///   kSparse      refits on a greedy max-min (farthest-point) subset of
///                the history, seeded at the incumbent — O(m^3) with m
///                capped at the inducing-set size, independent of n.
enum class GpMode {
  kExact = 0,
  kIncremental = 1,
  kSparse = 2,
};

/// The mode DAGP instances without an explicit per-instance override use.
/// Lazily initialized from LOCAT_GP_MODE on first use ("exact" |
/// "incremental" | "sparse"; unset = exact). Invalid values warn once on
/// stderr and fall back to exact.
GpMode ActiveGpMode();

/// Forces the process-wide mode. Thread-safe; takes effect at each
/// DAGP's next Refit.
void SetGpMode(GpMode m);

/// Parses "exact" | "incremental" | "sparse" (the LOCAT_GP_MODE /
/// --gp-mode values) and switches the process-wide mode.
Status SetGpModeByName(std::string_view name);

const char* GpModeName(GpMode m);
const char* ActiveGpModeName();

/// Observation count above which incremental/sparse modes stop doing full
/// refits. Lazily initialized from LOCAT_GP_THRESHOLD (default 240 — the
/// size where BENCH_linalg.json puts a full EI-MCMC fit at ~1.35 s even
/// on the AVX2 backend).
size_t GpSwitchThreshold();

/// Overrides the process-wide switch threshold (0 restores the default).
void SetGpSwitchThreshold(size_t n);

}  // namespace locat::ml

#endif  // LOCAT_ML_GP_MODE_H_
