#include "ml/sparse_gp.h"

#include <algorithm>
#include <cassert>

#include "math/kern/kern.h"

namespace locat::ml {

std::vector<size_t> GreedyMaxMinSubset(const math::Matrix& x, size_t m,
                                       size_t seed_index) {
  const size_t n = x.rows();
  assert(seed_index < n);
  std::vector<size_t> out;
  if (m >= n) {
    out.resize(n);
    for (size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  if (m == 0) return out;

  const size_t d = x.cols();
  // dist2[i] = squared distance of point i to its nearest selected point.
  std::vector<double> dist2(n);
  std::vector<double> cand(n);
  std::vector<char> selected(n, 0);
  math::kern::SquaredDistanceRows(x.RowData(0), n, d, d,
                                  x.RowData(seed_index), dist2.data());
  selected[seed_index] = 1;
  out.push_back(seed_index);

  while (out.size() < m) {
    // Farthest unselected point; strict > keeps the lowest index on ties
    // (including the all-duplicates case where every distance is 0).
    size_t best = n;
    double best_d = -1.0;
    for (size_t i = 0; i < n; ++i) {
      if (selected[i]) continue;
      if (best == n || dist2[i] > best_d) {
        best = i;
        best_d = dist2[i];
      }
    }
    selected[best] = 1;
    out.push_back(best);
    math::kern::SquaredDistanceRows(x.RowData(0), n, d, d, x.RowData(best),
                                    cand.data());
    math::kern::Min(dist2.data(), cand.data(), dist2.data(), n);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace locat::ml
