// locat — command-line front end for the library.
//
//   locat catalog                         # print the Table 2 parameter list
//   locat apps                            # list the built-in applications
//   locat simulate <app> <cluster> <ds>   # one run under Spark defaults
//   locat sweep <app> <cluster> <ds> <spark.param>
//                                         # single-parameter what-if sweep
//   locat qcsa <app> <cluster> [runs]     # query sensitivity analysis
//   locat tune <app> <cluster> <ds> [tuner]
//                                         # run LOCAT (or a baseline)
//   locat serve <cluster> [apps...]       # multi-app online tuning service
//   locat report <telemetry.jsonl>        # per-phase breakdown of a run
//   locat check-metrics <metrics.txt>     # validate Prometheus exposition
//
// `tune` accepts observability flags (see Usage) that write a Chrome
// trace, a Prometheus metrics snapshot, and per-iteration JSONL telemetry.
// `serve` runs the OnlineTuningService loop and (with --admin-port) exposes
// /metrics, /healthz, /statusz and /flightz over loopback HTTP.
//
// Clusters: "arm" (4-node KUNPENG) or "x86" (8-node Xeon).
// Apps: TPC-DS, TPC-H, Join, Scan, Aggregation.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <iostream>

#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/locat_tuner.h"
#include "core/online_service.h"
#include "core/service_registry.h"
#include "core/qcsa.h"
#include "core/tuning.h"
#include "harness/experiments.h"
#include "math/kern/kern.h"
#include "ml/gp_mode.h"
#include "obs/admin_server.h"
#include "obs/flight_recorder.h"
#include "obs/labels.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sparksim/batch_engine.h"
#include "sparksim/eval_cache.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;

int Usage() {
  std::fprintf(
      stderr,
      "usage: locat <command> [args]\n"
      "  catalog                          print the 38-parameter catalog\n"
      "  apps                             list built-in applications\n"
      "  simulate <app> <cluster> <ds>    run once under Spark defaults\n"
      "  sweep <app> <cluster> <ds> <p>   sweep one parameter\n"
      "  qcsa <app> <cluster> [runs]      query sensitivity analysis\n"
      "  tune <app> <cluster> <ds> [t]    tune (t: LOCAT|Tuneful|DAC|"
      "GBO-RL|QTune|Random)\n"
      "  serve <cluster> [apps...]        run the online tuning service on\n"
      "                                   a synthetic multi-app workload\n"
      "                                   (default apps: TPC-DS TPC-H)\n"
      "  report <telemetry.jsonl>         per-phase breakdown of a tune run\n"
      "  check-metrics <file>             validate a Prometheus text\n"
      "                                   exposition (exit 0 iff well-formed)\n"
      "tune flags:\n"
      "  --seed N            repetition salt for the tuner and simulator\n"
      "  --threads N         worker threads for the BO hot path (GP\n"
      "                      ensemble fits, acquisition scoring, RQA query\n"
      "                      evaluation); results are bit-identical for\n"
      "                      any N. Default: hardware concurrency\n"
      "  --simd MODE         math-kernel dispatch: native (default; best\n"
      "                      of AVX2/NEON/scalar for this CPU), scalar or\n"
      "                      off (both force the scalar backend); results\n"
      "                      are bit-identical for any mode. Overrides the\n"
      "                      LOCAT_SIMD environment variable\n"
      "  --sim-engine MODE   simulator batch engine: auto (default; the\n"
      "                      structure-of-arrays batch engine for\n"
      "                      multi-conf batches, sequential otherwise),\n"
      "                      batch or seq; results are bit-identical for\n"
      "                      any mode. Overrides the LOCAT_SIM_ENGINE\n"
      "                      environment variable\n"
      "  --gp-mode MODE      surrogate scaling: exact (default; full\n"
      "                      EI-MCMC refit every iteration), incremental\n"
      "                      (rank-1 Cholesky appends above the switch\n"
      "                      threshold) or sparse (greedy max-min subset\n"
      "                      refits above it); below the threshold all\n"
      "                      modes are bit-identical. Overrides the\n"
      "                      LOCAT_GP_MODE environment variable; the\n"
      "                      threshold comes from LOCAT_GP_THRESHOLD\n"
      "                      (default 240)\n"
      "  --trace FILE        write a Chrome trace_event JSON timeline\n"
      "                      (chrome://tracing, Perfetto); includes the\n"
      "                      simulated-time lane of the cluster simulator\n"
      "  --metrics FILE      write a Prometheus text metrics snapshot\n"
      "  --telemetry FILE    write per-iteration BO telemetry as JSONL\n"
      "                      (input of `locat report`)\n"
      "  --sim-cache on|off  memoize noise-free simulations, per query and\n"
      "                      per whole app run (default on; results are\n"
      "                      bit-identical either way)\n"
      "  --sim-cache-cap N   cache capacity in entries (default: env\n"
      "                      LOCAT_SIM_CACHE_CAP, else 1048576)\n"
      "  --faults LEVEL      deterministic fault injection: off (default),\n"
      "                      light or heavy — executor loss, stragglers,\n"
      "                      fetch-failure retries and OOM app kills; the\n"
      "                      tuner retries and imputes censored costs\n"
      "  --fault-seed N      seed of the fault schedule (same seed =>\n"
      "                      byte-identical run; independent of --seed)\n"
      "observability flags (tune and serve):\n"
      "  --admin-port P      serve /metrics /varz /healthz /statusz\n"
      "                      /flightz /quitz on 127.0.0.1:P (0 picks an\n"
      "                      ephemeral port). tune prints the bound port\n"
      "                      to stderr so stdout stays byte-identical;\n"
      "                      serve prints it to stdout\n"
      "  --log-level L       structured logging: debug|info|warn|error|off\n"
      "                      (default off — zero cost)\n"
      "  --log-file FILE     route log records to FILE as JSONL instead of\n"
      "                      human-readable stderr\n"
      "  --flight FILE       keep a flight recorder of recent events and\n"
      "                      dump it to FILE on injected app kills and on\n"
      "                      SIGSEGV/SIGABRT\n"
      "serve flags:\n"
      "  --rounds N          production rounds to serve (default 6)\n"
      "  --serve-linger S    after the rounds, keep serving the admin\n"
      "                      endpoint up to S seconds or until /quitz\n"
      "                      (default 0)\n"
      "  --serve-threads N   concurrent app drivers + background tuning\n"
      "                      workers (default 1; served confs are\n"
      "                      bit-identical for any value)\n"
      "  --registry-cap N    max apps live in the serving registry; the\n"
      "                      LRU excess is evicted between rounds\n"
      "                      (default 0 = unlimited)\n"
      "  --registry-ttl N    evict apps idle for more than N rounds\n"
      "                      (default 0 = never)\n"
      "  --warm-start on|off seed new/re-admitted apps from similar tuned\n"
      "                      apps' observations (default on; off\n"
      "                      reproduces the registry-less cold start)\n"
      "  --dump-confs FILE   append one line per served request (round,\n"
      "                      app, size, raw conf values) — the byte-diff\n"
      "                      artifact for determinism checks\n"
      "clusters: arm | x86; apps: TPC-DS | TPC-H | Join | Scan | "
      "Aggregation\n");
  return 2;
}

int CmdCatalog() {
  sparksim::ConfigSpace arm(sparksim::ArmCluster());
  sparksim::ConfigSpace x86(sparksim::X86Cluster());
  TablePrinter tp({"#", "parameter", "default", "Range A", "Range B"});
  for (int i = 0; i < sparksim::kNumParams; ++i) {
    const auto& spec = arm.spec(i);
    const bool is_bool = spec.kind == sparksim::ParamKind::kBool;
    tp.AddRow({std::to_string(i), spec.name,
               is_bool ? (spec.default_value > 0.5 ? "true" : "false")
                       : TablePrinter::Num(spec.default_value, 1),
               is_bool ? "true,false"
                       : TablePrinter::Num(arm.lo(i), 1) + "-" +
                             TablePrinter::Num(arm.hi(i), 1),
               is_bool ? "true,false"
                       : TablePrinter::Num(x86.lo(i), 1) + "-" +
                             TablePrinter::Num(x86.hi(i), 1)});
  }
  tp.Print(std::cout);
  return 0;
}

int CmdApps() {
  for (const auto& app : workloads::AllBenchmarks()) {
    std::printf("%-12s %3d queries\n", app.name.c_str(), app.num_queries());
  }
  std::printf("data sizes (Table 1): 100, 200, 300, 400, 500 GB\n");
  return 0;
}

int CmdSimulate(const std::string& app_name, const std::string& cluster,
                double ds) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster), 1);
  sparksim::ConfigSpace space(sim.cluster());
  const auto run =
      sim.RunApp(app, space.Repair(space.DefaultConf()), ds);
  std::printf("%s @ %.0f GB on %s under (repaired) Spark defaults:\n",
              app.name.c_str(), ds, cluster.c_str());
  std::printf("  total %.0f s | GC %.0f s | shuffle %.1f GB | OOM: %s\n",
              run.total_seconds, run.gc_seconds, run.shuffle_gb,
              run.any_oom ? "yes" : "no");
  // Slowest five queries.
  std::vector<size_t> order(run.per_query.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return run.per_query[a].exec_seconds > run.per_query[b].exec_seconds;
  });
  std::printf("  slowest queries:");
  for (size_t i = 0; i < order.size() && i < 5; ++i) {
    std::printf(" %s(%.0fs)", run.per_query[order[i]].name.c_str(),
                run.per_query[order[i]].exec_seconds);
  }
  std::printf("\n");
  return 0;
}

int CmdSweep(const std::string& app_name, const std::string& cluster,
             double ds, const std::string& param) {
  const auto app = harness::MakeApp(app_name);
  sparksim::SimParams params;
  params.noise_sigma = 0.0;
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster), 1, params);
  sparksim::ConfigSpace space(sim.cluster());
  const int idx = space.IndexOf(param);
  if (idx < 0) {
    std::fprintf(stderr, "unknown parameter: %s (see `locat catalog`)\n",
                 param.c_str());
    return 2;
  }
  sparksim::SparkConf base = space.DefaultConf();
  base.Set(sparksim::kExecutorInstances, 30);
  base.Set(sparksim::kExecutorCores, 4);
  base.Set(sparksim::kExecutorMemory, 16);
  base.Set(sparksim::kExecutorMemoryOverhead, 3072);
  base.Set(sparksim::kSqlShufflePartitions, 500);
  base = space.Repair(base);

  TablePrinter tp({param, "total (s)", "GC (s)", "OOM"});
  const bool is_bool =
      space.spec(idx).kind == sparksim::ParamKind::kBool;
  const int steps = is_bool ? 2 : 8;
  for (int s = 0; s < steps; ++s) {
    const double v = is_bool ? s
                             : space.lo(idx) + (space.hi(idx) - space.lo(idx)) *
                                                   s / (steps - 1);
    sparksim::SparkConf conf = base;
    conf.Set(static_cast<sparksim::ParamId>(idx), v);
    conf = space.Repair(conf);
    const auto run = sim.RunApp(app, conf, ds);
    tp.AddRow({TablePrinter::Num(conf.Get(static_cast<sparksim::ParamId>(idx)),
                                 2),
               TablePrinter::Num(run.total_seconds, 0),
               TablePrinter::Num(run.gc_seconds, 0),
               run.any_oom ? "yes" : ""});
  }
  tp.Print(std::cout);
  return 0;
}

int CmdQcsa(const std::string& app_name, const std::string& cluster,
            int runs) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster), 7);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(8);
  std::vector<std::vector<double>> times(
      static_cast<size_t>(app.num_queries()));
  for (int r = 0; r < runs; ++r) {
    const auto result = sim.RunApp(app, space.RandomValid(&rng), 100.0);
    for (size_t q = 0; q < result.per_query.size(); ++q) {
      times[q].push_back(result.per_query[q].exec_seconds);
    }
  }
  const auto qcsa = core::AnalyzeQuerySensitivity(times);
  if (!qcsa.ok()) {
    std::fprintf(stderr, "QCSA failed: %s\n",
                 qcsa.status().ToString().c_str());
    return 1;
  }
  std::printf("CV threshold %.3f; %zu CSQ / %zu CIQ\n", qcsa->threshold,
              qcsa->csq_indices.size(), qcsa->ciq_indices.size());
  std::printf("configuration-sensitive queries:");
  for (int idx : qcsa->csq_indices) {
    std::printf(" %s(%.2f)", app.queries[static_cast<size_t>(idx)].name.c_str(),
                qcsa->cv[static_cast<size_t>(idx)]);
  }
  std::printf("\n");
  return 0;
}

/// Observability flags of `tune`/`serve`, parsed out of argv before the
/// positional arguments.
struct ObsFlags {
  uint64_t seed = 0;
  std::string trace_path;
  std::string metrics_path;
  std::string telemetry_path;
  bool sim_cache = true;
  size_t sim_cache_cap = 0;  // 0: LOCAT_SIM_CACHE_CAP env / built-in default
  std::string faults = "off";
  uint64_t fault_seed = 0;
  int admin_port = -1;  // -1: no admin server (zero sockets, zero threads)
  std::string log_level = "off";
  std::string log_file;
  std::string flight_path;
  int rounds = 6;
  double serve_linger = 0.0;
  int serve_threads = 1;
  size_t registry_cap = 0;  // 0: unlimited
  int registry_ttl = 0;     // 0: never evict on idleness
  bool warm_start = true;
  std::string dump_confs_path;
};

/// Error/diagnostic output. Routed through the structured logger when one
/// is enabled (so --log-file captures it as JSONL); plain stderr
/// otherwise — the default path is byte-for-byte what it always was.
void Diag(const char* component, const std::string& message) {
  obs::Log* log = obs::Log::Global();
  if (log->Enabled(obs::LogLevel::kError)) {
    log->Error(component, message);
  } else {
    std::fprintf(stderr, "%s\n", message.c_str());
  }
}

/// Applies --log-level/--log-file/--flight to the process-global logger
/// and flight recorder. Returns the recorder (null when --flight absent).
obs::FlightRecorder* SetupProcessObs(const ObsFlags& flags) {
  obs::Log* log = obs::Log::Global();
  if (!flags.log_file.empty()) {
    const auto status = log->OpenJsonlFile(flags.log_file);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      std::exit(2);
    }
  }
  const auto level = obs::ParseLogLevel(flags.log_level);
  if (!level.ok()) {
    std::fprintf(stderr, "%s\n", level.status().ToString().c_str());
    std::exit(2);
  }
  log->SetLevel(*level);

  obs::FlightRecorder* flight = nullptr;
  if (!flags.flight_path.empty()) {
    flight = obs::FlightRecorder::InstallGlobal();
    flight->SetDumpOnFault(flags.flight_path);
    obs::FlightRecorder::InstallCrashHandlers(flags.flight_path);
    log->SetFlightRecorder(flight);
  }
  return flight;
}

int CmdTune(const std::string& app_name, const std::string& cluster,
            double ds, const std::string& tuner_name, const ObsFlags& flags,
            obs::FlightRecorder* flight) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster),
                                 21 + flags.seed);
  if (flight != nullptr) sim.set_flight_recorder(flight);
  // The eval cache memoizes the noise-free per-query simulation; it only
  // changes wall-clock, never results (--sim-cache off to compare).
  std::unique_ptr<sparksim::EvalCache> sim_cache;
  if (flags.sim_cache) {
    sim_cache = std::make_unique<sparksim::EvalCache>(
        flags.sim_cache_cap > 0 ? flags.sim_cache_cap
                                : sparksim::EvalCache::CapacityFromEnv());
    sim.set_eval_cache(sim_cache.get());
  }
  if (flags.faults != "off") {
    const auto spec_or =
        sparksim::FaultSpec::FromName(flags.faults, flags.fault_seed);
    if (!spec_or.ok()) {
      Diag("cli", spec_or.status().ToString());
      return 2;
    }
    sim.set_faults(*spec_or);
  }
  core::TuningSession session(&sim, app);
  auto tuner = harness::MakeTuner(tuner_name, flags.seed);

  // Observability sinks: each is wired only when its output was requested,
  // so a plain `tune` keeps the all-null (zero-cost) path.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  std::ofstream telemetry_os;
  std::unique_ptr<obs::JsonlObserver> observer;
  obs::ObsContext ctx;
  if (!flags.trace_path.empty()) {
    ctx.tracer = &tracer;
    sim.set_tracer(&tracer);
  }
  if (!flags.metrics_path.empty()) ctx.metrics = &metrics;
  if (!flags.telemetry_path.empty()) {
    telemetry_os.open(flags.telemetry_path);
    if (!telemetry_os) {
      Diag("cli", "cannot write " + flags.telemetry_path);
      return 1;
    }
    observer = std::make_unique<obs::JsonlObserver>(&telemetry_os);
    ctx.observer = observer.get();
  }
  // An admin server implies a live metrics registry (that's what /metrics
  // scrapes). Wiring the registry is purely observational — counters and
  // histograms only — so stdout stays byte-identical with the port on or
  // off; the listening line goes to stderr for the same reason.
  std::unique_ptr<obs::AdminServer> admin;
  if (flags.admin_port >= 0) {
    ctx.metrics = &metrics;
    obs::AdminServer::Options opts;
    opts.port = flags.admin_port;
    opts.metrics = &metrics;
    opts.flight = flight;
    auto admin_or = obs::AdminServer::Start(std::move(opts));
    if (!admin_or.ok()) {
      Diag("cli", admin_or.status().ToString());
      return 1;
    }
    admin = std::move(admin_or).value();
    std::fprintf(stderr, "admin: listening on 127.0.0.1:%d\n",
                 admin->port());
  }
  if (ctx.any()) {
    session.SetObservability(ctx);
    tuner->SetObservability(ctx);
  }

  obs::Log::Global()->Info("cli", "tune start",
                           {{"app", app.name},
                            {"cluster", cluster},
                            {"datasize_gb", ds},
                            {"tuner", tuner->name()}});
  std::printf("Tuning %s @ %.0f GB on %s with %s...\n", app.name.c_str(), ds,
              cluster.c_str(), tuner->name().c_str());
  const auto result = tuner->Tune(&session, ds);
  // Under fault injection a final measurement can die too — retry for a
  // completed run (the retries draw from the deterministic fault stream,
  // so repeated invocations still print identical output).
  auto measure = [&](const sparksim::SparkConf& conf) {
    sparksim::AppRunResult run;
    for (int attempt = 0; attempt < 9; ++attempt) {
      run = session.MeasureFinal(conf, ds);
      if (!run.failed) break;
    }
    return run;
  };
  const sparksim::AppRunResult tuned_run = measure(result.best_conf);
  const sparksim::AppRunResult dflt_run = measure(
      session.space().Repair(session.space().DefaultConf()));
  const double tuned = tuned_run.total_seconds;
  const double dflt = dflt_run.total_seconds;
  obs::Log::Global()->Info("cli", "tune done",
                           {{"evaluations", result.evaluations},
                            {"tuned_seconds", tuned},
                            {"default_seconds", dflt}});
  std::printf("evaluations: %d | optimization time: %.1f simulated hours\n",
              result.evaluations, result.optimization_seconds / 3600.0);
  std::printf("tuned run: %.0f s%s | defaults: %.0f s%s | improvement %.1fx\n",
              tuned, tuned_run.failed ? " (failed)" : "", dflt,
              dflt_run.failed ? " (failed)" : "", dflt / tuned);
  if (sim.faults().enabled()) {
    const sparksim::FaultStats& fs = sim.fault_stats();
    std::printf(
        "faults(%s, seed %llu): %llu executor losses | %llu stragglers | "
        "%llu fetch failures | %llu app kills | %d failed evals\n",
        flags.faults.c_str(),
        static_cast<unsigned long long>(flags.fault_seed),
        static_cast<unsigned long long>(fs.executor_losses),
        static_cast<unsigned long long>(fs.stragglers),
        static_cast<unsigned long long>(fs.fetch_failures),
        static_cast<unsigned long long>(fs.app_kills),
        result.failed_evaluations);
    if (ctx.metrics != nullptr) {
      metrics
          .GetCounter("locat_sim_faults_executor_loss_total",
                      "Injected executor-loss events")
          ->Increment(static_cast<double>(fs.executor_losses));
      metrics
          .GetCounter("locat_sim_faults_straggler_total",
                      "Injected straggler events")
          ->Increment(static_cast<double>(fs.stragglers));
      metrics
          .GetCounter("locat_sim_faults_fetch_failure_total",
                      "Injected fetch-failure stage retries")
          ->Increment(static_cast<double>(fs.fetch_failures));
      metrics
          .GetCounter("locat_sim_faults_app_kill_total",
                      "Injected hard application kills")
          ->Increment(static_cast<double>(fs.app_kills));
      metrics
          .GetCounter("locat_sim_faults_failed_runs_total",
                      "Simulated app runs that ended failed")
          ->Increment(static_cast<double>(fs.failed_runs));
    }
    if (ctx.observer != nullptr) {
      obs::PhaseEvent ev;
      ev.tuner = tuner->name();
      ev.phase = "faults";
      ev.fields = {
          {"executor_losses", static_cast<double>(fs.executor_losses)},
          {"stragglers", static_cast<double>(fs.stragglers)},
          {"fetch_failures", static_cast<double>(fs.fetch_failures)},
          {"app_kills", static_cast<double>(fs.app_kills)},
          {"failed_runs", static_cast<double>(fs.failed_runs)},
          {"failed_evals", static_cast<double>(result.failed_evaluations)},
      };
      ctx.observer->OnPhase(ev);
    }
  }
  if (sim_cache != nullptr) {
    const sparksim::EvalCacheStats cs = sim_cache->stats();
    std::printf(
        "sim cache: %llu hits / %llu misses (%.1f%% hit rate, "
        "%llu whole-run hits), %zu entries, %llu evictions\n",
        static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses), 100.0 * cs.hit_rate(),
        static_cast<unsigned long long>(cs.app_hits), sim_cache->size(),
        static_cast<unsigned long long>(cs.evictions));
    if (ctx.observer != nullptr) {
      obs::PhaseEvent ev;
      ev.tuner = tuner->name();
      ev.phase = "sim_cache";
      ev.fields = {
          {"hits", static_cast<double>(cs.hits)},
          {"misses", static_cast<double>(cs.misses)},
          {"evictions", static_cast<double>(cs.evictions)},
          {"collisions", static_cast<double>(cs.collisions)},
          {"insertions", static_cast<double>(cs.insertions)},
          {"entries", static_cast<double>(cs.entries)},
          {"app_hits", static_cast<double>(cs.app_hits)},
          {"app_misses", static_cast<double>(cs.app_misses)},
          {"hit_rate", cs.hit_rate()},
      };
      ctx.observer->OnPhase(ev);
    }
    if (ctx.metrics != nullptr) sim_cache->ExportMetrics(ctx.metrics);
  }
  std::printf("linalg: %s dispatch\n", math::kern::ActiveBackendName());
  std::printf("gp_mode: %s dispatch (switch threshold %zu)\n",
              ml::ActiveGpModeName(), ml::GpSwitchThreshold());
  if (ctx.observer != nullptr) {
    obs::PhaseEvent ev;
    ev.tuner = tuner->name();
    ev.phase = "linalg";
    ev.fields = {
        {"backend_id",
         static_cast<double>(math::kern::ActiveBackend())},
    };
    ctx.observer->OnPhase(ev);
  }
  {
    // Deterministic dispatch summary (counts only — wall time goes to the
    // telemetry event below so stdout stays byte-identical across runs).
    const sparksim::SimEngineStats& es = sim.engine_stats();
    std::printf(
        "sim_engine: %s dispatch | %llu batched runs (%llu lanes), "
        "%llu sequential runs\n",
        sparksim::ActiveSimEngineName(),
        static_cast<unsigned long long>(es.batch_batches),
        static_cast<unsigned long long>(es.batch_lanes),
        static_cast<unsigned long long>(es.seq_batches));
    if (ctx.observer != nullptr) {
      obs::PhaseEvent ev;
      ev.tuner = tuner->name();
      ev.phase = "sim_engine";
      const double lanes_per_sec =
          es.batch_seconds > 0.0
              ? static_cast<double>(es.batch_lanes) / es.batch_seconds
              : 0.0;
      ev.fields = {
          {"engine_id", static_cast<double>(sparksim::ActiveSimEngine())},
          {"batch_batches", static_cast<double>(es.batch_batches)},
          {"batch_lanes", static_cast<double>(es.batch_lanes)},
          {"batch_cells", static_cast<double>(es.batch_cells)},
          {"seq_batches", static_cast<double>(es.seq_batches)},
          {"seq_lanes", static_cast<double>(es.seq_lanes)},
          {"batch_seconds", es.batch_seconds},
          {"lanes_per_sec", lanes_per_sec},
      };
      ctx.observer->OnPhase(ev);
    }
  }
  std::printf("\n%s\n", result.best_conf.ToString().c_str());

  if (!flags.trace_path.empty()) {
    std::ofstream os(flags.trace_path);
    if (!os) {
      Diag("cli", "cannot write " + flags.trace_path);
      return 1;
    }
    tracer.WriteChromeTrace(os);
    std::printf("trace: %s (%zu events)\n", flags.trace_path.c_str(),
                tracer.event_count());
  }
  if (!flags.metrics_path.empty()) {
    std::ofstream os(flags.metrics_path);
    if (!os) {
      Diag("cli", "cannot write " + flags.metrics_path);
      return 1;
    }
    metrics.WritePrometheus(os);
    std::printf("metrics: %s\n", flags.metrics_path.c_str());
  }
  if (!flags.telemetry_path.empty()) {
    telemetry_os.close();
    std::printf("telemetry: %s\n", flags.telemetry_path.c_str());
  }
  return 0;
}

/// Per-app state the CLI keeps across registry evictions: the profile and
/// the simulator. The sim survives eviction on purpose — its noise stream
/// and cache are "the cluster", which does not forget an app; only the
/// tuner state (session + service, owned by the backend below) is rebuilt
/// on re-admission.
struct ServeHost {
  sparksim::SparkSqlApp app;
  std::unique_ptr<sparksim::ClusterSimulator> sim;
};

/// Registry backend for `locat serve`: owns the tuning session and
/// service, borrows the CLI-owned host. The registry wires the service's
/// observability at admission; the session is wired here.
class ServeBackend : public core::AppBackend {
 public:
  ServeBackend(ServeHost* host, const core::OnlineTuningService::Options& opts,
               const obs::ObsContext& ctx)
      : host_(host),
        session_(std::make_unique<core::TuningSession>(host->sim.get(),
                                                       host->app)) {
    session_->SetObservability(ctx);
    service_ =
        std::make_unique<core::OnlineTuningService>(session_.get(), opts);
  }
  core::OnlineTuningService* service() override { return service_.get(); }
  const sparksim::SparkSqlApp& app() const override { return host_->app; }

 private:
  ServeHost* host_;
  std::unique_ptr<core::TuningSession> session_;
  std::unique_ptr<core::OnlineTuningService> service_;
};

/// `locat serve`: the production loop of ROADMAP item 1 as a demo — a
/// ServiceRegistry of per-app OnlineTuningServices, concurrent app
/// drivers (--serve-threads), a deterministic schedule of data sizes, and
/// (with --admin-port) a live admin endpoint to scrape while it runs.
/// Served confs are bit-identical for any --serve-threads value; in
/// single-threaded mode the round lines and the "serving:" summary line
/// are byte-identical to the sequential pre-registry loop.
int CmdServe(const std::string& cluster, std::vector<std::string> app_names,
             const ObsFlags& flags, obs::FlightRecorder* flight) {
  if (app_names.empty()) app_names = {"TPC-DS", "TPC-H"};

  obs::MetricsRegistry metrics;
  obs::ObsContext ctx;
  ctx.metrics = &metrics;
  std::ofstream telemetry_os;
  std::unique_ptr<obs::JsonlObserver> observer;
  if (!flags.telemetry_path.empty()) {
    telemetry_os.open(flags.telemetry_path);
    if (!telemetry_os) {
      Diag("cli", "cannot write " + flags.telemetry_path);
      return 1;
    }
    observer = std::make_unique<obs::JsonlObserver>(&telemetry_os);
    ctx.observer = observer.get();
  }

  std::map<std::string, ServeHost> hosts;
  for (const std::string& name : app_names) {
    if (hosts.count(name) != 0) continue;
    ServeHost h;
    h.app = harness::MakeApp(name);
    h.sim = std::make_unique<sparksim::ClusterSimulator>(
        harness::MakeCluster(cluster), 21 + flags.seed);
    if (flight != nullptr) h.sim->set_flight_recorder(flight);
    if (flags.faults != "off") {
      const auto spec_or =
          sparksim::FaultSpec::FromName(flags.faults, flags.fault_seed);
      if (!spec_or.ok()) {
        Diag("cli", spec_or.status().ToString());
        return 2;
      }
      h.sim->set_faults(*spec_or);
    }
    hosts.emplace(name, std::move(h));
  }

  core::OnlineTuningService::Options sopts;
  // Demo-sized budgets: serve is about the serving loop, not tuning
  // quality — cold start in seconds, warm adaptation near-instant.
  sopts.tuner.n_qcsa = 8;
  sopts.tuner.n_iicp = 6;
  sopts.tuner.lhs_init = 2;
  sopts.tuner.min_iterations = 3;
  sopts.tuner.max_iterations = 5;
  sopts.tuner.warm_iterations = 3;
  sopts.tuner.candidates = 60;
  sopts.tuner.seed = 31 + flags.seed;

  core::ServiceRegistry::Options ropts;
  ropts.retune_threshold = sopts.retune_threshold;
  ropts.capacity = flags.registry_cap;
  ropts.ttl_ticks = flags.registry_ttl;
  ropts.warm_start = flags.warm_start;
  ropts.tune_threads = flags.serve_threads;
  core::ServiceRegistry registry(
      [&hosts, &sopts, &ctx](const std::string& name)
          -> std::unique_ptr<core::AppBackend> {
        const auto it = hosts.find(name);
        if (it == hosts.end()) return nullptr;
        return std::make_unique<ServeBackend>(&it->second, sopts, ctx);
      },
      ropts);
  registry.SetObservability(ctx);

  auto statusz_table = [&registry]() {
    std::ostringstream os;
    TablePrinter tp({"app", "recs", "reuse", "tunes", "fails", "sizes",
                     "p50 (ms)", "p99 (ms)", "last conf"});
    for (const core::ServiceRegistry::AppRow& row : registry.AppRows()) {
      const auto& snap = row.snapshot;
      // Registry fast-path hits never enter the service, but each one is
      // a served (reused) recommendation; merging reproduces the counts
      // the registry-less loop reported.
      const int extra = static_cast<int>(row.hits + row.coalesced);
      std::string sizes;
      for (double ds : snap.tuned_sizes) {
        if (!sizes.empty()) sizes += ',';
        sizes += TablePrinter::Num(ds, 0);
      }
      // SparkPropertiesToString is one property per line; flatten it so
      // the table row stays a single line.
      std::string conf = snap.last_conf;
      std::replace(conf.begin(), conf.end(), '\n', ' ');
      tp.AddRow({snap.app, std::to_string(snap.recommendations + extra),
                 std::to_string(snap.reuses + extra),
                 std::to_string(snap.tuning_passes),
                 std::to_string(snap.failed_reports), sizes,
                 TablePrinter::Num(snap.recommend_p50_s * 1e3, 1),
                 TablePrinter::Num(snap.recommend_p99_s * 1e3, 1),
                 conf.substr(0, 48)});
    }
    tp.Print(os);
    os << registry.RenderStatusTable();
    return os.str();
  };

  std::unique_ptr<obs::AdminServer> admin;
  if (flags.admin_port >= 0) {
    obs::AdminServer::Options opts;
    opts.port = flags.admin_port;
    opts.metrics = &metrics;
    opts.flight = flight;
    opts.statusz = statusz_table;
    auto admin_or = obs::AdminServer::Start(std::move(opts));
    if (!admin_or.ok()) {
      Diag("cli", admin_or.status().ToString());
      return 1;
    }
    admin = std::move(admin_or).value();
    // First line of output, parseable ("admin: listening on HOST:PORT") so
    // scripts scraping an ephemeral port can pick it up while we serve.
    std::printf("admin: listening on 127.0.0.1:%d\n", admin->port());
    std::fflush(stdout);
  }

  obs::Log::Global()->Info(
      "serve", "serving started",
      {{"apps", static_cast<double>(app_names.size())},
       {"rounds", flags.rounds},
       {"cluster", cluster}});

  // Deterministic data-size schedule. Adjacent pairs (100/120, 300/330)
  // sit within the service's 25% reuse gap, so the loop exercises both
  // instant reuse and warm re-tunes.
  static const double kSizes[] = {100.0, 120.0, 300.0, 330.0, 500.0};
  std::ofstream dump_os;
  if (!flags.dump_confs_path.empty()) {
    dump_os.open(flags.dump_confs_path);
    if (!dump_os) {
      Diag("cli", "cannot write " + flags.dump_confs_path);
      return 1;
    }
  }
  int ok_runs = 0;
  int failed_runs = 0;
  // The round drivers interleave apps through the registry (concurrent
  // tenants); stdout stays deterministic because the round lines print
  // after the barrier, in app order, from per-app slots.
  common::ThreadPool drivers(flags.serve_threads);
  struct RoundResult {
    bool served = false;
    double ds = 0.0;
    double seconds = 0.0;
    bool failed = false;
    sparksim::SparkConf conf;
  };
  for (int r = 0; r < flags.rounds; ++r) {
    if (admin != nullptr && admin->quit_requested()) break;
    std::vector<RoundResult> round(app_names.size());
    drivers.ParallelForEach(app_names.size(), [&](size_t ai) {
      const std::string& name = app_names[ai];
      const double ds = kSizes[(static_cast<size_t>(r) + ai) % 5];
      const auto conf_or = registry.Lookup(name, ds);
      if (!conf_or.ok()) {
        Diag("serve", conf_or.status().ToString());
        return;
      }
      const sparksim::SparkConf conf = *conf_or;
      ServeHost& host = hosts.at(name);
      // The production run itself: happens anyway, reported back as a
      // free observation (or as a failure).
      const auto run = host.sim->RunApp(host.app, conf, ds);
      const Status report =
          run.failed
              ? registry.ReportFailedRun(name, ds, conf, run.total_seconds)
              : registry.ReportRun(name, ds, conf, run.total_seconds);
      if (!report.ok()) Diag("serve", report.ToString());
      obs::Log::Global()->Info(
          "serve", run.failed ? "production run failed" : "production run",
          {{"app", name},
           {"round", r},
           {"datasize_gb", ds},
           {"seconds", run.total_seconds}});
      round[ai] = {true, ds, run.total_seconds, run.failed, conf};
    });
    // Tick barrier: all cross-app registry state (LRU eviction, the
    // transfer store warm starts read) commits here, in deterministic
    // order — request timing inside the round can never affect it.
    registry.AdvanceTick();
    for (size_t ai = 0; ai < app_names.size(); ++ai) {
      const RoundResult& res = round[ai];
      if (!res.served) continue;
      if (res.failed) {
        ++failed_runs;
      } else {
        ++ok_runs;
      }
      std::printf("round %2d %-12s @ %3.0f GB: %6.0f s%s\n", r,
                  app_names[ai].c_str(), res.ds, res.seconds,
                  res.failed ? "  FAILED" : "");
      if (dump_os.is_open()) {
        dump_os << r << ' ' << app_names[ai] << ' ' << res.ds;
        char num[32];
        for (double v : res.conf.values()) {
          std::snprintf(num, sizeof(num), " %.17g", v);
          dump_os << num;
        }
        dump_os << '\n';
      }
    }
    std::fflush(stdout);
  }
  if (dump_os.is_open()) {
    dump_os.close();
    std::printf("confs: %s\n", flags.dump_confs_path.c_str());
  }

  // Summary: one aggregate line plus the same table /statusz serves.
  int recs = 0;
  int reuses = 0;
  int tunes = 0;
  double opt_seconds = 0.0;
  for (const core::ServiceRegistry::AppRow& row : registry.AppRows()) {
    const auto& snap = row.snapshot;
    const int extra = static_cast<int>(row.hits + row.coalesced);
    recs += snap.recommendations + extra;
    reuses += snap.reuses + extra;
    tunes += snap.tuning_passes;
    opt_seconds += snap.optimization_seconds;
    if (ctx.observer != nullptr) {
      obs::PhaseEvent ev;
      ev.tuner = snap.app;
      ev.phase = "serving";
      ev.fields = {
          {"recommendations",
           static_cast<double>(snap.recommendations + extra)},
          {"reuses", static_cast<double>(snap.reuses + extra)},
          {"tuning_passes", static_cast<double>(snap.tuning_passes)},
          {"failed_reports", static_cast<double>(snap.failed_reports)},
          {"recommend_p50_s", snap.recommend_p50_s},
          {"recommend_p99_s", snap.recommend_p99_s},
      };
      ctx.observer->OnPhase(ev);
    }
  }
  std::printf(
      "serving: %d recommendations (%d reused, %d tuned) | %d ok runs | "
      "%d failed runs | optimization %.1f simulated hours\n",
      recs, reuses, tunes, ok_runs, failed_runs, opt_seconds / 3600.0);
  std::printf("%s", statusz_table().c_str());
  if (!flags.metrics_path.empty()) {
    std::ofstream os(flags.metrics_path);
    if (!os) {
      Diag("cli", "cannot write " + flags.metrics_path);
      return 1;
    }
    metrics.WritePrometheus(os);
    std::printf("metrics: %s\n", flags.metrics_path.c_str());
  }
  std::fflush(stdout);

  if (admin != nullptr && flags.serve_linger > 0.0 &&
      !admin->quit_requested()) {
    // Stay scrapeable until /quitz or the deadline — how CI scrapes a
    // *live* process rather than a snapshot.
    admin->WaitForQuit(flags.serve_linger);
  }
  if (admin != nullptr) admin->Stop();
  obs::Log::Global()->Info("serve", "serving stopped",
                           {{"ok_runs", ok_runs},
                            {"failed_runs", failed_runs}});
  return 0;
}

int CmdCheckMetrics(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    Diag("cli", "cannot read " + path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto status = obs::CheckPrometheusExposition(buf.str());
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("%s: ok\n", path.c_str());
  return 0;
}

int CmdReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = obs::ParseTelemetry(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }

  // Aggregate iteration events by phase, in first-seen order.
  struct PhaseAgg {
    std::string phase;
    int events = 0;
    double eval_seconds = 0.0;
    double fit_seconds = 0.0;  // surrogate (DAGP) fitting wall time
    double acq_seconds = 0.0;  // acquisition-scoring wall time
    double best_seconds = 0.0;
  };
  std::vector<PhaseAgg> phases;
  std::string tuner;
  double total_eval_seconds = 0.0;
  int total_events = 0;
  double summary_opt = 0.0;
  double summary_best = 0.0;
  double summary_evals = 0.0;
  bool have_summary = false;
  bool have_sim_cache = false;
  bool have_linalg = false;
  bool have_sim_engine = false;
  double engine_id = 0.0;
  double engine_batch_batches = 0.0;
  double engine_batch_lanes = 0.0;
  double engine_batch_cells = 0.0;
  double engine_seq_batches = 0.0;
  double engine_batch_seconds = 0.0;
  double engine_lanes_per_sec = 0.0;
  struct ServingAgg {
    std::string app;
    double recommendations = 0.0;
    double reuses = 0.0;
    double tuning_passes = 0.0;
    double failed_reports = 0.0;
    double p50_s = 0.0;
    double p99_s = 0.0;
  };
  std::vector<ServingAgg> serving;
  double linalg_backend_id = 0.0;
  double cache_hits = 0.0;
  double cache_misses = 0.0;
  double cache_evictions = 0.0;
  double cache_collisions = 0.0;
  double cache_entries = 0.0;
  double cache_hit_rate = 0.0;
  for (const auto& rec : parsed.value()) {
    if (rec.type == "iteration") {
      if (tuner.empty()) tuner = rec.Str("tuner");
      const std::string phase = rec.Str("phase");
      PhaseAgg* agg = nullptr;
      for (auto& p : phases) {
        if (p.phase == phase) {
          agg = &p;
          break;
        }
      }
      if (agg == nullptr) {
        phases.push_back(PhaseAgg{phase});
        agg = &phases.back();
      }
      const double eval = rec.Num("eval_seconds");
      const double incumbent = rec.Num("incumbent_seconds");
      ++agg->events;
      agg->eval_seconds += eval;
      agg->fit_seconds += rec.Num("dagp_fit_seconds");
      agg->acq_seconds += rec.Num("acq_seconds");
      if (incumbent > 0.0 &&
          (agg->best_seconds <= 0.0 || incumbent < agg->best_seconds)) {
        agg->best_seconds = incumbent;
      }
      ++total_events;
      total_eval_seconds += eval;
    } else if (rec.type == "phase" && rec.Str("phase") == "summary") {
      have_summary = true;
      summary_opt = rec.Num("optimization_seconds");
      summary_best = rec.Num("best_seconds");
      summary_evals = rec.Num("evaluations");
    } else if (rec.type == "phase" && rec.Str("phase") == "linalg") {
      have_linalg = true;
      linalg_backend_id = rec.Num("backend_id");
    } else if (rec.type == "phase" && rec.Str("phase") == "sim_engine") {
      have_sim_engine = true;
      engine_id = rec.Num("engine_id");
      engine_batch_batches = rec.Num("batch_batches");
      engine_batch_lanes = rec.Num("batch_lanes");
      engine_batch_cells = rec.Num("batch_cells");
      engine_seq_batches = rec.Num("seq_batches");
      engine_batch_seconds = rec.Num("batch_seconds");
      engine_lanes_per_sec = rec.Num("lanes_per_sec");
    } else if (rec.type == "phase" && rec.Str("phase") == "serving") {
      ServingAgg agg;
      agg.app = rec.Str("tuner");  // serve stores the app name here
      agg.recommendations = rec.Num("recommendations");
      agg.reuses = rec.Num("reuses");
      agg.tuning_passes = rec.Num("tuning_passes");
      agg.failed_reports = rec.Num("failed_reports");
      agg.p50_s = rec.Num("recommend_p50_s");
      agg.p99_s = rec.Num("recommend_p99_s");
      serving.push_back(std::move(agg));
    } else if (rec.type == "phase" && rec.Str("phase") == "sim_cache") {
      have_sim_cache = true;
      cache_hits = rec.Num("hits");
      cache_misses = rec.Num("misses");
      cache_evictions = rec.Num("evictions");
      cache_collisions = rec.Num("collisions");
      cache_entries = rec.Num("entries");
      cache_hit_rate = rec.Num("hit_rate");
    }
  }
  if (total_events == 0 && serving.empty()) {
    std::fprintf(stderr, "%s: no iteration events\n", path.c_str());
    return 1;
  }
  if (total_events == 0) {
    // Pure serving telemetry (from `locat serve --telemetry`): no
    // per-iteration table, just the serving summary.
    for (const auto& s : serving) {
      std::printf(
          "serving: %-12s %.0f recommendations (%.0f reused, %.0f tuned) | "
          "%.0f failed runs | recommend p50 %.1f ms / p99 %.1f ms\n",
          s.app.c_str(), s.recommendations, s.reuses, s.tuning_passes,
          s.failed_reports, s.p50_s * 1e3, s.p99_s * 1e3);
    }
    return 0;
  }

  if (!tuner.empty()) std::printf("tuner: %s\n", tuner.c_str());
  // "fit" and "acq" split the tuner's own per-iteration overhead into
  // surrogate fitting and acquisition scoring (real wall time, not
  // simulated seconds); "charged" remains the simulated evaluation cost.
  TablePrinter tp({"phase", "evals", "charged (s)", "share", "fit (s)",
                   "acq (s)", "best (s)"});
  double total_fit_seconds = 0.0;
  double total_acq_seconds = 0.0;
  for (const auto& p : phases) {
    total_fit_seconds += p.fit_seconds;
    total_acq_seconds += p.acq_seconds;
    tp.AddRow({p.phase, std::to_string(p.events),
               TablePrinter::Num(p.eval_seconds, 1),
               TablePrinter::Num(100.0 * p.eval_seconds /
                                     std::max(1e-12, total_eval_seconds),
                                 1) +
                   "%",
               TablePrinter::Num(p.fit_seconds, 3),
               TablePrinter::Num(p.acq_seconds, 3),
               p.best_seconds > 0.0 ? TablePrinter::Num(p.best_seconds, 1)
                                    : ""});
  }
  tp.AddRow({"total", std::to_string(total_events),
             TablePrinter::Num(total_eval_seconds, 1), "100.0%",
             TablePrinter::Num(total_fit_seconds, 3),
             TablePrinter::Num(total_acq_seconds, 3), ""});
  tp.Print(std::cout);

  if (have_summary) {
    const double drift =
        summary_opt > 0.0
            ? 100.0 * (total_eval_seconds - summary_opt) / summary_opt
            : 0.0;
    std::printf(
        "meter: %.1f s over %.0f evaluations | best %.1f s | "
        "phase sum vs meter: %+.2f%%\n",
        summary_opt, summary_evals, summary_best, drift);
  }
  if (have_sim_cache) {
    std::printf(
        "sim_cache: %.0f hits / %.0f misses (%.1f%% hit rate) | "
        "%.0f entries | %.0f evictions | %.0f collisions\n",
        cache_hits, cache_misses, 100.0 * cache_hit_rate, cache_entries,
        cache_evictions, cache_collisions);
  }
  if (have_linalg) {
    // The fit/acq columns are where the math kernels run (GP Gram +
    // Cholesky under "fit", PredictBatch under "acq"), so their split is
    // the kernel-time share of the tuner's own overhead.
    const double kern_seconds = total_fit_seconds + total_acq_seconds;
    const auto backend = static_cast<math::kern::Backend>(
        static_cast<int>(linalg_backend_id));
    std::printf(
        "linalg: %s dispatch | %.3f s in math kernels "
        "(fit %.1f%% / acq %.1f%%)\n",
        math::kern::BackendName(backend), kern_seconds,
        100.0 * total_fit_seconds / std::max(1e-12, kern_seconds),
        100.0 * total_acq_seconds / std::max(1e-12, kern_seconds));
  }
  if (have_sim_engine) {
    // batch_seconds / lanes_per_sec are wall-clock (machine-dependent);
    // the batch/seq counters themselves are deterministic.
    const auto engine = static_cast<sparksim::SimEngine>(
        static_cast<int>(engine_id));
    std::printf(
        "sim_engine: %s dispatch | %.0f batched runs (%.0f lanes, "
        "%.0f cells) / %.0f sequential runs | %.3f s in batch engine "
        "(%.0f lanes/s)\n",
        sparksim::SimEngineName(engine), engine_batch_batches,
        engine_batch_lanes, engine_batch_cells, engine_seq_batches,
        engine_batch_seconds, engine_lanes_per_sec);
  }
  for (const auto& s : serving) {
    std::printf(
        "serving: %-12s %.0f recommendations (%.0f reused, %.0f tuned) | "
        "%.0f failed runs | recommend p50 %.1f ms / p99 %.1f ms\n",
        s.app.c_str(), s.recommendations, s.reuses, s.tuning_passes,
        s.failed_reports, s.p50_s * 1e3, s.p99_s * 1e3);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Split argv into positionals and --flag value pairs (tune flags).
  std::vector<std::string> pos;
  ObsFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return Usage();
      common::ThreadPool::SetGlobalThreads(std::atoi(v));
    } else if (arg == "--simd") {
      const char* v = value();
      if (v == nullptr) return Usage();
      const auto status = locat::math::kern::SetBackendByName(v);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return Usage();
      }
    } else if (arg == "--sim-engine") {
      const char* v = value();
      if (v == nullptr) return Usage();
      const auto status = locat::sparksim::SetSimEngineByName(v);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return Usage();
      }
    } else if (arg == "--gp-mode") {
      const char* v = value();
      if (v == nullptr) return Usage();
      const auto status = locat::ml::SetGpModeByName(v);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return Usage();
      }
    } else if (arg == "--trace") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.trace_path = v;
    } else if (arg == "--metrics") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.metrics_path = v;
    } else if (arg == "--telemetry") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.telemetry_path = v;
    } else if (arg == "--sim-cache") {
      const char* v = value();
      if (v == nullptr || (std::strcmp(v, "on") != 0 &&
                           std::strcmp(v, "off") != 0)) {
        return Usage();
      }
      flags.sim_cache = (std::strcmp(v, "on") == 0);
    } else if (arg == "--sim-cache-cap") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.sim_cache_cap =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--faults") {
      const char* v = value();
      if (v == nullptr ||
          (std::strcmp(v, "off") != 0 && std::strcmp(v, "light") != 0 &&
           std::strcmp(v, "heavy") != 0)) {
        return Usage();
      }
      flags.faults = v;
    } else if (arg == "--fault-seed") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.fault_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--admin-port") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.admin_port = std::atoi(v);
      if (flags.admin_port < 0 || flags.admin_port > 65535) return Usage();
    } else if (arg == "--log-level") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.log_level = v;
    } else if (arg == "--log-file") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.log_file = v;
    } else if (arg == "--flight") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.flight_path = v;
    } else if (arg == "--rounds") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.rounds = std::atoi(v);
      if (flags.rounds < 1) return Usage();
    } else if (arg == "--serve-linger") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.serve_linger = std::atof(v);
    } else if (arg == "--serve-threads") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.serve_threads = std::atoi(v);
      if (flags.serve_threads < 1) return Usage();
    } else if (arg == "--registry-cap") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.registry_cap =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--registry-ttl") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.registry_ttl = std::atoi(v);
      if (flags.registry_ttl < 0) return Usage();
    } else if (arg == "--warm-start") {
      const char* v = value();
      if (v == nullptr || (std::strcmp(v, "on") != 0 &&
                           std::strcmp(v, "off") != 0)) {
        return Usage();
      }
      flags.warm_start = (std::strcmp(v, "on") == 0);
    } else if (arg == "--dump-confs") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.dump_confs_path = v;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      pos.push_back(arg);
    }
  }
  if (pos.empty()) return Usage();
  obs::FlightRecorder* flight = SetupProcessObs(flags);
  const std::string& cmd = pos[0];
  if (cmd == "catalog") return CmdCatalog();
  if (cmd == "apps") return CmdApps();
  if (cmd == "simulate" && pos.size() >= 4) {
    return CmdSimulate(pos[1], pos[2], std::atof(pos[3].c_str()));
  }
  if (cmd == "sweep" && pos.size() >= 5) {
    return CmdSweep(pos[1], pos[2], std::atof(pos[3].c_str()), pos[4]);
  }
  if (cmd == "qcsa" && pos.size() >= 3) {
    return CmdQcsa(pos[1], pos[2],
                   pos.size() >= 4 ? std::atoi(pos[3].c_str()) : 30);
  }
  if (cmd == "tune" && pos.size() >= 4) {
    return CmdTune(pos[1], pos[2], std::atof(pos[3].c_str()),
                   pos.size() >= 5 ? pos[4] : "LOCAT", flags, flight);
  }
  if (cmd == "serve" && pos.size() >= 2) {
    return CmdServe(pos[1],
                    std::vector<std::string>(pos.begin() + 2, pos.end()),
                    flags, flight);
  }
  if (cmd == "report" && pos.size() >= 2) {
    return CmdReport(pos[1]);
  }
  if (cmd == "check-metrics" && pos.size() >= 2) {
    return CmdCheckMetrics(pos[1]);
  }
  return Usage();
}
