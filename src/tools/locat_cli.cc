// locat — command-line front end for the library.
//
//   locat catalog                         # print the Table 2 parameter list
//   locat apps                            # list the built-in applications
//   locat simulate <app> <cluster> <ds>   # one run under Spark defaults
//   locat sweep <app> <cluster> <ds> <spark.param>
//                                         # single-parameter what-if sweep
//   locat qcsa <app> <cluster> [runs]     # query sensitivity analysis
//   locat tune <app> <cluster> <ds> [tuner]
//                                         # run LOCAT (or a baseline)
//   locat report <telemetry.jsonl>        # per-phase breakdown of a run
//
// `tune` accepts observability flags (see Usage) that write a Chrome
// trace, a Prometheus metrics snapshot, and per-iteration JSONL telemetry.
//
// Clusters: "arm" (4-node KUNPENG) or "x86" (8-node Xeon).
// Apps: TPC-DS, TPC-H, Join, Scan, Aggregation.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include <iostream>

#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "core/locat_tuner.h"
#include "core/qcsa.h"
#include "core/tuning.h"
#include "harness/experiments.h"
#include "math/kern/kern.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "sparksim/eval_cache.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;

int Usage() {
  std::fprintf(
      stderr,
      "usage: locat <command> [args]\n"
      "  catalog                          print the 38-parameter catalog\n"
      "  apps                             list built-in applications\n"
      "  simulate <app> <cluster> <ds>    run once under Spark defaults\n"
      "  sweep <app> <cluster> <ds> <p>   sweep one parameter\n"
      "  qcsa <app> <cluster> [runs]      query sensitivity analysis\n"
      "  tune <app> <cluster> <ds> [t]    tune (t: LOCAT|Tuneful|DAC|"
      "GBO-RL|QTune|Random)\n"
      "  report <telemetry.jsonl>         per-phase breakdown of a tune run\n"
      "tune flags:\n"
      "  --seed N            repetition salt for the tuner and simulator\n"
      "  --threads N         worker threads for the BO hot path (GP\n"
      "                      ensemble fits, acquisition scoring, RQA query\n"
      "                      evaluation); results are bit-identical for\n"
      "                      any N. Default: hardware concurrency\n"
      "  --simd MODE         math-kernel dispatch: native (default; best\n"
      "                      of AVX2/NEON/scalar for this CPU), scalar or\n"
      "                      off (both force the scalar backend); results\n"
      "                      are bit-identical for any mode. Overrides the\n"
      "                      LOCAT_SIMD environment variable\n"
      "  --trace FILE        write a Chrome trace_event JSON timeline\n"
      "                      (chrome://tracing, Perfetto); includes the\n"
      "                      simulated-time lane of the cluster simulator\n"
      "  --metrics FILE      write a Prometheus text metrics snapshot\n"
      "  --telemetry FILE    write per-iteration BO telemetry as JSONL\n"
      "                      (input of `locat report`)\n"
      "  --sim-cache on|off  memoize noise-free simulations, per query and\n"
      "                      per whole app run (default on; results are\n"
      "                      bit-identical either way)\n"
      "  --sim-cache-cap N   cache capacity in entries (default: env\n"
      "                      LOCAT_SIM_CACHE_CAP, else 1048576)\n"
      "  --faults LEVEL      deterministic fault injection: off (default),\n"
      "                      light or heavy — executor loss, stragglers,\n"
      "                      fetch-failure retries and OOM app kills; the\n"
      "                      tuner retries and imputes censored costs\n"
      "  --fault-seed N      seed of the fault schedule (same seed =>\n"
      "                      byte-identical run; independent of --seed)\n"
      "clusters: arm | x86; apps: TPC-DS | TPC-H | Join | Scan | "
      "Aggregation\n");
  return 2;
}

int CmdCatalog() {
  sparksim::ConfigSpace arm(sparksim::ArmCluster());
  sparksim::ConfigSpace x86(sparksim::X86Cluster());
  TablePrinter tp({"#", "parameter", "default", "Range A", "Range B"});
  for (int i = 0; i < sparksim::kNumParams; ++i) {
    const auto& spec = arm.spec(i);
    const bool is_bool = spec.kind == sparksim::ParamKind::kBool;
    tp.AddRow({std::to_string(i), spec.name,
               is_bool ? (spec.default_value > 0.5 ? "true" : "false")
                       : TablePrinter::Num(spec.default_value, 1),
               is_bool ? "true,false"
                       : TablePrinter::Num(arm.lo(i), 1) + "-" +
                             TablePrinter::Num(arm.hi(i), 1),
               is_bool ? "true,false"
                       : TablePrinter::Num(x86.lo(i), 1) + "-" +
                             TablePrinter::Num(x86.hi(i), 1)});
  }
  tp.Print(std::cout);
  return 0;
}

int CmdApps() {
  for (const auto& app : workloads::AllBenchmarks()) {
    std::printf("%-12s %3d queries\n", app.name.c_str(), app.num_queries());
  }
  std::printf("data sizes (Table 1): 100, 200, 300, 400, 500 GB\n");
  return 0;
}

int CmdSimulate(const std::string& app_name, const std::string& cluster,
                double ds) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster), 1);
  sparksim::ConfigSpace space(sim.cluster());
  const auto run =
      sim.RunApp(app, space.Repair(space.DefaultConf()), ds);
  std::printf("%s @ %.0f GB on %s under (repaired) Spark defaults:\n",
              app.name.c_str(), ds, cluster.c_str());
  std::printf("  total %.0f s | GC %.0f s | shuffle %.1f GB | OOM: %s\n",
              run.total_seconds, run.gc_seconds, run.shuffle_gb,
              run.any_oom ? "yes" : "no");
  // Slowest five queries.
  std::vector<size_t> order(run.per_query.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return run.per_query[a].exec_seconds > run.per_query[b].exec_seconds;
  });
  std::printf("  slowest queries:");
  for (size_t i = 0; i < order.size() && i < 5; ++i) {
    std::printf(" %s(%.0fs)", run.per_query[order[i]].name.c_str(),
                run.per_query[order[i]].exec_seconds);
  }
  std::printf("\n");
  return 0;
}

int CmdSweep(const std::string& app_name, const std::string& cluster,
             double ds, const std::string& param) {
  const auto app = harness::MakeApp(app_name);
  sparksim::SimParams params;
  params.noise_sigma = 0.0;
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster), 1, params);
  sparksim::ConfigSpace space(sim.cluster());
  const int idx = space.IndexOf(param);
  if (idx < 0) {
    std::fprintf(stderr, "unknown parameter: %s (see `locat catalog`)\n",
                 param.c_str());
    return 2;
  }
  sparksim::SparkConf base = space.DefaultConf();
  base.Set(sparksim::kExecutorInstances, 30);
  base.Set(sparksim::kExecutorCores, 4);
  base.Set(sparksim::kExecutorMemory, 16);
  base.Set(sparksim::kExecutorMemoryOverhead, 3072);
  base.Set(sparksim::kSqlShufflePartitions, 500);
  base = space.Repair(base);

  TablePrinter tp({param, "total (s)", "GC (s)", "OOM"});
  const bool is_bool =
      space.spec(idx).kind == sparksim::ParamKind::kBool;
  const int steps = is_bool ? 2 : 8;
  for (int s = 0; s < steps; ++s) {
    const double v = is_bool ? s
                             : space.lo(idx) + (space.hi(idx) - space.lo(idx)) *
                                                   s / (steps - 1);
    sparksim::SparkConf conf = base;
    conf.Set(static_cast<sparksim::ParamId>(idx), v);
    conf = space.Repair(conf);
    const auto run = sim.RunApp(app, conf, ds);
    tp.AddRow({TablePrinter::Num(conf.Get(static_cast<sparksim::ParamId>(idx)),
                                 2),
               TablePrinter::Num(run.total_seconds, 0),
               TablePrinter::Num(run.gc_seconds, 0),
               run.any_oom ? "yes" : ""});
  }
  tp.Print(std::cout);
  return 0;
}

int CmdQcsa(const std::string& app_name, const std::string& cluster,
            int runs) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster), 7);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(8);
  std::vector<std::vector<double>> times(
      static_cast<size_t>(app.num_queries()));
  for (int r = 0; r < runs; ++r) {
    const auto result = sim.RunApp(app, space.RandomValid(&rng), 100.0);
    for (size_t q = 0; q < result.per_query.size(); ++q) {
      times[q].push_back(result.per_query[q].exec_seconds);
    }
  }
  const auto qcsa = core::AnalyzeQuerySensitivity(times);
  if (!qcsa.ok()) {
    std::fprintf(stderr, "QCSA failed: %s\n",
                 qcsa.status().ToString().c_str());
    return 1;
  }
  std::printf("CV threshold %.3f; %zu CSQ / %zu CIQ\n", qcsa->threshold,
              qcsa->csq_indices.size(), qcsa->ciq_indices.size());
  std::printf("configuration-sensitive queries:");
  for (int idx : qcsa->csq_indices) {
    std::printf(" %s(%.2f)", app.queries[static_cast<size_t>(idx)].name.c_str(),
                qcsa->cv[static_cast<size_t>(idx)]);
  }
  std::printf("\n");
  return 0;
}

/// Observability flags of `tune`, parsed out of argv before the
/// positional arguments.
struct ObsFlags {
  uint64_t seed = 0;
  std::string trace_path;
  std::string metrics_path;
  std::string telemetry_path;
  bool sim_cache = true;
  size_t sim_cache_cap = 0;  // 0: LOCAT_SIM_CACHE_CAP env / built-in default
  std::string faults = "off";
  uint64_t fault_seed = 0;
};

int CmdTune(const std::string& app_name, const std::string& cluster,
            double ds, const std::string& tuner_name, const ObsFlags& flags) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster),
                                 21 + flags.seed);
  // The eval cache memoizes the noise-free per-query simulation; it only
  // changes wall-clock, never results (--sim-cache off to compare).
  std::unique_ptr<sparksim::EvalCache> sim_cache;
  if (flags.sim_cache) {
    sim_cache = std::make_unique<sparksim::EvalCache>(
        flags.sim_cache_cap > 0 ? flags.sim_cache_cap
                                : sparksim::EvalCache::CapacityFromEnv());
    sim.set_eval_cache(sim_cache.get());
  }
  if (flags.faults != "off") {
    const auto spec_or =
        sparksim::FaultSpec::FromName(flags.faults, flags.fault_seed);
    if (!spec_or.ok()) {
      std::fprintf(stderr, "%s\n", spec_or.status().ToString().c_str());
      return 2;
    }
    sim.set_faults(*spec_or);
  }
  core::TuningSession session(&sim, app);
  auto tuner = harness::MakeTuner(tuner_name, flags.seed);

  // Observability sinks: each is wired only when its output was requested,
  // so a plain `tune` keeps the all-null (zero-cost) path.
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  std::ofstream telemetry_os;
  std::unique_ptr<obs::JsonlObserver> observer;
  obs::ObsContext ctx;
  if (!flags.trace_path.empty()) {
    ctx.tracer = &tracer;
    sim.set_tracer(&tracer);
  }
  if (!flags.metrics_path.empty()) ctx.metrics = &metrics;
  if (!flags.telemetry_path.empty()) {
    telemetry_os.open(flags.telemetry_path);
    if (!telemetry_os) {
      std::fprintf(stderr, "cannot write %s\n",
                   flags.telemetry_path.c_str());
      return 1;
    }
    observer = std::make_unique<obs::JsonlObserver>(&telemetry_os);
    ctx.observer = observer.get();
  }
  if (ctx.any()) {
    session.SetObservability(ctx);
    tuner->SetObservability(ctx);
  }

  std::printf("Tuning %s @ %.0f GB on %s with %s...\n", app.name.c_str(), ds,
              cluster.c_str(), tuner->name().c_str());
  const auto result = tuner->Tune(&session, ds);
  // Under fault injection a final measurement can die too — retry for a
  // completed run (the retries draw from the deterministic fault stream,
  // so repeated invocations still print identical output).
  auto measure = [&](const sparksim::SparkConf& conf) {
    sparksim::AppRunResult run;
    for (int attempt = 0; attempt < 9; ++attempt) {
      run = session.MeasureFinal(conf, ds);
      if (!run.failed) break;
    }
    return run;
  };
  const sparksim::AppRunResult tuned_run = measure(result.best_conf);
  const sparksim::AppRunResult dflt_run = measure(
      session.space().Repair(session.space().DefaultConf()));
  const double tuned = tuned_run.total_seconds;
  const double dflt = dflt_run.total_seconds;
  std::printf("evaluations: %d | optimization time: %.1f simulated hours\n",
              result.evaluations, result.optimization_seconds / 3600.0);
  std::printf("tuned run: %.0f s%s | defaults: %.0f s%s | improvement %.1fx\n",
              tuned, tuned_run.failed ? " (failed)" : "", dflt,
              dflt_run.failed ? " (failed)" : "", dflt / tuned);
  if (sim.faults().enabled()) {
    const sparksim::FaultStats& fs = sim.fault_stats();
    std::printf(
        "faults(%s, seed %llu): %llu executor losses | %llu stragglers | "
        "%llu fetch failures | %llu app kills | %d failed evals\n",
        flags.faults.c_str(),
        static_cast<unsigned long long>(flags.fault_seed),
        static_cast<unsigned long long>(fs.executor_losses),
        static_cast<unsigned long long>(fs.stragglers),
        static_cast<unsigned long long>(fs.fetch_failures),
        static_cast<unsigned long long>(fs.app_kills),
        result.failed_evaluations);
    if (ctx.metrics != nullptr) {
      metrics
          .GetCounter("locat_sim_faults_executor_loss_total",
                      "Injected executor-loss events")
          ->Increment(static_cast<double>(fs.executor_losses));
      metrics
          .GetCounter("locat_sim_faults_straggler_total",
                      "Injected straggler events")
          ->Increment(static_cast<double>(fs.stragglers));
      metrics
          .GetCounter("locat_sim_faults_fetch_failure_total",
                      "Injected fetch-failure stage retries")
          ->Increment(static_cast<double>(fs.fetch_failures));
      metrics
          .GetCounter("locat_sim_faults_app_kill_total",
                      "Injected hard application kills")
          ->Increment(static_cast<double>(fs.app_kills));
      metrics
          .GetCounter("locat_sim_faults_failed_runs_total",
                      "Simulated app runs that ended failed")
          ->Increment(static_cast<double>(fs.failed_runs));
    }
    if (ctx.observer != nullptr) {
      obs::PhaseEvent ev;
      ev.tuner = tuner->name();
      ev.phase = "faults";
      ev.fields = {
          {"executor_losses", static_cast<double>(fs.executor_losses)},
          {"stragglers", static_cast<double>(fs.stragglers)},
          {"fetch_failures", static_cast<double>(fs.fetch_failures)},
          {"app_kills", static_cast<double>(fs.app_kills)},
          {"failed_runs", static_cast<double>(fs.failed_runs)},
          {"failed_evals", static_cast<double>(result.failed_evaluations)},
      };
      ctx.observer->OnPhase(ev);
    }
  }
  if (sim_cache != nullptr) {
    const sparksim::EvalCacheStats cs = sim_cache->stats();
    std::printf(
        "sim cache: %llu hits / %llu misses (%.1f%% hit rate, "
        "%llu whole-run hits), %zu entries, %llu evictions\n",
        static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses), 100.0 * cs.hit_rate(),
        static_cast<unsigned long long>(cs.app_hits), sim_cache->size(),
        static_cast<unsigned long long>(cs.evictions));
    if (ctx.observer != nullptr) {
      obs::PhaseEvent ev;
      ev.tuner = tuner->name();
      ev.phase = "sim_cache";
      ev.fields = {
          {"hits", static_cast<double>(cs.hits)},
          {"misses", static_cast<double>(cs.misses)},
          {"evictions", static_cast<double>(cs.evictions)},
          {"collisions", static_cast<double>(cs.collisions)},
          {"insertions", static_cast<double>(cs.insertions)},
          {"entries", static_cast<double>(cs.entries)},
          {"app_hits", static_cast<double>(cs.app_hits)},
          {"app_misses", static_cast<double>(cs.app_misses)},
          {"hit_rate", cs.hit_rate()},
      };
      ctx.observer->OnPhase(ev);
    }
    if (ctx.metrics != nullptr) sim_cache->ExportMetrics(ctx.metrics);
  }
  std::printf("linalg: %s dispatch\n", math::kern::ActiveBackendName());
  if (ctx.observer != nullptr) {
    obs::PhaseEvent ev;
    ev.tuner = tuner->name();
    ev.phase = "linalg";
    ev.fields = {
        {"backend_id",
         static_cast<double>(math::kern::ActiveBackend())},
    };
    ctx.observer->OnPhase(ev);
  }
  std::printf("\n%s\n", result.best_conf.ToString().c_str());

  if (!flags.trace_path.empty()) {
    std::ofstream os(flags.trace_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", flags.trace_path.c_str());
      return 1;
    }
    tracer.WriteChromeTrace(os);
    std::printf("trace: %s (%zu events)\n", flags.trace_path.c_str(),
                tracer.event_count());
  }
  if (!flags.metrics_path.empty()) {
    std::ofstream os(flags.metrics_path);
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", flags.metrics_path.c_str());
      return 1;
    }
    metrics.WritePrometheus(os);
    std::printf("metrics: %s\n", flags.metrics_path.c_str());
  }
  if (!flags.telemetry_path.empty()) {
    telemetry_os.close();
    std::printf("telemetry: %s\n", flags.telemetry_path.c_str());
  }
  return 0;
}

int CmdReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto parsed = obs::ParseTelemetry(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }

  // Aggregate iteration events by phase, in first-seen order.
  struct PhaseAgg {
    std::string phase;
    int events = 0;
    double eval_seconds = 0.0;
    double fit_seconds = 0.0;  // surrogate (DAGP) fitting wall time
    double acq_seconds = 0.0;  // acquisition-scoring wall time
    double best_seconds = 0.0;
  };
  std::vector<PhaseAgg> phases;
  std::string tuner;
  double total_eval_seconds = 0.0;
  int total_events = 0;
  double summary_opt = 0.0;
  double summary_best = 0.0;
  double summary_evals = 0.0;
  bool have_summary = false;
  bool have_sim_cache = false;
  bool have_linalg = false;
  double linalg_backend_id = 0.0;
  double cache_hits = 0.0;
  double cache_misses = 0.0;
  double cache_evictions = 0.0;
  double cache_collisions = 0.0;
  double cache_entries = 0.0;
  double cache_hit_rate = 0.0;
  for (const auto& rec : parsed.value()) {
    if (rec.type == "iteration") {
      if (tuner.empty()) tuner = rec.Str("tuner");
      const std::string phase = rec.Str("phase");
      PhaseAgg* agg = nullptr;
      for (auto& p : phases) {
        if (p.phase == phase) {
          agg = &p;
          break;
        }
      }
      if (agg == nullptr) {
        phases.push_back(PhaseAgg{phase});
        agg = &phases.back();
      }
      const double eval = rec.Num("eval_seconds");
      const double incumbent = rec.Num("incumbent_seconds");
      ++agg->events;
      agg->eval_seconds += eval;
      agg->fit_seconds += rec.Num("dagp_fit_seconds");
      agg->acq_seconds += rec.Num("acq_seconds");
      if (incumbent > 0.0 &&
          (agg->best_seconds <= 0.0 || incumbent < agg->best_seconds)) {
        agg->best_seconds = incumbent;
      }
      ++total_events;
      total_eval_seconds += eval;
    } else if (rec.type == "phase" && rec.Str("phase") == "summary") {
      have_summary = true;
      summary_opt = rec.Num("optimization_seconds");
      summary_best = rec.Num("best_seconds");
      summary_evals = rec.Num("evaluations");
    } else if (rec.type == "phase" && rec.Str("phase") == "linalg") {
      have_linalg = true;
      linalg_backend_id = rec.Num("backend_id");
    } else if (rec.type == "phase" && rec.Str("phase") == "sim_cache") {
      have_sim_cache = true;
      cache_hits = rec.Num("hits");
      cache_misses = rec.Num("misses");
      cache_evictions = rec.Num("evictions");
      cache_collisions = rec.Num("collisions");
      cache_entries = rec.Num("entries");
      cache_hit_rate = rec.Num("hit_rate");
    }
  }
  if (total_events == 0) {
    std::fprintf(stderr, "%s: no iteration events\n", path.c_str());
    return 1;
  }

  if (!tuner.empty()) std::printf("tuner: %s\n", tuner.c_str());
  // "fit" and "acq" split the tuner's own per-iteration overhead into
  // surrogate fitting and acquisition scoring (real wall time, not
  // simulated seconds); "charged" remains the simulated evaluation cost.
  TablePrinter tp({"phase", "evals", "charged (s)", "share", "fit (s)",
                   "acq (s)", "best (s)"});
  double total_fit_seconds = 0.0;
  double total_acq_seconds = 0.0;
  for (const auto& p : phases) {
    total_fit_seconds += p.fit_seconds;
    total_acq_seconds += p.acq_seconds;
    tp.AddRow({p.phase, std::to_string(p.events),
               TablePrinter::Num(p.eval_seconds, 1),
               TablePrinter::Num(100.0 * p.eval_seconds /
                                     std::max(1e-12, total_eval_seconds),
                                 1) +
                   "%",
               TablePrinter::Num(p.fit_seconds, 3),
               TablePrinter::Num(p.acq_seconds, 3),
               p.best_seconds > 0.0 ? TablePrinter::Num(p.best_seconds, 1)
                                    : ""});
  }
  tp.AddRow({"total", std::to_string(total_events),
             TablePrinter::Num(total_eval_seconds, 1), "100.0%",
             TablePrinter::Num(total_fit_seconds, 3),
             TablePrinter::Num(total_acq_seconds, 3), ""});
  tp.Print(std::cout);

  if (have_summary) {
    const double drift =
        summary_opt > 0.0
            ? 100.0 * (total_eval_seconds - summary_opt) / summary_opt
            : 0.0;
    std::printf(
        "meter: %.1f s over %.0f evaluations | best %.1f s | "
        "phase sum vs meter: %+.2f%%\n",
        summary_opt, summary_evals, summary_best, drift);
  }
  if (have_sim_cache) {
    std::printf(
        "sim_cache: %.0f hits / %.0f misses (%.1f%% hit rate) | "
        "%.0f entries | %.0f evictions | %.0f collisions\n",
        cache_hits, cache_misses, 100.0 * cache_hit_rate, cache_entries,
        cache_evictions, cache_collisions);
  }
  if (have_linalg) {
    // The fit/acq columns are where the math kernels run (GP Gram +
    // Cholesky under "fit", PredictBatch under "acq"), so their split is
    // the kernel-time share of the tuner's own overhead.
    const double kern_seconds = total_fit_seconds + total_acq_seconds;
    const auto backend = static_cast<math::kern::Backend>(
        static_cast<int>(linalg_backend_id));
    std::printf(
        "linalg: %s dispatch | %.3f s in math kernels "
        "(fit %.1f%% / acq %.1f%%)\n",
        math::kern::BackendName(backend), kern_seconds,
        100.0 * total_fit_seconds / std::max(1e-12, kern_seconds),
        100.0 * total_acq_seconds / std::max(1e-12, kern_seconds));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Split argv into positionals and --flag value pairs (tune flags).
  std::vector<std::string> pos;
  ObsFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seed") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = value();
      if (v == nullptr) return Usage();
      common::ThreadPool::SetGlobalThreads(std::atoi(v));
    } else if (arg == "--simd") {
      const char* v = value();
      if (v == nullptr) return Usage();
      const auto status = locat::math::kern::SetBackendByName(v);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return Usage();
      }
    } else if (arg == "--trace") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.trace_path = v;
    } else if (arg == "--metrics") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.metrics_path = v;
    } else if (arg == "--telemetry") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.telemetry_path = v;
    } else if (arg == "--sim-cache") {
      const char* v = value();
      if (v == nullptr || (std::strcmp(v, "on") != 0 &&
                           std::strcmp(v, "off") != 0)) {
        return Usage();
      }
      flags.sim_cache = (std::strcmp(v, "on") == 0);
    } else if (arg == "--sim-cache-cap") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.sim_cache_cap =
          static_cast<size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--faults") {
      const char* v = value();
      if (v == nullptr ||
          (std::strcmp(v, "off") != 0 && std::strcmp(v, "light") != 0 &&
           std::strcmp(v, "heavy") != 0)) {
        return Usage();
      }
      flags.faults = v;
    } else if (arg == "--fault-seed") {
      const char* v = value();
      if (v == nullptr) return Usage();
      flags.fault_seed = std::strtoull(v, nullptr, 10);
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    } else {
      pos.push_back(arg);
    }
  }
  if (pos.empty()) return Usage();
  const std::string& cmd = pos[0];
  if (cmd == "catalog") return CmdCatalog();
  if (cmd == "apps") return CmdApps();
  if (cmd == "simulate" && pos.size() >= 4) {
    return CmdSimulate(pos[1], pos[2], std::atof(pos[3].c_str()));
  }
  if (cmd == "sweep" && pos.size() >= 5) {
    return CmdSweep(pos[1], pos[2], std::atof(pos[3].c_str()), pos[4]);
  }
  if (cmd == "qcsa" && pos.size() >= 3) {
    return CmdQcsa(pos[1], pos[2],
                   pos.size() >= 4 ? std::atoi(pos[3].c_str()) : 30);
  }
  if (cmd == "tune" && pos.size() >= 4) {
    return CmdTune(pos[1], pos[2], std::atof(pos[3].c_str()),
                   pos.size() >= 5 ? pos[4] : "LOCAT", flags);
  }
  if (cmd == "report" && pos.size() >= 2) {
    return CmdReport(pos[1]);
  }
  return Usage();
}
