// locat — command-line front end for the library.
//
//   locat catalog                         # print the Table 2 parameter list
//   locat apps                            # list the built-in applications
//   locat simulate <app> <cluster> <ds>   # one run under Spark defaults
//   locat sweep <app> <cluster> <ds> <spark.param>
//                                         # single-parameter what-if sweep
//   locat qcsa <app> <cluster> [runs]     # query sensitivity analysis
//   locat tune <app> <cluster> <ds> [tuner]
//                                         # run LOCAT (or a baseline)
//
// Clusters: "arm" (4-node KUNPENG) or "x86" (8-node Xeon).
// Apps: TPC-DS, TPC-H, Join, Scan, Aggregation.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>

#include <iostream>

#include "common/table_printer.h"
#include "core/locat_tuner.h"
#include "core/qcsa.h"
#include "core/tuning.h"
#include "harness/experiments.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace {

using namespace locat;

int Usage() {
  std::fprintf(
      stderr,
      "usage: locat <command> [args]\n"
      "  catalog                          print the 38-parameter catalog\n"
      "  apps                             list built-in applications\n"
      "  simulate <app> <cluster> <ds>    run once under Spark defaults\n"
      "  sweep <app> <cluster> <ds> <p>   sweep one parameter\n"
      "  qcsa <app> <cluster> [runs]      query sensitivity analysis\n"
      "  tune <app> <cluster> <ds> [t]    tune (t: LOCAT|Tuneful|DAC|"
      "GBO-RL|QTune|Random)\n"
      "clusters: arm | x86; apps: TPC-DS | TPC-H | Join | Scan | "
      "Aggregation\n");
  return 2;
}

int CmdCatalog() {
  sparksim::ConfigSpace arm(sparksim::ArmCluster());
  sparksim::ConfigSpace x86(sparksim::X86Cluster());
  TablePrinter tp({"#", "parameter", "default", "Range A", "Range B"});
  for (int i = 0; i < sparksim::kNumParams; ++i) {
    const auto& spec = arm.spec(i);
    const bool is_bool = spec.kind == sparksim::ParamKind::kBool;
    tp.AddRow({std::to_string(i), spec.name,
               is_bool ? (spec.default_value > 0.5 ? "true" : "false")
                       : TablePrinter::Num(spec.default_value, 1),
               is_bool ? "true,false"
                       : TablePrinter::Num(arm.lo(i), 1) + "-" +
                             TablePrinter::Num(arm.hi(i), 1),
               is_bool ? "true,false"
                       : TablePrinter::Num(x86.lo(i), 1) + "-" +
                             TablePrinter::Num(x86.hi(i), 1)});
  }
  tp.Print(std::cout);
  return 0;
}

int CmdApps() {
  for (const auto& app : workloads::AllBenchmarks()) {
    std::printf("%-12s %3d queries\n", app.name.c_str(), app.num_queries());
  }
  std::printf("data sizes (Table 1): 100, 200, 300, 400, 500 GB\n");
  return 0;
}

int CmdSimulate(const std::string& app_name, const std::string& cluster,
                double ds) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster), 1);
  sparksim::ConfigSpace space(sim.cluster());
  const auto run =
      sim.RunApp(app, space.Repair(space.DefaultConf()), ds);
  std::printf("%s @ %.0f GB on %s under (repaired) Spark defaults:\n",
              app.name.c_str(), ds, cluster.c_str());
  std::printf("  total %.0f s | GC %.0f s | shuffle %.1f GB | OOM: %s\n",
              run.total_seconds, run.gc_seconds, run.shuffle_gb,
              run.any_oom ? "yes" : "no");
  // Slowest five queries.
  std::vector<size_t> order(run.per_query.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return run.per_query[a].exec_seconds > run.per_query[b].exec_seconds;
  });
  std::printf("  slowest queries:");
  for (size_t i = 0; i < order.size() && i < 5; ++i) {
    std::printf(" %s(%.0fs)", run.per_query[order[i]].name.c_str(),
                run.per_query[order[i]].exec_seconds);
  }
  std::printf("\n");
  return 0;
}

int CmdSweep(const std::string& app_name, const std::string& cluster,
             double ds, const std::string& param) {
  const auto app = harness::MakeApp(app_name);
  sparksim::SimParams params;
  params.noise_sigma = 0.0;
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster), 1, params);
  sparksim::ConfigSpace space(sim.cluster());
  const int idx = space.IndexOf(param);
  if (idx < 0) {
    std::fprintf(stderr, "unknown parameter: %s (see `locat catalog`)\n",
                 param.c_str());
    return 2;
  }
  sparksim::SparkConf base = space.DefaultConf();
  base.Set(sparksim::kExecutorInstances, 30);
  base.Set(sparksim::kExecutorCores, 4);
  base.Set(sparksim::kExecutorMemory, 16);
  base.Set(sparksim::kExecutorMemoryOverhead, 3072);
  base.Set(sparksim::kSqlShufflePartitions, 500);
  base = space.Repair(base);

  TablePrinter tp({param, "total (s)", "GC (s)", "OOM"});
  const bool is_bool =
      space.spec(idx).kind == sparksim::ParamKind::kBool;
  const int steps = is_bool ? 2 : 8;
  for (int s = 0; s < steps; ++s) {
    const double v = is_bool ? s
                             : space.lo(idx) + (space.hi(idx) - space.lo(idx)) *
                                                   s / (steps - 1);
    sparksim::SparkConf conf = base;
    conf.Set(static_cast<sparksim::ParamId>(idx), v);
    conf = space.Repair(conf);
    const auto run = sim.RunApp(app, conf, ds);
    tp.AddRow({TablePrinter::Num(conf.Get(static_cast<sparksim::ParamId>(idx)),
                                 2),
               TablePrinter::Num(run.total_seconds, 0),
               TablePrinter::Num(run.gc_seconds, 0),
               run.any_oom ? "yes" : ""});
  }
  tp.Print(std::cout);
  return 0;
}

int CmdQcsa(const std::string& app_name, const std::string& cluster,
            int runs) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster), 7);
  sparksim::ConfigSpace space(sim.cluster());
  Rng rng(8);
  std::vector<std::vector<double>> times(
      static_cast<size_t>(app.num_queries()));
  for (int r = 0; r < runs; ++r) {
    const auto result = sim.RunApp(app, space.RandomValid(&rng), 100.0);
    for (size_t q = 0; q < result.per_query.size(); ++q) {
      times[q].push_back(result.per_query[q].exec_seconds);
    }
  }
  const auto qcsa = core::AnalyzeQuerySensitivity(times);
  if (!qcsa.ok()) {
    std::fprintf(stderr, "QCSA failed: %s\n",
                 qcsa.status().ToString().c_str());
    return 1;
  }
  std::printf("CV threshold %.3f; %zu CSQ / %zu CIQ\n", qcsa->threshold,
              qcsa->csq_indices.size(), qcsa->ciq_indices.size());
  std::printf("configuration-sensitive queries:");
  for (int idx : qcsa->csq_indices) {
    std::printf(" %s(%.2f)", app.queries[static_cast<size_t>(idx)].name.c_str(),
                qcsa->cv[static_cast<size_t>(idx)]);
  }
  std::printf("\n");
  return 0;
}

int CmdTune(const std::string& app_name, const std::string& cluster,
            double ds, const std::string& tuner_name) {
  const auto app = harness::MakeApp(app_name);
  sparksim::ClusterSimulator sim(harness::MakeCluster(cluster), 21);
  core::TuningSession session(&sim, app);
  auto tuner = harness::MakeTuner(tuner_name, 0);
  std::printf("Tuning %s @ %.0f GB on %s with %s...\n", app.name.c_str(), ds,
              cluster.c_str(), tuner->name().c_str());
  const auto result = tuner->Tune(&session, ds);
  const double tuned =
      session.MeasureFinal(result.best_conf, ds).total_seconds;
  const double dflt =
      session
          .MeasureFinal(session.space().Repair(session.space().DefaultConf()),
                        ds)
          .total_seconds;
  std::printf("evaluations: %d | optimization time: %.1f simulated hours\n",
              result.evaluations, result.optimization_seconds / 3600.0);
  std::printf("tuned run: %.0f s | defaults: %.0f s | improvement %.1fx\n",
              tuned, dflt, dflt / tuned);
  std::printf("\n%s\n", result.best_conf.ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "catalog") return CmdCatalog();
  if (cmd == "apps") return CmdApps();
  if (cmd == "simulate" && argc >= 5) {
    return CmdSimulate(argv[2], argv[3], std::atof(argv[4]));
  }
  if (cmd == "sweep" && argc >= 6) {
    return CmdSweep(argv[2], argv[3], std::atof(argv[4]), argv[5]);
  }
  if (cmd == "qcsa" && argc >= 4) {
    return CmdQcsa(argv[2], argv[3], argc >= 5 ? std::atoi(argv[4]) : 30);
  }
  if (cmd == "tune" && argc >= 5) {
    return CmdTune(argv[2], argv[3], std::atof(argv[4]),
                   argc >= 6 ? argv[5] : "LOCAT");
  }
  return Usage();
}
