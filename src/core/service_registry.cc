#include "core/service_registry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <future>
#include <utility>

#include "obs/clock.h"
#include "sparksim/properties_io.h"

namespace locat::core {
namespace {

/// Microsecond-resolution buckets for the lookup path (the generic
/// latency buckets start too coarse for a ~µs hot path).
std::vector<double> LookupLatencyBuckets() {
  return {1e-6, 2e-6,   5e-6, 1e-5, 2e-5, 5e-5,
          1e-4, 2.5e-4, 1e-3, 1e-2, 1e-1, 1.0};
}

/// FNV-1a, fixed across platforms so shard assignment (and therefore the
/// statusz occupancy table) is stable everywhere.
uint64_t HashName(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

constexpr size_t kFingerprintDim = 17;

}  // namespace

AppFingerprint AppFingerprint::FromProfile(const sparksim::SparkSqlApp& app) {
  AppFingerprint fp;
  fp.features = math::Vector(kFingerprintDim, 0.0);
  const size_t n = app.queries.size();
  if (n == 0) return fp;
  const double inv = 1.0 / static_cast<double>(n);
  double frac_sel = 0, frac_join = 0, frac_agg = 0;
  double input = 0, shuffle = 0, cpu = 0, shuffle_cpu = 0, stages = 0;
  double broadcast = 0, mem = 0, skew = 0, cartesian = 0, rescan = 0;
  for (const auto& q : app.queries) {
    switch (q.category) {
      case sparksim::QueryCategory::kSelection: frac_sel += inv; break;
      case sparksim::QueryCategory::kJoin: frac_join += inv; break;
      case sparksim::QueryCategory::kAggregation: frac_agg += inv; break;
    }
    input += q.input_frac * inv;
    shuffle += std::min(1.0, q.shuffle_ratio) * inv;
    cpu += q.cpu_per_gb * inv;
    shuffle_cpu += q.shuffle_cpu_per_gb * inv;
    stages += static_cast<double>(q.num_shuffle_stages) * inv;
    broadcast += (q.broadcastable_mb > 0.0 ? 1.0 : 0.0) * inv;
    mem += q.mem_per_task_factor * inv;
    skew += q.skew * inv;
    cartesian += (q.has_cartesian ? 1.0 : 0.0) * inv;
    rescan += q.rescan_frac * inv;
  }
  math::Vector& f = fp.features;
  // Scales chosen so typical TPC-DS/TPC-H profiles land in ~[0, 1]; the
  // distance is unweighted Euclidean on top.
  f[0] = std::log1p(static_cast<double>(n)) / 4.0;
  f[1] = frac_sel;
  f[2] = frac_join;
  f[3] = frac_agg;
  f[4] = input;
  f[5] = shuffle;
  f[6] = std::min(1.0, cpu / 20.0);
  f[7] = std::min(1.0, shuffle_cpu / 20.0);
  f[8] = std::min(1.0, stages / 4.0);
  f[9] = broadcast;
  f[10] = std::min(1.0, mem / 4.0);
  f[11] = std::min(1.0, skew / 3.0);
  f[12] = cartesian;
  f[13] = rescan;
  // [14..16] stay 0 ("sensitivity unknown") until AddSensitivity.
  return fp;
}

void AppFingerprint::AddSensitivity(const QcsaResult& qcsa, int num_queries) {
  if (features.size() != kFingerprintDim) {
    features = math::Vector(kFingerprintDim, 0.0);
  }
  const double nq = std::max(1, num_queries);
  features[14] = static_cast<double>(qcsa.csq_indices.size()) / nq;
  features[15] = std::min(1.0, qcsa.threshold);
  features[16] = std::min(1.0, qcsa.max_cv - qcsa.min_cv);
}

double AppFingerprint::Distance(const AppFingerprint& a,
                                const AppFingerprint& b) {
  if (a.features.size() != b.features.size()) return 1e300;
  double sum = 0.0;
  for (size_t i = 0; i < a.features.size(); ++i) {
    const double d = a.features[i] - b.features[i];
    sum += d * d;
  }
  return std::sqrt(sum);
}

ServiceRegistry::ServiceRegistry(BackendFactory factory, Options options)
    : factory_(std::move(factory)),
      options_(options),
      tune_pool_(std::max(1, options.tune_threads)),
      lookup_latency_("locat_registry_lookup_seconds",
                      "Wall-clock latency of ServiceRegistry::Lookup",
                      LookupLatencyBuckets()) {
  for (auto& shard : shards_) {
    shard.map.store(std::make_shared<const EntryMap>(),
                    std::memory_order_release);
  }
  clock_latency_.store(options_.track_latency, std::memory_order_release);
}

ServiceRegistry::~ServiceRegistry() = default;

size_t ServiceRegistry::ShardIndex(const std::string& app) {
  return static_cast<size_t>(HashName(app) % kNumShards);
}

void ServiceRegistry::SetObservability(const obs::ObsContext& obs) {
  obs_ = obs;
  if (obs_.metrics != nullptr) {
    obs::CounterFamily* lookups = obs_.metrics->GetCounterFamily(
        "locat_registry_lookups_total",
        "Registry lookups, by how the request was answered");
    m_hit_ = lookups->WithLabels(obs::LabelSet({{"result", "hit"}}));
    m_miss_ = lookups->WithLabels(obs::LabelSet({{"result", "miss"}}));
    m_coalesced_ =
        lookups->WithLabels(obs::LabelSet({{"result", "coalesced"}}));
    obs::CounterFamily* retunes = obs_.metrics->GetCounterFamily(
        "locat_registry_retunes_total",
        "Tuning passes triggered through the registry, by reason");
    m_retune_cold_ = retunes->WithLabels(obs::LabelSet({{"reason", "cold"}}));
    m_retune_drift_ =
        retunes->WithLabels(obs::LabelSet({{"reason", "drift"}}));
    obs::CounterFamily* evictions = obs_.metrics->GetCounterFamily(
        "locat_registry_evictions_total", "Evicted registry entries");
    m_evict_ttl_ = evictions->WithLabels(obs::LabelSet({{"reason", "ttl"}}));
    m_evict_cap_ =
        evictions->WithLabels(obs::LabelSet({{"reason", "capacity"}}));
    m_warm_starts_ = obs_.metrics->GetCounter(
        "locat_registry_warm_starts_total",
        "Admissions seeded with transferred prior observations");
    m_lookup_latency_ = obs_.metrics->GetHistogram(
        "locat_registry_lookup_seconds",
        "Wall-clock latency of ServiceRegistry::Lookup",
        LookupLatencyBuckets());
    clock_latency_.store(true, std::memory_order_release);
  } else {
    m_hit_ = nullptr;
    m_miss_ = nullptr;
    m_coalesced_ = nullptr;
    m_retune_cold_ = nullptr;
    m_retune_drift_ = nullptr;
    m_evict_ttl_ = nullptr;
    m_evict_cap_ = nullptr;
    m_warm_starts_ = nullptr;
    m_lookup_latency_ = nullptr;
    clock_latency_.store(options_.track_latency, std::memory_order_release);
  }
  // Re-wire entries admitted before the context arrived. Entry mutexes
  // are taken with no shard mutex held (eviction locks entry before
  // shard, so nesting the other way here could deadlock).
  std::vector<std::shared_ptr<Entry>> entries;
  for (auto& shard : shards_) {
    const std::shared_ptr<const EntryMap> map =
        shard.map.load(std::memory_order_acquire);
    for (const auto& [name, entry] : *map) entries.push_back(entry);
  }
  for (const auto& entry : entries) {
    std::unique_lock<std::mutex> el(entry->mu);
    entry->done.wait(el, [&] { return !entry->tuning_in_flight; });
    entry->backend->service()->SetObservability(obs_);
  }
}

std::vector<LocatTuner::PriorObservation>
ServiceRegistry::BuildPriorsLocked(const std::string& app,
                                   const AppFingerprint& fp,
                                   std::vector<int>* csq_hint) const {
  // Candidate donors: live tuned apps plus the persisted history of
  // evicted ones. Sorted by (distance, name) so donor choice is a pure
  // function of the store's content — never of request timing.
  struct Donor {
    double distance;
    const std::string* name;
    const TransferRecord* record;
  };
  std::vector<Donor> donors;
  auto consider = [&](const std::map<std::string, TransferRecord>& store) {
    for (const auto& [name, rec] : store) {
      if (name == app || rec.observations.empty()) continue;
      donors.push_back(
          {AppFingerprint::Distance(fp, rec.fingerprint), &name, &rec});
    }
  };
  consider(transfer_store_);
  consider(evicted_store_);
  std::sort(donors.begin(), donors.end(), [](const Donor& a, const Donor& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return *a.name < *b.name;
  });
  if (donors.size() > static_cast<size_t>(std::max(0, options_.transfer_k))) {
    donors.resize(static_cast<size_t>(options_.transfer_k));
  }
  if (donors.empty() || options_.transfer_cap == 0) return {};
  // The RQA hint comes from the single nearest donor: mixing CSQ sets
  // from donors at different distances would dilute the sensitivity
  // signal the fingerprint match just established.
  if (csq_hint != nullptr && !donors.front().record->csq.empty()) {
    *csq_hint = donors.front().record->csq;
  }

  // Inverse-distance weights decide how much of the (capped) budget each
  // donor contributes; remainders go to the nearest donors first.
  double weight_sum = 0.0;
  for (const auto& d : donors) weight_sum += 1.0 / (1.0 + d.distance);
  std::vector<size_t> take(donors.size(), 0);
  size_t allocated = 0;
  for (size_t i = 0; i < donors.size(); ++i) {
    const double w = (1.0 / (1.0 + donors[i].distance)) / weight_sum;
    take[i] = std::min(donors[i].record->observations.size(),
                       static_cast<size_t>(
                           std::floor(w * options_.transfer_cap)));
    allocated += take[i];
  }
  for (size_t i = 0; i < donors.size() && allocated < options_.transfer_cap;
       ++i) {
    if (take[i] < donors[i].record->observations.size()) {
      ++take[i];
      ++allocated;
    }
  }

  std::vector<LocatTuner::PriorObservation> priors;
  priors.reserve(allocated);
  for (size_t i = 0; i < donors.size(); ++i) {
    // Each donor contributes its BEST observations, not a chronological
    // prefix: the exports are ordered first-to-last, so a prefix would
    // hand over the donor's random warm-up samples and withhold exactly
    // the tuned optimum the transfer exists to share.
    std::vector<size_t> order(donors[i].record->observations.size());
    for (size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      const auto& obs = donors[i].record->observations;
      if (obs[a].objective_seconds != obs[b].objective_seconds) {
        return obs[a].objective_seconds < obs[b].objective_seconds;
      }
      return a < b;
    });
    for (size_t k = 0; k < take[i]; ++k) {
      priors.push_back(donors[i].record->observations[order[k]]);
    }
  }
  return priors;
}

StatusOr<std::shared_ptr<ServiceRegistry::Entry>>
ServiceRegistry::FindOrAdmit(const std::string& app) {
  Shard& shard = shards_[ShardIndex(app)];
  {
    const std::shared_ptr<const EntryMap> map =
        shard.map.load(std::memory_order_acquire);
    const auto it = map->find(app);
    if (it != map->end()) return it->second;
  }
  std::lock_guard<std::mutex> lock(shard.mu);
  const std::shared_ptr<const EntryMap> map =
      shard.map.load(std::memory_order_acquire);
  const auto it = map->find(app);
  if (it != map->end()) return it->second;  // lost the admission race

  std::unique_ptr<AppBackend> backend = factory_(app);
  if (backend == nullptr) {
    return Status::InvalidArgument("backend factory failed for app " + app);
  }
  auto entry = std::make_shared<Entry>();
  entry->name = app;
  entry->backend = std::move(backend);
  entry->fingerprint = AppFingerprint::FromProfile(entry->backend->app());
  entry->last_used_tick.store(tick_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  OnlineTuningService* svc = entry->backend->service();
  if (obs_.any()) svc->SetObservability(obs_);
  if (options_.track_latency) svc->EnableLatencyTracking();

  if (options_.warm_start) {
    std::vector<LocatTuner::PriorObservation> priors;
    std::vector<int> csq_hint;
    bool own_history = false;
    {
      std::lock_guard<std::mutex> tlock(transfer_mu_);
      const auto evicted = evicted_store_.find(app);
      if (evicted != evicted_store_.end()) {
        // Re-admission: the app's own persisted history beats any
        // cross-app donor; no pessimism, it *is* this workload.
        priors = std::move(evicted->second.observations);
        csq_hint = std::move(evicted->second.csq);
        evicted_store_.erase(evicted);
        own_history = true;
      } else {
        priors = BuildPriorsLocked(app, entry->fingerprint, &csq_hint);
      }
    }
    if (!priors.empty()) {
      if (!csq_hint.empty()) svc->SeedRqaHint(std::move(csq_hint));
      svc->SeedPriorObservations(
          std::move(priors),
          own_history ? 1.0 : options_.transfer_pessimism);
      if (svc->tuner().warm_started()) {
        entry->warm_started = true;
        warm_start_hits_.fetch_add(1, std::memory_order_relaxed);
        if (m_warm_starts_ != nullptr) m_warm_starts_->Increment();
      }
    }
  }

  auto next = std::make_shared<EntryMap>(*map);
  (*next)[app] = entry;
  shard.map.store(std::shared_ptr<const EntryMap>(std::move(next)),
                  std::memory_order_release);
  return entry;
}

StatusOr<sparksim::SparkConf> ServiceRegistry::Lookup(const std::string& app,
                                                      double datasize_gb) {
  if (!(datasize_gb > 0.0)) {
    return Status::InvalidArgument(
        "Lookup needs a strictly positive datasize_gb");
  }
  const bool clocked = clock_latency_.load(std::memory_order_acquire);
  const uint64_t t0_ns =
      clocked ? obs::MonotonicClock::Default()->NowNanos() : 0;
  auto observe_latency = [&] {
    if (!clocked) return;
    const uint64_t t1_ns = obs::MonotonicClock::Default()->NowNanos();
    const double s = static_cast<double>(t1_ns - t0_ns) * 1e-9;
    lookup_latency_.Observe(s);
    if (m_lookup_latency_ != nullptr) m_lookup_latency_->Observe(s);
  };

  // Fast path: entry present and its published plan already covers this
  // size — two atomic loads and a map find, no mutex anywhere.
  {
    const std::shared_ptr<const EntryMap> map =
        shards_[ShardIndex(app)].map.load(std::memory_order_acquire);
    const auto it = map->find(app);
    if (it != map->end()) {
      const std::shared_ptr<Entry>& entry = it->second;
      std::optional<sparksim::SparkConf> conf =
          entry->backend->service()->PublishedReuse(datasize_gb);
      if (conf.has_value()) {
        entry->last_used_tick.store(tick_.load(std::memory_order_relaxed),
                                    std::memory_order_relaxed);
        entry->hits.fetch_add(1, std::memory_order_relaxed);
        entry->last_served.store(
            std::make_shared<const std::pair<double, sparksim::SparkConf>>(
                datasize_gb, *conf),
            std::memory_order_release);
        lookups_hit_.fetch_add(1, std::memory_order_relaxed);
        if (m_hit_ != nullptr) m_hit_->Increment();
        observe_latency();
        return *std::move(conf);
      }
    }
  }

  // Slow path: admit if needed, then single-flight the tuning pass.
  StatusOr<std::shared_ptr<Entry>> entry_or = FindOrAdmit(app);
  if (!entry_or.ok()) return entry_or.status();
  const std::shared_ptr<Entry> entry = *std::move(entry_or);
  entry->last_used_tick.store(tick_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  OnlineTuningService* svc = entry->backend->service();

  std::unique_lock<std::mutex> lock(entry->mu);
  bool waited = false;
  for (;;) {
    // Re-check under the lock: a concurrent tune may have published a
    // plan covering this size while we queued.
    std::optional<sparksim::SparkConf> conf =
        svc->PublishedReuse(datasize_gb);
    if (conf.has_value()) {
      entry->last_served.store(
          std::make_shared<const std::pair<double, sparksim::SparkConf>>(
              datasize_gb, *conf),
          std::memory_order_release);
      if (waited) {
        entry->coalesced.fetch_add(1, std::memory_order_relaxed);
        lookups_coalesced_.fetch_add(1, std::memory_order_relaxed);
        if (m_coalesced_ != nullptr) m_coalesced_->Increment();
      } else {
        entry->hits.fetch_add(1, std::memory_order_relaxed);
        lookups_hit_.fetch_add(1, std::memory_order_relaxed);
        if (m_hit_ != nullptr) m_hit_->Increment();
      }
      observe_latency();
      return *std::move(conf);
    }
    if (!entry->tuning_in_flight) break;
    waited = true;
    entry->done.wait(lock, [&] { return !entry->tuning_in_flight; });
  }

  // This request owns the tuning pass. The flag extends mutual exclusion
  // over the pool-executed tune without holding the mutex while it runs,
  // so readers stay lock-free and waiters can queue.
  const bool cold = svc->Published()->tuning_passes == 0;
  entry->tuning_in_flight = true;
  lock.unlock();

  lookups_miss_.fetch_add(1, std::memory_order_relaxed);
  if (m_miss_ != nullptr) m_miss_->Increment();
  if (cold) {
    retunes_cold_.fetch_add(1, std::memory_order_relaxed);
    if (m_retune_cold_ != nullptr) m_retune_cold_->Increment();
  } else {
    retunes_drift_.fetch_add(1, std::memory_order_relaxed);
    if (m_retune_drift_ != nullptr) m_retune_drift_->Increment();
  }

  auto done = std::make_shared<std::promise<StatusOr<sparksim::SparkConf>>>();
  std::future<StatusOr<sparksim::SparkConf>> fut = done->get_future();
  tune_pool_.Submit([svc, datasize_gb, done] {
    done->set_value(svc->RecommendedConf(datasize_gb));
  });
  StatusOr<sparksim::SparkConf> result = fut.get();

  if (result.ok()) {
    entry->last_served.store(
        std::make_shared<const std::pair<double, sparksim::SparkConf>>(
            datasize_gb, *result),
        std::memory_order_release);
  }
  lock.lock();
  entry->tuning_in_flight = false;
  entry->done.notify_all();
  lock.unlock();
  observe_latency();
  return result;
}

Status ServiceRegistry::ReportRun(const std::string& app, double datasize_gb,
                                  const sparksim::SparkConf& conf,
                                  double observed_seconds) {
  const std::shared_ptr<const EntryMap> map =
      shards_[ShardIndex(app)].map.load(std::memory_order_acquire);
  const auto it = map->find(app);
  if (it == map->end()) {
    return Status::NotFound("app not admitted: " + app);
  }
  const std::shared_ptr<Entry>& entry = it->second;
  entry->last_used_tick.store(tick_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(entry->mu);
  entry->done.wait(lock, [&] { return !entry->tuning_in_flight; });
  return entry->backend->service()->ReportRun(datasize_gb, conf,
                                              observed_seconds);
}

Status ServiceRegistry::ReportFailedRun(const std::string& app,
                                        double datasize_gb,
                                        const sparksim::SparkConf& conf,
                                        double partial_seconds) {
  const std::shared_ptr<const EntryMap> map =
      shards_[ShardIndex(app)].map.load(std::memory_order_acquire);
  const auto it = map->find(app);
  if (it == map->end()) {
    return Status::NotFound("app not admitted: " + app);
  }
  const std::shared_ptr<Entry>& entry = it->second;
  entry->last_used_tick.store(tick_.load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
  std::unique_lock<std::mutex> lock(entry->mu);
  entry->done.wait(lock, [&] { return !entry->tuning_in_flight; });
  return entry->backend->service()->ReportFailedRun(datasize_gb, conf,
                                                    partial_seconds);
}

void ServiceRegistry::EvictLocked(Shard& shard,
                                  const std::shared_ptr<Entry>& entry) {
  // Persist the observation history so re-admission warm-starts instead
  // of cold-tuning. The backend itself dies with the entry's last
  // shared_ptr — in-flight readers holding an older map snapshot keep it
  // alive until they return.
  TransferRecord rec;
  rec.fingerprint = entry->fingerprint;
  rec.observations =
      entry->backend->service()->ExportObservations(options_.transfer_cap * 4);
  if (const QcsaResult* qcsa =
          entry->backend->service()->tuner().qcsa_result()) {
    rec.csq = qcsa->csq_indices;
  }
  {
    std::lock_guard<std::mutex> tlock(transfer_mu_);
    transfer_store_.erase(entry->name);
    if (!rec.observations.empty()) {
      evicted_store_[entry->name] = std::move(rec);
    }
  }
  const std::shared_ptr<const EntryMap> map =
      shard.map.load(std::memory_order_acquire);
  auto next = std::make_shared<EntryMap>(*map);
  next->erase(entry->name);
  shard.map.store(std::shared_ptr<const EntryMap>(std::move(next)),
                  std::memory_order_release);
}

uint64_t ServiceRegistry::AdvanceTick() {
  const uint64_t tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Deterministic scan order: every live entry, sorted by name (the
  // per-shard maps are sorted; a merged sort over shards keeps cross-
  // shard order stable too).
  struct Live {
    Shard* shard;
    std::shared_ptr<Entry> entry;
  };
  std::vector<Live> live;
  for (auto& shard : shards_) {
    const std::shared_ptr<const EntryMap> map =
        shard.map.load(std::memory_order_acquire);
    for (const auto& [name, entry] : *map) live.push_back({&shard, entry});
  }
  std::sort(live.begin(), live.end(), [](const Live& a, const Live& b) {
    return a.entry->name < b.entry->name;
  });

  // 1. Refresh donor knowledge from tuned entries. Busy entries (a tune
  //    in flight) are skipped — their knowledge lands next tick.
  for (const auto& l : live) {
    std::unique_lock<std::mutex> el(l.entry->mu, std::try_to_lock);
    if (!el.owns_lock() || l.entry->tuning_in_flight) continue;
    OnlineTuningService* svc = l.entry->backend->service();
    if (!l.entry->sensitivity_added) {
      if (const QcsaResult* qcsa = svc->tuner().qcsa_result()) {
        l.entry->fingerprint.AddSensitivity(
            *qcsa, l.entry->backend->app().num_queries());
        l.entry->sensitivity_added = true;
      }
    }
    if (svc->Published()->tuning_passes > 0) {
      TransferRecord rec;
      rec.fingerprint = l.entry->fingerprint;
      rec.observations = svc->ExportObservations(options_.transfer_cap * 4);
      if (const QcsaResult* qcsa = svc->tuner().qcsa_result()) {
        rec.csq = qcsa->csq_indices;
      }
      if (!rec.observations.empty()) {
        std::lock_guard<std::mutex> tlock(transfer_mu_);
        transfer_store_[l.entry->name] = std::move(rec);
      }
    }
  }

  // 2. TTL eviction, in name order.
  if (options_.ttl_ticks > 0) {
    for (auto& l : live) {
      if (l.entry == nullptr) continue;
      const uint64_t last =
          l.entry->last_used_tick.load(std::memory_order_relaxed);
      if (tick - last <= static_cast<uint64_t>(options_.ttl_ticks)) continue;
      std::unique_lock<std::mutex> el(l.entry->mu, std::try_to_lock);
      if (!el.owns_lock() || l.entry->tuning_in_flight) continue;
      std::lock_guard<std::mutex> slock(l.shard->mu);
      EvictLocked(*l.shard, l.entry);
      evictions_ttl_.fetch_add(1, std::memory_order_relaxed);
      if (m_evict_ttl_ != nullptr) m_evict_ttl_->Increment();
      l.entry = nullptr;  // gone; skip in the capacity pass
    }
  }

  // 3. Capacity trim: evict least-recently-used first (older tick, then
  //    name as the deterministic tie-break).
  if (options_.capacity > 0) {
    std::vector<Live*> remaining;
    for (auto& l : live) {
      if (l.entry != nullptr) remaining.push_back(&l);
    }
    if (remaining.size() > options_.capacity) {
      std::sort(remaining.begin(), remaining.end(),
                [](const Live* a, const Live* b) {
                  const uint64_t ta =
                      a->entry->last_used_tick.load(std::memory_order_relaxed);
                  const uint64_t tb =
                      b->entry->last_used_tick.load(std::memory_order_relaxed);
                  if (ta != tb) return ta < tb;
                  return a->entry->name < b->entry->name;
                });
      size_t excess = remaining.size() - options_.capacity;
      for (Live* l : remaining) {
        if (excess == 0) break;
        std::unique_lock<std::mutex> el(l->entry->mu, std::try_to_lock);
        if (!el.owns_lock() || l->entry->tuning_in_flight) continue;
        std::lock_guard<std::mutex> slock(l->shard->mu);
        EvictLocked(*l->shard, l->entry);
        evictions_capacity_.fetch_add(1, std::memory_order_relaxed);
        if (m_evict_cap_ != nullptr) m_evict_cap_->Increment();
        l->entry = nullptr;
        --excess;
      }
    }
  }
  return tick;
}

ServiceRegistry::Stats ServiceRegistry::GetStats() const {
  Stats s;
  s.tick = tick_.load(std::memory_order_relaxed);
  s.lookups_hit = lookups_hit_.load(std::memory_order_relaxed);
  s.lookups_miss = lookups_miss_.load(std::memory_order_relaxed);
  s.lookups_coalesced = lookups_coalesced_.load(std::memory_order_relaxed);
  s.retunes_cold = retunes_cold_.load(std::memory_order_relaxed);
  s.retunes_drift = retunes_drift_.load(std::memory_order_relaxed);
  s.evictions_ttl = evictions_ttl_.load(std::memory_order_relaxed);
  s.evictions_capacity = evictions_capacity_.load(std::memory_order_relaxed);
  s.warm_start_hits = warm_start_hits_.load(std::memory_order_relaxed);
  s.shard_occupancy.reserve(kNumShards);
  for (const auto& shard : shards_) {
    const std::shared_ptr<const EntryMap> map =
        shard.map.load(std::memory_order_acquire);
    s.shard_occupancy.push_back(map->size());
    s.live_apps += map->size();
  }
  return s;
}

double ServiceRegistry::LookupLatencyQuantile(double q) const {
  return lookup_latency_.Quantile(q);
}

ServiceRegistry::AppRow ServiceRegistry::BuildRow(const Entry& entry) {
  AppRow row;
  row.snapshot = entry.backend->service()->Snapshot();
  row.hits = entry.hits.load(std::memory_order_relaxed);
  row.coalesced = entry.coalesced.load(std::memory_order_relaxed);
  row.warm_started = entry.warm_started;
  row.last_used_tick = entry.last_used_tick.load(std::memory_order_relaxed);
  // The service only records tuned recommendations as "last"; prefer the
  // registry's record, which also covers fast-path hits.
  const std::shared_ptr<const std::pair<double, sparksim::SparkConf>> last =
      entry.last_served.load(std::memory_order_acquire);
  if (last != nullptr) {
    row.snapshot.last_datasize_gb = last->first;
    row.snapshot.last_conf = sparksim::SparkPropertiesToString(last->second);
  }
  return row;
}

std::vector<ServiceRegistry::AppRow> ServiceRegistry::AppRows() const {
  std::vector<AppRow> rows;
  for (const auto& shard : shards_) {
    const std::shared_ptr<const EntryMap> map =
        shard.map.load(std::memory_order_acquire);
    for (const auto& [name, entry] : *map) {
      rows.push_back(BuildRow(*entry));
    }
  }
  std::sort(rows.begin(), rows.end(), [](const AppRow& a, const AppRow& b) {
    return a.snapshot.app < b.snapshot.app;
  });
  return rows;
}

std::optional<ServiceRegistry::AppRow> ServiceRegistry::GetAppRow(
    const std::string& app) const {
  const std::shared_ptr<const EntryMap> map =
      shards_[ShardIndex(app)].map.load(std::memory_order_acquire);
  const auto it = map->find(app);
  if (it == map->end()) return std::nullopt;
  return BuildRow(*it->second);
}

std::string ServiceRegistry::RenderStatusTable() const {
  const Stats s = GetStats();
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "registry: %zu live apps | tick %llu | warm starts %llu\n",
                s.live_apps, static_cast<unsigned long long>(s.tick),
                static_cast<unsigned long long>(s.warm_start_hits));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "lookups:  %llu hit | %llu miss | %llu coalesced\n",
      static_cast<unsigned long long>(s.lookups_hit),
      static_cast<unsigned long long>(s.lookups_miss),
      static_cast<unsigned long long>(s.lookups_coalesced));
  out += line;
  std::snprintf(
      line, sizeof(line),
      "retunes:  %llu cold | %llu drift || evictions: %llu ttl | %llu cap\n",
      static_cast<unsigned long long>(s.retunes_cold),
      static_cast<unsigned long long>(s.retunes_drift),
      static_cast<unsigned long long>(s.evictions_ttl),
      static_cast<unsigned long long>(s.evictions_capacity));
  out += line;
  out += "shards:  ";
  for (size_t occ : s.shard_occupancy) {
    std::snprintf(line, sizeof(line), " %zu", occ);
    out += line;
  }
  out += "\n";
  return out;
}

}  // namespace locat::core
