#ifndef LOCAT_CORE_TUNING_H_
#define LOCAT_CORE_TUNING_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/telemetry.h"
#include "sparksim/config.h"
#include "sparksim/query_profile.h"
#include "sparksim/simulator.h"

namespace locat::core {

/// One configuration evaluation retained by a TuningSession.
struct EvalRecord {
  sparksim::SparkConf conf;
  math::Vector unit;            // conf in unit-cube coordinates
  double datasize_gb = 0.0;
  double app_seconds = 0.0;     // objective actually measured (full or RQA)
  bool full_app = true;         // false when only a query subset ran
  std::vector<double> per_query_seconds;  // indices into the *full* app
  std::vector<int> query_indices;         // which queries ran
  double gc_seconds = 0.0;
  bool any_oom = false;
  /// Fault-injection outcome: a failed record's app_seconds is the
  /// *partial* time up to the kill (still charged to the meter — a dead
  /// run is not free) and per_query_seconds covers only what ran.
  bool failed = false;
  std::string fail_reason;
  int retries = 0;
  int lost_executors = 0;
};

/// Accounting wrapper every tuner evaluates configurations through.
///
/// It runs configurations on the simulator, charges their *simulated*
/// wall-clock to the optimization-time meter (this is the "optimization
/// time" every figure reports), and keeps the evaluation history.
class TuningSession {
 public:
  TuningSession(sparksim::ClusterSimulator* simulator,
                const sparksim::SparkSqlApp& app);

  /// Runs the full application; charged to the optimization-time meter.
  /// Errors (bad datasize, bad indices) come back as a Status; a
  /// fault-injected app kill is ok() with record.failed set — the partial
  /// runtime is still charged, and tuners impute a censored cost.
  /// Records are returned by value because history_ may reallocate.
  StatusOr<EvalRecord> Evaluate(const sparksim::SparkConf& conf,
                                double datasize_gb);

  /// Runs only the listed query indices (the RQA path); charged at the
  /// reduced cost, which is where QCSA's savings come from.
  StatusOr<EvalRecord> EvaluateSubset(const sparksim::SparkConf& conf,
                                      double datasize_gb,
                                      const std::vector<int>& query_indices);

  /// Batched equivalents of calling Evaluate/EvaluateSubset once per
  /// configuration, in order: the whole (conf x query) grid fans out
  /// through the simulator's thread pool in one RunAppBatch. History,
  /// meter, counters and the returned records are bit-identical to the
  /// sequential loop; records are returned by value because history_ may
  /// reallocate. Per-run "session/evaluate" spans collapse into one
  /// "session/evaluate_batch" span (observational only).
  StatusOr<std::vector<EvalRecord>> EvaluateBatch(
      const std::vector<sparksim::SparkConf>& confs, double datasize_gb);
  StatusOr<std::vector<EvalRecord>> EvaluateSubsetBatch(
      const std::vector<sparksim::SparkConf>& confs, double datasize_gb,
      const std::vector<int>& query_indices);

  /// Runs the full application *without* charging optimization time; used
  /// by the harness to measure the quality of a final configuration.
  sparksim::AppRunResult MeasureFinal(const sparksim::SparkConf& conf,
                                      double datasize_gb);

  const sparksim::SparkSqlApp& app() const { return app_; }
  const sparksim::ConfigSpace& space() const { return space_; }
  sparksim::ClusterSimulator* simulator() { return simulator_; }

  /// Simulated seconds spent on all charged evaluations so far.
  double optimization_seconds() const { return optimization_seconds_; }
  int evaluations() const { return static_cast<int>(history_.size()); }
  const std::vector<EvalRecord>& history() const { return history_; }

  /// Charges extra simulated seconds to the optimization-time meter
  /// without an evaluation — retry backoff after a failed run is billed
  /// through here so wasted wall clock shows up in the reported
  /// optimization time.
  void ChargePenaltySeconds(double seconds);

  /// Forgets history and resets the meter (keeps the simulator state).
  void Reset();

  /// Restricts Evaluate() to the given query subset — used by the
  /// QCSA-on-SOTA frontend (Section 5.10) so baseline tuners transparently
  /// run the RQA. EvaluateSubset and MeasureFinal are unaffected.
  void RestrictToQueries(std::vector<int> query_indices);
  void ClearQueryRestriction();
  bool restricted() const { return !restriction_.empty(); }

  /// Wires tracing/metrics sinks (any member may be null). Charged
  /// evaluations become "session/evaluate" spans and feed the
  /// locat_evaluations_total / locat_optimization_seconds_total counters.
  /// Purely observational — never alters evaluation results.
  void SetObservability(const obs::ObsContext& obs);
  const obs::ObsContext& obs() const { return obs_; }

 private:
  /// Shared bookkeeping for one completed app run: counters, the eval
  /// record, the optimization-time meter and the history entry.
  const EvalRecord& RecordRun(const sparksim::SparkConf& conf,
                              double datasize_gb,
                              const std::vector<int>& query_indices,
                              const sparksim::AppRunResult& run);

  sparksim::ClusterSimulator* simulator_;
  sparksim::SparkSqlApp app_;
  sparksim::ConfigSpace space_;
  std::vector<EvalRecord> history_;
  std::vector<int> restriction_;
  double optimization_seconds_ = 0.0;
  obs::ObsContext obs_;
  obs::Counter* evals_counter_ = nullptr;
  obs::Counter* opt_seconds_counter_ = nullptr;
  obs::Counter* eval_failures_counter_ = nullptr;
  obs::Histogram* eval_seconds_hist_ = nullptr;
};

/// Censored-cost imputation for a failed evaluation: the run died, so its
/// true cost is unknown but at least the partial time observed and at
/// least as bad as the worst completed run; the margin pushes the
/// surrogate away from the region. Returns margin when nothing has been
/// observed yet (both inputs non-positive).
double CensoredObjective(double worst_seen_seconds, double partial_seconds,
                         double margin);

/// Builds and sends a minimal BoIterationEvent — the shared emit path for
/// tuners without model-specific telemetry (the baselines). No-op when
/// `observer` is null: the event is not even built, so disabled telemetry
/// allocates nothing.
void EmitSimpleIteration(obs::TunerObserver* observer,
                         const std::string& tuner, const char* phase,
                         int iteration, double datasize_gb,
                         double eval_seconds, double objective,
                         double incumbent, bool full_app,
                         int failed_evals = 0);

/// Outcome of one tuning run.
struct TuningResult {
  std::string tuner_name;
  sparksim::SparkConf best_conf;
  /// Objective value of best_conf as observed during tuning (full app or
  /// RQA, depending on the tuner's final phase).
  double best_observed_seconds = 0.0;
  /// Simulated time the whole optimization procedure consumed.
  double optimization_seconds = 0.0;
  int evaluations = 0;
  /// Evaluations that ended in a fault-injected failure (after retries).
  /// Baselines that don't track failures leave this 0.
  int failed_evaluations = 0;
  /// Best-so-far observed objective after each evaluation.
  std::vector<double> trajectory;
};

/// Interface every tuner (LOCAT and the four baselines) implements.
///
/// Tuners may keep state across calls — LOCAT's DAGP deliberately reuses
/// its Gaussian process when Tune is called again with a different data
/// size, which is the paper's online data-size adaptation.
class Tuner {
 public:
  virtual ~Tuner() = default;

  virtual std::string name() const = 0;

  /// Finds a good configuration for the session's application at the
  /// given input data size.
  virtual TuningResult Tune(TuningSession* session, double datasize_gb) = 0;

  /// Restricts the search to the given parameter indices (others stay at
  /// their Table 2 defaults). Default implementation ignores the hint;
  /// baseline tuners honor it so IICP can be retrofitted onto them
  /// (Section 5.10).
  virtual void SetFreeParams(const std::vector<int>& /*param_indices*/) {}

  /// Wires observability sinks into the tuner. Overrides must call the
  /// base and forward the context to owned sub-components. The null
  /// context (the default) must leave tuner output byte-identical: no
  /// extra RNG draws, no behavioral branches.
  virtual void SetObservability(const obs::ObsContext& obs) { obs_ = obs; }

 protected:
  obs::TunerObserver* observer() const { return obs_.observer; }
  obs::Tracer* tracer() const { return obs_.tracer; }
  obs::MetricsRegistry* metrics() const { return obs_.metrics; }

  obs::ObsContext obs_;
};

}  // namespace locat::core

#endif  // LOCAT_CORE_TUNING_H_
