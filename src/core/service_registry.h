#ifndef LOCAT_CORE_SERVICE_REGISTRY_H_
#define LOCAT_CORE_SERVICE_REGISTRY_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/online_service.h"
#include "core/qcsa.h"
#include "obs/metrics.h"
#include "sparksim/query_profile.h"

namespace locat::core {

/// Compact description of *what kind of workload* an application is, used
/// to pick warm-start donors for new tenants (the retrieval-augmented
/// transfer of Suri et al., PAPERS.md). Two sources feed it:
///   - static query-profile aggregates, available at admission time
///     (query-category mix, shuffle intensity, memory pressure, skew);
///   - the QCSA sensitivity signature, available once the donor finished
///     its cold start (how much of the app is configuration-sensitive).
/// All features are scaled to roughly [0, 1] so the unweighted Euclidean
/// distance treats them comparably.
struct AppFingerprint {
  math::Vector features;

  /// Builds the static part from the app's query profiles; the
  /// sensitivity slots start at zero ("unknown").
  static AppFingerprint FromProfile(const sparksim::SparkSqlApp& app);

  /// Fills in the sensitivity slots from a finished QCSA analysis.
  void AddSensitivity(const QcsaResult& qcsa, int num_queries);

  /// Euclidean distance between two fingerprints (both always have the
  /// same fixed dimension).
  static double Distance(const AppFingerprint& a, const AppFingerprint& b);
};

/// Everything the registry owns per application besides the service
/// itself: typically the simulator/session stack the service tunes
/// against. Destroyed when the entry is evicted and the last in-flight
/// reader drops it.
class AppBackend {
 public:
  virtual ~AppBackend() = default;
  /// The per-app tuning service; the registry serializes its mutators.
  virtual OnlineTuningService* service() = 0;
  /// The application profile (fingerprint source).
  virtual const sparksim::SparkSqlApp& app() const = 0;
};

/// Multi-tenant front door for OnlineTuningService: a 16-way sharded
/// (hash-on-app-name) registry serving hundreds of applications whose
/// input sizes drift over time (ROADMAP item 1, Section 3.1 of the
/// paper).
///
/// Request path. `Lookup(app, ds)` is read-mostly and lock-free on the
/// hot path: the shard's entry map is an immutable snapshot swapped via
/// std::atomic<std::shared_ptr> (copy-on-write on admission/eviction,
/// same pattern as the obs flight recorder), and each service publishes
/// its serving plan the same way — a warm hit costs two atomic loads and
/// a map lookup, no mutex. Cold misses and drift re-tunes take the
/// entry's mutex and run the tuning pass on a background worker pool with
/// per-app single-flight dedup: concurrent requests for the same drifting
/// app coalesce behind exactly one tuning pass and are served from its
/// published result.
///
/// Lifecycle. Cross-app-visible state — LRU/TTL eviction and the
/// transfer store warm starts read from — mutates ONLY inside
/// `AdvanceTick()`, which the driver calls at quiescent barriers (e.g.
/// between serve rounds), scanning entries in sorted-name order. Because
/// request timing can therefore never influence which apps are evicted
/// or which donors a warm start sees, served configurations are
/// bit-identical for any worker-pool size on a fixed request trace.
/// Evicted apps persist their observation history; re-admission seeds the
/// new tuner from it instead of cold-tuning from scratch.
class ServiceRegistry {
 public:
  struct Options {
    /// Per-app service options applied by the backend factory (kept here
    /// for the drift threshold the hot path shares with the service).
    double retune_threshold = 0.25;
    /// Maximum live apps; the excess is evicted (least-recently-used
    /// first) at the next AdvanceTick. 0 = unlimited.
    size_t capacity = 0;
    /// Evict apps idle for more than this many ticks. 0 = never.
    int ttl_ticks = 0;
    /// Cross-app transfer: seed new apps from the K nearest tuned apps'
    /// observation histories. `false` leaves every tuner byte-identical
    /// to a registry-less cold start.
    bool warm_start = true;
    /// Donor count and total transferred-observation cap per admission.
    int transfer_k = 3;
    size_t transfer_cap = 12;
    /// Multiplier on transferred objectives, applied inside the tuner
    /// AFTER donor priors are rescaled to the recipient's own objective
    /// level (> 1 biases the surrogate to treat donor knowledge as
    /// slightly pessimistic, so the new app's own observations win ties
    /// near the optimum). Re-admission from an app's own evicted history
    /// always uses 1.0.
    double transfer_pessimism = 1.0;
    /// Worker threads for background tuning passes. 1 = run inline on
    /// the requesting thread (fully deterministic single-threaded mode).
    int tune_threads = 1;
    /// Clock Lookup latency into an owned histogram (and each service's
    /// RecommendedConf latency) even without a metrics registry, so
    /// statusz/bench can report quantiles. Off by default: disabled
    /// observability must not read clocks.
    bool track_latency = false;

    Options() {}
  };

  /// Creates the per-app backend on first lookup (and on re-admission
  /// after eviction). Returning null fails the lookup with
  /// InvalidArgument.
  using BackendFactory =
      std::function<std::unique_ptr<AppBackend>(const std::string& app)>;

  ServiceRegistry(BackendFactory factory, Options options = Options());
  ~ServiceRegistry();

  ServiceRegistry(const ServiceRegistry&) = delete;
  ServiceRegistry& operator=(const ServiceRegistry&) = delete;

  /// Returns the configuration to run `app` with at `datasize_gb`,
  /// admitting (and warm-starting) the app on first sight and tuning
  /// (single-flight, on the worker pool) when nothing close enough is
  /// published. Safe to call from any number of threads.
  StatusOr<sparksim::SparkConf> Lookup(const std::string& app,
                                       double datasize_gb);

  /// Feeds a finished production run back into `app`'s model. NotFound
  /// when the app was never admitted (or was evicted).
  Status ReportRun(const std::string& app, double datasize_gb,
                   const sparksim::SparkConf& conf, double observed_seconds);

  /// Reports a died production run (censored observation + graceful
  /// degradation, see OnlineTuningService::ReportFailedRun).
  Status ReportFailedRun(const std::string& app, double datasize_gb,
                         const sparksim::SparkConf& conf,
                         double partial_seconds = 0.0);

  /// Advances the registry clock one tick and commits all cross-app
  /// state in deterministic (sorted-name) order: refreshes the transfer
  /// store from tuned entries, applies TTL eviction, then trims to
  /// capacity evicting least-recently-used entries (older tick first,
  /// name as the tie-break). Call from the driver at quiescent barriers;
  /// entries busy in a tuning pass are skipped and retried next tick.
  /// Returns the new tick value.
  uint64_t AdvanceTick();

  /// Point-in-time registry counters for /statusz and benches.
  struct Stats {
    size_t live_apps = 0;
    uint64_t tick = 0;
    uint64_t lookups_hit = 0;
    uint64_t lookups_miss = 0;
    uint64_t lookups_coalesced = 0;
    uint64_t retunes_cold = 0;
    uint64_t retunes_drift = 0;
    uint64_t evictions_ttl = 0;
    uint64_t evictions_capacity = 0;
    uint64_t warm_start_hits = 0;
    std::vector<size_t> shard_occupancy;  // kNumShards entries
  };
  Stats GetStats() const;

  /// Lookup-latency quantile in seconds (0 unless track_latency or a
  /// metrics registry is wired — same contract as
  /// OnlineTuningService::Snapshot).
  double LookupLatencyQuantile(double q) const;

  /// One serving row per live app, ordered by name: the service snapshot
  /// plus the registry's own per-app bookkeeping.
  struct AppRow {
    OnlineTuningService::StatusSnapshot snapshot;
    uint64_t hits = 0;       // lock-free reuse serves (fast path)
    uint64_t coalesced = 0;  // waiters served by another request's tune
    bool warm_started = false;
    uint64_t last_used_tick = 0;
  };
  std::vector<AppRow> AppRows() const;
  std::optional<AppRow> GetAppRow(const std::string& app) const;

  /// Monospace registry table for /statusz: shard occupancy, eviction and
  /// coalesce counters, warm-start hits.
  std::string RenderStatusTable() const;

  /// Wires tracing/metrics into the registry and every current and
  /// future entry (services get the same context). Labeled families:
  ///   locat_registry_lookups_total{result="hit"|"miss"|"coalesced"}
  ///   locat_registry_retunes_total{reason="cold"|"drift"}
  ///   locat_registry_evictions_total{reason="ttl"|"capacity"}
  ///   locat_registry_warm_starts_total
  ///   locat_registry_lookup_seconds (histogram)
  void SetObservability(const obs::ObsContext& obs);

  static constexpr int kNumShards = 16;

 private:
  struct Entry {
    std::string name;
    std::unique_ptr<AppBackend> backend;
    AppFingerprint fingerprint;
    /// Serializes the service's mutators; the in_flight flag extends the
    /// critical section over the (pool-executed) tuning pass without
    /// holding the mutex while it runs.
    std::mutex mu;
    std::condition_variable done;
    bool tuning_in_flight = false;
    bool sensitivity_added = false;
    bool warm_started = false;
    std::atomic<uint64_t> last_used_tick{0};
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> coalesced{0};
    /// Size and conf of the last successful Lookup (the service only
    /// records tuned recommendations; fast-path hits land here so the
    /// statusz "last conf" column covers every served request).
    std::atomic<std::shared_ptr<const std::pair<double, sparksim::SparkConf>>>
        last_served;
  };
  using EntryMap = std::map<std::string, std::shared_ptr<Entry>>;

  struct Shard {
    /// Immutable snapshot, COW-swapped under `mu` on admission/eviction;
    /// the read path loads it without the mutex.
    std::atomic<std::shared_ptr<const EntryMap>> map;
    std::mutex mu;  // serializes admissions/evictions on this shard
  };

  /// What an evicted (or tuned) app leaves behind for future warm starts.
  struct TransferRecord {
    AppFingerprint fingerprint;
    std::vector<LocatTuner::PriorObservation> observations;
    /// The app's configuration-sensitive query indices (QCSA result),
    /// handed to warm-started recipients as the RQA hint: sensitivity is
    /// a property of the queries, and the donor estimated it from a full
    /// sampling budget the recipient's shrunken schedule cannot afford.
    std::vector<int> csq;
  };

  static size_t ShardIndex(const std::string& app);

  /// Finds the entry for `app`, admitting it (with warm-start seeding)
  /// when absent. Never returns null on OK status.
  StatusOr<std::shared_ptr<Entry>> FindOrAdmit(const std::string& app);

  /// Builds the distance-weighted prior set for a new app from the
  /// transfer store; `csq_hint` receives the nearest donor's CSQ indices
  /// (left untouched when there is no donor). Caller holds
  /// `transfer_mu_`.
  std::vector<LocatTuner::PriorObservation> BuildPriorsLocked(
      const std::string& app, const AppFingerprint& fp,
      std::vector<int>* csq_hint) const;

  /// Removes `entry` from its shard map and persists its history into
  /// the transfer store. Caller holds the shard mutex and `entry->mu`.
  void EvictLocked(Shard& shard, const std::shared_ptr<Entry>& entry);

  /// Assembles one AppRow from the entry's service snapshot plus the
  /// registry-side bookkeeping (lock-free reads only).
  static AppRow BuildRow(const Entry& entry);

  BackendFactory factory_;
  Options options_;
  Shard shards_[kNumShards];
  common::ThreadPool tune_pool_;
  std::atomic<uint64_t> tick_{0};

  /// Donor knowledge: live tuned apps (refreshed each tick) and evicted
  /// apps (persisted until re-admission). Guarded by transfer_mu_; read
  /// only on admissions and ticks, never on the hot path.
  mutable std::mutex transfer_mu_;
  std::map<std::string, TransferRecord> transfer_store_;
  std::map<std::string, TransferRecord> evicted_store_;

  // Always-on counters (relaxed atomics; metrics mirror them when wired).
  std::atomic<uint64_t> lookups_hit_{0};
  std::atomic<uint64_t> lookups_miss_{0};
  std::atomic<uint64_t> lookups_coalesced_{0};
  std::atomic<uint64_t> retunes_cold_{0};
  std::atomic<uint64_t> retunes_drift_{0};
  std::atomic<uint64_t> evictions_ttl_{0};
  std::atomic<uint64_t> evictions_capacity_{0};
  std::atomic<uint64_t> warm_start_hits_{0};

  /// Owned lookup-latency histogram; observed only when latency tracking
  /// is on (track_latency option or metrics wired).
  obs::Histogram lookup_latency_;
  std::atomic<bool> clock_latency_{false};

  obs::ObsContext obs_;
  obs::Counter* m_hit_ = nullptr;
  obs::Counter* m_miss_ = nullptr;
  obs::Counter* m_coalesced_ = nullptr;
  obs::Counter* m_retune_cold_ = nullptr;
  obs::Counter* m_retune_drift_ = nullptr;
  obs::Counter* m_evict_ttl_ = nullptr;
  obs::Counter* m_evict_cap_ = nullptr;
  obs::Counter* m_warm_starts_ = nullptr;
  obs::Histogram* m_lookup_latency_ = nullptr;
};

}  // namespace locat::core

#endif  // LOCAT_CORE_SERVICE_REGISTRY_H_
