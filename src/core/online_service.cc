#include "core/online_service.h"

#include <algorithm>
#include <cmath>

namespace locat::core {

OnlineTuningService::OnlineTuningService(TuningSession* session,
                                         Options options)
    : session_(session), options_(options), tuner_(options.tuner) {}

void OnlineTuningService::SetObservability(const obs::ObsContext& obs) {
  obs_ = obs;
  tuner_.SetObservability(obs);
  if (obs_.metrics != nullptr) {
    recommendations_counter_ = obs_.metrics->GetCounter(
        "locat_service_recommendations_total",
        "RecommendedConf calls answered");
    reuse_counter_ = obs_.metrics->GetCounter(
        "locat_service_reuse_total",
        "Recommendations served from an already-tuned data size");
    tuning_passes_counter_ = obs_.metrics->GetCounter(
        "locat_service_tuning_passes_total",
        "Cold or warm tuning passes triggered by recommendations");
  } else {
    recommendations_counter_ = nullptr;
    reuse_counter_ = nullptr;
    tuning_passes_counter_ = nullptr;
  }
}

StatusOr<sparksim::SparkConf> OnlineTuningService::RecommendedConf(
    double datasize_gb) {
  if (!(datasize_gb > 0.0)) {
    return Status::InvalidArgument(
        "RecommendedConf needs a strictly positive datasize_gb");
  }
  obs::ScopedSpan span(obs_.tracer, "service/recommend", "service");
  span.Arg("datasize_gb", datasize_gb);
  if (recommendations_counter_ != nullptr) {
    recommendations_counter_->Increment();
  }
  // Closest tuned size, if any. The gap is symmetric in the two sizes so
  // the reuse decision does not depend on which of the pair was tuned
  // first (|ds - x| / max(ds, x) instead of dividing by the tuned size).
  double best_gap = 1e300;
  const sparksim::SparkConf* nearest = nullptr;
  for (const auto& [ds, conf] : tuned_) {
    const double gap =
        std::fabs(ds - datasize_gb) / std::max(ds, datasize_gb);
    if (gap < best_gap) {
      best_gap = gap;
      nearest = &conf;
    }
  }
  if (nearest != nullptr && best_gap <= options_.retune_threshold) {
    span.Arg("reused", 1.0);
    if (reuse_counter_ != nullptr) reuse_counter_->Increment();
    return *nearest;
  }
  span.Arg("reused", 0.0);
  const TuningResult result = tuner_.Tune(session_, datasize_gb);
  ++tuning_passes_;
  if (tuning_passes_counter_ != nullptr) tuning_passes_counter_->Increment();
  tuned_[datasize_gb] = result.best_conf;
  return result.best_conf;
}

void OnlineTuningService::ReportRun(double datasize_gb,
                                    const sparksim::SparkConf& conf,
                                    double observed_seconds) {
  tuner_.ObserveExternalRun(session_->space(), conf, datasize_gb,
                            observed_seconds);
}

std::vector<double> OnlineTuningService::tuned_sizes() const {
  std::vector<double> sizes;
  sizes.reserve(tuned_.size());
  for (const auto& [ds, conf] : tuned_) sizes.push_back(ds);
  return sizes;
}

}  // namespace locat::core
