#include "core/online_service.h"

#include <cmath>

namespace locat::core {

OnlineTuningService::OnlineTuningService(TuningSession* session,
                                         Options options)
    : session_(session), options_(options), tuner_(options.tuner) {}

sparksim::SparkConf OnlineTuningService::RecommendedConf(double datasize_gb) {
  // Closest tuned size, if any.
  double best_gap = 1e300;
  const sparksim::SparkConf* nearest = nullptr;
  for (const auto& [ds, conf] : tuned_) {
    const double gap = std::fabs(ds - datasize_gb) / ds;
    if (gap < best_gap) {
      best_gap = gap;
      nearest = &conf;
    }
  }
  if (nearest != nullptr && best_gap <= options_.retune_threshold) {
    return *nearest;
  }
  const TuningResult result = tuner_.Tune(session_, datasize_gb);
  ++tuning_passes_;
  tuned_[datasize_gb] = result.best_conf;
  return result.best_conf;
}

void OnlineTuningService::ReportRun(double datasize_gb,
                                    const sparksim::SparkConf& conf,
                                    double observed_seconds) {
  tuner_.ObserveExternalRun(session_->space(), conf, datasize_gb,
                            observed_seconds);
}

std::vector<double> OnlineTuningService::tuned_sizes() const {
  std::vector<double> sizes;
  sizes.reserve(tuned_.size());
  for (const auto& [ds, conf] : tuned_) sizes.push_back(ds);
  return sizes;
}

}  // namespace locat::core
