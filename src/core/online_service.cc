#include "core/online_service.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/clock.h"
#include "sparksim/properties_io.h"

namespace locat::core {

OnlineTuningService::OnlineTuningService(TuningSession* session,
                                         Options options)
    : session_(session), options_(options), tuner_(options.tuner) {
  // Published() must never return null, even before the first mutator.
  published_.store(std::make_shared<const PublishedState>(),
                   std::memory_order_release);
}

void OnlineTuningService::SetObservability(const obs::ObsContext& obs) {
  obs_ = obs;
  tuner_.SetObservability(obs);
  if (obs_.metrics != nullptr) {
    recommendations_counter_ = obs_.metrics->GetCounter(
        "locat_service_recommendations_total",
        "RecommendedConf calls answered");
    reuse_counter_ = obs_.metrics->GetCounter(
        "locat_service_reuse_total",
        "Recommendations served from an already-tuned data size");
    tuning_passes_counter_ = obs_.metrics->GetCounter(
        "locat_service_tuning_passes_total",
        "Cold or warm tuning passes triggered by recommendations");
    failed_reports_counter_ = obs_.metrics->GetCounter(
        "locat_service_failed_reports_total",
        "Failed production runs reported back to the service");
    // Labeled views of the same events, keyed by app. Children are
    // resolved here, once, so recording stays one relaxed atomic op.
    const std::string& app = session_->app().name;
    obs::CounterFamily* rec = obs_.metrics->GetCounterFamily(
        "locat_service_recommendations",
        "RecommendedConf calls, by app and how they were answered");
    rec_reuse_ = rec->WithLabels(
        obs::LabelSet({{"app", app}, {"source", "reuse"}}));
    rec_tuned_ = rec->WithLabels(
        obs::LabelSet({{"app", app}, {"source", "tuned"}}));
    obs::CounterFamily* runs = obs_.metrics->GetCounterFamily(
        "locat_service_runs_total",
        "Production runs reported back to the service, by app and outcome");
    runs_ok_ = runs->WithLabels(
        obs::LabelSet({{"app", app}, {"status", "ok"}}));
    runs_failed_ = runs->WithLabels(
        obs::LabelSet({{"app", app}, {"status", "failed"}}));
    recommend_latency_ =
        obs_.metrics
            ->GetHistogramFamily(
                "locat_service_recommend_seconds",
                "Wall-clock latency of RecommendedConf, by app",
                obs::LatencySecondsBuckets())
            ->WithLabels(obs::LabelSet({{"app", app}}));
  } else {
    recommendations_counter_ = nullptr;
    reuse_counter_ = nullptr;
    tuning_passes_counter_ = nullptr;
    failed_reports_counter_ = nullptr;
    rec_reuse_ = nullptr;
    rec_tuned_ = nullptr;
    runs_ok_ = nullptr;
    runs_failed_ = nullptr;
    recommend_latency_ = nullptr;
  }
}

void OnlineTuningService::EnableLatencyTracking() {
  if (owned_latency_ != nullptr) return;
  owned_latency_ = std::make_unique<obs::Histogram>(
      "locat_service_recommend_seconds",
      "Wall-clock latency of RecommendedConf",
      obs::LatencySecondsBuckets());
}

double OnlineTuningService::NearestTunedKeyIn(
    const std::map<double, sparksim::SparkConf>& tuned, double datasize_gb,
    double threshold) {
  double best_gap = 1e300;
  double best_key = std::numeric_limits<double>::quiet_NaN();
  for (const auto& [ds, conf] : tuned) {
    const double gap =
        std::fabs(ds - datasize_gb) / std::max(ds, datasize_gb);
    if (gap < best_gap) {
      best_gap = gap;
      best_key = ds;
    }
  }
  if (best_gap > threshold) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return best_key;
}

void OnlineTuningService::Publish() {
  auto next = std::make_shared<PublishedState>();
  next->tuned = tuned_;
  next->penalized = penalized_;
  next->recommendations = recommendations_;
  next->reuses = reuses_;
  next->tuning_passes = tuning_passes_;
  next->failed_reports = failed_reports_;
  next->last_datasize_gb = last_datasize_gb_;
  next->last_conf = last_conf_;
  next->has_last_conf = has_last_conf_;
  next->optimization_seconds = session_->optimization_seconds();
  published_.store(std::move(next), std::memory_order_release);
}

std::optional<sparksim::SparkConf> OnlineTuningService::PublishedReuse(
    double datasize_gb) const {
  if (!(datasize_gb > 0.0)) return std::nullopt;
  const std::shared_ptr<const PublishedState> plan = Published();
  const double key = NearestTunedKeyIn(plan->tuned, datasize_gb,
                                       options_.retune_threshold);
  if (std::isnan(key)) return std::nullopt;
  return plan->tuned.at(key);
}

StatusOr<sparksim::SparkConf> OnlineTuningService::RecommendedConf(
    double datasize_gb) {
  if (!(datasize_gb > 0.0)) {
    return Status::InvalidArgument(
        "RecommendedConf needs a strictly positive datasize_gb");
  }
  obs::ScopedSpan span(obs_.tracer, "service/recommend", "service");
  span.Arg("datasize_gb", datasize_gb);
  ++recommendations_;
  if (recommendations_counter_ != nullptr) {
    recommendations_counter_->Increment();
  }
  // Latency is only clocked when a histogram is wired: the disabled path
  // must never read a clock.
  obs::Histogram* latency = latency_sink();
  const uint64_t t0_ns =
      latency != nullptr ? obs::MonotonicClock::Default()->NowNanos() : 0;
  auto finish = [&](const sparksim::SparkConf& conf) -> sparksim::SparkConf {
    last_datasize_gb_ = datasize_gb;
    last_conf_ = conf;
    has_last_conf_ = true;
    Publish();
    if (latency != nullptr) {
      const uint64_t t1_ns = obs::MonotonicClock::Default()->NowNanos();
      latency->Observe(static_cast<double>(t1_ns - t0_ns) * 1e-9);
    }
    return conf;
  };
  // Closest tuned size, if any. The gap is symmetric in the two sizes so
  // the reuse decision does not depend on which of the pair was tuned
  // first (|ds - x| / max(ds, x) instead of dividing by the tuned size).
  double best_gap = 1e300;
  const sparksim::SparkConf* nearest = nullptr;
  for (const auto& [ds, conf] : tuned_) {
    const double gap =
        std::fabs(ds - datasize_gb) / std::max(ds, datasize_gb);
    if (gap < best_gap) {
      best_gap = gap;
      nearest = &conf;
    }
  }
  if (nearest != nullptr && best_gap <= options_.retune_threshold) {
    span.Arg("reused", 1.0);
    ++reuses_;
    if (reuse_counter_ != nullptr) reuse_counter_->Increment();
    if (rec_reuse_ != nullptr) rec_reuse_->Increment();
    return finish(*nearest);
  }
  span.Arg("reused", 0.0);
  const TuningResult result = tuner_.Tune(session_, datasize_gb);
  ++tuning_passes_;
  if (tuning_passes_counter_ != nullptr) tuning_passes_counter_->Increment();
  if (rec_tuned_ != nullptr) rec_tuned_->Increment();
  tuned_[datasize_gb] = result.best_conf;
  return finish(tuned_[datasize_gb]);
}

Status OnlineTuningService::ReportRun(double datasize_gb,
                                      const sparksim::SparkConf& conf,
                                      double observed_seconds) {
  if (!std::isfinite(datasize_gb) || datasize_gb <= 0.0) {
    return Status::InvalidArgument(
        "ReportRun needs a finite, strictly positive datasize_gb");
  }
  if (!std::isfinite(observed_seconds) || observed_seconds <= 0.0) {
    return Status::InvalidArgument(
        "ReportRun needs a finite, strictly positive observed_seconds");
  }
  tuner_.ObserveExternalRun(session_->space(), conf, datasize_gb,
                            observed_seconds);
  if (runs_ok_ != nullptr) runs_ok_->Increment();
  const double key = NearestTunedKey(datasize_gb);
  if (!std::isnan(key)) last_good_[key] = conf;
  Publish();
  return Status::OK();
}

Status OnlineTuningService::ReportFailedRun(double datasize_gb,
                                            const sparksim::SparkConf& conf,
                                            double partial_seconds) {
  if (!std::isfinite(datasize_gb) || datasize_gb <= 0.0) {
    return Status::InvalidArgument(
        "ReportFailedRun needs a finite, strictly positive datasize_gb");
  }
  if (!std::isfinite(partial_seconds) || partial_seconds < 0.0) {
    return Status::InvalidArgument(
        "ReportFailedRun needs a finite, non-negative partial_seconds");
  }
  obs::ScopedSpan span(obs_.tracer, "service/report_failed", "service");
  span.Arg("datasize_gb", datasize_gb);
  ++failed_reports_;
  if (failed_reports_counter_ != nullptr) failed_reports_counter_->Increment();
  if (runs_failed_ != nullptr) runs_failed_->Increment();
  tuner_.ObserveFailedExternalRun(session_->space(), conf, datasize_gb,
                                  partial_seconds);
  const double key = NearestTunedKey(datasize_gb);
  if (!std::isnan(key)) {
    ++penalized_[key];
    const auto good = last_good_.find(key);
    if (good != last_good_.end()) {
      // Graceful degradation: serve the last conf known to finish.
      tuned_[key] = good->second;
    } else {
      // Nothing ever finished here — forget the size so the next
      // recommendation triggers a fresh (warm) tuning pass.
      tuned_.erase(key);
    }
  }
  Publish();
  return Status::OK();
}

int OnlineTuningService::penalized_count(double datasize_gb) const {
  const std::shared_ptr<const PublishedState> plan = Published();
  const double key = NearestTunedKeyIn(plan->tuned, datasize_gb,
                                       options_.retune_threshold);
  if (std::isnan(key)) return 0;
  const auto it = plan->penalized.find(key);
  return it == plan->penalized.end() ? 0 : it->second;
}

OnlineTuningService::StatusSnapshot OnlineTuningService::Snapshot() const {
  const std::shared_ptr<const PublishedState> plan = Published();
  StatusSnapshot snap;
  snap.app = session_->app().name;
  snap.recommendations = plan->recommendations;
  snap.reuses = plan->reuses;
  snap.tuning_passes = plan->tuning_passes;
  snap.failed_reports = plan->failed_reports;
  snap.tuned_sizes.reserve(plan->tuned.size());
  for (const auto& [ds, conf] : plan->tuned) snap.tuned_sizes.push_back(ds);
  snap.last_datasize_gb = plan->last_datasize_gb;
  snap.optimization_seconds = plan->optimization_seconds;
  if (plan->has_last_conf) {
    snap.last_conf = sparksim::SparkPropertiesToString(plan->last_conf);
  }
  if (const obs::Histogram* latency = latency_sink(); latency != nullptr) {
    snap.recommend_p50_s = latency->Quantile(0.50);
    snap.recommend_p95_s = latency->Quantile(0.95);
    snap.recommend_p99_s = latency->Quantile(0.99);
  }
  return snap;
}

std::vector<double> OnlineTuningService::tuned_sizes() const {
  const std::shared_ptr<const PublishedState> plan = Published();
  std::vector<double> sizes;
  sizes.reserve(plan->tuned.size());
  for (const auto& [ds, conf] : plan->tuned) sizes.push_back(ds);
  return sizes;
}

}  // namespace locat::core
