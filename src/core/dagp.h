#ifndef LOCAT_CORE_DAGP_H_
#define LOCAT_CORE_DAGP_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "math/matrix.h"
#include "ml/ei_mcmc.h"
#include "ml/gp_mode.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace locat::core {

/// Datasize-Aware Gaussian Process (Section 3.4): the BO surrogate that
/// models execution time as a function of the (encoded) configuration AND
/// the input data size, t = f(conf, ds) (equation (7)).
///
/// Inputs: an encoded configuration vector (full unit cube before IICP,
/// KPCA latent space after) concatenated with ds / ds_scale. Targets are
/// modeled in log space — execution times span orders of magnitude once
/// OOM-retry configurations appear, and the log transform keeps the GP
/// well-conditioned.
///
/// Hyperparameters are marginalized with EI-MCMC, so the data-size
/// dimension gets its own learned lengthscale: observations at 100 GB
/// inform predictions at 300 GB exactly to the extent the data supports.
class Dagp {
 public:
  struct Options {
    /// Data sizes are normalized by this many GB before entering the GP.
    double datasize_scale_gb = 1000.0;
    ml::EiMcmc::Options ei;
    /// Surrogate scaling mode. Unset (the default) follows the
    /// process-wide dispatch (`--gp-mode` / `LOCAT_GP_MODE`). All modes
    /// are bit-identical full refits at or below the switch threshold.
    std::optional<ml::GpMode> gp_mode;
    /// Observation count above which incremental/sparse modes engage.
    /// 0 (the default) follows the process-wide threshold
    /// (`LOCAT_GP_THRESHOLD`, default 240).
    size_t gp_switch_threshold = 0;
    /// Inducing-set size for sparse mode. 0 (the default) uses 5/6 of the
    /// switch threshold, so a sparse refit stays comfortably cheaper than
    /// the largest exact refit ever performed.
    size_t sparse_inducing = 0;
    /// Incremental mode: once the history grows past this factor of the
    /// last full fit's size, run one full MCMC refit to unfreeze the
    /// hyperparameters (e.g. 2.0 = refresh each time n doubles). 0 (the
    /// default) never refreshes.
    double incremental_refresh_factor = 0.0;

    Options() {}
  };

  /// How the most recent successful Refit() updated the model — exposed
  /// for the numerical-contract tests and telemetry.
  enum class RefitKind {
    kNone = 0,    // no successful refit yet
    kFull = 1,    // full EI-MCMC refit on the whole history
    kAppend = 2,  // rank-1 appends onto the frozen ensemble
    kSparse = 3,  // full EI-MCMC refit on a greedy max-min subset
  };

  explicit Dagp(Options options = Options()) : options_(options) {}

  /// Adds one observation (encoded conf, data size, measured seconds).
  /// All observations must share the encoding dimension.
  void AddObservation(const math::Vector& encoded_conf, double datasize_gb,
                      double seconds);

  /// Discards all observations (used when the encoding changes after
  /// IICP; callers re-add re-encoded history).
  void Clear();

  /// Refits the surrogate on the current observations (>= 2). The path
  /// taken depends on the effective gp mode (see Options::gp_mode):
  /// exact always refits the full history; incremental switches to O(n^2)
  /// rank-1 appends (no RNG consumed) once the fitted history exceeds the
  /// switch threshold; sparse refits on a greedy max-min subset once the
  /// history exceeds the threshold. At or below the threshold every mode
  /// runs the identical full refit (same RNG draws), so recommendations
  /// are bit-exact across modes there.
  Status Refit(Rng* rng);

  /// Expected improvement of a candidate at a data size (log-space EI,
  /// averaged over the hyperparameter posterior). Requires a prior Refit.
  double ExpectedImprovement(const math::Vector& encoded_conf,
                             double datasize_gb) const;

  /// Expected improvement of many candidates at one data size in a single
  /// batched pass: one cross-kernel and one blocked triangular solve per
  /// ensemble member instead of one per candidate. Entry i corresponds to
  /// `encoded_confs[i]`; results are bit-identical for any thread count.
  math::Vector ExpectedImprovementBatch(
      const std::vector<math::Vector>& encoded_confs,
      double datasize_gb) const;

  /// Relative EI for the stop rule: EI / |log best| is awkward, so we use
  /// the paper-faithful quantity "expected fractional runtime improvement"
  /// = 1 - exp(-EI_log), which is ~EI_log for small values. Stop when this
  /// drops below 0.10.
  double RelativeExpectedImprovement(const math::Vector& encoded_conf,
                                     double datasize_gb) const;

  /// Predicted seconds (posterior-mean in log space, de-transformed) and
  /// a crude variance on the seconds scale.
  struct Prediction {
    double seconds = 0.0;
    double log_variance = 0.0;
  };
  Prediction Predict(const math::Vector& encoded_conf,
                     double datasize_gb) const;

  /// Batched Predict for (conf, ds) pairs; `datasizes_gb` must be the
  /// same length as `encoded_confs`.
  std::vector<Prediction> PredictBatch(
      const std::vector<math::Vector>& encoded_confs,
      const std::vector<double>& datasizes_gb) const;

  int num_observations() const { return static_cast<int>(y_.size()); }
  bool fitted() const { return model_.fitted(); }
  /// Best (lowest) observed seconds so far.
  double best_seconds() const;

  /// Wires tracing/metrics sinks (either may be null). Purely
  /// observational: never changes fit results or RNG consumption.
  void SetObservability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);

  /// MCMC telemetry of the most recent successful Refit().
  const ml::EiMcmc::FitStats& last_fit_stats() const {
    return model_.last_fit_stats();
  }

  /// The path the most recent successful Refit() took.
  RefitKind last_refit_kind() const { return last_refit_kind_; }

  /// The underlying EI-MCMC ensemble (read-only; for the
  /// numerical-contract tests).
  const ml::EiMcmc& model() const { return model_; }

  /// Observations the fitted model currently incorporates (== the subset
  /// size in sparse mode, == num_observations() otherwise after a
  /// successful Refit).
  size_t model_observations() const {
    return model_.fitted() ? model_.ensemble().front().num_points() : 0;
  }

 private:
  math::Vector Assemble(const math::Vector& encoded_conf,
                        double datasize_gb) const;

  /// Full EI-MCMC refit on rows `idx` of the history (all rows when
  /// `idx` is null).
  Status FullRefit(const std::vector<size_t>* idx, Rng* rng);

  Options options_;
  std::vector<math::Vector> x_;  // encoded conf + normalized ds
  std::vector<double> y_;        // log(seconds)
  ml::EiMcmc model_{};
  size_t fitted_n_ = 0;       // history size the model has incorporated
  size_t last_full_fit_n_ = 0;  // history size at the last full MCMC fit
  RefitKind last_refit_kind_ = RefitKind::kNone;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* refits_counter_ = nullptr;
  obs::Counter* mcmc_evals_counter_ = nullptr;
  obs::Counter* appends_counter_ = nullptr;
  obs::Counter* sparse_refits_counter_ = nullptr;
  obs::Histogram* refit_seconds_hist_ = nullptr;
};

}  // namespace locat::core

#endif  // LOCAT_CORE_DAGP_H_
