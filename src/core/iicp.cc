#include "core/iicp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "ml/spearman.h"

namespace locat::core {
namespace {

// Median pairwise Euclidean distance over the rows of x; the standard
// Gaussian-kernel bandwidth heuristic.
double MedianPairwiseDistance(const math::Matrix& x) {
  std::vector<double> dists;
  for (size_t i = 0; i < x.rows(); ++i) {
    for (size_t j = i + 1; j < x.rows(); ++j) {
      dists.push_back((x.Row(i) - x.Row(j)).Norm());
    }
  }
  if (dists.empty()) return 1.0;
  std::nth_element(dists.begin(), dists.begin() + dists.size() / 2,
                   dists.end());
  const double med = dists[dists.size() / 2];
  return med > 1e-9 ? med : 1.0;
}

}  // namespace

math::Vector IicpResult::SelectDims(const math::Vector& unit_conf) const {
  math::Vector out(selected_.size());
  for (size_t i = 0; i < selected_.size(); ++i) {
    out[i] = unit_conf[static_cast<size_t>(selected_[i])] * weights_[i];
  }
  return out;
}

math::Vector IicpResult::Encode(const math::Vector& unit_conf) const {
  return kpca_.Project(SelectDims(unit_conf));
}

StatusOr<math::Vector> IicpResult::DecodeSelected(
    const math::Vector& latent) const {
  auto preimage = kpca_.GaussianPreimage(latent);
  if (!preimage.ok()) return preimage.status();
  math::Vector out = std::move(preimage).value();
  for (size_t i = 0; i < out.size(); ++i) {
    // Undo the CPS weighting, then clamp back into the unit range.
    out[i] = std::clamp(out[i] / weights_[i], 0.0, 1.0);
  }
  return out;
}

StatusOr<IicpResult> Iicp::Run(const math::Matrix& unit_confs,
                               const std::vector<double>& times,
                               const IicpOptions& options,
                               obs::Tracer* tracer) {
  const size_t n = unit_confs.rows();
  const size_t d = unit_confs.cols();
  if (n < 4 || times.size() != n) {
    return Status::InvalidArgument(
        "IICP needs >= 4 samples with matching times");
  }
  obs::ScopedSpan run_span(tracer, "iicp/run", "analysis");

  IicpResult result;
  result.scc_abs_.resize(d, 0.0);

  // --- CPS: Spearman correlation of each parameter against runtime.
  {
    obs::ScopedSpan cps_span(tracer, "iicp/cps", "analysis");
    std::vector<double> column(n);
    for (size_t p = 0; p < d; ++p) {
      for (size_t i = 0; i < n; ++i) column[i] = unit_confs(i, p);
      result.scc_abs_[p] =
          std::fabs(ml::SpearmanCorrelation(column, times));
      if (result.scc_abs_[p] >= options.scc_threshold) {
        result.selected_.push_back(static_cast<int>(p));
      }
    }
    if (result.selected_.size() < 3) {
      // Keep the 3 strongest correlations so CPE always has something to
      // work with.
      std::vector<int> order(d);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return result.scc_abs_[static_cast<size_t>(a)] >
               result.scc_abs_[static_cast<size_t>(b)];
      });
      result.selected_.assign(order.begin(), order.begin() + 3);
      std::sort(result.selected_.begin(), result.selected_.end());
    }
    cps_span.Arg("params", static_cast<double>(d));
    cps_span.Arg("selected", static_cast<double>(result.selected_.size()));
  }

  // --- CPE: Gaussian-kernel KPCA on the CPS-selected dimensions. This is
  // where the "hybrid" of selection and extraction bites: each selected
  // dimension is scaled by its CPS correlation strength, so the kernel's
  // principal directions emphasize runtime-relevant parameters instead of
  // plain configuration variance.
  obs::ScopedSpan cpe_span(tracer, "iicp/cpe", "analysis");
  double max_scc = 1e-9;
  for (int p : result.selected_) {
    max_scc = std::max(max_scc, result.scc_abs_[static_cast<size_t>(p)]);
  }
  result.weights_.resize(result.selected_.size());
  for (size_t j = 0; j < result.selected_.size(); ++j) {
    const double w =
        result.scc_abs_[static_cast<size_t>(result.selected_[j])] / max_scc;
    result.weights_[j] = std::max(0.25, w);
  }
  math::Matrix reduced(n, result.selected_.size());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < result.selected_.size(); ++j) {
      reduced(i, j) =
          unit_confs(i, static_cast<size_t>(result.selected_[j])) *
          result.weights_[j];
    }
  }
  double bandwidth = options.kernel_bandwidth;
  if (bandwidth <= 0.0) {
    // Median-distance heuristic with a floor at the expected distance of
    // uniform points in the [0,1]^m cube (~sqrt(m/6)); without the floor,
    // clustered training samples yield a bandwidth so small that unseen
    // configurations all project to the same constant.
    const double uniform_scale =
        std::sqrt(static_cast<double>(result.selected_.size()) / 6.0);
    bandwidth = std::max(MedianPairwiseDistance(reduced), uniform_scale);
  }
  result.kernel_ = std::make_shared<ml::GaussianKernel>(bandwidth);

  ml::Kpca::Options kopts;
  kopts.variance_to_retain = options.kpca_variance_to_retain;
  kopts.max_components = options.kpca_max_components;
  LOCAT_RETURN_IF_ERROR(result.kpca_.Fit(reduced, result.kernel_.get(), kopts));
  cpe_span.Arg("bandwidth", bandwidth);
  cpe_span.Arg("latent_dim", static_cast<double>(result.latent_dim()));
  run_span.Arg("samples", static_cast<double>(n));
  run_span.Arg("selected", static_cast<double>(result.selected_.size()));
  run_span.Arg("latent_dim", static_cast<double>(result.latent_dim()));
  return result;
}

}  // namespace locat::core
