#ifndef LOCAT_CORE_IICP_H_
#define LOCAT_CORE_IICP_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "math/matrix.h"
#include "ml/kernels.h"
#include "ml/kpca.h"
#include "obs/trace.h"

namespace locat::core {

/// Options of the IICP pipeline (Section 3.3).
struct IicpOptions {
  /// CPS keeps parameters with |Spearman correlation| >= this bound; 0.2
  /// is the paper's "poor correlation" cutoff.
  double scc_threshold = 0.2;
  /// KPCA component-retention rule for CPE.
  double kpca_variance_to_retain = 0.90;
  int kpca_max_components = 0;  // 0 = no cap
  /// Gaussian-kernel bandwidth for CPE; <= 0 selects the median pairwise
  /// distance heuristic.
  double kernel_bandwidth = 0.0;

  IicpOptions() {}
};

/// Result of IICP: which parameters CPS kept, and the fitted KPCA that CPE
/// uses to extract the "new parameters" fed to the DAGP.
class IicpResult {
 public:
  /// Indices (into the 38-parameter vector) that CPS selected, ascending.
  const std::vector<int>& selected_params() const { return selected_; }

  /// |SCC| of every original parameter against the execution time.
  const std::vector<double>& spearman_abs() const { return scc_abs_; }

  /// Latent dimension CPE extracted.
  int latent_dim() const { return kpca_.num_components(); }

  /// Projects a full unit-cube configuration (38 dims) to the latent
  /// space: select CPS dims, then apply KPCA.
  math::Vector Encode(const math::Vector& unit_conf) const;

  /// Restriction of a unit configuration to the CPS-selected dimensions,
  /// scaled by the CPS correlation weights (the hybrid step: CPE's kernel
  /// sees runtime-relevant directions amplified).
  math::Vector SelectDims(const math::Vector& unit_conf) const;

  /// Per-selected-dimension weights (|SCC| normalized to max 1, floored).
  const std::vector<double>& dim_weights() const { return weights_; }

  /// Approximately inverts Encode on the CPS-selected subspace (Gaussian
  /// pre-image); entries of the returned vector are in [0,1] order of
  /// selected_params(). Mainly useful for reporting a latent optimum as
  /// original parameter values.
  StatusOr<math::Vector> DecodeSelected(const math::Vector& latent) const;

  const ml::Kpca& kpca() const { return kpca_; }

 private:
  friend class Iicp;
  std::vector<int> selected_;
  std::vector<double> scc_abs_;
  std::vector<double> weights_;
  std::shared_ptr<ml::GaussianKernel> kernel_;  // owns the KPCA kernel
  ml::Kpca kpca_;
};

/// Identifying Important Configuration Parameters: CPS (Spearman filter)
/// followed by CPE (Gaussian-kernel KPCA).
class Iicp {
 public:
  /// Runs IICP on N_IICP samples: `unit_confs` is n x 38 (configurations
  /// in unit-cube coordinates), `times[i]` the matching execution time.
  /// Requires n >= 4. Never returns an empty selection: when no parameter
  /// clears the SCC bound, the top-3 by |SCC| are kept (the paper's
  /// pipeline implicitly assumes at least some correlated parameters).
  ///
  /// `tracer` (optional) records the CPS and CPE stages as nested spans.
  static StatusOr<IicpResult> Run(const math::Matrix& unit_confs,
                                  const std::vector<double>& times,
                                  const IicpOptions& options = IicpOptions(),
                                  obs::Tracer* tracer = nullptr);
};

}  // namespace locat::core

#endif  // LOCAT_CORE_IICP_H_
