#include "core/dagp.h"

#include <algorithm>
#include <cmath>

namespace locat::core {

math::Vector Dagp::Assemble(const math::Vector& encoded_conf,
                            double datasize_gb) const {
  math::Vector x(encoded_conf.size() + 1);
  for (size_t i = 0; i < encoded_conf.size(); ++i) x[i] = encoded_conf[i];
  x[encoded_conf.size()] = datasize_gb / options_.datasize_scale_gb;
  return x;
}

void Dagp::AddObservation(const math::Vector& encoded_conf,
                          double datasize_gb, double seconds) {
  assert(seconds > 0.0);
  x_.push_back(Assemble(encoded_conf, datasize_gb));
  y_.push_back(std::log(seconds));
}

void Dagp::Clear() {
  x_.clear();
  y_.clear();
  model_ = ml::EiMcmc(options_.ei);
}

void Dagp::SetObservability(obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  if (metrics != nullptr) {
    refits_counter_ = metrics->GetCounter(
        "locat_dagp_refits_total", "EI-MCMC ensemble refits performed");
    mcmc_evals_counter_ = metrics->GetCounter(
        "locat_dagp_mcmc_density_evals_total",
        "GP log-marginal-likelihood evaluations spent in slice sampling");
    refit_seconds_hist_ = metrics->GetHistogram(
        "locat_dagp_refit_seconds", "Wall-clock seconds per DAGP refit",
        {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0});
  } else {
    refits_counter_ = nullptr;
    mcmc_evals_counter_ = nullptr;
    refit_seconds_hist_ = nullptr;
  }
}

Status Dagp::Refit(Rng* rng) {
  if (y_.size() < 2) {
    return Status::FailedPrecondition("DAGP needs >= 2 observations");
  }
  obs::ScopedSpan span(tracer_, "dagp/refit", "model");
  const size_t dim = x_.front().size();
  math::Matrix x(y_.size(), dim);
  math::Vector y(y_.size());
  for (size_t i = 0; i < y_.size(); ++i) {
    x.SetRow(i, x_[i]);
    y[i] = y_[i];
  }
  model_ = ml::EiMcmc(options_.ei);
  const Status status = model_.Fit(x, y, rng);
  if (status.ok()) {
    const ml::EiMcmc::FitStats& stats = model_.last_fit_stats();
    span.Arg("n", static_cast<double>(y_.size()));
    span.Arg("dim", static_cast<double>(dim));
    span.Arg("ensemble", stats.ensemble_size);
    span.Arg("density_evals",
             static_cast<double>(stats.sampler.density_evals));
    if (refits_counter_ != nullptr) refits_counter_->Increment();
    if (mcmc_evals_counter_ != nullptr) {
      mcmc_evals_counter_->Increment(
          static_cast<double>(stats.sampler.density_evals));
    }
    if (refit_seconds_hist_ != nullptr) {
      refit_seconds_hist_->Observe(stats.wall_seconds);
    }
  }
  return status;
}

double Dagp::ExpectedImprovement(const math::Vector& encoded_conf,
                                 double datasize_gb) const {
  assert(model_.fitted());
  return model_.AcquisitionValue(Assemble(encoded_conf, datasize_gb));
}

math::Vector Dagp::ExpectedImprovementBatch(
    const std::vector<math::Vector>& encoded_confs,
    double datasize_gb) const {
  assert(model_.fitted());
  if (encoded_confs.empty()) return math::Vector();
  const size_t dim = encoded_confs.front().size() + 1;
  math::Matrix xs(encoded_confs.size(), dim);
  for (size_t i = 0; i < encoded_confs.size(); ++i) {
    xs.SetRow(i, Assemble(encoded_confs[i], datasize_gb));
  }
  return model_.AcquisitionValueBatch(xs);
}

double Dagp::RelativeExpectedImprovement(const math::Vector& encoded_conf,
                                         double datasize_gb) const {
  const double ei_log = ExpectedImprovement(encoded_conf, datasize_gb);
  // In log space an improvement of delta corresponds to a runtime factor
  // exp(-delta); express EI as the expected fractional runtime reduction.
  return 1.0 - std::exp(-std::max(0.0, ei_log));
}

Dagp::Prediction Dagp::Predict(const math::Vector& encoded_conf,
                               double datasize_gb) const {
  assert(model_.fitted());
  const auto p = model_.PredictAveraged(Assemble(encoded_conf, datasize_gb));
  Prediction out;
  // Mean of a lognormal: exp(mu + sigma^2 / 2).
  out.seconds = std::exp(p.mean + 0.5 * p.variance);
  out.log_variance = p.variance;
  return out;
}

std::vector<Dagp::Prediction> Dagp::PredictBatch(
    const std::vector<math::Vector>& encoded_confs,
    const std::vector<double>& datasizes_gb) const {
  assert(model_.fitted());
  assert(encoded_confs.size() == datasizes_gb.size());
  std::vector<Prediction> out(encoded_confs.size());
  if (encoded_confs.empty()) return out;
  const size_t dim = encoded_confs.front().size() + 1;
  math::Matrix xs(encoded_confs.size(), dim);
  for (size_t i = 0; i < encoded_confs.size(); ++i) {
    xs.SetRow(i, Assemble(encoded_confs[i], datasizes_gb[i]));
  }
  const auto p = model_.PredictAveragedBatch(xs);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].seconds = std::exp(p.mean[i] + 0.5 * p.variance[i]);
    out[i].log_variance = p.variance[i];
  }
  return out;
}

double Dagp::best_seconds() const {
  if (y_.empty()) return 0.0;
  return std::exp(*std::min_element(y_.begin(), y_.end()));
}

}  // namespace locat::core
