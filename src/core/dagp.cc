#include "core/dagp.h"

#include <algorithm>
#include <cmath>

namespace locat::core {

math::Vector Dagp::Assemble(const math::Vector& encoded_conf,
                            double datasize_gb) const {
  math::Vector x(encoded_conf.size() + 1);
  for (size_t i = 0; i < encoded_conf.size(); ++i) x[i] = encoded_conf[i];
  x[encoded_conf.size()] = datasize_gb / options_.datasize_scale_gb;
  return x;
}

void Dagp::AddObservation(const math::Vector& encoded_conf,
                          double datasize_gb, double seconds) {
  assert(seconds > 0.0);
  x_.push_back(Assemble(encoded_conf, datasize_gb));
  y_.push_back(std::log(seconds));
}

void Dagp::Clear() {
  x_.clear();
  y_.clear();
  model_ = ml::EiMcmc(options_.ei);
}

Status Dagp::Refit(Rng* rng) {
  if (y_.size() < 2) {
    return Status::FailedPrecondition("DAGP needs >= 2 observations");
  }
  const size_t dim = x_.front().size();
  math::Matrix x(y_.size(), dim);
  math::Vector y(y_.size());
  for (size_t i = 0; i < y_.size(); ++i) {
    x.SetRow(i, x_[i]);
    y[i] = y_[i];
  }
  model_ = ml::EiMcmc(options_.ei);
  return model_.Fit(x, y, rng);
}

double Dagp::ExpectedImprovement(const math::Vector& encoded_conf,
                                 double datasize_gb) const {
  assert(model_.fitted());
  return model_.AcquisitionValue(Assemble(encoded_conf, datasize_gb));
}

double Dagp::RelativeExpectedImprovement(const math::Vector& encoded_conf,
                                         double datasize_gb) const {
  const double ei_log = ExpectedImprovement(encoded_conf, datasize_gb);
  // In log space an improvement of delta corresponds to a runtime factor
  // exp(-delta); express EI as the expected fractional runtime reduction.
  return 1.0 - std::exp(-std::max(0.0, ei_log));
}

Dagp::Prediction Dagp::Predict(const math::Vector& encoded_conf,
                               double datasize_gb) const {
  assert(model_.fitted());
  const auto p = model_.PredictAveraged(Assemble(encoded_conf, datasize_gb));
  Prediction out;
  // Mean of a lognormal: exp(mu + sigma^2 / 2).
  out.seconds = std::exp(p.mean + 0.5 * p.variance);
  out.log_variance = p.variance;
  return out;
}

double Dagp::best_seconds() const {
  if (y_.empty()) return 0.0;
  return std::exp(*std::min_element(y_.begin(), y_.end()));
}

}  // namespace locat::core
