#include "core/dagp.h"

#include <algorithm>
#include <cmath>

#include "ml/sparse_gp.h"

namespace locat::core {

math::Vector Dagp::Assemble(const math::Vector& encoded_conf,
                            double datasize_gb) const {
  math::Vector x(encoded_conf.size() + 1);
  for (size_t i = 0; i < encoded_conf.size(); ++i) x[i] = encoded_conf[i];
  x[encoded_conf.size()] = datasize_gb / options_.datasize_scale_gb;
  return x;
}

void Dagp::AddObservation(const math::Vector& encoded_conf,
                          double datasize_gb, double seconds) {
  assert(seconds > 0.0);
  x_.push_back(Assemble(encoded_conf, datasize_gb));
  y_.push_back(std::log(seconds));
}

void Dagp::Clear() {
  x_.clear();
  y_.clear();
  model_ = ml::EiMcmc(options_.ei);
  fitted_n_ = 0;
  last_full_fit_n_ = 0;
  last_refit_kind_ = RefitKind::kNone;
}

void Dagp::SetObservability(obs::Tracer* tracer,
                            obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  if (metrics != nullptr) {
    refits_counter_ = metrics->GetCounter(
        "locat_dagp_refits_total", "EI-MCMC ensemble refits performed");
    mcmc_evals_counter_ = metrics->GetCounter(
        "locat_dagp_mcmc_density_evals_total",
        "GP log-marginal-likelihood evaluations spent in slice sampling");
    refit_seconds_hist_ = metrics->GetHistogram(
        "locat_dagp_refit_seconds", "Wall-clock seconds per DAGP refit",
        {0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0});
    appends_counter_ = metrics->GetCounter(
        "locat_dagp_appends_total",
        "Observations absorbed by rank-1 ensemble appends (incremental "
        "mode) instead of full refits");
    sparse_refits_counter_ = metrics->GetCounter(
        "locat_dagp_sparse_refits_total",
        "Refits performed on a greedy max-min subset (sparse mode)");
  } else {
    refits_counter_ = nullptr;
    mcmc_evals_counter_ = nullptr;
    refit_seconds_hist_ = nullptr;
    appends_counter_ = nullptr;
    sparse_refits_counter_ = nullptr;
  }
}

Status Dagp::FullRefit(const std::vector<size_t>* idx, Rng* rng) {
  obs::ScopedSpan span(tracer_, "dagp/refit", "model");
  const size_t dim = x_.front().size();
  const size_t rows = idx != nullptr ? idx->size() : y_.size();
  math::Matrix x(rows, dim);
  math::Vector y(rows);
  for (size_t i = 0; i < rows; ++i) {
    const size_t r = idx != nullptr ? (*idx)[i] : i;
    x.SetRow(i, x_[r]);
    y[i] = y_[r];
  }
  model_ = ml::EiMcmc(options_.ei);
  const Status status = model_.Fit(x, y, rng);
  if (status.ok()) {
    const ml::EiMcmc::FitStats& stats = model_.last_fit_stats();
    span.Arg("n", static_cast<double>(rows));
    span.Arg("dim", static_cast<double>(dim));
    span.Arg("ensemble", stats.ensemble_size);
    span.Arg("density_evals",
             static_cast<double>(stats.sampler.density_evals));
    if (refits_counter_ != nullptr) refits_counter_->Increment();
    if (mcmc_evals_counter_ != nullptr) {
      mcmc_evals_counter_->Increment(
          static_cast<double>(stats.sampler.density_evals));
    }
    if (refit_seconds_hist_ != nullptr) {
      refit_seconds_hist_->Observe(stats.wall_seconds);
    }
  }
  return status;
}

Status Dagp::Refit(Rng* rng) {
  const size_t n = y_.size();
  if (n < 2) {
    return Status::FailedPrecondition("DAGP needs >= 2 observations");
  }
  const ml::GpMode mode = options_.gp_mode.value_or(ml::ActiveGpMode());
  const size_t threshold = options_.gp_switch_threshold != 0
                               ? options_.gp_switch_threshold
                               : ml::GpSwitchThreshold();

  if (mode == ml::GpMode::kIncremental && model_.fitted() &&
      fitted_n_ >= threshold && fitted_n_ <= n) {
    const bool refresh_due =
        options_.incremental_refresh_factor > 1.0 &&
        static_cast<double>(n) >= options_.incremental_refresh_factor *
                                      static_cast<double>(last_full_fit_n_);
    if (!refresh_due) {
      // Absorb the new observations by rank-1 ensemble appends: O(n^2)
      // per observation, hyperparameters frozen, no RNG consumed. A
      // failed append (near-singular extension in every member) falls
      // back to the full path below.
      obs::ScopedSpan span(tracer_, "dagp/append", "model");
      bool ok = true;
      size_t appended = 0;
      for (size_t i = fitted_n_; i < n; ++i) {
        if (!model_.AppendObservation(x_[i], y_[i]).ok()) {
          ok = false;
          break;
        }
        ++appended;
      }
      if (ok) {
        fitted_n_ = n;
        last_refit_kind_ = RefitKind::kAppend;
        span.Arg("n", static_cast<double>(n));
        span.Arg("appended", static_cast<double>(appended));
        if (appends_counter_ != nullptr && appended > 0) {
          appends_counter_->Increment(static_cast<double>(appended));
        }
        return Status::OK();
      }
      // Partial appends are fine to keep: the full refit below rebuilds
      // the model from the authoritative history anyway.
    }
  }

  if (mode == ml::GpMode::kSparse && n > threshold) {
    // Refit on a greedy max-min subset seeded at the incumbent, so the
    // best observation is always in the active set and the rest spread
    // over the design space. O(m^3) regardless of history length.
    size_t m = options_.sparse_inducing != 0 ? options_.sparse_inducing
                                             : threshold - threshold / 6;
    m = std::max<size_t>(2, std::min(m, n));
    size_t seed = 0;
    for (size_t i = 1; i < n; ++i) {
      if (y_[i] < y_[seed]) seed = i;
    }
    const size_t dim = x_.front().size();
    math::Matrix all(n, dim);
    for (size_t i = 0; i < n; ++i) all.SetRow(i, x_[i]);
    const std::vector<size_t> idx = ml::GreedyMaxMinSubset(all, m, seed);
    const Status status = FullRefit(&idx, rng);
    if (status.ok()) {
      fitted_n_ = n;
      last_full_fit_n_ = n;
      last_refit_kind_ = RefitKind::kSparse;
      if (sparse_refits_counter_ != nullptr) {
        sparse_refits_counter_->Increment();
      }
    }
    return status;
  }

  const Status status = FullRefit(nullptr, rng);
  if (status.ok()) {
    fitted_n_ = n;
    last_full_fit_n_ = n;
    last_refit_kind_ = RefitKind::kFull;
  }
  return status;
}

double Dagp::ExpectedImprovement(const math::Vector& encoded_conf,
                                 double datasize_gb) const {
  assert(model_.fitted());
  return model_.AcquisitionValue(Assemble(encoded_conf, datasize_gb));
}

math::Vector Dagp::ExpectedImprovementBatch(
    const std::vector<math::Vector>& encoded_confs,
    double datasize_gb) const {
  assert(model_.fitted());
  if (encoded_confs.empty()) return math::Vector();
  const size_t dim = encoded_confs.front().size() + 1;
  math::Matrix xs(encoded_confs.size(), dim);
  for (size_t i = 0; i < encoded_confs.size(); ++i) {
    xs.SetRow(i, Assemble(encoded_confs[i], datasize_gb));
  }
  return model_.AcquisitionValueBatch(xs);
}

double Dagp::RelativeExpectedImprovement(const math::Vector& encoded_conf,
                                         double datasize_gb) const {
  const double ei_log = ExpectedImprovement(encoded_conf, datasize_gb);
  // In log space an improvement of delta corresponds to a runtime factor
  // exp(-delta); express EI as the expected fractional runtime reduction.
  return 1.0 - std::exp(-std::max(0.0, ei_log));
}

Dagp::Prediction Dagp::Predict(const math::Vector& encoded_conf,
                               double datasize_gb) const {
  assert(model_.fitted());
  const auto p = model_.PredictAveraged(Assemble(encoded_conf, datasize_gb));
  Prediction out;
  // Mean of a lognormal: exp(mu + sigma^2 / 2).
  out.seconds = std::exp(p.mean + 0.5 * p.variance);
  out.log_variance = p.variance;
  return out;
}

std::vector<Dagp::Prediction> Dagp::PredictBatch(
    const std::vector<math::Vector>& encoded_confs,
    const std::vector<double>& datasizes_gb) const {
  assert(model_.fitted());
  assert(encoded_confs.size() == datasizes_gb.size());
  std::vector<Prediction> out(encoded_confs.size());
  if (encoded_confs.empty()) return out;
  const size_t dim = encoded_confs.front().size() + 1;
  math::Matrix xs(encoded_confs.size(), dim);
  for (size_t i = 0; i < encoded_confs.size(); ++i) {
    xs.SetRow(i, Assemble(encoded_confs[i], datasizes_gb[i]));
  }
  const auto p = model_.PredictAveragedBatch(xs);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i].seconds = std::exp(p.mean[i] + 0.5 * p.variance[i]);
    out[i].log_variance = p.variance[i];
  }
  return out;
}

double Dagp::best_seconds() const {
  if (y_.empty()) return 0.0;
  return std::exp(*std::min_element(y_.begin(), y_.end()));
}

}  // namespace locat::core
