#ifndef LOCAT_CORE_LOCAT_TUNER_H_
#define LOCAT_CORE_LOCAT_TUNER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/retry_policy.h"
#include "common/rng.h"
#include "core/dagp.h"
#include "core/iicp.h"
#include "core/qcsa.h"
#include "core/tuning.h"

namespace locat::core {

/// The LOCAT auto-tuner (Figure 3): BO with a Datasize-Aware GP, QCSA
/// query reduction, and IICP parameter reduction.
///
/// Cold start (first Tune call):
///   1. 3 Latin-Hypercube start points, then BO iterations over the full
///      38-parameter space, running the full application — these runs
///      double as the N_QCSA/N_IICP sample set (Section 5.1/5.3: LOCAT
///      does not collect extra samples; it reuses the BO executions).
///   2. After N_QCSA runs: QCSA removes configuration-insensitive queries;
///      subsequent evaluations execute only the RQA.
///   3. IICP (on the first N_IICP samples): CPS Spearman filter + CPE
///      Gaussian-KPCA produce a low-dimensional encoding; the DAGP history
///      is re-encoded and BO continues in the latent space.
///   4. Stop once >= min_iterations reduced-space iterations ran and the
///      best candidate's relative EI drops below ei_stop (10%).
///
/// Warm start (later Tune calls with a different data size): the DAGP
/// already models t = f(conf, ds), so only warm_iterations RQA runs at the
/// new size are needed — the paper's online data-size adaptation.
class LocatTuner : public Tuner {
 public:
  struct Options {
    int n_qcsa = 30;
    int n_iicp = 20;
    int lhs_init = 3;
    /// Reduced-space iteration floor/cap and the EI stop bound.
    int min_iterations = 25;
    int max_iterations = 55;
    double ei_stop = 0.02;
    /// Candidate pool per BO iteration.
    int candidates = 900;
    /// Iteration cap when re-tuning for a new data size (warm start).
    int warm_iterations = 12;
    uint64_t seed = 1;
    /// Ablation switches: Figure 15's "AP" variant sets enable_iicp =
    /// false; Section 5.10 isolates QCSA/IICP via these too.
    bool enable_qcsa = true;
    bool enable_iicp = true;
    IicpOptions iicp;
    Dagp::Options dagp;
    /// Failure handling: per-evaluation retry budget (backoff is charged
    /// to the optimization-time meter) and the censored-cost margin
    /// applied to worst-seen when a config keeps dying.
    common::RetryPolicy retry;
    double censor_margin = 2.0;

    Options() {}
  };

  explicit LocatTuner(Options options = Options());

  std::string name() const override;
  TuningResult Tune(TuningSession* session, double datasize_gb) override;
  void SetObservability(const obs::ObsContext& obs) override;

  /// One transferable observation: a full-space unit configuration, the
  /// data size it ran at and the objective it achieved. This is the
  /// currency of cross-application warm starts — unit coordinates are
  /// app-independent, so observations harvested from one tuner can seed
  /// another app's surrogate.
  struct PriorObservation {
    math::Vector unit;              // full 38-dim unit configuration
    double datasize_gb = 0.0;
    double objective_seconds = 0.0;
  };

  /// Seeds the DAGP with observations transferred from other (similar)
  /// applications BEFORE the cold start — the retrieval-augmented warm
  /// start of ROADMAP item 1. The priors enter the surrogate only (never
  /// the incumbent, QCSA/IICP statistics or the trajectory), and only at
  /// the QCSA/IICP rebuild, rescaled (median-to-median, anchored at the
  /// donor data size nearest this tune's size) to this app's objective
  /// level so the two scales never mix; `pessimism` (>= 1) lifts the
  /// rescaled donor objectives so real observations win ties. The donor's
  /// claimed-best configuration additionally gets one real probe run
  /// right after the rebuild, so a good transfer immediately becomes the
  /// incumbent. The cold start runs a reduced schedule: a third of the
  /// QCSA sampling budget and of the reduced-space iteration floor/cap,
  /// because the transferred surrogate stands in for the missing
  /// samples. Entries with a
  /// non-positive objective or a wrong dimension are dropped. Calls after
  /// the cold start (or with nothing valid to seed) are no-ops, so a
  /// tuner that never receives priors behaves byte-identically to one
  /// where this method does not exist.
  void SeedPriorObservations(std::vector<PriorObservation> priors,
                             double pessimism = 1.0);

  /// Seeds the configuration-sensitive query set from a donor app (or
  /// this app's own pre-eviction history). QCSA sensitivity is a property
  /// of the application's queries, so a similar app's full-budget CSQ
  /// statistics beat the handful of samples a warm start's shrunken
  /// schedule can afford; when set (and priors were seeded), the cold
  /// start adopts these indices as the RQA instead of its own QCSA
  /// estimate. Out-of-range indices are dropped; an empty (or fully
  /// invalid) hint, or a call after the cold start, is a no-op.
  void SeedRqaHint(std::vector<int> csq_indices);

  /// Exports up to `cap` successful observations (evenly strided over the
  /// history so the sample spans the whole search, most representative
  /// first-to-last) for transfer to another application's warm start.
  /// Failed/censored observations are never exported.
  std::vector<PriorObservation> ExportObservations(size_t cap) const;

  /// Number of observations recorded so far (successful + censored).
  size_t num_observations() const { return observations_.size(); }

  /// True once prior observations were seeded (and will shape the cold
  /// start).
  bool warm_started() const { return !priors_.empty(); }

  /// Feeds an already-executed production run into the DAGP (the online
  /// path: production runs are free observations). The full-application
  /// time is converted to the RQA-equivalent objective via the CSQ share
  /// estimated during the cold start; before the cold start the call is a
  /// no-op.
  void ObserveExternalRun(const sparksim::ConfigSpace& space,
                          const sparksim::SparkConf& conf,
                          double datasize_gb, double full_app_seconds);

  /// Feeds a *failed* production run into the DAGP: the config gets the
  /// censored penalty cost (worst-seen x margin, at least the partial
  /// time observed) so the model steers away from the region. No-op
  /// before the cold start.
  void ObserveFailedExternalRun(const sparksim::ConfigSpace& space,
                                const sparksim::SparkConf& conf,
                                double datasize_gb,
                                double partial_seconds = 0.0);

  /// Cumulative evaluations that ended failed (after retries), across all
  /// Tune passes and external reports.
  int failed_evaluations() const { return failed_evals_; }

  /// Introspection for benches/tests; null before the cold start finishes
  /// the respective phase.
  const QcsaResult* qcsa_result() const {
    return qcsa_ ? &*qcsa_ : nullptr;
  }
  const IicpResult* iicp_result() const {
    return iicp_ ? &*iicp_ : nullptr;
  }
  /// Query indices the RQA executes (all queries before QCSA/when
  /// disabled).
  const std::vector<int>& rqa_indices() const { return rqa_; }

 private:
  struct Observation {
    math::Vector unit;                // full 38-dim unit configuration
    double datasize_gb = 0.0;
    double objective_seconds = 0.0;   // RQA-equivalent objective, or the
                                      // censored penalty when failed
    std::vector<double> per_query;    // successful full-app runs only
    bool failed = false;              // run died even after retries
  };

  /// Encoded representation for the DAGP (latent after IICP, identity
  /// before).
  math::Vector EncodeUnit(const math::Vector& unit) const;

  /// Runs one evaluation (full app or RQA depending on phase), records it
  /// in the observation log and the DAGP, and updates the incumbent.
  double EvaluateAndRecord(TuningSession* session,
                           const sparksim::SparkConf& conf,
                           double datasize_gb, bool full_app);

  /// Shared failure-aware tail of the scalar and batched paths: retries a
  /// failed first attempt within the retry budget (backoff charged to the
  /// meter), imputes the censored cost when it keeps failing, then does
  /// the usual bookkeeping (observation log, DAGP, incumbent — never
  /// updated from a failed run — trajectory, telemetry). `eval_seconds`
  /// carries the first attempt's charged seconds in and accumulates
  /// retry/backoff seconds for the emitted event.
  double FinishEvaluation(TuningSession* session,
                          const sparksim::SparkConf& conf,
                          double datasize_gb, bool full_app,
                          StatusOr<EvalRecord> rec_or,
                          double* eval_seconds);

  /// Batched EvaluateAndRecord: one RunAppBatch fan-out for all
  /// configurations, then the identical per-run bookkeeping in order —
  /// observations, DAGP, incumbent, trajectory and telemetry all match
  /// the sequential loop bit-for-bit.
  void EvaluateAndRecordBatch(TuningSession* session,
                              const std::vector<sparksim::SparkConf>& confs,
                              double datasize_gb, bool full_app);

  /// Proposes the next configuration by maximizing EI over a candidate
  /// pool; returns the winning unit vector and its relative EI.
  struct Proposal {
    math::Vector unit;
    double relative_ei = 0.0;
  };
  Proposal ProposeNext(TuningSession* session, double datasize_gb);

  /// RQA-equivalent objective of a full-app run: CSQ query times plus the
  /// submit overhead share.
  double RqaObjective(const std::vector<double>& per_query,
                      double full_seconds) const;

  void RunQcsaAndIicp(TuningSession* session);

  /// Sends one BoIterationEvent for a just-charged evaluation; no-op
  /// without an observer (the event is not even built).
  void EmitIteration(double datasize_gb, double eval_seconds,
                     double objective, bool full_app);

  Options options_;
  Rng rng_;
  bool cold_started_ = false;
  /// Transferred observations (cross-app warm start). They live in the
  /// DAGP only — never in observations_, so the incumbent, trajectory,
  /// QCSA/IICP statistics and duplicate checks see exclusively this
  /// app's own runs.
  std::vector<PriorObservation> priors_;
  /// Multiplier (>= 1) applied to prior objectives after they are rescaled
  /// to this app's objective level at the QCSA/IICP rebuild.
  double prior_pessimism_ = 1.0;
  /// The donors' claimed-best units (lowest prior objectives at the
  /// anchor data size, pairwise-diverse); probed with real evaluations
  /// right after the QCSA/IICP rebuild so a genuinely good transfer
  /// immediately becomes the incumbent the reduced-space families refine.
  /// Several diverse probes instead of the single best: a tuned donor
  /// configuration often sits at a resource-efficiency edge (tight
  /// memory overhead), and the recipient's slightly different profile
  /// can push exactly that point into failure. Empty without priors.
  std::vector<math::Vector> prior_probe_units_;
  /// Transferred CSQ indices (see SeedRqaHint); adopted as the RQA at the
  /// rebuild when priors were seeded.
  std::vector<int> prior_rqa_;
  std::optional<QcsaResult> qcsa_;
  std::optional<IicpResult> iicp_;
  std::vector<int> rqa_;
  Dagp dagp_;
  std::vector<Observation> observations_;
  sparksim::SparkConf best_conf_;
  double best_objective_ = 0.0;
  /// Worst *successful* objective seen (censored-cost anchor).
  double worst_objective_ = 0.0;
  int failed_evals_ = 0;
  bool exploit_only_ = false;
  double rqa_share_ = 1.0;  // mean RQA/full-app time ratio (cold start)
  std::vector<double> trajectory_;

  // Telemetry context for the next EmitIteration. Plain stores, updated
  // regardless of whether an observer is wired (they never feed back into
  // the search), so the disabled path stays branch-free.
  const char* phase_label_ = "lhs";
  double pending_relative_ei_ = 0.0;
  int pending_candidate_pool_ = 0;
  double pending_acq_seconds_ = 0.0;
  int iter_in_pass_ = 0;
};

}  // namespace locat::core

#endif  // LOCAT_CORE_LOCAT_TUNER_H_
