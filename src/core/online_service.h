#ifndef LOCAT_CORE_ONLINE_SERVICE_H_
#define LOCAT_CORE_ONLINE_SERVICE_H_

#include <map>
#include <string>
#include <vector>

#include "core/locat_tuner.h"
#include "core/tuning.h"

namespace locat::core {

/// The production loop the paper targets (Section 3.1: "a Spark SQL
/// application repeatedly runs many times with the size of input data
/// changing over time"), packaged as a service:
///
///   OnlineTuningService service(&session, options);
///   for each incoming run:
///     auto conf = service.RecommendedConf(todays_datasize_gb).value();
///     ... submit with conf; optionally report the outcome back ...
///     service.ReportRun(todays_datasize_gb, conf, observed_seconds);
///
/// The service owns one LocatTuner. The first recommendation triggers the
/// cold-start tuning pass; later recommendations for *new* data sizes run
/// a short warm adaptation only when the size differs enough from
/// anything tuned before (relative gap > retune_threshold); otherwise the
/// nearest tuned configuration is reused instantly. Reported production
/// runs feed the DAGP as free observations.
class OnlineTuningService {
 public:
  struct Options {
    LocatTuner::Options tuner;
    /// Re-tune when the requested size differs from every tuned size by
    /// more than this relative factor. The gap is symmetric:
    /// |ds - tuned| / max(ds, tuned), so 100 -> 130 and 130 -> 100 make
    /// the same reuse decision.
    double retune_threshold = 0.25;

    Options() {}
  };

  /// `session` must outlive the service.
  OnlineTuningService(TuningSession* session, Options options = Options());

  /// Returns a configuration for this data size, tuning (cold or warm)
  /// when the service has nothing close enough yet. InvalidArgument when
  /// `datasize_gb` is not strictly positive.
  StatusOr<sparksim::SparkConf> RecommendedConf(double datasize_gb);

  /// Feeds an observed production run back into the model (not charged to
  /// the optimization meter — the run happened anyway). Improves later
  /// warm adaptations.
  void ReportRun(double datasize_gb, const sparksim::SparkConf& conf,
                 double observed_seconds);

  /// Simulated time spent on tuning so far (the service's total
  /// optimization overhead).
  double optimization_seconds() const {
    return session_->optimization_seconds();
  }

  /// Number of cold/warm tuning passes performed.
  int tuning_passes() const { return tuning_passes_; }

  /// Data sizes with a tuned configuration, ascending.
  std::vector<double> tuned_sizes() const;

  const LocatTuner& tuner() const { return tuner_; }

  /// Wires observability into the service and its tuner (the session is
  /// wired separately by whoever owns it). Purely observational.
  void SetObservability(const obs::ObsContext& obs);

 private:
  TuningSession* session_;
  Options options_;
  LocatTuner tuner_;
  std::map<double, sparksim::SparkConf> tuned_;  // ds -> best conf
  int tuning_passes_ = 0;
  obs::ObsContext obs_;
  obs::Counter* recommendations_counter_ = nullptr;
  obs::Counter* reuse_counter_ = nullptr;
  obs::Counter* tuning_passes_counter_ = nullptr;
};

}  // namespace locat::core

#endif  // LOCAT_CORE_ONLINE_SERVICE_H_
