#ifndef LOCAT_CORE_ONLINE_SERVICE_H_
#define LOCAT_CORE_ONLINE_SERVICE_H_

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "obs/metrics.h"

namespace locat::core {

/// The production loop the paper targets (Section 3.1: "a Spark SQL
/// application repeatedly runs many times with the size of input data
/// changing over time"), packaged as a service:
///
///   OnlineTuningService service(&session, options);
///   for each incoming run:
///     auto conf = service.RecommendedConf(todays_datasize_gb).value();
///     ... submit with conf; optionally report the outcome back ...
///     service.ReportRun(todays_datasize_gb, conf, observed_seconds);
///
/// The service owns one LocatTuner. The first recommendation triggers the
/// cold-start tuning pass; later recommendations for *new* data sizes run
/// a short warm adaptation only when the size differs enough from
/// anything tuned before (relative gap > retune_threshold); otherwise the
/// nearest tuned configuration is reused instantly. Reported production
/// runs feed the DAGP as free observations.
class OnlineTuningService {
 public:
  struct Options {
    LocatTuner::Options tuner;
    /// Re-tune when the requested size differs from every tuned size by
    /// more than this relative factor. The gap is symmetric:
    /// |ds - tuned| / max(ds, tuned), so 100 -> 130 and 130 -> 100 make
    /// the same reuse decision.
    double retune_threshold = 0.25;

    Options() {}
  };

  /// `session` must outlive the service.
  OnlineTuningService(TuningSession* session, Options options = Options());

  /// Returns a configuration for this data size, tuning (cold or warm)
  /// when the service has nothing close enough yet. InvalidArgument when
  /// `datasize_gb` is not strictly positive.
  StatusOr<sparksim::SparkConf> RecommendedConf(double datasize_gb);

  /// Feeds an observed production run back into the model (not charged to
  /// the optimization meter — the run happened anyway). Improves later
  /// warm adaptations and remembers the conf as last-known-good for the
  /// nearest tuned size. InvalidArgument when `datasize_gb` or
  /// `observed_seconds` is NaN, infinite or not strictly positive — a
  /// corrupt measurement must never poison the DAGP.
  Status ReportRun(double datasize_gb, const sparksim::SparkConf& conf,
                   double observed_seconds);

  /// Reports that a production run with `conf` died (OOM kill, executor
  /// loss, ...). The config is fed to the tuner as a censored observation
  /// so the model steers away, and the service degrades gracefully: the
  /// nearest tuned size falls back to its last-known-good conf (or is
  /// forgotten entirely, forcing a re-tune on the next recommendation, if
  /// no good run was ever reported) and the region is marked penalized.
  /// InvalidArgument on a non-finite or non-positive `datasize_gb` or a
  /// negative/non-finite `partial_seconds`.
  Status ReportFailedRun(double datasize_gb, const sparksim::SparkConf& conf,
                         double partial_seconds = 0.0);

  /// Failed production runs reported so far.
  int failed_reports() const { return failed_reports_; }

  /// How many failure reports have hit the tuned size nearest to
  /// `datasize_gb` (0 when nothing nearby was ever penalized).
  int penalized_count(double datasize_gb) const;

  /// Simulated time spent on tuning so far (the service's total
  /// optimization overhead).
  double optimization_seconds() const {
    return session_->optimization_seconds();
  }

  /// Number of cold/warm tuning passes performed.
  int tuning_passes() const { return tuning_passes_; }

  /// Data sizes with a tuned configuration, ascending.
  std::vector<double> tuned_sizes() const;

  const LocatTuner& tuner() const { return tuner_; }

  /// Point-in-time serving state of this service, the row /statusz renders
  /// for each app. Quantiles are 0 until a metrics registry is wired (the
  /// latency histogram lives there).
  struct StatusSnapshot {
    std::string app;
    int recommendations = 0;
    int reuses = 0;
    int tuning_passes = 0;
    int failed_reports = 0;
    std::vector<double> tuned_sizes;
    /// NaN until the first recommendation.
    double last_datasize_gb = std::numeric_limits<double>::quiet_NaN();
    /// Spark-properties form of the last recommended conf ("" until the
    /// first recommendation).
    std::string last_conf;
    double recommend_p50_s = 0.0;
    double recommend_p95_s = 0.0;
    double recommend_p99_s = 0.0;
  };
  StatusSnapshot Snapshot() const;

  /// Wires observability into the service and its tuner (the session is
  /// wired separately by whoever owns it). Purely observational. Besides
  /// the plain counters, the service exports labeled families keyed by
  /// the session's app name:
  ///   locat_service_recommendations{app,source="reuse"|"tuned"}
  ///   locat_service_runs_total{app,status="ok"|"failed"}
  ///   locat_service_recommend_seconds{app}   (histogram)
  void SetObservability(const obs::ObsContext& obs);

 private:
  /// Key of the tuned size closest to `datasize_gb` when its symmetric
  /// gap is within retune_threshold; NaN when nothing is close enough.
  double NearestTunedKey(double datasize_gb) const;

  TuningSession* session_;
  Options options_;
  LocatTuner tuner_;
  std::map<double, sparksim::SparkConf> tuned_;  // ds -> best conf
  /// Last conf that *finished* a reported production run, per tuned size —
  /// the fallback target when a recommended conf starts failing.
  std::map<double, sparksim::SparkConf> last_good_;
  std::map<double, int> penalized_;  // tuned ds -> failure reports
  int tuning_passes_ = 0;
  int failed_reports_ = 0;
  int recommendations_ = 0;
  int reuses_ = 0;
  double last_datasize_gb_ = std::numeric_limits<double>::quiet_NaN();
  sparksim::SparkConf last_conf_;
  bool has_last_conf_ = false;
  obs::ObsContext obs_;
  obs::Counter* recommendations_counter_ = nullptr;
  obs::Counter* reuse_counter_ = nullptr;
  obs::Counter* tuning_passes_counter_ = nullptr;
  obs::Counter* failed_reports_counter_ = nullptr;
  // Labeled children, resolved once at wiring time (app name is fixed for
  // the session) so the hot path stays one relaxed atomic op.
  obs::Counter* rec_reuse_ = nullptr;        // {app,source="reuse"}
  obs::Counter* rec_tuned_ = nullptr;        // {app,source="tuned"}
  obs::Counter* runs_ok_ = nullptr;          // {app,status="ok"}
  obs::Counter* runs_failed_ = nullptr;      // {app,status="failed"}
  obs::Histogram* recommend_latency_ = nullptr;  // {app}
};

}  // namespace locat::core

#endif  // LOCAT_CORE_ONLINE_SERVICE_H_
