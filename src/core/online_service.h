#ifndef LOCAT_CORE_ONLINE_SERVICE_H_
#define LOCAT_CORE_ONLINE_SERVICE_H_

#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "obs/metrics.h"

namespace locat::core {

/// The production loop the paper targets (Section 3.1: "a Spark SQL
/// application repeatedly runs many times with the size of input data
/// changing over time"), packaged as a service:
///
///   OnlineTuningService service(&session, options);
///   for each incoming run:
///     auto conf = service.RecommendedConf(todays_datasize_gb).value();
///     ... submit with conf; optionally report the outcome back ...
///     service.ReportRun(todays_datasize_gb, conf, observed_seconds);
///
/// The service owns one LocatTuner. The first recommendation triggers the
/// cold-start tuning pass; later recommendations for *new* data sizes run
/// a short warm adaptation only when the size differs enough from
/// anything tuned before (relative gap > retune_threshold); otherwise the
/// nearest tuned configuration is reused instantly. Reported production
/// runs feed the DAGP as free observations.
///
/// Threading: the three mutators (RecommendedConf, ReportRun,
/// ReportFailedRun) must be externally serialized — the ServiceRegistry
/// does this with per-app single-flight; a single-threaded caller gets it
/// for free. Every mutator re-publishes an immutable state snapshot, so
/// the const readers (Snapshot, tuned_sizes, penalized_count, Published,
/// PublishedReuse) are safe to call concurrently with one running mutator
/// from any number of threads.
class OnlineTuningService {
 public:
  struct Options {
    LocatTuner::Options tuner;
    /// Re-tune when the requested size differs from every tuned size by
    /// more than this relative factor. The gap is symmetric:
    /// |ds - tuned| / max(ds, tuned), so 100 -> 130 and 130 -> 100 make
    /// the same reuse decision.
    double retune_threshold = 0.25;

    Options() {}
  };

  /// `session` must outlive the service.
  OnlineTuningService(TuningSession* session, Options options = Options());

  /// Returns a configuration for this data size, tuning (cold or warm)
  /// when the service has nothing close enough yet. InvalidArgument when
  /// `datasize_gb` is not strictly positive.
  StatusOr<sparksim::SparkConf> RecommendedConf(double datasize_gb);

  /// Feeds an observed production run back into the model (not charged to
  /// the optimization meter — the run happened anyway). Improves later
  /// warm adaptations and remembers the conf as last-known-good for the
  /// nearest tuned size. InvalidArgument when `datasize_gb` or
  /// `observed_seconds` is NaN, infinite or not strictly positive — a
  /// corrupt measurement must never poison the DAGP.
  Status ReportRun(double datasize_gb, const sparksim::SparkConf& conf,
                   double observed_seconds);

  /// Reports that a production run with `conf` died (OOM kill, executor
  /// loss, ...). The config is fed to the tuner as a censored observation
  /// so the model steers away, and the service degrades gracefully: the
  /// nearest tuned size falls back to its last-known-good conf (or is
  /// forgotten entirely, forcing a re-tune on the next recommendation, if
  /// no good run was ever reported) and the region is marked penalized.
  /// InvalidArgument on a non-finite or non-positive `datasize_gb` or a
  /// negative/non-finite `partial_seconds`.
  Status ReportFailedRun(double datasize_gb, const sparksim::SparkConf& conf,
                         double partial_seconds = 0.0);

  /// Failed production runs reported so far.
  int failed_reports() const { return Published()->failed_reports; }

  /// How many failure reports have hit the tuned size nearest to
  /// `datasize_gb` (0 when nothing nearby was ever penalized).
  int penalized_count(double datasize_gb) const;

  /// Simulated time spent on tuning so far (the service's total
  /// optimization overhead).
  double optimization_seconds() const {
    return session_->optimization_seconds();
  }

  /// Number of cold/warm tuning passes performed.
  int tuning_passes() const { return Published()->tuning_passes; }

  /// Data sizes with a tuned configuration, ascending.
  std::vector<double> tuned_sizes() const;

  const LocatTuner& tuner() const { return tuner_; }

  /// Seeds the tuner with observations transferred from similar apps
  /// (cross-app warm start). Must run before the first RecommendedConf;
  /// later calls are no-ops. See LocatTuner::SeedPriorObservations.
  void SeedPriorObservations(std::vector<LocatTuner::PriorObservation> p,
                             double pessimism = 1.0) {
    tuner_.SeedPriorObservations(std::move(p), pessimism);
  }

  /// Transfers a donor's configuration-sensitive query set; adopted as
  /// the RQA during a warm-started cold start. See
  /// LocatTuner::SeedRqaHint.
  void SeedRqaHint(std::vector<int> csq_indices) {
    tuner_.SeedRqaHint(std::move(csq_indices));
  }

  /// Exports up to `cap` of the tuner's successful observations for
  /// transfer to another app. See LocatTuner::ExportObservations.
  std::vector<LocatTuner::PriorObservation> ExportObservations(
      size_t cap) const {
    return tuner_.ExportObservations(cap);
  }

  /// Immutable serving plan, re-published by every mutator and read
  /// lock-free (one atomic shared_ptr load) by any thread. This is the
  /// structure the ServiceRegistry's hot lookup path consumes.
  struct PublishedState {
    std::map<double, sparksim::SparkConf> tuned;  // ds -> best conf
    std::map<double, int> penalized;              // tuned ds -> failures
    int recommendations = 0;
    int reuses = 0;
    int tuning_passes = 0;
    int failed_reports = 0;
    double last_datasize_gb = std::numeric_limits<double>::quiet_NaN();
    sparksim::SparkConf last_conf;
    bool has_last_conf = false;
    /// Session optimization meter at publish time, so concurrent readers
    /// never touch the session itself.
    double optimization_seconds = 0.0;
  };

  /// Current serving plan; never null. The snapshot stays valid (and
  /// immutable) for as long as the caller holds the shared_ptr, even
  /// across concurrent re-tunes.
  std::shared_ptr<const PublishedState> Published() const {
    return published_.load(std::memory_order_acquire);
  }

  /// Lock-free fast path: the tuned conf closest to `datasize_gb` when
  /// its symmetric gap is within retune_threshold, nullopt when the
  /// request must go through a (cold or warm) tuning pass. Does NOT count
  /// as a recommendation — callers that serve from it are expected to
  /// report it via the owning registry's bookkeeping.
  std::optional<sparksim::SparkConf> PublishedReuse(double datasize_gb) const;

  /// Key of the tuned size in `tuned` closest to `datasize_gb` when its
  /// symmetric gap is within `threshold`; NaN when nothing is close
  /// enough.
  static double NearestTunedKeyIn(
      const std::map<double, sparksim::SparkConf>& tuned, double datasize_gb,
      double threshold);

  /// Point-in-time serving state of this service, the row /statusz renders
  /// for each app.
  struct StatusSnapshot {
    std::string app;
    int recommendations = 0;
    int reuses = 0;
    int tuning_passes = 0;
    int failed_reports = 0;
    std::vector<double> tuned_sizes;
    /// NaN until the first recommendation.
    double last_datasize_gb = std::numeric_limits<double>::quiet_NaN();
    /// Spark-properties form of the last recommended conf ("" until the
    /// first recommendation).
    std::string last_conf;
    double recommend_p50_s = 0.0;
    double recommend_p95_s = 0.0;
    double recommend_p99_s = 0.0;
    /// Optimization meter as of the last mutation (see PublishedState).
    double optimization_seconds = 0.0;
  };
  /// Latency-quantile source, in order of preference: the registry-backed
  /// labeled histogram (when SetObservability wired a metrics registry),
  /// else the owned histogram (when EnableLatencyTracking was called),
  /// else the quantiles are 0 — with neither wired the recommend path
  /// never reads a clock, so there is nothing to report. This is the one
  /// place that behavior is defined.
  StatusSnapshot Snapshot() const;

  /// Makes the service clock RecommendedConf latency into an owned
  /// histogram even without a metrics registry, so Snapshot() can report
  /// quantiles. A registry wired later takes precedence as the sink.
  void EnableLatencyTracking();

  /// Wires observability into the service and its tuner (the session is
  /// wired separately by whoever owns it). Purely observational. Besides
  /// the plain counters, the service exports labeled families keyed by
  /// the session's app name:
  ///   locat_service_recommendations{app,source="reuse"|"tuned"}
  ///   locat_service_runs_total{app,status="ok"|"failed"}
  ///   locat_service_recommend_seconds{app}   (histogram)
  void SetObservability(const obs::ObsContext& obs);

 private:
  /// Key of the tuned size closest to `datasize_gb` when its symmetric
  /// gap is within retune_threshold; NaN when nothing is close enough.
  double NearestTunedKey(double datasize_gb) const {
    return NearestTunedKeyIn(tuned_, datasize_gb, options_.retune_threshold);
  }

  /// Rebuilds the immutable snapshot from the mutable state and swaps it
  /// in. Called at the end of every mutator.
  void Publish();

  /// The histogram RecommendedConf clocks into: the registry child when
  /// wired, else the owned one, else null (no clock reads).
  obs::Histogram* latency_sink() const {
    return recommend_latency_ != nullptr ? recommend_latency_
                                         : owned_latency_.get();
  }

  TuningSession* session_;
  Options options_;
  LocatTuner tuner_;
  std::map<double, sparksim::SparkConf> tuned_;  // ds -> best conf
  /// Last conf that *finished* a reported production run, per tuned size —
  /// the fallback target when a recommended conf starts failing.
  std::map<double, sparksim::SparkConf> last_good_;
  std::map<double, int> penalized_;  // tuned ds -> failure reports
  int tuning_passes_ = 0;
  int failed_reports_ = 0;
  int recommendations_ = 0;
  int reuses_ = 0;
  double last_datasize_gb_ = std::numeric_limits<double>::quiet_NaN();
  sparksim::SparkConf last_conf_;
  bool has_last_conf_ = false;
  std::atomic<std::shared_ptr<const PublishedState>> published_;
  std::unique_ptr<obs::Histogram> owned_latency_;
  obs::ObsContext obs_;
  obs::Counter* recommendations_counter_ = nullptr;
  obs::Counter* reuse_counter_ = nullptr;
  obs::Counter* tuning_passes_counter_ = nullptr;
  obs::Counter* failed_reports_counter_ = nullptr;
  // Labeled children, resolved once at wiring time (app name is fixed for
  // the session) so the hot path stays one relaxed atomic op.
  obs::Counter* rec_reuse_ = nullptr;        // {app,source="reuse"}
  obs::Counter* rec_tuned_ = nullptr;        // {app,source="tuned"}
  obs::Counter* runs_ok_ = nullptr;          // {app,status="ok"}
  obs::Counter* runs_failed_ = nullptr;      // {app,status="failed"}
  obs::Histogram* recommend_latency_ = nullptr;  // {app}
};

}  // namespace locat::core

#endif  // LOCAT_CORE_ONLINE_SERVICE_H_
