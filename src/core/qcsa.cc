#include "core/qcsa.h"

#include <algorithm>

#include "math/stats.h"

namespace locat::core {

StatusOr<QcsaResult> AnalyzeQuerySensitivity(
    const std::vector<std::vector<double>>& times_per_query,
    obs::Tracer* tracer) {
  obs::ScopedSpan span(tracer, "qcsa/analyze", "analysis");
  if (times_per_query.empty()) {
    return Status::InvalidArgument("QCSA needs at least one query");
  }
  const size_t n_samples = times_per_query.front().size();
  if (n_samples < 2) {
    return Status::InvalidArgument("QCSA needs at least two sampled runs");
  }
  for (const auto& series : times_per_query) {
    if (series.size() != n_samples) {
      return Status::InvalidArgument(
          "every query must have the same number of samples");
    }
  }

  QcsaResult result;
  result.cv.reserve(times_per_query.size());
  for (const auto& series : times_per_query) {
    result.cv.push_back(math::CoefficientOfVariation(series));
  }

  result.min_cv = *std::min_element(result.cv.begin(), result.cv.end());
  result.max_cv = *std::max_element(result.cv.begin(), result.cv.end());
  // Equation (4): one tertile of the CV range above the minimum separates
  // "low" sensitivity from "medium"/"high".
  result.threshold = result.min_cv + (result.max_cv - result.min_cv) / 3.0;

  for (size_t i = 0; i < result.cv.size(); ++i) {
    if (result.cv[i] >= result.threshold) {
      result.csq_indices.push_back(static_cast<int>(i));
    } else {
      result.ciq_indices.push_back(static_cast<int>(i));
    }
  }
  // Degenerate case (all CVs equal): everything is "sensitive"; never
  // return an empty RQA.
  if (result.csq_indices.empty()) {
    for (size_t i = 0; i < result.cv.size(); ++i) {
      result.csq_indices.push_back(static_cast<int>(i));
    }
    result.ciq_indices.clear();
  }
  span.Arg("queries", static_cast<double>(times_per_query.size()));
  span.Arg("samples", static_cast<double>(n_samples));
  span.Arg("csq", static_cast<double>(result.csq_indices.size()));
  span.Arg("ciq", static_cast<double>(result.ciq_indices.size()));
  span.Arg("threshold", result.threshold);
  return result;
}

}  // namespace locat::core
