#include "core/tuning.h"

#include <algorithm>

namespace locat::core {

TuningSession::TuningSession(sparksim::ClusterSimulator* simulator,
                             const sparksim::SparkSqlApp& app)
    : simulator_(simulator), app_(app), space_(simulator->cluster()) {}

StatusOr<EvalRecord> TuningSession::Evaluate(const sparksim::SparkConf& conf,
                                             double datasize_gb) {
  if (!restriction_.empty()) {
    return EvaluateSubset(conf, datasize_gb, restriction_);
  }
  std::vector<int> all(static_cast<size_t>(app_.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return EvaluateSubset(conf, datasize_gb, all);
}

void TuningSession::RestrictToQueries(std::vector<int> query_indices) {
  restriction_ = std::move(query_indices);
}

void TuningSession::SetObservability(const obs::ObsContext& obs) {
  obs_ = obs;
  if (obs_.metrics != nullptr) {
    evals_counter_ = obs_.metrics->GetCounter(
        "locat_evaluations_total",
        "Configuration evaluations charged to the optimization-time meter");
    opt_seconds_counter_ = obs_.metrics->GetCounter(
        "locat_optimization_seconds_total",
        "Simulated seconds charged to the optimization-time meter");
    eval_failures_counter_ = obs_.metrics->GetCounter(
        "locat_evaluation_failures_total",
        "Charged evaluations that ended in a fault-injected failure");
    eval_seconds_hist_ = obs_.metrics->GetHistogram(
        "locat_evaluation_seconds",
        "Simulated seconds per charged configuration evaluation",
        {10.0, 30.0, 100.0, 300.0, 1000.0, 3000.0, 10000.0});
  } else {
    evals_counter_ = nullptr;
    opt_seconds_counter_ = nullptr;
    eval_failures_counter_ = nullptr;
    eval_seconds_hist_ = nullptr;
  }
}

void TuningSession::ClearQueryRestriction() { restriction_.clear(); }

StatusOr<EvalRecord> TuningSession::EvaluateSubset(
    const sparksim::SparkConf& conf, double datasize_gb,
    const std::vector<int>& query_indices) {
  obs::ScopedSpan span(obs_.tracer, "session/evaluate", "session");
  StatusOr<sparksim::AppRunResult> run_or =
      simulator_->RunAppSubset(app_, query_indices, conf, datasize_gb);
  if (!run_or.ok()) return run_or.status();
  const sparksim::AppRunResult& run = *run_or;
  span.Arg("queries", static_cast<double>(query_indices.size()));
  span.Arg("datasize_gb", datasize_gb);
  span.Arg("simulated_seconds", run.total_seconds);
  span.Arg("oom", run.any_oom ? 1.0 : 0.0);
  if (run.failed) span.Arg("failed", 1.0);
  return RecordRun(conf, datasize_gb, query_indices, run);
}

StatusOr<std::vector<EvalRecord>> TuningSession::EvaluateBatch(
    const std::vector<sparksim::SparkConf>& confs, double datasize_gb) {
  if (!restriction_.empty()) {
    return EvaluateSubsetBatch(confs, datasize_gb, restriction_);
  }
  std::vector<int> all(static_cast<size_t>(app_.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return EvaluateSubsetBatch(confs, datasize_gb, all);
}

StatusOr<std::vector<EvalRecord>> TuningSession::EvaluateSubsetBatch(
    const std::vector<sparksim::SparkConf>& confs, double datasize_gb,
    const std::vector<int>& query_indices) {
  std::vector<EvalRecord> out;
  out.reserve(confs.size());
  if (confs.empty()) return out;
  obs::ScopedSpan span(obs_.tracer, "session/evaluate_batch", "session");
  StatusOr<std::vector<sparksim::AppRunResult>> runs_or =
      simulator_->RunAppBatch(app_, query_indices, confs, datasize_gb);
  if (!runs_or.ok()) return runs_or.status();
  const std::vector<sparksim::AppRunResult>& runs = *runs_or;
  double batch_seconds = 0.0;
  for (size_t k = 0; k < runs.size(); ++k) {
    batch_seconds += runs[k].total_seconds;
    out.push_back(RecordRun(confs[k], datasize_gb, query_indices, runs[k]));
  }
  span.Arg("runs", static_cast<double>(confs.size()));
  span.Arg("queries", static_cast<double>(query_indices.size()));
  span.Arg("datasize_gb", datasize_gb);
  span.Arg("simulated_seconds", batch_seconds);
  return out;
}

const EvalRecord& TuningSession::RecordRun(
    const sparksim::SparkConf& conf, double datasize_gb,
    const std::vector<int>& query_indices,
    const sparksim::AppRunResult& run) {
  if (evals_counter_ != nullptr) evals_counter_->Increment();
  if (opt_seconds_counter_ != nullptr) {
    opt_seconds_counter_->Increment(run.total_seconds);
  }
  if (eval_failures_counter_ != nullptr && run.failed) {
    eval_failures_counter_->Increment();
  }
  if (eval_seconds_hist_ != nullptr) {
    eval_seconds_hist_->Observe(run.total_seconds);
  }

  EvalRecord rec;
  rec.conf = conf;
  rec.unit = space_.ToUnit(conf);
  rec.datasize_gb = datasize_gb;
  rec.app_seconds = run.total_seconds;
  rec.full_app =
      static_cast<int>(query_indices.size()) == app_.num_queries();
  rec.query_indices = query_indices;
  rec.per_query_seconds.reserve(run.per_query.size());
  for (const auto& q : run.per_query) {
    rec.per_query_seconds.push_back(q.exec_seconds);
  }
  rec.gc_seconds = run.gc_seconds;
  rec.any_oom = run.any_oom;
  rec.failed = run.failed;
  rec.fail_reason = run.fail_reason;
  rec.retries = run.retries;
  rec.lost_executors = run.lost_executors;

  optimization_seconds_ += run.total_seconds;
  history_.push_back(std::move(rec));
  return history_.back();
}

void TuningSession::ChargePenaltySeconds(double seconds) {
  if (seconds <= 0.0) return;
  optimization_seconds_ += seconds;
  if (opt_seconds_counter_ != nullptr) {
    opt_seconds_counter_->Increment(seconds);
  }
}

sparksim::AppRunResult TuningSession::MeasureFinal(
    const sparksim::SparkConf& conf, double datasize_gb) {
  return simulator_->RunApp(app_, conf, datasize_gb);
}

void TuningSession::Reset() {
  history_.clear();
  optimization_seconds_ = 0.0;
}

double CensoredObjective(double worst_seen_seconds, double partial_seconds,
                         double margin) {
  const double base = std::max(worst_seen_seconds, partial_seconds);
  return (base > 0.0 ? base : 1.0) * margin;
}

void EmitSimpleIteration(obs::TunerObserver* observer,
                         const std::string& tuner, const char* phase,
                         int iteration, double datasize_gb,
                         double eval_seconds, double objective,
                         double incumbent, bool full_app,
                         int failed_evals) {
  if (observer == nullptr) return;
  obs::BoIterationEvent ev;
  ev.tuner = tuner;
  ev.phase = phase;
  ev.iteration = iteration;
  ev.datasize_gb = datasize_gb;
  ev.eval_seconds = eval_seconds;
  ev.objective_seconds = objective;
  ev.incumbent_seconds = incumbent;
  ev.full_app = full_app;
  ev.failed_evals = failed_evals;
  observer->OnIteration(ev);
}

}  // namespace locat::core
