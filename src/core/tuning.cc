#include "core/tuning.h"

namespace locat::core {

TuningSession::TuningSession(sparksim::ClusterSimulator* simulator,
                             const sparksim::SparkSqlApp& app)
    : simulator_(simulator), app_(app), space_(simulator->cluster()) {}

const EvalRecord& TuningSession::Evaluate(const sparksim::SparkConf& conf,
                                          double datasize_gb) {
  if (!restriction_.empty()) {
    return EvaluateSubset(conf, datasize_gb, restriction_);
  }
  std::vector<int> all(static_cast<size_t>(app_.num_queries()));
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
  return EvaluateSubset(conf, datasize_gb, all);
}

void TuningSession::RestrictToQueries(std::vector<int> query_indices) {
  restriction_ = std::move(query_indices);
}

void TuningSession::ClearQueryRestriction() { restriction_.clear(); }

const EvalRecord& TuningSession::EvaluateSubset(
    const sparksim::SparkConf& conf, double datasize_gb,
    const std::vector<int>& query_indices) {
  sparksim::AppRunResult run =
      simulator_->RunAppSubset(app_, query_indices, conf, datasize_gb);

  EvalRecord rec;
  rec.conf = conf;
  rec.unit = space_.ToUnit(conf);
  rec.datasize_gb = datasize_gb;
  rec.app_seconds = run.total_seconds;
  rec.full_app =
      static_cast<int>(query_indices.size()) == app_.num_queries();
  rec.query_indices = query_indices;
  rec.per_query_seconds.reserve(run.per_query.size());
  for (const auto& q : run.per_query) {
    rec.per_query_seconds.push_back(q.exec_seconds);
  }
  rec.gc_seconds = run.gc_seconds;
  rec.any_oom = run.any_oom;

  optimization_seconds_ += run.total_seconds;
  history_.push_back(std::move(rec));
  return history_.back();
}

sparksim::AppRunResult TuningSession::MeasureFinal(
    const sparksim::SparkConf& conf, double datasize_gb) {
  return simulator_->RunApp(app_, conf, datasize_gb);
}

void TuningSession::Reset() {
  history_.clear();
  optimization_seconds_ = 0.0;
}

}  // namespace locat::core
