#include "core/locat_tuner.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "ml/lhs.h"

namespace locat::core {

LocatTuner::LocatTuner(Options options)
    : options_(options), rng_(options.seed) {
  // Lighter MCMC for the high-dimensional pre-IICP phase keeps the cold
  // start cheap; accuracy matters most after the reduction.
  options_.dagp.ei.num_hyper_samples =
      std::min(options_.dagp.ei.num_hyper_samples, 6);
  options_.dagp.ei.burn_in = std::min(options_.dagp.ei.burn_in, 10);
  options_.dagp.ei.thin = 1;
  dagp_ = Dagp(options_.dagp);
}

void LocatTuner::SetObservability(const obs::ObsContext& obs) {
  Tuner::SetObservability(obs);
  dagp_.SetObservability(obs.tracer, obs.metrics);
}

void LocatTuner::EmitIteration(double datasize_gb, double eval_seconds,
                               double objective, bool full_app) {
  const int iteration = iter_in_pass_++;
  if (observer() == nullptr) return;
  obs::BoIterationEvent ev;
  ev.tuner = name();
  ev.phase = phase_label_;
  ev.iteration = iteration;
  ev.datasize_gb = datasize_gb;
  ev.eval_seconds = eval_seconds;
  ev.objective_seconds = objective;
  ev.incumbent_seconds = best_objective_;
  ev.relative_ei = pending_relative_ei_;
  ev.candidate_pool = pending_candidate_pool_;
  ev.full_app = full_app;
  const ml::EiMcmc::FitStats& fit = dagp_.last_fit_stats();
  ev.dagp_fit_seconds = fit.wall_seconds;
  ev.acq_seconds = pending_acq_seconds_;
  ev.mcmc_ensemble = fit.ensemble_size;
  ev.mcmc_density_evals = fit.sampler.density_evals;
  ev.mcmc_acceptance = fit.sampler.acceptance_rate();
  ev.rqa_share = rqa_share_;
  ev.rqa_queries = static_cast<int>(rqa_.size());
  ev.failed_evals = failed_evals_;
  observer()->OnIteration(ev);
}

std::string LocatTuner::name() const {
  if (options_.enable_qcsa && options_.enable_iicp) return "LOCAT";
  if (options_.enable_qcsa) return "LOCAT-AP";      // all parameters
  if (options_.enable_iicp) return "LOCAT-noQCSA";
  return "LOCAT-DAGPonly";
}

math::Vector LocatTuner::EncodeUnit(const math::Vector& unit) const {
  if (iicp_) return iicp_->Encode(unit);
  return unit;
}

double LocatTuner::RqaObjective(const std::vector<double>& per_query,
                                double full_seconds) const {
  if (rqa_.empty() || per_query.empty()) return full_seconds;
  double sum_all = 0.0;
  for (double t : per_query) sum_all += t;
  double sum_rqa = 0.0;
  for (int idx : rqa_) {
    if (idx >= 0 && static_cast<size_t>(idx) < per_query.size()) {
      sum_rqa += per_query[static_cast<size_t>(idx)];
    }
  }
  // Keep the (small) submit-overhead share so objectives before and after
  // the reduction stay on the same scale as RQA runs.
  return sum_rqa + (full_seconds - sum_all);
}

double LocatTuner::EvaluateAndRecord(TuningSession* session,
                                     const sparksim::SparkConf& conf,
                                     double datasize_gb, bool full_app) {
  const double meter_before = session->optimization_seconds();
  StatusOr<EvalRecord> rec_or =
      full_app ? session->Evaluate(conf, datasize_gb)
               : session->EvaluateSubset(conf, datasize_gb, rqa_);
  double eval_seconds = session->optimization_seconds() - meter_before;
  return FinishEvaluation(session, conf, datasize_gb, full_app,
                          std::move(rec_or), &eval_seconds);
}

double LocatTuner::FinishEvaluation(TuningSession* session,
                                    const sparksim::SparkConf& conf,
                                    double datasize_gb, bool full_app,
                                    StatusOr<EvalRecord> rec_or,
                                    double* eval_seconds) {
  // Retry budget: a failed run may be bad luck (straggler/kill draw), so
  // re-run within the budget, charging exponential backoff to the meter —
  // wasted wall clock is part of the optimization cost.
  int attempt = 0;
  while (rec_or.ok() && rec_or->failed &&
         attempt < options_.retry.max_retries) {
    const double backoff = options_.retry.BackoffSeconds(attempt);
    session->ChargePenaltySeconds(backoff);
    *eval_seconds += backoff;
    ++attempt;
    const double before = session->optimization_seconds();
    rec_or = full_app ? session->Evaluate(conf, datasize_gb)
                      : session->EvaluateSubset(conf, datasize_gb, rqa_);
    *eval_seconds += session->optimization_seconds() - before;
  }

  Observation obs;
  obs.unit = session->space().ToUnit(conf);
  obs.datasize_gb = datasize_gb;
  double objective = 0.0;
  if (!rec_or.ok()) {
    // Hard evaluation error (bad inputs): impute with no partial time.
    obs.failed = true;
    objective = CensoredObjective(worst_objective_, 0.0,
                                  options_.censor_margin);
  } else if (rec_or->failed) {
    // Censored: the run died after the retry budget. Its true cost is
    // unknown but at least the partial time and at least as bad as the
    // worst completed run; the margin steers DAGP/EI away.
    obs.failed = true;
    objective = CensoredObjective(worst_objective_, rec_or->app_seconds,
                                  options_.censor_margin);
  } else if (full_app) {
    obs.per_query = rec_or->per_query_seconds;
    objective = RqaObjective(rec_or->per_query_seconds, rec_or->app_seconds);
  } else {
    objective = rec_or->app_seconds;
  }
  obs.objective_seconds = objective;
  const bool failed = obs.failed;
  dagp_.AddObservation(EncodeUnit(obs.unit), datasize_gb, objective);
  observations_.push_back(std::move(obs));

  if (!failed) {
    worst_objective_ = std::max(worst_objective_, objective);
    if (best_objective_ <= 0.0 || objective < best_objective_) {
      best_objective_ = objective;
      best_conf_ = conf;
    }
  } else {
    ++failed_evals_;
  }
  trajectory_.push_back(best_objective_);
  EmitIteration(datasize_gb, *eval_seconds, objective, full_app);
  return objective;
}

void LocatTuner::EvaluateAndRecordBatch(
    TuningSession* session, const std::vector<sparksim::SparkConf>& confs,
    double datasize_gb, bool full_app) {
  if (confs.empty()) return;
  double meter = session->optimization_seconds();
  StatusOr<std::vector<EvalRecord>> recs_or =
      full_app ? session->EvaluateBatch(confs, datasize_gb)
               : session->EvaluateSubsetBatch(confs, datasize_gb, rqa_);
  if (!recs_or.ok()) {
    // Defensive: inputs are validated upstream; degrade to the scalar
    // path rather than silently dropping the runs.
    for (const auto& conf : confs) {
      EvaluateAndRecord(session, conf, datasize_gb, full_app);
    }
    return;
  }
  const std::vector<EvalRecord>& recs = *recs_or;
  for (size_t k = 0; k < recs.size(); ++k) {
    // Reproduce the sequential loop's meter-delta arithmetic exactly: the
    // session charged the runs one by one in this order, so replaying the
    // additions yields the same intermediate sums bit-for-bit. Retries of
    // failed records (fault injection only) charge on top inside
    // FinishEvaluation.
    const double meter_after = meter + recs[k].app_seconds;
    double eval_seconds = meter_after - meter;
    meter = meter_after;
    FinishEvaluation(session, confs[k], datasize_gb, full_app,
                     StatusOr<EvalRecord>(recs[k]), &eval_seconds);
  }
}

LocatTuner::Proposal LocatTuner::ProposeNext(TuningSession* session,
                                             double datasize_gb) {
  const sparksim::ConfigSpace& space = session->space();
  // Wall clock of the whole proposal (incumbent scan, candidate
  // generation, EI scoring) — the acquisition half of the per-iteration
  // optimization overhead, reported next to the surrogate-fit half.
  // Measured unconditionally, like EiMcmc::FitStats.wall_seconds.
  const auto acq_start = std::chrono::steady_clock::now();

  // Anchor the local candidate families on the *posterior-mean* incumbent
  // rather than the raw noisy minimum: a single lucky observation would
  // otherwise drag the whole local search to a mediocre region. Scored as
  // one batched prediction over the history.
  math::Vector best_unit = space.ToUnit(best_conf_);
  if (dagp_.fitted() && !observations_.empty()) {
    std::vector<math::Vector> encoded;
    encoded.reserve(observations_.size() + priors_.size());
    for (const auto& obs : observations_) {
      encoded.push_back(EncodeUnit(obs.unit));
    }
    // Transferred prior units compete for the anchor too: the donor's
    // optimum is exactly the region a warm start exists to reach, and the
    // incumbent-anchored local/line families are the only way the
    // proposal loop gets there (the global family is uniform noise in 38
    // dimensions). The posterior mean at a prior reflects the rescaled
    // donor objective, so a genuinely better donor region wins the anchor
    // and this app's next evaluations refine it — with real runs, which
    // then take over the incumbent. Without priors the scan is unchanged.
    for (const auto& p : priors_) {
      encoded.push_back(EncodeUnit(p.unit));
    }
    const std::vector<double> sizes(encoded.size(), datasize_gb);
    const std::vector<Dagp::Prediction> preds =
        dagp_.PredictBatch(encoded, sizes);
    double best_score = 0.0;
    for (size_t i = 0; i < preds.size(); ++i) {
      const double score = preds[i].seconds;
      if (best_score <= 0.0 || score < best_score) {
        best_score = score;
        best_unit = i < observations_.size()
                        ? observations_[i].unit
                        : priors_[i - observations_.size()].unit;
      }
    }
  }

  // After IICP only the CPS-selected parameters are tuned; the rest stay
  // pinned to the incumbent's values (Section 3.3: "only tune the
  // important parameters").
  const std::vector<int>* tuned_dims = nullptr;
  if (iicp_) tuned_dims = &iicp_->selected_params();

  // Three candidate families, mirroring standard BO practice:
  //   - global: uniform over the tuned dimensions (exploration);
  //   - local: perturb a random ~30% subset of tuned dimensions around the
  //     incumbent (basin descent);
  //   - line: move a single tuned dimension to a fresh value (cliff
  //     parameters like memoryOverhead respond to coordinate moves).
  std::vector<int> identity_dims;
  if (tuned_dims == nullptr) {
    identity_dims.resize(sparksim::kNumParams);
    for (int i = 0; i < sparksim::kNumParams; ++i) {
      identity_dims[static_cast<size_t>(i)] = i;
    }
    tuned_dims = &identity_dims;
  }
  const bool have_incumbent = best_objective_ > 0.0;

  // Generate the whole pool first (sequentially — candidate generation is
  // where the RNG stream lives), then score every survivor in one batched
  // EI pass. Near-duplicates are dropped *before* scoring, exactly as the
  // scalar loop did.
  std::vector<math::Vector> pool_units;
  std::vector<math::Vector> pool_encoded;
  pool_units.reserve(static_cast<size_t>(options_.candidates));
  pool_encoded.reserve(static_cast<size_t>(options_.candidates));
  for (int c = 0; c < options_.candidates; ++c) {
    math::Vector unit = best_unit;
    int family = have_incumbent ? c % 3 : 1;
    // Late in the reduced phase, stop proposing global jumps: anneal to
    // local refinement around the incumbent.
    if (exploit_only_ && family == 1) family = (c % 2 == 0) ? 0 : 2;
    if (family == 0) {
      for (int d : *tuned_dims) {
        const size_t i = static_cast<size_t>(d);
        if (rng_.Bernoulli(0.3)) {
          unit[i] = std::clamp(best_unit[i] + rng_.Gaussian(0.0, 0.08), 0.0,
                               1.0);
        }
      }
    } else if (family == 1) {
      for (int d : *tuned_dims) {
        unit[static_cast<size_t>(d)] = rng_.NextDouble();
      }
    } else {
      const int d = (*tuned_dims)[static_cast<size_t>(rng_.UniformInt(
          0, static_cast<int64_t>(tuned_dims->size()) - 1))];
      unit[static_cast<size_t>(d)] = rng_.NextDouble();
    }
    // Round-trip through the configuration space so the candidate is a
    // *valid* configuration (Section 5.12 constraints).
    const sparksim::SparkConf conf =
        space.Repair(space.FromUnit(unit));
    math::Vector valid_unit = space.ToUnit(conf);
    // Skip near-duplicates of past observations: re-running an evaluated
    // configuration wastes a cluster run and starves QCSA/IICP of sample
    // diversity.
    bool duplicate = false;
    for (const auto& obs : observations_) {
      if (obs.datasize_gb == datasize_gb &&
          (obs.unit - valid_unit).Norm() < 0.05) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    pool_encoded.push_back(EncodeUnit(valid_unit));
    pool_units.push_back(std::move(valid_unit));
  }

  Proposal best;
  double best_ei = -1.0;
  if (!pool_units.empty()) {
    const math::Vector eis =
        dagp_.ExpectedImprovementBatch(pool_encoded, datasize_gb);
    // Scan in generation order with strict '>' so the first maximum wins,
    // matching the scalar loop's tie-break.
    for (size_t i = 0; i < pool_units.size(); ++i) {
      if (eis[i] > best_ei) {
        best_ei = eis[i];
        best.unit = pool_units[i];
      }
    }
  }
  if (best_ei < 0.0) {
    // Everything was a duplicate; fall back to a fresh random point.
    best.unit = session->space().RandomValidUnit(&rng_);
    best.relative_ei = 1.0;
  } else {
    best.relative_ei = 1.0 - std::exp(-std::max(0.0, best_ei));
  }
  pending_relative_ei_ = best.relative_ei;
  pending_candidate_pool_ = options_.candidates;
  pending_acq_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    acq_start)
          .count();
  return best;
}

void LocatTuner::RunQcsaAndIicp(TuningSession* session) {
  const int num_queries = session->app().num_queries();

  // --- QCSA on the first N_QCSA full-app runs (matrix S, equation (2)).
  // Failed runs never contribute: their per_query is empty (or truncated
  // at the kill), so the CV computation sees only completed samples.
  if (options_.enable_qcsa) {
    std::vector<std::vector<double>> times(
        static_cast<size_t>(num_queries));
    for (const auto& obs : observations_) {
      if (obs.failed) continue;
      if (static_cast<int>(obs.per_query.size()) != num_queries) continue;
      for (int q = 0; q < num_queries; ++q) {
        times[static_cast<size_t>(q)].push_back(
            obs.per_query[static_cast<size_t>(q)]);
      }
    }
    auto qcsa = AnalyzeQuerySensitivity(times, tracer());
    if (qcsa.ok()) {
      qcsa_ = std::move(qcsa).value();
      rqa_ = qcsa_->csq_indices;
    }
  }
  if (rqa_.empty()) {
    rqa_.resize(static_cast<size_t>(num_queries));
    for (int q = 0; q < num_queries; ++q) rqa_[static_cast<size_t>(q)] = q;
  }
  // A transferred CSQ hint replaces the local estimate: the donor (or
  // this app's own pre-eviction tune) computed its sensitivity statistics
  // from a full sampling budget, while a warm start's shrunken schedule
  // observed too few samples for the CV ranking to mean anything — an
  // arbitrary RQA makes the reduced objective a proxy uncorrelated with
  // the full application and the whole refinement phase optimizes noise.
  if (!priors_.empty() && !prior_rqa_.empty()) {
    std::vector<int> hinted;
    hinted.reserve(prior_rqa_.size());
    for (int q : prior_rqa_) {
      if (q >= 0 && q < num_queries) hinted.push_back(q);
    }
    if (!hinted.empty()) rqa_ = std::move(hinted);
  }

  // --- IICP on the first N_IICP *successful* samples (matrix S',
  // equation (5)): censored penalty values are imputed, not measured, and
  // would distort the Spearman/KPCA statistics.
  if (options_.enable_iicp) {
    std::vector<size_t> ok_idx;
    for (size_t i = 0; i < observations_.size() &&
                       static_cast<int>(ok_idx.size()) < options_.n_iicp;
         ++i) {
      if (!observations_[i].failed) ok_idx.push_back(i);
    }
    const int n = static_cast<int>(ok_idx.size());
    math::Matrix confs(static_cast<size_t>(n), sparksim::kNumParams);
    std::vector<double> ts(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      confs.SetRow(static_cast<size_t>(i),
                   observations_[ok_idx[static_cast<size_t>(i)]].unit);
      ts[static_cast<size_t>(i)] =
          observations_[ok_idx[static_cast<size_t>(i)]].objective_seconds;
    }
    auto iicp = Iicp::Run(confs, ts, options_.iicp, tracer());
    if (iicp.ok()) iicp_ = std::move(iicp).value();
  }

  double rqa_ratio_sum = 0.0;
  int rqa_ratio_count = 0;
  // --- Objectives change (full app -> RQA) and so may the encoding:
  // rebuild the DAGP from the re-encoded history. When IICP produced a
  // low-dimensional latent space, the EI-MCMC ensemble can afford to be
  // richer than in the 38-dimensional phase A; without the reduction the
  // light options stay (a rich MCMC over 38 lengthscales costs minutes
  // per refit and is exactly what IICP exists to avoid).
  Dagp::Options reduced_opts = options_.dagp;
  if (iicp_) {
    reduced_opts.ei.num_hyper_samples = 10;
    reduced_opts.ei.burn_in = 16;
    reduced_opts.ei.thin = 1;
  }
  dagp_ = Dagp(reduced_opts);
  // The reassignment dropped the observability wiring; restore it.
  dagp_.SetObservability(obs_.tracer, obs_.metrics);
  dagp_.Clear();
  for (auto& obs : observations_) {
    if (!obs.per_query.empty()) {
      // Phase-A observations stored the full-app time; per_query lets us
      // convert them to the RQA objective (CSQ times + submit overhead).
      double sum_all = 0.0;
      for (double t : obs.per_query) sum_all += t;
      const double overhead = obs.objective_seconds - sum_all;
      double sum_rqa = 0.0;
      for (int idx : rqa_) {
        if (idx >= 0 && static_cast<size_t>(idx) < obs.per_query.size()) {
          sum_rqa += obs.per_query[static_cast<size_t>(idx)];
        }
      }
      obs.objective_seconds = sum_rqa + overhead;
      if (sum_all > 0.0) {
        rqa_ratio_sum += (sum_rqa + overhead) / (sum_all + overhead);
        ++rqa_ratio_count;
      }
    }
    dagp_.AddObservation(EncodeUnit(obs.unit), obs.datasize_gb,
                         obs.objective_seconds);
  }
  if (rqa_ratio_count > 0) rqa_share_ = rqa_ratio_sum / rqa_ratio_count;

  // Transferred priors enter the surrogate here — and only here. They are
  // donor-app objectives on the donor's own RQA scale; mixing that scale
  // with this app's raw observations would skew the whole GP fit, so each
  // prior is rescaled to this app's objective scale first. The factor is
  // calibrated pointwise: each of this app's (just re-scaled) phase-A
  // observations is paired with the nearest donor prior in unit space —
  // restricted to the donor data size closest (log-wise) to this cold
  // start's size — and the factor is the median of the pairwise log
  // ratios. Comparing nearest configurations, not whole histories, keeps
  // the calibration honest when the donor export mixes random samples
  // with exploitation samples near its own optimum. The single
  // multiplicative factor preserves the *shape* of the donor's cost
  // surface (which is all a transfer can promise) while the absolute
  // level matches the observations just recorded.
  if (!priors_.empty()) {
    double own_ds = 0.0;
    for (const auto& obs : observations_) {
      if (!obs.failed) own_ds = obs.datasize_gb;
    }
    double best_gap = 1e300;
    double anchor_ds = priors_.front().datasize_gb;
    for (const auto& p : priors_) {
      const double gap = std::fabs(std::log(p.datasize_gb / own_ds));
      if (gap < best_gap) {
        best_gap = gap;
        anchor_ds = p.datasize_gb;
      }
    }
    std::vector<double> log_ratios;
    for (const auto& obs : observations_) {
      if (obs.failed || obs.objective_seconds <= 0.0) continue;
      const PriorObservation* nearest = nullptr;
      double nearest_d2 = 1e300;
      for (const auto& p : priors_) {
        if (p.datasize_gb != anchor_ds) continue;
        double d2 = 0.0;
        for (size_t k = 0; k < obs.unit.size() && k < p.unit.size(); ++k) {
          const double d = obs.unit[k] - p.unit[k];
          d2 += d * d;
        }
        if (d2 < nearest_d2) {
          nearest_d2 = d2;
          nearest = &p;
        }
      }
      if (nearest != nullptr && nearest->objective_seconds > 0.0) {
        log_ratios.push_back(std::log(obs.objective_seconds /
                                      nearest->objective_seconds));
      }
    }
    if (!log_ratios.empty()) {
      std::nth_element(log_ratios.begin(),
                       log_ratios.begin() + log_ratios.size() / 2,
                       log_ratios.end());
      const double factor = std::exp(log_ratios[log_ratios.size() / 2]);
      // Pessimism (>= 1) is applied after the rescale so it survives the
      // normalization: donor knowledge sits slightly above this app's
      // level and real observations win ties near the optimum.
      const double lift = factor * std::max(1.0, prior_pessimism_);
      for (const auto& p : priors_) {
        dagp_.AddObservation(EncodeUnit(p.unit), p.datasize_gb,
                             p.objective_seconds * lift);
      }
      // The donors' claimed optima — at the data size most comparable to
      // this cold start — are worth real runs (the probes after the
      // rebuild): the latent encoding was fitted on a handful of this
      // app's own samples and can project the donors' discriminating
      // dimensions away, so trusting the surrogate alone to rediscover
      // the region is not reliable. Greedily pick up to three priors by
      // ascending objective, skipping near-duplicates, so one probe
      // failing (a donor optimum can sit just past this app's memory
      // edge) does not void the transfer.
      std::vector<const PriorObservation*> ranked;
      for (const auto& p : priors_) {
        if (p.datasize_gb == anchor_ds) ranked.push_back(&p);
      }
      std::sort(ranked.begin(), ranked.end(),
                [](const PriorObservation* a, const PriorObservation* b) {
                  return a->objective_seconds < b->objective_seconds;
                });
      for (const PriorObservation* p : ranked) {
        if (prior_probe_units_.size() >= 3) break;
        bool close = false;
        for (const auto& u : prior_probe_units_) {
          if ((u - p->unit).Norm() < 0.5) {
            close = true;
            break;
          }
        }
        if (!close) prior_probe_units_.push_back(p->unit);
      }
    }
  }

  // Recompute the incumbent (and the censored-cost anchor) under the RQA
  // objective; failed runs never hold either.
  best_objective_ = 0.0;
  worst_objective_ = 0.0;
  for (const auto& obs : observations_) {
    if (obs.failed) continue;
    if (best_objective_ <= 0.0 ||
        obs.objective_seconds < best_objective_) {
      best_objective_ = obs.objective_seconds;
    }
    worst_objective_ = std::max(worst_objective_, obs.objective_seconds);
  }

  if (observer() != nullptr) {
    if (qcsa_) {
      obs::PhaseEvent ev;
      ev.tuner = name();
      ev.phase = "qcsa";
      ev.fields = {
          {"csq", static_cast<double>(qcsa_->csq_indices.size())},
          {"ciq", static_cast<double>(qcsa_->ciq_indices.size())},
          {"threshold", qcsa_->threshold},
          {"rqa_share", rqa_share_},
      };
      observer()->OnPhase(ev);
    }
    if (iicp_) {
      obs::PhaseEvent ev;
      ev.tuner = name();
      ev.phase = "iicp";
      ev.fields = {
          {"selected_params",
           static_cast<double>(iicp_->selected_params().size())},
          {"latent_dim", static_cast<double>(iicp_->latent_dim())},
      };
      observer()->OnPhase(ev);
    }
  }
}

void LocatTuner::SeedPriorObservations(std::vector<PriorObservation> priors,
                                       double pessimism) {
  if (cold_started_) return;
  std::vector<PriorObservation> valid;
  valid.reserve(priors.size());
  for (auto& p : priors) {
    if (p.objective_seconds <= 0.0 || p.datasize_gb <= 0.0) continue;
    if (static_cast<int>(p.unit.size()) != sparksim::kNumParams) continue;
    valid.push_back(std::move(p));
  }
  if (valid.empty()) return;
  // The priors do NOT enter the surrogate yet: donor objectives live on
  // the donor's scale, and phase A observes raw full-app times — mixing
  // the two would bias every phase-A refit. RunQcsaAndIicp injects them,
  // rescaled to this app's objective level, when the cold start switches
  // to the RQA objective.
  priors_ = std::move(valid);
  prior_pessimism_ = std::max(1.0, pessimism);
  // The transferred surrogate (plus the probe runs of the donors' best
  // configurations) stands in for most of the cold-start samples: cut
  // the QCSA sampling budget to a third (never below the LHS points) and
  // the reduced-space floor/cap likewise.
  options_.n_qcsa = std::max(options_.lhs_init, options_.n_qcsa / 3);
  options_.min_iterations = std::max(1, options_.min_iterations / 3);
  options_.max_iterations =
      std::max(options_.min_iterations, options_.max_iterations / 3);
}

void LocatTuner::SeedRqaHint(std::vector<int> csq_indices) {
  if (cold_started_) return;
  prior_rqa_ = std::move(csq_indices);
}

std::vector<LocatTuner::PriorObservation> LocatTuner::ExportObservations(
    size_t cap) const {
  std::vector<size_t> ok;
  ok.reserve(observations_.size());
  for (size_t i = 0; i < observations_.size(); ++i) {
    if (!observations_[i].failed) ok.push_back(i);
  }
  std::vector<PriorObservation> out;
  if (ok.empty() || cap == 0) return out;
  const size_t n = std::min(cap, ok.size());
  out.reserve(n);
  // Even stride over the successful history: the sample spans LHS
  // exploration through reduced-space refinement instead of clustering at
  // either end.
  for (size_t k = 0; k < n; ++k) {
    const size_t i = ok[(k * ok.size()) / n];
    PriorObservation p;
    p.unit = observations_[i].unit;
    p.datasize_gb = observations_[i].datasize_gb;
    p.objective_seconds = observations_[i].objective_seconds;
    out.push_back(std::move(p));
  }
  return out;
}

void LocatTuner::ObserveExternalRun(const sparksim::ConfigSpace& space,
                                    const sparksim::SparkConf& conf,
                                    double datasize_gb,
                                    double full_app_seconds) {
  if (!cold_started_ || full_app_seconds <= 0.0) return;
  Observation obs;
  obs.unit = space.ToUnit(conf);
  obs.datasize_gb = datasize_gb;
  obs.objective_seconds = full_app_seconds * rqa_share_;
  dagp_.AddObservation(EncodeUnit(obs.unit), datasize_gb,
                       obs.objective_seconds);
  worst_objective_ = std::max(worst_objective_, obs.objective_seconds);
  observations_.push_back(std::move(obs));
}

void LocatTuner::ObserveFailedExternalRun(const sparksim::ConfigSpace& space,
                                          const sparksim::SparkConf& conf,
                                          double datasize_gb,
                                          double partial_seconds) {
  if (!cold_started_) return;
  Observation obs;
  obs.unit = space.ToUnit(conf);
  obs.datasize_gb = datasize_gb;
  obs.failed = true;
  obs.objective_seconds =
      CensoredObjective(worst_objective_,
                        std::max(0.0, partial_seconds) * rqa_share_,
                        options_.censor_margin);
  dagp_.AddObservation(EncodeUnit(obs.unit), datasize_gb,
                       obs.objective_seconds);
  observations_.push_back(std::move(obs));
  ++failed_evals_;
}

TuningResult LocatTuner::Tune(TuningSession* session, double datasize_gb) {
  const double meter_start = session->optimization_seconds();
  const int evals_start = session->evaluations();
  const int failed_start = failed_evals_;
  trajectory_.clear();
  iter_in_pass_ = 0;
  obs::ScopedSpan tune_span(tracer(), "tune", "tuner");
  tune_span.Arg("datasize_gb", datasize_gb);
  tune_span.Arg("warm", cold_started_ ? 1.0 : 0.0);

  const sparksim::ConfigSpace& space = session->space();

  if (!cold_started_) {
    // Phase A: LHS start points + BO over the full space, full app.
    {
      obs::ScopedSpan span(tracer(), "tune/lhs", "tuner");
      phase_label_ = "lhs";
      pending_relative_ei_ = 0.0;
      pending_candidate_pool_ = 0;
      pending_acq_seconds_ = 0.0;
      const math::Matrix lhs =
          ml::LatinHypercube(options_.lhs_init, sparksim::kNumParams, &rng_);
      std::vector<sparksim::SparkConf> lhs_confs;
      lhs_confs.reserve(static_cast<size_t>(options_.lhs_init));
      for (int i = 0; i < options_.lhs_init; ++i) {
        lhs_confs.push_back(
            space.Repair(space.FromUnit(lhs.Row(static_cast<size_t>(i)))));
      }
      // All start points are known upfront: evaluate them as one batch.
      EvaluateAndRecordBatch(session, lhs_confs, datasize_gb,
                             /*full_app=*/true);
    }
    {
      obs::ScopedSpan span(tracer(), "tune/qcsa-sampling", "tuner");
      phase_label_ = "qcsa";
      // QCSA/IICP need a *diverse* sample set ("random configurations",
      // Section 3.2), so two of three phase-A runs draw uniformly and
      // only the third follows the acquisition function. The random
      // draws between two acquisition steps don't depend on each other's
      // results, so they accumulate in `pending` and run as one batch;
      // the rng_ stream, the noise stream and the observation order are
      // exactly those of the sequential loop.
      std::vector<sparksim::SparkConf> pending;
      while (static_cast<int>(observations_.size() + pending.size()) <
             options_.n_qcsa) {
        pending_relative_ei_ = 0.0;
        pending_candidate_pool_ = 0;
        pending_acq_seconds_ = 0.0;
        const size_t i = observations_.size() + pending.size();
        sparksim::SparkConf conf = space.RandomValid(&rng_);
        if (i % 3 == 2) {
          // Flush the queued random runs first so the refit (and the
          // proposal) see exactly the observations the sequential loop
          // would have recorded by now.
          EvaluateAndRecordBatch(session, pending, datasize_gb,
                                 /*full_app=*/true);
          pending.clear();
          pending_relative_ei_ = 0.0;
          pending_candidate_pool_ = 0;
          pending_acq_seconds_ = 0.0;
          if (dagp_.Refit(&rng_).ok()) {
            const Proposal prop = ProposeNext(session, datasize_gb);
            conf = space.Repair(space.FromUnit(prop.unit));
          }
          EvaluateAndRecord(session, conf, datasize_gb, /*full_app=*/true);
        } else {
          pending.push_back(std::move(conf));
        }
      }
      pending_relative_ei_ = 0.0;
      pending_candidate_pool_ = 0;
      pending_acq_seconds_ = 0.0;
      EvaluateAndRecordBatch(session, pending, datasize_gb,
                             /*full_app=*/true);
    }

    // Phase A': QCSA + IICP on the collected samples.
    {
      obs::ScopedSpan span(tracer(), "tune/analyze", "tuner");
      RunQcsaAndIicp(session);
    }
    cold_started_ = true;

    // Phase B: BO on the RQA in the (possibly) reduced encoding.
    obs::ScopedSpan span(tracer(), "tune/reduced", "tuner");
    phase_label_ = "reduced";
    // Transfer probes: real RQA runs of the donors' claimed-best
    // configurations (one batched fan-out). A good transfer takes over
    // the incumbent here and the candidate families below refine it; a
    // bad one costs an evaluation and the observation steers the
    // surrogate away. Never runs without priors, keeping the prior-free
    // path byte-identical.
    if (!prior_probe_units_.empty()) {
      pending_relative_ei_ = 0.0;
      pending_candidate_pool_ = 0;
      pending_acq_seconds_ = 0.0;
      std::vector<sparksim::SparkConf> probe_confs;
      probe_confs.reserve(prior_probe_units_.size());
      for (const auto& u : prior_probe_units_) {
        probe_confs.push_back(space.Repair(space.FromUnit(u)));
      }
      EvaluateAndRecordBatch(session, probe_confs, datasize_gb,
                             /*full_app=*/false);
    }
    int iterations = 0;
    while (iterations < options_.max_iterations) {
      exploit_only_ = iterations >= (options_.max_iterations * 3) / 5;
      if (!dagp_.Refit(&rng_).ok()) break;
      const Proposal prop = ProposeNext(session, datasize_gb);
      if (iterations >= options_.min_iterations &&
          prop.relative_ei < options_.ei_stop) {
        break;  // Converged: expected improvement below 10%.
      }
      const sparksim::SparkConf conf =
          space.Repair(space.FromUnit(prop.unit));
      EvaluateAndRecord(session, conf, datasize_gb, /*full_app=*/false);
      ++iterations;
    }
  } else {
    // Warm start at a new data size: the DAGP transfers across ds.
    obs::ScopedSpan span(tracer(), "tune/warm", "tuner");
    phase_label_ = "warm";
    int iterations = 0;
    while (iterations < options_.warm_iterations) {
      if (!dagp_.Refit(&rng_).ok()) break;
      const Proposal prop = ProposeNext(session, datasize_gb);
      if (iterations >= 3 && prop.relative_ei < options_.ei_stop) break;
      const sparksim::SparkConf conf =
          space.Repair(space.FromUnit(prop.unit));
      EvaluateAndRecord(session, conf, datasize_gb, /*full_app=*/false);
      ++iterations;
    }
    // The incumbent may come from another data size; re-rank the history
    // restricted to this ds (with the GP's help when it is empty).
    double best = 0.0;
    for (const auto& obs : observations_) {
      if (obs.failed) continue;
      if (obs.datasize_gb == datasize_gb &&
          (best <= 0.0 || obs.objective_seconds < best)) {
        best = obs.objective_seconds;
        best_objective_ = best;
      }
    }
  }

  // Recommend the final configuration robustly: rank evaluated points by
  // the DAGP posterior mean (standard BO practice — under noisy runs the
  // raw minimum is a winner's-curse artifact), then re-run the top few
  // once more (charged) and pick the best two-run average.
  obs::ScopedSpan recommend_span(tracer(), "tune/recommend", "tuner");
  phase_label_ = "recommend";
  pending_relative_ei_ = 0.0;
  pending_candidate_pool_ = 0;
  pending_acq_seconds_ = 0.0;
  const bool have_model = dagp_.fitted() || dagp_.Refit(&rng_).ok();
  std::vector<std::pair<double, size_t>> ranked;
  if (have_model) {
    // One batched posterior-mean pass over this data size's history.
    const auto acq_start = std::chrono::steady_clock::now();
    std::vector<math::Vector> encoded;
    std::vector<size_t> indices;
    for (size_t i = 0; i < observations_.size(); ++i) {
      const auto& obs = observations_[i];
      if (obs.datasize_gb != datasize_gb || obs.failed) continue;
      encoded.push_back(EncodeUnit(obs.unit));
      indices.push_back(i);
    }
    if (!encoded.empty()) {
      const std::vector<double> sizes(encoded.size(), datasize_gb);
      const std::vector<Dagp::Prediction> preds =
          dagp_.PredictBatch(encoded, sizes);
      for (size_t k = 0; k < preds.size(); ++k) {
        ranked.push_back({preds[k].seconds, indices[k]});
      }
    }
    pending_acq_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      acq_start)
            .count();
  } else {
    for (size_t i = 0; i < observations_.size(); ++i) {
      const auto& obs = observations_[i];
      if (obs.datasize_gb != datasize_gb || obs.failed) continue;
      ranked.push_back({obs.objective_seconds, i});
    }
  }
  std::sort(ranked.begin(), ranked.end());
  // Re-measure the top candidates as one batch; the champion/telemetry
  // loop below replays the sequential bookkeeping (including the meter
  // deltas) in ranked order.
  const size_t n_rerun = std::min<size_t>(ranked.size(), 3);
  std::vector<sparksim::SparkConf> rerun_confs;
  rerun_confs.reserve(n_rerun);
  for (size_t r = 0; r < n_rerun; ++r) {
    rerun_confs.push_back(space.Repair(
        space.FromUnit(observations_[ranked[r].second].unit)));
  }
  double rerun_meter = session->optimization_seconds();
  StatusOr<std::vector<EvalRecord>> rerun_or =
      session->EvaluateSubsetBatch(rerun_confs, datasize_gb, rqa_);
  double champion = 0.0;
  if (rerun_or.ok()) {
    const std::vector<EvalRecord>& rerun_recs = *rerun_or;
    for (size_t r = 0; r < n_rerun; ++r) {
      const auto& obs = observations_[ranked[r].second];
      const EvalRecord& rec = rerun_recs[r];
      const double rerun_meter_after = rerun_meter + rec.app_seconds;
      if (rec.failed) {
        // A kill during the confirmation re-run disqualifies the
        // candidate — the previously ranked observations stand.
        ++failed_evals_;
      } else {
        const double avg = 0.5 * (rec.app_seconds + obs.objective_seconds);
        if (champion <= 0.0 || avg < champion) {
          champion = avg;
          best_conf_ = rerun_confs[r];
          best_objective_ = avg;
        }
      }
      EmitIteration(datasize_gb, rerun_meter_after - rerun_meter,
                    rec.app_seconds, /*full_app=*/false);
      rerun_meter = rerun_meter_after;
    }
  }

  TuningResult result;
  result.tuner_name = name();
  result.best_conf = best_conf_;
  result.best_observed_seconds = best_objective_;
  result.optimization_seconds =
      session->optimization_seconds() - meter_start;
  result.evaluations = session->evaluations() - evals_start;
  result.failed_evaluations = failed_evals_ - failed_start;
  result.trajectory = trajectory_;

  tune_span.Arg("evaluations", static_cast<double>(result.evaluations));
  tune_span.Arg("optimization_seconds", result.optimization_seconds);
  tune_span.Arg("best_seconds", result.best_observed_seconds);
  if (result.failed_evaluations > 0) {
    tune_span.Arg("failed_evals",
                  static_cast<double>(result.failed_evaluations));
  }
  if (observer() != nullptr) {
    obs::PhaseEvent ev;
    ev.tuner = name();
    ev.phase = "summary";
    ev.fields = {
        {"evaluations", static_cast<double>(result.evaluations)},
        {"optimization_seconds", result.optimization_seconds},
        {"best_seconds", result.best_observed_seconds},
        {"datasize_gb", datasize_gb},
        {"failed_evals", static_cast<double>(result.failed_evaluations)},
    };
    observer()->OnPhase(ev);
  }
  return result;
}

}  // namespace locat::core
