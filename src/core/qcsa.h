#ifndef LOCAT_CORE_QCSA_H_
#define LOCAT_CORE_QCSA_H_

#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace locat::core {

/// Result of Query Configuration Sensitivity Analysis (Section 3.2).
struct QcsaResult {
  /// Per-query coefficient of variation across the sampled runs
  /// (equation (3)).
  std::vector<double> cv;
  /// Queries with CV >= threshold: configuration-sensitive (kept in the
  /// RQA), ordered by original query index.
  std::vector<int> csq_indices;
  /// Queries below the threshold: configuration-insensitive (removed).
  std::vector<int> ciq_indices;
  /// CIQ/CSQ boundary: min(CV) + (max(CV) - min(CV)) / 3 (equation (4)).
  double threshold = 0.0;
  double min_cv = 0.0;
  double max_cv = 0.0;
};

/// Computes per-query CVs and the tertile-based CSQ/CIQ split from a
/// sample matrix: `times_per_query[i][j]` is query i's execution time in
/// the j-th sampled run (the paper's matrix S, equation (2)).
///
/// Every query must have the same number (>= 2) of samples.
///
/// `tracer` (optional) records the analysis as a span with the CSQ/CIQ
/// split in its args.
StatusOr<QcsaResult> AnalyzeQuerySensitivity(
    const std::vector<std::vector<double>>& times_per_query,
    obs::Tracer* tracer = nullptr);

}  // namespace locat::core

#endif  // LOCAT_CORE_QCSA_H_
