// AVX2 lane-pass evaluator behind batch::EvalBlock. This TU alone is
// compiled with -mavx2 -fno-trapping-math (plus the library-wide
// -ffp-contract=off); the dispatcher in batch_soa.cc only calls it when
// the math::kern backend resolved to kAvx2, so the rest of the binary
// stays runnable on older x86.
//
// The cost model here is the same IEEE-754 op sequence as the scalar
// EvalCell, restructured from one branchy per-cell function into
// vectorizable passes over contiguous lane arrays:
//   - every data-dependent branch becomes a select (ternary on a lane
//     value), which preserves the taken branch's value bit for bit;
//   - guarded divisions are speculated across all lanes (hence
//     -fno-trapping-math) and the garbage lanes blended away — the
//     selected lane's quotient is the same single correctly-rounded
//     division the scalar code performs;
//   - std::log2 / std::pow stay scalar libm calls in dedicated fix-up
//     loops over the (usually few) lanes whose spill/OOM/GC-pressure
//     condition fired, so no vector-libm approximation ever leaks in.
// Associativity is transcribed exactly (C++ left-assoc, explicit parens
// where the scalar code grouped differently), per-query constant folds
// reuse the identical multiply the scalar code performs per cell, and
// std::min/std::max are written as the (a < b) selections libstdc++
// defines them as. The bit-identity gates in tests/batch_engine_test.cc
// and bench/micro_simgrid compare this evaluator against the scalar one
// and the sequential engine on every change.

#if defined(__x86_64__) || defined(_M_X64)

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "sparksim/batch_soa.h"

namespace locat::sparksim::batch {

namespace {
// Lanes per temp-array sub-block: big enough that the pass loops
// amortize, small enough that ~20 spill arrays stay in L1/L2.
constexpr size_t kLanes = 256;
}  // namespace

void EvalBlockAvx2(const ModelTables& t, const std::vector<QueryEnv>& envs,
                   const LoweredBatch& L, size_t p0, size_t p1,
                   CellPlanes* out, size_t out_p0, size_t out_stride) {
  const size_t nq = envs.size();
  alignas(64) double empt[kLanes];
  alignas(64) double scan_waves[kLanes];
  alignas(64) double map_t[kLanes];
  alignas(64) double net_t[kLanes];
  alignas(64) double demand[kLanes];
  alignas(64) double avail[kLanes];
  alignas(64) double rcpu[kLanes];
  alignas(64) double press[kLanes];
  alignas(64) double bcast[kLanes];
  alignas(64) double spill_t[kLanes];
  alignas(64) double oom_mult[kLanes];
  alignas(64) double ape_a[kLanes];
  alignas(64) double fgc_a[kLanes];
  alignas(64) double thrash[kLanes];
  // Double-typed shadows of the narrow planes used by the scan/shuffle
  // vector passes: GCC if-converts and vectorizes pure-double bodies,
  // but gives up when uint8/int32 loads feed double selects there. The
  // widening is exact (flags become 0.0/1.0, int32 fits a double), so
  // the selects pick identical values.
  alignas(64) double ones[kLanes];
  for (size_t l = 0; l < kLanes; ++l) ones[l] = 1.0;
  alignas(64) double maxf_d[kLanes];
  alignas(64) double prun_d[kLanes];
  alignas(64) double psmj_d[kLanes];
  alignas(64) double bysort_d[kLanes];
  alignas(64) double radix_d[kLanes];
  alignas(64) double agg2_d[kLanes];
  alignas(64) double retain_d[kLanes];
  alignas(64) double scomp_d[kLanes];
  alignas(64) double bcomp_d[kLanes];

  for (size_t s0 = p0; s0 < p1; s0 += kLanes) {
    const size_t sn = std::min(kLanes, p1 - s0);
    // Lane-array views of the lowered planes for this sub-block.
    const double* __restrict pool = L.pool.data() + s0;
    const double* __restrict pool_sf = L.pool_sf.data() + s0;
    const double* __restrict cores = L.cores_d.data() + s0;
    const double* __restrict slots = L.slots_d.data() + s0;
    const double* __restrict execs = L.executors_d.data() + s0;
    const double* __restrict ediv = L.exec_div.data() + s0;
    const double* __restrict offh = L.offheap_per_task.data() + s0;
    const double* __restrict sp = L.speed.data() + s0;
    const double* __restrict spwt = L.speed_wt.data() + s0;
    const double* __restrict ccpu_cache = L.cache_cpu.data() + s0;
    const double* __restrict rddt = L.rdd_tasks.data() + s0;
    const double* __restrict rddw = L.rdd_waves.data() + s0;
    const double* __restrict parts = L.partitions.data() + s0;
    const double* __restrict rawp = L.raw_partitions.data() + s0;
    const double* __restrict redw = L.red_waves.data() + s0;
    const double* __restrict bth = L.bcast_threshold.data() + s0;
    const double* __restrict blk = L.block_mb.data() + s0;
    const double* __restrict kryo = L.kryo_factor.data() + s0;
    const double* __restrict cart = L.cartesian_factor.data() + s0;
    const double* __restrict cratio = L.comp_ratio.data() + s0;
    const double* __restrict ccpu = L.comp_cpu.data() + s0;
    const double* __restrict zbuf = L.zbuf_factor.data() + s0;
    const double* __restrict ff = L.file_factor.data() + s0;
    const double* __restrict ndenom = L.net_denom.data() + s0;
    const double* __restrict infl = L.inflight_factor.data() + s0;
    const double* __restrict eff = L.eff_threshold.data() + s0;
    const double* __restrict ombase = L.oom_mult_base.data() + s0;
    const double* __restrict goff = L.gc_off_factor.data() + s0;
    const double* __restrict ut = L.user_thrash.data() + s0;
    const double* __restrict up6 = L.up6.data() + s0;
    const double* __restrict den1 = L.gc_den1.data() + s0;
    const double* __restrict den2 = L.gc_den2.data() + s0;
    const double* __restrict pause = L.pause.data() + s0;
    const double* __restrict rev = L.revive_term.data() + s0;
    const double* __restrict lw12 = L.lw12.data() + s0;
    const double* __restrict mmap = L.mmap_term.data() + s0;
    const int32_t* __restrict maxf = L.maxfields.data() + s0;
    const uint8_t* __restrict pruning = L.pruning.data() + s0;
    const uint8_t* __restrict psmj = L.prefer_smj.data() + s0;
    const uint8_t* __restrict bysort = L.bypass_sort.data() + s0;
    const uint8_t* __restrict radix = L.radix.data() + s0;
    const uint8_t* __restrict agg2 = L.agg2.data() + s0;
    const uint8_t* __restrict retain = L.retain.data() + s0;
    const uint8_t* __restrict scomp = L.shuffle_compress.data() + s0;
    const uint8_t* __restrict spcomp = L.spill_compress.data() + s0;
    const uint8_t* __restrict bcomp = L.bcast_compress.data() + s0;
    const uint8_t* __restrict rddc = L.rdd_compress.data() + s0;
    const uint8_t* __restrict hoff = L.has_offheap.data() + s0;
    const uint8_t* __restrict oomb = L.oom_flag_base.data() + s0;

    for (size_t l = 0; l < sn; ++l) {
      maxf_d[l] = static_cast<double>(maxf[l]);
      prun_d[l] = pruning[l] != 0 ? 1.0 : 0.0;
      psmj_d[l] = psmj[l] != 0 ? 1.0 : 0.0;
      bysort_d[l] = bysort[l] != 0 ? 1.0 : 0.0;
      radix_d[l] = radix[l] != 0 ? 1.0 : 0.0;
      agg2_d[l] = agg2[l] != 0 ? 1.0 : 0.0;
      retain_d[l] = retain[l] != 0 ? 1.0 : 0.0;
      scomp_d[l] = scomp[l] != 0 ? 1.0 : 0.0;
      bcomp_d[l] = bcomp[l] != 0 ? 1.0 : 0.0;
    }

    for (size_t qi = 0; qi < nq; ++qi) {
      const QueryEnv& e = envs[qi];
      const size_t row0 = qi * out_stride + (s0 - out_p0);
      double* __restrict o_exec = out->exec.data() + row0;
      double* __restrict o_gc = out->gc.data() + row0;
      double* __restrict o_scan = out->scan.data() + row0;
      double* __restrict o_sh = out->shuffle_s.data() + row0;
      double* __restrict o_sgb = out->shuffle_gb.data() + row0;
      double* __restrict o_spill = out->spill_gb.data() + row0;
      double* __restrict o_waves = out->waves.data() + row0;
      double* __restrict o_sev = out->severity.data() + row0;
      uint8_t* __restrict o_oom = out->oom.data() + row0;

      // Per-query constant folds. Each is a product of two query-only
      // values the scalar code multiplies per cell — the same two
      // operands in the same order, so the lanes that select them get
      // the identical bits.
      const double sc_base = e.scanned_gb * e.cpu_per_gb;
      const double sc_cg = e.scanned_gb * (e.cpu_per_gb * 1.12);
      const double rg07 = e.rescan_gb_base * 0.7;
      const double sb_av = e.shuffle_base * e.one_minus_avoid;
      const double mptf16 = e.mem_per_task_factor * 1.6;
      const double msc08 = t.p.map_sort_cpu * 0.8;
      const double skew_m = std::max(1.0, e.skew);
      // Query-invariant branch conditions folded into selectable values
      // so the vector passes stay straight-line (GCC only if-converts
      // branch-free bodies). Each fold is bit-preserving: rgA/rgB pick
      // the rescan operand (0 * positive == +0 when has_rescan is off),
      // nss_inf makes `raw/slots` compare false on every lane when nss
      // == 0, and the *1.0 identity multiplies below leave lanes whose
      // scalar path skipped the multiply untouched bitwise.
      const double rgA = e.has_rescan ? rg07 : 0.0;
      const double rgB = e.has_rescan ? e.rescan_gb_base : 0.0;
      // xw_gate multiplies the extra-wave term by 1.0 or 0.0: xw is a
      // non-negative ceil, so xw * 1.0 == xw and xw * 0.0 == +0.0 — the
      // exact operand the scalar ternary adds. A select on an invariant
      // bool would keep GCC from if-converting the loop.
      const double xw_gate = e.nss > 0 ? 1.0 : 0.0;
      const double bc_lhs = e.has_bcast
                                ? e.bcast_mb1024
                                : std::numeric_limits<double>::infinity();
      const double cgf_d = static_cast<double>(e.codegen_fields);
      const double cj_sel = e.is_join ? 0.0 : 2.0;  // psmj is 0/1, never 2
      const double msel = e.is_agg ? msc08 : t.p.map_sort_cpu;
      const double f088 = e.is_agg ? 0.88 : 1.0;
      const double f102 = e.is_agg ? 1.02 : 1.0;
      // Pointer select instead of a per-lane invariant-bool ternary:
      // non-cartesian queries multiply by 1.0, which leaves mc bitwise
      // untouched, exactly like the skipped scalar multiply.
      const double* __restrict cart_sel = e.cartesian ? cart : ones;

      // ---- memory-demand plane phase (DeriveResources' query split).
      for (size_t l = 0; l < sn; ++l) {
        const double storage_pool = e.storage_need * pool_sf[l];
        const double d = (pool[l] - storage_pool) - 0.0;
        const double ea = (0.05 < d) ? d : 0.05;
        empt[l] = ea / cores[l];
      }

      // ---- scan + totals-latency pass. The omp simd pragmas assert
      // the (true) absence of lane dependences: without them GCC's
      // vectorizer loses track of these unit-stride loops inside the
      // chunk x query nest and leaves them scalar.
#pragma omp simd
      for (size_t l = 0; l < sn; ++l) {
        const double sl = slots[l];
        const double sw = std::ceil(e.scan_tasks / sl);
        const double rescan = (prun_d[l] != 0.0 ? rgA : rgB) * ccpu_cache[l];
        const double scs = (cgf_d > maxf_d[l] ? sc_cg : sc_base) + rescan;
        const double cs1 = scs * (1.0 - 0.2);
        const double w1f = (cs1 / e.scan_tasks / spwt[l]) * ((sw - 1.0) + 1.1);
        const double w1 = cs1 > 0.0 ? w1f : 0.0;
        const double cs2 = scs * 0.2;
        const double w2f = (cs2 / rddt[l] / spwt[l]) * ((rddw[l] - 1.0) + 1.1);
        const double w2 = cs2 > 0.0 ? w2f : 0.0;
        const double sct = w1 + w2;
        o_scan[l] = ((sct < e.io_floor) ? e.io_floor : sct) + e.scan_overhead;
        scan_waves[l] = sw;
        const double xw = std::ceil(rawp[l] / sl);
        const double tw = sw + xw * xw_gate;
        o_waves[l] = tw;
        // latency parked in o_exec until the final combine pass.
        o_exec[l] = ((t.p.query_latency_s + rev[l] * tw) +
                     (lw12[l] * e.one_nss) * 0.3) +
                    mmap[l];
      }

      if (e.has_shuffle) {
        // ---- shuffle pass 1: map side, wire, memory pressure.
#pragma omp simd
        for (size_t l = 0; l < sn; ++l) {
          // bc_lhs is +inf when the query has no broadcast, so bc is
          // false on every lane and the speculated broadcast math (all
          // operands 0, all divisors positive) is blended away.
          const bool bc = bc_lhs <= bth[l];
          const double sg = bc ? sb_av : e.shuffle_base;
          const double bg = bcomp_d[l] != 0.0 ? e.bcast_gb_c : e.bcast_gb;
          const double bcpu = bcomp_d[l] != 0.0 ? e.bcast_cpu_c : 0.0;
          const double piece = (e.bcast_mb / blk[l]) * 0.002;
          const double full = ((((bg * execs[l]) / t.network_gbps) /
                                t.worker_nodes) +
                               bcpu / sp[l]) +
                              piece;
          const double bct = bc ? full : 0.0;
          double mc = (sg * 1.2) * kryo[l];
          const bool cj = psmj_d[l] == cj_sel;
          const double mdf = cj ? mptf16 : e.mem_per_task_factor;
          const double scpu = radix_d[l] != 0.0 ? msel : t.p.map_sort_cpu;
          mc = (!cj && bysort_d[l] == 0.0) ? mc + sg * scpu : mc;
          mc = agg2_d[l] != 0.0 ? mc * f088 : mc;
          mc = retain_d[l] != 0.0 ? mc * f102 : mc;
          mc = mc * cart_sel[l];
          const double wire = scomp_d[l] != 0.0 ? sg * cratio[l] : sg;
          mc = scomp_d[l] != 0.0 ? mc + (sg * ccpu[l]) * zbuf[l] : mc;
          mc = mc + (sg * 0.35) * ff[l];
          const double sw = scan_waves[l];
          const double mtf = (mc / e.scan_tasks / spwt[l]) * ((sw - 1.0) + 1.15);
          const double mt = (mc > 0.0 ? mtf : 0.0) + wire / t.disk_bw;
          const double nt = (wire / ndenom[l]) * infl[l];
          const double dg = (sg / parts[l]) * mdf;
          const double ag = empt[l] + offh[l];
          double rc = sg * e.shuffle_cpu_per_gb;
          rc = scomp_d[l] != 0.0 ? rc + sg * t.p.decompression_cpu : rc;
          const double pr = dg / ((1e-3 < ag) ? ag : 1e-3);
          o_sgb[l] = sg;
          bcast[l] = bct;
          map_t[l] = mt;
          net_t[l] = nt;
          demand[l] = dg;
          avail[l] = ag;
          rcpu[l] = rc;
          press[l] = pr;
          o_sev[l] = pr / eff[l];
        }

        // ---- shuffle pass 2 (scalar): spill merge passes and the OOM
        // penalty — the two log2 sites, entered per lane only when the
        // scalar code would enter them.
        for (size_t l = 0; l < sn; ++l) {
          const double sg = o_sgb[l];
          double sp_gb = 0.0;
          double sp_time = 0.0;
          double rc = rcpu[l];
          if (demand[l] > avail[l]) {
            const double spill_ratio = 1.0 - avail[l] / demand[l];
            const double merge_passes =
                1.0 + std::log2(std::max(1.0, demand[l] / avail[l]));
            sp_gb = sg * spill_ratio * (1.0 + merge_passes);
            double spill_disk_gb = sp_gb;
            if (spcomp[l] != 0) {
              rc += sp_gb * ccpu[l] * 0.8;
              spill_disk_gb *= cratio[l];
            }
            rc += sp_gb * t.p.spill_cpu_per_gb;
            sp_time = spill_disk_gb / t.disk_bw;
          }
          double om = ombase[l];
          bool oflag = oomb[l] != 0;
          if (press[l] > eff[l]) {
            om = std::min(t.p.oom_penalty_cap,
                          om + t.p.oom_penalty * std::log2(o_sev[l]));
            oflag = true;
          }
          o_spill[l] = sp_gb;
          spill_t[l] = sp_time;
          rcpu[l] = rc;
          oom_mult[l] = om;
          o_oom[l] = oflag ? 1 : 0;
        }

        // ---- shuffle pass 3: reduce side and the shuffle total.
        for (size_t l = 0; l < sn; ++l) {
          const double rc = rcpu[l];
          const double w =
              rc > 0.0
                  ? (rc / parts[l] / spwt[l]) * ((redw[l] - 1.0) + skew_m)
                  : 0.0;
          const double a = parts[l] * e.scan_tasks;
          const double b = o_sgb[l] / 6.4e-5;
          const double m = (b < a) ? b : a;
          const double rt = (((w + net_t[l]) + spill_t[l]) +
                             (parts[l] * e.stages_d) * t.p.task_overhead_s) +
                            (m * e.stages_d) * 1.0e-5;
          o_sh[l] = (map_t[l] + rt) * oom_mult[l] + bcast[l] + e.st015;
        }
      } else {
        for (size_t l = 0; l < sn; ++l) {
          o_sgb[l] = 0.0;
          o_spill[l] = 0.0;
          o_sev[l] = 0.0;
          o_sh[l] = 0.0;
          o_oom[l] = 0;
        }
      }

      // ---- GC pass 1: allocation picture and occupancy.
      for (size_t l = 0; l < sn; ++l) {
        double ag = e.alloc35 + o_sgb[l] * 1.2 + o_spill[l] * 0.5;
        ag = rddc[l] != 0 ? ag * 0.92 : ag;
        ag = hoff[l] != 0 ? ag * goff[l] : ag;
        const double ape = ag / ediv[l];
        const double inner = e.mem_per_task_factor * o_sgb[l] / parts[l];
        const double e15 = empt[l] * 1.5;
        const double cd = cores[l] * ((e15 < inner) ? e15 : inner);
        const double oy_raw = (cd / pool[l] + e.rf03) + 0.15;
        const double oy = (oy_raw < 1.5) ? oy_raw : 1.5;
        const double ob = oy - 0.6;
        thrash[l] = (0.0 < ob) ? ob : 0.0;
        ape_a[l] = ape;
        fgc_a[l] = std::ceil(ape / den1[l]) + up6[l] * ape / den2[l];
      }

      // ---- GC pass 2 (scalar): the pressure pow. pow(0, 2) is exactly
      // +0, so unpressured lanes skip the libm call without changing a
      // bit.
      for (size_t l = 0; l < sn; ++l) {
        const double ob = thrash[l];
        const double pw = ob == 0.0 ? 0.0 : std::pow(ob, 2.0);
        thrash[l] = 1.0 + t.p.gc_pressure_coeff * pw;
      }

      // ---- GC pass 3 + final combine.
#pragma omp simd
      for (size_t l = 0; l < sn; ++l) {
        const double ape = ape_a[l];
        const double r = ape / pool[l];
        const double min1 = (r < 1.0) ? r : 1.0;
        const double gc =
            ape * t.p.gc_base_s_per_gb * thrash[l] * ut[l] +
            fgc_a[l] * pause[l] * min1;
        o_gc[l] = gc;
        o_exec[l] = o_scan[l] + o_sh[l] + gc + o_exec[l];
      }
    }
  }
}

}  // namespace locat::sparksim::batch

#endif  // x86-64
