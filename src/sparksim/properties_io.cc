#include "sparksim/properties_io.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace locat::sparksim {
namespace {

enum class Unit { kNone, kGb, kMb, kKb, kSeconds, kBool };

Unit NativeUnit(ParamId id) {
  switch (id) {
    case kDriverMemory:
    case kExecutorMemory:
      return Unit::kGb;
    case kBroadcastBlockSize:
    case kExecutorMemoryOverhead:
    case kKryoBufferMax:
    case kMemoryOffHeapSize:
    case kReducerMaxSizeInFlight:
    case kStorageMemoryMapThreshold:
      return Unit::kMb;
    case kZstdBufferSize:
    case kKryoBuffer:
    case kShuffleFileBuffer:
    case kSqlAutoBroadcastJoinThreshold:
      return Unit::kKb;
    case kLocalityWait:
    case kSchedulerReviveInterval:
      return Unit::kSeconds;
    default:
      return ParamCatalog()[static_cast<size_t>(id)].kind == ParamKind::kBool
                 ? Unit::kBool
                 : Unit::kNone;
  }
}

const char* Suffix(Unit unit) {
  switch (unit) {
    case Unit::kGb:
      return "g";
    case Unit::kMb:
      return "m";
    case Unit::kKb:
      return "k";
    case Unit::kSeconds:
      return "s";
    default:
      return "";
  }
}

// KB per native unit, for byte-valued parameters.
double KbPerUnit(Unit unit) {
  switch (unit) {
    case Unit::kGb:
      return 1024.0 * 1024.0;
    case Unit::kMb:
      return 1024.0;
    case Unit::kKb:
      return 1.0;
    default:
      return 1.0;
  }
}

}  // namespace

void WriteSparkProperties(const SparkConf& conf, std::ostream& os) {
  const auto& catalog = ParamCatalog();
  for (int i = 0; i < kNumParams; ++i) {
    const ParamId id = static_cast<ParamId>(i);
    const auto& spec = catalog[static_cast<size_t>(i)];
    os << spec.name << "  ";
    const Unit unit = NativeUnit(id);
    if (unit == Unit::kBool) {
      os << (conf.GetBool(id) ? "true" : "false");
    } else if (spec.kind == ParamKind::kReal) {
      std::ostringstream v;
      v.precision(10);
      v << conf.Get(id);
      os << v.str();
    } else {
      os << conf.GetInt(id) << Suffix(unit);
    }
    os << "\n";
  }
}

std::string SparkPropertiesToString(const SparkConf& conf) {
  std::ostringstream os;
  WriteSparkProperties(conf, os);
  return os.str();
}

StatusOr<SparkConf> ParseSparkProperties(const std::string& text,
                                         const SparkConf& base) {
  // Name -> index lookup (the catalog is small; linear is fine but build
  // it once per call for clarity).
  const auto& catalog = ParamCatalog();
  SparkConf conf = base;

  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    // Strip comments and whitespace.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    const auto is_space = [](unsigned char c) { return std::isspace(c); };
    line.erase(line.begin(),
               std::find_if_not(line.begin(), line.end(), is_space));
    while (!line.empty() && is_space(static_cast<unsigned char>(line.back()))) {
      line.pop_back();
    }
    if (line.empty()) continue;

    // Split on '=' or whitespace.
    size_t sep = line.find('=');
    if (sep == std::string::npos) {
      sep = line.find_first_of(" \t");
    }
    if (sep == std::string::npos) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected `key value`");
    }
    std::string key = line.substr(0, sep);
    std::string value = line.substr(sep + 1);
    while (!key.empty() && is_space(static_cast<unsigned char>(key.back()))) {
      key.pop_back();
    }
    value.erase(value.begin(),
                std::find_if_not(value.begin(), value.end(), is_space));
    if (value.empty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": empty value for " + key);
    }

    int index = -1;
    for (int i = 0; i < kNumParams; ++i) {
      if (catalog[static_cast<size_t>(i)].name == key) {
        index = i;
        break;
      }
    }
    if (index < 0) {
      return Status::NotFound("line " + std::to_string(line_no) +
                              ": unknown parameter " + key);
    }
    const ParamId id = static_cast<ParamId>(index);
    const Unit native = NativeUnit(id);

    if (native == Unit::kBool) {
      std::string lower = value;
      std::transform(lower.begin(), lower.end(), lower.begin(),
                     [](unsigned char c) { return std::tolower(c); });
      if (lower != "true" && lower != "false") {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected true/false for " + key);
      }
      conf.Set(id, lower == "true" ? 1.0 : 0.0);
      continue;
    }

    // Numeric (possibly suffixed) value.
    char* end = nullptr;
    const double magnitude = std::strtod(value.c_str(), &end);
    if (end == value.c_str()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad number for " + key);
    }
    std::string suffix(end);
    std::transform(suffix.begin(), suffix.end(), suffix.begin(),
                   [](unsigned char c) { return std::tolower(c); });

    double native_value = magnitude;
    if (suffix.empty()) {
      // Bare number: already in the native unit.
    } else if (suffix == "s" && native == Unit::kSeconds) {
      // Seconds on a time-valued parameter.
    } else if ((suffix == "g" || suffix == "m" || suffix == "k") &&
               (native == Unit::kGb || native == Unit::kMb ||
                native == Unit::kKb)) {
      const double value_kb =
          magnitude * (suffix == "g" ? 1024.0 * 1024.0
                                     : (suffix == "m" ? 1024.0 : 1.0));
      native_value = value_kb / KbPerUnit(native);
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unsupported suffix '" + suffix +
                                     "' for " + key);
    }
    if (catalog[static_cast<size_t>(index)].kind == ParamKind::kInt) {
      native_value = std::round(native_value);
    }
    conf.Set(id, native_value);
  }
  return conf;
}

}  // namespace locat::sparksim
