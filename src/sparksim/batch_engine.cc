#include "sparksim/batch_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/thread_pool.h"
#include "obs/trace.h"
#include "sparksim/batch_soa.h"
#include "sparksim/eval_cache.h"
#include "sparksim/faults.h"

// Compiled with -ffp-contract=off like batch_soa.cc / simulator.cc: the
// engines' bit-identity contract forbids fusing any multiply-add the
// scalar model performed as two roundings.

namespace locat::sparksim {
namespace {

/// Initial engine from LOCAT_SIM_ENGINE. Runs once, thread-safe via the
/// function-local static in EngineSlot() (same pattern as kern.cc's
/// LOCAT_SIMD backend slot).
SimEngine InitialEngine() {
  const char* env = std::getenv("LOCAT_SIM_ENGINE");
  if (env == nullptr || *env == '\0') return SimEngine::kAuto;
  const std::string v(env);
  if (v == "seq") return SimEngine::kSeq;
  if (v == "batch") return SimEngine::kBatch;
  if (v != "auto") {
    std::fprintf(stderr,
                 "locat: ignoring invalid LOCAT_SIM_ENGINE=%s "
                 "(expected seq|batch|auto); using auto\n",
                 env);
  }
  return SimEngine::kAuto;
}

std::atomic<SimEngine>& EngineSlot() {
  static std::atomic<SimEngine> slot(InitialEngine());
  return slot;
}

// Mirror of simulator.cc's SimLaneNs (1 simulated second = 1 ms of trace
// time): one multiply and a truncating cast, bit-identical by construction.
uint64_t SimLaneNs(double seconds) {
  return static_cast<uint64_t>(std::max(0.0, seconds) * 1e6);
}

}  // namespace

SimEngine ActiveSimEngine() {
  return EngineSlot().load(std::memory_order_acquire);
}

void SetSimEngine(SimEngine e) {
  EngineSlot().store(e, std::memory_order_release);
}

Status SetSimEngineByName(std::string_view name) {
  if (name == "seq") {
    SetSimEngine(SimEngine::kSeq);
    return Status::OK();
  }
  if (name == "batch") {
    SetSimEngine(SimEngine::kBatch);
    return Status::OK();
  }
  if (name == "auto") {
    SetSimEngine(SimEngine::kAuto);
    return Status::OK();
  }
  return Status::InvalidArgument("unknown sim engine '" + std::string(name) +
                                 "' (expected seq|batch|auto)");
}

const char* SimEngineName(SimEngine e) {
  switch (e) {
    case SimEngine::kSeq:
      return "seq";
    case SimEngine::kBatch:
      return "batch";
    case SimEngine::kAuto:
      return "auto";
  }
  return "unknown";
}

const char* ActiveSimEngineName() { return SimEngineName(ActiveSimEngine()); }

StatusOr<std::vector<AppRunResult>> BatchEngine::Run(
    const SparkSqlApp& app, const std::vector<int>& query_indices,
    const std::vector<SparkConf>& confs, double datasize_gb) {
  ClusterSimulator& S = *sim_;
  const size_t nq = query_indices.size();
  const size_t nruns = confs.size();
  obs::ScopedSpan batch_span(S.tracer_, "sim/app_batch", "sim");

  // ---- Phase 1: pre-draw the stochastic streams in sequential order.
  // Noise is conf-major (the order a RunAppSubset-per-conf sequence, and
  // the sequential batch, consume the noise RNG); fault draws are
  // run-major with a fixed count per run from the independent fault RNG.
  const bool noisy = S.params_.noise_sigma > 0.0;
  std::vector<double> noises;
  if (noisy) {
    noises.resize(nruns * nq);
    for (size_t k = 0; k < nruns; ++k) {
      for (size_t i = 0; i < nq; ++i) {
        ++S.runs_performed_;
        noises[k * nq + i] = S.noise_rng_.LognormalNoise(S.params_.noise_sigma);
      }
    }
  } else {
    S.runs_performed_ += static_cast<int64_t>(nruns * nq);
  }
  const bool faults_on = S.faults_.enabled();
  const size_t draw_stride = FaultDrawCount(nq);
  std::vector<double> fault_draws;
  if (faults_on) {
    fault_draws.resize(nruns * draw_stride);
    for (size_t k = 0; k < nruns; ++k) {
      DrawRunFaults(&S.fault_rng_, nq, fault_draws.data() + k * draw_stride);
    }
  }

  // ---- Phase 2: whole-app cache peel, serial lane order. A lane is
  // `served` (L1 hit), a `primary` (first lane of its conf), or a `dup`
  // of an earlier primary — dup lanes reuse the primary's computed cells
  // instead of burning compute lanes on identical arithmetic.
  EvalCache* cache = S.eval_cache_;
  const bool cache_on = cache != nullptr && nq > 0;
  enum : uint8_t { kCompute = 0, kServed = 1, kDup = 2 };
  std::vector<uint8_t> state(nruns, kCompute);
  std::vector<int> dup_primary(nruns, -1);
  std::vector<uint64_t> conf_fps;
  std::vector<uint64_t> app_keys;
  uint64_t subset_fp = 0;
  const bool need_aos = cache != nullptr || faults_on || S.tracer_ != nullptr;
  std::vector<QueryMetrics> aos;
  if (need_aos) aos.resize(nruns * nq);
  if (cache_on) {
    conf_fps.resize(nruns);
    app_keys.resize(nruns);
    for (size_t k = 0; k < nruns; ++k) {
      conf_fps[k] = FingerprintConf(confs[k]);
    }
    subset_fp = CombineSubsetFingerprint(S.AppFingerprint(app),
                                         query_indices.data(), nq);
    std::unordered_map<uint64_t, int> first_lane;
    first_lane.reserve(nruns);
    for (size_t k = 0; k < nruns; ++k) {
      app_keys[k] = CombineEvalFingerprint(conf_fps[k], S.eval_env_fp_,
                                           subset_fp, datasize_gb);
      if (cache->LookupApp(app_keys[k], confs[k], datasize_gb, subset_fp,
                           S.eval_env_fp_, nq, aos.data() + k * nq)) {
        state[k] = kServed;
        continue;
      }
      const auto [it, inserted] =
          first_lane.emplace(conf_fps[k], static_cast<int>(k));
      if (!inserted &&
          confs[static_cast<size_t>(it->second)] == confs[k]) {
        state[k] = kDup;
        dup_primary[k] = it->second;
      }
    }
  }

  // ---- Phase 3: pack compute lanes and peel the per-query cache level
  // (lookups only; insertion is gated on the fault outcome in phase 6).
  std::vector<uint32_t> lanes;
  std::vector<uint32_t> packed_of(nruns, 0);
  lanes.reserve(nruns);
  for (size_t k = 0; k < nruns; ++k) {
    if (state[k] == kCompute) {
      packed_of[k] = static_cast<uint32_t>(lanes.size());
      lanes.push_back(static_cast<uint32_t>(k));
    }
  }
  const size_t nc = lanes.size();
  std::vector<uint8_t> cell_hit;
  if (cache_on && nc > 0) {
    cell_hit.assign(nc * nq, 0);
  }

  // ---- Phase 4: lower the batch into SoA planes and hoist the per-query
  // environment.
  const batch::ModelTables tables =
      batch::ModelTables::Build(S.cluster_, S.params_);
  std::vector<batch::QueryEnv> envs;
  batch::BuildQueryEnvs(app, query_indices, datasize_gb, tables,
                        /*want_fingerprints=*/cache_on, &envs);
  common::ThreadPool* pool = common::ThreadPool::Global();
  if (cache_on && nc > 0) {
    pool->ParallelForEach(nc * nq, [&](size_t j) {
      const size_t p = j / nq;
      const size_t i = j % nq;
      const size_t k = lanes[p];
      const uint64_t fp = CombineEvalFingerprint(
          conf_fps[k], S.eval_env_fp_, envs[i].qfp, datasize_gb);
      if (cache->Lookup(fp, confs[k], datasize_gb, envs[i].qfp,
                        S.eval_env_fp_, &aos[k * nq + i])) {
        cell_hit[i * nc + p] = 1;
      }
    });
  }
  batch::LoweredBatch lowered;
  lowered.Resize(nc);

  // ---- Phase 5: advance the whole batch through the model, one
  // contiguous conf block per worker, missed cells only. Only the
  // general (cache/fault/tracer) path materializes the global
  // query-major planes; the lean path in phase 7 fuses lowering,
  // evaluation, and materialization per conf block instead.
  batch::CellPlanes planes;
  const uint8_t* hit_ptr = cell_hit.empty() ? nullptr : cell_hit.data();
  if (need_aos && nc > 0) {
    pool->ParallelForEach(nc, [&](size_t p) {
      batch::LowerConf(confs[lanes[p]], tables, p, &lowered);
    });
    planes.Resize(nc * nq);
    pool->ParallelFor(nc, [&](size_t b0, size_t b1) {
      batch::EvalBlock(tables, envs, lowered, b0, b1, hit_ptr, &planes,
                       /*out_p0=*/0, /*out_stride=*/nc);
    });
    pool->ParallelForEach(nc, [&](size_t p) {
      const size_t k = lanes[p];
      for (size_t i = 0; i < nq; ++i) {
        if (hit_ptr != nullptr && hit_ptr[i * nc + p] != 0) continue;
        batch::MetricsFromPlanes(planes, i * nc + p, envs[i],
                                 &aos[k * nq + i]);
      }
    });
  }

  // ---- Phase 6: cache resolution, serial lane order. Killed runs never
  // insert at either level (same gate as the sequential deferred-insert
  // path); dup lanes replay the lookup sequence the reference engine
  // would have performed, copying values from their primary.
  std::vector<int> kill_at(faults_on ? nruns : 0, -1);
  if (cache_on) {
    std::vector<uint8_t> dup_missed;
    for (size_t k = 0; k < nruns; ++k) {
      if (state[k] == kServed) continue;
      QueryMetrics* row = aos.data() + k * nq;
      if (state[k] == kCompute) {
        const size_t p = packed_of[k];
        if (faults_on) {
          kill_at[k] = FaultKillIndex(S.faults_,
                                      fault_draws.data() + k * draw_stride,
                                      row, nq);
          if (kill_at[k] >= 0) continue;
        }
        for (size_t i = 0; i < nq; ++i) {
          if (cell_hit[i * nc + p] != 0) continue;
          const uint64_t fp = CombineEvalFingerprint(
              conf_fps[k], S.eval_env_fp_, envs[i].qfp, datasize_gb);
          cache->Insert(fp, confs[k], datasize_gb, envs[i].qfp,
                        S.eval_env_fp_, row[i]);
        }
        cache->InsertApp(app_keys[k], confs[k], datasize_gb, subset_fp,
                         S.eval_env_fp_, row, nq);
        continue;
      }
      // kDup.
      const size_t pk = static_cast<size_t>(dup_primary[k]);
      if (faults_on) {
        // Sequential shape: this lane's whole-app lookup runs after the
        // primary's insert, so it hits unless the primary was killed.
        if (cache->LookupApp(app_keys[k], confs[k], datasize_gb, subset_fp,
                             S.eval_env_fp_, nq, row)) {
          continue;
        }
        dup_missed.assign(nq, 0);
        for (size_t i = 0; i < nq; ++i) {
          const uint64_t fp = CombineEvalFingerprint(
              conf_fps[k], S.eval_env_fp_, envs[i].qfp, datasize_gb);
          if (!cache->Lookup(fp, confs[k], datasize_gb, envs[i].qfp,
                             S.eval_env_fp_, &row[i])) {
            row[i] = aos[pk * nq + i];
            dup_missed[i] = 1;
          }
        }
        kill_at[k] = FaultKillIndex(S.faults_,
                                    fault_draws.data() + k * draw_stride,
                                    row, nq);
        if (kill_at[k] >= 0) continue;
        for (size_t i = 0; i < nq; ++i) {
          if (dup_missed[i] == 0) continue;
          const uint64_t fp = CombineEvalFingerprint(
              conf_fps[k], S.eval_env_fp_, envs[i].qfp, datasize_gb);
          cache->Insert(fp, confs[k], datasize_gb, envs[i].qfp,
                        S.eval_env_fp_, row[i]);
        }
        cache->InsertApp(app_keys[k], confs[k], datasize_gb, subset_fp,
                         S.eval_env_fp_, row, nq);
        continue;
      }
      // Flat-fan-out shape: every cell goes through the per-query level
      // (hitting the entries the primary just inserted), then the app
      // entry is inserted — the counters the reference engine's
      // single-thread schedule would produce.
      for (size_t i = 0; i < nq; ++i) {
        const uint64_t fp = CombineEvalFingerprint(
            conf_fps[k], S.eval_env_fp_, envs[i].qfp, datasize_gb);
        if (!cache->Lookup(fp, confs[k], datasize_gb, envs[i].qfp,
                           S.eval_env_fp_, &row[i])) {
          row[i] = aos[pk * nq + i];
          cache->Insert(fp, confs[k], datasize_gb, envs[i].qfp,
                        S.eval_env_fp_, row[i]);
        }
      }
      cache->InsertApp(app_keys[k], confs[k], datasize_gb, subset_fp,
                       S.eval_env_fp_, row, nq);
    }
  }

  // ---- Phase 7: noise, faults, materialization.
  std::vector<AppRunResult> results(nruns);
  if (!need_aos) {
    // Lean path (no cache, no faults, no tracer): packed == raw lanes.
    // One fused pass per contiguous conf block — each worker lowers its
    // own lanes, evaluates 64-lane sub-chunks into a small thread-local
    // plane block, and materializes results while those planes are still
    // cache-hot. No cross-phase barriers and no nruns*nq global plane
    // allocation. Noise is the same single per-cell multiply ApplyNoise
    // (and the sequential engine) performs.
    std::vector<uint64_t> lane_ns(nruns, 0);
    constexpr size_t kChunk = 64;
    pool->ParallelFor(nc, [&](size_t b0, size_t b1) {
      for (size_t p = b0; p < b1; ++p) {
        batch::LowerConf(confs[p], tables, p, &lowered);
      }
      static thread_local batch::CellPlanes block_planes;
      for (size_t s0 = b0; s0 < b1; s0 += kChunk) {
        const size_t s1 = std::min(b1, s0 + kChunk);
        const size_t sn = s1 - s0;
        block_planes.Resize(sn * nq);
        batch::EvalBlock(tables, envs, lowered, s0, s1, /*cell_hit=*/nullptr,
                         &block_planes, /*out_p0=*/s0, /*out_stride=*/sn);
        for (size_t k = s0; k < s1; ++k) {
          AppRunResult& r = results[k];
          r.per_query.resize(nq);
          const double driver_relief =
              std::min(1.0, confs[k].Get(kDriverMemory) / 16.0) *
              std::min(1.0, confs[k].Get(kDriverCores) / 4.0);
          const double submit =
              S.params_.app_submit_overhead_s * (1.2 - 0.2 * driver_relief);
          uint64_t ns = SimLaneNs(submit);
          r.total_seconds = submit;
          for (size_t i = 0; i < nq; ++i) {
            QueryMetrics& qm = r.per_query[i];
            batch::MetricsFromPlanes(block_planes, i * sn + (k - s0), envs[i],
                                     &qm);
            if (noisy) ClusterSimulator::ApplyNoise(&qm, noises[k * nq + i]);
            r.total_seconds += qm.exec_seconds;
            r.gc_seconds += qm.gc_seconds;
            r.shuffle_gb += qm.shuffle_gb;
            r.any_oom = r.any_oom || qm.oom;
            ns += SimLaneNs(qm.exec_seconds);
          }
          lane_ns[k] = ns;
        }
      }
    });
    for (size_t k = 0; k < nruns; ++k) S.sim_lane_cursor_ns_ += lane_ns[k];
  } else {
    std::vector<FaultOutcome> outcomes(faults_on ? nruns : 0);
    std::vector<size_t> run_counts(nruns, nq);
    pool->ParallelForEach(nruns, [&](size_t k) {
      QueryMetrics* row = aos.data() + k * nq;
      if (noisy) {
        for (size_t i = 0; i < nq; ++i) {
          ClusterSimulator::ApplyNoise(&row[i], noises[k * nq + i]);
        }
      }
      if (faults_on) {
        outcomes[k] = ApplyRunFaults(
            S.faults_, fault_draws.data() + k * draw_stride,
            std::max(1, confs[k].GetInt(kExecutorInstances)), row, nq);
        run_counts[k] = outcomes[k].queries_run;
      }
    });
    if (faults_on) {
      for (size_t k = 0; k < nruns; ++k) {
        const FaultOutcome& o = outcomes[k];
        S.fault_stats_.executor_losses += o.executor_losses;
        S.fault_stats_.stragglers += o.stragglers;
        S.fault_stats_.fetch_failures += o.fetch_failures;
        if (o.killed) {
          S.fault_stats_.app_kills += 1;
          S.fault_stats_.failed_runs += 1;
          if (S.flight_ != nullptr) {
            char msg[96];
            std::snprintf(msg, sizeof(msg), "oom_kill app=%s ds=%g at_query=%d",
                          app.name.c_str(), datasize_gb, o.killed_at);
            S.flight_->Record("fault", "warn", "sparksim", msg,
                              static_cast<double>(o.killed_at));
          }
        }
      }
    }
    if (S.tracer_ != nullptr) {
      // Trace emission must interleave with the simulated-time lane, so
      // materialization stays serial (the reference tail per run).
      for (size_t k = 0; k < nruns; ++k) {
        results[k] = S.FinishAppRun(app, confs[k], datasize_gb,
                                    aos.data() + k * nq, run_counts[k],
                                    nullptr);
      }
    } else {
      std::vector<uint64_t> lane_ns(nruns, 0);
      pool->ParallelForEach(nruns, [&](size_t k) {
        AppRunResult& r = results[k];
        const size_t count = run_counts[k];
        r.per_query.reserve(count);
        const double driver_relief =
            std::min(1.0, confs[k].Get(kDriverMemory) / 16.0) *
            std::min(1.0, confs[k].Get(kDriverCores) / 4.0);
        const double submit =
            S.params_.app_submit_overhead_s * (1.2 - 0.2 * driver_relief);
        uint64_t ns = SimLaneNs(submit);
        r.total_seconds = submit;
        QueryMetrics* row = aos.data() + k * nq;
        for (size_t i = 0; i < count; ++i) {
          QueryMetrics qm = std::move(row[i]);
          r.total_seconds += qm.exec_seconds;
          r.gc_seconds += qm.gc_seconds;
          r.shuffle_gb += qm.shuffle_gb;
          r.any_oom = r.any_oom || qm.oom;
          ns += SimLaneNs(qm.exec_seconds);
          r.per_query.push_back(std::move(qm));
        }
        lane_ns[k] = ns;
      });
      for (size_t k = 0; k < nruns; ++k) S.sim_lane_cursor_ns_ += lane_ns[k];
    }
    if (faults_on) {
      for (size_t k = 0; k < nruns; ++k) {
        const FaultOutcome& o = outcomes[k];
        results[k].failed = o.killed;
        results[k].failed_at_query = o.killed_at;
        results[k].retries = o.retries;
        results[k].lost_executors = o.lost_executors;
        if (o.killed) results[k].fail_reason = "oom_kill";
      }
    }
  }

  batch_span.Arg("runs", static_cast<double>(nruns));
  batch_span.Arg("queries", static_cast<double>(nq));
  return results;
}

}  // namespace locat::sparksim
