#include "sparksim/eval_cache.h"

#include <cstdlib>
#include <cstring>

namespace locat::sparksim {
namespace {

// Bump to invalidate every fingerprint when the cost model changes shape.
constexpr uint64_t kCacheFormatVersion = 1;

uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

uint64_t MixWord(uint64_t h, uint64_t v) {
  return (h ^ SplitMix64(v)) * 1099511628211ULL;  // 64-bit FNV prime
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return MixWord(h, bits);
}

uint64_t MixBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h = (h ^ p[i]) * 1099511628211ULL;
  }
  return SplitMix64(h);
}

}  // namespace

uint64_t FingerprintConf(const SparkConf& conf) {
  uint64_t h = SplitMix64(0x636f6e66ULL);  // "conf"
  for (double v : conf.values()) h = MixDouble(h, v);
  return h;
}

uint64_t FingerprintCluster(const ClusterSpec& cluster) {
  uint64_t h = SplitMix64(0x636c7573ULL);  // "clus"
  h = MixWord(h, static_cast<uint64_t>(cluster.worker_nodes));
  h = MixWord(h, static_cast<uint64_t>(cluster.cores_per_node));
  h = MixDouble(h, cluster.memory_per_node_gb);
  h = MixDouble(h, cluster.core_speed);
  h = MixDouble(h, cluster.network_gbps);
  h = MixDouble(h, cluster.disk_gbps);
  h = MixWord(h, static_cast<uint64_t>(cluster.container_max_cores));
  h = MixDouble(h, cluster.container_max_memory_gb);
  return h;
}

uint64_t FingerprintSimParams(const SimParams& params) {
  uint64_t h = SplitMix64(0x7061726dULL);  // "parm"
  h = MixDouble(h, params.split_gb);
  h = MixDouble(h, params.task_overhead_s);
  h = MixDouble(h, params.reduce_task_overhead_s);
  h = MixDouble(h, params.core_contention);
  h = MixWord(h, static_cast<uint64_t>(params.contention_free_cores));
  h = MixDouble(h, params.user_mem_base_gb);
  h = MixDouble(h, params.user_mem_per_core_gb);
  h = MixDouble(h, params.query_latency_s);
  h = MixDouble(h, params.app_submit_overhead_s);
  h = MixDouble(h, params.compression_ratio_l1);
  h = MixDouble(h, params.compression_level_gain);
  h = MixDouble(h, params.compression_cpu_l1);
  h = MixDouble(h, params.compression_level_cpu);
  h = MixDouble(h, params.decompression_cpu);
  h = MixDouble(h, params.map_sort_cpu);
  h = MixDouble(h, params.spill_cpu_per_gb);
  h = MixDouble(h, params.oom_threshold);
  h = MixDouble(h, params.oom_penalty);
  h = MixDouble(h, params.oom_penalty_cap);
  h = MixDouble(h, params.gc_base_s_per_gb);
  h = MixDouble(h, params.gc_pressure_coeff);
  h = MixDouble(h, params.gc_pause_s_per_gb);
  // noise_sigma intentionally excluded: the cached metrics are noise-free
  // (noise multiplies them afterwards), so runs with different sigmas can
  // share base evaluations.
  return h;
}

uint64_t FingerprintQuery(const QueryProfile& query) {
  uint64_t h = SplitMix64(0x71757279ULL);  // "qury"
  h = MixBytes(h, query.name.data(), query.name.size());
  h = MixWord(h, static_cast<uint64_t>(query.category));
  h = MixDouble(h, query.input_frac);
  h = MixDouble(h, query.cpu_per_gb);
  h = MixDouble(h, query.shuffle_ratio);
  h = MixDouble(h, query.shuffle_cpu_per_gb);
  h = MixWord(h, static_cast<uint64_t>(query.num_shuffle_stages));
  h = MixDouble(h, query.ds_exponent);
  h = MixDouble(h, query.broadcastable_mb);
  h = MixDouble(h, query.broadcast_avoid_frac);
  h = MixDouble(h, query.mem_per_task_factor);
  h = MixDouble(h, query.skew);
  h = MixWord(h, query.has_cartesian ? 1 : 0);
  h = MixDouble(h, query.rescan_frac);
  return h;
}

uint64_t FingerprintApp(const SparkSqlApp& app) {
  uint64_t h = SplitMix64(0x73716c61ULL);  // "sqla"
  h = MixBytes(h, app.name.data(), app.name.size());
  h = MixWord(h, static_cast<uint64_t>(app.queries.size()));
  for (const QueryProfile& q : app.queries) h = MixWord(h, FingerprintQuery(q));
  return h;
}

uint64_t CombineSubsetFingerprint(uint64_t app_fp, const int* indices,
                                  size_t count) {
  uint64_t h = MixWord(app_fp, 0x73756273ULL);  // "subs"
  h = MixWord(h, static_cast<uint64_t>(count));
  for (size_t i = 0; i < count; ++i) {
    h = MixWord(h, static_cast<uint64_t>(indices[i]));
  }
  return h;
}

uint64_t CombineEnvFingerprint(uint64_t cluster_fp, uint64_t params_fp) {
  uint64_t h = SplitMix64(kCacheFormatVersion);
  h = MixWord(h, cluster_fp);
  h = MixWord(h, params_fp);
  return h;
}

uint64_t CombineFaultFingerprint(uint64_t env_fp, uint64_t fault_fp) {
  if (fault_fp == 0) return env_fp;
  uint64_t h = MixWord(env_fp, 0x66617573ULL);  // "faus"
  return MixWord(h, fault_fp);
}

uint64_t CombineEvalFingerprint(uint64_t conf_fp, uint64_t env_fp,
                                uint64_t query_fp, double datasize_gb) {
  uint64_t h = MixWord(conf_fp, env_fp);
  h = MixWord(h, query_fp);
  return MixDouble(h, datasize_gb);
}

size_t EvalCache::CapacityFromEnv() {
  const char* env = std::getenv("LOCAT_SIM_CACHE_CAP");
  if (env != nullptr && *env != '\0') {
    const long long v = std::atoll(env);
    if (v >= 0) return static_cast<size_t>(v);
  }
  return 1u << 20;
}

EvalCache::EvalCache(size_t capacity) : capacity_(capacity) {
  // Distribute the budget so the shard capacities sum to exactly
  // `capacity` (remainder to the low shards); a zero-capacity shard
  // simply never retains entries.
  const size_t base = capacity / kNumShards;
  const size_t extra = capacity % kNumShards;
  for (size_t s = 0; s < kNumShards; ++s) {
    shards_[s].capacity = base + (s < extra ? 1 : 0);
    // App shards get the same per-shard budget, counted in QueryMetrics
    // units (an entry of n queries costs n units).
    app_shards_[s].capacity = base + (s < extra ? 1 : 0);
  }
}

bool EvalCache::MaterialMatches(const Entry& e, const SparkConf& conf,
                                double datasize_gb, uint64_t query_fp,
                                uint64_t env_fp) {
  return e.query_fp == query_fp && e.env_fp == env_fp &&
         e.datasize_gb == datasize_gb && e.conf_values == conf.values();
}

bool EvalCache::Lookup(uint64_t fingerprint, const SparkConf& conf,
                       double datasize_gb, uint64_t query_fp,
                       uint64_t env_fp, QueryMetrics* out) {
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  if (!MaterialMatches(*it->second, conf, datasize_gb, query_fp, env_fp)) {
    ++shard.collisions;
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  *out = it->second->value;
  return true;
}

void EvalCache::Insert(uint64_t fingerprint, const SparkConf& conf,
                       double datasize_gb, uint64_t query_fp,
                       uint64_t env_fp, const QueryMetrics& value) {
  Shard& shard = ShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it != shard.index.end()) {
    // Refresh; on a true collision the newer key takes the slot.
    Entry& e = *it->second;
    if (!MaterialMatches(e, conf, datasize_gb, query_fp, env_fp)) {
      ++shard.collisions;
      e.conf_values = conf.values();
      e.datasize_gb = datasize_gb;
      e.query_fp = query_fp;
      e.env_fp = env_fp;
    }
    e.value = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.capacity == 0) return;
  while (shard.lru.size() >= shard.capacity) {
    shard.index.erase(shard.lru.back().fingerprint);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  Entry e;
  e.fingerprint = fingerprint;
  e.conf_values = conf.values();
  e.datasize_gb = datasize_gb;
  e.query_fp = query_fp;
  e.env_fp = env_fp;
  e.value = value;
  shard.lru.push_front(std::move(e));
  shard.index[fingerprint] = shard.lru.begin();
  ++shard.insertions;
}

bool EvalCache::AppMaterialMatches(const AppEntry& e, const SparkConf& conf,
                                   double datasize_gb, uint64_t subset_fp,
                                   uint64_t env_fp, size_t count) {
  return e.subset_fp == subset_fp && e.env_fp == env_fp &&
         e.datasize_gb == datasize_gb && e.value.size() == count &&
         e.conf_values == conf.values();
}

bool EvalCache::LookupApp(uint64_t fingerprint, const SparkConf& conf,
                          double datasize_gb, uint64_t subset_fp,
                          uint64_t env_fp, size_t count, QueryMetrics* out) {
  AppShard& shard = AppShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  if (!AppMaterialMatches(*it->second, conf, datasize_gb, subset_fp, env_fp,
                          count)) {
    ++shard.collisions;
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  const std::vector<QueryMetrics>& v = it->second->value;
  for (size_t i = 0; i < count; ++i) out[i] = v[i];
  return true;
}

void EvalCache::InsertApp(uint64_t fingerprint, const SparkConf& conf,
                          double datasize_gb, uint64_t subset_fp,
                          uint64_t env_fp, const QueryMetrics* values,
                          size_t count) {
  AppShard& shard = AppShardFor(fingerprint);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(fingerprint);
  if (it != shard.index.end()) {
    // Refresh; on a true collision the newer key takes the slot.
    AppEntry& e = *it->second;
    if (!AppMaterialMatches(e, conf, datasize_gb, subset_fp, env_fp, count)) {
      ++shard.collisions;
      e.conf_values = conf.values();
      e.datasize_gb = datasize_gb;
      e.subset_fp = subset_fp;
      e.env_fp = env_fp;
    }
    shard.units = shard.units - e.value.size() + count;
    e.value.assign(values, values + count);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (count > shard.capacity) return;  // would never fit, even alone
  while (!shard.lru.empty() && shard.units + count > shard.capacity) {
    shard.units -= shard.lru.back().value.size();
    shard.index.erase(shard.lru.back().fingerprint);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  AppEntry e;
  e.fingerprint = fingerprint;
  e.conf_values = conf.values();
  e.datasize_gb = datasize_gb;
  e.subset_fp = subset_fp;
  e.env_fp = env_fp;
  e.value.assign(values, values + count);
  shard.lru.push_front(std::move(e));
  shard.index[fingerprint] = shard.lru.begin();
  shard.units += count;
  ++shard.insertions;
}

EvalCacheStats EvalCache::stats() const {
  EvalCacheStats s;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.evictions += shard.evictions;
    s.collisions += shard.collisions;
    s.insertions += shard.insertions;
    s.entries += shard.lru.size();
  }
  for (const AppShard& shard : app_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    s.app_hits += shard.hits;
    s.app_misses += shard.misses;
    s.app_evictions += shard.evictions;
    s.app_insertions += shard.insertions;
    s.app_entries += shard.lru.size();
    // Fold the app level into the headline counters.
    s.hits += shard.hits;
    s.misses += shard.misses;
    s.evictions += shard.evictions;
    s.collisions += shard.collisions;
    s.insertions += shard.insertions;
    s.entries += shard.lru.size();
  }
  return s;
}

size_t EvalCache::size() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.lru.size();
  }
  for (const AppShard& shard : app_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.lru.size();
  }
  return n;
}

void EvalCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
  for (AppShard& shard : app_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
    shard.units = 0;
  }
}

void EvalCache::ExportMetrics(obs::MetricsRegistry* metrics) const {
  if (metrics == nullptr) return;
  const EvalCacheStats s = stats();
  metrics
      ->GetCounter("locat_sim_cache_hits_total",
                   "Simulator eval-cache lookups served from memory")
      ->Increment(static_cast<double>(s.hits));
  metrics
      ->GetCounter("locat_sim_cache_misses_total",
                   "Simulator eval-cache lookups that ran the cost model")
      ->Increment(static_cast<double>(s.misses));
  metrics
      ->GetCounter("locat_sim_cache_evictions_total",
                   "Simulator eval-cache LRU evictions")
      ->Increment(static_cast<double>(s.evictions));
  metrics
      ->GetCounter("locat_sim_cache_collisions_total",
                   "Fingerprint collisions caught by the equality fallback")
      ->Increment(static_cast<double>(s.collisions));
  metrics
      ->GetCounter("locat_sim_cache_insertions_total",
                   "Simulator eval-cache entries inserted")
      ->Increment(static_cast<double>(s.insertions));
  metrics
      ->GetGauge("locat_sim_cache_entries",
                 "Simulator eval-cache entries currently resident")
      ->Set(static_cast<double>(s.entries));
  metrics
      ->GetCounter("locat_sim_cache_app_hits_total",
                   "Whole-subset (app-level) lookups served from memory")
      ->Increment(static_cast<double>(s.app_hits));
  metrics
      ->GetCounter("locat_sim_cache_app_misses_total",
                   "Whole-subset (app-level) lookups that fell through")
      ->Increment(static_cast<double>(s.app_misses));
}

}  // namespace locat::sparksim
