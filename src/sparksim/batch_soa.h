#ifndef LOCAT_SPARKSIM_BATCH_SOA_H_
#define LOCAT_SPARKSIM_BATCH_SOA_H_

#include <cstdint>
#include <vector>

#include "sparksim/cluster.h"
#include "sparksim/config.h"
#include "sparksim/query_profile.h"
#include "sparksim/simulator.h"

// Structure-of-arrays lowering of the analytical cost model (the batch
// engine's data plane). The scalar model in simulator.cc is the single
// source of truth; everything here is a common-subexpression hoist of that
// code — per-simulator constants into ModelTables, per-(query, datasize)
// terms into QueryEnv, per-configuration derived knobs into LoweredBatch
// planes — with the *identical* IEEE-754 operation sequence and
// associativity, so a batch cell is bit-identical to the corresponding
// SimulateQuery call. Any edit to simulator.cc's arithmetic must be
// mirrored here (the BatchEngine property tests catch divergence).

namespace locat::sparksim::batch {

/// Per-simulator constants: SimParams, cluster-derived scalars, and the
/// zstd level tables (one std::pow per level instead of two per cell).
struct ModelTables {
  SimParams p;
  double core_speed = 1.0;
  double network_gbps = 1.0;
  double disk_bw = 1.0;  // disk_gbps * worker_nodes
  double total_memory_gb = 1.0;
  int total_cores = 1;
  int container_max_cores = 1;
  int worker_nodes = 1;
  double comp_ratio[6] = {0};  // index by zlevel in [1, 5]
  double comp_cpu[6] = {0};

  static ModelTables Build(const ClusterSpec& cluster, const SimParams& params);
};

/// Per-(query, datasize) environment, hoisted once per batch.
struct QueryEnv {
  const std::string* name = nullptr;
  uint64_t qfp = 0;  // FingerprintQuery, when an eval cache is wired
  double scanned_gb = 0.0;
  double scan_tasks = 1.0;
  double scan_overhead = 0.0;  // scan_tasks * task_overhead_s
  double io_floor = 0.0;
  double cpu_per_gb = 0.0;
  int codegen_fields = 0;
  bool has_rescan = false;
  double rescan_gb_base = 0.0;
  double storage_need = 0.0;
  double rf03 = 0.0;  // rescan_frac * 0.3
  bool has_shuffle = false;
  double shuffle_base = 0.0;  // scanned * ratio * (ds/100)^ds_exp
  double stages_d = 1.0;      // max(1, num_shuffle_stages)
  double st015 = 0.0;         // stages_d * 0.15
  int nss = 0;                // raw num_shuffle_stages
  double one_nss = 1.0;       // 1.0 + num_shuffle_stages
  bool has_bcast = false;
  double bcast_mb = 0.0;
  double bcast_mb1024 = 0.0;
  double bcast_gb = 0.0;
  double bcast_cpu_c = 0.0;  // bcast_gb * compression_cpu_l1
  double bcast_gb_c = 0.0;   // bcast_gb * compression_ratio_l1
  double one_minus_avoid = 1.0;
  bool is_join = false;
  bool is_agg = false;
  bool cartesian = false;
  double mem_per_task_factor = 1.0;
  double shuffle_cpu_per_gb = 0.0;
  double skew = 1.0;
  double alloc35 = 0.0;  // scanned_gb * 0.35
};

void BuildQueryEnvs(const SparkSqlApp& app, const std::vector<int>& valid,
                    double datasize_gb, const ModelTables& tables,
                    bool want_fingerprints, std::vector<QueryEnv>* out);

/// Per-configuration derived-knob planes (one contiguous array per knob,
/// indexed by packed compute-lane position).
struct LoweredBatch {
  // Resource picture.
  std::vector<double> heap, pool, pool_sf, cores_d, slots_d, executors_d,
      exec_div, offheap_per_task, speed, speed_wt;
  // Scan / shuffle factors.
  std::vector<double> cache_cpu, rdd_tasks, rdd_waves, partitions,
      raw_partitions, red_waves, bcast_threshold, block_mb, kryo_factor,
      cartesian_factor, comp_ratio, comp_cpu, zbuf_factor, file_factor,
      net_denom, inflight_factor, eff_threshold, oom_mult_base;
  // GC / latency factors.
  std::vector<double> gc_off_factor, user_thrash, up6, gc_den1, gc_den2,
      pause, revive_term, lw12, mmap_term;
  std::vector<int32_t> maxfields;
  std::vector<uint8_t> pruning, prefer_smj, bypass_sort, radix, agg2, retain,
      shuffle_compress, spill_compress, bcast_compress, rdd_compress,
      has_offheap, oom_flag_base;

  void Resize(size_t n);
};

/// Lowers one configuration into lane `p` of the planes. Mirrors
/// DeriveResources plus every conf-only subexpression of SimulateQuery.
void LowerConf(const SparkConf& conf, const ModelTables& tables, size_t p,
               LoweredBatch* out);

/// Noise-free model output planes. Query-major: the cell for (lane p,
/// query qi) lives at `qi * lane_stride + (p - lane_base)`, so one
/// query's row across all lanes is contiguous and the evaluator's stores
/// vectorize. The engine's global planes use lane_base = 0, lane_stride =
/// packed-lane count; the fused fast path uses small block-local planes.
struct CellPlanes {
  std::vector<double> exec, gc, scan, shuffle_s, shuffle_gb, spill_gb, waves,
      severity;
  std::vector<uint8_t> oom;

  void Resize(size_t cells);
};

/// Evaluates every (lane, query) cell for packed lanes [p0, p1): a
/// memory-demand plane phase followed by the scan/shuffle/GC/totals
/// phases over contiguous conf lanes. Output cell (p, qi) goes to
/// `qi * out_stride + (p - out_p0)`. Cells whose `cell_hit` slot (same
/// indexing) is set were served from the eval cache; pass nullptr when no
/// cache is wired. Dispatches to the AVX2 pass evaluator when the
/// math::kern backend is kAvx2 (bit-identical by the determinism
/// contract — the gate in tests/batch_engine_test.cc and
/// bench/micro_simgrid checks it), to the scalar per-cell evaluator
/// otherwise.
void EvalBlock(const ModelTables& tables, const std::vector<QueryEnv>& envs,
               const LoweredBatch& lowered, size_t p0, size_t p1,
               const uint8_t* cell_hit, CellPlanes* out, size_t out_p0,
               size_t out_stride);

#if defined(__x86_64__) || defined(_M_X64)
/// The AVX2 lane-pass evaluator (batch_eval_avx2.cc, compiled with
/// -mavx2 -ffp-contract=off): same cell values as the scalar evaluator,
/// computed as vectorizable passes over the lane arrays. Ignores
/// cell_hit (it recomputes hit cells; their planes are never read).
void EvalBlockAvx2(const ModelTables& tables, const std::vector<QueryEnv>& envs,
                   const LoweredBatch& lowered, size_t p0, size_t p1,
                   CellPlanes* out, size_t out_p0, size_t out_stride);
#endif

/// Copies cell `c` of the planes into an AoS QueryMetrics.
void MetricsFromPlanes(const CellPlanes& planes, size_t c, const QueryEnv& env,
                       QueryMetrics* out);

}  // namespace locat::sparksim::batch

#endif  // LOCAT_SPARKSIM_BATCH_SOA_H_
