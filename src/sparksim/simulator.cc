#include "sparksim/simulator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <utility>

#include "common/thread_pool.h"
#include "sparksim/batch_engine.h"
#include "sparksim/eval_cache.h"

namespace locat::sparksim {
namespace {

// Time to run `tasks` tasks totalling `core_seconds` of work on `slots`
// parallel slots, with the final wave stretched by the straggler factor
// `skew` (>= 1).
double WaveTime(double core_seconds, double tasks, double slots, double speed,
                double skew) {
  if (core_seconds <= 0.0 || tasks <= 0.0) return 0.0;
  slots = std::max(1.0, slots);
  const double per_task = core_seconds / tasks / std::max(0.05, speed);
  const double waves = std::ceil(tasks / slots);
  return per_task * (waves - 1.0 + std::max(1.0, skew));
}

// Deterministic pseudo "number of projected fields" for the codegen
// maxFields effect, derived from the query name.
int CodegenFields(const std::string& name) {
  const size_t h = std::hash<std::string>{}(name);
  return 50 + static_cast<int>(h % 150);
}

// Simulated seconds -> nanoseconds of simulated-lane trace time. The lane
// uses 1 simulated second = 1 ms of trace time so hour-long apps stay
// readable next to the wall-clock lane.
uint64_t SimLaneNs(double seconds) {
  return static_cast<uint64_t>(std::max(0.0, seconds) * 1e6);
}

std::string NumArg(const char* key, double value) {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.9g", key, value);
  return buf;
}

}  // namespace

ClusterSimulator::ClusterSimulator(const ClusterSpec& cluster, uint64_t seed,
                                   SimParams params)
    : cluster_(cluster),
      params_(params),
      noise_rng_(seed),
      env_fp_(CombineEnvFingerprint(FingerprintCluster(cluster_),
                                    FingerprintSimParams(params_))) {
  eval_env_fp_ = env_fp_;
}

void ClusterSimulator::set_faults(const FaultSpec& spec) {
  faults_ = spec;
  fault_rng_ = Rng(spec.seed);
  fault_stats_ = FaultStats{};
  eval_env_fp_ = CombineFaultFingerprint(env_fp_, FingerprintFaultSpec(spec));
}

ClusterSimulator::Resources ClusterSimulator::DeriveResources(
    const SparkConf& conf, const QueryProfile& query) const {
  Resources r;
  r.cores_per_executor = std::clamp(conf.GetInt(kExecutorCores), 1,
                                    cluster_.container_max_cores);
  r.heap_gb = std::max(1.0, conf.Get(kExecutorMemory));
  r.overhead_gb = std::max(0.384, conf.Get(kExecutorMemoryOverhead) / 1024.0);
  const bool offheap_on = conf.GetBool(kMemoryOffHeapEnabled);
  const double offheap_gb =
      offheap_on ? conf.Get(kMemoryOffHeapSize) / 1024.0 : 0.0;

  const double per_exec_mem = r.heap_gb + r.overhead_gb + offheap_gb;
  const int requested = std::max(1, conf.GetInt(kExecutorInstances));
  // Yarn grants only as many containers as the cluster can host.
  const int max_by_mem = std::max(
      1, static_cast<int>(cluster_.total_memory_gb() / per_exec_mem));
  const int max_by_cores =
      std::max(1, cluster_.total_cores() / r.cores_per_executor);
  r.executors = std::min({requested, max_by_mem, max_by_cores});
  r.slots = r.executors * r.cores_per_executor;

  // Spark unified memory: (heap - 300MB) * memory.fraction is shared by
  // execution and storage; storageFraction protects cached blocks from
  // eviction, shrinking what shuffles can use.
  const double pool = std::max(0.1, (r.heap_gb - 0.3) *
                                        conf.Get(kMemoryFraction));
  const double storage_need =
      0.25 + 0.65 * std::min(1.0, query.rescan_frac * 4.0);
  r.storage_pool_gb =
      pool * conf.Get(kMemoryStorageFraction) * storage_need;
  const double exec_avail = std::max(0.05, pool - r.storage_pool_gb);
  r.exec_mem_per_task_gb = exec_avail / r.cores_per_executor;
  r.offheap_per_task_gb = offheap_gb / r.cores_per_executor;
  return r;
}

QueryMetrics ClusterSimulator::SimulateQuery(const QueryProfile& query,
                                             const SparkConf& conf,
                                             double datasize_gb) const {
  QueryMetrics m;
  m.name = query.name;

  const Resources res = DeriveResources(conf, query);
  // Cores sharing one JVM heap contend on allocation and locks beyond a
  // few cores per executor.
  const double contention =
      1.0 + params_.core_contention *
                std::max(0, res.cores_per_executor -
                                params_.contention_free_cores);
  const double speed = cluster_.core_speed / contention;
  const double slots = res.slots;
  const double disk_bw = cluster_.disk_gbps * cluster_.worker_nodes;
  const double scanned_gb = datasize_gb * query.input_frac;

  // ---------------------------------------------------------------- scan
  const double scan_tasks =
      std::max(1.0, std::ceil(scanned_gb / params_.split_gb));
  double scan_cpu_per_gb = query.cpu_per_gb;

  // Whole-stage codegen falls back to interpreted mode when the plan has
  // more fields than sql.codegen.maxFields.
  if (CodegenFields(query.name) > conf.GetInt(kSqlCodegenMaxFields)) {
    scan_cpu_per_gb *= 1.12;
  }

  // In-memory columnar cache for the re-scanned portion.
  double rescan_cost = 0.0;
  if (query.rescan_frac > 0.0) {
    double rescan_gb = scanned_gb * query.rescan_frac;
    if (conf.GetBool(kSqlInMemoryColumnarPruning)) rescan_gb *= 0.7;
    double cache_cpu = 2.0;  // core-s/GB reading cached columnar batches
    if (!conf.GetBool(kSqlInMemoryColumnarCompressed)) cache_cpu *= 0.9;
    const double batch = conf.Get(kSqlInMemoryColumnarBatchSize);
    cache_cpu *= 1.0 + 0.05 * (10000.0 / std::max(2500.0, batch) - 1.0);
    rescan_cost = rescan_gb * cache_cpu;
  }

  double scan_core_seconds = scanned_gb * scan_cpu_per_gb + rescan_cost;
  // A slice of map-side work runs at RDD parallelism
  // (spark.default.parallelism) rather than at split granularity.
  const double rdd_tasks = std::max(8.0, conf.Get(kDefaultParallelism));
  const double rdd_share = 0.2;
  const double scan_cpu_time =
      WaveTime(scan_core_seconds * (1.0 - rdd_share), scan_tasks, slots, speed,
               1.1) +
      WaveTime(scan_core_seconds * rdd_share, rdd_tasks, slots, speed, 1.1);
  const double io_floor = scanned_gb / disk_bw;
  m.scan_seconds = std::max(scan_cpu_time, io_floor) +
                   scan_tasks * params_.task_overhead_s;

  // ------------------------------------------------------------- shuffle
  double shuffle_time = 0.0;
  double spill_gb = 0.0;
  double oom_multiplier = 1.0;
  double shuffle_gb = 0.0;
  if (query.num_shuffle_stages > 0 && query.shuffle_ratio > 0.0) {
    shuffle_gb = scanned_gb * query.shuffle_ratio *
                 std::pow(datasize_gb / 100.0, query.ds_exponent);

    // Broadcast join: a small enough dimension table removes part of the
    // shuffle entirely.
    double broadcast_time = 0.0;
    if (query.broadcastable_mb > 0.0) {
      const double bcast_mb =
          query.broadcastable_mb * std::sqrt(datasize_gb / 100.0);
      if (bcast_mb * 1024.0 <= conf.Get(kSqlAutoBroadcastJoinThreshold)) {
        shuffle_gb *= 1.0 - query.broadcast_avoid_frac;
        double bcast_gb = bcast_mb / 1024.0;
        double bcast_cpu = 0.0;
        if (conf.GetBool(kBroadcastCompress)) {
          bcast_cpu = bcast_gb * params_.compression_cpu_l1;
          bcast_gb *= params_.compression_ratio_l1;
        }
        const double block_mb = std::max(1.0, conf.Get(kBroadcastBlockSize));
        const double piece_overhead =
            (bcast_mb / block_mb) * 0.002;  // torrent piece bookkeeping
        broadcast_time = bcast_gb * res.executors / cluster_.network_gbps /
                             cluster_.worker_nodes +
                         bcast_cpu / speed + piece_overhead;
      }
    }

    const double partitions =
        std::max(8.0, conf.Get(kSqlShufflePartitions));
    const double stages = std::max(1, query.num_shuffle_stages);

    // ---- map side: serialize (+sort) (+compress) and write.
    double map_cpu = shuffle_gb * 1.2;  // serialization baseline
    const double kryo_max = std::max(16.0, conf.Get(kKryoBufferMax));
    const double kryo_buf = std::max(16.0, conf.Get(kKryoBuffer));
    map_cpu *= 1.0 + 0.08 * std::max(0.0, 64.0 / kryo_max - 0.5) +
               0.04 * std::max(0.0, 64.0 / kryo_buf - 0.5);

    const bool prefer_smj = conf.GetBool(kSqlPreferSortMergeJoin);
    const bool bypass_sort =
        partitions <= conf.Get(kShuffleSortBypassMergeThreshold);
    double mem_demand_factor = query.mem_per_task_factor;
    if (query.category == QueryCategory::kJoin && !prefer_smj) {
      // Shuffled hash join: no sort, but the hash table lives in memory.
      mem_demand_factor *= 1.6;
    } else if (!bypass_sort) {
      double sort_cpu = params_.map_sort_cpu;
      if (query.category == QueryCategory::kAggregation &&
          conf.GetBool(kSqlSortEnableRadixSort)) {
        sort_cpu *= 0.8;
      }
      map_cpu += shuffle_gb * sort_cpu;
    }
    if (query.category == QueryCategory::kAggregation) {
      if (conf.GetBool(kSqlCodegenAggTwoLevel)) map_cpu *= 0.88;
      if (conf.GetBool(kSqlRetainGroupColumns)) map_cpu *= 1.02;
    }
    if (query.has_cartesian) {
      // Larger in-memory cartesian buffers avoid re-computation.
      map_cpu *= 1.0 + 0.3 * (4096.0 /
                              std::max(512.0,
                                       conf.Get(kSqlCartesianProductThreshold)) -
                              0.5);
    }

    // Compression of map output.
    const int zlevel = std::clamp(conf.GetInt(kZstdLevel), 1, 5);
    const double comp_ratio =
        params_.compression_ratio_l1 *
        std::pow(params_.compression_level_gain, zlevel - 1);
    const double comp_cpu =
        params_.compression_cpu_l1 *
        std::pow(params_.compression_level_cpu, zlevel - 1);
    double wire_gb = shuffle_gb;
    if (conf.GetBool(kShuffleCompress)) {
      const double zbuf = std::max(8.0, conf.Get(kZstdBufferSize));
      map_cpu += shuffle_gb * comp_cpu * (1.0 + 0.05 * (32.0 / zbuf - 0.33));
      wire_gb = shuffle_gb * comp_ratio;
    }
    // Small shuffle-file write buffers force extra flushes.
    const double file_buffer = std::max(8.0, conf.Get(kShuffleFileBuffer));
    map_cpu += shuffle_gb * 0.35 * (32.0 / file_buffer);

    const double map_time =
        WaveTime(map_cpu, scan_tasks, slots, speed, 1.15) + wire_gb / disk_bw;

    // ---- network fetch.
    const double conn_factor =
        std::min(1.0, 0.7 + 0.06 * conf.Get(kShuffleIoNumConnections));
    const double inflight_factor =
        0.9 + 0.1 * (48.0 / std::max(12.0, conf.Get(kReducerMaxSizeInFlight)));
    const double net_time =
        wire_gb / (cluster_.network_gbps * conn_factor) * inflight_factor;

    // ---- reduce side: decompress, (spill), aggregate/join.
    const double partition_gb = shuffle_gb / partitions;
    const double demand_gb = partition_gb * mem_demand_factor;
    const double avail_gb =
        res.exec_mem_per_task_gb + res.offheap_per_task_gb;

    double reduce_cpu = shuffle_gb * query.shuffle_cpu_per_gb;
    if (conf.GetBool(kShuffleCompress)) {
      reduce_cpu += shuffle_gb * params_.decompression_cpu;
    }

    double spill_time = 0.0;
    if (demand_gb > avail_gb) {
      const double spill_ratio = 1.0 - avail_gb / demand_gb;
      // External sort/aggregation merges spilled runs in multiple passes
      // when memory is scarce; each pass re-reads the spilled bytes.
      const double merge_passes =
          1.0 + std::log2(std::max(1.0, demand_gb / avail_gb));
      spill_gb = shuffle_gb * spill_ratio * (1.0 + merge_passes);
      double spill_disk_gb = spill_gb;
      if (conf.GetBool(kShuffleSpillCompress)) {
        reduce_cpu += spill_gb * comp_cpu * 0.8;
        spill_disk_gb *= comp_ratio;
      }
      reduce_cpu += spill_gb * params_.spill_cpu_per_gb;
      spill_time = spill_disk_gb / disk_bw;
    }

    // OOM cliff: when per-task demand far exceeds what the executor can
    // give, tasks die, stages retry, Yarn may kill containers
    // (aggravated by a skimpy memoryOverhead).
    // Network buffers and JVM internals live in the overhead allocation;
    // it must scale with the heap and the fetch concurrency or Yarn kills
    // the container mid-stage.
    const double overhead_need =
        0.07 * res.heap_gb + 0.3 +
        0.004 * conf.Get(kReducerMaxSizeInFlight) * res.cores_per_executor;
    const double overhead_adequacy =
        std::min(1.0, res.overhead_gb / overhead_need);
    const double eff_threshold =
        params_.oom_threshold * (0.45 + 0.55 * overhead_adequacy);
    // Containers with skimpy overhead get killed by Yarn under shuffle
    // load even when heap execution memory is plentiful (netty buffers
    // live in the overhead region): stages retry.
    const double kill_risk = std::max(0.0, 1.0 - overhead_adequacy);
    oom_multiplier = 1.0 + 1.2 * kill_risk * kill_risk;
    if (kill_risk > 0.5) m.oom = true;
    const double pressure_ratio = demand_gb / std::max(1e-3, avail_gb);
    m.oom_severity = pressure_ratio / eff_threshold;
    if (pressure_ratio > eff_threshold) {
      // Continuous ramp: 1x exactly at the threshold, then task retries
      // multiply the stage cost with the log of the overshoot.
      oom_multiplier = std::min(
          params_.oom_penalty_cap,
          oom_multiplier + params_.oom_penalty *
                               std::log2(pressure_ratio / eff_threshold));
      m.oom = true;
    }

    const double reduce_time =
        WaveTime(reduce_cpu, partitions, slots, speed, query.skew) +
        net_time + spill_time +
        partitions * stages * params_.task_overhead_s +
        // Every reducer fetches from every mapper: up to P x M
        // shuffle-service requests — the real cost of over-partitioning
        // *large* shuffles. Small shuffles leave most (mapper, reducer)
        // blocks empty, and empty blocks are skipped via the shuffle
        // index, so the request count is also bounded by bytes / minimum
        // block size. This keeps configuration-insensitive queries
        // insensitive to sql.shuffle.partitions.
        std::min(partitions * scan_tasks, shuffle_gb / 6.4e-5) * stages *
            1.0e-5;

    shuffle_time =
        (map_time + reduce_time) * oom_multiplier + broadcast_time +
        stages * 0.15;
  }
  m.shuffle_gb = shuffle_gb;
  m.spill_gb = spill_gb;
  m.shuffle_seconds = shuffle_time;

  // ------------------------------------------------------------------ GC
  double alloc_gb = scanned_gb * 0.35 + shuffle_gb * 1.2 + spill_gb * 0.5;
  if (conf.GetBool(kRddCompress)) alloc_gb *= 0.92;
  const double pool =
      std::max(0.1, (res.heap_gb - 0.3) * conf.Get(kMemoryFraction));
  // Off-heap allocations bypass the garbage collector entirely.
  if (res.offheap_per_task_gb > 0.0) {
    const double offheap_total =
        res.offheap_per_task_gb * res.cores_per_executor;
    alloc_gb *= 1.0 - 0.5 * offheap_total / (offheap_total + pool);
  }
  const double alloc_per_exec = alloc_gb / std::max(1, res.executors);
  const double concurrent_demand =
      res.cores_per_executor *
      std::min(query.mem_per_task_factor * shuffle_gb /
                   std::max(8.0, conf.Get(kSqlShufflePartitions)),
               res.exec_mem_per_task_gb * 1.5);
  const double occupancy = std::min(1.5, concurrent_demand / pool +
                                             query.rescan_frac * 0.3 + 0.15);
  const double thrash =
      1.0 + params_.gc_pressure_coeff *
                std::pow(std::max(0.0, occupancy - 0.6), 2.0);
  // User-memory shortage: code objects live outside the unified pool, so
  // memory.fraction ~0.9 starves them and the collector runs hot.
  const double user_mem =
      std::max(0.02, (res.heap_gb - 0.3) * (1.0 - conf.Get(kMemoryFraction)));
  const double user_need =
      params_.user_mem_base_gb +
      params_.user_mem_per_core_gb * res.cores_per_executor;
  const double user_pressure = std::max(0.0, user_need / user_mem - 1.0);
  const double user_thrash = 1.0 + 3.0 * user_pressure;
  const double full_gc_count =
      std::ceil(alloc_per_exec / std::max(0.4, pool * 0.8)) +
      user_pressure * 6.0 * alloc_per_exec / std::max(0.5, res.heap_gb);
  const double pause =
      params_.gc_pause_s_per_gb * std::pow(res.heap_gb, 1.1);
  m.gc_seconds =
      alloc_per_exec * params_.gc_base_s_per_gb * thrash * user_thrash +
      full_gc_count * pause * std::min(1.0, alloc_per_exec / pool);

  // -------------------------------------------------------------- totals
  const double total_waves =
      std::ceil(scan_tasks / slots) +
      (query.num_shuffle_stages > 0
           ? std::ceil(conf.Get(kSqlShufflePartitions) / slots)
           : 0.0);
  double latency = params_.query_latency_s;
  latency += 0.03 * (conf.Get(kSchedulerReviveInterval) - 1.0) * total_waves;
  latency += 0.12 * conf.Get(kLocalityWait) *
             (1.0 + query.num_shuffle_stages) * 0.3;
  // Tiny effect: memory-mapping threshold for local block reads.
  latency += 0.02 * (10.0 - conf.Get(kStorageMemoryMapThreshold)) / 10.0;

  m.exec_seconds =
      m.scan_seconds + m.shuffle_seconds + m.gc_seconds + latency;
  m.scan_tasks = scan_tasks;
  m.task_waves = total_waves;
  return m;
}

void ClusterSimulator::ApplyNoise(QueryMetrics* m, double noise) {
  // The total scales as one product of the component sum (exactly the
  // expression the noise-inline model computed), then each component is
  // scaled to stay consistent with the noisy total.
  m->exec_seconds *= noise;
  m->scan_seconds *= noise;
  m->shuffle_seconds *= noise;
  m->gc_seconds *= noise;
}

QueryMetrics ClusterSimulator::EvaluateQuery(const QueryProfile& query,
                                             const SparkConf& conf,
                                             double datasize_gb,
                                             uint64_t conf_fp) const {
  if (eval_cache_ == nullptr) {
    return SimulateQuery(query, conf, datasize_gb);
  }
  const uint64_t query_fp = FingerprintQuery(query);
  const uint64_t fp =
      CombineEvalFingerprint(conf_fp, eval_env_fp_, query_fp, datasize_gb);
  QueryMetrics m;
  if (eval_cache_->Lookup(fp, conf, datasize_gb, query_fp, eval_env_fp_, &m)) {
    return m;
  }
  m = SimulateQuery(query, conf, datasize_gb);
  eval_cache_->Insert(fp, conf, datasize_gb, query_fp, eval_env_fp_, m);
  return m;
}

uint64_t ClusterSimulator::AppFingerprint(const SparkSqlApp& app) {
  const void* data = static_cast<const void*>(app.queries.data());
  const size_t size = app.queries.size();
  uint64_t guard = 0;
  if (size > 0) {
    guard = FingerprintQuery(app.queries.front()) * 31 +
            FingerprintQuery(app.queries.back());
  }
  if (data == app_fp_queries_data_ && size == app_fp_queries_size_ &&
      guard == app_fp_guard_) {
    return app_fp_;
  }
  app_fp_ = FingerprintApp(app);
  app_fp_queries_data_ = data;
  app_fp_queries_size_ = size;
  app_fp_guard_ = guard;
  return app_fp_;
}

QueryMetrics ClusterSimulator::RunQuery(const QueryProfile& query,
                                        const SparkConf& conf,
                                        double datasize_gb) {
  ++runs_performed_;
  const double noise = params_.noise_sigma > 0.0
                           ? noise_rng_.LognormalNoise(params_.noise_sigma)
                           : 1.0;
  const uint64_t conf_fp =
      eval_cache_ != nullptr ? FingerprintConf(conf) : 0;
  QueryMetrics m = EvaluateQuery(query, conf, datasize_gb, conf_fp);
  ApplyNoise(&m, noise);
  return m;
}

AppRunResult ClusterSimulator::RunApp(const SparkSqlApp& app,
                                      const SparkConf& conf,
                                      double datasize_gb) {
  scratch_all_.resize(app.queries.size());
  for (size_t i = 0; i < scratch_all_.size(); ++i) {
    scratch_all_[i] = static_cast<int>(i);
  }
  StatusOr<AppRunResult> result =
      RunAppSubset(app, scratch_all_, conf, datasize_gb);
  if (!result.ok()) {
    AppRunResult bad;
    bad.failed = true;
    bad.fail_reason = result.status().ToString();
    return bad;
  }
  return std::move(*result);
}

StatusOr<AppRunResult> ClusterSimulator::RunAppSubset(
    const SparkSqlApp& app, const std::vector<int>& query_indices,
    const SparkConf& conf, double datasize_gb) {
  if (!std::isfinite(datasize_gb) || datasize_gb <= 0.0) {
    return Status::InvalidArgument("datasize_gb must be finite and > 0");
  }
  for (int idx : query_indices) {
    if (idx < 0 || idx >= app.num_queries()) {
      return Status::OutOfRange("query index " + std::to_string(idx) +
                                " outside app of " +
                                std::to_string(app.num_queries()) + " queries");
    }
  }
  obs::ScopedSpan app_span(tracer_, "sim/app", "sim");

  scratch_valid_.assign(query_indices.begin(), query_indices.end());
  const size_t n = scratch_valid_.size();

  // Draw every noise factor up front, in exactly the order the sequential
  // per-query loop drew them: the RNG stream (and runs_performed_) must
  // not depend on how the evaluations below are scheduled.
  scratch_noises_.assign(n, 1.0);
  for (size_t i = 0; i < n; ++i) {
    ++runs_performed_;
    if (params_.noise_sigma > 0.0) {
      scratch_noises_[i] = noise_rng_.LognormalNoise(params_.noise_sigma);
    }
  }
  // Fault draws come from their own stream, with a fixed count per run
  // (independent of outcomes), so the schedule is identical across cache
  // hits, thread counts and batch shapes.
  const bool faults_on = faults_.enabled();
  if (faults_on) {
    scratch_fault_draws_.resize(FaultDrawCount(n));
    DrawRunFaults(&fault_rng_, n, scratch_fault_draws_.data());
  }

  // Evaluate the noise-free cost model for all queries — ideally from one
  // app-level cache entry (one lock + one bulk copy for the whole run),
  // otherwise concurrently through the per-query level. EvaluateQuery is
  // deterministic per key and each slot is written by exactly one index,
  // so the result is bit-identical for any thread count; noise is applied
  // afterwards from the pre-drawn factors either way.
  const uint64_t conf_fp =
      eval_cache_ != nullptr ? FingerprintConf(conf) : 0;
  scratch_metrics_.resize(n);
  uint64_t subset_fp = 0;
  uint64_t app_key = 0;
  bool served = false;
  if (eval_cache_ != nullptr && n > 0) {
    subset_fp =
        CombineSubsetFingerprint(AppFingerprint(app), scratch_valid_.data(), n);
    app_key =
        CombineEvalFingerprint(conf_fp, eval_env_fp_, subset_fp, datasize_gb);
    served = eval_cache_->LookupApp(app_key, conf, datasize_gb, subset_fp,
                                    eval_env_fp_, n, scratch_metrics_.data());
  }
  if (!served) {
    if (faults_on && eval_cache_ != nullptr) {
      // Deferred-insert path: a run this fault schedule kills must not
      // populate the noise-free cache at either level. Look up per-query
      // entries without inserting, decide the kill on the noise-free
      // severities (noise never changes oom_severity, so the decision
      // matches ApplyRunFaults below), and only insert when the run
      // survives.
      scratch_missed_.assign(n, 0);
      common::ThreadPool::Global()->ParallelForEach(n, [&](size_t i) {
        const QueryProfile& q =
            app.queries[static_cast<size_t>(scratch_valid_[i])];
        const uint64_t qfp = FingerprintQuery(q);
        const uint64_t fp =
            CombineEvalFingerprint(conf_fp, eval_env_fp_, qfp, datasize_gb);
        if (!eval_cache_->Lookup(fp, conf, datasize_gb, qfp, eval_env_fp_,
                                 &scratch_metrics_[i])) {
          scratch_metrics_[i] = SimulateQuery(q, conf, datasize_gb);
          scratch_missed_[i] = 1;
        }
      });
      const int kill_at = FaultKillIndex(faults_, scratch_fault_draws_.data(),
                                         scratch_metrics_.data(), n);
      if (kill_at < 0) {
        for (size_t i = 0; i < n; ++i) {
          if (scratch_missed_[i] == 0) continue;
          const QueryProfile& q =
              app.queries[static_cast<size_t>(scratch_valid_[i])];
          const uint64_t qfp = FingerprintQuery(q);
          const uint64_t fp =
              CombineEvalFingerprint(conf_fp, eval_env_fp_, qfp, datasize_gb);
          eval_cache_->Insert(fp, conf, datasize_gb, qfp, eval_env_fp_,
                              scratch_metrics_[i]);
        }
        if (n > 0) {
          eval_cache_->InsertApp(app_key, conf, datasize_gb, subset_fp,
                                 eval_env_fp_, scratch_metrics_.data(), n);
        }
      }
    } else {
      common::ThreadPool::Global()->ParallelForEach(n, [&](size_t i) {
        scratch_metrics_[i] =
            EvaluateQuery(app.queries[static_cast<size_t>(scratch_valid_[i])],
                          conf, datasize_gb, conf_fp);
      });
      if (eval_cache_ != nullptr && n > 0) {
        eval_cache_->InsertApp(app_key, conf, datasize_gb, subset_fp,
                               eval_env_fp_, scratch_metrics_.data(), n);
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    ApplyNoise(&scratch_metrics_[i], scratch_noises_[i]);
  }

  FaultOutcome outcome;
  size_t run_count = n;
  if (faults_on) {
    outcome = ApplyRunFaults(faults_, scratch_fault_draws_.data(),
                             std::max(1, conf.GetInt(kExecutorInstances)),
                             scratch_metrics_.data(), n);
    run_count = outcome.queries_run;
    fault_stats_.executor_losses += outcome.executor_losses;
    fault_stats_.stragglers += outcome.stragglers;
    fault_stats_.fetch_failures += outcome.fetch_failures;
    if (outcome.killed) {
      fault_stats_.app_kills += 1;
      fault_stats_.failed_runs += 1;
      if (flight_ != nullptr) {
        char msg[96];
        std::snprintf(msg, sizeof(msg), "oom_kill app=%s ds=%g at_query=%d",
                      app.name.c_str(), datasize_gb, outcome.killed_at);
        // A "fault" event also triggers the recorder's dump-on-fault
        // snapshot when one is configured.
        flight_->Record("fault", "warn", "sparksim", msg,
                        static_cast<double>(outcome.killed_at));
      }
    }
  }

  AppRunResult result = FinishAppRun(app, conf, datasize_gb,
                                     scratch_metrics_.data(), run_count,
                                     &app_span);
  if (faults_on) {
    result.failed = outcome.killed;
    result.failed_at_query = outcome.killed_at;
    result.retries = outcome.retries;
    result.lost_executors = outcome.lost_executors;
    if (outcome.killed) result.fail_reason = "oom_kill";
  }
  return result;
}

StatusOr<std::vector<AppRunResult>> ClusterSimulator::RunAppBatch(
    const SparkSqlApp& app, const std::vector<int>& query_indices,
    const std::vector<SparkConf>& confs, double datasize_gb) {
  if (!std::isfinite(datasize_gb) || datasize_gb <= 0.0) {
    return Status::InvalidArgument("datasize_gb must be finite and > 0");
  }
  for (int idx : query_indices) {
    if (idx < 0 || idx >= app.num_queries()) {
      return Status::OutOfRange("query index " + std::to_string(idx) +
                                " outside app of " +
                                std::to_string(app.num_queries()) + " queries");
    }
  }
  std::vector<AppRunResult> results;
  results.reserve(confs.size());
  if (confs.empty()) return results;

  // Engine dispatch: the SoA batch engine computes bit-identical results
  // (see batch_engine.h for the contract); `auto` keeps single-conf
  // batches on the sequential engine, where lowering has nothing to
  // amortize over.
  const SimEngine engine = ActiveSimEngine();
  if (engine == SimEngine::kBatch ||
      (engine == SimEngine::kAuto && confs.size() >= kBatchEngineMinConfs)) {
    const auto start = std::chrono::steady_clock::now();
    BatchEngine batch_engine(this);
    StatusOr<std::vector<AppRunResult>> out =
        batch_engine.Run(app, query_indices, confs, datasize_gb);
    engine_stats_.batch_batches += 1;
    engine_stats_.batch_lanes += confs.size();
    engine_stats_.batch_cells += confs.size() * query_indices.size();
    engine_stats_.batch_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    return out;
  }
  engine_stats_.seq_batches += 1;
  engine_stats_.seq_lanes += confs.size();

  if (faults_.enabled()) {
    // Sequential per-conf path: the fault stream is consumed run by run
    // and kills bypass cache insertion, so the batch must replay exactly
    // what the equivalent RunAppSubset sequence would do. Noise draws are
    // conf-major in both shapes, so the results stay bit-identical.
    for (const SparkConf& conf : confs) {
      StatusOr<AppRunResult> one =
          RunAppSubset(app, query_indices, conf, datasize_gb);
      if (!one.ok()) return one.status();
      results.push_back(std::move(*one));
    }
    return results;
  }

  obs::ScopedSpan batch_span(tracer_, "sim/app_batch", "sim");

  const std::vector<int>& valid = query_indices;
  const size_t nq = valid.size();
  const size_t nruns = confs.size();

  // Noise factors for the whole grid, conf-major — the exact order the
  // equivalent sequence of RunAppSubset calls would consume the RNG.
  std::vector<double> noises(nruns * nq, 1.0);
  for (size_t k = 0; k < nruns; ++k) {
    for (size_t i = 0; i < nq; ++i) {
      ++runs_performed_;
      if (params_.noise_sigma > 0.0) {
        noises[k * nq + i] = noise_rng_.LognormalNoise(params_.noise_sigma);
      }
    }
  }

  std::vector<uint64_t> conf_fps(nruns, 0);
  if (eval_cache_ != nullptr) {
    for (size_t k = 0; k < nruns; ++k) conf_fps[k] = FingerprintConf(confs[k]);
  }

  // Whole runs served by the app-level cache skip the fan-out entirely;
  // the subset fingerprint is computed once for the whole grid.
  std::vector<QueryMetrics> metrics(nruns * nq);
  std::vector<char> served(nruns, 0);
  std::vector<uint64_t> app_keys(nruns, 0);
  if (eval_cache_ != nullptr && nq > 0) {
    const uint64_t subset_fp =
        CombineSubsetFingerprint(AppFingerprint(app), valid.data(), nq);
    for (size_t k = 0; k < nruns; ++k) {
      app_keys[k] = CombineEvalFingerprint(conf_fps[k], eval_env_fp_,
                                           subset_fp, datasize_gb);
      served[k] = eval_cache_->LookupApp(app_keys[k], confs[k], datasize_gb,
                                         subset_fp, eval_env_fp_, nq,
                                         metrics.data() + k * nq)
                      ? 1
                      : 0;
    }
    // One flat fan-out over the remaining (conf, query) grid: wider than
    // the per-run ParallelForEach when confs outnumber pool threads, and
    // each slot is written by exactly one index.
    common::ThreadPool::Global()->ParallelForEach(nruns * nq, [&](size_t j) {
      const size_t k = j / nq;
      if (served[k]) return;
      const size_t i = j % nq;
      metrics[j] =
          EvaluateQuery(app.queries[static_cast<size_t>(valid[i])], confs[k],
                        datasize_gb, conf_fps[k]);
    });
    for (size_t k = 0; k < nruns; ++k) {
      if (served[k]) continue;
      eval_cache_->InsertApp(app_keys[k], confs[k], datasize_gb, subset_fp,
                             eval_env_fp_, metrics.data() + k * nq, nq);
    }
  } else {
    common::ThreadPool::Global()->ParallelForEach(nruns * nq, [&](size_t j) {
      const size_t k = j / nq;
      const size_t i = j % nq;
      metrics[j] =
          EvaluateQuery(app.queries[static_cast<size_t>(valid[i])], confs[k],
                        datasize_gb, conf_fps[k]);
    });
  }
  for (size_t j = 0; j < nruns * nq; ++j) ApplyNoise(&metrics[j], noises[j]);

  for (size_t k = 0; k < nruns; ++k) {
    results.push_back(FinishAppRun(app, confs[k], datasize_gb,
                                   metrics.data() + k * nq, nq, nullptr));
  }
  batch_span.Arg("runs", static_cast<double>(nruns));
  batch_span.Arg("queries", static_cast<double>(nq));
  return results;
}

AppRunResult ClusterSimulator::FinishAppRun(const SparkSqlApp& app,
                                            const SparkConf& conf,
                                            double datasize_gb,
                                            QueryMetrics* metrics,
                                            size_t count,
                                            obs::ScopedSpan* app_span) {
  AppRunResult result;
  result.per_query.reserve(count);

  // Driver pressure: many tasks + a small driver heap slow down
  // scheduling for the whole application.
  const double driver_relief =
      std::min(1.0, conf.Get(kDriverMemory) / 16.0) *
      std::min(1.0, conf.Get(kDriverCores) / 4.0);
  double submit = params_.app_submit_overhead_s * (1.2 - 0.2 * driver_relief);

  const uint64_t lane_start = sim_lane_cursor_ns_;
  uint64_t cursor = lane_start;
  if (tracer_ != nullptr) {
    tracer_->RecordComplete("submit", "sim", cursor, SimLaneNs(submit),
                            obs::kSimulatedPid, 0);
  }
  cursor += SimLaneNs(submit);

  result.total_seconds = submit;
  for (size_t i = 0; i < count; ++i) {
    QueryMetrics qm = std::move(metrics[i]);
    result.total_seconds += qm.exec_seconds;
    result.gc_seconds += qm.gc_seconds;
    result.shuffle_gb += qm.shuffle_gb;
    result.any_oom = result.any_oom || qm.oom;
    if (tracer_ != nullptr) {
      // Query span with stage children laid out back-to-back inside it;
      // containment gives Perfetto the nesting.
      std::string args = NumArg("scan_tasks", qm.scan_tasks);
      args += ',';
      args += NumArg("task_waves", qm.task_waves);
      args += ',';
      args += NumArg("shuffle_gb", qm.shuffle_gb);
      args += ',';
      args += NumArg("spill_gb", qm.spill_gb);
      args += ',';
      args += NumArg("oom", qm.oom ? 1.0 : 0.0);
      tracer_->RecordComplete(qm.name, "sim", cursor,
                              SimLaneNs(qm.exec_seconds), obs::kSimulatedPid, 0,
                              std::move(args));
      uint64_t stage_cursor = cursor;
      tracer_->RecordComplete("scan", "sim", stage_cursor,
                              SimLaneNs(qm.scan_seconds), obs::kSimulatedPid, 0,
                              NumArg("waves", qm.task_waves));
      stage_cursor += SimLaneNs(qm.scan_seconds);
      if (qm.shuffle_seconds > 0.0) {
        tracer_->RecordComplete("shuffle", "sim", stage_cursor,
                                SimLaneNs(qm.shuffle_seconds), obs::kSimulatedPid,
                                0, NumArg("shuffle_gb", qm.shuffle_gb));
        stage_cursor += SimLaneNs(qm.shuffle_seconds);
      }
      if (qm.gc_seconds > 0.0) {
        tracer_->RecordComplete("gc", "sim", stage_cursor,
                                SimLaneNs(qm.gc_seconds), obs::kSimulatedPid, 0);
      }
    }
    cursor += SimLaneNs(qm.exec_seconds);
    result.per_query.push_back(std::move(qm));
  }

  if (tracer_ != nullptr) {
    std::string args = NumArg("queries", static_cast<double>(
                                             result.per_query.size()));
    args += ',';
    args += NumArg("datasize_gb", datasize_gb);
    args += ',';
    args += NumArg("simulated_seconds", result.total_seconds);
    tracer_->RecordComplete(app.name.empty() ? "app" : app.name, "sim",
                            lane_start, cursor - lane_start, obs::kSimulatedPid, 0,
                            std::move(args));
    if (app_span != nullptr) {
      app_span->Arg("queries", static_cast<double>(result.per_query.size()));
      app_span->Arg("simulated_seconds", result.total_seconds);
    }
  }
  sim_lane_cursor_ns_ = cursor;
  return result;
}

}  // namespace locat::sparksim
