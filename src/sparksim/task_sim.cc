#include "sparksim/task_sim.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace locat::sparksim {

TaskLevelSimulator::TaskLevelSimulator(int slots, double speed)
    : slots_(std::max(1, slots)), speed_(std::max(0.05, speed)) {}

StatusOr<TaskLevelSimulator::Result> TaskLevelSimulator::Execute(
    const std::vector<StageSpec>& stages, Rng* rng) const {
  const int n = static_cast<int>(stages.size());
  for (int s = 0; s < n; ++s) {
    if (stages[static_cast<size_t>(s)].num_tasks <= 0) {
      return Status::InvalidArgument("stage with non-positive task count");
    }
    for (int d : stages[static_cast<size_t>(s)].deps) {
      if (d < 0 || d >= n) {
        return Status::InvalidArgument("dependency index out of range");
      }
    }
  }

  // Kahn's topological order over the stage DAG.
  std::vector<int> indegree(static_cast<size_t>(n), 0);
  std::vector<std::vector<int>> dependents(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    for (int d : stages[static_cast<size_t>(s)].deps) {
      ++indegree[static_cast<size_t>(s)];
      dependents[static_cast<size_t>(d)].push_back(s);
    }
  }
  std::vector<int> order;
  std::queue<int> ready;
  for (int s = 0; s < n; ++s) {
    if (indegree[static_cast<size_t>(s)] == 0) ready.push(s);
  }
  while (!ready.empty()) {
    const int s = ready.front();
    ready.pop();
    order.push_back(s);
    for (int t : dependents[static_cast<size_t>(s)]) {
      if (--indegree[static_cast<size_t>(t)] == 0) ready.push(t);
    }
  }
  if (static_cast<int>(order.size()) != n) {
    return Status::FailedPrecondition("stage dependency cycle");
  }

  Result result;
  result.stage_end_s.assign(static_cast<size_t>(n), 0.0);

  // Event-driven slot pool: free time per slot.
  std::vector<double> slot_free(static_cast<size_t>(slots_), 0.0);

  // Scratch reused across stages (this is the innermost simulator loop;
  // per-stage allocation dominated the profile): task durations and the
  // slot min-heap, maintained with make/push/pop_heap. The heap always
  // pops the unique minimum — (time, slot) pairs are distinct — so the
  // schedule matches the former per-stage priority_queue exactly.
  std::vector<double> durations;
  std::vector<std::pair<double, int>> pool;
  pool.reserve(static_cast<size_t>(slots_) + 1);
  size_t total_tasks = 0;
  for (const StageSpec& stage : stages) {
    total_tasks += static_cast<size_t>(stage.num_tasks);
  }
  result.tasks.reserve(total_tasks);

  for (int s : order) {
    const StageSpec& stage = stages[static_cast<size_t>(s)];
    double earliest = 0.0;
    for (int d : stage.deps) {
      earliest = std::max(earliest, result.stage_end_s[static_cast<size_t>(d)]);
    }

    // Per-task durations: linear spread from (2 - skew_norm) to skew x
    // mean so the total work is preserved; an optional rng shuffles the
    // assignment (which does not change the makespan distributionally but
    // exercises the scheduler).
    const int t_count = stage.num_tasks;
    const double mean_work =
        stage.core_seconds / static_cast<double>(t_count) / speed_;
    const double skew = std::max(1.0, stage.skew);
    durations.assign(static_cast<size_t>(t_count), 0.0);
    for (int t = 0; t < t_count; ++t) {
      const double u =
          t_count == 1 ? 1.0
                       : static_cast<double>(t) / (t_count - 1);  // 0..1
      // Spread between (2 - skew) and skew, mean 1.
      const double factor =
          std::max(0.05, (2.0 - skew) + u * 2.0 * (skew - 1.0));
      durations[static_cast<size_t>(t)] =
          mean_work * factor + stage.per_task_overhead_s;
    }
    if (rng != nullptr) rng->Shuffle(&durations);

    // Greedy longest-processing-time order reduces makespan variance and
    // matches Spark's behavior of launching available tasks immediately.
    std::sort(durations.rbegin(), durations.rend());

    // Min-heap over slot free times.
    pool.clear();
    for (int k = 0; k < slots_; ++k) {
      pool.push_back(
          {std::max(slot_free[static_cast<size_t>(k)], earliest), k});
    }
    std::make_heap(pool.begin(), pool.end(), std::greater<>{});
    double stage_end = earliest;
    for (int t = 0; t < t_count; ++t) {
      std::pop_heap(pool.begin(), pool.end(), std::greater<>{});
      const auto [free_at, slot] = pool.back();
      pool.pop_back();
      TaskTrace trace;
      trace.stage = s;
      trace.task = t;
      trace.slot = slot;
      trace.start_s = free_at;
      trace.end_s = free_at + durations[static_cast<size_t>(t)];
      stage_end = std::max(stage_end, trace.end_s);
      slot_free[static_cast<size_t>(slot)] = trace.end_s;
      pool.push_back({trace.end_s, slot});
      std::push_heap(pool.begin(), pool.end(), std::greater<>{});
      result.tasks.push_back(trace);
    }
    result.stage_end_s[static_cast<size_t>(s)] = stage_end;
    result.makespan_s = std::max(result.makespan_s, stage_end);
  }
  return result;
}

std::vector<StageSpec> BuildStageDag(const QueryProfile& query,
                                     const SparkConf& conf,
                                     const ClusterSpec& cluster,
                                     double datasize_gb) {
  std::vector<StageSpec> stages;
  const double scanned_gb = datasize_gb * query.input_frac;

  StageSpec scan;
  scan.num_tasks =
      std::max(1, static_cast<int>(std::ceil(scanned_gb / 0.128)));
  scan.core_seconds = scanned_gb * query.cpu_per_gb;
  scan.per_task_overhead_s = 0.0025;
  scan.skew = 1.1;
  stages.push_back(scan);

  if (query.num_shuffle_stages > 0 && query.shuffle_ratio > 0.0) {
    const double shuffle_gb = scanned_gb * query.shuffle_ratio *
                              std::pow(datasize_gb / 100.0, query.ds_exponent);
    const double per_stage_gb =
        shuffle_gb / std::max(1, query.num_shuffle_stages);
    const int partitions =
        std::max(8, conf.GetInt(kSqlShufflePartitions));
    for (int s = 0; s < query.num_shuffle_stages; ++s) {
      StageSpec reduce;
      reduce.num_tasks = partitions;
      reduce.core_seconds =
          per_stage_gb * (query.shuffle_cpu_per_gb + 1.2 /*serialization*/);
      reduce.per_task_overhead_s = 0.0025;
      reduce.skew = query.skew;
      reduce.deps = {static_cast<int>(stages.size()) - 1};
      stages.push_back(reduce);
    }
  }
  (void)cluster;
  return stages;
}

}  // namespace locat::sparksim
