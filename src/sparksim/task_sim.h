#ifndef LOCAT_SPARKSIM_TASK_SIM_H_
#define LOCAT_SPARKSIM_TASK_SIM_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "sparksim/cluster.h"
#include "sparksim/config.h"
#include "sparksim/query_profile.h"

namespace locat::sparksim {

/// One task's schedule in a discrete-event execution.
struct TaskTrace {
  int stage = 0;
  int task = 0;
  int slot = 0;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// A stage of parallel tasks with dependencies, as the DAG scheduler sees
/// it (Figure 1 of the paper: query -> DAG -> stages -> tasks).
struct StageSpec {
  int num_tasks = 1;
  /// Total work of the stage across all tasks, core-seconds.
  double core_seconds = 0.0;
  /// Fixed per-task cost (launch, fetch, commit), seconds.
  double per_task_overhead_s = 0.0;
  /// Straggler factor: the slowest task takes skew x the mean duration;
  /// per-task durations are spread deterministically between 1 and skew.
  double skew = 1.0;
  /// Indices of stages that must complete before this one starts.
  std::vector<int> deps;
};

/// Discrete-event, task-level executor model. The analytical
/// ClusterSimulator approximates stage time with the wave formula
/// `per_task * (waves - 1 + skew)`; this simulator actually places each
/// task on a slot with an event-driven scheduler and measures the
/// makespan. Tests and the wave-model ablation bench cross-validate the
/// two.
class TaskLevelSimulator {
 public:
  struct Result {
    double makespan_s = 0.0;
    std::vector<double> stage_end_s;  // completion time per stage
    std::vector<TaskTrace> tasks;
  };

  /// `slots`: parallel task slots (executors x cores); `speed`: relative
  /// per-core throughput.
  TaskLevelSimulator(int slots, double speed);

  /// Executes the stage DAG. Stages run as soon as their dependencies
  /// complete and free slots are available (greedy, locality-free
  /// scheduling). Task durations spread linearly from fastest to
  /// `skew x` mean; `rng` (optional) shuffles which task gets which
  /// duration. Returns InvalidArgument on malformed DAGs (bad deps,
  /// non-positive tasks) and FailedPrecondition on dependency cycles.
  StatusOr<Result> Execute(const std::vector<StageSpec>& stages,
                           Rng* rng = nullptr) const;

  int slots() const { return slots_; }

 private:
  int slots_;
  double speed_;
};

/// Expands one query into the stage DAG the analytical model implies
/// (scan stage followed by a chain of shuffle stages) so the two
/// simulators can be compared on identical work. The stage work terms
/// mirror ClusterSimulator's first-order costs (CPU, serialization,
/// compression, reduce work) without the memory/GC cliff terms, which are
/// not schedule-dependent.
std::vector<StageSpec> BuildStageDag(const QueryProfile& query,
                                     const SparkConf& conf,
                                     const ClusterSpec& cluster,
                                     double datasize_gb);

}  // namespace locat::sparksim

#endif  // LOCAT_SPARKSIM_TASK_SIM_H_
