#ifndef LOCAT_SPARKSIM_SIMULATOR_H_
#define LOCAT_SPARKSIM_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "sparksim/cluster.h"
#include "sparksim/config.h"
#include "sparksim/faults.h"
#include "sparksim/query_profile.h"

namespace locat::sparksim {

class EvalCache;

/// Tunable constants of the analytical cost model. Exposed so tests can
/// probe individual effects and ablation benches can switch them off.
struct SimParams {
  /// HDFS split size driving the scan task count, GB.
  double split_gb = 0.128;
  /// Driver-side dispatch overhead per task, seconds.
  double task_overhead_s = 0.0025;
  /// Extra per-reduce-task cost (shuffle index reads, connection setup,
  /// output commit), seconds. Makes very high partition counts pay, so
  /// the optimal sql.shuffle.partitions sits in the interior and moves
  /// with the data size.
  double reduce_task_overhead_s = 0.012;
  /// Per-core JVM throughput degradation beyond `contention_free_cores`
  /// cores per executor (allocation/lock contention in one heap).
  double core_contention = 0.06;
  int contention_free_cores = 6;
  /// User (non-unified) memory a task's code objects need, GB:
  /// user_mem_base + user_mem_per_core * cores. Starving it by pushing
  /// memory.fraction too high causes GC pressure — the reason Spark's
  /// default fraction is 0.6.
  double user_mem_base_gb = 0.4;
  double user_mem_per_core_gb = 0.05;
  /// Fixed per-query latency (planning, codegen, job submit), seconds.
  double query_latency_s = 0.8;
  /// Per-application submit overhead (context/executor startup), seconds.
  double app_submit_overhead_s = 25.0;
  /// Zstd compression ratio at level 1 (output bytes / input bytes);
  /// each additional level multiplies by compression_level_gain.
  double compression_ratio_l1 = 0.45;
  double compression_level_gain = 0.93;
  /// Compression CPU cost at level 1, core-seconds per (input) GB; each
  /// additional level multiplies by compression_level_cpu.
  double compression_cpu_l1 = 1.6;
  double compression_level_cpu = 1.35;
  /// Decompression CPU, core-seconds per GB.
  double decompression_cpu = 0.8;
  /// Map-side sort cost, core-seconds per shuffled GB (skipped when the
  /// bypass-merge threshold applies).
  double map_sort_cpu = 2.2;
  /// Disk write+read cost for spilled bytes, core-seconds per GB.
  double spill_cpu_per_gb = 18.0;
  /// Demand/available ratio beyond which tasks OOM and stages re-run.
  double oom_threshold = 2.0;
  /// Execution-time multiplier per unit of OOM severity.
  double oom_penalty = 5.0;
  /// Maximum total OOM multiplier (Yarn eventually kills the app; the
  /// paper treats those runs as extremely slow, not failed).
  double oom_penalty_cap = 10.0;
  /// GC base cost, seconds per GB allocated (young-gen churn).
  double gc_base_s_per_gb = 0.15;
  /// GC pressure penalty coefficient (thrashing when the working set
  /// approaches the usable heap).
  double gc_pressure_coeff = 10.0;
  /// Full-GC pause seconds per heap GB.
  double gc_pause_s_per_gb = 0.09;
  /// Run-to-run multiplicative noise (lognormal sigma). 0 disables noise.
  double noise_sigma = 0.06;

  SimParams() {}
};

/// Per-query outcome of one simulated run.
struct QueryMetrics {
  std::string name;
  double exec_seconds = 0.0;     // wall-clock, includes gc_seconds
  double gc_seconds = 0.0;       // JVM GC time attributed to this query
  double scan_seconds = 0.0;     // narrow-stage time
  double shuffle_seconds = 0.0;  // wide-stage time (network + reduce)
  double shuffle_gb = 0.0;       // bytes shuffled (uncompressed)
  double spill_gb = 0.0;         // bytes spilled to disk
  double scan_tasks = 0.0;       // map/scan tasks launched
  double task_waves = 0.0;       // scheduling waves across all stages
  bool oom = false;              // hit the OOM retry path
  /// Memory-pressure overshoot (pressure ratio / effective threshold);
  /// >= 1 means the OOM retry path fired. Part of the noise-free model
  /// output (cached), drives the fault layer's hard-kill decision.
  double oom_severity = 0.0;
  bool failed = false;           // query killed the app (fault injection)
  int retries = 0;               // fetch-failure stage retries
};

/// Aggregate outcome of one simulated application run.
struct AppRunResult {
  std::vector<QueryMetrics> per_query;
  double total_seconds = 0.0;  // sum of query times + submit overhead
  double gc_seconds = 0.0;
  double shuffle_gb = 0.0;
  bool any_oom = false;
  /// Fault-injection outcome. A failed run was killed mid-app:
  /// `per_query` holds only the queries that ran (the last one marked
  /// `failed`) and `total_seconds` is the partial time up to the kill.
  bool failed = false;
  int failed_at_query = -1;  // index into the run's query list
  int retries = 0;           // fetch-failure stage retries, whole run
  int lost_executors = 0;    // executors lost to the injected loss event
  std::string fail_reason;   // empty when !failed
};

/// Dispatch counters of the simulator's two evaluation engines (see
/// batch_engine.h). Purely observational; exposed so the CLI can print a
/// `sim_engine:` line and emit a telemetry phase event.
struct SimEngineStats {
  uint64_t batch_batches = 0;  // RunAppBatch calls served by the SoA engine
  uint64_t batch_lanes = 0;    // configurations across those calls
  uint64_t batch_cells = 0;    // (conf, query) cells across those calls
  uint64_t seq_batches = 0;    // RunAppBatch calls served sequentially
  uint64_t seq_lanes = 0;
  double batch_seconds = 0.0;  // wall time inside the SoA engine
};

/// Deterministic analytical simulator of a Spark SQL cluster. Replaces the
/// paper's physical ARM/x86 clusters (see DESIGN.md, Substitutions).
///
/// The model executes each query as a scan stage followed by
/// `num_shuffle_stages` wide stages, with first-order analytical effects
/// for: task-wave parallelism (executor.instances x executor.cores), I/O
/// floors, shuffle partitioning (sql.shuffle.partitions), unified-memory
/// spill and OOM cliffs (executor.memory / memory.fraction /
/// storageFraction / off-heap), shuffle & spill compression (zstd level),
/// broadcast-join elimination (autoBroadcastJoinThreshold), JVM GC
/// (allocation churn + heap-size pauses), and a tail of second-order
/// parameters (kryo buffers, locality wait, scheduler revive, codegen
/// fields, columnar cache, ...).
///
/// Same seed + same call sequence => identical results.
class ClusterSimulator {
 public:
  ClusterSimulator(const ClusterSpec& cluster, uint64_t seed,
                   SimParams params = SimParams());

  /// Runs one query and returns its metrics (no submit overhead).
  QueryMetrics RunQuery(const QueryProfile& query, const SparkConf& conf,
                        double datasize_gb);

  /// Runs a whole application (all queries, one submit overhead).
  /// Convenience wrapper over RunAppSubset: an injected app kill comes
  /// back as a result with `failed` set (partial metrics preserved)
  /// rather than a Status, so measurement-style callers keep working.
  AppRunResult RunApp(const SparkSqlApp& app, const SparkConf& conf,
                      double datasize_gb);

  /// Runs only the listed query indices (the RQA path of QCSA).
  /// Errors: InvalidArgument for a non-finite or non-positive datasize,
  /// OutOfRange for a query index outside the app. A fault-injected app
  /// kill is NOT an error — it returns ok() with result.failed set, so
  /// callers can bill the partial runtime and impute a censored cost.
  StatusOr<AppRunResult> RunAppSubset(const SparkSqlApp& app,
                                      const std::vector<int>& query_indices,
                                      const SparkConf& conf,
                                      double datasize_gb);

  /// Evaluates many configurations over the same query subset in one
  /// fan-out: the whole (conf x query) grid goes through the thread pool
  /// at query granularity, with every noise factor pre-drawn in exactly
  /// the order the equivalent sequential RunAppSubset calls would draw
  /// them. Results (and runs_performed_) are bit-identical to calling
  /// RunAppSubset once per configuration, in order, for any thread
  /// count. The wall-lane trace differs (one "sim/app_batch" span instead
  /// of per-run "sim/app" spans); the simulated-time lane is identical.
  /// Same error contract as RunAppSubset.
  ///
  /// Two engines implement this contract and compute bit-identical
  /// results: the sequential engine in this file (per-conf loop under
  /// faults, flat fan-out otherwise) and the structure-of-arrays
  /// BatchEngine (batch_engine.h), which lowers the whole conf batch into
  /// contiguous per-knob planes and advances it phase by phase. Selection
  /// comes from --sim-engine / LOCAT_SIM_ENGINE (default `auto`: batch
  /// for multi-conf batches, sequential otherwise).
  StatusOr<std::vector<AppRunResult>> RunAppBatch(
      const SparkSqlApp& app, const std::vector<int>& query_indices,
      const std::vector<SparkConf>& confs, double datasize_gb);

  /// Engine dispatch counters for this simulator (observational).
  const SimEngineStats& engine_stats() const { return engine_stats_; }

  const ClusterSpec& cluster() const { return cluster_; }
  const SimParams& params() const { return params_; }

  /// Total runs performed (used by tests to check accounting).
  int64_t runs_performed() const { return runs_performed_; }

  /// Wires a tracer (null disables, the default). App runs then emit a
  /// wall-lane "sim/app" span plus a *simulated-time* timeline in
  /// obs::kSimulatedPid: one span per app/query/stage whose duration is
  /// the simulated Spark seconds (encoded at 1 simulated second = 1 ms of
  /// trace time), laid out back-to-back across runs. Purely
  /// observational: results and the noise RNG stream are unaffected.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Wires a memoizing evaluation cache (null disables, the default).
  /// The cache stores *noise-free* cost-model outputs keyed by
  /// (conf, datasize, query, cluster+params) fingerprints; the per-run
  /// noise factor is drawn and applied regardless of hit or miss, so
  /// every result — and the RNG stream — is bit-identical with the cache
  /// on or off. The same cache may be shared by many simulators (even
  /// with different seeds or noise sigmas) and is safe under concurrent
  /// app runs.
  void set_eval_cache(EvalCache* cache) { eval_cache_ = cache; }
  EvalCache* eval_cache() const { return eval_cache_; }

  /// Installs a fault-injection plan. Resets the dedicated fault RNG to
  /// spec.seed and clears the fault counters, so the schedule is a pure
  /// function of (spec, run order) — independent of the noise stream,
  /// thread count and cache state. With faults enabled the cache key
  /// space shifts by the plan fingerprint (failed runs additionally
  /// bypass insertion), so entries never leak across plans.
  void set_faults(const FaultSpec& spec);
  const FaultSpec& faults() const { return faults_; }
  const FaultStats& fault_stats() const { return fault_stats_; }

  /// Wires a flight recorder (null disables, the default). Injected
  /// app-kill faults then record a "fault" event — which, when the
  /// recorder was configured with SetDumpOnFault, snapshots the window to
  /// disk at the moment of the kill. Purely observational.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    flight_ = recorder;
  }

 private:
  /// The SoA batch engine is a friend rather than a public seam: it is an
  /// alternative implementation of RunAppBatch over the same private
  /// state (noise/fault RNG streams, eval cache, scratch, lane cursor),
  /// not a new capability.
  friend class BatchEngine;

  /// Resource picture derived from a configuration.
  struct Resources {
    int executors = 1;        // actually launched (Yarn may grant fewer)
    int cores_per_executor = 1;
    int slots = 1;            // executors * cores
    double heap_gb = 1.0;
    double exec_mem_per_task_gb = 0.1;  // unified execution memory / core
    double offheap_per_task_gb = 0.0;
    double overhead_gb = 0.0;
    double storage_pool_gb = 0.0;
  };

  Resources DeriveResources(const SparkConf& conf,
                            const QueryProfile& query) const;

  /// Pure noise-free cost-model evaluation: const, draws no randomness,
  /// so app runs can evaluate queries concurrently and the output can be
  /// memoized across noise draws.
  QueryMetrics SimulateQuery(const QueryProfile& query, const SparkConf& conf,
                             double datasize_gb) const;

  /// Scales the noise-free metrics by one drawn lognormal factor,
  /// reproducing exactly the arithmetic the pre-memoization model applied
  /// inline (total scaled as a sum, then each component).
  static void ApplyNoise(QueryMetrics* m, double noise);

  /// SimulateQuery through the eval cache (straight call when no cache is
  /// wired). `conf_fp` is FingerprintConf(conf), hoisted by the caller so
  /// app runs hash the configuration once, not per query.
  QueryMetrics EvaluateQuery(const QueryProfile& query, const SparkConf& conf,
                             double datasize_gb, uint64_t conf_fp) const;

  /// FingerprintApp(app), memoized for the app this simulator last
  /// simulated. Folding every query profile costs ~30 ns per query, which
  /// would dominate the app-level warm path, so the full fold runs only
  /// when the memo misses. The memo is keyed by the queries buffer
  /// (pointer + size) and guarded by the content fingerprints of the
  /// first and last query, so rebuilding an app in place — the only
  /// mutation pattern the codebase uses — re-fingerprints correctly;
  /// profiles of an app object must not be mutated mid-simulation.
  uint64_t AppFingerprint(const SparkSqlApp& app);

  /// Shared tail of RunAppSubset/RunAppBatch: aggregates `count` per-query
  /// metrics (noise already applied) into one AppRunResult and emits the
  /// simulated-time lane. `app_span` (may be null) receives the wall-span
  /// summary args.
  AppRunResult FinishAppRun(const SparkSqlApp& app, const SparkConf& conf,
                            double datasize_gb, QueryMetrics* metrics,
                            size_t count, obs::ScopedSpan* app_span);

  ClusterSpec cluster_;
  SimParams params_;
  Rng noise_rng_;
  int64_t runs_performed_ = 0;
  obs::Tracer* tracer_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  EvalCache* eval_cache_ = nullptr;
  /// CombineEnvFingerprint(cluster, params), computed once at
  /// construction.
  uint64_t env_fp_ = 0;
  /// Cache environment key actually used for lookups:
  /// CombineFaultFingerprint(env_fp_, fault plan). Equals env_fp_ when
  /// faults are off.
  uint64_t eval_env_fp_ = 0;
  /// Fault-injection plan + its dedicated RNG stream and counters.
  FaultSpec faults_;
  Rng fault_rng_{0};
  FaultStats fault_stats_;
  /// AppFingerprint memo (see the method comment).
  const void* app_fp_queries_data_ = nullptr;
  size_t app_fp_queries_size_ = 0;
  uint64_t app_fp_guard_ = 0;
  uint64_t app_fp_ = 0;
  /// Per-run scratch reused across RunAppSubset calls so the tuning hot
  /// loop stops allocating three vectors per evaluation. Safe because a
  /// simulator instance is driven from one thread at a time (the noise
  /// RNG already requires that); the inner ThreadPool workers only write
  /// disjoint slots.
  std::vector<int> scratch_valid_;
  std::vector<double> scratch_noises_;
  std::vector<QueryMetrics> scratch_metrics_;
  std::vector<int> scratch_all_;
  std::vector<double> scratch_fault_draws_;
  std::vector<char> scratch_missed_;
  /// Virtual-time cursor of the simulated lane (ns of trace time); app
  /// runs are appended back-to-back so the exported timeline reads as one
  /// continuous cluster schedule.
  uint64_t sim_lane_cursor_ns_ = 0;
  /// Engine dispatch counters (see engine_stats()).
  SimEngineStats engine_stats_;
};

}  // namespace locat::sparksim

#endif  // LOCAT_SPARKSIM_SIMULATOR_H_
