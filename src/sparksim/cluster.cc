#include "sparksim/cluster.h"

namespace locat::sparksim {

ClusterSpec ArmCluster() {
  ClusterSpec spec;
  spec.name = "arm4";
  spec.worker_nodes = 3;  // 4 nodes, 1 master + 3 slaves.
  spec.cores_per_node = 128;
  spec.memory_per_node_gb = 512.0;
  spec.core_speed = 0.92;  // KUNPENG 920 vs Xeon Silver reference.
  spec.network_gbps = 2.5;
  spec.disk_gbps = 0.8;
  spec.container_max_cores = 8;
  spec.container_max_memory_gb = 32.0;
  spec.range_column = RangeColumn::kRangeA;
  return spec;
}

ClusterSpec X86Cluster() {
  ClusterSpec spec;
  spec.name = "x86_8";
  spec.worker_nodes = 7;  // 8 nodes, 1 master + 7 slaves.
  spec.cores_per_node = 20;
  spec.memory_per_node_gb = 64.0;
  spec.core_speed = 1.0;
  spec.network_gbps = 1.25;
  spec.disk_gbps = 0.5;
  spec.container_max_cores = 16;
  spec.container_max_memory_gb = 48.0;
  spec.range_column = RangeColumn::kRangeB;
  return spec;
}

}  // namespace locat::sparksim
