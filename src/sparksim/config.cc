#include "sparksim/config.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace locat::sparksim {
namespace {

std::vector<ParamSpec> BuildCatalog() {
  auto num = [](std::string name, ParamKind kind, double def, double lo_a,
                double hi_a, double lo_b, double hi_b, bool resource = false) {
    ParamSpec s;
    s.name = std::move(name);
    s.kind = kind;
    s.default_value = def;
    s.lo_a = lo_a;
    s.hi_a = hi_a;
    s.lo_b = lo_b;
    s.hi_b = hi_b;
    s.is_resource = resource;
    return s;
  };
  auto boolean = [&](std::string name, bool def) {
    return num(std::move(name), ParamKind::kBool, def ? 1.0 : 0.0, 0, 1, 0, 1);
  };

  std::vector<ParamSpec> c(kNumParams);
  c[kBroadcastBlockSize] =
      num("spark.broadcast.blockSize", ParamKind::kInt, 4, 1, 16, 1, 16);
  // Default "#" in Table 2: resolved to the cluster core count at
  // DefaultConf() time; the catalog stores 0 as a sentinel.
  c[kDefaultParallelism] =
      num("spark.default.parallelism", ParamKind::kInt, 0, 100, 1000, 100, 1000);
  c[kDriverCores] =
      num("spark.driver.cores", ParamKind::kInt, 1, 1, 8, 1, 16, true);
  c[kDriverMemory] =
      num("spark.driver.memory", ParamKind::kInt, 1, 4, 32, 4, 48, true);
  c[kExecutorCores] =
      num("spark.executor.cores", ParamKind::kInt, 1, 1, 8, 1, 16, true);
  c[kExecutorInstances] =
      num("spark.executor.instances", ParamKind::kInt, 2, 48, 384, 9, 112);
  c[kExecutorMemory] =
      num("spark.executor.memory", ParamKind::kInt, 1, 4, 32, 4, 48, true);
  c[kExecutorMemoryOverhead] = num("spark.executor.memoryOverhead",
                                   ParamKind::kInt, 384, 0, 32768, 0, 49152,
                                   true);
  c[kZstdBufferSize] = num("spark.io.compression.zstd.bufferSize",
                           ParamKind::kInt, 32, 16, 96, 16, 96);
  c[kZstdLevel] =
      num("spark.io.compression.zstd.level", ParamKind::kInt, 1, 1, 5, 1, 5);
  c[kKryoBuffer] =
      num("spark.kryoserializer.buffer", ParamKind::kInt, 64, 32, 128, 32, 128);
  c[kKryoBufferMax] = num("spark.kryoserializer.buffer.max", ParamKind::kInt,
                          64, 32, 128, 32, 128);
  c[kLocalityWait] =
      num("spark.locality.wait", ParamKind::kInt, 3, 1, 6, 1, 6);
  c[kMemoryFraction] =
      num("spark.memory.fraction", ParamKind::kReal, 0.6, 0.5, 0.9, 0.5, 0.9);
  c[kMemoryStorageFraction] = num("spark.memory.storageFraction",
                                  ParamKind::kReal, 0.5, 0.5, 0.9, 0.5, 0.9);
  c[kMemoryOffHeapSize] = num("spark.memory.offHeap.size", ParamKind::kInt, 0,
                              0, 32768, 0, 49152, true);
  c[kReducerMaxSizeInFlight] = num("spark.reducer.maxSizeInFlight",
                                   ParamKind::kInt, 48, 24, 144, 24, 144);
  c[kSchedulerReviveInterval] = num("spark.scheduler.revive.interval",
                                    ParamKind::kInt, 1, 1, 5, 1, 5);
  c[kShuffleFileBuffer] =
      num("spark.shuffle.file.buffer", ParamKind::kInt, 32, 16, 96, 16, 96);
  c[kShuffleIoNumConnections] = num("spark.shuffle.io.numConnectionsPerPeer",
                                    ParamKind::kInt, 1, 1, 5, 1, 5);
  c[kShuffleSortBypassMergeThreshold] =
      num("spark.shuffle.sort.bypassMergeThreshold", ParamKind::kInt, 200, 100,
          400, 100, 400);
  c[kSqlAutoBroadcastJoinThreshold] =
      num("spark.sql.autoBroadcastJoinThreshold", ParamKind::kInt, 1024, 1024,
          8192, 1024, 8192);
  c[kSqlCartesianProductThreshold] =
      num("spark.sql.cartesianProductExec.buffer.in.memory.threshold",
          ParamKind::kInt, 4096, 1024, 8192, 1024, 8192);
  c[kSqlCodegenMaxFields] =
      num("spark.sql.codegen.maxFields", ParamKind::kInt, 100, 50, 200, 50, 200);
  c[kSqlInMemoryColumnarBatchSize] =
      num("spark.sql.inMemoryColumnarStorage.batchSize", ParamKind::kInt,
          10000, 5000, 20000, 5000, 20000);
  c[kSqlShufflePartitions] = num("spark.sql.shuffle.partitions",
                                 ParamKind::kInt, 200, 100, 1000, 100, 1000);
  c[kStorageMemoryMapThreshold] = num("spark.storage.memoryMapThreshold",
                                      ParamKind::kInt, 1, 1, 10, 1, 10);

  c[kBroadcastCompress] = boolean("spark.broadcast.compress", true);
  c[kMemoryOffHeapEnabled] = boolean("spark.memory.offHeap.enabled", true);
  c[kRddCompress] = boolean("spark.rdd.compress", true);
  c[kShuffleCompress] = boolean("spark.shuffle.compress", true);
  c[kShuffleSpillCompress] = boolean("spark.shuffle.spill.compress", true);
  c[kSqlCodegenAggTwoLevel] =
      boolean("spark.sql.codegen.aggregate.map.twolevel.enable", true);
  c[kSqlInMemoryColumnarCompressed] =
      boolean("spark.sql.inMemoryColumnarStorage.compressed", true);
  c[kSqlInMemoryColumnarPruning] =
      boolean("spark.sql.inMemoryColumnarStorage.partitionPruning", true);
  c[kSqlPreferSortMergeJoin] =
      boolean("spark.sql.join.preferSortMergeJoin", true);
  c[kSqlRetainGroupColumns] = boolean("spark.sql.retainGroupColumns", true);
  c[kSqlSortEnableRadixSort] = boolean("spark.sql.sort.enableRadixSort", true);
  return c;
}

}  // namespace

const std::vector<ParamSpec>& ParamCatalog() {
  static const std::vector<ParamSpec>& catalog =
      *new std::vector<ParamSpec>(BuildCatalog());
  return catalog;
}

std::string SparkConf::ToString() const {
  const auto& catalog = ParamCatalog();
  std::ostringstream os;
  for (int i = 0; i < kNumParams; ++i) {
    const auto& spec = catalog[static_cast<size_t>(i)];
    os << spec.name << "=";
    if (spec.kind == ParamKind::kBool) {
      os << (GetBool(static_cast<ParamId>(i)) ? "true" : "false");
    } else if (spec.kind == ParamKind::kReal) {
      os << Get(static_cast<ParamId>(i));
    } else {
      os << GetInt(static_cast<ParamId>(i));
    }
    if (i + 1 < kNumParams) os << "\n";
  }
  return os.str();
}

ConfigSpace::ConfigSpace(const ClusterSpec& cluster)
    : cluster_(cluster), specs_(ParamCatalog()) {
  lo_.resize(kNumParams);
  hi_.resize(kNumParams);
  const bool use_a = cluster.range_column == RangeColumn::kRangeA;
  for (int i = 0; i < kNumParams; ++i) {
    const auto& s = specs_[static_cast<size_t>(i)];
    lo_[static_cast<size_t>(i)] = use_a ? s.lo_a : s.lo_b;
    hi_[static_cast<size_t>(i)] = use_a ? s.hi_a : s.hi_b;
  }
}

int ConfigSpace::IndexOf(const std::string& name) const {
  for (int i = 0; i < kNumParams; ++i) {
    if (specs_[static_cast<size_t>(i)].name == name) return i;
  }
  return -1;
}

SparkConf ConfigSpace::DefaultConf() const {
  SparkConf conf;
  for (int i = 0; i < kNumParams; ++i) {
    conf.Set(static_cast<ParamId>(i),
             specs_[static_cast<size_t>(i)].default_value);
  }
  // Table 2 gives "#" for default.parallelism: Spark derives it from the
  // cluster (total cores).
  conf.Set(kDefaultParallelism, cluster_.total_cores());
  return conf;
}

SparkConf ConfigSpace::FromUnit(const math::Vector& unit) const {
  assert(unit.size() == static_cast<size_t>(kNumParams));
  SparkConf conf;
  for (int i = 0; i < kNumParams; ++i) {
    const auto& s = specs_[static_cast<size_t>(i)];
    const double u = std::clamp(unit[static_cast<size_t>(i)], 0.0, 1.0);
    double v = lo_[static_cast<size_t>(i)] +
               u * (hi_[static_cast<size_t>(i)] - lo_[static_cast<size_t>(i)]);
    if (s.kind == ParamKind::kInt) {
      v = std::round(v);
    } else if (s.kind == ParamKind::kBool) {
      v = u >= 0.5 ? 1.0 : 0.0;
    }
    conf.Set(static_cast<ParamId>(i), v);
  }
  return conf;
}

math::Vector ConfigSpace::ToUnit(const SparkConf& conf) const {
  math::Vector unit(kNumParams);
  for (int i = 0; i < kNumParams; ++i) {
    const double lo = lo_[static_cast<size_t>(i)];
    const double hi = hi_[static_cast<size_t>(i)];
    const double range = hi - lo;
    unit[static_cast<size_t>(i)] =
        range <= 0.0
            ? 0.0
            : std::clamp((conf.Get(static_cast<ParamId>(i)) - lo) / range,
                         0.0, 1.0);
  }
  return unit;
}

Status ConfigSpace::Validate(const SparkConf& conf) const {
  for (int i = 0; i < kNumParams; ++i) {
    const double v = conf.Get(static_cast<ParamId>(i));
    if (v < lo_[static_cast<size_t>(i)] - 1e-9 ||
        v > hi_[static_cast<size_t>(i)] + 1e-9) {
      return Status::OutOfRange(specs_[static_cast<size_t>(i)].name + "=" +
                                std::to_string(v) + " outside range");
    }
  }
  // Section 5.12: per-container caps.
  if (conf.GetInt(kExecutorCores) > cluster_.container_max_cores) {
    return Status::FailedPrecondition(
        "executor.cores exceeds Yarn container core capacity");
  }
  const double per_exec_mem_gb = conf.Get(kExecutorMemory) +
                                 conf.Get(kExecutorMemoryOverhead) / 1024.0 +
                                 conf.Get(kMemoryOffHeapSize) / 1024.0;
  if (per_exec_mem_gb > cluster_.container_max_memory_gb + 1e-9) {
    return Status::FailedPrecondition(
        "executor.memory + memoryOverhead + offHeap.size exceeds container "
        "memory capacity");
  }
  // Section 5.12: total cluster capacity.
  const double instances = conf.Get(kExecutorInstances);
  if (instances * per_exec_mem_gb > cluster_.total_memory_gb() + 1e-9) {
    return Status::FailedPrecondition(
        "executor.instances * per-executor memory exceeds cluster memory");
  }
  if (instances * conf.Get(kExecutorCores) >
      static_cast<double>(cluster_.total_cores()) + 1e-9) {
    return Status::FailedPrecondition(
        "executor.instances * executor.cores exceeds cluster cores");
  }
  return Status::OK();
}

SparkConf ConfigSpace::Repair(const SparkConf& input) const {
  SparkConf conf = input;
  // Clamp everything into its Table 2 range first.
  for (int i = 0; i < kNumParams; ++i) {
    const auto& s = specs_[static_cast<size_t>(i)];
    double v = std::clamp(conf.Get(static_cast<ParamId>(i)),
                          lo_[static_cast<size_t>(i)],
                          hi_[static_cast<size_t>(i)]);
    if (s.kind == ParamKind::kInt) v = std::round(v);
    if (s.kind == ParamKind::kBool) v = v >= 0.5 ? 1.0 : 0.0;
    conf.Set(static_cast<ParamId>(i), v);
  }

  // Container caps.
  conf.Set(kExecutorCores,
           std::min<double>(conf.Get(kExecutorCores),
                            cluster_.container_max_cores));
  double heap = conf.Get(kExecutorMemory);
  double overhead_gb = conf.Get(kExecutorMemoryOverhead) / 1024.0;
  double offheap_gb = conf.Get(kMemoryOffHeapSize) / 1024.0;
  double per_exec = heap + overhead_gb + offheap_gb;
  if (per_exec > cluster_.container_max_memory_gb) {
    // Shrink overhead and off-heap first (they have 0 lower bounds), then
    // the heap itself.
    const double cap = cluster_.container_max_memory_gb;
    double excess = per_exec - cap;
    const double cut_off = std::min(offheap_gb, excess);
    offheap_gb -= cut_off;
    excess -= cut_off;
    const double cut_over = std::min(overhead_gb, excess);
    overhead_gb -= cut_over;
    excess -= cut_over;
    if (excess > 0.0) {
      heap = std::max(lo_[kExecutorMemory], heap - excess);
    }
    conf.Set(kExecutorMemory, std::floor(heap));
    conf.Set(kExecutorMemoryOverhead, std::floor(overhead_gb * 1024.0));
    conf.Set(kMemoryOffHeapSize, std::floor(offheap_gb * 1024.0));
    per_exec = conf.Get(kExecutorMemory) +
               conf.Get(kExecutorMemoryOverhead) / 1024.0 +
               conf.Get(kMemoryOffHeapSize) / 1024.0;
  }

  // Cluster totals: shrink per-executor resources first so the instance
  // count can stay within its Table 2 range, then reduce the instance
  // count until both constraints hold.
  const double lo_instances = std::max(1.0, lo_[kExecutorInstances]);
  double cores = std::max(1.0, conf.Get(kExecutorCores));
  const double cores_cap = std::floor(
      static_cast<double>(cluster_.total_cores()) / lo_instances);
  if (cores > cores_cap && cores_cap >= lo_[kExecutorCores]) {
    cores = cores_cap;
    conf.Set(kExecutorCores, cores);
  }
  double instances = conf.Get(kExecutorInstances);
  const double max_by_mem =
      per_exec > 0.0 ? std::floor(cluster_.total_memory_gb() / per_exec)
                     : instances;
  const double max_by_cores =
      std::floor(static_cast<double>(cluster_.total_cores()) / cores);
  instances = std::min({instances, max_by_mem, max_by_cores});
  instances = std::max(instances, 1.0);
  // Respect the range lower bound when possible; validity wins otherwise.
  if (instances >= lo_[kExecutorInstances]) {
    instances = std::max(instances, lo_[kExecutorInstances]);
  }
  conf.Set(kExecutorInstances, std::round(instances));
  return conf;
}

SparkConf ConfigSpace::RandomValid(Rng* rng) const {
  SparkConf conf;
  for (int i = 0; i < kNumParams; ++i) {
    const auto& s = specs_[static_cast<size_t>(i)];
    const double lo = lo_[static_cast<size_t>(i)];
    const double hi = hi_[static_cast<size_t>(i)];
    double v;
    if (s.kind == ParamKind::kBool) {
      v = rng->Bernoulli(0.5) ? 1.0 : 0.0;
    } else if (s.kind == ParamKind::kInt) {
      v = static_cast<double>(
          rng->UniformInt(static_cast<int64_t>(lo), static_cast<int64_t>(hi)));
    } else {
      v = rng->Uniform(lo, hi);
    }
    conf.Set(static_cast<ParamId>(i), v);
  }
  return Repair(conf);
}

math::Vector ConfigSpace::RandomValidUnit(Rng* rng) const {
  return ToUnit(RandomValid(rng));
}

}  // namespace locat::sparksim
