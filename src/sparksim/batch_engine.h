#ifndef LOCAT_SPARKSIM_BATCH_ENGINE_H_
#define LOCAT_SPARKSIM_BATCH_ENGINE_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sparksim/simulator.h"

namespace locat::sparksim {

/// Which implementation serves ClusterSimulator::RunAppBatch.
///
/// `kSeq` is the reference engine in simulator.cc: a per-conf sequential
/// loop under faults, a flat (conf x query) fan-out otherwise, every cell
/// through the scalar SimulateQuery. `kBatch` is the structure-of-arrays
/// engine in this file: the conf batch is lowered once into contiguous
/// per-knob planes (batch_soa.h) and advanced stage-phase by stage-phase,
/// with math::kern elementwise kernels on the memory-demand planes and
/// ThreadPool::ParallelFor splitting conf blocks deterministically.
/// `kAuto` (the default) picks kBatch whenever the batch has at least
/// kBatchEngineMinConfs configurations.
///
/// Determinism contract: both engines produce bit-identical results,
/// RNG streams, cache contents and runs_performed_ for any thread count,
/// cache state, SIMD backend and fault plan — the batch engine hoists
/// common subexpressions of the scalar model without reordering or fusing
/// any IEEE-754 operation, pre-draws noise conf-major and fault draws
/// run-major in the sequential consumption order, and peels cache lookups
/// in serial lane order before lowering. Only wall-lane trace spans and
/// (for duplicate confs within one batch) cache hit/miss counter
/// attribution may differ; cached *values* never do.
enum class SimEngine {
  kSeq = 0,
  kBatch = 1,
  kAuto = 2,
};

/// Batches smaller than this stay on the sequential engine under kAuto
/// (one conf has no lanes to amortize the lowering over).
inline constexpr size_t kBatchEngineMinConfs = 2;

/// The engine RunAppBatch currently dispatches to. Lazily initialized
/// from the LOCAT_SIM_ENGINE environment variable on first use: "seq",
/// "batch", or "auto" (the default when unset). Invalid values warn once
/// on stderr and fall back to auto.
SimEngine ActiveSimEngine();

/// Forces the dispatch. Thread-safe; callers switch between, not during,
/// batch evaluations.
void SetSimEngine(SimEngine e);

/// Parses "seq" | "batch" | "auto" (the LOCAT_SIM_ENGINE / --sim-engine
/// values) and switches the dispatch.
Status SetSimEngineByName(std::string_view name);

const char* SimEngineName(SimEngine e);
const char* ActiveSimEngineName();

/// Structure-of-arrays batch evaluator behind RunAppBatch. Stateless
/// apart from the simulator it drives; constructed per batch.
class BatchEngine {
 public:
  explicit BatchEngine(ClusterSimulator* sim) : sim_(sim) {}

  /// Evaluates the (confs x query_indices) grid. Caller (RunAppBatch) has
  /// already validated datasize and indices and handled the empty batch.
  StatusOr<std::vector<AppRunResult>> Run(const SparkSqlApp& app,
                                          const std::vector<int>& query_indices,
                                          const std::vector<SparkConf>& confs,
                                          double datasize_gb);

 private:
  ClusterSimulator* sim_;
};

}  // namespace locat::sparksim

#endif  // LOCAT_SPARKSIM_BATCH_ENGINE_H_
