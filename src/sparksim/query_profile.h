#ifndef LOCAT_SPARKSIM_QUERY_PROFILE_H_
#define LOCAT_SPARKSIM_QUERY_PROFILE_H_

#include <string>
#include <vector>

namespace locat::sparksim {

/// The query taxonomy of Section 5.11 (after Pavlo et al.): selection
/// queries barely touch the shuffle machinery, join/aggregation queries
/// exercise it heavily.
enum class QueryCategory { kSelection, kJoin, kAggregation };

/// Analytical profile of one SQL query. All data-volume fields are
/// expressed at the 100 GB reference input size and scaled by the
/// simulator.
struct QueryProfile {
  std::string name;
  QueryCategory category = QueryCategory::kSelection;

  /// Fraction of the dataset this query scans.
  double input_frac = 0.1;

  /// Map-side work, core-seconds per scanned GB (CPU + decode + I/O).
  double cpu_per_gb = 6.0;

  /// Shuffle volume as a fraction of scanned bytes at the 100 GB
  /// reference (Q72 shuffles 52 GB of 100 GB input; Q08 ~5 MB).
  double shuffle_ratio = 0.0;

  /// Reduce-side work, core-seconds per shuffled GB.
  double shuffle_cpu_per_gb = 10.0;

  /// Number of wide (shuffle) stages in the query plan.
  int num_shuffle_stages = 0;

  /// Extra super-linearity of shuffle volume in the data size:
  /// shuffle_gb ~ scanned_gb * shuffle_ratio * (ds/100)^ds_exponent.
  /// 0 = volume linear in ds (because scanned_gb already is).
  double ds_exponent = 0.0;

  /// Size of the largest broadcast-eligible dimension table at 100 GB, in
  /// MB (0 = no broadcastable join side). Dimension tables grow slowly, so
  /// the simulator scales this with sqrt(ds/100).
  double broadcastable_mb = 0.0;

  /// Fraction of shuffle volume a successful broadcast join eliminates.
  double broadcast_avoid_frac = 0.6;

  /// Working-set multiplier: execution memory demanded per task is
  /// (partition bytes) * mem_per_task_factor.
  double mem_per_task_factor = 1.0;

  /// Task-duration skew (max/mean >= 1); drives straggler waves.
  double skew = 1.2;

  /// True for plans containing a cartesian product (rare; enables the
  /// cartesianProductExec buffer threshold effect).
  bool has_cartesian = false;

  /// Fraction of the scanned data re-read from the in-memory columnar
  /// cache (CTE reuse / repeated subquery); enables the
  /// inMemoryColumnarStorage.* effects.
  double rescan_frac = 0.0;
};

/// A Spark SQL application: an ordered set of queries run back-to-back on
/// one input dataset (Figure 1 of the paper).
struct SparkSqlApp {
  std::string name;
  std::vector<QueryProfile> queries;

  int num_queries() const { return static_cast<int>(queries.size()); }

  /// Returns a copy containing only the queries whose indices appear in
  /// `keep` — the Reduced Query Application (RQA) of Section 3.2.
  SparkSqlApp Subset(const std::vector<int>& keep) const;

  /// Index of a query by name; -1 when absent.
  int IndexOf(const std::string& query_name) const;
};

}  // namespace locat::sparksim

#endif  // LOCAT_SPARKSIM_QUERY_PROFILE_H_
