#ifndef LOCAT_SPARKSIM_EVAL_CACHE_H_
#define LOCAT_SPARKSIM_EVAL_CACHE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "sparksim/simulator.h"

namespace locat::sparksim {

/// Canonical 64-bit fingerprints of the simulator's evaluation inputs.
///
/// The cost model is a pure function of (conf, datasize, query profile,
/// cluster spec, sim params); the run-to-run lognormal noise factor is
/// applied *after* the model (ClusterSimulator::ApplyNoise), so noise —
/// and therefore the simulator seed — is deliberately NOT part of the
/// key. That is what lets the incumbent re-measure, MeasureFinal
/// repetitions and cross-cell grid evaluations hit the cache even though
/// each of them draws a fresh noise factor.
///
/// All hashes fold the raw IEEE-754 bit patterns of the doubles, so two
/// inputs fingerprint equal only when they would compare bit-equal.
uint64_t FingerprintConf(const SparkConf& conf);
uint64_t FingerprintCluster(const ClusterSpec& cluster);
/// Excludes noise_sigma: cached metrics are noise-free by construction.
uint64_t FingerprintSimParams(const SimParams& params);
uint64_t FingerprintQuery(const QueryProfile& query);

/// Content fingerprint of a whole application: the app name folded with
/// FingerprintQuery of every query, in order. O(total queries) — callers
/// on the hot path memoize it (see ClusterSimulator::AppFingerprint).
uint64_t FingerprintApp(const SparkSqlApp& app);

/// Key of one subset run: the app content fold plus the selected (already
/// validated) query indices, in order. O(count) over plain ints, so cheap
/// enough to recompute per run once the app fold is memoized.
uint64_t CombineSubsetFingerprint(uint64_t app_fp, const int* indices,
                                  size_t count);

/// Environment fingerprint = cluster + sim params + cache format version.
uint64_t CombineEnvFingerprint(uint64_t cluster_fp, uint64_t params_fp);

/// Folds a fault-plan fingerprint (FingerprintFaultSpec) into the
/// environment fingerprint, so entries cached under one fault plan are
/// never served under another. Identity when fault_fp == 0 (faults off):
/// the pre-fault key space is preserved bit-for-bit.
uint64_t CombineFaultFingerprint(uint64_t env_fp, uint64_t fault_fp);

/// Full per-evaluation fingerprint used as the cache bucket key.
uint64_t CombineEvalFingerprint(uint64_t conf_fp, uint64_t env_fp,
                                uint64_t query_fp, double datasize_gb);

/// Counter snapshot of one EvalCache (aggregated over shards). The
/// headline counters (hits, misses, evictions, collisions, insertions,
/// entries) cover BOTH levels — per-query entries and whole-subset app
/// entries; the app_* fields break out the app-level share.
struct EvalCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t collisions = 0;  // fingerprint matched, key material did not
  uint64_t insertions = 0;
  uint64_t entries = 0;     // currently resident

  // App-level (whole subset-run vector) breakdown, included above.
  uint64_t app_hits = 0;
  uint64_t app_misses = 0;
  uint64_t app_evictions = 0;
  uint64_t app_insertions = 0;
  uint64_t app_entries = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// Thread-safe sharded LRU memoization of noise-free cost-model outputs,
/// at two granularities:
///
///   - app level (L1): the whole per-query metrics vector of one
///     (conf, query subset, datasize, environment) run. One lock + one
///     bulk copy serves an entire repeated app run, so the warm path
///     costs only the noise draws and the output copy;
///   - query level (L2): one QueryMetrics per (conf, query, datasize,
///     environment). Populated on L1 misses and shared across different
///     subsets of the same queries (the RQA path re-uses full-app
///     entries and vice versa).
///
/// Keyed by the CombineEvalFingerprint of (conf, datasize, query,
/// environment); on a fingerprint match the stored key material — the 38
/// raw configuration doubles plus the datasize and the query/environment
/// fingerprints — is compared for exact equality, so a 64-bit collision
/// degrades to a counted miss instead of returning wrong metrics. The
/// query/environment components stay fingerprint-compared: their spaces
/// are a few hundred fixed profiles and a handful of clusters, far below
/// any birthday bound, while conf x datasize (the high-cardinality axis)
/// is compared bit-for-bit.
///
/// Capacity is split across 16 shards (each with its own mutex and LRU
/// list), so concurrent per-query lookups from ThreadPool workers don't
/// serialize on one lock. Whether a lookup hits may depend on eviction
/// order and thus on scheduling; the *returned metrics* never do, because
/// every entry is the deterministic model output for its key.
class EvalCache {
 public:
  /// Entry budget from $LOCAT_SIM_CACHE_CAP (default 1M entries, ~250 MB
  /// worst case; a full TPC-DS tuning grid needs far less).
  static size_t CapacityFromEnv();

  explicit EvalCache(size_t capacity = CapacityFromEnv());

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Returns true and copies the memoized metrics into *out when the
  /// fingerprint is resident and the key material matches exactly.
  bool Lookup(uint64_t fingerprint, const SparkConf& conf,
              double datasize_gb, uint64_t query_fp, uint64_t env_fp,
              QueryMetrics* out);

  /// Inserts (or refreshes) the metrics for a key, evicting the shard's
  /// least-recently-used entry when over budget.
  void Insert(uint64_t fingerprint, const SparkConf& conf,
              double datasize_gb, uint64_t query_fp, uint64_t env_fp,
              const QueryMetrics& value);

  /// App-level lookup: copies the memoized noise-free metrics of a whole
  /// subset run into out[0..count) and returns true when the fingerprint
  /// is resident, the key material matches exactly, and the stored run
  /// has exactly `count` queries. `subset_fp` plays the role query_fp
  /// plays at the query level (fingerprint-compared; see above).
  bool LookupApp(uint64_t fingerprint, const SparkConf& conf,
                 double datasize_gb, uint64_t subset_fp, uint64_t env_fp,
                 size_t count, QueryMetrics* out);

  /// Inserts (or refreshes) the whole noise-free metrics vector of one
  /// subset run. App entries are budgeted by their query count — one run
  /// of n queries costs n units of the same per-shard capacity — so the
  /// configured capacity bounds resident QueryMetrics at both levels.
  void InsertApp(uint64_t fingerprint, const SparkConf& conf,
                 double datasize_gb, uint64_t subset_fp, uint64_t env_fp,
                 const QueryMetrics* values, size_t count);

  EvalCacheStats stats() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

  /// Publishes the counters as locat_sim_cache_* metrics.
  void ExportMetrics(obs::MetricsRegistry* metrics) const;

 private:
  static constexpr size_t kNumShards = 16;

  struct Entry {
    uint64_t fingerprint = 0;
    std::vector<double> conf_values;
    double datasize_gb = 0.0;
    uint64_t query_fp = 0;
    uint64_t env_fp = 0;
    QueryMetrics value;
  };

  struct Shard {
    mutable std::mutex mu;
    // LRU order: front = most recently used.
    std::list<Entry> lru;
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index;
    size_t capacity = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t collisions = 0;
    uint64_t insertions = 0;
  };

  struct AppEntry {
    uint64_t fingerprint = 0;
    std::vector<double> conf_values;
    double datasize_gb = 0.0;
    uint64_t subset_fp = 0;
    uint64_t env_fp = 0;
    std::vector<QueryMetrics> value;
  };

  struct AppShard {
    mutable std::mutex mu;
    // LRU order: front = most recently used.
    std::list<AppEntry> lru;
    std::unordered_map<uint64_t, std::list<AppEntry>::iterator> index;
    size_t capacity = 0;  // in QueryMetrics units, not entries
    size_t units = 0;     // sum of value.size() over resident entries
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t collisions = 0;
    uint64_t insertions = 0;
  };

  static bool MaterialMatches(const Entry& e, const SparkConf& conf,
                              double datasize_gb, uint64_t query_fp,
                              uint64_t env_fp);
  static bool AppMaterialMatches(const AppEntry& e, const SparkConf& conf,
                                 double datasize_gb, uint64_t subset_fp,
                                 uint64_t env_fp, size_t count);

  Shard& ShardFor(uint64_t fingerprint) {
    return shards_[static_cast<size_t>(fingerprint % kNumShards)];
  }
  AppShard& AppShardFor(uint64_t fingerprint) {
    return app_shards_[static_cast<size_t>(fingerprint % kNumShards)];
  }

  size_t capacity_ = 0;
  std::array<Shard, kNumShards> shards_;
  std::array<AppShard, kNumShards> app_shards_;
};

}  // namespace locat::sparksim

#endif  // LOCAT_SPARKSIM_EVAL_CACHE_H_
