#include "sparksim/query_profile.h"

namespace locat::sparksim {

SparkSqlApp SparkSqlApp::Subset(const std::vector<int>& keep) const {
  SparkSqlApp out;
  out.name = name + "-rqa";
  out.queries.reserve(keep.size());
  for (int idx : keep) {
    if (idx >= 0 && idx < num_queries()) {
      out.queries.push_back(queries[static_cast<size_t>(idx)]);
    }
  }
  return out;
}

int SparkSqlApp::IndexOf(const std::string& query_name) const {
  for (int i = 0; i < num_queries(); ++i) {
    if (queries[static_cast<size_t>(i)].name == query_name) return i;
  }
  return -1;
}

}  // namespace locat::sparksim
