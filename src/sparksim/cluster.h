#ifndef LOCAT_SPARKSIM_CLUSTER_H_
#define LOCAT_SPARKSIM_CLUSTER_H_

#include <string>

namespace locat::sparksim {

/// Which column of Table 2 supplies parameter value ranges.
enum class RangeColumn { kRangeA, kRangeB };

/// Static description of a Spark cluster (worker nodes only; the master
/// runs the driver). Mirrors Section 4.1 of the paper.
struct ClusterSpec {
  std::string name;
  int worker_nodes = 1;
  int cores_per_node = 1;
  double memory_per_node_gb = 1.0;
  /// Relative per-core throughput (1.0 = the x86 Xeon reference).
  double core_speed = 1.0;
  /// Aggregate network bandwidth between any two nodes, GB/s.
  double network_gbps = 1.25;  // 10 GbE
  /// Per-node disk bandwidth, GB/s.
  double disk_gbps = 0.5;
  /// Yarn container caps (Section 5.12 ties parameter ranges to these).
  int container_max_cores = 8;
  double container_max_memory_gb = 32.0;
  RangeColumn range_column = RangeColumn::kRangeA;

  int total_cores() const { return worker_nodes * cores_per_node; }
  double total_memory_gb() const { return worker_nodes * memory_per_node_gb; }
};

/// The paper's four-node KUNPENG ARM cluster: 1 master + 3 workers, each
/// with 4 x 32-core 2.6 GHz processors and 512 GB (workers: 384 cores,
/// 1536 GB). Uses Table 2 "Range A".
ClusterSpec ArmCluster();

/// The paper's eight-node x86 cluster: 1 master + 7 workers, each with
/// 2 x 10-core Xeon Silver 4114 and 64 GB (workers: 140 cores, 448 GB).
/// Uses Table 2 "Range B".
ClusterSpec X86Cluster();

}  // namespace locat::sparksim

#endif  // LOCAT_SPARKSIM_CLUSTER_H_
