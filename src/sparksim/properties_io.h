#ifndef LOCAT_SPARKSIM_PROPERTIES_IO_H_
#define LOCAT_SPARKSIM_PROPERTIES_IO_H_

#include <ostream>
#include <string>

#include "common/status.h"
#include "sparksim/config.h"

namespace locat::sparksim {

/// Reads and writes configurations in the `spark-defaults.conf` /
/// `spark-submit --properties-file` format, with Spark's unit suffixes:
///
///   spark.executor.memory        12g
///   spark.executor.memoryOverhead 3072m
///   spark.kryoserializer.buffer  64k
///   spark.locality.wait          3s
///   spark.shuffle.compress       true
///
/// Unit handling follows each Table 2 parameter's native unit: GB-valued
/// parameters are written with a `g` suffix, MB with `m`, KB with `k`,
/// seconds with `s`; plain counts and fractions are written bare. The
/// parser accepts any of g/m/k (case-insensitive) on byte-valued
/// parameters and converts into the parameter's native unit.
void WriteSparkProperties(const SparkConf& conf, std::ostream& os);

/// Convenience: the properties text as a string.
std::string SparkPropertiesToString(const SparkConf& conf);

/// Parses properties text. Lines are `key value` or `key=value`; blank
/// lines and `#` comments are skipped. Unknown keys are an error (catch
/// typos); missing keys keep the value from `base`. Returns the parsed
/// configuration (not validated or repaired — callers decide).
StatusOr<SparkConf> ParseSparkProperties(const std::string& text,
                                         const SparkConf& base);

}  // namespace locat::sparksim

#endif  // LOCAT_SPARKSIM_PROPERTIES_IO_H_
