#ifndef LOCAT_SPARKSIM_EVENT_LOG_H_
#define LOCAT_SPARKSIM_EVENT_LOG_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "sparksim/simulator.h"

namespace locat::sparksim {

/// Spark-history-server style event logging for simulated runs.
///
/// On a real cluster LOCAT collects per-query execution times from
/// Spark's event logs / history server; this module closes that loop for
/// the simulator. `WriteEventLog` serializes an application run as JSON
/// lines in the spirit of Spark's `SparkListenerEvent` stream
/// (ApplicationStart, JobStart/JobEnd per query with accumulated GC time,
/// ApplicationEnd); `ParseEventLog` recovers the per-query timings that
/// QCSA consumes.
struct QueryLogEntry {
  std::string query;
  double exec_seconds = 0.0;
  double gc_seconds = 0.0;
  double shuffle_gb = 0.0;
  bool oom = false;
};

struct EventLog {
  std::string app_name;
  double datasize_gb = 0.0;
  double total_seconds = 0.0;
  std::vector<QueryLogEntry> queries;
};

/// Serializes one run as JSON lines. `app_name` may contain any
/// characters except control codes; quotes and backslashes are escaped.
void WriteEventLog(const std::string& app_name, double datasize_gb,
                   const AppRunResult& run, std::ostream& os);

/// Parses a log produced by WriteEventLog. Returns InvalidArgument on
/// malformed input (unknown event kinds are skipped for forward
/// compatibility).
StatusOr<EventLog> ParseEventLog(const std::string& text);

/// Builds the QCSA sample matrix (queries x runs) from several parsed
/// logs of the *same* application. Fails when logs disagree on the query
/// set.
StatusOr<std::vector<std::vector<double>>> QcsaMatrixFromLogs(
    const std::vector<EventLog>& logs);

}  // namespace locat::sparksim

#endif  // LOCAT_SPARKSIM_EVENT_LOG_H_
