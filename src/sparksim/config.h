#ifndef LOCAT_SPARKSIM_CONFIG_H_
#define LOCAT_SPARKSIM_CONFIG_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "math/matrix.h"
#include "sparksim/cluster.h"

namespace locat::sparksim {

/// Identifiers for the 38 configuration parameters of Table 2, in table
/// order (27 numeric, then 11 boolean).
enum ParamId : int {
  kBroadcastBlockSize = 0,           // MB
  kDefaultParallelism,               // partitions
  kDriverCores,                      // cores
  kDriverMemory,                     // GB
  kExecutorCores,                    // cores
  kExecutorInstances,                // executors
  kExecutorMemory,                   // GB
  kExecutorMemoryOverhead,           // MB
  kZstdBufferSize,                   // KB
  kZstdLevel,                        // level 1-5
  kKryoBuffer,                       // KB
  kKryoBufferMax,                    // MB
  kLocalityWait,                     // seconds
  kMemoryFraction,                   // fraction
  kMemoryStorageFraction,            // fraction
  kMemoryOffHeapSize,                // MB
  kReducerMaxSizeInFlight,           // MB
  kSchedulerReviveInterval,          // seconds
  kShuffleFileBuffer,                // KB
  kShuffleIoNumConnections,          // connections
  kShuffleSortBypassMergeThreshold,  // partitions
  kSqlAutoBroadcastJoinThreshold,    // KB
  kSqlCartesianProductThreshold,     // rows
  kSqlCodegenMaxFields,              // fields
  kSqlInMemoryColumnarBatchSize,     // rows
  kSqlShufflePartitions,             // partitions
  kStorageMemoryMapThreshold,        // MB
  kBroadcastCompress,                // bool ------------------------------
  kMemoryOffHeapEnabled,             // bool
  kRddCompress,                      // bool
  kShuffleCompress,                  // bool
  kShuffleSpillCompress,             // bool
  kSqlCodegenAggTwoLevel,            // bool
  kSqlInMemoryColumnarCompressed,    // bool
  kSqlInMemoryColumnarPruning,       // bool
  kSqlPreferSortMergeJoin,           // bool
  kSqlRetainGroupColumns,            // bool
  kSqlSortEnableRadixSort,           // bool
  kNumParams                         // = 38
};

enum class ParamKind { kInt, kReal, kBool };

/// Static description of one Table 2 parameter.
struct ParamSpec {
  std::string name;
  ParamKind kind = ParamKind::kInt;
  double default_value = 0.0;
  /// [lo, hi] for the ARM cluster ("Range A") and x86 cluster ("Range B").
  double lo_a = 0.0, hi_a = 1.0;
  double lo_b = 0.0, hi_b = 1.0;
  /// Marked with * in Table 2: value range derives from cluster resources.
  bool is_resource = false;
};

/// Returns the full 38-entry Table 2 catalog (shared, immutable).
const std::vector<ParamSpec>& ParamCatalog();

/// A concrete assignment of all 38 parameters (equation (1)'s `conf`).
/// Values are stored as doubles; booleans are 0/1; integer parameters hold
/// integral values.
class SparkConf {
 public:
  SparkConf() : values_(kNumParams, 0.0) {}

  double Get(ParamId id) const { return values_[static_cast<size_t>(id)]; }
  int GetInt(ParamId id) const { return static_cast<int>(Get(id) + 0.5); }
  bool GetBool(ParamId id) const { return Get(id) >= 0.5; }
  void Set(ParamId id, double value) {
    values_[static_cast<size_t>(id)] = value;
  }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  bool operator==(const SparkConf& other) const {
    return values_ == other.values_;
  }

  std::string ToString() const;

 private:
  std::vector<double> values_;
};

/// The tunable configuration space for one cluster: Table 2 ranges plus
/// the Section 5.12 validity rules (container caps, memory-sum and
/// cluster-capacity constraints).
class ConfigSpace {
 public:
  explicit ConfigSpace(const ClusterSpec& cluster);

  const ClusterSpec& cluster() const { return cluster_; }
  int size() const { return kNumParams; }

  const ParamSpec& spec(int index) const { return specs_[static_cast<size_t>(index)]; }
  double lo(int index) const { return lo_[static_cast<size_t>(index)]; }
  double hi(int index) const { return hi_[static_cast<size_t>(index)]; }

  /// Index of a parameter by its Spark property name; -1 if unknown.
  int IndexOf(const std::string& name) const;

  /// Spark defaults (Table 2, "Default" column). `default.parallelism`
  /// defaults to the cluster's total core count, matching Spark.
  SparkConf DefaultConf() const;

  /// Maps a point in the unit hypercube [0,1]^38 to a configuration:
  /// linear interpolation, integer rounding, 0.5-thresholded booleans.
  SparkConf FromUnit(const math::Vector& unit) const;

  /// Inverse of FromUnit (booleans map to 0/1, degenerate ranges to 0).
  math::Vector ToUnit(const SparkConf& conf) const;

  /// Checks Table 2 ranges plus Section 5.12 rules:
  ///  - executor.memory + memoryOverhead + offHeap.size <= container memory
  ///  - executor.cores <= container cores
  ///  - instances * per-executor resources <= cluster totals.
  Status Validate(const SparkConf& conf) const;

  /// Clamps to ranges and scales memory/instances down until Validate
  /// passes. Always returns a valid configuration.
  SparkConf Repair(const SparkConf& conf) const;

  /// Uniform random configuration over the ranges, repaired to validity.
  SparkConf RandomValid(Rng* rng) const;

  /// Unit-cube coordinates of a random valid configuration.
  math::Vector RandomValidUnit(Rng* rng) const;

 private:
  ClusterSpec cluster_;
  std::vector<ParamSpec> specs_;
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace locat::sparksim

#endif  // LOCAT_SPARKSIM_CONFIG_H_
