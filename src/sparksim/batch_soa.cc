#include "sparksim/batch_soa.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>

#include "math/kern/kern.h"
#include "sparksim/eval_cache.h"

// This translation unit must execute the exact IEEE-754 operation
// sequence of simulator.cc, so it is compiled with -ffp-contract=off
// (see src/sparksim/CMakeLists.txt): a fused multiply-add the scalar
// model did not perform would change bits on FMA-capable targets.

namespace locat::sparksim::batch {
namespace {

// Mirror of simulator.cc's CodegenFields (same std::hash, same range).
int CodegenFields(const std::string& name) {
  const size_t h = std::hash<std::string>{}(name);
  return 50 + static_cast<int>(h % 150);
}

}  // namespace

ModelTables ModelTables::Build(const ClusterSpec& cluster,
                               const SimParams& params) {
  ModelTables t;
  t.p = params;
  t.core_speed = cluster.core_speed;
  t.network_gbps = cluster.network_gbps;
  t.disk_bw = cluster.disk_gbps * cluster.worker_nodes;
  t.total_memory_gb = cluster.total_memory_gb();
  t.total_cores = cluster.total_cores();
  t.container_max_cores = cluster.container_max_cores;
  t.worker_nodes = cluster.worker_nodes;
  for (int z = 1; z <= 5; ++z) {
    t.comp_ratio[z] = params.compression_ratio_l1 *
                      std::pow(params.compression_level_gain, z - 1);
    t.comp_cpu[z] = params.compression_cpu_l1 *
                    std::pow(params.compression_level_cpu, z - 1);
  }
  return t;
}

void BuildQueryEnvs(const SparkSqlApp& app, const std::vector<int>& valid,
                    double datasize_gb, const ModelTables& t,
                    bool want_fingerprints, std::vector<QueryEnv>* out) {
  out->clear();
  out->reserve(valid.size());
  // Hoisted once: every query's bcast_mb uses the same sqrt argument.
  const double ds_sqrt = std::sqrt(datasize_gb / 100.0);
  for (int idx : valid) {
    const QueryProfile& q = app.queries[static_cast<size_t>(idx)];
    QueryEnv e;
    e.name = &q.name;
    if (want_fingerprints) e.qfp = FingerprintQuery(q);
    e.scanned_gb = datasize_gb * q.input_frac;
    e.scan_tasks = std::max(1.0, std::ceil(e.scanned_gb / t.p.split_gb));
    e.scan_overhead = e.scan_tasks * t.p.task_overhead_s;
    e.io_floor = e.scanned_gb / t.disk_bw;
    e.cpu_per_gb = q.cpu_per_gb;
    e.codegen_fields = CodegenFields(q.name);
    e.has_rescan = q.rescan_frac > 0.0;
    e.rescan_gb_base = e.scanned_gb * q.rescan_frac;
    e.storage_need = 0.25 + 0.65 * std::min(1.0, q.rescan_frac * 4.0);
    e.rf03 = q.rescan_frac * 0.3;
    e.has_shuffle = q.num_shuffle_stages > 0 && q.shuffle_ratio > 0.0;
    if (e.has_shuffle) {
      e.shuffle_base = e.scanned_gb * q.shuffle_ratio *
                       std::pow(datasize_gb / 100.0, q.ds_exponent);
    }
    e.stages_d = std::max(1, q.num_shuffle_stages);
    e.st015 = e.stages_d * 0.15;
    e.nss = q.num_shuffle_stages;
    e.one_nss = 1.0 + q.num_shuffle_stages;
    e.has_bcast = q.broadcastable_mb > 0.0;
    if (e.has_bcast) {
      e.bcast_mb = q.broadcastable_mb * ds_sqrt;
      e.bcast_mb1024 = e.bcast_mb * 1024.0;
      e.bcast_gb = e.bcast_mb / 1024.0;
      e.bcast_cpu_c = e.bcast_gb * t.p.compression_cpu_l1;
      e.bcast_gb_c = e.bcast_gb * t.p.compression_ratio_l1;
      e.one_minus_avoid = 1.0 - q.broadcast_avoid_frac;
    }
    e.is_join = q.category == QueryCategory::kJoin;
    e.is_agg = q.category == QueryCategory::kAggregation;
    e.cartesian = q.has_cartesian;
    e.mem_per_task_factor = q.mem_per_task_factor;
    e.shuffle_cpu_per_gb = q.shuffle_cpu_per_gb;
    e.skew = q.skew;
    e.alloc35 = e.scanned_gb * 0.35;
    out->push_back(e);
  }
}

void LoweredBatch::Resize(size_t n) {
  for (std::vector<double>* v :
       {&heap, &pool, &pool_sf, &cores_d, &slots_d, &executors_d, &exec_div,
        &offheap_per_task, &speed, &speed_wt, &cache_cpu, &rdd_tasks,
        &rdd_waves, &partitions, &raw_partitions, &red_waves, &bcast_threshold,
        &block_mb, &kryo_factor, &cartesian_factor, &comp_ratio, &comp_cpu,
        &zbuf_factor, &file_factor, &net_denom, &inflight_factor,
        &eff_threshold, &oom_mult_base, &gc_off_factor, &user_thrash, &up6,
        &gc_den1, &gc_den2, &pause, &revive_term, &lw12, &mmap_term}) {
    v->resize(n);
  }
  maxfields.resize(n);
  for (std::vector<uint8_t>* v :
       {&pruning, &prefer_smj, &bypass_sort, &radix, &agg2, &retain,
        &shuffle_compress, &spill_compress, &bcast_compress, &rdd_compress,
        &has_offheap, &oom_flag_base}) {
    v->resize(n);
  }
}

void LowerConf(const SparkConf& conf, const ModelTables& t, size_t p,
               LoweredBatch* L) {
  // ---- DeriveResources (query-independent part). The query-dependent
  // storage split is finished per query by EvalBlock's plane phase.
  const int cores =
      std::clamp(conf.GetInt(kExecutorCores), 1, t.container_max_cores);
  const double heap = std::max(1.0, conf.Get(kExecutorMemory));
  const double overhead =
      std::max(0.384, conf.Get(kExecutorMemoryOverhead) / 1024.0);
  const bool offheap_on = conf.GetBool(kMemoryOffHeapEnabled);
  const double offheap_gb =
      offheap_on ? conf.Get(kMemoryOffHeapSize) / 1024.0 : 0.0;
  const double per_exec_mem = heap + overhead + offheap_gb;
  const int requested = std::max(1, conf.GetInt(kExecutorInstances));
  const int max_by_mem =
      std::max(1, static_cast<int>(t.total_memory_gb / per_exec_mem));
  const int max_by_cores = std::max(1, t.total_cores / cores);
  const int executors = std::min({requested, max_by_mem, max_by_cores});
  const int slots = executors * cores;
  const double pool = std::max(0.1, (heap - 0.3) * conf.Get(kMemoryFraction));
  const double offheap_per_task = offheap_gb / cores;

  L->heap[p] = heap;
  L->pool[p] = pool;
  L->pool_sf[p] = pool * conf.Get(kMemoryStorageFraction);
  L->cores_d[p] = cores;
  L->slots_d[p] = slots;
  L->executors_d[p] = executors;
  L->exec_div[p] = std::max(1, executors);
  L->offheap_per_task[p] = offheap_per_task;

  const double contention =
      1.0 + t.p.core_contention *
                std::max(0, cores - t.p.contention_free_cores);
  const double speed = t.core_speed / contention;
  L->speed[p] = speed;
  L->speed_wt[p] = std::max(0.05, speed);

  // ---- scan factors.
  L->maxfields[p] = conf.GetInt(kSqlCodegenMaxFields);
  L->pruning[p] = conf.GetBool(kSqlInMemoryColumnarPruning) ? 1 : 0;
  {
    double cache_cpu = 2.0;
    if (!conf.GetBool(kSqlInMemoryColumnarCompressed)) cache_cpu *= 0.9;
    const double batch = conf.Get(kSqlInMemoryColumnarBatchSize);
    cache_cpu *= 1.0 + 0.05 * (10000.0 / std::max(2500.0, batch) - 1.0);
    L->cache_cpu[p] = cache_cpu;
  }
  const double rdd_tasks = std::max(8.0, conf.Get(kDefaultParallelism));
  L->rdd_tasks[p] = rdd_tasks;
  // WaveTime's slots clamp: slots >= 1 already, so ceil(tasks / slots_d)
  // is the wave count every WaveTime call below computes.
  L->rdd_waves[p] = std::ceil(rdd_tasks / L->slots_d[p]);

  // ---- shuffle factors.
  const double partitions = std::max(8.0, conf.Get(kSqlShufflePartitions));
  L->partitions[p] = partitions;
  L->raw_partitions[p] = conf.Get(kSqlShufflePartitions);
  L->red_waves[p] = std::ceil(partitions / L->slots_d[p]);
  L->bcast_threshold[p] = conf.Get(kSqlAutoBroadcastJoinThreshold);
  L->bcast_compress[p] = conf.GetBool(kBroadcastCompress) ? 1 : 0;
  L->block_mb[p] = std::max(1.0, conf.Get(kBroadcastBlockSize));
  {
    const double kryo_max = std::max(16.0, conf.Get(kKryoBufferMax));
    const double kryo_buf = std::max(16.0, conf.Get(kKryoBuffer));
    L->kryo_factor[p] = 1.0 + 0.08 * std::max(0.0, 64.0 / kryo_max - 0.5) +
                        0.04 * std::max(0.0, 64.0 / kryo_buf - 0.5);
  }
  L->prefer_smj[p] = conf.GetBool(kSqlPreferSortMergeJoin) ? 1 : 0;
  L->bypass_sort[p] =
      partitions <= conf.Get(kShuffleSortBypassMergeThreshold) ? 1 : 0;
  L->radix[p] = conf.GetBool(kSqlSortEnableRadixSort) ? 1 : 0;
  L->agg2[p] = conf.GetBool(kSqlCodegenAggTwoLevel) ? 1 : 0;
  L->retain[p] = conf.GetBool(kSqlRetainGroupColumns) ? 1 : 0;
  L->cartesian_factor[p] =
      1.0 + 0.3 * (4096.0 /
                       std::max(512.0, conf.Get(kSqlCartesianProductThreshold)) -
                   0.5);
  const int zlevel = std::clamp(conf.GetInt(kZstdLevel), 1, 5);
  L->comp_ratio[p] = t.comp_ratio[zlevel];
  L->comp_cpu[p] = t.comp_cpu[zlevel];
  L->shuffle_compress[p] = conf.GetBool(kShuffleCompress) ? 1 : 0;
  {
    const double zbuf = std::max(8.0, conf.Get(kZstdBufferSize));
    L->zbuf_factor[p] = 1.0 + 0.05 * (32.0 / zbuf - 0.33);
  }
  {
    const double file_buffer = std::max(8.0, conf.Get(kShuffleFileBuffer));
    L->file_factor[p] = 32.0 / file_buffer;
  }
  {
    const double conn_factor =
        std::min(1.0, 0.7 + 0.06 * conf.Get(kShuffleIoNumConnections));
    L->net_denom[p] = t.network_gbps * conn_factor;
  }
  L->inflight_factor[p] =
      0.9 + 0.1 * (48.0 / std::max(12.0, conf.Get(kReducerMaxSizeInFlight)));
  L->spill_compress[p] = conf.GetBool(kShuffleSpillCompress) ? 1 : 0;
  {
    const double overhead_need =
        0.07 * heap + 0.3 +
        0.004 * conf.Get(kReducerMaxSizeInFlight) * cores;
    const double overhead_adequacy = std::min(1.0, overhead / overhead_need);
    L->eff_threshold[p] =
        t.p.oom_threshold * (0.45 + 0.55 * overhead_adequacy);
    const double kill_risk = std::max(0.0, 1.0 - overhead_adequacy);
    L->oom_mult_base[p] = 1.0 + 1.2 * kill_risk * kill_risk;
    L->oom_flag_base[p] = kill_risk > 0.5 ? 1 : 0;
  }

  // ---- GC / latency factors.
  L->rdd_compress[p] = conf.GetBool(kRddCompress) ? 1 : 0;
  L->has_offheap[p] = offheap_per_task > 0.0 ? 1 : 0;
  if (offheap_per_task > 0.0) {
    const double offheap_total = offheap_per_task * cores;
    L->gc_off_factor[p] = 1.0 - 0.5 * offheap_total / (offheap_total + pool);
  } else {
    L->gc_off_factor[p] = 1.0;
  }
  {
    const double user_mem =
        std::max(0.02, (heap - 0.3) * (1.0 - conf.Get(kMemoryFraction)));
    const double user_need =
        t.p.user_mem_base_gb + t.p.user_mem_per_core_gb * cores;
    const double user_pressure = std::max(0.0, user_need / user_mem - 1.0);
    L->user_thrash[p] = 1.0 + 3.0 * user_pressure;
    L->up6[p] = user_pressure * 6.0;
  }
  L->gc_den1[p] = std::max(0.4, pool * 0.8);
  L->gc_den2[p] = std::max(0.5, heap);
  L->pause[p] = t.p.gc_pause_s_per_gb * std::pow(heap, 1.1);
  L->revive_term[p] = 0.03 * (conf.Get(kSchedulerReviveInterval) - 1.0);
  L->lw12[p] = 0.12 * conf.Get(kLocalityWait);
  L->mmap_term[p] =
      0.02 * (10.0 - conf.Get(kStorageMemoryMapThreshold)) / 10.0;
}

void CellPlanes::Resize(size_t cells) {
  for (std::vector<double>* v : {&exec, &gc, &scan, &shuffle_s, &shuffle_gb,
                                 &spill_gb, &waves, &severity}) {
    v->resize(cells);
  }
  oom.resize(cells);
}

namespace {

// One (configuration, query) cell: the scan/shuffle/GC/totals phases of
// SimulateQuery with every conf-only and query-only subexpression already
// hoisted. `empt` is exec_mem_per_task_gb from the plane phase.
void EvalCell(const ModelTables& t, const QueryEnv& e, const LoweredBatch& L,
              size_t p, double empt, size_t c, CellPlanes* out) {
  const double slots = L.slots_d[p];
  const double speed_wt = L.speed_wt[p];

  // ---------------------------------------------------------------- scan
  double scan_cpu_per_gb = e.cpu_per_gb;
  if (e.codegen_fields > L.maxfields[p]) scan_cpu_per_gb *= 1.12;
  double rescan_cost = 0.0;
  if (e.has_rescan) {
    double rescan_gb = e.rescan_gb_base;
    if (L.pruning[p]) rescan_gb *= 0.7;
    rescan_cost = rescan_gb * L.cache_cpu[p];
  }
  const double scan_core_seconds =
      e.scanned_gb * scan_cpu_per_gb + rescan_cost;
  const double scan_waves = std::ceil(e.scan_tasks / slots);
  const double rdd_share = 0.2;
  double scan_cpu_time;
  {
    double w1 = 0.0;
    const double cs1 = scan_core_seconds * (1.0 - rdd_share);
    if (cs1 > 0.0) {
      const double per_task = cs1 / e.scan_tasks / speed_wt;
      w1 = per_task * (scan_waves - 1.0 + std::max(1.0, 1.1));
    }
    double w2 = 0.0;
    const double cs2 = scan_core_seconds * rdd_share;
    if (cs2 > 0.0) {
      const double per_task = cs2 / L.rdd_tasks[p] / speed_wt;
      w2 = per_task * (L.rdd_waves[p] - 1.0 + std::max(1.0, 1.1));
    }
    scan_cpu_time = w1 + w2;
  }
  const double scan_seconds =
      std::max(scan_cpu_time, e.io_floor) + e.scan_overhead;

  // ------------------------------------------------------------- shuffle
  double shuffle_time = 0.0;
  double spill_gb = 0.0;
  double shuffle_gb = 0.0;
  double severity = 0.0;
  bool oom = false;
  if (e.has_shuffle) {
    shuffle_gb = e.shuffle_base;
    double broadcast_time = 0.0;
    if (e.has_bcast && e.bcast_mb1024 <= L.bcast_threshold[p]) {
      shuffle_gb *= e.one_minus_avoid;
      double bcast_gb = e.bcast_gb;
      double bcast_cpu = 0.0;
      if (L.bcast_compress[p]) {
        bcast_cpu = e.bcast_cpu_c;
        bcast_gb = e.bcast_gb_c;
      }
      const double piece_overhead = (e.bcast_mb / L.block_mb[p]) * 0.002;
      broadcast_time = bcast_gb * L.executors_d[p] / t.network_gbps /
                           t.worker_nodes +
                       bcast_cpu / L.speed[p] + piece_overhead;
    }

    const double partitions = L.partitions[p];
    const double stages = e.stages_d;

    double map_cpu = shuffle_gb * 1.2;
    map_cpu *= L.kryo_factor[p];
    double mem_demand_factor = e.mem_per_task_factor;
    if (e.is_join && !L.prefer_smj[p]) {
      mem_demand_factor *= 1.6;
    } else if (!L.bypass_sort[p]) {
      double sort_cpu = t.p.map_sort_cpu;
      if (e.is_agg && L.radix[p]) sort_cpu *= 0.8;
      map_cpu += shuffle_gb * sort_cpu;
    }
    if (e.is_agg) {
      if (L.agg2[p]) map_cpu *= 0.88;
      if (L.retain[p]) map_cpu *= 1.02;
    }
    if (e.cartesian) map_cpu *= L.cartesian_factor[p];

    double wire_gb = shuffle_gb;
    if (L.shuffle_compress[p]) {
      map_cpu += shuffle_gb * L.comp_cpu[p] * L.zbuf_factor[p];
      wire_gb = shuffle_gb * L.comp_ratio[p];
    }
    map_cpu += shuffle_gb * 0.35 * L.file_factor[p];

    double map_time;
    {
      double w = 0.0;
      if (map_cpu > 0.0) {
        const double per_task = map_cpu / e.scan_tasks / speed_wt;
        w = per_task * (scan_waves - 1.0 + std::max(1.0, 1.15));
      }
      map_time = w + wire_gb / t.disk_bw;
    }

    const double net_time =
        wire_gb / L.net_denom[p] * L.inflight_factor[p];

    const double partition_gb = shuffle_gb / partitions;
    const double demand_gb = partition_gb * mem_demand_factor;
    const double avail_gb = empt + L.offheap_per_task[p];

    double reduce_cpu = shuffle_gb * e.shuffle_cpu_per_gb;
    if (L.shuffle_compress[p]) {
      reduce_cpu += shuffle_gb * t.p.decompression_cpu;
    }

    double spill_time = 0.0;
    if (demand_gb > avail_gb) {
      const double spill_ratio = 1.0 - avail_gb / demand_gb;
      const double merge_passes =
          1.0 + std::log2(std::max(1.0, demand_gb / avail_gb));
      spill_gb = shuffle_gb * spill_ratio * (1.0 + merge_passes);
      double spill_disk_gb = spill_gb;
      if (L.spill_compress[p]) {
        reduce_cpu += spill_gb * L.comp_cpu[p] * 0.8;
        spill_disk_gb *= L.comp_ratio[p];
      }
      reduce_cpu += spill_gb * t.p.spill_cpu_per_gb;
      spill_time = spill_disk_gb / t.disk_bw;
    }

    double oom_multiplier = L.oom_mult_base[p];
    oom = L.oom_flag_base[p] != 0;
    const double pressure_ratio = demand_gb / std::max(1e-3, avail_gb);
    severity = pressure_ratio / L.eff_threshold[p];
    if (pressure_ratio > L.eff_threshold[p]) {
      oom_multiplier =
          std::min(t.p.oom_penalty_cap,
                   oom_multiplier + t.p.oom_penalty * std::log2(severity));
      oom = true;
    }

    double reduce_time;
    {
      double w = 0.0;
      if (reduce_cpu > 0.0) {
        const double per_task = reduce_cpu / partitions / speed_wt;
        w = per_task * (L.red_waves[p] - 1.0 + std::max(1.0, e.skew));
      }
      reduce_time = w + net_time + spill_time +
                    partitions * stages * t.p.task_overhead_s +
                    std::min(partitions * e.scan_tasks, shuffle_gb / 6.4e-5) *
                        stages * 1.0e-5;
    }

    shuffle_time = (map_time + reduce_time) * oom_multiplier +
                   broadcast_time + e.st015;
  }

  // ------------------------------------------------------------------ GC
  double alloc_gb = e.alloc35 + shuffle_gb * 1.2 + spill_gb * 0.5;
  if (L.rdd_compress[p]) alloc_gb *= 0.92;
  const double pool = L.pool[p];
  if (L.has_offheap[p]) alloc_gb *= L.gc_off_factor[p];
  const double alloc_per_exec = alloc_gb / L.exec_div[p];
  const double concurrent_demand =
      L.cores_d[p] * std::min(e.mem_per_task_factor * shuffle_gb /
                                  L.partitions[p],
                              empt * 1.5);
  const double occupancy =
      std::min(1.5, concurrent_demand / pool + e.rf03 + 0.15);
  const double thrash =
      1.0 + t.p.gc_pressure_coeff *
                std::pow(std::max(0.0, occupancy - 0.6), 2.0);
  const double full_gc_count =
      std::ceil(alloc_per_exec / L.gc_den1[p]) +
      L.up6[p] * alloc_per_exec / L.gc_den2[p];
  const double gc_seconds =
      alloc_per_exec * t.p.gc_base_s_per_gb * thrash * L.user_thrash[p] +
      full_gc_count * L.pause[p] * std::min(1.0, alloc_per_exec / pool);

  // -------------------------------------------------------------- totals
  const double total_waves =
      scan_waves +
      (e.nss > 0 ? std::ceil(L.raw_partitions[p] / slots) : 0.0);
  double latency = t.p.query_latency_s;
  latency += L.revive_term[p] * total_waves;
  latency += L.lw12[p] * e.one_nss * 0.3;
  latency += L.mmap_term[p];

  out->scan[c] = scan_seconds;
  out->shuffle_s[c] = shuffle_time;
  out->shuffle_gb[c] = shuffle_gb;
  out->spill_gb[c] = spill_gb;
  out->gc[c] = gc_seconds;
  out->severity[c] = severity;
  out->oom[c] = oom ? 1 : 0;
  out->waves[c] = total_waves;
  out->exec[c] = scan_seconds + shuffle_time + gc_seconds + latency;
}

}  // namespace

void EvalBlock(const ModelTables& t, const std::vector<QueryEnv>& envs,
               const LoweredBatch& L, size_t p0, size_t p1,
               const uint8_t* cell_hit, CellPlanes* out, size_t out_p0,
               size_t out_stride) {
#if defined(__x86_64__) || defined(_M_X64)
  if (math::kern::ActiveBackend() == math::kern::Backend::kAvx2) {
    EvalBlockAvx2(t, envs, L, p0, p1, out, out_p0, out_stride);
    return;
  }
#endif
  constexpr size_t kSub = 256;
  alignas(64) double storage_pool[kSub];
  alignas(64) double exec_avail[kSub];
  alignas(64) double empt[kSub];
  const size_t nq = envs.size();
  for (size_t s0 = p0; s0 < p1; s0 += kSub) {
    const size_t sn = std::min(kSub, p1 - s0);
    for (size_t qi = 0; qi < nq; ++qi) {
      const QueryEnv& e = envs[qi];
      // Memory-demand plane phase: finish DeriveResources' query-dependent
      // storage split for all lanes of the sub-block at once. Same op
      // sequence as the scalar code: storage_pool = (pool * sf) *
      // storage_need, exec_avail = max(0.05, pool - storage_pool),
      // exec_mem_per_task = exec_avail / cores.
      math::kern::MulScalar(e.storage_need, L.pool_sf.data() + s0,
                            storage_pool, sn);
      math::kern::SubtractShift(L.pool.data() + s0, storage_pool, 0.0,
                                exec_avail, sn);
      math::kern::MaxScalar(0.05, exec_avail, exec_avail, sn);
      for (size_t l = 0; l < sn; ++l) {
        empt[l] = exec_avail[l] / L.cores_d[s0 + l];
      }
      for (size_t l = 0; l < sn; ++l) {
        const size_t p = s0 + l;
        const size_t c = qi * out_stride + (p - out_p0);
        if (cell_hit != nullptr && cell_hit[c] != 0) continue;
        EvalCell(t, e, L, p, empt[l], c, out);
      }
    }
  }
}

void MetricsFromPlanes(const CellPlanes& planes, size_t c, const QueryEnv& env,
                       QueryMetrics* out) {
  out->name = *env.name;
  out->exec_seconds = planes.exec[c];
  out->gc_seconds = planes.gc[c];
  out->scan_seconds = planes.scan[c];
  out->shuffle_seconds = planes.shuffle_s[c];
  out->shuffle_gb = planes.shuffle_gb[c];
  out->spill_gb = planes.spill_gb[c];
  out->scan_tasks = env.scan_tasks;
  out->task_waves = planes.waves[c];
  out->oom = planes.oom[c] != 0;
  out->oom_severity = planes.severity[c];
  out->failed = false;
  out->retries = 0;
}

}  // namespace locat::sparksim::batch
