#include "sparksim/event_log.h"

#include <cmath>
#include <sstream>
#include <string_view>

namespace locat::sparksim {
namespace {

// Appends `s` with '"' and '\\' escaped into `out` (not cleared), so the
// writer can reuse one buffer across fields instead of allocating a fresh
// string per Escape call.
void AppendEscaped(const std::string& s, std::string* out) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

// Minimal field scanner for the flat JSON lines WriteEventLog emits; not
// a general JSON parser. Returns the position right after `"key":`
// without materializing a needle string per lookup, or npos.
size_t ValuePos(std::string_view line, std::string_view key) {
  size_t from = 0;
  while (true) {
    const size_t pos = line.find(key, from);
    if (pos == std::string_view::npos) return std::string_view::npos;
    const size_t end = pos + key.size();
    if (pos > 0 && line[pos - 1] == '"' && end + 1 < line.size() &&
        line[end] == '"' && line[end + 1] == ':') {
      return end + 2;
    }
    from = pos + 1;
  }
}

bool FindString(const std::string& line, std::string_view key,
                std::string* out) {
  size_t pos = ValuePos(line, key);
  if (pos == std::string_view::npos || pos >= line.size() ||
      line[pos] != '"') {
    return false;
  }
  ++pos;  // consume the opening quote
  std::string value;
  for (size_t i = pos; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      value.push_back(line[++i]);
    } else if (line[i] == '"') {
      *out = value;
      return true;
    } else {
      value.push_back(line[i]);
    }
  }
  return false;
}

bool FindNumber(const std::string& line, std::string_view key, double* out) {
  const size_t pos = ValuePos(line, key);
  if (pos == std::string_view::npos) return false;
  const char* start = line.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(start, &end);
  if (end == start) return false;
  *out = v;
  return true;
}

bool FindBool(const std::string& line, std::string_view key, bool* out) {
  const size_t pos = ValuePos(line, key);
  if (pos == std::string_view::npos) return false;
  *out = line.compare(pos, 4, "true") == 0;
  return true;
}

}  // namespace

void WriteEventLog(const std::string& app_name, double datasize_gb,
                   const AppRunResult& run, std::ostream& os) {
  os.precision(10);
  std::string escaped;
  AppendEscaped(app_name, &escaped);
  os << "{\"Event\":\"ApplicationStart\",\"App Name\":\"" << escaped
     << "\",\"Datasize GB\":" << datasize_gb << "}\n";
  for (const auto& q : run.per_query) {
    escaped.clear();
    AppendEscaped(q.name, &escaped);
    os << "{\"Event\":\"JobEnd\",\"Query\":\"" << escaped
       << "\",\"Duration\":" << q.exec_seconds
       << ",\"GC Time\":" << q.gc_seconds
       << ",\"Shuffle GB\":" << q.shuffle_gb
       << ",\"OOM\":" << (q.oom ? "true" : "false") << "}\n";
  }
  os << "{\"Event\":\"ApplicationEnd\",\"Total Duration\":"
     << run.total_seconds << "}\n";
}

StatusOr<EventLog> ParseEventLog(const std::string& text) {
  EventLog log;
  bool saw_start = false;
  bool saw_end = false;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::string event;
    if (!FindString(line, "Event", &event)) {
      return Status::InvalidArgument("line without an Event field: " + line);
    }
    if (event == "ApplicationStart") {
      saw_start = true;
      FindString(line, "App Name", &log.app_name);
      FindNumber(line, "Datasize GB", &log.datasize_gb);
    } else if (event == "JobEnd") {
      QueryLogEntry entry;
      if (!FindString(line, "Query", &entry.query) ||
          !FindNumber(line, "Duration", &entry.exec_seconds)) {
        return Status::InvalidArgument("malformed JobEnd line: " + line);
      }
      FindNumber(line, "GC Time", &entry.gc_seconds);
      FindNumber(line, "Shuffle GB", &entry.shuffle_gb);
      FindBool(line, "OOM", &entry.oom);
      log.queries.push_back(std::move(entry));
    } else if (event == "ApplicationEnd") {
      saw_end = true;
      FindNumber(line, "Total Duration", &log.total_seconds);
    }
    // Unknown events: skipped (forward compatibility).
  }
  if (!saw_start || !saw_end) {
    return Status::InvalidArgument(
        "event log missing ApplicationStart/ApplicationEnd");
  }
  return log;
}

StatusOr<std::vector<std::vector<double>>> QcsaMatrixFromLogs(
    const std::vector<EventLog>& logs) {
  if (logs.empty()) {
    return Status::InvalidArgument("no event logs provided");
  }
  const size_t num_queries = logs.front().queries.size();
  std::vector<std::vector<double>> matrix(num_queries);
  for (const EventLog& log : logs) {
    if (log.queries.size() != num_queries) {
      return Status::InvalidArgument(
          "event logs disagree on the number of queries");
    }
    for (size_t q = 0; q < num_queries; ++q) {
      if (log.queries[q].query != logs.front().queries[q].query) {
        return Status::InvalidArgument("event logs disagree on query order");
      }
      matrix[q].push_back(log.queries[q].exec_seconds);
    }
  }
  return matrix;
}

}  // namespace locat::sparksim
