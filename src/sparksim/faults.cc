#include "sparksim/faults.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "sparksim/simulator.h"

namespace locat::sparksim {
namespace {

// Local copies of the eval-cache mixers: faults.cc must not depend on
// eval_cache.cc internals, but the fingerprints feed the same key space.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t MixWord(uint64_t h, uint64_t w) {
  h ^= SplitMix64(w);
  h *= 1099511628211ULL;
  return h;
}

uint64_t MixDouble(uint64_t h, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return MixWord(h, bits);
}

}  // namespace

FaultSpec FaultSpec::Off() { return FaultSpec{}; }

FaultSpec FaultSpec::Light(uint64_t seed) {
  FaultSpec s;
  s.level = FaultLevel::kLight;
  s.seed = seed;
  s.executor_loss_prob = 0.02;
  s.executor_loss_frac = 0.25;
  s.straggler_prob = 0.03;
  s.straggler_mult = 1.5;
  s.fetch_failure_prob = 0.02;
  s.kill_severity = 3.0;
  s.kill_prob = 0.3;
  return s;
}

FaultSpec FaultSpec::Heavy(uint64_t seed) {
  FaultSpec s;
  s.level = FaultLevel::kHeavy;
  s.seed = seed;
  s.executor_loss_prob = 0.10;
  s.executor_loss_frac = 0.5;
  s.straggler_prob = 0.10;
  s.straggler_mult = 2.5;
  s.fetch_failure_prob = 0.08;
  s.kill_severity = 1.2;
  s.kill_prob = 0.8;
  return s;
}

StatusOr<FaultSpec> FaultSpec::FromName(const std::string& name,
                                        uint64_t seed) {
  if (name == "off") return Off();
  if (name == "light") return Light(seed);
  if (name == "heavy") return Heavy(seed);
  return Status::InvalidArgument("unknown fault level '" + name +
                                 "' (expected off|light|heavy)");
}

uint64_t FingerprintFaultSpec(const FaultSpec& spec) {
  if (!spec.enabled()) return 0;
  uint64_t h = SplitMix64(0xfa017c75ULL);
  h = MixWord(h, static_cast<uint64_t>(spec.level));
  h = MixWord(h, spec.seed);
  h = MixDouble(h, spec.executor_loss_prob);
  h = MixDouble(h, spec.executor_loss_frac);
  h = MixDouble(h, spec.straggler_prob);
  h = MixDouble(h, spec.straggler_mult);
  h = MixDouble(h, spec.fetch_failure_prob);
  h = MixDouble(h, spec.kill_severity);
  h = MixDouble(h, spec.kill_prob);
  // A live spec must never collide with the "faults off" sentinel.
  return h == 0 ? 1 : h;
}

void DrawRunFaults(Rng* rng, size_t num_queries, double* draws) {
  const size_t total = FaultDrawCount(num_queries);
  for (size_t i = 0; i < total; ++i) draws[i] = rng->NextDouble();
}

int FaultKillIndex(const FaultSpec& spec, const double* draws,
                   const QueryMetrics* metrics, size_t count) {
  if (!spec.enabled()) return -1;
  for (size_t i = 0; i < count; ++i) {
    const double* qd = draws + kFaultDrawsPerRun + kFaultDrawsPerQuery * i;
    if (metrics[i].oom_severity >= spec.kill_severity &&
        qd[3] < spec.kill_prob) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

FaultOutcome ApplyRunFaults(const FaultSpec& spec, const double* draws,
                            int executors_requested, QueryMetrics* metrics,
                            size_t count) {
  FaultOutcome out;
  out.queries_run = count;
  if (!spec.enabled()) return out;

  // Run-level executor loss: from a deterministic point in the query
  // sequence onwards, capacity shrinks and lost tasks re-run on the
  // survivors, stretching runtime by roughly 1/(1-frac) plus a re-run tax.
  bool loss_event = draws[0] < spec.executor_loss_prob;
  double loss_factor = 1.0;
  size_t loss_from = count;
  if (loss_event && count > 0) {
    const double frac =
        std::clamp(draws[1] * spec.executor_loss_frac, 0.0, 0.9);
    loss_from = static_cast<size_t>(draws[2] * static_cast<double>(count));
    if (loss_from >= count) loss_from = count - 1;
    loss_factor = 1.0 / (1.0 - frac) * (1.0 + 0.3 * frac);
    out.lost_executors = std::max(
        1, static_cast<int>(std::lround(frac * std::max(1, executors_requested))));
    out.executor_losses = 1;
  }

  for (size_t i = 0; i < count; ++i) {
    const double* qd = draws + kFaultDrawsPerRun + kFaultDrawsPerQuery * i;
    QueryMetrics& m = metrics[i];

    if (loss_event && i >= loss_from) {
      m.exec_seconds *= loss_factor;
      m.scan_seconds *= loss_factor;
      m.shuffle_seconds *= loss_factor;
      m.gc_seconds *= loss_factor;
    }

    if (qd[2] < spec.fetch_failure_prob && m.shuffle_seconds > 0.0) {
      // Fetch failure: the wide stage is retried once.
      m.exec_seconds += m.shuffle_seconds;
      m.retries += 1;
      out.retries += 1;
      out.fetch_failures += 1;
    }

    if (qd[0] < spec.straggler_prob) {
      const double f = 1.0 + qd[1] * (spec.straggler_mult - 1.0);
      m.exec_seconds *= f;
      m.scan_seconds *= f;
      m.shuffle_seconds *= f;
      m.gc_seconds *= f;
      out.stragglers += 1;
    }

    if (m.oom_severity >= spec.kill_severity && qd[3] < spec.kill_prob) {
      m.failed = true;
      out.killed = true;
      out.killed_at = static_cast<int>(i);
      out.queries_run = i + 1;
      break;
    }
  }
  return out;
}

}  // namespace locat::sparksim
