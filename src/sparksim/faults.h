#ifndef LOCAT_SPARKSIM_FAULTS_H_
#define LOCAT_SPARKSIM_FAULTS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace locat::sparksim {

struct QueryMetrics;

/// Which fault intensity a simulator injects. The presets mirror what the
/// paper's physical clusters actually exhibit: occasional executor/Yarn
/// kills ("light") up to a misbehaving busy cluster ("heavy").
enum class FaultLevel { kOff = 0, kLight = 1, kHeavy = 2 };

/// Seedable description of a deterministic fault-injection plan. The spec
/// is *static* — it fixes probabilities and magnitudes; the per-run fault
/// schedule is drawn from a dedicated RNG stream (seeded by `seed`) in
/// strict run order, so the same spec + seed reproduces the same faults
/// for any thread count and with the eval cache on or off.
struct FaultSpec {
  FaultLevel level = FaultLevel::kOff;
  /// Seed of the fault stream (independent of the simulator noise seed so
  /// enabling faults never perturbs the noise draws).
  uint64_t seed = 0;

  /// Per-run probability that the cluster loses executors mid-run. The
  /// shrunken capacity slows every query from a deterministic loss point
  /// onwards (lost tasks re-run on the survivors).
  double executor_loss_prob = 0.0;
  /// Maximum fraction of requested executors lost in one event.
  double executor_loss_frac = 0.0;
  /// Per-query probability of a straggler wave (a slow node stretches the
  /// whole query by up to `straggler_mult`).
  double straggler_prob = 0.0;
  double straggler_mult = 1.0;
  /// Per-query probability of a fetch failure: the wide stage re-runs
  /// once (Spark's stage retry).
  double fetch_failure_prob = 0.0;
  /// Hard app kill: a query whose OOM severity (demand/threshold
  /// overshoot, see QueryMetrics::oom_severity) reaches this bound kills
  /// the whole application with probability `kill_prob`. Queries after
  /// the kill never run.
  double kill_severity = std::numeric_limits<double>::infinity();
  double kill_prob = 0.0;

  bool enabled() const { return level != FaultLevel::kOff; }

  static FaultSpec Off();
  static FaultSpec Light(uint64_t seed);
  static FaultSpec Heavy(uint64_t seed);
  /// Parses "off" | "light" | "heavy" (InvalidArgument otherwise).
  static StatusOr<FaultSpec> FromName(const std::string& name, uint64_t seed);
};

/// Content fingerprint of a fault plan, folded into the simulator's cache
/// environment fingerprint so cached entries are never shared across
/// fault plans. Exactly 0 for a disabled spec: faults off keeps the
/// pre-fault cache key space bit-for-bit.
uint64_t FingerprintFaultSpec(const FaultSpec& spec);

/// Cumulative fault-event counters of one simulator (exported as
/// locat_sim_faults_* metrics by the CLI).
struct FaultStats {
  uint64_t executor_losses = 0;
  uint64_t stragglers = 0;
  uint64_t fetch_failures = 0;
  uint64_t app_kills = 0;
  uint64_t failed_runs = 0;  // runs that ended killed
};

/// Fixed number of uniform draws one run consumes: 3 run-level draws
/// (loss event, loss magnitude, loss point) plus 4 per query (straggler
/// event, straggler magnitude, fetch failure, kill). The count never
/// depends on outcomes, so the fault RNG stream is identical across
/// cache hits, thread counts and batch shapes.
constexpr size_t kFaultDrawsPerRun = 3;
constexpr size_t kFaultDrawsPerQuery = 4;
constexpr size_t FaultDrawCount(size_t num_queries) {
  return kFaultDrawsPerRun + kFaultDrawsPerQuery * num_queries;
}

/// Fills draws[0 .. FaultDrawCount(num_queries)) from `rng` in the
/// canonical order above.
void DrawRunFaults(Rng* rng, size_t num_queries, double* draws);

/// Outcome of one run's fault schedule.
struct FaultOutcome {
  size_t queries_run = 0;  // < count when the app was killed
  bool killed = false;
  int killed_at = -1;      // index into the run's query list
  int lost_executors = 0;
  int retries = 0;         // stage retries across all queries
  uint64_t executor_losses = 0;
  uint64_t stragglers = 0;
  uint64_t fetch_failures = 0;
};

/// Index of the query that kills the app under this schedule, or -1. Pure
/// function of the *noise-free* severities and the pre-drawn uniforms, so
/// callers can decide cache admission before noise or faults are applied
/// (failed runs must bypass the eval cache's noise-free entries).
int FaultKillIndex(const FaultSpec& spec, const double* draws,
                   const QueryMetrics* metrics, size_t count);

/// Applies the schedule to `metrics[0..count)` in place (after noise):
/// executor-loss capacity stretch, fetch-failure stage retries, straggler
/// multipliers, then the hard kill (consistent with FaultKillIndex).
/// `executors_requested` sizes the executor-loss count.
FaultOutcome ApplyRunFaults(const FaultSpec& spec, const double* draws,
                            int executors_requested, QueryMetrics* metrics,
                            size_t count);

}  // namespace locat::sparksim

#endif  // LOCAT_SPARKSIM_FAULTS_H_
