#ifndef LOCAT_WORKLOADS_WORKLOADS_H_
#define LOCAT_WORKLOADS_WORKLOADS_H_

#include <vector>

#include "sparksim/query_profile.h"

namespace locat::workloads {

/// TPC-DS as used in the paper: 104 queries (1..99 plus the a/b variants
/// of 14, 23, 24, 39, and 64). Profiles are calibrated so the paper's
/// per-query facts hold: Q72 shuffles ~52 GB per 100 GB input and is the
/// most configuration-sensitive query; Q04 is long but insensitive; Q08
/// shuffles ~5 MB; the Section 5.11 selection queries {Q09, Q13, Q16, Q28,
/// Q32, Q38, Q48, Q61, Q84, Q87, Q88, Q94, Q96} are light on shuffle; the
/// 23 queries of Section 5.2 form the configuration-sensitive set.
sparksim::SparkSqlApp TpcDs();

/// TPC-H: 22 queries; the join-heavy ones (Q5, Q7, Q8, Q9, Q17, Q18, Q21)
/// are configuration sensitive.
sparksim::SparkSqlApp TpcH();

/// HiBench Join: one query with Map and Reduce phases (shuffle heavy).
sparksim::SparkSqlApp HiBenchJoin();

/// HiBench Scan: one Map-only "select" query (no shuffle).
sparksim::SparkSqlApp HiBenchScan();

/// HiBench Aggregation: one Map+Reduce "group by" query.
sparksim::SparkSqlApp HiBenchAggregation();

/// The five benchmark applications of Table 1, in table order.
std::vector<sparksim::SparkSqlApp> AllBenchmarks();

/// The five input data sizes of Table 1: 100..500 GB.
std::vector<double> StandardDataSizesGb();

}  // namespace locat::workloads

#endif  // LOCAT_WORKLOADS_WORKLOADS_H_
