#include <algorithm>
#include <array>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "workloads/workloads.h"

namespace locat::workloads {
namespace {

using sparksim::QueryCategory;
using sparksim::QueryProfile;
using sparksim::SparkSqlApp;

QueryProfile Selection(const std::string& name, double input_frac,
                       double cpu_per_gb) {
  QueryProfile q;
  q.name = name;
  q.category = QueryCategory::kSelection;
  q.input_frac = input_frac;
  q.cpu_per_gb = cpu_per_gb;
  q.shuffle_ratio = 0.0005;  // a few MB of final-result exchange
  q.num_shuffle_stages = 1;
  q.shuffle_cpu_per_gb = 8.0;
  q.mem_per_task_factor = 0.6;
  q.skew = 1.1;
  return q;
}

QueryProfile Join(const std::string& name, double input_frac,
                  double cpu_per_gb, double shuffle_ratio, int stages,
                  double mem_factor, double skew, double broadcastable_mb,
                  double ds_exponent) {
  QueryProfile q;
  q.name = name;
  q.category = QueryCategory::kJoin;
  q.input_frac = input_frac;
  q.cpu_per_gb = cpu_per_gb;
  q.shuffle_ratio = shuffle_ratio;
  q.shuffle_cpu_per_gb = 55.0;
  q.num_shuffle_stages = stages;
  q.mem_per_task_factor = mem_factor;
  q.skew = skew;
  q.broadcastable_mb = broadcastable_mb;
  q.ds_exponent = ds_exponent;
  return q;
}

QueryProfile Agg(const std::string& name, double input_frac,
                 double cpu_per_gb, double shuffle_ratio, int stages,
                 double mem_factor, double skew) {
  QueryProfile q;
  q.name = name;
  q.category = QueryCategory::kAggregation;
  q.input_frac = input_frac;
  q.cpu_per_gb = cpu_per_gb;
  q.shuffle_ratio = shuffle_ratio;
  q.shuffle_cpu_per_gb = 48.0;
  q.num_shuffle_stages = stages;
  q.mem_per_task_factor = mem_factor;
  q.skew = skew;
  return q;
}

// Cheap deterministic hash for synthesizing the unprofiled queries.
uint64_t NameHash(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

double HashUnit(uint64_t h, int salt) {
  h ^= static_cast<uint64_t>(salt) * 0x9E3779B97F4A7C15ULL;
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Profiles for the queries the paper describes explicitly.
std::map<std::string, QueryProfile> ExplicitProfiles() {
  std::map<std::string, QueryProfile> p;

  // --- The 23 configuration-sensitive queries of Section 5.2, roughly in
  // the paper's CV order (Q72 CV ~3.49 down to Q20 near the tertile
  // boundary). Shuffle-heavy plans with large per-task working sets.
  p["q72"] = Join("q72", 0.55, 5, 0.95, 3, 16.0, 2.2, 0, 0.15);  // 52 GB
  p["q29"] = Join("q29", 0.45, 5, 0.80, 3, 14.0, 2.1, 0, 0.12);
  p["q14b"] = Join("q14b", 0.50, 5, 0.78, 3, 17.0, 2.0, 0, 0.12);
  p["q43"] = Agg("q43", 0.35, 5, 0.70, 2, 19.0, 1.9);
  p["q41"] = Join("q41", 0.30, 5, 0.72, 2, 13.0, 1.9, 0, 0.10);
  p["q99"] = Agg("q99", 0.40, 5, 0.66, 2, 19.0, 1.9);
  p["q57"] = Agg("q57", 0.35, 5, 0.64, 3, 18.0, 1.8);
  p["q33"] = Join("q33", 0.35, 5, 0.62, 2, 12.5, 1.8, 60, 0.10);
  p["q14a"] = Join("q14a", 0.50, 5, 0.62, 3, 12.5, 1.8, 0, 0.12);
  p["q69"] = Join("q69", 0.35, 5, 0.60, 2, 12.5, 1.8, 0, 0.10);
  p["q40"] = Join("q40", 0.30, 5, 0.58, 2, 15.0, 1.8, 80, 0.10);
  p["q64a"] = Join("q64a", 0.45, 5, 0.58, 3, 12.0, 1.8, 0, 0.12);
  p["q50"] = Join("q50", 0.30, 5, 0.55, 2, 15.0, 1.7, 0, 0.08);
  p["q21"] = Agg("q21", 0.25, 5, 0.55, 2, 32.0, 1.7);
  p["q70"] = Agg("q70", 0.35, 5, 0.52, 2, 25.0, 1.7);
  p["q95"] = Join("q95", 0.30, 5, 0.52, 3, 16.0, 1.7, 0, 0.10);
  p["q54"] = Join("q54", 0.30, 5, 0.50, 2, 30.0, 1.7, 70, 0.08);
  p["q23a"] = Join("q23a", 0.50, 5, 0.50, 3, 12.0, 1.7, 0, 0.10);
  p["q23b"] = Join("q23b", 0.50, 5, 0.48, 3, 12.0, 1.7, 0, 0.10);
  p["q15"] = Join("q15", 0.25, 4.5, 0.48, 2, 35.0, 1.6, 60, 0.08);
  p["q58"] = Join("q58", 0.30, 5, 0.46, 2, 30.0, 1.6, 90, 0.08);
  p["q62"] = Agg("q62", 0.25, 5, 0.45, 2, 38.0, 1.6);
  p["q20"] = Agg("q20", 0.25, 5, 0.44, 2, 38.0, 1.6);

  // --- Long but configuration-insensitive: Q04 (CV ~0.24, ~80 s): a huge
  // I/O-bound scan over three channel tables with little shuffle.
  p["q04"] = Agg("q04", 0.95, 5, 0.04, 2, 0.8, 1.2);
  p["q11"] = Agg("q11", 0.80, 5, 0.04, 2, 0.8, 1.2);
  p["q74"] = Agg("q74", 0.70, 5, 0.04, 2, 0.8, 1.2);
  p["q78"] = Join("q78", 0.75, 4.5, 0.05, 2, 0.9, 1.2, 0, 0.0);

  // --- Q08: shuffle operations process only ~5 MB (Section 5.11).
  p["q08"] = Join("q08", 0.10, 4.5, 0.00005, 1, 0.6, 1.1, 30, 0.0);

  // --- The Section 5.11 selection queries: simple filter logic, ~5 cores
  // and ~8 GB suffice, no meaningful shuffle.
  p["q09"] = Selection("q09", 0.30, 4.5);
  p["q13"] = Selection("q13", 0.25, 4.5);
  p["q16"] = Selection("q16", 0.20, 4.5);
  p["q28"] = Selection("q28", 0.30, 4.5);
  p["q32"] = Selection("q32", 0.12, 4.5);
  p["q38"] = Selection("q38", 0.25, 4.5);
  p["q48"] = Selection("q48", 0.20, 4.5);
  p["q61"] = Selection("q61", 0.15, 4.5);
  p["q84"] = Selection("q84", 0.10, 4.5);
  p["q87"] = Selection("q87", 0.25, 4.5);
  p["q88"] = Selection("q88", 0.35, 4.5);
  p["q94"] = Selection("q94", 0.15, 4.5);
  p["q96"] = Selection("q96", 0.12, 4.5);

  // A cartesian-product plan so the cartesianProductExec threshold has a
  // (small) observable effect somewhere in the suite.
  p["q28"].has_cartesian = true;

  // A couple of CTE-reuse queries exercising the in-memory columnar cache.
  p["q23a"].rescan_frac = 0.3;
  p["q23b"].rescan_frac = 0.3;
  p["q14a"].rescan_frac = 0.25;
  p["q14b"].rescan_frac = 0.25;
  return p;
}

// Synthesizes a mildly configuration-sensitive profile for a query the
// paper does not describe individually. Deterministic in the query name.
QueryProfile SynthesizedProfile(const std::string& name) {
  const uint64_t h = NameHash(name);
  const double kind = HashUnit(h, 0);
  if (kind < 0.30) {
    // Simple selection-style query.
    return Selection(name, 0.06 + 0.30 * HashUnit(h, 1),
                     4.0 + 2.0 * HashUnit(h, 2));
  }
  const bool is_join = kind < 0.70;
  const double input = 0.10 + 0.35 * HashUnit(h, 3);
  const double cpu = 4.0 + 2.0 * HashUnit(h, 4);
  // Small shuffles with modest working sets: sensitive in principle but
  // below the CV tertile threshold in practice.
  const double ratio = 0.004 + 0.08 * HashUnit(h, 5);
  const int stages = 1 + static_cast<int>(HashUnit(h, 6) * 2.0);
  const double mem = 0.4 + 0.5 * HashUnit(h, 7);
  const double skew = 1.05 + 0.3 * HashUnit(h, 8);
  const double bcast = HashUnit(h, 9) < 0.4 ? 20.0 + 120.0 * HashUnit(h, 10)
                                            : 0.0;
  if (is_join) {
    return Join(name, input, cpu, ratio, stages, mem, skew, bcast, 0.0);
  }
  return Agg(name, input, cpu, ratio, stages, mem, skew);
}

}  // namespace

SparkSqlApp TpcDs() {
  SparkSqlApp app;
  app.name = "TPC-DS";
  const std::map<std::string, QueryProfile> explicit_profiles =
      ExplicitProfiles();

  // 104 queries: 1..99 with a/b variants for 14, 23, 24, 39, 64.
  const std::array<int, 5> split = {14, 23, 24, 39, 64};
  for (int i = 1; i <= 99; ++i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "q%02d", i);
    const std::string base = buf;
    const bool has_variants =
        std::find(split.begin(), split.end(), i) != split.end();
    const std::vector<std::string> names =
        has_variants ? std::vector<std::string>{base + "a", base + "b"}
                     : std::vector<std::string>{base};
    for (const std::string& name : names) {
      auto it = explicit_profiles.find(name);
      app.queries.push_back(it != explicit_profiles.end()
                                ? it->second
                                : SynthesizedProfile(name));
    }
  }
  return app;
}

}  // namespace locat::workloads
