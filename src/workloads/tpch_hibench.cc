#include "workloads/workloads.h"

namespace locat::workloads {
namespace {

using sparksim::QueryCategory;
using sparksim::QueryProfile;
using sparksim::SparkSqlApp;

QueryProfile Make(const std::string& name, QueryCategory cat,
                  double input_frac, double cpu_per_gb, double shuffle_ratio,
                  int stages, double mem_factor, double skew,
                  double broadcastable_mb = 0.0, double ds_exponent = 0.0) {
  QueryProfile q;
  q.name = name;
  q.category = cat;
  q.input_frac = input_frac;
  q.cpu_per_gb = cpu_per_gb;
  q.shuffle_ratio = shuffle_ratio;
  q.shuffle_cpu_per_gb =
      cat == QueryCategory::kAggregation ? 46.0 : 55.0;
  q.num_shuffle_stages = stages;
  q.mem_per_task_factor = mem_factor;
  q.skew = skew;
  q.broadcastable_mb = broadcastable_mb;
  q.ds_exponent = ds_exponent;
  return q;
}

}  // namespace

SparkSqlApp TpcH() {
  using enum QueryCategory;
  SparkSqlApp app;
  app.name = "TPC-H";
  // 22 queries over the lineitem-dominated schema. Join-heavy plans
  // (Q5, Q7, Q8, Q9, Q17, Q18, Q21) carry most of the configuration
  // sensitivity; Q1/Q6 are big scans.
  app.queries = {
      Make("q1", kAggregation, 0.80, 5, 0.02, 1, 0.8, 1.2),
      Make("q2", kJoin, 0.10, 5, 0.05, 2, 1.0, 1.3, 40),
      Make("q3", kJoin, 0.55, 5, 0.18, 2, 1.6, 1.5),
      Make("q4", kJoin, 0.45, 5, 0.10, 1, 1.2, 1.4),
      Make("q5", kJoin, 0.60, 5, 0.48, 3, 9.0, 1.8, 50, 0.10),
      Make("q6", kSelection, 0.70, 5, 0.0005, 1, 0.6, 1.1),
      Make("q7", kJoin, 0.60, 5, 0.52, 3, 9.5, 1.9, 0, 0.10),
      Make("q8", kJoin, 0.65, 5, 0.46, 3, 8.5, 1.8, 60, 0.10),
      Make("q9", kJoin, 0.85, 5, 0.70, 3, 11.0, 2.1, 0, 0.14),
      Make("q10", kJoin, 0.55, 5, 0.22, 2, 1.7, 1.5),
      Make("q11", kAggregation, 0.08, 5, 0.06, 2, 1.1, 1.3),
      Make("q12", kJoin, 0.50, 5, 0.09, 1, 1.1, 1.3),
      Make("q13", kAggregation, 0.25, 5, 0.16, 2, 1.5, 1.5),
      Make("q14", kJoin, 0.55, 5, 0.08, 1, 1.0, 1.3, 30),
      Make("q15", kAggregation, 0.55, 5, 0.12, 2, 1.3, 1.4),
      Make("q16", kSelection, 0.10, 5, 0.002, 1, 0.7, 1.1),
      Make("q17", kJoin, 0.60, 5, 0.42, 2, 8.0, 1.7, 0, 0.08),
      Make("q18", kJoin, 0.65, 5, 0.50, 3, 9.0, 1.8, 0, 0.10),
      Make("q19", kJoin, 0.55, 5, 0.07, 1, 1.0, 1.3, 40),
      Make("q20", kJoin, 0.55, 5, 0.14, 2, 1.4, 1.4),
      Make("q21", kJoin, 0.75, 5, 0.60, 3, 10.0, 2.0, 0, 0.12),
      Make("q22", kSelection, 0.12, 5, 0.003, 1, 0.7, 1.1),
  };
  return app;
}

SparkSqlApp HiBenchJoin() {
  SparkSqlApp app;
  app.name = "Join";
  // Two-phase Map + Reduce join of uservisits with rankings.
  app.queries = {Make("join", QueryCategory::kJoin, 1.0, 5, 0.55, 1, 15.0,
                      1.9, 0, 0.08)};
  return app;
}

SparkSqlApp HiBenchScan() {
  SparkSqlApp app;
  app.name = "Scan";
  // Map-only "select" that splits input rows and writes records.
  app.queries = {Make("scan", QueryCategory::kSelection, 1.0, 5, 0.0, 0,
                      0.5, 1.1)};
  return app;
}

SparkSqlApp HiBenchAggregation() {
  SparkSqlApp app;
  app.name = "Aggregation";
  // Map ("select") + Reduce ("group by") over uservisits.
  app.queries = {Make("aggregation", QueryCategory::kAggregation, 1.0, 5,
                      0.30, 1, 7.0, 1.6)};
  return app;
}

std::vector<SparkSqlApp> AllBenchmarks() {
  return {TpcDs(), TpcH(), HiBenchJoin(), HiBenchScan(),
          HiBenchAggregation()};
}

std::vector<double> StandardDataSizesGb() {
  return {100.0, 200.0, 300.0, 400.0, 500.0};
}

}  // namespace locat::workloads
