#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "obs/trace.h"

namespace locat::obs {
namespace {

std::string FormatNumber(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> upper_bounds)
    : name_(std::move(name)),
      help_(std::move(help)),
      upper_bounds_(std::move(upper_bounds)),
      counts_(upper_bounds_.size() + 1, 0) {
  assert(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  std::lock_guard<std::mutex> lock(mu_);
  ++counts_[bucket];
  ++count_;
  sum_ += value;
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counts_;
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(name, help)).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(name, help)).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(
                                name, help, std::move(upper_bounds)))
             .first;
  }
  return it->second.get();
}

size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::WritePrometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    if (!c->help().empty()) os << "# HELP " << name << " " << c->help() << "\n";
    os << "# TYPE " << name << " counter\n";
    os << name << " " << FormatNumber(c->value()) << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    if (!g->help().empty()) os << "# HELP " << name << " " << g->help() << "\n";
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << FormatNumber(g->value()) << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    if (!h->help().empty()) os << "# HELP " << name << " " << h->help() << "\n";
    os << "# TYPE " << name << " histogram\n";
    const auto counts = h->bucket_counts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h->upper_bounds().size(); ++i) {
      cumulative += counts[i];
      os << name << "_bucket{le=\"" << FormatNumber(h->upper_bounds()[i])
         << "\"} " << cumulative << "\n";
    }
    cumulative += counts.back();
    os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << name << "_sum " << FormatNumber(h->sum()) << "\n";
    os << name << "_count " << h->count() << "\n";
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << FormatNumber(c->value());
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << FormatNumber(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{\"buckets\":[";
    const auto counts = h->bucket_counts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ",";
      const std::string le = i < h->upper_bounds().size()
                                 ? FormatNumber(h->upper_bounds()[i])
                                 : std::string("\"+Inf\"");
      os << "[" << le << "," << counts[i] << "]";
    }
    os << "],\"sum\":" << FormatNumber(h->sum())
       << ",\"count\":" << h->count() << "}";
  }
  os << "}}\n";
}

}  // namespace locat::obs
