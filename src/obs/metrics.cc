#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

#include "obs/trace.h"

namespace locat::obs {
namespace {

std::string FormatNumber(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::string name, std::string help,
                     std::vector<double> upper_bounds)
    : name_(std::move(name)),
      help_(std::move(help)),
      upper_bounds_(std::move(upper_bounds)),
      counts_(new std::atomic<uint64_t>[upper_bounds_.size() + 1]) {
  assert(std::is_sorted(upper_bounds_.begin(), upper_bounds_.end()));
  for (size_t i = 0; i <= upper_bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::upper_bound(upper_bounds_.begin(), upper_bounds_.end(), value) -
      upper_bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(upper_bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  const std::vector<uint64_t> counts = bucket_counts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target && counts[i] > 0) {
      if (i == upper_bounds_.size()) {
        // +Inf bucket: no upper edge to interpolate toward.
        return upper_bounds_.empty() ? 0.0 : upper_bounds_.back();
      }
      const double hi = upper_bounds_[i];
      const double lo =
          i > 0 ? upper_bounds_[i - 1] : std::min(0.0, hi);
      const double frac =
          (target - cumulative) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, frac));
    }
    cumulative = next;
  }
  return upper_bounds_.empty() ? 0.0 : upper_bounds_.back();
}

std::vector<double> LatencySecondsBuckets() {
  return {0.0001, 0.0005, 0.002, 0.01, 0.05, 0.2, 1.0, 5.0, 20.0, 60.0, 300.0};
}

Counter* CounterFamily::WithLabels(const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = children_.find(labels);
  if (it == children_.end()) {
    it = children_.emplace(labels, std::make_unique<Counter>(name_, help_))
             .first;
  }
  return it->second.get();
}

size_t CounterFamily::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return children_.size();
}

std::vector<std::pair<LabelSet, const Counter*>> CounterFamily::Children()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<LabelSet, const Counter*>> out;
  out.reserve(children_.size());
  for (const auto& [labels, child] : children_) {
    out.emplace_back(labels, child.get());
  }
  return out;
}

Gauge* GaugeFamily::WithLabels(const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = children_.find(labels);
  if (it == children_.end()) {
    it = children_.emplace(labels, std::make_unique<Gauge>(name_, help_))
             .first;
  }
  return it->second.get();
}

size_t GaugeFamily::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return children_.size();
}

std::vector<std::pair<LabelSet, const Gauge*>> GaugeFamily::Children() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<LabelSet, const Gauge*>> out;
  out.reserve(children_.size());
  for (const auto& [labels, child] : children_) {
    out.emplace_back(labels, child.get());
  }
  return out;
}

Histogram* HistogramFamily::WithLabels(const LabelSet& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = children_.find(labels);
  if (it == children_.end()) {
    it = children_
             .emplace(labels, std::make_unique<Histogram>(name_, help_,
                                                          upper_bounds_))
             .first;
  }
  return it->second.get();
}

size_t HistogramFamily::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return children_.size();
}

std::vector<std::pair<LabelSet, const Histogram*>> HistogramFamily::Children()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<LabelSet, const Histogram*>> out;
  out.reserve(children_.size());
  for (const auto& [labels, child] : children_) {
    out.emplace_back(labels, child.get());
  }
  return out;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(name, help)).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(name, help)).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(
                                name, help, std::move(upper_bounds)))
             .first;
  }
  return it->second.get();
}

CounterFamily* MetricsRegistry::GetCounterFamily(const std::string& name,
                                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counter_families_.find(name);
  if (it == counter_families_.end()) {
    it = counter_families_
             .emplace(name, std::make_unique<CounterFamily>(name, help))
             .first;
  }
  return it->second.get();
}

GaugeFamily* MetricsRegistry::GetGaugeFamily(const std::string& name,
                                             const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauge_families_.find(name);
  if (it == gauge_families_.end()) {
    it = gauge_families_
             .emplace(name, std::make_unique<GaugeFamily>(name, help))
             .first;
  }
  return it->second.get();
}

HistogramFamily* MetricsRegistry::GetHistogramFamily(
    const std::string& name, const std::string& help,
    std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histogram_families_.find(name);
  if (it == histogram_families_.end()) {
    it = histogram_families_
             .emplace(name, std::make_unique<HistogramFamily>(
                                name, help, std::move(upper_bounds)))
             .first;
  }
  return it->second.get();
}

size_t MetricsRegistry::metric_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size() +
         counter_families_.size() + gauge_families_.size() +
         histogram_families_.size();
}

namespace {

void WriteHeader(std::ostream& os, const std::string& name,
                 const std::string& help, const char* type) {
  if (!help.empty()) {
    os << "# HELP " << name << " " << PromEscapeHelp(help) << "\n";
  }
  os << "# TYPE " << name << " " << type << "\n";
}

void WriteHistogramSamples(std::ostream& os, const std::string& name,
                           const LabelSet& labels, const Histogram& h) {
  const auto counts = h.bucket_counts();
  uint64_t cumulative = 0;
  for (size_t i = 0; i < h.upper_bounds().size(); ++i) {
    cumulative += counts[i];
    os << name << "_bucket"
       << labels.ToPrometheus("le", FormatNumber(h.upper_bounds()[i])) << " "
       << cumulative << "\n";
  }
  cumulative += counts.back();
  os << name << "_bucket" << labels.ToPrometheus("le", "+Inf") << " "
     << cumulative << "\n";
  os << name << "_sum" << labels.ToPrometheus() << " "
     << FormatNumber(h.sum()) << "\n";
  os << name << "_count" << labels.ToPrometheus() << " " << cumulative
     << "\n";
}

void WriteHistogramJson(std::ostream& os, const Histogram& h) {
  os << "{\"buckets\":[";
  const auto counts = h.bucket_counts();
  for (size_t i = 0; i < counts.size(); ++i) {
    if (i > 0) os << ",";
    const std::string le = i < h.upper_bounds().size()
                               ? FormatNumber(h.upper_bounds()[i])
                               : std::string("\"+Inf\"");
    os << "[" << le << "," << counts[i] << "]";
  }
  os << "],\"sum\":" << FormatNumber(h.sum()) << ",\"count\":" << h.count()
     << ",\"p50\":" << FormatNumber(h.Quantile(0.50))
     << ",\"p95\":" << FormatNumber(h.Quantile(0.95))
     << ",\"p99\":" << FormatNumber(h.Quantile(0.99)) << "}";
}

}  // namespace

void MetricsRegistry::WritePrometheus(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, c] : counters_) {
    WriteHeader(os, name, c->help(), "counter");
    os << name << " " << FormatNumber(c->value()) << "\n";
  }
  for (const auto& [name, fam] : counter_families_) {
    WriteHeader(os, name, fam->help(), "counter");
    for (const auto& [labels, child] : fam->Children()) {
      os << name << labels.ToPrometheus() << " "
         << FormatNumber(child->value()) << "\n";
    }
  }
  for (const auto& [name, g] : gauges_) {
    WriteHeader(os, name, g->help(), "gauge");
    os << name << " " << FormatNumber(g->value()) << "\n";
  }
  for (const auto& [name, fam] : gauge_families_) {
    WriteHeader(os, name, fam->help(), "gauge");
    for (const auto& [labels, child] : fam->Children()) {
      os << name << labels.ToPrometheus() << " "
         << FormatNumber(child->value()) << "\n";
    }
  }
  for (const auto& [name, h] : histograms_) {
    WriteHeader(os, name, h->help(), "histogram");
    WriteHistogramSamples(os, name, LabelSet(), *h);
  }
  for (const auto& [name, fam] : histogram_families_) {
    WriteHeader(os, name, fam->help(), "histogram");
    for (const auto& [labels, child] : fam->Children()) {
      WriteHistogramSamples(os, name, labels, *child);
    }
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << FormatNumber(c->value());
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":" << FormatNumber(g->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":";
    WriteHistogramJson(os, *h);
  }
  os << "},\"families\":{";
  first = true;
  for (const auto& [name, fam] : counter_families_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{\"kind\":\"counter\",\"children\":[";
    bool cfirst = true;
    for (const auto& [labels, child] : fam->Children()) {
      if (!cfirst) os << ",";
      cfirst = false;
      os << "{\"labels\":" << labels.ToJson()
         << ",\"value\":" << FormatNumber(child->value()) << "}";
    }
    os << "]}";
  }
  for (const auto& [name, fam] : gauge_families_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name) << "\":{\"kind\":\"gauge\",\"children\":[";
    bool cfirst = true;
    for (const auto& [labels, child] : fam->Children()) {
      if (!cfirst) os << ",";
      cfirst = false;
      os << "{\"labels\":" << labels.ToJson()
         << ",\"value\":" << FormatNumber(child->value()) << "}";
    }
    os << "]}";
  }
  for (const auto& [name, fam] : histogram_families_) {
    if (!first) os << ",";
    first = false;
    os << "\"" << JsonEscape(name)
       << "\":{\"kind\":\"histogram\",\"children\":[";
    bool cfirst = true;
    for (const auto& [labels, child] : fam->Children()) {
      if (!cfirst) os << ",";
      cfirst = false;
      os << "{\"labels\":" << labels.ToJson() << ",\"histogram\":";
      WriteHistogramJson(os, *child);
      os << "}";
    }
    os << "]}";
  }
  os << "}}\n";
}

}  // namespace locat::obs
