#ifndef LOCAT_OBS_CLOCK_H_
#define LOCAT_OBS_CLOCK_H_

#include <cstdint>

namespace locat::obs {

/// Time source the tracer reads. Injectable so tests (and the determinism
/// suite) can drive traces from a fake clock and get byte-identical trace
/// files, while production uses the process steady clock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary fixed origin; must never go backwards.
  virtual uint64_t NowNanos() = 0;
};

/// std::chrono::steady_clock. Stateless; one shared instance suffices.
class MonotonicClock : public Clock {
 public:
  uint64_t NowNanos() override;

  /// Process-wide instance used when a Tracer is built without a clock.
  static MonotonicClock* Default();
};

/// Deterministic clock for tests: every reading advances time by a fixed
/// tick, so consecutive spans get strictly increasing, reproducible
/// timestamps without any wall-clock dependence.
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_ns = 0, uint64_t tick_ns = 1000)
      : now_ns_(start_ns), tick_ns_(tick_ns) {}

  uint64_t NowNanos() override {
    now_ns_ += tick_ns_;
    return now_ns_;
  }

  /// Moves time forward without producing a reading.
  void Advance(uint64_t ns) { now_ns_ += ns; }

 private:
  uint64_t now_ns_;
  uint64_t tick_ns_;
};

}  // namespace locat::obs

#endif  // LOCAT_OBS_CLOCK_H_
