#include "obs/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace locat::obs {
namespace {

// Per-thread lane id and nesting depth. Shared across Tracer instances;
// in practice one tracer is live per process, and sharing keeps ScopedSpan
// free of any per-tracer thread registry.
std::atomic<int> g_next_tid{0};

int ThreadLane() {
  thread_local const int lane = g_next_tid.fetch_add(1);
  return lane;
}

thread_local int tls_depth = 0;

}  // namespace

uint64_t MonotonicClock::NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

MonotonicClock* MonotonicClock::Default() {
  static MonotonicClock clock;
  return &clock;
}

Tracer::Tracer(Clock* clock)
    : clock_(clock != nullptr ? clock : MonotonicClock::Default()) {}

uint64_t Tracer::NowNanos() { return clock_->NowNanos(); }

void Tracer::EndSpan(const char* name, const char* category,
                     uint64_t start_ns, int depth, std::string args) {
  const uint64_t end_ns = clock_->NowNanos();
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.start_ns = start_ns;
  ev.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  ev.pid = kWallPid;
  ev.tid = ThreadLane();
  ev.depth = depth;
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

void Tracer::RecordComplete(std::string name, const char* category,
                            uint64_t start_ns, uint64_t dur_ns, int pid,
                            int tid, std::string args) {
  TraceEvent ev;
  ev.name = std::move(name);
  ev.category = category;
  ev.start_ns = start_ns;
  ev.dur_ns = dur_ns;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot();
  os << "{\"traceEvents\":[";
  // Process-name metadata so Perfetto labels the two timelines.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kWallPid
     << ",\"args\":{\"name\":\"locat (wall clock)\"}}";
  os << ",\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << kSimulatedPid
     << ",\"args\":{\"name\":\"sparksim (simulated time)\"}}";
  char buf[64];
  for (const TraceEvent& ev : events) {
    os << ",\n{\"name\":\"" << JsonEscape(ev.name) << "\",\"cat\":\""
       << JsonEscape(ev.category) << "\",\"ph\":\"X\"";
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(ev.start_ns) / 1000.0,
                  static_cast<double>(ev.dur_ns) / 1000.0);
    os << buf << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
    if (!ev.args.empty()) os << ",\"args\":{" << ev.args << "}";
    os << "}";
  }
  os << "\n]}\n";
}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name, const char* category)
    : tracer_(tracer), name_(name), category_(category) {
  if (tracer_ == nullptr) return;
  depth_ = tls_depth++;
  start_ns_ = tracer_->NowNanos();
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  --tls_depth;
  tracer_->EndSpan(name_, category_, start_ns_, depth_, std::move(args_));
}

void ScopedSpan::Arg(const char* key, double value) {
  if (tracer_ == nullptr) return;
  char buf[80];
  std::snprintf(buf, sizeof(buf), "\"%s\":%.9g", key, value);
  if (!args_.empty()) args_ += ',';
  args_ += buf;
}

void ScopedSpan::Arg(const char* key, const std::string& value) {
  if (tracer_ == nullptr) return;
  if (!args_.empty()) args_ += ',';
  args_ += '"';
  args_ += key;
  args_ += "\":\"";
  args_ += JsonEscape(value);
  args_ += '"';
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace locat::obs
