#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "obs/clock.h"

// The ring is a per-slot seqlock: writers bump the slot stamp to odd
// before touching the payload and to even after; readers copy the payload
// between two stamp loads and discard the copy when the stamps disagree.
// The payload accesses are deliberately plain (the whole point is one
// wait-free memcpy-style write), so TSan reports them as races even
// though torn reads are detected and dropped. Exempt just the seqlock
// functions from instrumentation rather than suppressing the whole file.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LOCAT_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#endif
#endif
#if !defined(LOCAT_NO_SANITIZE_THREAD) && defined(__SANITIZE_THREAD__)
#define LOCAT_NO_SANITIZE_THREAD __attribute__((no_sanitize("thread")))
#endif
#ifndef LOCAT_NO_SANITIZE_THREAD
#define LOCAT_NO_SANITIZE_THREAD
#endif

namespace locat::obs {
namespace {

// Byte loop rather than strncpy: sanitizer interceptors instrument libc
// string calls even inside no-sanitize functions, and the crash path
// should not depend on libc either.
LOCAT_NO_SANITIZE_THREAD
void CopyTruncated(char* dst, size_t dst_size, const char* src) {
  size_t i = 0;
  if (src != nullptr) {
    for (; i + 1 < dst_size && src[i] != '\0'; ++i) dst[i] = src[i];
  }
  dst[i] = '\0';
}

/// Escapes into a fixed buffer (no allocation — usable from the crash
/// path). Stops when the output buffer is full.
void EscapeInto(char* out, size_t out_size, const char* s) {
  size_t o = 0;
  for (const char* p = s; *p != '\0' && o + 7 < out_size; ++p) {
    const unsigned char c = static_cast<unsigned char>(*p);
    if (c == '"' || c == '\\') {
      out[o++] = '\\';
      out[o++] = static_cast<char>(c);
    } else if (c < 0x20) {
      o += static_cast<size_t>(
          std::snprintf(out + o, out_size - o, "\\u%04x", c));
    } else {
      out[o++] = static_cast<char>(c);
    }
  }
  out[o] = '\0';
}

/// Formats one event as a JSON line into `buf`; returns the length.
int FormatEvent(char* buf, size_t buf_size, const FlightEvent& ev) {
  char msg[224];
  char comp[48];
  EscapeInto(msg, sizeof(msg), ev.message);
  EscapeInto(comp, sizeof(comp), ev.component);
  return std::snprintf(
      buf, buf_size,
      "{\"seq\":%llu,\"t_ns\":%llu,\"kind\":\"%s\",\"level\":\"%s\","
      "\"component\":\"%s\",\"message\":\"%s\",\"value\":%.10g}\n",
      static_cast<unsigned long long>(ev.seq),
      static_cast<unsigned long long>(ev.t_ns), ev.kind, ev.level, comp, msg,
      ev.value);
}

// Crash-handler state. Plain (not atomic) char array: written once before
// handlers are installed.
std::atomic<FlightRecorder*> g_global{nullptr};
char g_crash_path[256] = {0};

void CrashHandler(int signo) {
  FlightRecorder* recorder = g_global.load(std::memory_order_acquire);
  if (recorder != nullptr && g_crash_path[0] != '\0') {
    const int fd =
        ::open(g_crash_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      recorder->DumpToFd(fd);
      ::close(fd);
    }
  }
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (core dump, wait status, ...).
  ::signal(signo, SIG_DFL);
  ::raise(signo);
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity)
    : capacity_(capacity < 2 ? 2 : capacity), slots_(new Slot[capacity_]) {}

LOCAT_NO_SANITIZE_THREAD
void FlightRecorder::Record(const char* kind, const char* level,
                            const char* component, const char* message,
                            double value) {
  const uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % capacity_];
  slot.stamp.store(2 * seq + 1, std::memory_order_release);
  FlightEvent& ev = slot.event;
  ev.seq = seq;
  ev.t_ns = MonotonicClock::Default()->NowNanos();
  CopyTruncated(ev.kind, sizeof(ev.kind), kind);
  CopyTruncated(ev.level, sizeof(ev.level), level);
  CopyTruncated(ev.component, sizeof(ev.component), component);
  CopyTruncated(ev.message, sizeof(ev.message), message);
  ev.value = value;
  slot.stamp.store(2 * seq + 2, std::memory_order_release);
  if (!dump_on_fault_.empty() && std::strcmp(ev.kind, "fault") == 0) {
    // Best-effort: a failing dump must never disturb the recording path.
    (void)DumpToFile(dump_on_fault_);
  }
}

LOCAT_NO_SANITIZE_THREAD
std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  const uint64_t end = next_seq_.load(std::memory_order_acquire);
  const uint64_t begin =
      end > capacity_ ? end - capacity_ : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<size_t>(end - begin));
  for (uint64_t seq = begin; seq < end; ++seq) {
    const Slot& slot = slots_[seq % capacity_];
    const uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
    if (s1 != 2 * seq + 2) continue;  // overwritten or mid-write
    FlightEvent ev = slot.event;
    const uint64_t s2 = slot.stamp.load(std::memory_order_acquire);
    if (s2 != s1) continue;  // torn read
    out.push_back(ev);
  }
  return out;
}

void FlightRecorder::WriteJsonl(std::ostream& os) const {
  char buf[512];
  for (const FlightEvent& ev : Snapshot()) {
    const int n = FormatEvent(buf, sizeof(buf), ev);
    os.write(buf, n);
  }
}

Status FlightRecorder::DumpToFile(const std::string& path) const {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot write flight dump to " + path);
  }
  DumpToFd(fd);
  ::close(fd);
  return Status::OK();
}

LOCAT_NO_SANITIZE_THREAD
void FlightRecorder::DumpToFd(int fd) const {
  const uint64_t end = next_seq_.load(std::memory_order_acquire);
  const uint64_t begin = end > capacity_ ? end - capacity_ : 0;
  char buf[512];
  for (uint64_t seq = begin; seq < end; ++seq) {
    const Slot& slot = slots_[seq % capacity_];
    const uint64_t s1 = slot.stamp.load(std::memory_order_acquire);
    if (s1 != 2 * seq + 2) continue;
    const FlightEvent ev = slot.event;
    const uint64_t s2 = slot.stamp.load(std::memory_order_acquire);
    if (s2 != s1) continue;
    const int n = FormatEvent(buf, sizeof(buf), ev);
    if (n > 0) {
      ssize_t off = 0;
      while (off < n) {
        const ssize_t w = ::write(fd, buf + off, static_cast<size_t>(n - off));
        if (w <= 0) return;
        off += w;
      }
    }
  }
}

void FlightRecorder::SetDumpOnFault(const std::string& path) {
  dump_on_fault_ = path;
}

FlightRecorder* FlightRecorder::Global() {
  return g_global.load(std::memory_order_acquire);
}

FlightRecorder* FlightRecorder::InstallGlobal(size_t capacity) {
  FlightRecorder* existing = g_global.load(std::memory_order_acquire);
  if (existing != nullptr) return existing;
  // Leaked deliberately: the recorder must outlive every thread and the
  // crash handler, and it is installed at most once per process.
  FlightRecorder* recorder = new FlightRecorder(capacity);
  g_global.store(recorder, std::memory_order_release);
  return recorder;
}

void FlightRecorder::InstallCrashHandlers(const std::string& path) {
  std::snprintf(g_crash_path, sizeof(g_crash_path), "%s", path.c_str());
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CrashHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  ::sigaction(SIGSEGV, &sa, nullptr);
  ::sigaction(SIGABRT, &sa, nullptr);
}

}  // namespace locat::obs
