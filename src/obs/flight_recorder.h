#ifndef LOCAT_OBS_FLIGHT_RECORDER_H_
#define LOCAT_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"

namespace locat::obs {

/// One event in the flight-recorder ring. All payload fields are
/// fixed-size character arrays so recording never allocates and the
/// crash-signal dump path can format them without touching the heap.
struct FlightEvent {
  uint64_t seq = 0;   // global sequence number (monotonic)
  uint64_t t_ns = 0;  // steady-clock nanoseconds at record time
  char kind[8] = {0};       // "log" | "span" | "fault" | ...
  char level[8] = {0};      // log severity; "" otherwise
  char component[24] = {0};
  char message[104] = {0};  // truncated to fit
  double value = 0.0;       // generic numeric payload (duration, count...)
};

/// Fixed-size lock-free ring buffer of recent log/span/fault events — the
/// post-mortem "what happened just before this" record of a serving
/// process.
///
/// Writers claim a slot with one fetch_add and publish it with a per-slot
/// seqlock, so recording is wait-free for any number of threads. Readers
/// (Snapshot, the /flightz endpoint, the crash dump) walk the last
/// `capacity` sequence numbers and skip slots that are mid-write. Events
/// overwritten between claim and read are silently dropped — by design:
/// the recorder is a window, not a log.
class FlightRecorder {
 public:
  explicit FlightRecorder(size_t capacity = 1024);

  /// Records one event; truncates every string to its field size. Safe
  /// from any thread; never allocates, never takes a lock.
  void Record(const char* kind, const char* level, const char* component,
              const char* message, double value = 0.0);

  /// Events still in the window, oldest first, ascending seq.
  std::vector<FlightEvent> Snapshot() const;

  /// One JSON object per event (JSONL), same order as Snapshot.
  void WriteJsonl(std::ostream& os) const;

  /// Dumps the window to `path` (truncating). Used by /flightz-style "on
  /// demand" dumps and by the fault hook.
  Status DumpToFile(const std::string& path) const;

  /// Dumps to an already-open file descriptor using only write(2) and
  /// stack buffers — the crash-signal path. Not signal-safe in the
  /// letter-of-POSIX sense (snprintf), but allocation-free and reentrant
  /// enough for a last-gasp dump.
  void DumpToFd(int fd) const;

  /// When set, every "fault" event immediately dumps the window to this
  /// path (the OOM app-kill hook of the simulator). Call before wiring
  /// the recorder into writers; not thread-safe against Record.
  void SetDumpOnFault(const std::string& path);
  const std::string& dump_on_fault_path() const { return dump_on_fault_; }

  uint64_t total_recorded() const {
    return next_seq_.load(std::memory_order_relaxed);
  }
  size_t capacity() const { return capacity_; }

  /// --- process-global instance & crash handlers -----------------------
  /// The global recorder is what the SIGSEGV/SIGABRT handlers dump; it is
  /// null until InstallGlobal runs. Install once, early (the CLI does it
  /// when --flight is given).
  static FlightRecorder* Global();
  static FlightRecorder* InstallGlobal(size_t capacity = 1024);

  /// Installs SIGSEGV/SIGABRT handlers that dump the global recorder to
  /// `path`, restore the default disposition and re-raise (so the crash
  /// still produces a core/exit status). No-op handlers when no global
  /// recorder is installed.
  static void InstallCrashHandlers(const std::string& path);

 private:
  struct Slot {
    /// Seqlock stamp: 0 = never written, odd = write in progress,
    /// 2*(seq+1) = published for sequence number `seq`.
    std::atomic<uint64_t> stamp{0};
    FlightEvent event;
  };

  size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<uint64_t> next_seq_{0};
  std::string dump_on_fault_;
};

}  // namespace locat::obs

#endif  // LOCAT_OBS_FLIGHT_RECORDER_H_
