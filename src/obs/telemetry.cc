#include "obs/telemetry.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace locat::obs {
namespace {

std::string Fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

void JsonlObserver::OnIteration(const BoIterationEvent& e) {
  std::ostream& os = *os_;
  os << "{\"type\":\"iteration\""
     << ",\"tuner\":\"" << JsonEscape(e.tuner) << "\""
     << ",\"phase\":\"" << JsonEscape(e.phase) << "\""
     << ",\"iter\":" << e.iteration
     << ",\"datasize_gb\":" << Fmt(e.datasize_gb)
     << ",\"eval_seconds\":" << Fmt(e.eval_seconds)
     << ",\"objective_seconds\":" << Fmt(e.objective_seconds)
     << ",\"incumbent_seconds\":" << Fmt(e.incumbent_seconds)
     << ",\"relative_ei\":" << Fmt(e.relative_ei)
     << ",\"candidate_pool\":" << e.candidate_pool
     << ",\"full_app\":" << (e.full_app ? "true" : "false")
     << ",\"dagp_fit_seconds\":" << Fmt(e.dagp_fit_seconds)
     << ",\"acq_seconds\":" << Fmt(e.acq_seconds)
     << ",\"mcmc_ensemble\":" << e.mcmc_ensemble
     << ",\"mcmc_density_evals\":" << e.mcmc_density_evals
     << ",\"mcmc_acceptance\":" << Fmt(e.mcmc_acceptance)
     << ",\"rqa_share\":" << Fmt(e.rqa_share)
     << ",\"rqa_queries\":" << e.rqa_queries
     << ",\"failed_evals\":" << e.failed_evals << "}\n";
}

void JsonlObserver::OnPhase(const PhaseEvent& e) {
  std::ostream& os = *os_;
  os << "{\"type\":\"phase\""
     << ",\"tuner\":\"" << JsonEscape(e.tuner) << "\""
     << ",\"phase\":\"" << JsonEscape(e.phase) << "\"";
  for (const auto& [key, value] : e.fields) {
    os << ",\"" << JsonEscape(key) << "\":" << Fmt(value);
  }
  os << "}\n";
}

StatusOr<std::vector<TelemetryRecord>> ParseTelemetry(
    const std::string& text) {
  std::vector<TelemetryRecord> records;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fail = [&](const char* what) {
      return Status::InvalidArgument("telemetry line " +
                                     std::to_string(line_no) + ": " + what);
    };
    TelemetryRecord rec;
    size_t i = 0;
    auto skip_ws = [&] {
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
    };
    skip_ws();
    if (i >= line.size() || line[i] != '{') return fail("expected '{'");
    ++i;
    bool first = true;
    while (true) {
      skip_ws();
      if (i < line.size() && line[i] == '}') break;
      if (!first) {
        if (i >= line.size() || line[i] != ',') return fail("expected ','");
        ++i;
        skip_ws();
      }
      first = false;
      // Key.
      if (i >= line.size() || line[i] != '"') return fail("expected key");
      std::string key;
      for (++i; i < line.size() && line[i] != '"'; ++i) {
        if (line[i] == '\\' && i + 1 < line.size()) ++i;
        key.push_back(line[i]);
      }
      if (i >= line.size()) return fail("unterminated key");
      ++i;  // closing quote
      skip_ws();
      if (i >= line.size() || line[i] != ':') return fail("expected ':'");
      ++i;
      skip_ws();
      if (i >= line.size()) return fail("missing value");
      // Value: string, bool or number.
      if (line[i] == '"') {
        std::string value;
        for (++i; i < line.size() && line[i] != '"'; ++i) {
          if (line[i] == '\\' && i + 1 < line.size()) ++i;
          value.push_back(line[i]);
        }
        if (i >= line.size()) return fail("unterminated string value");
        ++i;
        rec.strings[key] = std::move(value);
      } else if (line.compare(i, 4, "true") == 0) {
        rec.numbers[key] = 1.0;
        i += 4;
      } else if (line.compare(i, 5, "false") == 0) {
        rec.numbers[key] = 0.0;
        i += 5;
      } else {
        const char* start = line.c_str() + i;
        char* end = nullptr;
        const double v = std::strtod(start, &end);
        if (end == start) return fail("malformed value");
        rec.numbers[key] = v;
        i += static_cast<size_t>(end - start);
      }
    }
    rec.type = rec.Str("type");
    if (rec.type.empty()) return fail("missing \"type\" field");
    records.push_back(std::move(rec));
  }
  return records;
}

}  // namespace locat::obs
