#ifndef LOCAT_OBS_LABELS_H_
#define LOCAT_OBS_LABELS_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace locat::obs {

/// Immutable, canonically ordered label key/value list — the identity of
/// one child inside a metric family (e.g. {app="tpcds",status="failed"}).
/// Keys are sorted at construction so two sets with the same pairs in any
/// order compare equal; a duplicate key keeps the last value given.
class LabelSet {
 public:
  LabelSet() = default;
  LabelSet(std::initializer_list<std::pair<std::string, std::string>> kv);
  explicit LabelSet(std::vector<std::pair<std::string, std::string>> kv);

  const std::vector<std::pair<std::string, std::string>>& pairs() const {
    return kv_;
  }
  bool empty() const { return kv_.empty(); }
  size_t size() const { return kv_.size(); }

  /// Value for `key`, or "" when absent.
  std::string Get(const std::string& key) const;

  /// Prometheus exposition form: `{k1="v1",k2="v2"}` with label values
  /// escaped per the text format; "" for the empty set. `extra` appends
  /// one more pair (used for histogram `le` labels) and renders `{...}`
  /// even when the set itself is empty.
  std::string ToPrometheus() const;
  std::string ToPrometheus(const std::string& extra_key,
                           const std::string& extra_value) const;

  /// JSON object form: `{"k1":"v1","k2":"v2"}`.
  std::string ToJson() const;

  bool operator<(const LabelSet& o) const { return kv_ < o.kv_; }
  bool operator==(const LabelSet& o) const { return kv_ == o.kv_; }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;  // sorted by key
};

/// Escapes a Prometheus label *value*: `\` -> `\\`, `"` -> `\"`, newline
/// -> `\n` (the three escapes the text exposition format defines).
std::string PromEscapeLabelValue(const std::string& s);

/// Escapes a `# HELP` string: `\` -> `\\` and newline -> `\n` (quotes are
/// legal in help text and must NOT be escaped there).
std::string PromEscapeHelp(const std::string& s);

/// Validates a Prometheus text exposition payload: line grammar, metric
/// and label name charsets, label-value escaping, numeric sample values,
/// one `# TYPE` per metric (before its samples), and histogram structure
/// (cumulative non-decreasing buckets ending in le="+Inf", with matching
/// `_count` and a `_sum`, per label set). Returns OK for an empty payload.
/// Shared self-check of the exporters: tests and the CI smoke run every
/// scrape/snapshot through it.
Status CheckPrometheusExposition(const std::string& text);

}  // namespace locat::obs

#endif  // LOCAT_OBS_LABELS_H_
