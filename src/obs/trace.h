#ifndef LOCAT_OBS_TRACE_H_
#define LOCAT_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/clock.h"

namespace locat::obs {

/// Timeline lanes in the exported trace. Wall-clock spans (the tuning
/// pipeline's own cost) live in pid 1; the simulator additionally emits a
/// *simulated-time* lane in pid 2, where span durations are simulated
/// Spark seconds rather than host nanoseconds.
inline constexpr int kWallPid = 1;
inline constexpr int kSimulatedPid = 2;

/// One completed span (Chrome trace_event "X" phase).
struct TraceEvent {
  std::string name;
  const char* category = "locat";
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  int pid = kWallPid;
  int tid = 0;
  /// Nesting depth at emit time (wall lane only); informational, used by
  /// tests to assert spans nest.
  int depth = 0;
  /// Extra JSON object members, e.g. "\"waves\":3,\"tasks\":781" (no
  /// surrounding braces). Empty for most spans.
  std::string args;
};

/// Span recorder with a Chrome trace_event JSON exporter.
///
/// Components hold a `Tracer*` that is null when tracing is off; the RAII
/// `ScopedSpan` below is a no-op (no clock reads, no allocations) on a
/// null tracer, so disabled tracing costs two pointer stores per scope.
/// Thread-safe: spans may be recorded from several threads; each thread
/// gets its own tid lane in the export.
class Tracer {
 public:
  /// `clock` must outlive the tracer; defaults to the process steady
  /// clock.
  explicit Tracer(Clock* clock = nullptr);

  /// Current timestamp from the injected clock.
  uint64_t NowNanos();

  /// Records a completed wall-lane span; used by ScopedSpan.
  void EndSpan(const char* name, const char* category, uint64_t start_ns,
               int depth, std::string args);

  /// Records a span with caller-provided timestamps and lane — the
  /// simulator uses this to lay out simulated time (pid = kSimulatedPid).
  void RecordComplete(std::string name, const char* category,
                      uint64_t start_ns, uint64_t dur_ns, int pid, int tid,
                      std::string args = {});

  size_t event_count() const;
  std::vector<TraceEvent> snapshot() const;
  void Clear();

  /// Writes the whole buffer in Chrome `trace_event` JSON (the
  /// `{"traceEvents":[...]}` object form), loadable in chrome://tracing
  /// and Perfetto. Timestamps are exported in microseconds.
  void WriteChromeTrace(std::ostream& os) const;

 private:
  Clock* clock_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: opens on construction, records on destruction. Null tracer
/// => complete no-op. `name` and `category` must be string literals (or
/// otherwise outlive the span).
class ScopedSpan {
 public:
  explicit ScopedSpan(Tracer* tracer, const char* name,
                      const char* category = "locat");
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches a numeric/string argument to the span (no-op when the
  /// tracer is null).
  void Arg(const char* key, double value);
  void Arg(const char* key, const std::string& value);

 private:
  Tracer* tracer_;
  const char* name_;
  const char* category_;
  uint64_t start_ns_ = 0;
  int depth_ = 0;
  std::string args_;
};

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters). Shared by the trace, metrics and
/// telemetry exporters.
std::string JsonEscape(const std::string& s);

}  // namespace locat::obs

#endif  // LOCAT_OBS_TRACE_H_
