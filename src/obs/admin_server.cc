#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>

namespace locat::obs {
namespace {

/// First line of an HTTP/1.0 request: "GET /path HTTP/1.0". Returns false
/// on anything that does not look like a request line.
bool ParseRequestLine(const std::string& line, std::string* method,
                      std::string* path) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  *method = line.substr(0, sp1);
  *path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Drop any query string: /metrics?foo=1 -> /metrics.
  const size_t q = path->find('?');
  if (q != std::string::npos) path->resize(q);
  return !method->empty() && !path->empty() && (*path)[0] == '/';
}

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t w = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (w <= 0) return;
    off += static_cast<size_t>(w);
  }
}

}  // namespace

AdminServer::AdminServer(Options options) : options_(std::move(options)) {}

StatusOr<std::unique_ptr<AdminServer>> AdminServer::Start(Options options) {
  std::unique_ptr<AdminServer> server(new AdminServer(std::move(options)));

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::InvalidArgument("admin server: socket() failed: " +
                                   std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // loopback only, always
  addr.sin_port = htons(static_cast<uint16_t>(server->options_.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::InvalidArgument(
        "admin server: cannot bind 127.0.0.1:" +
        std::to_string(server->options_.port) + ": " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::InvalidArgument("admin server: listen() failed: " + err);
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::InvalidArgument("admin server: getsockname() failed: " +
                                   err);
  }
  server->listen_fd_ = fd;
  server->port_ = static_cast<int>(ntohs(addr.sin_port));
  server->thread_ = std::thread([s = server.get()] { s->Serve(); });
  return server;
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

bool AdminServer::WaitForQuit(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(quit_mu_);
  auto quit = [this] { return quit_.load(std::memory_order_acquire); };
  if (timeout_seconds < 0.0) {
    quit_cv_.wait(lock, quit);
    return true;
  }
  return quit_cv_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds), quit);
}

void AdminServer::Serve() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // 200 ms poll so Stop() is honored promptly without a wakeup socket.
    const int ready = ::poll(&pfd, 1, 200);
    if (ready <= 0) continue;

    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    // Read until the end of the request headers (or the buffer cap). One
    // request per connection — HTTP/1.0 semantics, no keep-alive.
    std::string request;
    char buf[2048];
    while (request.size() < 16 * 1024 &&
           request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos) {
      const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
    }

    std::string method;
    std::string path;
    const size_t eol = request.find_first_of("\r\n");
    const bool parsed =
        eol != std::string::npos &&
        ParseRequestLine(request.substr(0, eol), &method, &path);

    int code = 400;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body = "bad request\n";
    if (parsed) {
      body = HandleRequest(method, path, &code, &content_type);
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    if (options_.metrics != nullptr && parsed) {
      options_.metrics
          ->GetCounterFamily("locat_admin_requests_total",
                             "Admin HTTP requests served, by path and code.")
          ->WithLabels(
              LabelSet({{"path", path}, {"code", std::to_string(code)}}))
          ->Increment();
    }

    std::ostringstream response;
    response << "HTTP/1.0 " << code << ' ' << ReasonPhrase(code) << "\r\n"
             << "Content-Type: " << content_type << "\r\n"
             << "Content-Length: " << body.size() << "\r\n"
             << "Connection: close\r\n\r\n"
             << body;
    SendAll(client, response.str());
    ::close(client);
  }
}

std::string AdminServer::HandleRequest(const std::string& method,
                                       const std::string& path,
                                       int* http_code,
                                       std::string* content_type) {
  *content_type = "text/plain; charset=utf-8";
  if (method != "GET" && method != "HEAD") {
    *http_code = 405;
    return "only GET is supported\n";
  }
  *http_code = 200;

  if (path == "/healthz") {
    return "ok\n";
  }
  if (path == "/metrics") {
    *content_type = "text/plain; version=0.0.4; charset=utf-8";
    if (options_.metrics == nullptr) return "";
    std::ostringstream os;
    options_.metrics->WritePrometheus(os);
    return os.str();
  }
  if (path == "/varz") {
    *content_type = "application/json";
    if (options_.metrics == nullptr) return "{}\n";
    std::ostringstream os;
    options_.metrics->WriteJson(os);
    os << '\n';
    return os.str();
  }
  if (path == "/statusz") {
    if (options_.statusz) return options_.statusz();
    return "no status callback wired\n";
  }
  if (path == "/flightz") {
    *content_type = "application/jsonl";
    if (options_.flight == nullptr) return "";
    std::ostringstream os;
    options_.flight->WriteJsonl(os);
    return os.str();
  }
  if (path == "/quitz") {
    {
      std::lock_guard<std::mutex> lock(quit_mu_);
      quit_.store(true, std::memory_order_release);
    }
    quit_cv_.notify_all();
    return "quitting\n";
  }
  if (path == "/") {
    return
        "locat admin server\n"
        "  /metrics   Prometheus exposition\n"
        "  /varz      metrics as JSON\n"
        "  /healthz   liveness\n"
        "  /statusz   per-app serving status\n"
        "  /flightz   flight-recorder window (JSONL)\n"
        "  /quitz     request shutdown\n";
  }
  *http_code = 404;
  return "not found: " + path + "\n";
}

}  // namespace locat::obs
