#ifndef LOCAT_OBS_METRICS_H_
#define LOCAT_OBS_METRICS_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace locat::obs {

/// Monotonically increasing value (events, totals). Thread-safe.
class Counter {
 public:
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  void Increment(double delta = 1.0) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::atomic<double> value_{0.0};
};

/// Point-in-time value that may go up or down. Thread-safe.
class Gauge {
 public:
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus classic histogram semantics:
/// cumulative `le` buckets plus an implicit +Inf, with _sum and _count).
/// Thread-safe.
class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending; an +Inf bucket is always
  /// appended implicitly.
  Histogram(std::string name, std::string help,
            std::vector<double> upper_bounds);

  void Observe(double value);

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket (non-cumulative) counts, last entry = +Inf bucket.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const;
  double sum() const;

 private:
  std::string name_;
  std::string help_;
  std::vector<double> upper_bounds_;
  mutable std::mutex mu_;
  std::vector<uint64_t> counts_;  // size upper_bounds_ + 1
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Owner and exporter for all metrics of one tuning process.
///
/// Get*() registers on first use and returns a stable pointer; callers
/// cache the pointer at wiring time so the hot path is a single atomic
/// add. Exports as Prometheus text exposition format and as JSON.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  /// Returns the existing histogram when `name` was registered before
  /// (the bounds of the first registration win).
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> upper_bounds);

  /// Prometheus text exposition (one # HELP/# TYPE pair and one or more
  /// sample lines per metric), name-sorted.
  void WritePrometheus(std::ostream& os) const;

  /// Flat JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  void WriteJson(std::ostream& os) const;

  size_t metric_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace locat::obs

#endif  // LOCAT_OBS_METRICS_H_
