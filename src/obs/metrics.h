#ifndef LOCAT_OBS_METRICS_H_
#define LOCAT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/labels.h"

namespace locat::obs {

/// Monotonically increasing value (events, totals). Thread-safe: one
/// relaxed fetch_add on the hot path (C++20 atomic<double>).
class Counter {
 public:
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  void Increment(double delta = 1.0) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::atomic<double> value_{0.0};
};

/// Point-in-time value that may go up or down. Thread-safe.
class Gauge {
 public:
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }

 private:
  std::string name_;
  std::string help_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram (Prometheus classic histogram semantics:
/// cumulative `le` buckets plus an implicit +Inf, with _sum and _count).
///
/// Lock-free: Observe is a bucket search plus three relaxed atomic adds,
/// so it can sit under the BO/simulator hot paths without serializing
/// threads. Reads (export, quantiles) are relaxed snapshots — exact once
/// writers quiesce, momentarily torn (count vs buckets) while they write,
/// which is fine for monitoring output.
class Histogram {
 public:
  /// `upper_bounds` must be strictly ascending; an +Inf bucket is always
  /// appended implicitly.
  Histogram(std::string name, std::string help,
            std::vector<double> upper_bounds);

  void Observe(double value);

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  /// Per-bucket (non-cumulative) counts, last entry = +Inf bucket.
  std::vector<uint64_t> bucket_counts() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Histogram-derived quantile (q in [0,1]), linearly interpolated
  /// inside the winning bucket (the first bucket interpolates from 0 or
  /// from its negative upper bound; the +Inf bucket reports the largest
  /// finite bound). Returns 0 when the histogram is empty.
  double Quantile(double q) const;

 private:
  std::string name_;
  std::string help_;
  std::vector<double> upper_bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // upper_bounds_ + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default bucket boundaries for latency-in-seconds histograms
/// (sub-millisecond through minutes, roughly x4 per step).
std::vector<double> LatencySecondsBuckets();

/// --- Labeled metric families -------------------------------------------
///
/// A family is one metric name with many children, one per LabelSet (e.g.
/// locat_runs_total{app="tpcds",status="failed"}). `WithLabels` registers
/// on first use and returns a stable child pointer; call sites cache the
/// pointer at wiring time so the hot path stays one relaxed atomic op —
/// the family lookup itself takes a mutex and is NOT for hot loops.

class CounterFamily {
 public:
  CounterFamily(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  Counter* WithLabels(const LabelSet& labels);

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  size_t size() const;
  /// Children in label order (stable pointers; safe to read after return).
  std::vector<std::pair<LabelSet, const Counter*>> Children() const;

 private:
  std::string name_;
  std::string help_;
  mutable std::mutex mu_;
  std::map<LabelSet, std::unique_ptr<Counter>> children_;
};

class GaugeFamily {
 public:
  GaugeFamily(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}

  Gauge* WithLabels(const LabelSet& labels);

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  size_t size() const;
  std::vector<std::pair<LabelSet, const Gauge*>> Children() const;

 private:
  std::string name_;
  std::string help_;
  mutable std::mutex mu_;
  std::map<LabelSet, std::unique_ptr<Gauge>> children_;
};

class HistogramFamily {
 public:
  HistogramFamily(std::string name, std::string help,
                  std::vector<double> upper_bounds)
      : name_(std::move(name)),
        help_(std::move(help)),
        upper_bounds_(std::move(upper_bounds)) {}

  Histogram* WithLabels(const LabelSet& labels);

  const std::string& name() const { return name_; }
  const std::string& help() const { return help_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  size_t size() const;
  std::vector<std::pair<LabelSet, const Histogram*>> Children() const;

 private:
  std::string name_;
  std::string help_;
  std::vector<double> upper_bounds_;
  mutable std::mutex mu_;
  std::map<LabelSet, std::unique_ptr<Histogram>> children_;
};

/// Owner and exporter for all metrics of one tuning process.
///
/// Get*() registers on first use and returns a stable pointer; callers
/// cache the pointer at wiring time so the hot path is a single atomic
/// add. Exports as Prometheus text exposition format and as JSON. A
/// metric name must not be reused across kinds (plain vs family, counter
/// vs gauge, ...) — the exposition self-check rejects such output.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  /// Returns the existing histogram when `name` was registered before
  /// (the bounds of the first registration win).
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> upper_bounds);

  CounterFamily* GetCounterFamily(const std::string& name,
                                  const std::string& help = "");
  GaugeFamily* GetGaugeFamily(const std::string& name,
                              const std::string& help = "");
  HistogramFamily* GetHistogramFamily(const std::string& name,
                                      const std::string& help,
                                      std::vector<double> upper_bounds);

  /// Prometheus text exposition (one # HELP/# TYPE pair and one or more
  /// sample lines per metric), name-sorted per kind, with help strings
  /// and label values escaped per the text-format spec. Always passes
  /// CheckPrometheusExposition.
  void WritePrometheus(std::ostream& os) const;

  /// Flat JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{...},
  ///  "families":{"<name>":{"kind":...,"children":[{"labels":{...},...}]}}}
  /// Histogram entries carry bucket counts plus derived p50/p95/p99.
  void WriteJson(std::ostream& os) const;

  size_t metric_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<CounterFamily>> counter_families_;
  std::map<std::string, std::unique_ptr<GaugeFamily>> gauge_families_;
  std::map<std::string, std::unique_ptr<HistogramFamily>> histogram_families_;
};

}  // namespace locat::obs

#endif  // LOCAT_OBS_METRICS_H_
