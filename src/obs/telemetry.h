#ifndef LOCAT_OBS_TELEMETRY_H_
#define LOCAT_OBS_TELEMETRY_H_

#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace locat::obs {

/// Structured record of one charged configuration evaluation inside a BO
/// loop — the per-iteration telemetry every tuner emits when an observer
/// is wired. Events from LOCAT carry the full DAGP/MCMC detail; baseline
/// tuners fill what applies and leave the rest at defaults.
struct BoIterationEvent {
  std::string tuner;           // e.g. "LOCAT", "Tuneful"
  std::string phase;           // "lhs"|"qcsa"|"reduced"|"warm"|"recommend"|...
  int iteration = 0;           // evaluation index within the tune pass
  double datasize_gb = 0.0;
  double eval_seconds = 0.0;   // simulated seconds charged to the meter
  double objective_seconds = 0.0;  // objective value of this evaluation
  double incumbent_seconds = 0.0;  // best objective after this evaluation
  double relative_ei = 0.0;    // of the chosen candidate (0 when no model)
  int candidate_pool = 0;      // EI candidates scanned for this proposal
  bool full_app = true;        // full application vs RQA subset
  double dagp_fit_seconds = 0.0;   // wall seconds of the preceding refit
  double acq_seconds = 0.0;        // wall seconds scoring candidates for
                                   // this proposal (incumbent scan + EI);
                                   // with dagp_fit_seconds this splits the
                                   // per-iteration optimization overhead
                                   // into surrogate-fit vs acquisition
  int mcmc_ensemble = 0;           // fitted GPs in the EI-MCMC ensemble
  int64_t mcmc_density_evals = 0;  // posterior evaluations in that refit
  double mcmc_acceptance = 0.0;    // slice-sampler proposal acceptance rate
  double rqa_share = 0.0;      // estimated RQA/full-app time ratio
  int rqa_queries = 0;         // queries in the reduced application
  int failed_evals = 0;        // cumulative failed evaluations so far
};

/// Phase-level record (analysis results, summaries): a named phase plus a
/// flat bag of numeric fields, e.g. {"csq":33,"ciq":71} for QCSA.
struct PhaseEvent {
  std::string tuner;
  std::string phase;  // "qcsa" | "iicp" | "summary" | ...
  std::vector<std::pair<std::string, double>> fields;
};

/// Hook interface for per-iteration BO telemetry. A null observer (the
/// default everywhere) means telemetry is off; emitters must check for
/// null *before* building events so the disabled path allocates nothing.
class TunerObserver {
 public:
  virtual ~TunerObserver() = default;
  virtual void OnIteration(const BoIterationEvent& event) = 0;
  virtual void OnPhase(const PhaseEvent& event) = 0;
};

/// Writes one JSON object per event to a stream (JSONL), mirroring how
/// sparksim::event_log records simulated runs. The stream must outlive
/// the observer.
class JsonlObserver : public TunerObserver {
 public:
  explicit JsonlObserver(std::ostream* os) : os_(os) {}

  void OnIteration(const BoIterationEvent& event) override;
  void OnPhase(const PhaseEvent& event) override;

 private:
  std::ostream* os_;
};

/// In-memory observer for tests: keeps every event.
class CollectingObserver : public TunerObserver {
 public:
  void OnIteration(const BoIterationEvent& event) override {
    iterations.push_back(event);
  }
  void OnPhase(const PhaseEvent& event) override { phases.push_back(event); }

  std::vector<BoIterationEvent> iterations;
  std::vector<PhaseEvent> phases;
};

/// One reparsed telemetry line: "type" plus flat string/number fields.
struct TelemetryRecord {
  std::string type;  // "iteration" | "phase"
  std::map<std::string, std::string> strings;
  std::map<std::string, double> numbers;  // bools parse as 0/1

  double Num(const std::string& key, double fallback = 0.0) const {
    const auto it = numbers.find(key);
    return it != numbers.end() ? it->second : fallback;
  }
  std::string Str(const std::string& key) const {
    const auto it = strings.find(key);
    return it != strings.end() ? it->second : std::string();
  }
};

/// Parses JSONL produced by JsonlObserver (flat one-level objects).
/// Returns InvalidArgument on a malformed line; empty lines are skipped.
StatusOr<std::vector<TelemetryRecord>> ParseTelemetry(const std::string& text);

/// Bundle of observability sinks threaded through the stack. All pointers
/// are borrowed and may independently be null; a default-constructed
/// context disables everything.
struct ObsContext {
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  TunerObserver* observer = nullptr;

  bool any() const {
    return tracer != nullptr || metrics != nullptr || observer != nullptr;
  }
};

}  // namespace locat::obs

#endif  // LOCAT_OBS_TELEMETRY_H_
