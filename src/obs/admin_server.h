#ifndef LOCAT_OBS_ADMIN_SERVER_H_
#define LOCAT_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/status.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace locat::obs {

/// Embedded admin/metrics HTTP endpoint for long-running serving
/// processes (`locat serve`, or `locat tune --admin-port`).
///
/// Deliberately minimal: POSIX sockets, HTTP/1.0 (one request per
/// connection, no keep-alive), ONE background thread, loopback only.
/// When no server is started the process owns zero sockets and zero
/// threads — the disabled-is-free guarantee of the rest of src/obs.
///
/// Endpoints (GET):
///   /metrics  Prometheus text exposition of the wired registry
///   /varz     the registry as JSON (families carry p50/p95/p99)
///   /healthz  "ok"
///   /statusz  caller-provided status table (per-app serving state)
///   /flightz  flight-recorder window as JSONL
///   /quitz    requests shutdown (WaitForQuit returns; serving continues
///             until Stop) — the remote kill switch for smoke tests
///
/// The server only ever *reads* the wired sinks, all of which are
/// thread-safe, so scraping a live process is always safe and never
/// perturbs results.
class AdminServer {
 public:
  struct Options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
    /// back from port()).
    int port = 0;
    MetricsRegistry* metrics = nullptr;      // /metrics, /varz
    FlightRecorder* flight = nullptr;        // /flightz
    /// Renders /statusz (text/plain). Called from the server thread; must
    /// be thread-safe. Null => a one-line placeholder.
    std::function<std::string()> statusz;

    Options() {}
  };

  /// Binds, listens and starts the serving thread. InvalidArgument when
  /// the port cannot be bound.
  static StatusOr<std::unique_ptr<AdminServer>> Start(Options options);

  ~AdminServer();

  /// Port actually bound (resolves port 0).
  int port() const { return port_; }

  /// True once a /quitz request arrived.
  bool quit_requested() const {
    return quit_.load(std::memory_order_acquire);
  }

  /// Blocks until /quitz or the timeout (seconds; <0 waits forever).
  /// Returns true when quit was requested.
  bool WaitForQuit(double timeout_seconds);

  /// Stops the serving thread and closes the socket. Idempotent; the
  /// destructor calls it.
  void Stop();

  /// Requests served so far (also exported as
  /// locat_admin_requests_total{path=...} when a registry is wired).
  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  explicit AdminServer(Options options);

  void Serve();
  std::string HandleRequest(const std::string& method,
                            const std::string& path, int* http_code,
                            std::string* content_type);

  Options options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> quit_{false};
  std::atomic<uint64_t> requests_{0};
  std::mutex quit_mu_;
  std::condition_variable quit_cv_;
  std::thread thread_;
};

}  // namespace locat::obs

#endif  // LOCAT_OBS_ADMIN_SERVER_H_
