#include "obs/labels.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>

#include "obs/trace.h"

namespace locat::obs {
namespace {

void Canonicalize(std::vector<std::pair<std::string, std::string>>* kv) {
  std::stable_sort(kv->begin(), kv->end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  // Duplicate keys keep the last value given (stable sort preserves the
  // caller's order within one key).
  auto out = kv->begin();
  for (auto it = kv->begin(); it != kv->end(); ++it) {
    auto next = it + 1;
    if (next != kv->end() && next->first == it->first) continue;
    if (out != it) *out = std::move(*it);
    ++out;
  }
  kv->erase(out, kv->end());
}

}  // namespace

LabelSet::LabelSet(
    std::initializer_list<std::pair<std::string, std::string>> kv)
    : kv_(kv) {
  Canonicalize(&kv_);
}

LabelSet::LabelSet(std::vector<std::pair<std::string, std::string>> kv)
    : kv_(std::move(kv)) {
  Canonicalize(&kv_);
}

std::string LabelSet::Get(const std::string& key) const {
  for (const auto& [k, v] : kv_) {
    if (k == key) return v;
  }
  return std::string();
}

std::string LabelSet::ToPrometheus() const {
  if (kv_.empty()) return std::string();
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : kv_) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += PromEscapeLabelValue(v);
    out += '"';
  }
  out += '}';
  return out;
}

std::string LabelSet::ToPrometheus(const std::string& extra_key,
                                   const std::string& extra_value) const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : kv_) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += PromEscapeLabelValue(v);
    out += '"';
  }
  if (!first) out += ',';
  out += extra_key;
  out += "=\"";
  out += PromEscapeLabelValue(extra_value);
  out += "\"}";
  return out;
}

std::string LabelSet::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : kv_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(k);
    out += "\":\"";
    out += JsonEscape(v);
    out += '"';
  }
  out += '}';
  return out;
}

std::string PromEscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string PromEscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

bool ValidMetricName(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
  };
  auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c));
  };
  if (!head(s[0])) return false;
  for (size_t i = 1; i < s.size(); ++i) {
    if (!tail(s[i])) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& s) {
  if (s.empty()) return false;
  auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  if (!head(s[0])) return false;
  for (size_t i = 1; i < s.size(); ++i) {
    if (!head(s[i]) && !std::isdigit(static_cast<unsigned char>(s[i]))) {
      return false;
    }
  }
  return true;
}

bool ParseSampleValue(const std::string& s, double* out) {
  if (s == "+Inf" || s == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (s == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  const char* start = s.c_str();
  char* end = nullptr;
  *out = std::strtod(start, &end);
  return end == start + s.size() && !s.empty();
}

/// One parsed sample line.
struct Sample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;  // as written
  double value = 0.0;
};

/// Parses `name{k="v",...} value [timestamp]`; returns false with *err set
/// on any syntax violation.
bool ParseSampleLine(const std::string& line, Sample* out, std::string* err) {
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ' &&
         line[i] != '\t') {
    ++i;
  }
  out->name = line.substr(0, i);
  if (!ValidMetricName(out->name)) {
    *err = "invalid metric name '" + out->name + "'";
    return false;
  }
  out->labels.clear();
  if (i < line.size() && line[i] == '{') {
    ++i;
    bool first = true;
    while (true) {
      if (i < line.size() && line[i] == '}') {
        ++i;
        break;
      }
      if (!first) {
        if (i >= line.size() || line[i] != ',') {
          *err = "expected ',' between labels";
          return false;
        }
        ++i;
        // A trailing comma before '}' is legal in the exposition format.
        if (i < line.size() && line[i] == '}') {
          ++i;
          break;
        }
      }
      first = false;
      const size_t key_start = i;
      while (i < line.size() && line[i] != '=') ++i;
      if (i >= line.size()) {
        *err = "unterminated label pair";
        return false;
      }
      const std::string key = line.substr(key_start, i - key_start);
      if (!ValidLabelName(key)) {
        *err = "invalid label name '" + key + "'";
        return false;
      }
      ++i;  // '='
      if (i >= line.size() || line[i] != '"') {
        *err = "label value must be double-quoted";
        return false;
      }
      ++i;
      std::string value;
      bool closed = false;
      while (i < line.size()) {
        const char c = line[i];
        if (c == '\\') {
          if (i + 1 >= line.size()) {
            *err = "dangling backslash in label value";
            return false;
          }
          const char esc = line[i + 1];
          if (esc == '\\') {
            value += '\\';
          } else if (esc == '"') {
            value += '"';
          } else if (esc == 'n') {
            value += '\n';
          } else {
            *err = std::string("invalid escape '\\") + esc +
                   "' in label value";
            return false;
          }
          i += 2;
        } else if (c == '"') {
          closed = true;
          ++i;
          break;
        } else {
          value.push_back(c);
          ++i;
        }
      }
      if (!closed) {
        *err = "unterminated label value";
        return false;
      }
      out->labels.emplace_back(key, std::move(value));
    }
  }
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  const size_t val_start = i;
  while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
  const std::string value_str = line.substr(val_start, i - val_start);
  if (!ParseSampleValue(value_str, &out->value)) {
    *err = "malformed sample value '" + value_str + "'";
    return false;
  }
  // Optional timestamp: must be an integer if present.
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  if (i < line.size()) {
    const size_t ts_start = i;
    if (line[i] == '-' || line[i] == '+') ++i;
    while (i < line.size() && std::isdigit(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i != line.size() || i == ts_start) {
      *err = "trailing garbage after sample value";
      return false;
    }
  }
  return true;
}

}  // namespace

Status CheckPrometheusExposition(const std::string& text) {
  std::map<std::string, std::string> types;      // name -> TYPE
  std::set<std::string> names_with_samples;      // base names sampled so far
  // Histogram state per (base name, serialized non-le labels).
  struct HistState {
    double last_bucket = -1.0;
    double last_le = -std::numeric_limits<double>::infinity();
    bool saw_inf = false;
    double inf_value = 0.0;
    bool saw_count = false;
    double count_value = 0.0;
    bool saw_sum = false;
  };
  std::map<std::string, HistState> hists;

  auto fail = [](int line_no, const std::string& what) {
    return Status::InvalidArgument("exposition line " +
                                   std::to_string(line_no) + ": " + what);
  };

  size_t pos = 0;
  int line_no = 0;
  while (pos <= text.size()) {
    const size_t nl = text.find('\n', pos);
    const std::string line = text.substr(
        pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" | "# TYPE name kind" | arbitrary comment.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line[2] == 'T';
        const size_t name_start = 7;
        const size_t name_end = line.find(' ', name_start);
        const std::string name =
            line.substr(name_start, name_end == std::string::npos
                                        ? std::string::npos
                                        : name_end - name_start);
        if (!ValidMetricName(name)) {
          return fail(line_no, "invalid metric name in comment line");
        }
        if (is_type) {
          if (name_end == std::string::npos) {
            return fail(line_no, "# TYPE without a type");
          }
          const std::string kind = line.substr(name_end + 1);
          if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
              kind != "summary" && kind != "untyped") {
            return fail(line_no, "unknown metric type '" + kind + "'");
          }
          if (types.count(name) != 0) {
            return fail(line_no, "duplicate # TYPE for '" + name + "'");
          }
          if (names_with_samples.count(name) != 0) {
            return fail(line_no,
                        "# TYPE for '" + name + "' after its samples");
          }
          types[name] = kind;
        } else {
          // HELP text: a raw backslash must begin a \\ or \n escape.
          const std::string help =
              name_end == std::string::npos ? "" : line.substr(name_end + 1);
          for (size_t i = 0; i < help.size(); ++i) {
            if (help[i] != '\\') continue;
            if (i + 1 >= help.size() ||
                (help[i + 1] != '\\' && help[i + 1] != 'n')) {
              return fail(line_no, "invalid escape in HELP text");
            }
            ++i;
          }
        }
      }
      continue;
    }
    Sample s;
    std::string err;
    if (!ParseSampleLine(line, &s, &err)) return fail(line_no, err);
    // Resolve the base name: _bucket/_sum/_count of a TYPE'd histogram.
    std::string base = s.name;
    std::string suffix;
    for (const char* suf : {"_bucket", "_sum", "_count"}) {
      const std::string sufs(suf);
      if (base.size() > sufs.size() &&
          base.compare(base.size() - sufs.size(), sufs.size(), sufs) == 0) {
        const std::string candidate =
            base.substr(0, base.size() - sufs.size());
        const auto it = types.find(candidate);
        if (it != types.end() && it->second == "histogram") {
          base = candidate;
          suffix = sufs;
          break;
        }
      }
    }
    names_with_samples.insert(base);
    const auto type_it = types.find(base);
    if (type_it == types.end()) {
      return fail(line_no,
                  "sample for '" + base + "' without a preceding # TYPE");
    }
    if (type_it != types.end() && type_it->second == "histogram") {
      if (suffix.empty()) {
        return fail(line_no, "histogram '" + base +
                                 "' sampled without _bucket/_sum/_count");
      }
      // Key histogram series by their labels minus `le`.
      std::string le;
      std::vector<std::pair<std::string, std::string>> rest;
      for (const auto& [k, v] : s.labels) {
        if (k == "le" && suffix == "_bucket") {
          le = v;
        } else {
          rest.emplace_back(k, v);
        }
      }
      HistState& hs = hists[base + LabelSet(std::move(rest)).ToPrometheus()];
      if (suffix == "_bucket") {
        if (le.empty()) {
          return fail(line_no, "_bucket sample without an le label");
        }
        double le_value = 0.0;
        if (!ParseSampleValue(le, &le_value)) {
          return fail(line_no, "malformed le value '" + le + "'");
        }
        if (le_value <= hs.last_le) {
          return fail(line_no, "le values must be strictly ascending");
        }
        if (s.value < hs.last_bucket) {
          return fail(line_no, "cumulative bucket counts must not decrease");
        }
        hs.last_le = le_value;
        hs.last_bucket = s.value;
        if (std::isinf(le_value) && le_value > 0.0) {
          hs.saw_inf = true;
          hs.inf_value = s.value;
        }
      } else if (suffix == "_count") {
        hs.saw_count = true;
        hs.count_value = s.value;
      } else {
        hs.saw_sum = true;
      }
    }
  }
  for (const auto& [key, hs] : hists) {
    if (!hs.saw_inf) {
      return Status::InvalidArgument("histogram series " + key +
                                     " has no le=\"+Inf\" bucket");
    }
    if (!hs.saw_sum || !hs.saw_count) {
      return Status::InvalidArgument("histogram series " + key +
                                     " is missing _sum or _count");
    }
    if (hs.count_value != hs.inf_value) {
      return Status::InvalidArgument(
          "histogram series " + key +
          ": _count disagrees with the +Inf bucket");
    }
  }
  return Status::OK();
}

}  // namespace locat::obs
