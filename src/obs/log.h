#ifndef LOCAT_OBS_LOG_H_
#define LOCAT_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>

#include "common/status.h"

namespace locat::obs {

class FlightRecorder;

/// Log severities, ascending. kOff disables everything (the default):
/// a disabled logger costs one relaxed atomic load per call site and
/// never reads a clock, allocates, or perturbs any RNG.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

const char* LogLevelName(LogLevel level);                     // "debug"...
StatusOr<LogLevel> ParseLogLevel(const std::string& name);    // + "off"

/// One structured field attached to a log record (numeric or string).
struct LogField {
  LogField(const char* k, double v) : key(k), num(v), is_num(true) {}
  LogField(const char* k, int v)
      : key(k), num(static_cast<double>(v)), is_num(true) {}
  LogField(const char* k, std::string v)
      : key(k), str(std::move(v)), is_num(false) {}
  LogField(const char* k, const char* v) : key(k), str(v), is_num(false) {}

  const char* key;
  double num = 0.0;
  std::string str;
  bool is_num;
};

/// Leveled, thread-safe structured logger.
///
/// Sinks: human-readable stderr (the default) or JSONL to a stream/file —
/// one flat JSON object per record ({"type":"log","level":...,...}),
/// parseable by obs::ParseTelemetry. An optional token bucket caps the
/// sustained record rate (drops are counted and reported on the next
/// record that passes); an optional FlightRecorder tee mirrors every
/// record into the crash window regardless of sink.
///
/// `Global()` is the process logger the CLI/harness write to; libraries
/// must tolerate it being off (the default) at zero cost.
class Log {
 public:
  Log();
  ~Log();

  static Log* Global();

  void SetLevel(LogLevel level) {
    level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(level_.load(std::memory_order_relaxed));
  }
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >= level_.load(std::memory_order_relaxed);
  }

  /// Routes records to stderr in human-readable form (the default sink).
  void SetStderrSink();
  /// Routes records to `os` as JSONL; `os` must outlive the logger.
  void SetJsonlSink(std::ostream* os);
  /// Opens `path` and routes records there as JSONL.
  Status OpenJsonlFile(const std::string& path);

  /// Mirrors every record into `recorder` (null disconnects).
  void SetFlightRecorder(FlightRecorder* recorder) {
    flight_ = recorder;
  }

  /// Token-bucket rate limit: at most `burst` records instantly and
  /// `per_sec` sustained; excess records are dropped (counted). 0
  /// disables limiting (the default).
  void SetRateLimit(double per_sec, double burst);

  uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  uint64_t written() const {
    return written_.load(std::memory_order_relaxed);
  }

  void Write(LogLevel level, const char* component, const std::string& message,
             std::initializer_list<LogField> fields = {});

  void Debug(const char* component, const std::string& message,
             std::initializer_list<LogField> fields = {}) {
    if (Enabled(LogLevel::kDebug)) {
      Write(LogLevel::kDebug, component, message, fields);
    }
  }
  void Info(const char* component, const std::string& message,
            std::initializer_list<LogField> fields = {}) {
    if (Enabled(LogLevel::kInfo)) {
      Write(LogLevel::kInfo, component, message, fields);
    }
  }
  void Warn(const char* component, const std::string& message,
            std::initializer_list<LogField> fields = {}) {
    if (Enabled(LogLevel::kWarn)) {
      Write(LogLevel::kWarn, component, message, fields);
    }
  }
  void Error(const char* component, const std::string& message,
             std::initializer_list<LogField> fields = {}) {
    if (Enabled(LogLevel::kError)) {
      Write(LogLevel::kError, component, message, fields);
    }
  }

 private:
  /// Takes one token; returns false (and counts a drop) when the bucket
  /// is empty. Called with mu_ held.
  bool TakeToken();

  std::atomic<int> level_{static_cast<int>(LogLevel::kOff)};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> written_{0};
  FlightRecorder* flight_ = nullptr;

  std::mutex mu_;
  std::ostream* os_ = nullptr;  // null => stderr sink
  bool jsonl_ = false;
  std::unique_ptr<std::ostream> owned_os_;
  // Token bucket (guarded by mu_).
  double rate_per_sec_ = 0.0;  // 0 => unlimited
  double burst_ = 0.0;
  double tokens_ = 0.0;
  uint64_t last_refill_ns_ = 0;
  uint64_t dropped_unreported_ = 0;
};

}  // namespace locat::obs

#endif  // LOCAT_OBS_LOG_H_
