#include "obs/log.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>

#include "obs/clock.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace locat::obs {
namespace {

std::string Fmt(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

/// Wall-clock timestamp "2026-08-08T12:34:56.789Z" for the stderr sink.
/// (The JSONL sink records monotonic t_ns instead, which is what the
/// flight recorder and trace lanes use — wall time only exists for
/// humans tailing stderr.)
std::string WallTimestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          now.time_since_epoch())
          .count() %
      1000);
  std::tm tm_utc;
  gmtime_r(&secs, &tm_utc);
  char buf[40];
  const size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm_utc);
  std::snprintf(buf + n, sizeof(buf) - n, ".%03dZ", millis);
  return buf;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "off";
}

StatusOr<LogLevel> ParseLogLevel(const std::string& name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return Status::InvalidArgument(
      "log level must be debug|info|warn|error|off, got '" + name + "'");
}

Log::Log() = default;
Log::~Log() = default;

Log* Log::Global() {
  static Log* log = new Log();  // leaked: outlives every logging thread
  return log;
}

void Log::SetStderrSink() {
  std::lock_guard<std::mutex> lock(mu_);
  os_ = nullptr;
  jsonl_ = false;
  owned_os_.reset();
}

void Log::SetJsonlSink(std::ostream* os) {
  std::lock_guard<std::mutex> lock(mu_);
  os_ = os;
  jsonl_ = true;
  owned_os_.reset();
}

Status Log::OpenJsonlFile(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path, std::ios::app);
  if (!*file) {
    return Status::InvalidArgument("cannot open log file " + path);
  }
  std::lock_guard<std::mutex> lock(mu_);
  os_ = file.get();
  jsonl_ = true;
  owned_os_ = std::move(file);
  return Status::OK();
}

void Log::SetRateLimit(double per_sec, double burst) {
  std::lock_guard<std::mutex> lock(mu_);
  rate_per_sec_ = per_sec;
  burst_ = burst > 0.0 ? burst : per_sec;
  tokens_ = burst_;
  last_refill_ns_ = MonotonicClock::Default()->NowNanos();
}

bool Log::TakeToken() {
  if (rate_per_sec_ <= 0.0) return true;
  const uint64_t now = MonotonicClock::Default()->NowNanos();
  const double elapsed_s =
      static_cast<double>(now - last_refill_ns_) * 1e-9;
  last_refill_ns_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_per_sec_);
  if (tokens_ < 1.0) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    ++dropped_unreported_;
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

void Log::Write(LogLevel level, const char* component,
                const std::string& message,
                std::initializer_list<LogField> fields) {
  if (!Enabled(level) || level == LogLevel::kOff) return;
  const uint64_t t_ns = MonotonicClock::Default()->NowNanos();

  if (flight_ != nullptr) {
    flight_->Record("log", LogLevelName(level), component, message.c_str());
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!TakeToken()) return;
  const uint64_t dropped_note = dropped_unreported_;
  dropped_unreported_ = 0;
  written_.fetch_add(1, std::memory_order_relaxed);

  if (jsonl_ && os_ != nullptr) {
    std::ostream& os = *os_;
    os << "{\"type\":\"log\",\"t_ns\":" << t_ns << ",\"level\":\""
       << LogLevelName(level) << "\",\"component\":\"" << JsonEscape(component)
       << "\",\"msg\":\"" << JsonEscape(message) << "\"";
    for (const LogField& f : fields) {
      os << ",\"" << JsonEscape(f.key) << "\":";
      if (f.is_num) {
        os << Fmt(f.num);
      } else {
        os << "\"" << JsonEscape(f.str) << "\"";
      }
    }
    if (dropped_note > 0) os << ",\"dropped_before\":" << dropped_note;
    os << "}\n";
    os.flush();
    return;
  }

  // Human-readable stderr line.
  std::string line = WallTimestamp();
  line += ' ';
  const char* name = LogLevelName(level);
  line += static_cast<char>(std::toupper(static_cast<unsigned char>(name[0])));
  line += ' ';
  line += component;
  line += ": ";
  line += message;
  for (const LogField& f : fields) {
    line += ' ';
    line += f.key;
    line += '=';
    line += f.is_num ? Fmt(f.num) : f.str;
  }
  if (dropped_note > 0) {
    line += " (dropped ";
    line += std::to_string(dropped_note);
    line += " earlier records)";
  }
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace locat::obs
