#ifndef LOCAT_COMMON_RETRY_POLICY_H_
#define LOCAT_COMMON_RETRY_POLICY_H_

namespace locat::common {

/// Exponential-backoff retry budget for failed application runs. The
/// backoff is charged to the tuner's simulated optimization-time meter —
/// a failed Spark run is not free, and the budget caps how much wall
/// clock the tuner may burn re-trying a config that keeps dying.
struct RetryPolicy {
  int max_retries = 2;
  double initial_backoff_seconds = 30.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 600.0;

  /// Backoff charged before retry `attempt` (0-based): clamped
  /// initial * multiplier^attempt. Returns 0 for a non-positive budget.
  double BackoffSeconds(int attempt) const;
};

}  // namespace locat::common

#endif  // LOCAT_COMMON_RETRY_POLICY_H_
