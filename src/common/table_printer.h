#ifndef LOCAT_COMMON_TABLE_PRINTER_H_
#define LOCAT_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace locat {

/// Renders fixed-width ASCII tables; every bench binary uses this so
/// figure/table reproductions print in a uniform, diff-friendly format.
///
/// Usage:
///   TablePrinter tp({"query", "CV"});
///   tp.AddRow({"Q72", "3.49"});
///   tp.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one data row; short rows are padded with empty cells, long
  /// rows extend the column set.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` digits after the point.
  static std::string Num(double value, int precision = 2);

  /// Writes the table with a header separator line.
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner like "=== Figure 8: ... ===" so that concatenated
/// bench output stays navigable.
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace locat

#endif  // LOCAT_COMMON_TABLE_PRINTER_H_
