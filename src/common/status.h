#ifndef LOCAT_COMMON_STATUS_H_
#define LOCAT_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace locat {

/// Error categories used across the library. Modeled after the
/// RocksDB/Abseil status idiom: recoverable errors are returned, never
/// thrown.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kUnimplemented,
};

/// Returns a short human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. Functions that can fail return
/// `Status` (or `StatusOr<T>` when they also produce a value).
///
/// Usage:
///   Status s = DoWork();
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Holds either a value of type `T` or an error `Status`. Accessing the
/// value of a non-OK StatusOr aborts in debug builds (assert).
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (mirrors absl::StatusOr).
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace locat

/// Propagates a non-OK status from an expression, RocksDB-style.
#define LOCAT_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::locat::Status _locat_status = (expr);         \
    if (!_locat_status.ok()) return _locat_status;  \
  } while (0)

#endif  // LOCAT_COMMON_STATUS_H_
