#ifndef LOCAT_COMMON_RNG_H_
#define LOCAT_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace locat {

/// Deterministic, seedable pseudo-random number generator used everywhere in
/// the library so that experiments are exactly reproducible.
///
/// The generator is xoshiro256** (Blackman & Vigna) seeded through
/// SplitMix64, which gives high-quality streams even from small integer
/// seeds. Not cryptographically secure; not thread-safe (use one Rng per
/// thread or per component).
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Equal seeds yield identical
  /// streams on all platforms.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi; returns lo when equal.
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal variate (Box–Muller with caching).
  double NextGaussian();

  /// Normal variate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Lognormal multiplicative-noise factor: exp(N(0, sigma) - sigma^2/2),
  /// which has mean exactly 1. Used for run-to-run execution-time noise.
  double LognormalNoise(double sigma);

  /// True with probability `p` (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n);

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (int i = static_cast<int>(values->size()) - 1; i > 0; --i) {
      int j = static_cast<int>(UniformInt(0, i));
      std::swap((*values)[i], (*values)[j]);
    }
  }

  /// Derives an independent child generator; convenient for giving each
  /// subsystem (simulator noise, tuner proposals, ...) its own stream.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace locat

#endif  // LOCAT_COMMON_RNG_H_
