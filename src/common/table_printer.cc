#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

namespace locat {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  size_t ncols = header_.size();
  for (const auto& row : rows_) ncols = std::max(ncols, row.size());

  std::vector<size_t> widths(ncols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < ncols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      os << " " << std::left << std::setw(static_cast<int>(widths[c])) << cell
         << " |";
    }
    os << "\n";
  };

  print_row(header_);
  os << "|";
  for (size_t c = 0; c < ncols; ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace locat
