#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>

namespace locat::common {
namespace {

/// Set while a thread executes tasks for a pool; lets ParallelFor detect
/// re-entrant use of the same pool and degrade to inline execution.
thread_local const ThreadPool* g_current_pool = nullptr;

int DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool>& slot =
      *new std::unique_ptr<ThreadPool>();
  return slot;
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int t = 0; t < num_threads_ - 1; ++t) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutting down
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  const size_t blocks =
      std::min<size_t>(static_cast<size_t>(num_threads_), n);
  if (blocks <= 1 || g_current_pool == this) {
    fn(0, n);
    return;
  }

  // Contiguous even partition: block b covers [b*base + min(b, rem), ...).
  const size_t base = n / blocks;
  const size_t rem = n % blocks;
  auto block_begin = [&](size_t b) { return b * base + std::min(b, rem); };

  struct BlockState {
    std::vector<std::exception_ptr> errors;
    std::atomic<size_t> remaining;
    std::mutex done_mu;
    std::condition_variable done_cv;
  };
  auto state = std::make_shared<BlockState>();
  state->errors.resize(blocks);
  state->remaining.store(blocks, std::memory_order_relaxed);

  auto run_block = [state, &fn, this](size_t b, size_t begin, size_t end) {
    const ThreadPool* prev = g_current_pool;
    g_current_pool = this;
    try {
      fn(begin, end);
    } catch (...) {
      state->errors[b] = std::current_exception();
    }
    g_current_pool = prev;
    if (state->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(state->done_mu);
      state->done_cv.notify_all();
    }
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t b = 1; b < blocks; ++b) {
      const size_t begin = block_begin(b);
      const size_t end = block_begin(b + 1);
      tasks_.push_back([run_block, b, begin, end] { run_block(b, begin, end); });
    }
  }
  work_available_.notify_all();

  // The caller works too: block 0 runs here.
  run_block(0, 0, block_begin(1));

  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(lock, [&] {
      return state->remaining.load(std::memory_order_acquire) == 0;
    });
  }
  // Deterministic propagation: the lowest-indexed failing block wins,
  // independent of scheduling order.
  for (size_t b = 0; b < blocks; ++b) {
    if (state->errors[b]) std::rethrow_exception(state->errors[b]);
  }
}

void ThreadPool::ParallelForEach(size_t n,
                                 const std::function<void(size_t)>& fn) {
  ParallelFor(n, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::Submit(std::function<void()> task) {
  if (num_threads_ <= 1 || g_current_pool == this) {
    task();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

ThreadPool* ThreadPool::Global() {
  auto& slot = GlobalSlot();
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(DefaultThreads());
  return slot.get();
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  auto& slot = GlobalSlot();
  slot = std::make_unique<ThreadPool>(
      num_threads <= 0 ? DefaultThreads() : num_threads);
}

}  // namespace locat::common
