#ifndef LOCAT_COMMON_THREAD_POOL_H_
#define LOCAT_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace locat::common {

/// A deliberately simple fixed-size thread pool: one mutex-protected task
/// queue, no work stealing. It exists for the BO hot path (EI-MCMC ensemble
/// fits, acquisition-pool scoring, simulator query fan-out), where the work
/// items are chunky enough that queue contention is irrelevant and where
/// *determinism* matters more than the last few percent of throughput.
///
/// Determinism contract: `ParallelFor` partitions [0, n) into contiguous
/// blocks, each index is executed exactly once, and no reduction happens
/// inside the pool — callers write results into per-index slots, so the
/// outcome is bit-identical for any thread count (including 1, which runs
/// everything inline on the caller). Worker threads must not draw from any
/// shared RNG; RNG consumption stays on the calling thread.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the calling thread is the last
  /// "worker" during ParallelFor). `num_threads <= 1` spawns nothing and
  /// makes every ParallelFor run inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(begin, end)` over a partition of [0, n) into at most
  /// `num_threads()` contiguous blocks. Blocks until every block finished.
  /// The caller executes the first block itself. If any block throws, the
  /// exception of the lowest-indexed throwing block is rethrown after all
  /// blocks completed (deterministic exception choice).
  ///
  /// Re-entrant calls from inside a pool task of the *same* pool run
  /// inline (single block on the calling thread) — nested parallelism
  /// would otherwise deadlock a fully-busy queue.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  /// Per-index convenience wrapper over ParallelFor.
  void ParallelForEach(size_t n, const std::function<void(size_t)>& fn);

  /// Enqueues one fire-and-forget task. Unlike ParallelFor the caller
  /// does NOT participate or wait; completion is the task's own business
  /// (pair with a promise/future or condition variable). A pool with no
  /// workers (`num_threads() <= 1`) runs the task inline before
  /// returning, so single-threaded configurations stay deterministic and
  /// never deadlock a waiter. Tasks submitted from inside a pool task of
  /// the same pool also run inline — queueing them behind a full queue of
  /// blocked parents could deadlock.
  void Submit(std::function<void()> task);

  /// The process-wide pool used by the BO hot path. Defaults to
  /// `std::thread::hardware_concurrency()` threads; `SetGlobalThreads`
  /// rebuilds it (not thread-safe against concurrent ParallelFor — call it
  /// from the main thread between tuning passes, e.g. when parsing
  /// `--threads`).
  static ThreadPool* Global();
  static void SetGlobalThreads(int num_threads);

 private:
  void WorkerLoop();

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_available_;
  std::deque<std::function<void()>> tasks_;
  bool shutting_down_ = false;
};

}  // namespace locat::common

#endif  // LOCAT_COMMON_THREAD_POOL_H_
