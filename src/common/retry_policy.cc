#include "common/retry_policy.h"

#include <algorithm>
#include <cmath>

namespace locat::common {

double RetryPolicy::BackoffSeconds(int attempt) const {
  if (initial_backoff_seconds <= 0.0 || attempt < 0) return 0.0;
  const double raw =
      initial_backoff_seconds * std::pow(std::max(1.0, backoff_multiplier),
                                         static_cast<double>(attempt));
  return std::min(raw, max_backoff_seconds);
}

}  // namespace locat::common
