#include "common/rng.h"

#include <cmath>
#include <numeric>

namespace locat {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  if (lo >= hi) return lo;
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = range * (UINT64_MAX / range);
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return lo + static_cast<int64_t>(v % range);
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller transform; u1 in (0, 1] to keep log() finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

double Rng::LognormalNoise(double sigma) {
  return std::exp(Gaussian(-0.5 * sigma * sigma, sigma));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Shuffle(&perm);
  return perm;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace locat
