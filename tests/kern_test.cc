// Property tests for the SIMD kernel layer: the scalar backend and the
// best available SIMD backend must agree BIT-FOR-BIT on every kernel, for
// sizes covering full vectors, remainder lanes (n % 4 != 0), and the
// empty/degenerate edges. Accuracy of the shared polynomial exp is checked
// against libm separately (it intentionally is not libm).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/tuning.h"
#include "harness/experiments.h"
#include "math/cholesky.h"
#include "math/kern/kern.h"
#include "math/matrix.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat::math::kern {
namespace {

bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, 8);
  std::memcpy(&bb, &b, 8);
  return ba == bb;
}

#define EXPECT_SAME_BITS(a, b) \
  EXPECT_PRED2(SameBits, (a), (b)) << "values: " << (a) << " vs " << (b)

std::vector<double> RandomVec(Rng* rng, size_t n, double scale = 1.0) {
  std::vector<double> v(n);
  for (auto& x : v) x = scale * rng->NextGaussian();
  return v;
}

/// Runs `body` under the scalar backend and under the best backend,
/// restoring the entry dispatch afterwards. When the best backend IS
/// scalar (no SIMD on this CPU), the test degenerates to scalar==scalar,
/// which is fine: the CI x86 runners exercise the real comparison.
template <typename Fn>
void CompareBackends(Fn body) {
  const Backend entry = ActiveBackend();
  SetBackend(Backend::kScalar);
  body(/*is_reference=*/true);
  SetBackend(BestBackend());
  body(/*is_reference=*/false);
  SetBackend(entry);
}

// Sizes straddling the 4-lane width: empty, sub-vector, exact multiples,
// and every remainder class.
const size_t kSizes[] = {0, 1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 97, 240};

TEST(KernBackendEquality, DotSumSqDist) {
  Rng rng(42);
  for (size_t n : kSizes) {
    const auto a = RandomVec(&rng, n);
    const auto b = RandomVec(&rng, n);
    const auto w = RandomVec(&rng, n, 0.5);
    double ref_dot = 0, ref_sum = 0, ref_sq = 0, ref_wsq = 0;
    CompareBackends([&](bool is_reference) {
      const double d = Dot(a.data(), b.data(), n);
      const double s = Sum(a.data(), n);
      const double sq = SquaredDistance(a.data(), b.data(), n);
      const double wsq = WeightedSquaredDistance(a.data(), b.data(), w.data(), n);
      if (is_reference) {
        ref_dot = d;
        ref_sum = s;
        ref_sq = sq;
        ref_wsq = wsq;
      } else {
        EXPECT_SAME_BITS(ref_dot, d) << "dot n=" << n;
        EXPECT_SAME_BITS(ref_sum, s) << "sum n=" << n;
        EXPECT_SAME_BITS(ref_sq, sq) << "sqdist n=" << n;
        EXPECT_SAME_BITS(ref_wsq, wsq) << "wsqdist n=" << n;
      }
    });
  }
}

TEST(KernBackendEquality, RowBatchesMatchSingleCalls) {
  Rng rng(7);
  const size_t dim = 13, nrows = 9, stride = 17;
  const auto rows = RandomVec(&rng, nrows * stride);
  const auto q = RandomVec(&rng, dim);
  const auto w = RandomVec(&rng, dim, 0.3);
  CompareBackends([&](bool) {
    std::vector<double> out(nrows), wout(nrows), mv(nrows);
    SquaredDistanceRows(rows.data(), nrows, dim, stride, q.data(), out.data());
    WeightedSquaredDistanceRows(rows.data(), nrows, dim, stride, q.data(),
                                w.data(), wout.data());
    std::vector<double> m(nrows * dim);
    for (size_t i = 0; i < m.size(); ++i) m[i] = rows[i % rows.size()];
    MatVecRowMajor(m.data(), nrows, dim, q.data(), mv.data());
    for (size_t r = 0; r < nrows; ++r) {
      EXPECT_SAME_BITS(out[r],
                       SquaredDistance(rows.data() + r * stride, q.data(), dim));
      EXPECT_SAME_BITS(wout[r],
                       WeightedSquaredDistance(rows.data() + r * stride,
                                               q.data(), w.data(), dim));
      EXPECT_SAME_BITS(mv[r], Dot(m.data() + r * dim, q.data(), dim));
    }
  });
}

TEST(KernBackendEquality, Elementwise) {
  Rng rng(99);
  for (size_t n : kSizes) {
    const auto a = RandomVec(&rng, n);
    const auto b = RandomVec(&rng, n);
    std::vector<double> ref_y, ref_sq, ref_sh, ref_acc;
    CompareBackends([&](bool is_reference) {
      auto y = b;
      Axpy(1.7, a.data(), y.data(), n);
      Scale(0.37, y.data(), n);
      auto acc = b;
      AddSquares(a.data(), acc.data(), n);
      std::vector<double> sq(n), sh(n);
      SubSquare(a.data(), b.data(), sq.data(), n);
      SubtractShift(a.data(), b.data(), 0.125, sh.data(), n);
      if (is_reference) {
        ref_y = y;
        ref_acc = acc;
        ref_sq = sq;
        ref_sh = sh;
      } else {
        for (size_t i = 0; i < n; ++i) {
          EXPECT_SAME_BITS(ref_y[i], y[i]);
          EXPECT_SAME_BITS(ref_acc[i], acc[i]);
          EXPECT_SAME_BITS(ref_sq[i], sq[i]);
          EXPECT_SAME_BITS(ref_sh[i], sh[i]);
        }
      }
    });
  }
}

// The batch-engine elementwise ops (Mul/Add/Min/Max + scalar-operand
// variants): backends bit-equal, and every element equals the obvious
// per-element formula (these ops are one rounding each, so the scalar
// check is exact, not approximate).
TEST(KernBackendEquality, BatchElementwise) {
  Rng rng(1001);
  for (size_t n : kSizes) {
    const auto a = RandomVec(&rng, n);
    const auto b = RandomVec(&rng, n);
    const double s = rng.Uniform(-2.0, 2.0);
    std::vector<double> ref_mul, ref_add, ref_min, ref_max, ref_muls,
        ref_mins, ref_maxs;
    CompareBackends([&](bool is_reference) {
      std::vector<double> mul(n), add(n), mn(n), mx(n), muls(n), mins(n),
          maxs(n);
      Mul(a.data(), b.data(), mul.data(), n);
      Add(a.data(), b.data(), add.data(), n);
      Min(a.data(), b.data(), mn.data(), n);
      Max(a.data(), b.data(), mx.data(), n);
      MulScalar(s, a.data(), muls.data(), n);
      MinScalar(s, a.data(), mins.data(), n);
      MaxScalar(s, a.data(), maxs.data(), n);
      if (is_reference) {
        ref_mul = mul;
        ref_add = add;
        ref_min = mn;
        ref_max = mx;
        ref_muls = muls;
        ref_mins = mins;
        ref_maxs = maxs;
        for (size_t i = 0; i < n; ++i) {
          EXPECT_SAME_BITS(mul[i], a[i] * b[i]);
          EXPECT_SAME_BITS(add[i], a[i] + b[i]);
          EXPECT_SAME_BITS(mn[i], std::min(a[i], b[i]));
          EXPECT_SAME_BITS(mx[i], std::max(a[i], b[i]));
          EXPECT_SAME_BITS(muls[i], s * a[i]);
          EXPECT_SAME_BITS(mins[i], std::min(s, a[i]));
          EXPECT_SAME_BITS(maxs[i], std::max(s, a[i]));
        }
      } else {
        for (size_t i = 0; i < n; ++i) {
          EXPECT_SAME_BITS(ref_mul[i], mul[i]);
          EXPECT_SAME_BITS(ref_add[i], add[i]);
          EXPECT_SAME_BITS(ref_min[i], mn[i]);
          EXPECT_SAME_BITS(ref_max[i], mx[i]);
          EXPECT_SAME_BITS(ref_muls[i], muls[i]);
          EXPECT_SAME_BITS(ref_mins[i], mins[i]);
          EXPECT_SAME_BITS(ref_maxs[i], maxs[i]);
        }
      }
    });
  }
}

TEST(KernBackendEquality, ExpScaled) {
  Rng rng(1234);
  for (size_t n : kSizes) {
    // GP-shaped inputs: nonnegative squared distances, pre < 0.
    auto x = RandomVec(&rng, n);
    for (auto& v : x) v = v * v * 50.0;
    std::vector<double> ref;
    CompareBackends([&](bool is_reference) {
      auto y = x;
      ExpScaled(y.data(), n, -0.37, 1.3);
      if (is_reference) {
        ref = y;
      } else {
        for (size_t i = 0; i < n; ++i) EXPECT_SAME_BITS(ref[i], y[i]);
      }
    });
  }
}

TEST(KernExp, MatchesLibmClosely) {
  // The polynomial exp is not libm, but over the GP-relevant range it must
  // agree to a few ulp (the fast-vs-reference GP suites assert 1e-10).
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.Uniform(-60.0, 1.0);
    const double ours = Exp(x);
    const double libm = std::exp(x);
    EXPECT_NEAR(ours, libm, 4e-15 * libm) << "x=" << x;
  }
  EXPECT_EQ(Exp(0.0), 1.0);  // exact: kernels require k(x,x) == 1.0
  EXPECT_EQ(Exp(-1000.0), 0.0);  // documented flush to zero
  EXPECT_GT(Exp(709.0), 1e307);  // documented saturation
}

TEST(KernExp, ScalarEntryMatchesVectorLanes) {
  Rng rng(6);
  const size_t n = 64;
  auto x = RandomVec(&rng, n, 10.0);
  CompareBackends([&](bool) {
    auto y = x;
    ExpScaled(y.data(), n, 1.0, 1.0);
    for (size_t i = 0; i < n; ++i) EXPECT_SAME_BITS(y[i], Exp(x[i]));
  });
}

TEST(KernBackendEquality, GemmAndGemmBt) {
  Rng rng(21);
  const size_t shapes[][3] = {
      {1, 1, 1}, {3, 5, 2}, {8, 8, 8}, {13, 7, 9}, {40, 33, 17}, {65, 64, 63}};
  for (const auto& s : shapes) {
    const size_t m = s[0], k = s[1], n = s[2];
    const auto a = RandomVec(&rng, m * k);
    const auto b = RandomVec(&rng, k * n);
    const auto bt = RandomVec(&rng, n * k);
    std::vector<double> ref_c, ref_ct;
    CompareBackends([&](bool is_reference) {
      std::vector<double> c(m * n, -777.0), ct(m * n, -777.0);
      Gemm(a.data(), m, k, b.data(), n, c.data());
      GemmTransposedB(a.data(), m, bt.data(), n, k, ct.data());
      if (is_reference) {
        ref_c = c;
        ref_ct = ct;
        // Cross-check against a naive triple loop (tolerance, not bits).
        for (size_t i = 0; i < m; ++i)
          for (size_t j = 0; j < n; ++j) {
            double acc = 0, acct = 0;
            for (size_t kk = 0; kk < k; ++kk) {
              acc += a[i * k + kk] * b[kk * n + j];
              acct += a[i * k + kk] * bt[j * k + kk];
            }
            EXPECT_NEAR(c[i * n + j], acc, 1e-10);
            EXPECT_NEAR(ct[i * n + j], acct, 1e-10);
          }
      } else {
        for (size_t i = 0; i < m * n; ++i) {
          EXPECT_SAME_BITS(ref_c[i], c[i]);
          EXPECT_SAME_BITS(ref_ct[i], ct[i]);
        }
      }
    });
  }
}

TEST(KernBackendEquality, CholeskyAndSolve) {
  Rng rng(31);
  for (size_t n : {1u, 2u, 5u, 8u, 31u, 32u, 33u, 64u, 97u}) {
    // Random SPD matrix: B * B^T + n * I.
    Matrix bmat(n, n);
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j) bmat(i, j) = rng.NextGaussian();
    Matrix spd = bmat.MultiplyTransposed(bmat);
    spd.AddToDiagonal(static_cast<double>(n));
    const size_t m = 6;
    const auto rhs = RandomVec(&rng, n * m);
    std::vector<double> ref_l, ref_y;
    CompareBackends([&](bool is_reference) {
      std::vector<double> a(n * n);
      for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j) a[i * n + j] = spd(i, j);
      ASSERT_EQ(CholeskyFactorInPlace(a.data(), n), -1);
      auto y = rhs;
      SolveLowerMatrixInPlace(a.data(), n, y.data(), m);
      if (is_reference) {
        ref_l = a;
        ref_y = y;
      } else {
        for (size_t i = 0; i < n; ++i)
          for (size_t j = 0; j <= i; ++j)
            EXPECT_SAME_BITS(ref_l[i * n + j], a[i * n + j])
                << "L(" << i << "," << j << ") n=" << n;
        for (size_t i = 0; i < n * m; ++i) EXPECT_SAME_BITS(ref_y[i], y[i]);
      }
    });
  }
}

TEST(KernCholesky, ReportsFirstBadPivot) {
  // Indefinite matrix: the factorization must fail deterministically with
  // the same pivot index on every backend (the SPD-jitter retry path in
  // Cholesky::FactorWithJitter depends on this agreement).
  const size_t n = 5;
  Matrix m = Matrix::Identity(n);
  m(3, 3) = -4.0;  // first bad pivot at index 3
  ptrdiff_t ref = -2;
  CompareBackends([&](bool is_reference) {
    std::vector<double> a(n * n);
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j) a[i * n + j] = m(i, j);
    const ptrdiff_t piv = CholeskyFactorInPlace(a.data(), n);
    if (is_reference) {
      ref = piv;
      EXPECT_EQ(piv, 3);
    } else {
      EXPECT_EQ(ref, piv);
    }
  });
}

TEST(KernCholesky, JitterRetryPathBitIdentical) {
  // A barely-indefinite matrix drives Cholesky::FactorWithJitter through
  // its retry loop; the recovered factor must be bit-identical across
  // backends (jitter amounts are data-dependent).
  Rng rng(77);
  const size_t n = 24;
  Matrix bmat(n, 3);  // rank-3 Gram: massively rank-deficient
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < 3; ++j) bmat(i, j) = rng.NextGaussian();
  const Matrix gram = bmat.MultiplyTransposed(bmat);
  Matrix ref_l(1, 1);
  double ref_jitter = -1.0;
  bool have_ref = false;
  CompareBackends([&](bool is_reference) {
    auto result = Cholesky::FactorWithJitter(gram);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    const Cholesky& chol = *result;
    if (is_reference) {
      ref_l = chol.L();
      ref_jitter = chol.jitter();
      have_ref = true;
      EXPECT_GT(chol.jitter(), 0.0);  // the path actually retried
    } else {
      ASSERT_TRUE(have_ref);
      EXPECT_EQ(ref_jitter, chol.jitter());
      const Matrix& l = chol.L();
      for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j <= i; ++j)
          EXPECT_SAME_BITS(ref_l(i, j), l(i, j));
    }
  });
}

// ---------------------------------------------------------------------------
// Rank-1 Cholesky maintenance: the O(n^2) bordered append and the
// LINPACK update/downdate sweeps must (a) agree with a from-scratch
// factorization to tight tolerance and (b) be bit-identical across
// backends, including every remainder-lane class.

Matrix MakeSpd(Rng* rng, size_t n) {
  Matrix bmat(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) bmat(i, j) = rng->NextGaussian();
  Matrix spd = bmat.MultiplyTransposed(bmat);
  spd.AddToDiagonal(static_cast<double>(n));
  return spd;
}

TEST(KernCholUpdate, AppendRowBackendBitIdentical) {
  Rng rng(404);
  for (size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 31u, 64u, 97u}) {
    const Matrix spd = MakeSpd(&rng, n);
    const auto cross = RandomVec(&rng, n, 0.25);
    const double diag = static_cast<double>(n) + 1.0;
    std::vector<double> ref_row;
    double ref_d = 0.0;
    CompareBackends([&](bool is_reference) {
      // Factor into an (n+1)-stride buffer so the appended row shares the
      // storage layout Cholesky::AppendRow uses.
      const size_t stride = n + 1;
      std::vector<double> l(stride * stride, 0.0);
      {
        std::vector<double> a(n * n);
        for (size_t i = 0; i < n; ++i)
          for (size_t j = 0; j < n; ++j) a[i * n + j] = spd(i, j);
        ASSERT_EQ(CholeskyFactorInPlace(a.data(), n), -1);
        for (size_t i = 0; i < n; ++i)
          for (size_t j = 0; j <= i; ++j) l[i * stride + j] = a[i * n + j];
      }
      std::vector<double> row = cross;
      const double d =
          CholUpdateAppendRow(l.data(), n, stride, row.data(), diag);
      if (is_reference) {
        ref_row = row;
        ref_d = d;
        EXPECT_GT(d, 0.0);
      } else {
        EXPECT_SAME_BITS(ref_d, d) << "completion n=" << n;
        for (size_t j = 0; j < n; ++j)
          EXPECT_SAME_BITS(ref_row[j], row[j]) << "w[" << j << "] n=" << n;
      }
    });
  }
}

TEST(KernCholUpdate, AppendMatchesFullRefactorToTolerance) {
  Rng rng(405);
  for (size_t n : {2u, 5u, 8u, 33u, 40u, 63u}) {
    const Matrix spd = MakeSpd(&rng, n);
    // Factor the leading (n-1) block, append the last row/col, compare
    // against factoring the whole matrix at once. Different op order =>
    // tolerance, not bits.
    Matrix leading(n - 1, n - 1);
    for (size_t i = 0; i + 1 < n; ++i)
      for (size_t j = 0; j + 1 < n; ++j) leading(i, j) = spd(i, j);
    auto partial = Cholesky::Factor(leading);
    ASSERT_TRUE(partial.ok());
    Vector cross(n - 1);
    for (size_t j = 0; j + 1 < n; ++j) cross[j] = spd(n - 1, j);
    ASSERT_TRUE(partial->AppendRow(cross, spd(n - 1, n - 1)).ok());

    auto full = Cholesky::Factor(spd);
    ASSERT_TRUE(full.ok());
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j <= i; ++j) {
        const double ref = full->L()(i, j);
        EXPECT_NEAR(partial->L()(i, j), ref,
                    1e-9 * std::max(1.0, std::fabs(ref)))
            << "L(" << i << "," << j << ") n=" << n;
      }
  }
}

TEST(KernCholUpdate, AppendRejectsIndefiniteExtensionAndKeepsFactor) {
  Rng rng(406);
  const size_t n = 12;
  const Matrix spd = MakeSpd(&rng, n);
  auto chol = Cholesky::Factor(spd);
  ASSERT_TRUE(chol.ok());
  const Matrix before = chol->L();
  // diag far below the cross energy => negative Schur completion.
  Vector cross(n);
  for (size_t j = 0; j < n; ++j) cross[j] = spd(0, j);
  EXPECT_FALSE(chol->AppendRow(cross, /*diag=*/1e-9).ok());
  ASSERT_EQ(chol->L().rows(), n);  // unchanged
  EXPECT_EQ(before.MaxAbsDiff(chol->L()), 0.0);
}

TEST(KernCholUpdate, AppendRowJitterContract) {
  // A rank-deficient Gram forces FactorWithJitter to regularize; the
  // append must then extend the factor of (A + jitter I), i.e. apply the
  // stored jitter to the new diagonal. Reference: factor the extended
  // matrix with the same jitter added explicitly.
  Rng rng(407);
  const size_t n = 20;
  Matrix bmat(n + 1, 3);  // rank-3: every leading block is deficient
  for (size_t i = 0; i <= n; ++i)
    for (size_t j = 0; j < 3; ++j) bmat(i, j) = rng.NextGaussian();
  const Matrix gram_ext = bmat.MultiplyTransposed(bmat);
  Matrix gram(n, n);
  for (size_t i = 0; i < n; ++i)
    for (size_t j = 0; j < n; ++j) gram(i, j) = gram_ext(i, j);

  auto chol = Cholesky::FactorWithJitter(gram);
  ASSERT_TRUE(chol.ok());
  ASSERT_GT(chol->jitter(), 0.0) << "test needs the jitter-retry path";
  const double jitter = chol->jitter();

  Vector cross(n);
  for (size_t j = 0; j < n; ++j) cross[j] = gram_ext(n, j);
  ASSERT_TRUE(chol->AppendRow(cross, gram_ext(n, n)).ok());
  EXPECT_EQ(chol->jitter(), jitter);  // appending never changes the jitter

  Matrix reference = gram_ext;
  reference.AddToDiagonal(jitter);
  auto ref = Cholesky::Factor(reference);
  ASSERT_TRUE(ref.ok()) << "extended matrix must be SPD under the same "
                           "jitter the original needed";
  for (size_t i = 0; i <= n; ++i)
    for (size_t j = 0; j <= i; ++j) {
      EXPECT_NEAR(chol->L()(i, j), ref->L()(i, j),
                  1e-8 * std::max(1.0, std::fabs(ref->L()(i, j))))
          << "L(" << i << "," << j << ")";
    }
}

TEST(KernCholUpdate, Rank1UpdateMatchesRefactorAndBackendsBitEqual) {
  Rng rng(408);
  for (size_t n : {1u, 2u, 3u, 5u, 8u, 13u, 31u}) {
    const Matrix spd = MakeSpd(&rng, n);
    const auto vraw = RandomVec(&rng, n, 0.7);
    Vector v(n);
    for (size_t i = 0; i < n; ++i) v[i] = vraw[i];

    Matrix ref_l(1, 1);
    bool have_ref = false;
    CompareBackends([&](bool is_reference) {
      auto chol = Cholesky::Factor(spd);
      ASSERT_TRUE(chol.ok());
      ASSERT_TRUE(chol->RankOneUpdate(v).ok());
      if (is_reference) {
        ref_l = chol->L();
        have_ref = true;
      } else {
        ASSERT_TRUE(have_ref);
        for (size_t i = 0; i < n; ++i)
          for (size_t j = 0; j <= i; ++j)
            EXPECT_SAME_BITS(ref_l(i, j), chol->L()(i, j)) << "n=" << n;
      }
    });

    // Tolerance check against factoring A + v v^T from scratch.
    Matrix bumped = spd;
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j) bumped(i, j) += v[i] * v[j];
    auto full = Cholesky::Factor(bumped);
    ASSERT_TRUE(full.ok());
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j <= i; ++j)
        EXPECT_NEAR(ref_l(i, j), full->L()(i, j),
                    1e-9 * std::max(1.0, std::fabs(full->L()(i, j))))
            << "n=" << n;
  }
}

TEST(KernCholUpdate, DowndateRoundTripRestoresFactor) {
  Rng rng(409);
  for (size_t n : {1u, 3u, 8u, 13u, 31u}) {
    const Matrix spd = MakeSpd(&rng, n);
    const auto vraw = RandomVec(&rng, n, 0.5);
    Vector v(n);
    for (size_t i = 0; i < n; ++i) v[i] = vraw[i];
    auto chol = Cholesky::Factor(spd);
    ASSERT_TRUE(chol.ok());
    const Matrix original = chol->L();
    ASSERT_TRUE(chol->RankOneUpdate(v).ok());
    ASSERT_TRUE(chol->RankOneDowndate(v).ok());
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j <= i; ++j)
        EXPECT_NEAR(chol->L()(i, j), original(i, j),
                    1e-9 * std::max(1.0, std::fabs(original(i, j))))
            << "n=" << n;
  }
}

TEST(KernCholUpdate, DowndateFailureIsDeterministicAndRollsBack) {
  // Downdating by a vector with more energy than the matrix must fail on
  // the same column for every backend and leave the factor unchanged.
  Rng rng(410);
  const size_t n = 9;
  const Matrix spd = MakeSpd(&rng, n);
  Vector v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 100.0 * (i == 4 ? 1.0 : 0.01);
  ptrdiff_t ref_col = -2;
  CompareBackends([&](bool is_reference) {
    auto chol = Cholesky::Factor(spd);
    ASSERT_TRUE(chol.ok());
    const Matrix before = chol->L();
    std::vector<double> l(n * n);
    for (size_t i = 0; i < n; ++i)
      for (size_t j = 0; j < n; ++j) l[i * n + j] = before(i, j);
    std::vector<double> work(n);
    for (size_t i = 0; i < n; ++i) work[i] = v[i];
    const ptrdiff_t col = CholRank1Downdate(l.data(), n, n, work.data());
    ASSERT_GE(col, 0);
    if (is_reference) {
      ref_col = col;
    } else {
      EXPECT_EQ(ref_col, col);
    }
    // The class API rolls back on failure.
    EXPECT_FALSE(chol->RankOneDowndate(v).ok());
    EXPECT_EQ(before.MaxAbsDiff(chol->L()), 0.0);
  });
}

TEST(KernDispatch, NamesAndAvailability) {
  EXPECT_TRUE(BackendAvailable(Backend::kScalar));
  EXPECT_TRUE(BackendAvailable(BestBackend()));
  EXPECT_STREQ(BackendName(Backend::kScalar), "scalar");
  EXPECT_STREQ(BackendName(Backend::kAvx2), "avx2");
  EXPECT_STREQ(BackendName(Backend::kNeon), "neon");
  const Backend entry = ActiveBackend();
  EXPECT_TRUE(SetBackendByName("off").ok());
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_TRUE(SetBackendByName("scalar").ok());
  EXPECT_EQ(ActiveBackend(), Backend::kScalar);
  EXPECT_TRUE(SetBackendByName("native").ok());
  EXPECT_EQ(ActiveBackend(), BestBackend());
  EXPECT_FALSE(SetBackendByName("avx512").ok());
  SetBackend(entry);
}

// End-to-end determinism contract: a full LOCAT tuning run must be
// bit-identical across SIMD backends (scalar vs the CPU's best) and
// across thread counts, in every combination — the in-process equivalent
// of `LOCAT_SIMD=off/native x --threads 1/8`.
TEST(KernEndToEnd, TunerBitIdenticalAcrossBackendsAndThreads) {
  const Backend entry = ActiveBackend();
  auto run_once = [&]() {
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 777);
    core::TuningSession session(&sim, workloads::HiBenchAggregation());
    return harness::MakeTuner("LOCAT", /*seed_salt=*/0)->Tune(&session, 150.0);
  };
  struct Run {
    Backend backend;
    int threads;
    core::TuningResult result;
  };
  std::vector<Run> runs;
  for (const Backend backend : {Backend::kScalar, BestBackend()}) {
    for (const int threads : {1, 8}) {
      SetBackend(backend);
      common::ThreadPool::SetGlobalThreads(threads);
      runs.push_back(Run{backend, threads, run_once()});
    }
  }
  common::ThreadPool::SetGlobalThreads(0);  // restore default
  SetBackend(entry);
  const auto& ref = runs.front().result;
  EXPECT_GT(ref.evaluations, 0);
  for (size_t i = 1; i < runs.size(); ++i) {
    const auto& run = runs[i];
    const std::string label = std::string(BackendName(run.backend)) +
                              " threads=" + std::to_string(run.threads);
    EXPECT_EQ(ref.evaluations, run.result.evaluations) << label;
    EXPECT_DOUBLE_EQ(ref.optimization_seconds,
                     run.result.optimization_seconds)
        << label;
    EXPECT_DOUBLE_EQ(ref.best_observed_seconds,
                     run.result.best_observed_seconds)
        << label;
    EXPECT_TRUE(ref.best_conf == run.result.best_conf) << label;
  }
}

}  // namespace
}  // namespace locat::math::kern
