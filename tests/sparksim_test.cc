#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sparksim/cluster.h"
#include "sparksim/config.h"
#include "sparksim/query_profile.h"
#include "sparksim/simulator.h"

namespace locat::sparksim {
namespace {

QueryProfile ShuffleHeavyQuery() {
  QueryProfile q;
  q.name = "heavy";
  q.category = QueryCategory::kJoin;
  q.input_frac = 0.5;
  q.cpu_per_gb = 5.0;
  q.shuffle_ratio = 0.8;
  q.shuffle_cpu_per_gb = 50.0;
  q.num_shuffle_stages = 2;
  q.mem_per_task_factor = 10.0;
  q.skew = 1.8;
  return q;
}

QueryProfile ScanOnlyQuery() {
  QueryProfile q;
  q.name = "scan";
  q.category = QueryCategory::kSelection;
  q.input_frac = 0.4;
  q.cpu_per_gb = 4.5;
  q.shuffle_ratio = 0.0;
  q.num_shuffle_stages = 0;
  return q;
}

SparkConf DecentConf(const ConfigSpace& space) {
  SparkConf conf = space.DefaultConf();
  conf.Set(kExecutorInstances, 30);
  conf.Set(kExecutorCores, 4);
  conf.Set(kExecutorMemory, 12);
  conf.Set(kExecutorMemoryOverhead, 2048);
  conf.Set(kSqlShufflePartitions, 600);
  return space.Repair(conf);
}

// ----------------------------------------------------------- Table 2

TEST(ParamCatalogTest, Has38ParamsInTableOrder) {
  const auto& catalog = ParamCatalog();
  ASSERT_EQ(catalog.size(), static_cast<size_t>(kNumParams));
  EXPECT_EQ(kNumParams, 38);
  EXPECT_EQ(catalog[kBroadcastBlockSize].name, "spark.broadcast.blockSize");
  EXPECT_EQ(catalog[kSqlShufflePartitions].name,
            "spark.sql.shuffle.partitions");
  EXPECT_EQ(catalog[kSqlSortEnableRadixSort].name,
            "spark.sql.sort.enableRadixSort");
}

TEST(ParamCatalogTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& spec : ParamCatalog()) names.insert(spec.name);
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumParams));
}

TEST(ParamCatalogTest, ElevenBooleansAfterNumerics) {
  const auto& catalog = ParamCatalog();
  int booleans = 0;
  for (const auto& spec : catalog) {
    if (spec.kind == ParamKind::kBool) ++booleans;
  }
  EXPECT_EQ(booleans, 11);
  // All booleans come after the numeric block (Table 2 layout).
  for (int i = kBroadcastCompress; i < kNumParams; ++i) {
    EXPECT_EQ(catalog[static_cast<size_t>(i)].kind, ParamKind::kBool);
  }
}

TEST(ParamCatalogTest, ResourceParamsMarked) {
  const auto& catalog = ParamCatalog();
  EXPECT_TRUE(catalog[kExecutorMemory].is_resource);
  EXPECT_TRUE(catalog[kDriverCores].is_resource);
  EXPECT_FALSE(catalog[kSqlShufflePartitions].is_resource);
}

TEST(ClusterTest, PaperClusterShapes) {
  const ClusterSpec arm = ArmCluster();
  EXPECT_EQ(arm.total_cores(), 384);          // 3 workers x 128 cores
  EXPECT_EQ(arm.total_memory_gb(), 1536.0);   // 3 x 512 GB
  EXPECT_EQ(arm.range_column, RangeColumn::kRangeA);
  const ClusterSpec x86 = X86Cluster();
  EXPECT_EQ(x86.total_cores(), 140);          // 7 workers x 20 cores
  EXPECT_EQ(x86.total_memory_gb(), 448.0);    // 7 x 64 GB
  EXPECT_EQ(x86.range_column, RangeColumn::kRangeB);
}

TEST(ConfigSpaceTest, RangesFollowCluster) {
  ConfigSpace arm(ArmCluster());
  ConfigSpace x86(X86Cluster());
  // Table 2: executor.instances 48-384 (A) vs 9-112 (B).
  EXPECT_DOUBLE_EQ(arm.lo(kExecutorInstances), 48.0);
  EXPECT_DOUBLE_EQ(arm.hi(kExecutorInstances), 384.0);
  EXPECT_DOUBLE_EQ(x86.lo(kExecutorInstances), 9.0);
  EXPECT_DOUBLE_EQ(x86.hi(kExecutorInstances), 112.0);
  // executor.memory 4-32 (A) vs 4-48 (B).
  EXPECT_DOUBLE_EQ(arm.hi(kExecutorMemory), 32.0);
  EXPECT_DOUBLE_EQ(x86.hi(kExecutorMemory), 48.0);
}

TEST(ConfigSpaceTest, IndexOfFindsEveryParam) {
  ConfigSpace space(X86Cluster());
  for (int i = 0; i < kNumParams; ++i) {
    EXPECT_EQ(space.IndexOf(space.spec(i).name), i);
  }
  EXPECT_EQ(space.IndexOf("spark.unknown"), -1);
}

TEST(ConfigSpaceTest, DefaultConfMatchesTable2) {
  ConfigSpace space(X86Cluster());
  SparkConf conf = space.DefaultConf();
  EXPECT_EQ(conf.GetInt(kSqlShufflePartitions), 200);
  EXPECT_EQ(conf.GetInt(kExecutorInstances), 2);
  EXPECT_DOUBLE_EQ(conf.Get(kMemoryFraction), 0.6);
  EXPECT_TRUE(conf.GetBool(kShuffleCompress));
  // "#": derived from the cluster.
  EXPECT_EQ(conf.GetInt(kDefaultParallelism), 140);
}

class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, UnitRoundTripIsIdentityOnValidConfs) {
  ConfigSpace space(GetParam() % 2 == 0 ? X86Cluster() : ArmCluster());
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 5);
  const SparkConf conf = space.RandomValid(&rng);
  const SparkConf back = space.FromUnit(space.ToUnit(conf));
  for (int i = 0; i < kNumParams; ++i) {
    EXPECT_NEAR(back.Get(static_cast<ParamId>(i)),
                conf.Get(static_cast<ParamId>(i)), 1e-6)
        << space.spec(i).name;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Range(0, 12));

class RandomValidTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomValidTest, RandomValidAlwaysValidates) {
  ConfigSpace space(GetParam() % 2 == 0 ? X86Cluster() : ArmCluster());
  Rng rng(static_cast<uint64_t>(GetParam()) * 17 + 3);
  for (int i = 0; i < 20; ++i) {
    const SparkConf conf = space.RandomValid(&rng);
    EXPECT_TRUE(space.Validate(conf).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomValidTest, ::testing::Range(0, 10));

TEST(ConfigSpaceTest, ValidateRejectsSection512Violations) {
  ConfigSpace space(X86Cluster());
  SparkConf conf = space.RandomValid(
      [] {
        static Rng rng(99);
        return &rng;
      }());

  SparkConf over_cores = conf;
  over_cores.Set(kExecutorCores, 17);  // container cap is 16
  EXPECT_FALSE(space.Validate(over_cores).ok());

  SparkConf over_container_mem = conf;
  over_container_mem.Set(kExecutorMemory, 48);
  over_container_mem.Set(kExecutorMemoryOverhead, 49152);
  over_container_mem.Set(kMemoryOffHeapSize, 49152);
  EXPECT_FALSE(space.Validate(over_container_mem).ok());

  SparkConf over_cluster = conf;
  over_cluster.Set(kExecutorCores, 16);
  over_cluster.Set(kExecutorInstances, 112);  // 112*16 > 140 cores
  EXPECT_FALSE(space.Validate(over_cluster).ok());
}

TEST(ConfigSpaceTest, RepairFixesArbitraryConf) {
  ConfigSpace space(X86Cluster());
  SparkConf wild;
  for (int i = 0; i < kNumParams; ++i) {
    wild.Set(static_cast<ParamId>(i), 1e9);
  }
  const SparkConf repaired = space.Repair(wild);
  EXPECT_TRUE(space.Validate(repaired).ok());
}

TEST(SparkConfTest, ToStringContainsEveryParam) {
  ConfigSpace space(X86Cluster());
  const std::string s = space.DefaultConf().ToString();
  for (int i = 0; i < kNumParams; ++i) {
    EXPECT_NE(s.find(space.spec(i).name), std::string::npos);
  }
}

// -------------------------------------------------------------- Queries

TEST(QueryProfileTest, SubsetAndIndexOf) {
  SparkSqlApp app;
  app.name = "test";
  app.queries = {ScanOnlyQuery(), ShuffleHeavyQuery()};
  EXPECT_EQ(app.IndexOf("heavy"), 1);
  EXPECT_EQ(app.IndexOf("nope"), -1);
  const SparkSqlApp rqa = app.Subset({1});
  ASSERT_EQ(rqa.num_queries(), 1);
  EXPECT_EQ(rqa.queries[0].name, "heavy");
}

// ------------------------------------------------------------ Simulator

TEST(SimulatorTest, DeterministicForSameSeed) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  const SparkConf conf = DecentConf(space);
  ClusterSimulator a(cluster, 42);
  ClusterSimulator b(cluster, 42);
  const QueryMetrics ma = a.RunQuery(ShuffleHeavyQuery(), conf, 200.0);
  const QueryMetrics mb = b.RunQuery(ShuffleHeavyQuery(), conf, 200.0);
  EXPECT_DOUBLE_EQ(ma.exec_seconds, mb.exec_seconds);
  EXPECT_DOUBLE_EQ(ma.gc_seconds, mb.gc_seconds);
}

TEST(SimulatorTest, NoiselessRunsRepeatExactly) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  const SparkConf conf = DecentConf(space);
  const double t1 = sim.RunQuery(ShuffleHeavyQuery(), conf, 100.0).exec_seconds;
  const double t2 = sim.RunQuery(ShuffleHeavyQuery(), conf, 100.0).exec_seconds;
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(SimulatorTest, MetricsComponentsAreConsistent) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  const QueryMetrics m =
      sim.RunQuery(ShuffleHeavyQuery(), DecentConf(space), 200.0);
  EXPECT_GT(m.exec_seconds, 0.0);
  EXPECT_GE(m.exec_seconds,
            m.scan_seconds + m.shuffle_seconds + m.gc_seconds - 1e-9);
  EXPECT_GT(m.shuffle_gb, 0.0);
}

TEST(SimulatorTest, TimeGrowsWithDataSize) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  const SparkConf conf = DecentConf(space);
  const double t100 =
      sim.RunQuery(ShuffleHeavyQuery(), conf, 100.0).exec_seconds;
  const double t400 =
      sim.RunQuery(ShuffleHeavyQuery(), conf, 400.0).exec_seconds;
  EXPECT_GT(t400, 2.0 * t100);
}

TEST(SimulatorTest, ScanQueryInsensitiveToShufflePartitions) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  SparkConf a = DecentConf(space);
  SparkConf b = a;
  b.Set(kSqlShufflePartitions, 1000);
  const double ta = sim.RunQuery(ScanOnlyQuery(), a, 300.0).exec_seconds;
  const double tb = sim.RunQuery(ScanOnlyQuery(), b, 300.0).exec_seconds;
  EXPECT_NEAR(ta, tb, 0.05 * ta);
}

TEST(SimulatorTest, TinyMemoryTriggersOomOnHeavyQuery) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  SparkConf bad = DecentConf(space);
  bad.Set(kExecutorMemory, 4);
  bad.Set(kExecutorCores, 16);
  bad.Set(kSqlShufflePartitions, 100);
  bad.Set(kMemoryOffHeapSize, 0);
  bad = space.Repair(bad);
  const QueryMetrics m = sim.RunQuery(ShuffleHeavyQuery(), bad, 300.0);
  EXPECT_TRUE(m.oom);
  const QueryMetrics good =
      sim.RunQuery(ShuffleHeavyQuery(), DecentConf(space), 300.0);
  EXPECT_GT(m.exec_seconds, 2.0 * good.exec_seconds);
}

TEST(SimulatorTest, MoreMemoryNeverOomsWhenDecentConfDoesnt) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  SparkConf big = DecentConf(space);
  big.Set(kExecutorMemory, 40);
  big.Set(kExecutorCores, 2);
  big = space.Repair(big);
  EXPECT_FALSE(sim.RunQuery(ShuffleHeavyQuery(), big, 100.0).oom);
}

TEST(SimulatorTest, BroadcastThresholdFlipsJoinStrategy) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  QueryProfile q = ShuffleHeavyQuery();
  q.broadcastable_mb = 5.0;  // 5 MB dimension table at 100 GB
  SparkConf no_bcast = DecentConf(space);
  no_bcast.Set(kSqlAutoBroadcastJoinThreshold, 1024);  // 1 MB: too small
  SparkConf bcast = no_bcast;
  bcast.Set(kSqlAutoBroadcastJoinThreshold, 8192);  // 8 MB: broadcasts
  const QueryMetrics m_no = sim.RunQuery(q, no_bcast, 100.0);
  const QueryMetrics m_yes = sim.RunQuery(q, bcast, 100.0);
  EXPECT_LT(m_yes.shuffle_gb, m_no.shuffle_gb);
  EXPECT_LT(m_yes.exec_seconds, m_no.exec_seconds);
}

TEST(SimulatorTest, ShuffleCompressionReducesNetworkTime) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  SparkConf on = DecentConf(space);
  on.Set(kShuffleCompress, 1.0);
  SparkConf off = on;
  off.Set(kShuffleCompress, 0.0);
  // Large shuffle: compression wins despite CPU cost.
  const double t_on = sim.RunQuery(ShuffleHeavyQuery(), on, 400.0).exec_seconds;
  const double t_off =
      sim.RunQuery(ShuffleHeavyQuery(), off, 400.0).exec_seconds;
  EXPECT_LT(t_on, t_off);
}

TEST(SimulatorTest, GcRespondsToHeapPressure) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  SparkConf tight = DecentConf(space);
  tight.Set(kExecutorMemory, 4);
  tight.Set(kExecutorCores, 8);
  tight = space.Repair(tight);
  const double gc_tight =
      sim.RunQuery(ShuffleHeavyQuery(), tight, 300.0).gc_seconds;
  const double gc_decent =
      sim.RunQuery(ShuffleHeavyQuery(), DecentConf(space), 300.0).gc_seconds;
  EXPECT_GT(gc_tight, gc_decent);
}

TEST(SimulatorTest, RunAppAggregatesQueries) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  SparkSqlApp app;
  app.name = "two";
  app.queries = {ScanOnlyQuery(), ShuffleHeavyQuery()};
  const AppRunResult result = sim.RunApp(app, DecentConf(space), 100.0);
  ASSERT_EQ(result.per_query.size(), 2u);
  double sum = 0.0;
  for (const auto& q : result.per_query) sum += q.exec_seconds;
  EXPECT_GT(result.total_seconds, sum);  // includes submit overhead
  EXPECT_LT(result.total_seconds, sum + 60.0);
}

TEST(SimulatorTest, RunAppSubsetIsCheaper) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  SparkSqlApp app;
  app.queries = {ScanOnlyQuery(), ShuffleHeavyQuery()};
  const SparkConf conf = DecentConf(space);
  const double full = sim.RunApp(app, conf, 200.0).total_seconds;
  const double subset = sim.RunAppSubset(app, {0}, conf, 200.0)->total_seconds;
  EXPECT_LT(subset, full);
}

TEST(SimulatorTest, RunCounterAdvances) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  ClusterSimulator sim(cluster, 1);
  SparkSqlApp app;
  app.queries = {ScanOnlyQuery(), ShuffleHeavyQuery()};
  sim.RunApp(app, DecentConf(space), 100.0);
  EXPECT_EQ(sim.runs_performed(), 2);
}

TEST(SimulatorTest, OverheadStarvationSlowsShuffles) {
  const ClusterSpec cluster = X86Cluster();
  ConfigSpace space(cluster);
  SimParams params;
  params.noise_sigma = 0.0;
  ClusterSimulator sim(cluster, 1, params);
  SparkConf skimpy = DecentConf(space);
  skimpy.Set(kExecutorMemory, 40);
  skimpy.Set(kExecutorMemoryOverhead, 0);
  skimpy = space.Repair(skimpy);
  SparkConf ample = skimpy;
  ample.Set(kExecutorMemoryOverhead, 6144);
  ample = space.Repair(ample);
  const double t_skimpy =
      sim.RunQuery(ShuffleHeavyQuery(), skimpy, 300.0).exec_seconds;
  const double t_ample =
      sim.RunQuery(ShuffleHeavyQuery(), ample, 300.0).exec_seconds;
  EXPECT_GT(t_skimpy, 1.2 * t_ample);
}

class ClusterParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ClusterParityTest, AllQueriesFinitePositive) {
  const ClusterSpec cluster =
      std::string(GetParam()) == "arm" ? ArmCluster() : X86Cluster();
  ConfigSpace space(cluster);
  ClusterSimulator sim(cluster, 3);
  Rng rng(8);
  for (int i = 0; i < 5; ++i) {
    const SparkConf conf = space.RandomValid(&rng);
    for (const auto& q : {ScanOnlyQuery(), ShuffleHeavyQuery()}) {
      const QueryMetrics m = sim.RunQuery(q, conf, 250.0);
      EXPECT_GT(m.exec_seconds, 0.0);
      EXPECT_TRUE(std::isfinite(m.exec_seconds));
      EXPECT_GE(m.gc_seconds, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Clusters, ClusterParityTest,
                         ::testing::Values("arm", "x86"));

}  // namespace
}  // namespace locat::sparksim
