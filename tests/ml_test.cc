#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "math/stats.h"
#include "ml/ei_mcmc.h"
#include "ml/gbrt.h"
#include "ml/gp.h"
#include "ml/kernels.h"
#include "ml/kpca.h"
#include "ml/lhs.h"
#include "ml/simple_regressors.h"
#include "ml/slice_sampler.h"
#include "ml/spearman.h"

namespace locat::ml {
namespace {

using math::Matrix;
using math::Vector;

// ------------------------------------------------------------------ LHS

class LhsTest : public ::testing::TestWithParam<int> {};

TEST_P(LhsTest, OneSamplePerStratumInEveryDimension) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  const int n = 10;
  const int dim = 4;
  Matrix samples = LatinHypercube(n, dim, &rng);
  ASSERT_EQ(samples.rows(), static_cast<size_t>(n));
  for (int d = 0; d < dim; ++d) {
    std::set<int> strata;
    for (int i = 0; i < n; ++i) {
      const double v = samples(static_cast<size_t>(i), static_cast<size_t>(d));
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
      strata.insert(static_cast<int>(v * n));
    }
    EXPECT_EQ(strata.size(), static_cast<size_t>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LhsTest, ::testing::Range(0, 6));

// ------------------------------------------------------------- Spearman

TEST(SpearmanTest, PerfectMonotoneIsOne) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4}, {10, 20, 30, 40}), 1.0, 1e-12);
  // Invariance under monotone transformation.
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3, 4}, {1, 8, 27, 64}), 1.0, 1e-12);
}

TEST(SpearmanTest, PerfectAntitoneIsMinusOne) {
  EXPECT_NEAR(SpearmanCorrelation({1, 2, 3}, {9, 4, 1}), -1.0, 1e-12);
}

TEST(SpearmanTest, ConstantSeriesIsZero) {
  EXPECT_DOUBLE_EQ(SpearmanCorrelation({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(SpearmanTest, HandlesTies) {
  const double rho = SpearmanCorrelation({1, 2, 2, 3}, {1, 2, 3, 4});
  EXPECT_GT(rho, 0.8);
  EXPECT_LE(rho, 1.0);
}

TEST(SpearmanTest, IndependentSeriesNearZero) {
  Rng rng(1);
  std::vector<double> xs(500), ys(500);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.NextDouble();
    ys[i] = rng.NextDouble();
  }
  EXPECT_NEAR(SpearmanCorrelation(xs, ys), 0.0, 0.1);
}

TEST(PearsonTest, LinearRelation) {
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

// -------------------------------------------------------------- Kernels

class KernelSymmetryTest : public ::testing::TestWithParam<int> {};

TEST_P(KernelSymmetryTest, SymmetricAndBounded) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 7);
  Vector a(5), b(5);
  for (size_t i = 0; i < 5; ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  GaussianKernel g(0.7);
  PerceptronKernel p;
  ArdSquaredExponentialKernel se(Vector(5, 0.5), 1.3);
  ArdMatern52Kernel m52(Vector(5, 0.5), 1.3);

  for (const Kernel* k :
       std::vector<const Kernel*>{&g, &p, &se, &m52}) {
    EXPECT_NEAR(k->Evaluate(a, b), k->Evaluate(b, a), 1e-12) << k->name();
  }
  EXPECT_LE(g.Evaluate(a, b), 1.0);
  EXPECT_NEAR(g.Evaluate(a, a), 1.0, 1e-12);
  EXPECT_NEAR(se.Evaluate(a, a), 1.3, 1e-12);
  EXPECT_NEAR(m52.Evaluate(a, a), 1.3, 1e-12);
  EXPECT_NEAR(p.Evaluate(a, a), 1.0, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelSymmetryTest, ::testing::Range(0, 5));

TEST(KernelTest, GramMatrixIsSymmetric) {
  Rng rng(9);
  Matrix x(6, 3);
  for (size_t i = 0; i < 6; ++i)
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.NextDouble();
  GaussianKernel k(0.5);
  Matrix gram = k.GramMatrix(x);
  EXPECT_LT(gram.MaxAbsDiff(gram.Transpose()), 1e-14);
  for (size_t i = 0; i < 6; ++i) EXPECT_NEAR(gram(i, i), 1.0, 1e-12);
}

TEST(KernelTest, PolynomialMatchesDefinition) {
  PolynomialKernel k(2, 1.0);
  Vector a{1.0, 2.0};
  Vector b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(k.Evaluate(a, b), (11.0 + 1.0) * (11.0 + 1.0));
}

// ------------------------------------------------------------------- GP

TEST(GpTest, InterpolatesNoiselessData) {
  Matrix x(5, 1);
  Vector y(5);
  for (int i = 0; i < 5; ++i) {
    x(static_cast<size_t>(i), 0) = i * 0.2;
    y[static_cast<size_t>(i)] = std::sin(i * 0.2 * 3.0);
  }
  GpHyperparams hp = GpHyperparams::Default(1);
  hp.log_noise_variance = std::log(1e-8);
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y, hp).ok());
  for (int i = 0; i < 5; ++i) {
    const auto pred = gp.Predict(x.Row(static_cast<size_t>(i)));
    EXPECT_NEAR(pred.mean, y[static_cast<size_t>(i)], 1e-3);
    EXPECT_LT(pred.variance, 1e-3);
  }
}

TEST(GpTest, VarianceGrowsAwayFromData) {
  Matrix x(3, 1);
  Vector y{0.0, 1.0, 0.5};
  x(0, 0) = 0.0;
  x(1, 0) = 0.1;
  x(2, 0) = 0.2;
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y, GpHyperparams::Default(1)).ok());
  const double var_near = gp.Predict(Vector{0.1}).variance;
  const double var_far = gp.Predict(Vector{3.0}).variance;
  EXPECT_GT(var_far, var_near);
}

TEST(GpTest, ConstantTargetsPredictMean) {
  Matrix x(4, 2);
  Rng rng(2);
  for (size_t i = 0; i < 4; ++i)
    for (size_t j = 0; j < 2; ++j) x(i, j) = rng.NextDouble();
  Vector y(4, 7.5);
  GaussianProcess gp;
  ASSERT_TRUE(gp.Fit(x, y, GpHyperparams::Default(2)).ok());
  EXPECT_NEAR(gp.Predict(Vector{0.5, 0.5}).mean, 7.5, 1e-6);
}

TEST(GpTest, RejectsMismatchedInput) {
  GaussianProcess gp;
  EXPECT_FALSE(gp.Fit(Matrix(3, 2), Vector(2), GpHyperparams::Default(2)).ok());
  EXPECT_FALSE(gp.Fit(Matrix(3, 2), Vector(3), GpHyperparams::Default(5)).ok());
}

TEST(GpTest, LogMarginalLikelihoodPrefersTruth) {
  // Data generated from a smooth function: a reasonable lengthscale should
  // beat an absurdly small one.
  Matrix x(12, 1);
  Vector y(12);
  for (int i = 0; i < 12; ++i) {
    x(static_cast<size_t>(i), 0) = i / 12.0;
    y[static_cast<size_t>(i)] = std::sin(2.0 * i / 12.0);
  }
  GpHyperparams good = GpHyperparams::Default(1);
  GpHyperparams bad = GpHyperparams::Default(1);
  bad.log_lengthscales = Vector(1, std::log(1e-4));
  EXPECT_GT(GaussianProcess::ComputeLogMarginalLikelihood(x, y, good),
            GaussianProcess::ComputeLogMarginalLikelihood(x, y, bad));
}

TEST(GpHyperparamsTest, FlattenRoundTrip) {
  GpHyperparams hp = GpHyperparams::Default(3);
  hp.log_lengthscales[1] = -2.0;
  hp.log_signal_variance = 0.7;
  hp.log_noise_variance = -5.5;
  GpHyperparams back = GpHyperparams::Unflatten(hp.Flatten());
  EXPECT_DOUBLE_EQ(back.log_lengthscales[1], -2.0);
  EXPECT_DOUBLE_EQ(back.log_signal_variance, 0.7);
  EXPECT_DOUBLE_EQ(back.log_noise_variance, -5.5);
}

// ---------------------------------------------------------- SliceSampler

TEST(SliceSamplerTest, SamplesStandardNormal) {
  auto log_density = [](const Vector& x) { return -0.5 * x[0] * x[0]; };
  SliceSampler sampler(log_density, SliceSampler::Options());
  Rng rng(31);
  auto samples = sampler.Sample(Vector{0.3}, 3000, 50, 1, &rng);
  std::vector<double> values;
  values.reserve(samples.size());
  for (const auto& s : samples) values.push_back(s[0]);
  EXPECT_NEAR(math::Mean(values), 0.0, 0.1);
  EXPECT_NEAR(math::StdDev(values), 1.0, 0.1);
}

TEST(SliceSamplerTest, SamplesShiftedBivariate) {
  auto log_density = [](const Vector& x) {
    const double a = x[0] - 2.0;
    const double b = x[1] + 1.0;
    return -0.5 * (a * a + b * b / 0.25);
  };
  SliceSampler sampler(log_density, SliceSampler::Options());
  Rng rng(37);
  auto samples = sampler.Sample(Vector{0.0, 0.0}, 2500, 80, 1, &rng);
  std::vector<double> xs, ys;
  for (const auto& s : samples) {
    xs.push_back(s[0]);
    ys.push_back(s[1]);
  }
  EXPECT_NEAR(math::Mean(xs), 2.0, 0.15);
  EXPECT_NEAR(math::Mean(ys), -1.0, 0.15);
  EXPECT_NEAR(math::StdDev(ys), 0.5, 0.1);
}

// --------------------------------------------------------------- EiMcmc

TEST(EiMcmcTest, FitAndAcquire) {
  Rng rng(41);
  Matrix x(10, 2);
  Vector y(10);
  for (int i = 0; i < 10; ++i) {
    x(static_cast<size_t>(i), 0) = rng.NextDouble();
    x(static_cast<size_t>(i), 1) = rng.NextDouble();
    // Bowl with minimum at (0.5, 0.5).
    const double dx = x(static_cast<size_t>(i), 0) - 0.5;
    const double dy = x(static_cast<size_t>(i), 1) - 0.5;
    y[static_cast<size_t>(i)] = dx * dx + dy * dy;
  }
  EiMcmc::Options opts;
  opts.num_hyper_samples = 4;
  opts.burn_in = 6;
  EiMcmc model(opts);
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  EXPECT_TRUE(model.fitted());
  EXPECT_DOUBLE_EQ(model.best_observed(), math::Min(y.data()));
  EXPECT_GE(model.AcquisitionValue(Vector{0.5, 0.5}), 0.0);
  // A far-away point with high uncertainty should have positive EI.
  EXPECT_GT(model.AcquisitionValue(Vector{0.95, 0.05}), 0.0);
}

TEST(EiMcmcTest, PredictAveragedTracksData) {
  Rng rng(43);
  Matrix x(8, 1);
  Vector y(8);
  for (int i = 0; i < 8; ++i) {
    x(static_cast<size_t>(i), 0) = i / 8.0;
    y[static_cast<size_t>(i)] = 3.0 + x(static_cast<size_t>(i), 0);
  }
  EiMcmc model;
  ASSERT_TRUE(model.Fit(x, y, &rng).ok());
  const auto pred = model.PredictAveraged(Vector{0.5});
  EXPECT_NEAR(pred.mean, 3.5, 0.25);
}

TEST(EiMcmcTest, RejectsTooFewSamples) {
  Rng rng(47);
  EiMcmc model;
  EXPECT_FALSE(model.Fit(Matrix(1, 2), Vector(1), &rng).ok());
}

// ----------------------------------------------------------------- KPCA

TEST(KpcaTest, RecoversLowDimensionalStructure) {
  // Points on a 2-D plane embedded in 6-D: KPCA with a wide Gaussian
  // kernel should explain most variance with few components.
  Rng rng(53);
  Matrix x(40, 6);
  for (size_t i = 0; i < 40; ++i) {
    const double a = rng.NextDouble();
    const double b = rng.NextDouble();
    for (size_t j = 0; j < 6; ++j) {
      x(i, j) = (j % 2 == 0 ? a : b) * 0.9 + 0.05;
    }
  }
  GaussianKernel kernel(2.0);
  Kpca kpca;
  ASSERT_TRUE(kpca.Fit(x, &kernel).ok());
  EXPECT_LE(kpca.num_components(), 6);
  EXPECT_GE(kpca.explained_variance_ratio(), 0.85);
}

TEST(KpcaTest, ProjectionsOfDistinctPointsDiffer) {
  Rng rng(59);
  Matrix x(20, 4);
  for (size_t i = 0; i < 20; ++i)
    for (size_t j = 0; j < 4; ++j) x(i, j) = rng.NextDouble();
  GaussianKernel kernel(1.0);
  Kpca kpca;
  ASSERT_TRUE(kpca.Fit(x, &kernel).ok());
  Vector a(4, 0.2), b(4, 0.8);
  EXPECT_GT((kpca.Project(a) - kpca.Project(b)).Norm(), 1e-4);
}

TEST(KpcaTest, EigenvaluesDescend) {
  Rng rng(61);
  Matrix x(15, 3);
  for (size_t i = 0; i < 15; ++i)
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.NextDouble();
  GaussianKernel kernel(1.0);
  Kpca kpca;
  ASSERT_TRUE(kpca.Fit(x, &kernel).ok());
  const Vector& ev = kpca.eigenvalues();
  for (size_t i = 0; i + 1 < ev.size(); ++i) EXPECT_GE(ev[i], ev[i + 1]);
}

TEST(KpcaTest, GaussianPreimageRecoversTrainingPoint) {
  Rng rng(67);
  Matrix x(25, 3);
  for (size_t i = 0; i < 25; ++i)
    for (size_t j = 0; j < 3; ++j) x(i, j) = rng.NextDouble();
  GaussianKernel kernel(1.0);
  Kpca kpca;
  Kpca::Options opts;
  opts.variance_to_retain = 0.999;
  ASSERT_TRUE(kpca.Fit(x, &kernel, opts).ok());
  const Vector original = x.Row(3);
  auto preimage = kpca.GaussianPreimage(kpca.Project(original));
  ASSERT_TRUE(preimage.ok());
  EXPECT_LT((*preimage - original).Norm(), 0.15);
}

TEST(KpcaTest, PreimageRequiresGaussianKernel) {
  Rng rng(71);
  Matrix x(10, 2);
  for (size_t i = 0; i < 10; ++i)
    for (size_t j = 0; j < 2; ++j) x(i, j) = rng.NextDouble();
  PolynomialKernel kernel(2, 1.0);
  Kpca kpca;
  ASSERT_TRUE(kpca.Fit(x, &kernel).ok());
  EXPECT_FALSE(kpca.GaussianPreimage(kpca.Project(x.Row(0))).ok());
}

TEST(KpcaTest, RejectsTooFewSamples) {
  GaussianKernel kernel(1.0);
  Kpca kpca;
  EXPECT_FALSE(kpca.Fit(Matrix(1, 3), &kernel).ok());
  EXPECT_FALSE(kpca.Fit(Matrix(5, 3), nullptr).ok());
}

// ------------------------------------------------------------ Regressors

Matrix MakeFeatures(Rng* rng, int n, int d) {
  Matrix x(static_cast<size_t>(n), static_cast<size_t>(d));
  for (size_t i = 0; i < x.rows(); ++i)
    for (size_t j = 0; j < x.cols(); ++j) x(i, j) = rng->NextDouble();
  return x;
}

TEST(LinearRegressionTest, ExactOnLinearData) {
  Rng rng(73);
  Matrix x = MakeFeatures(&rng, 30, 3);
  Vector y(30);
  for (size_t i = 0; i < 30; ++i) {
    y[i] = 2.0 * x(i, 0) - 1.0 * x(i, 1) + 0.5 * x(i, 2) + 4.0;
  }
  LinearRegression reg;
  ASSERT_TRUE(reg.Fit(x, y).ok());
  EXPECT_NEAR(reg.weights()[0], 2.0, 1e-6);
  EXPECT_NEAR(reg.weights()[1], -1.0, 1e-6);
  EXPECT_NEAR(reg.intercept(), 4.0, 1e-6);
  EXPECT_NEAR(reg.Predict(Vector{0.5, 0.5, 0.5}), 4.75, 1e-6);
}

TEST(GbrtTest, FitsNonlinearFunction) {
  Rng rng(79);
  Matrix x = MakeFeatures(&rng, 200, 2);
  Vector y(200);
  for (size_t i = 0; i < 200; ++i) {
    y[i] = std::sin(6.0 * x(i, 0)) + (x(i, 1) > 0.5 ? 2.0 : 0.0);
  }
  Gbrt model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  const auto preds = model.PredictAll(x);
  EXPECT_LT(math::MeanSquaredError(preds, y.data()), 0.05);
}

TEST(GbrtTest, FeatureImportancesIdentifyRelevantFeature) {
  Rng rng(83);
  Matrix x = MakeFeatures(&rng, 150, 4);
  Vector y(150);
  for (size_t i = 0; i < 150; ++i) y[i] = 5.0 * x(i, 2);  // only dim 2 matters
  Gbrt model;
  ASSERT_TRUE(model.Fit(x, y).ok());
  const auto importances = model.FeatureImportances();
  ASSERT_EQ(importances.size(), 4u);
  EXPECT_GT(importances[2], 0.8);
  double sum = 0.0;
  for (double v : importances) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(RegressionTreeTest, PerfectSplitOnStep) {
  Matrix x(8, 1);
  Vector y(8);
  for (int i = 0; i < 8; ++i) {
    x(static_cast<size_t>(i), 0) = i;
    y[static_cast<size_t>(i)] = i < 4 ? 0.0 : 10.0;
  }
  RegressionTree tree;
  ASSERT_TRUE(tree.Fit(x, y, RegressionTree::Options()).ok());
  EXPECT_NEAR(tree.Predict(Vector{1.0}), 0.0, 1e-9);
  EXPECT_NEAR(tree.Predict(Vector{6.0}), 10.0, 1e-9);
}

TEST(KnnTest, InterpolatesLocally) {
  Matrix x(4, 1);
  Vector y{0.0, 1.0, 2.0, 3.0};
  for (int i = 0; i < 4; ++i) x(static_cast<size_t>(i), 0) = i;
  KnnRegressor knn(2);
  ASSERT_TRUE(knn.Fit(x, y).ok());
  const double pred = knn.Predict(Vector{1.5});
  EXPECT_GT(pred, 0.9);
  EXPECT_LT(pred, 2.1);
}

TEST(LogisticRegressionTest, MonotoneFitWithinRange) {
  Rng rng(89);
  Matrix x = MakeFeatures(&rng, 60, 1);
  Vector y(60);
  for (size_t i = 0; i < 60; ++i) y[i] = 10.0 + 20.0 * x(i, 0);
  LogisticRegression reg;
  ASSERT_TRUE(reg.Fit(x, y).ok());
  EXPECT_LT(reg.Predict(Vector{0.1}), reg.Predict(Vector{0.9}));
  EXPECT_GT(reg.Predict(Vector{0.5}), 10.0);
  EXPECT_LT(reg.Predict(Vector{0.5}), 30.0);
}

TEST(SvrTest, FitsSmoothFunction) {
  Rng rng(97);
  Matrix x = MakeFeatures(&rng, 80, 1);
  Vector y(80);
  for (size_t i = 0; i < 80; ++i) y[i] = std::sin(3.0 * x(i, 0));
  SvrRegressor svr;
  ASSERT_TRUE(svr.Fit(x, y).ok());
  const auto preds = svr.PredictAll(x);
  EXPECT_LT(math::MeanSquaredError(preds, y.data()), 0.1);
}

TEST(RegressorTest, AllRejectEmptyInput) {
  Matrix empty(0, 2);
  Vector y;
  LinearRegression lin;
  Gbrt gbrt;
  KnnRegressor knn;
  LogisticRegression log_reg;
  SvrRegressor svr;
  for (Regressor* r : std::vector<Regressor*>{&lin, &gbrt, &knn, &log_reg,
                                              &svr}) {
    EXPECT_FALSE(r->Fit(empty, y).ok()) << r->name();
  }
}

}  // namespace
}  // namespace locat::ml
