#include <set>

#include <gtest/gtest.h>

#include "workloads/workloads.h"

namespace locat::workloads {
namespace {

using sparksim::QueryCategory;
using sparksim::SparkSqlApp;

TEST(TpcDsTest, Has104QueriesWithVariants) {
  const SparkSqlApp app = TpcDs();
  EXPECT_EQ(app.num_queries(), 104);
  // a/b variants for 14, 23, 24, 39, 64.
  for (const char* name : {"q14a", "q14b", "q23a", "q23b", "q24a", "q24b",
                           "q39a", "q39b", "q64a", "q64b"}) {
    EXPECT_GE(app.IndexOf(name), 0) << name;
  }
  EXPECT_GE(app.IndexOf("q01"), 0);
  EXPECT_GE(app.IndexOf("q99"), 0);
  EXPECT_EQ(app.IndexOf("q14"), -1);  // replaced by variants
}

TEST(TpcDsTest, QueryNamesUnique) {
  const SparkSqlApp app = TpcDs();
  std::set<std::string> names;
  for (const auto& q : app.queries) names.insert(q.name);
  EXPECT_EQ(names.size(), 104u);
}

TEST(TpcDsTest, PaperCalibratedFacts) {
  const SparkSqlApp app = TpcDs();
  // Q72 shuffles ~52 GB per 100 GB of input (Section 5.11).
  const auto& q72 = app.queries[static_cast<size_t>(app.IndexOf("q72"))];
  EXPECT_NEAR(q72.input_frac * q72.shuffle_ratio * 100.0, 52.0, 2.0);
  // Q08 shuffles only a few MB.
  const auto& q08 = app.queries[static_cast<size_t>(app.IndexOf("q08"))];
  EXPECT_LT(q08.input_frac * q08.shuffle_ratio * 100.0, 0.05);
  // Q04 is a huge scan with little shuffle (long but insensitive).
  const auto& q04 = app.queries[static_cast<size_t>(app.IndexOf("q04"))];
  EXPECT_GT(q04.input_frac, 0.8);
  EXPECT_LT(q04.shuffle_ratio, 0.1);
}

TEST(TpcDsTest, SelectionQueriesOfSection511AreSelectionCategory) {
  const SparkSqlApp app = TpcDs();
  for (const char* name : {"q09", "q13", "q16", "q28", "q32", "q38", "q48",
                           "q61", "q84", "q87", "q88", "q94", "q96"}) {
    const int idx = app.IndexOf(name);
    ASSERT_GE(idx, 0) << name;
    EXPECT_EQ(app.queries[static_cast<size_t>(idx)].category,
              QueryCategory::kSelection)
        << name;
  }
}

TEST(TpcDsTest, SensitiveQueriesHaveHeavyShuffles) {
  const SparkSqlApp app = TpcDs();
  // The paper's 23 configuration-sensitive queries (Section 5.2).
  for (const char* name :
       {"q72", "q29", "q14b", "q43", "q41", "q99", "q57", "q33", "q14a",
        "q69", "q40", "q64a", "q50", "q21", "q70", "q95", "q54", "q23a",
        "q23b", "q15", "q58", "q62", "q20"}) {
    const int idx = app.IndexOf(name);
    ASSERT_GE(idx, 0) << name;
    const auto& q = app.queries[static_cast<size_t>(idx)];
    EXPECT_GT(q.shuffle_ratio, 0.4) << name;
    EXPECT_GT(q.mem_per_task_factor, 5.0) << name;
  }
}

TEST(TpcDsTest, DeterministicConstruction) {
  const SparkSqlApp a = TpcDs();
  const SparkSqlApp b = TpcDs();
  ASSERT_EQ(a.num_queries(), b.num_queries());
  for (int i = 0; i < a.num_queries(); ++i) {
    EXPECT_EQ(a.queries[static_cast<size_t>(i)].name,
              b.queries[static_cast<size_t>(i)].name);
    EXPECT_DOUBLE_EQ(a.queries[static_cast<size_t>(i)].shuffle_ratio,
                     b.queries[static_cast<size_t>(i)].shuffle_ratio);
  }
}

TEST(TpcHTest, Has22Queries) {
  const SparkSqlApp app = TpcH();
  EXPECT_EQ(app.num_queries(), 22);
  EXPECT_GE(app.IndexOf("q9"), 0);
  EXPECT_GE(app.IndexOf("q22"), 0);
}

TEST(TpcHTest, JoinHeavyQueriesAreSensitive) {
  const SparkSqlApp app = TpcH();
  for (const char* name : {"q5", "q7", "q9", "q21"}) {
    const int idx = app.IndexOf(name);
    ASSERT_GE(idx, 0);
    EXPECT_GT(app.queries[static_cast<size_t>(idx)].mem_per_task_factor, 5.0);
  }
}

TEST(HiBenchTest, ThreeSingleQueryBenchmarks) {
  EXPECT_EQ(HiBenchJoin().num_queries(), 1);
  EXPECT_EQ(HiBenchScan().num_queries(), 1);
  EXPECT_EQ(HiBenchAggregation().num_queries(), 1);
  // Scan is Map-only: no shuffle stage (Section 4.2).
  EXPECT_EQ(HiBenchScan().queries[0].num_shuffle_stages, 0);
  EXPECT_EQ(HiBenchScan().queries[0].category, QueryCategory::kSelection);
  EXPECT_EQ(HiBenchJoin().queries[0].category, QueryCategory::kJoin);
  EXPECT_EQ(HiBenchAggregation().queries[0].category,
            QueryCategory::kAggregation);
}

TEST(Table1Test, FiveBenchmarksAndFiveSizes) {
  const auto apps = AllBenchmarks();
  ASSERT_EQ(apps.size(), 5u);
  EXPECT_EQ(apps[0].name, "TPC-DS");
  EXPECT_EQ(apps[1].name, "TPC-H");
  EXPECT_EQ(apps[2].name, "Join");
  EXPECT_EQ(apps[3].name, "Scan");
  EXPECT_EQ(apps[4].name, "Aggregation");
  const auto sizes = StandardDataSizesGb();
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_DOUBLE_EQ(sizes.front(), 100.0);
  EXPECT_DOUBLE_EQ(sizes.back(), 500.0);
}

class ProfileSanityTest : public ::testing::TestWithParam<int> {};

TEST_P(ProfileSanityTest, AllProfilesInSaneRanges) {
  const auto apps = AllBenchmarks();
  const auto& app = apps[static_cast<size_t>(GetParam())];
  for (const auto& q : app.queries) {
    EXPECT_FALSE(q.name.empty());
    EXPECT_GT(q.input_frac, 0.0) << q.name;
    EXPECT_LE(q.input_frac, 1.0) << q.name;
    EXPECT_GT(q.cpu_per_gb, 0.0) << q.name;
    EXPECT_GE(q.shuffle_ratio, 0.0) << q.name;
    EXPECT_LE(q.shuffle_ratio, 1.0) << q.name;
    EXPECT_GE(q.num_shuffle_stages, 0) << q.name;
    EXPECT_LE(q.num_shuffle_stages, 5) << q.name;
    EXPECT_GE(q.skew, 1.0) << q.name;
    EXPECT_GE(q.mem_per_task_factor, 0.0) << q.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllApps, ProfileSanityTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace locat::workloads
