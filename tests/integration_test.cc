#include <gtest/gtest.h>

#include "core/locat_tuner.h"
#include "core/tuning.h"
#include "sparksim/simulator.h"
#include "tuners/baselines.h"
#include "workloads/workloads.h"

namespace locat {
namespace {

// End-to-end pipeline checks that exercise several modules together on
// small budgets. These intentionally mirror the headline claims at toy
// scale; the bench binaries reproduce the full-size figures.

core::LocatTuner::Options SmallLocat(uint64_t seed) {
  core::LocatTuner::Options opts;
  opts.n_qcsa = 12;
  opts.n_iicp = 10;
  opts.lhs_init = 3;
  opts.min_iterations = 5;
  opts.max_iterations = 10;
  opts.warm_iterations = 4;
  opts.candidates = 120;
  opts.seed = seed;
  return opts;
}

TEST(IntegrationTest, LocatCheaperThanDacStyleSampling) {
  const auto app = workloads::TpcH();

  sparksim::ClusterSimulator sim_locat(sparksim::X86Cluster(), 500);
  core::TuningSession locat_session(&sim_locat, app);
  core::LocatTuner locat(SmallLocat(1));
  const auto locat_result = locat.Tune(&locat_session, 100.0);

  sparksim::ClusterSimulator sim_dac(sparksim::X86Cluster(), 500);
  core::TuningSession dac_session(&sim_dac, app);
  tuners::DacTuner::Options dopts;
  dopts.training_samples = 60;  // scaled-down DAC budget
  dopts.ga_generations = 10;
  tuners::DacTuner dac(dopts);
  const auto dac_result = dac.Tune(&dac_session, 100.0);

  // LOCAT's optimization cost is far below a sampling-heavy baseline even
  // at toy scale (the RQA + fewer evaluations).
  EXPECT_LT(locat_result.optimization_seconds,
            dac_result.optimization_seconds);
}

TEST(IntegrationTest, QcsaIdentifiesShuffleHeavyTpchQueries) {
  const auto app = workloads::TpcH();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 501);
  core::TuningSession session(&sim, app);
  core::LocatTuner tuner(SmallLocat(2));
  tuner.Tune(&session, 100.0);
  ASSERT_NE(tuner.qcsa_result(), nullptr);
  const auto& csq = tuner.qcsa_result()->csq_indices;
  // Q9 (the heaviest join) must be configuration sensitive.
  const int q9 = app.IndexOf("q9");
  EXPECT_NE(std::find(csq.begin(), csq.end(), q9), csq.end());
  // Q6 (pure scan) must not.
  const int q6 = app.IndexOf("q6");
  EXPECT_EQ(std::find(csq.begin(), csq.end(), q6), csq.end());
}

TEST(IntegrationTest, DatasizeAwareWarmStartFindsValidConfQuickly) {
  const auto app = workloads::HiBenchAggregation();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 502);
  core::TuningSession session(&sim, app);
  core::LocatTuner tuner(SmallLocat(3));
  tuner.Tune(&session, 100.0);

  const int before = session.evaluations();
  const auto warm = tuner.Tune(&session, 400.0);
  EXPECT_LE(session.evaluations() - before, 10);
  EXPECT_TRUE(session.space().Validate(warm.best_conf).ok());
  // The warm configuration is at least sane at the new size: much better
  // than the Spark defaults.
  const double tuned =
      session.MeasureFinal(warm.best_conf, 400.0).total_seconds;
  const double dflt =
      session
          .MeasureFinal(session.space().Repair(session.space().DefaultConf()),
                        400.0)
          .total_seconds;
  EXPECT_LT(tuned, dflt);
}

TEST(IntegrationTest, FullPipelineIsDeterministic) {
  const auto app = workloads::TpcH();
  auto run_once = [&]() {
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 503);
    core::TuningSession session(&sim, app);
    core::LocatTuner tuner(SmallLocat(4));
    const auto r1 = tuner.Tune(&session, 100.0);
    const auto r2 = tuner.Tune(&session, 300.0);
    return std::make_pair(r1.optimization_seconds, r2.best_observed_seconds);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

}  // namespace
}  // namespace locat
