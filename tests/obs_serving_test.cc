// Serving-stack observability: labeled metric families and their
// Prometheus/JSON exposition, the exposition self-check, histogram
// quantiles, lock-free counter/histogram concurrency, the structured
// logger, the flight recorder (wraparound, dump-on-fault, crash-signal
// dump) and the embedded admin HTTP server.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/online_service.h"
#include "core/tuning.h"
#include "obs/admin_server.h"
#include "obs/flight_recorder.h"
#include "obs/labels.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "sparksim/simulator.h"
#include "workloads/workloads.h"

namespace locat {
namespace {

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------------- labels

TEST(ObsLabelsTest, CanonicalizesOrderAndDuplicates) {
  const obs::LabelSet a({{"b", "2"}, {"a", "1"}});
  const obs::LabelSet b({{"a", "1"}, {"b", "2"}});
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Get("a"), "1");
  EXPECT_EQ(a.Get("missing"), "");
  // Duplicate keys keep the last value given.
  const obs::LabelSet dup({{"k", "old"}, {"k", "new"}});
  EXPECT_EQ(dup.size(), 1u);
  EXPECT_EQ(dup.Get("k"), "new");
}

TEST(ObsLabelsTest, PrometheusFormAndEscaping) {
  const obs::LabelSet labels({{"app", "tpc\"ds"}, {"path", "a\\b\nc"}});
  const std::string prom = labels.ToPrometheus();
  EXPECT_EQ(prom, "{app=\"tpc\\\"ds\",path=\"a\\\\b\\nc\"}");
  EXPECT_EQ(obs::LabelSet().ToPrometheus(), "");
  // The `le` overload renders braces even for the empty set.
  EXPECT_EQ(obs::LabelSet().ToPrometheus("le", "+Inf"), "{le=\"+Inf\"}");
  EXPECT_EQ(obs::LabelSet({{"a", "1"}}).ToPrometheus("le", "10"),
            "{a=\"1\",le=\"10\"}");
}

// ------------------------------------------------- exposition self-check

TEST(ObsExpositionCheckTest, AcceptsWellFormedPayloads) {
  EXPECT_TRUE(obs::CheckPrometheusExposition("").ok());
  const std::string text =
      "# HELP runs_total Total runs, with \\\\ and \\n escapes.\n"
      "# TYPE runs_total counter\n"
      "runs_total{app=\"tpc\\\"ds\"} 3\n"
      "runs_total{app=\"other\"} 0\n"
      "# TYPE lat_seconds histogram\n"
      "lat_seconds_bucket{le=\"0.1\"} 1\n"
      "lat_seconds_bucket{le=\"1\"} 4\n"
      "lat_seconds_bucket{le=\"+Inf\"} 5\n"
      "lat_seconds_sum 2.5\n"
      "lat_seconds_count 5\n";
  const auto status = obs::CheckPrometheusExposition(text);
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ObsExpositionCheckTest, RejectsMalformedPayloads) {
  // Sample without a preceding # TYPE.
  EXPECT_FALSE(obs::CheckPrometheusExposition("orphan_total 1\n").ok());
  // Bad metric name.
  EXPECT_FALSE(obs::CheckPrometheusExposition("# TYPE 9bad counter\n9bad 1\n")
                   .ok());
  // Non-numeric sample value.
  EXPECT_FALSE(obs::CheckPrometheusExposition(
                   "# TYPE a counter\na{x=\"1\"} nope\n")
                   .ok());
  // Unescaped quote inside a label value.
  EXPECT_FALSE(
      obs::CheckPrometheusExposition("# TYPE a counter\na{x=\"a\"b\"} 1\n")
          .ok());
  // Histogram without the +Inf bucket.
  EXPECT_FALSE(obs::CheckPrometheusExposition(
                   "# TYPE h histogram\nh_bucket{le=\"1\"} 2\n"
                   "h_sum 1\nh_count 2\n")
                   .ok());
  // Histogram whose cumulative buckets decrease.
  EXPECT_FALSE(obs::CheckPrometheusExposition(
                   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\n"
                   "h_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n")
                   .ok());
  // _count disagreeing with the +Inf bucket.
  EXPECT_FALSE(obs::CheckPrometheusExposition(
                   "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 3\n"
                   "h_sum 1\nh_count 4\n")
                   .ok());
  // Duplicate # TYPE for one metric.
  EXPECT_FALSE(obs::CheckPrometheusExposition(
                   "# TYPE a counter\na 1\n# TYPE a counter\na 2\n")
                   .ok());
}

// ------------------------------------------------------------- families

TEST(ObsFamiliesTest, WithLabelsReturnsStableCachedChildren) {
  obs::MetricsRegistry registry;
  obs::CounterFamily* fam =
      registry.GetCounterFamily("locat_runs_total", "Runs by app and status");
  obs::Counter* a =
      fam->WithLabels(obs::LabelSet({{"app", "tpcds"}, {"status", "ok"}}));
  // Same pairs in a different order resolve to the same child.
  obs::Counter* b =
      fam->WithLabels(obs::LabelSet({{"status", "ok"}, {"app", "tpcds"}}));
  EXPECT_EQ(a, b);
  obs::Counter* failed =
      fam->WithLabels(obs::LabelSet({{"app", "tpcds"}, {"status", "failed"}}));
  EXPECT_NE(a, failed);
  EXPECT_EQ(fam->size(), 2u);
  a->Increment(3.0);
  failed->Increment();
  // Registering the same family name returns the same family.
  EXPECT_EQ(registry.GetCounterFamily("locat_runs_total"), fam);

  std::ostringstream os;
  registry.WritePrometheus(os);
  const std::string text = os.str();
  EXPECT_TRUE(
      Contains(text, "locat_runs_total{app=\"tpcds\",status=\"ok\"} 3"));
  EXPECT_TRUE(
      Contains(text, "locat_runs_total{app=\"tpcds\",status=\"failed\"} 1"));
  const auto check = obs::CheckPrometheusExposition(text);
  EXPECT_TRUE(check.ok()) << check.ToString();
}

TEST(ObsFamiliesTest, ExpositionEscapesHelpAndLabelValues) {
  obs::MetricsRegistry registry;
  registry.GetCounter("plain_total", "Help with \\ backslash\nand newline");
  registry.GetCounterFamily("labeled_total", "Labeled")
      ->WithLabels(obs::LabelSet({{"q", "say \"hi\"\nbye\\"}}))
      ->Increment();
  std::ostringstream os;
  registry.WritePrometheus(os);
  const std::string text = os.str();
  EXPECT_TRUE(Contains(
      text, "# HELP plain_total Help with \\\\ backslash\\nand newline"));
  EXPECT_TRUE(
      Contains(text, "labeled_total{q=\"say \\\"hi\\\"\\nbye\\\\\"} 1"));
  const auto check = obs::CheckPrometheusExposition(text);
  EXPECT_TRUE(check.ok()) << check.ToString();
}

TEST(ObsFamiliesTest, HistogramFamilyExposesBucketsAndJsonQuantiles) {
  obs::MetricsRegistry registry;
  obs::HistogramFamily* fam = registry.GetHistogramFamily(
      "lat_seconds", "Latency", {0.1, 1.0, 10.0});
  obs::Histogram* h = fam->WithLabels(obs::LabelSet({{"app", "join"}}));
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(0.6);
  h->Observe(5.0);

  std::ostringstream prom;
  registry.WritePrometheus(prom);
  const std::string text = prom.str();
  EXPECT_TRUE(Contains(text, "lat_seconds_bucket{app=\"join\",le=\"0.1\"} 1"));
  EXPECT_TRUE(Contains(text, "lat_seconds_bucket{app=\"join\",le=\"1\"} 3"));
  EXPECT_TRUE(
      Contains(text, "lat_seconds_bucket{app=\"join\",le=\"+Inf\"} 4"));
  EXPECT_TRUE(Contains(text, "lat_seconds_count{app=\"join\"} 4"));
  const auto check = obs::CheckPrometheusExposition(text);
  EXPECT_TRUE(check.ok()) << check.ToString();

  std::ostringstream json;
  registry.WriteJson(json);
  EXPECT_TRUE(Contains(json.str(), "\"families\""));
  EXPECT_TRUE(Contains(json.str(), "\"p50\""));
  EXPECT_TRUE(Contains(json.str(), "\"p99\""));
}

TEST(ObsQuantileTest, InterpolatesWithinBuckets) {
  obs::Histogram h("q_seconds", "", {1.0, 2.0, 4.0});
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) h.Observe(1.5);  // all in (1, 2]
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 1.0);
  EXPECT_LE(p50, 2.0);
  // Everything below 2.0 => p99 still inside that bucket.
  EXPECT_LE(h.Quantile(0.99), 2.0);
  h.Observe(100.0);  // one sample in the +Inf bucket
  // The +Inf bucket reports the largest finite bound.
  EXPECT_EQ(h.Quantile(1.0), 4.0);
}

// ----------------------------------------------------------- concurrency

TEST(ObsConcurrencyTest, CountersHistogramsAndFamiliesUnderContention) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("contended_total");
  obs::Histogram* hist =
      registry.GetHistogram("contended_seconds", "", {0.5, 1.0, 2.0});
  obs::CounterFamily* fam = registry.GetCounterFamily("contended_by");

  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  std::atomic<bool> stop{false};
  // A reader exporting concurrently must never crash or produce a payload
  // that fails the self-check.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::ostringstream os;
      registry.WritePrometheus(os);
      const auto check = obs::CheckPrometheusExposition(os.str());
      ASSERT_TRUE(check.ok()) << check.ToString();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      obs::Counter* child = fam->WithLabels(
          obs::LabelSet({{"thread", std::to_string(t % 2)}}));
      for (int i = 0; i < kOps; ++i) {
        counter->Increment();
        hist->Observe(0.25 * ((t + i) % 12));
        child->Increment();
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_DOUBLE_EQ(counter->value(), double(kThreads) * kOps);
  EXPECT_EQ(hist->count(), uint64_t(kThreads) * kOps);
  uint64_t bucket_total = 0;
  for (uint64_t c : hist->bucket_counts()) bucket_total += c;
  EXPECT_EQ(bucket_total, hist->count());
  double family_total = 0.0;
  for (const auto& [labels, child] : fam->Children()) {
    family_total += child->value();
  }
  EXPECT_DOUBLE_EQ(family_total, double(kThreads) * kOps);
}

// -------------------------------------------------------------- logging

TEST(ObsLogTest, LevelsSinksAndStructuredFields) {
  obs::Log log;
  std::ostringstream os;
  log.SetJsonlSink(&os);
  log.Write(obs::LogLevel::kInfo, "test", "suppressed");  // level off
  EXPECT_EQ(os.str(), "");

  log.SetLevel(obs::LogLevel::kInfo);
  log.Debug("test", "below threshold");
  log.Info("test", "hello \"world\"", {{"n", 3}, {"who", "a\\b"}});
  EXPECT_EQ(log.written(), 1u);

  const auto parsed = obs::ParseTelemetry(os.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), 1u);
  const auto& rec = (*parsed)[0];
  EXPECT_EQ(rec.type, "log");
  EXPECT_EQ(rec.Str("level"), "info");
  EXPECT_EQ(rec.Str("component"), "test");
  EXPECT_EQ(rec.Str("msg"), "hello \"world\"");
  EXPECT_EQ(rec.Num("n"), 3.0);
  EXPECT_EQ(rec.Str("who"), "a\\b");
}

TEST(ObsLogTest, TokenBucketDropsAndReportsBurst) {
  obs::Log log;
  std::ostringstream os;
  log.SetJsonlSink(&os);
  log.SetLevel(obs::LogLevel::kInfo);
  log.SetRateLimit(/*per_sec=*/0.001, /*burst=*/2.0);
  for (int i = 0; i < 6; ++i) log.Info("test", "spam " + std::to_string(i));
  EXPECT_EQ(log.written(), 2u);
  EXPECT_EQ(log.dropped(), 4u);
  // The next record that passes reports what was dropped before it.
  log.SetRateLimit(0.0, 0.0);
  log.Info("test", "after the storm");
  EXPECT_TRUE(Contains(os.str(), "\"dropped_before\":4"));
}

TEST(ObsLogTest, TeesIntoFlightRecorder) {
  obs::FlightRecorder recorder(16);
  obs::Log log;
  std::ostringstream os;
  log.SetJsonlSink(&os);
  log.SetFlightRecorder(&recorder);
  log.SetLevel(obs::LogLevel::kWarn);
  log.Warn("test", "something odd");
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].kind, "log");
  EXPECT_STREQ(events[0].level, "warn");
  EXPECT_STREQ(events[0].message, "something odd");
}

// ------------------------------------------------------- flight recorder

TEST(FlightRecorderTest, KeepsOnlyTheLastCapacityEvents) {
  obs::FlightRecorder recorder(8);
  for (int i = 0; i < 20; ++i) {
    recorder.Record("log", "info", "test", ("ev" + std::to_string(i)).c_str(),
                    i);
  }
  EXPECT_EQ(recorder.total_recorded(), 20u);
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The window holds exactly the last 8 events, in order.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 12 + i);
    EXPECT_EQ(events[i].value, double(12 + i));
  }
  std::ostringstream os;
  recorder.WriteJsonl(os);
  EXPECT_TRUE(Contains(os.str(), "\"message\":\"ev19\""));
  EXPECT_FALSE(Contains(os.str(), "\"message\":\"ev11\""));
}

TEST(FlightRecorderTest, TruncatesAndEscapesPayloads) {
  obs::FlightRecorder recorder(4);
  const std::string long_message(500, 'x');
  recorder.Record("log", "info", "test", (long_message + "\"tail").c_str());
  recorder.Record("log", "info", "test", "quote \" and \\ back");
  const auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(std::string(events[0].message).size(), long_message.size());
  std::ostringstream os;
  recorder.WriteJsonl(os);
  EXPECT_TRUE(Contains(os.str(), "quote \\\" and \\\\ back"));
}

TEST(FlightRecorderTest, DumpsOnFaultEvents) {
  const std::string path = ::testing::TempDir() + "flight_fault_dump.jsonl";
  std::remove(path.c_str());
  obs::FlightRecorder recorder(16);
  recorder.SetDumpOnFault(path);
  recorder.Record("log", "info", "test", "before the kill");
  {
    std::ifstream probe(path);
    EXPECT_FALSE(probe.good());  // plain events do not dump
  }
  recorder.Record("fault", "warn", "sparksim", "oom_kill app=x", 3.0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream dumped;
  dumped << in.rdbuf();
  EXPECT_TRUE(Contains(dumped.str(), "before the kill"));
  EXPECT_TRUE(Contains(dumped.str(), "oom_kill app=x"));
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ConcurrentRecordingStaysConsistent) {
  obs::FlightRecorder recorder(64);
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const auto& ev : recorder.Snapshot()) {
        // Every snapshotted event must be fully published (never torn).
        ASSERT_STREQ(ev.kind, "log");
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        recorder.Record("log", "info", "test", "concurrent");
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(recorder.total_recorded(), uint64_t(kThreads) * kOps);
  EXPECT_LE(recorder.Snapshot().size(), recorder.capacity());
}

TEST(FlightRecorderSignalTest, CrashHandlerDumpsWindowOnAbort) {
  const std::string path = ::testing::TempDir() + "flight_crash_dump.jsonl";
  std::remove(path.c_str());
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: install the global recorder + handlers, record context, die.
    obs::FlightRecorder* recorder = obs::FlightRecorder::InstallGlobal(32);
    obs::FlightRecorder::InstallCrashHandlers(path);
    recorder->Record("log", "info", "child", "about to crash", 7.0);
    ::raise(SIGABRT);
    ::_exit(0);  // unreachable
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  // SA_RESETHAND + re-raise: the child still dies of SIGABRT.
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  EXPECT_EQ(WTERMSIG(wstatus), SIGABRT);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream dumped;
  dumped << in.rdbuf();
  EXPECT_TRUE(Contains(dumped.str(), "about to crash"));
  EXPECT_TRUE(Contains(dumped.str(), "\"component\":\"child\""));
  std::remove(path.c_str());
}

// ----------------------------------------------------------- admin server

/// Minimal HTTP/1.0 GET against 127.0.0.1:port; returns the full response
/// (headers + body), "" on connect failure.
std::string HttpGet(int port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)!::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? "" : response.substr(sep + 4);
}

TEST(AdminServerTest, ServesMetricsHealthStatusAndFlight) {
  obs::MetricsRegistry registry;
  registry.GetCounter("admin_test_total", "A counter")->Increment(5.0);
  registry.GetCounterFamily("admin_family_total", "Labeled")
      ->WithLabels(obs::LabelSet({{"app", "x"}}))
      ->Increment();
  obs::FlightRecorder recorder(8);
  recorder.Record("log", "info", "test", "flight line");

  obs::AdminServer::Options options;
  options.port = 0;  // ephemeral
  options.metrics = &registry;
  options.flight = &recorder;
  options.statusz = [] { return std::string("app table here\n"); };
  auto server_or = obs::AdminServer::Start(std::move(options));
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  auto server = std::move(server_or).value();
  ASSERT_GT(server->port(), 0);

  EXPECT_EQ(Body(HttpGet(server->port(), "/healthz")), "ok\n");

  const std::string metrics = Body(HttpGet(server->port(), "/metrics"));
  EXPECT_TRUE(Contains(metrics, "admin_test_total 5"));
  EXPECT_TRUE(Contains(metrics, "admin_family_total{app=\"x\"} 1"));
  const auto check = obs::CheckPrometheusExposition(metrics);
  EXPECT_TRUE(check.ok()) << check.ToString();

  EXPECT_EQ(Body(HttpGet(server->port(), "/statusz")), "app table here\n");
  EXPECT_TRUE(
      Contains(Body(HttpGet(server->port(), "/flightz")), "flight line"));
  EXPECT_TRUE(Contains(Body(HttpGet(server->port(), "/varz")), "\"counters\""));
  EXPECT_TRUE(Contains(HttpGet(server->port(), "/nope"), "404"));

  // A second scrape of /metrics shows the admin server dogfooding the
  // labeled request-counter family.
  const std::string again = Body(HttpGet(server->port(), "/metrics"));
  EXPECT_TRUE(Contains(
      again, "locat_admin_requests_total{code=\"200\",path=\"/healthz\"} 1"));

  EXPECT_FALSE(server->quit_requested());
  EXPECT_EQ(Body(HttpGet(server->port(), "/quitz")), "quitting\n");
  EXPECT_TRUE(server->quit_requested());
  EXPECT_TRUE(server->WaitForQuit(5.0));
  server->Stop();
}

TEST(AdminServerTest, StopWithoutTrafficIsClean) {
  obs::AdminServer::Options options;
  options.port = 0;
  auto server_or = obs::AdminServer::Start(std::move(options));
  ASSERT_TRUE(server_or.ok()) << server_or.status().ToString();
  // WaitForQuit times out when nobody hits /quitz.
  EXPECT_FALSE((*server_or)->WaitForQuit(0.05));
  (*server_or)->Stop();
}

// ------------------------------------------- service status & determinism

core::OnlineTuningService::Options SmallServiceOptions() {
  core::OnlineTuningService::Options opts;
  opts.tuner.n_qcsa = 8;
  opts.tuner.n_iicp = 6;
  opts.tuner.lhs_init = 2;
  opts.tuner.min_iterations = 3;
  opts.tuner.max_iterations = 5;
  opts.tuner.warm_iterations = 3;
  opts.tuner.candidates = 60;
  opts.tuner.seed = 31;
  return opts;
}

TEST(ObsServiceTest, SnapshotAndLabeledFamiliesTrackServing) {
  const auto app = workloads::HiBenchScan();
  sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 5);
  core::TuningSession session(&sim, app);
  core::OnlineTuningService service(&session, SmallServiceOptions());
  obs::MetricsRegistry registry;
  obs::ObsContext ctx;
  ctx.metrics = &registry;
  service.SetObservability(ctx);

  ASSERT_TRUE(service.RecommendedConf(100.0).ok());  // cold tune
  ASSERT_TRUE(service.RecommendedConf(110.0).ok());  // within gap: reuse
  ASSERT_TRUE(service.RecommendedConf(400.0).ok());  // warm tune

  const auto snap = service.Snapshot();
  EXPECT_EQ(snap.app, app.name);
  EXPECT_EQ(snap.recommendations, 3);
  EXPECT_EQ(snap.reuses, 1);
  EXPECT_EQ(snap.tuning_passes, 2);
  EXPECT_EQ(snap.failed_reports, 0);
  EXPECT_EQ(snap.tuned_sizes.size(), 2u);
  EXPECT_EQ(snap.last_datasize_gb, 400.0);
  EXPECT_FALSE(snap.last_conf.empty());
  EXPECT_GT(snap.recommend_p99_s, 0.0);
  EXPECT_GE(snap.recommend_p99_s, snap.recommend_p50_s);

  std::ostringstream os;
  registry.WritePrometheus(os);
  const std::string text = os.str();
  EXPECT_TRUE(Contains(text, "locat_service_recommendations{app=\"" +
                                 app.name + "\",source=\"reuse\"} 1"));
  EXPECT_TRUE(Contains(text, "locat_service_recommendations{app=\"" +
                                 app.name + "\",source=\"tuned\"} 2"));
  EXPECT_TRUE(Contains(text, "locat_service_recommend_seconds_count{app=\"" +
                                 app.name + "\"} 3"));
  const auto check = obs::CheckPrometheusExposition(text);
  EXPECT_TRUE(check.ok()) << check.ToString();
}

TEST(ObsServiceTest, WiringObservabilityDoesNotChangeRecommendations) {
  const auto app = workloads::HiBenchScan();
  auto run = [&](bool wire) {
    sparksim::ClusterSimulator sim(sparksim::X86Cluster(), 5);
    core::TuningSession session(&sim, app);
    core::OnlineTuningService service(&session, SmallServiceOptions());
    obs::MetricsRegistry registry;
    if (wire) {
      obs::ObsContext ctx;
      ctx.metrics = &registry;
      service.SetObservability(ctx);
    }
    std::string confs;
    for (double ds : {100.0, 110.0, 400.0}) {
      const auto conf = service.RecommendedConf(ds);
      confs += conf.ok() ? conf->ToString() : conf.status().ToString();
      confs += '\n';
    }
    return confs;
  };
  // Bit-identical recommendations with the full metrics stack on or off:
  // the serving instrumentation is purely observational.
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace locat
